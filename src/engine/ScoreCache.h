//===- engine/ScoreCache.h - Memoizing score cache --------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An LRU cache from image content to classifier score vectors. The attacks
/// revisit perturbed images constantly (speculative prefetch, re-expanded
/// sketch pairs, DE populations circling the same pixels), and a classifier
/// forward is deterministic, so memoized scores are bit-identical to fresh
/// ones — caching can never change a result, only skip a forward.
///
/// Keys are Image::contentHash values, but a 64-bit hash is not an
/// identity: every hit re-verifies the full pixel bytes against the stored
/// image and treats a mismatch as a miss (counted separately), so a hash
/// collision costs a forward, never a wrong answer.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_ENGINE_SCORECACHE_H
#define OPPSLA_ENGINE_SCORECACHE_H

#include "data/Image.h"

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace oppsla {

/// Thread-safe LRU map: image bytes -> score vector.
class ScoreCache {
public:
  /// \p Capacity is the maximum number of resident entries; 0 disables the
  /// cache entirely (every lookup misses, inserts are dropped).
  explicit ScoreCache(size_t Capacity) : Capacity(Capacity) {}

  /// Looks up \p Img (whose content hash the caller already computed).
  /// On a verified hit, copies the memoized scores into \p ScoresOut,
  /// promotes the entry to most-recently-used, and returns true.
  bool lookup(const Image &Img, uint64_t Hash, std::vector<float> &ScoresOut);

  /// Memoizes \p Scores for \p Img, evicting the least-recently-used entry
  /// when full. An existing entry under the same hash is overwritten (for
  /// a genuine collision the newer image wins; the loser just misses).
  void insert(const Image &Img, uint64_t Hash, std::vector<float> Scores);

  /// True if a verified entry for \p Img is resident (no LRU promotion).
  bool contains(const Image &Img, uint64_t Hash) const;

  size_t size() const;
  size_t capacity() const { return Capacity; }
  bool enabled() const { return Capacity != 0; }

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  /// Lookups whose hash matched a resident entry with different bytes.
  uint64_t collisions() const { return Collisions; }

  /// Drops every entry (stats are kept).
  void clear();

private:
  struct Entry {
    uint64_t Hash;
    size_t H, W;
    std::vector<float> Pixels; ///< full image bytes for hit verification
    std::vector<float> Scores;
  };

  static bool sameImage(const Entry &E, const Image &Img);

  size_t Capacity;
  mutable std::mutex Mu;
  std::list<Entry> Lru; ///< front = most recently used
  std::unordered_map<uint64_t, std::list<Entry>::iterator> Map;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Collisions = 0;
};

} // namespace oppsla

#endif // OPPSLA_ENGINE_SCORECACHE_H
