//===- engine/QueryEngine.h - Batched, memoizing query engine ---*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The query engine that sits between the attacks and the classifier. It
/// is itself a Classifier, so every existing call site (QueryCounter,
/// sweeps, clones) composes unchanged; what it adds is the split the
/// paper's accounting needs:
///
///   - *logical queries* are what the attack asks for and what the
///     paper's avgQueries metric reports — a cache hit still counts;
///   - *physical forwards* are what the hardware pays — batched through
///     Classifier::scoresBatch in chunks of Config.BatchSize and
///     optionally spread over a worker pool of classifier clones.
///
/// Correctness invariant: the engine never changes a single result byte.
/// Forwards are deterministic and per-sample independent (batched output
/// is bit-identical to serial output), and the ScoreCache verifies full
/// image bytes on every hit, so any combination of --batch-size,
/// --cache-capacity, and engine threads yields byte-identical attack
/// outcomes — enforced end to end by the cli_eval_engine_identical ctest.
///
/// prefetch() is the speculation entry point: attacks submit the candidate
/// images they are *about* to query serially; the engine runs them as
/// batched forwards into the cache, and the subsequent scores() calls hit.
/// Mispredicted candidates cost a wasted forward, never a wrong answer.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_ENGINE_QUERYENGINE_H
#define OPPSLA_ENGINE_QUERYENGINE_H

#include "classify/Classifier.h"
#include "engine/ScoreCache.h"
#include "support/ThreadPool.h"

#include <map>
#include <memory>
#include <string>

namespace oppsla {

/// Engine tunables, mirrored by the CLI's --batch-size / --cache-capacity /
/// --no-cache / --engine-threads flags.
struct QueryEngineConfig {
  /// Maximum images per physical forward (the {N,3,H,W} batch dimension).
  size_t BatchSize = 8;
  /// ScoreCache entries; 0 disables memoization (and with it prefetch).
  size_t CacheCapacity = 4096;
  /// Worker threads for physical batches. 1 = evaluate on the calling
  /// thread; >1 spreads the BatchSize-chunks of one submission over a pool
  /// of classifier clones (requires a cloneable inner classifier). Results
  /// are assembled in index order, so the thread count never changes them.
  size_t Threads = 1;
  /// When true, clone() hands out engines that share this engine's
  /// ScoreCache instead of building a fresh one. The cache is thread-safe
  /// and verifies full image bytes on every hit, so sharing can only
  /// convert misses into hits — results stay byte-identical. The serve
  /// subsystem turns this on so concurrent jobs against the same victim
  /// pool their forwards.
  bool ShareCacheOnClone = false;
};

/// Batching, memoizing classifier decorator.
class QueryEngine : public Classifier {
public:
  /// Wraps \p Inner (not owned; must outlive the engine).
  explicit QueryEngine(Classifier &Inner,
                       QueryEngineConfig Config = QueryEngineConfig());
  ~QueryEngine() override;

  std::vector<float> scores(const Image &Img) override;
  std::vector<std::vector<float>> scoresBatch(
      std::span<const Image> Imgs) override;
  void prefetch(std::span<const Image> Imgs) override;
  bool prefetchable() const override { return Cache->enabled(); }
  size_t numClasses() const override { return Inner.numClasses(); }

  /// Clones the inner classifier and builds an independent engine around
  /// it (same config; fresh cache, or this engine's cache when
  /// Config.ShareCacheOnClone). Returns nullptr when the inner classifier
  /// is not cloneable.
  std::unique_ptr<Classifier> clone() const override;

  const QueryEngineConfig &config() const { return Config; }
  ScoreCache &cache() { return *Cache; }
  /// The cache as a shareable handle (see ShareCacheOnClone).
  const std::shared_ptr<ScoreCache> &cacheHandle() const { return Cache; }

  /// Per-engine counters (process-wide aggregates live in the telemetry
  /// registry under engine.*).
  uint64_t logicalQueries() const { return Logical; }
  uint64_t physicalForwards() const { return Physical; }

private:
  /// Runs the batched forward for \p Unique (indices into \p Imgs),
  /// chunked by Config.BatchSize and optionally parallelized, writing
  /// score vectors into \p Out at the same positions.
  void forwardUnique(std::span<const Image> Imgs,
                     const std::vector<size_t> &Unique,
                     std::vector<std::vector<float>> &Out);

  /// Lazily builds the worker pool and per-worker inner clones; returns
  /// false when unavailable (Threads <= 1 or inner not cloneable).
  bool ensureWorkers();

  Classifier &Inner;
  std::unique_ptr<Classifier> OwnedInner; ///< set on clones
  QueryEngineConfig Config;
  std::shared_ptr<ScoreCache> Cache; ///< never null; shared across clones
                                     ///< when Config.ShareCacheOnClone

  std::unique_ptr<ThreadPool> Pool;
  std::vector<std::unique_ptr<Classifier>> WorkerClones;
  bool WorkersUnavailable = false;

  uint64_t Logical = 0;
  uint64_t Physical = 0;
};

/// One-line human summary of the process-wide engine counters (hit rate,
/// forwards vs logical queries, mean physical batch). Empty string when no
/// engine query ran.
std::string engineMetricsSummary();

/// The same process-wide engine counters as a flat numeric map, derived
/// ratios included (`engine.cache.hit_rate`, `engine.forwards_per_query`,
/// `engine.batch.mean`) — the shape BenchJson/the bench ledger ingest, so
/// every bench artifact carries the engine's efficiency next to its
/// throughput. Empty map when no engine query ran.
std::map<std::string, double> engineLedgerMetrics();

} // namespace oppsla

#endif // OPPSLA_ENGINE_QUERYENGINE_H
