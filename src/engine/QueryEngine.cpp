//===- engine/QueryEngine.cpp - Batched, memoizing query engine --------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/QueryEngine.h"

#include "support/Metrics.h"
#include "support/Profiler.h"
#include "support/Trace.h"
#include "tensor/Gemm.h"

#include <algorithm>
#include <cstring>
#include <future>
#include <sstream>
#include <unordered_map>

using namespace oppsla;

namespace {

telemetry::Counter &logicalCounter() {
  static telemetry::Counter &C = telemetry::counter("engine.queries");
  return C;
}
telemetry::Counter &forwardCounter() {
  static telemetry::Counter &C = telemetry::counter("engine.forwards");
  return C;
}
telemetry::Counter &hitCounter() {
  static telemetry::Counter &C = telemetry::counter("engine.cache.hits");
  return C;
}
telemetry::Counter &missCounter() {
  static telemetry::Counter &C = telemetry::counter("engine.cache.misses");
  return C;
}
telemetry::Counter &prefetchCounter() {
  static telemetry::Counter &C = telemetry::counter("engine.prefetch.images");
  return C;
}
telemetry::Histogram &batchSizeHist() {
  static telemetry::Histogram &H = telemetry::histogram(
      "engine.batch.size", telemetry::exponentialBuckets(1.0, 2.0, 12));
  return H;
}

bool sameBytes(const Image &A, const Image &B) {
  return A.height() == B.height() && A.width() == B.width() &&
         std::memcmp(A.raw().data(), B.raw().data(),
                     A.raw().size() * sizeof(float)) == 0;
}

} // namespace

QueryEngine::QueryEngine(Classifier &Inner, QueryEngineConfig Config)
    : Inner(Inner), Config(Config),
      Cache(std::make_shared<ScoreCache>(Config.CacheCapacity)) {
  assert(this->Config.BatchSize >= 1 && "batch size must be positive");
}

QueryEngine::~QueryEngine() = default;

std::vector<float> QueryEngine::scores(const Image &Img) {
  telemetry::ProfileScope Span("engine.query");
  ++Logical;
  logicalCounter().inc();
  std::vector<float> S;
  if (Cache->enabled()) {
    const uint64_t Hash = Img.contentHash();
    if (Cache->lookup(Img, Hash, S)) {
      hitCounter().inc();
      return S;
    }
    missCounter().inc();
    S = Inner.scores(Img);
    ++Physical;
    forwardCounter().inc();
    batchSizeHist().observe(1.0);
    Cache->insert(Img, Hash, S);
    return S;
  }
  S = Inner.scores(Img);
  ++Physical;
  forwardCounter().inc();
  batchSizeHist().observe(1.0);
  return S;
}

std::vector<std::vector<float>> QueryEngine::scoresBatch(
    std::span<const Image> Imgs) {
  telemetry::ProfileScope Span("engine.batch");
  const size_t N = Imgs.size();
  Logical += N;
  logicalCounter().inc(N);
  std::vector<std::vector<float>> Out(N);
  if (N == 0)
    return Out;

  // Partition into cache hits, unique misses, and duplicate misses (the
  // same bytes appearing twice in one submission pay one forward).
  std::vector<size_t> Unique;
  std::vector<std::pair<size_t, size_t>> Aliases; ///< (dup index, rep index)
  std::unordered_map<uint64_t, std::vector<size_t>> Reps;
  uint64_t Hits = 0;
  {
    telemetry::ProfileScope ProbeSpan("engine.cache.probe");
    for (size_t I = 0; I != N; ++I) {
      const uint64_t Hash = Cache->enabled() ? Imgs[I].contentHash() : 0;
      if (Cache->enabled() && Cache->lookup(Imgs[I], Hash, Out[I])) {
        ++Hits;
        continue;
      }
      bool Aliased = false;
      if (Cache->enabled()) {
        for (size_t Rep : Reps[Hash]) {
          if (sameBytes(Imgs[Rep], Imgs[I])) {
            Aliases.emplace_back(I, Rep);
            Aliased = true;
            break;
          }
        }
        if (!Aliased)
          Reps[Hash].push_back(I);
      }
      if (!Aliased)
        Unique.push_back(I);
    }
  }
  hitCounter().inc(Hits);
  missCounter().inc(N - Hits);

  forwardUnique(Imgs, Unique, Out);
  if (Cache->enabled())
    for (size_t I : Unique)
      Cache->insert(Imgs[I], Imgs[I].contentHash(), Out[I]);
  for (const auto &[Dup, Rep] : Aliases)
    Out[Dup] = Out[Rep];

  if (telemetry::traceEnabled())
    telemetry::traceEvent("engine_batch",
                          {{"kind", "query"},
                           {"images", static_cast<uint64_t>(N)},
                           {"hits", Hits},
                           {"forwards",
                            static_cast<uint64_t>(Unique.size())}});
  return Out;
}

void QueryEngine::prefetch(std::span<const Image> Imgs) {
  // Without a cache there is nowhere to park speculative results.
  if (!Cache->enabled() || Imgs.empty())
    return;
  telemetry::ProfileScope Span("engine.prefetch");

  std::vector<size_t> Unique;
  std::unordered_map<uint64_t, std::vector<size_t>> Reps;
  for (size_t I = 0; I != Imgs.size(); ++I) {
    const uint64_t Hash = Imgs[I].contentHash();
    if (Cache->contains(Imgs[I], Hash))
      continue;
    bool Aliased = false;
    for (size_t Rep : Reps[Hash])
      if (sameBytes(Imgs[Rep], Imgs[I])) {
        Aliased = true;
        break;
      }
    if (Aliased)
      continue;
    Reps[Hash].push_back(I);
    Unique.push_back(I);
    // Prefetching past the cache capacity would evict this submission's
    // own entries before the attack consumes them.
    if (Unique.size() == Cache->capacity())
      break;
  }
  if (Unique.empty())
    return;

  std::vector<std::vector<float>> Scores(Imgs.size());
  forwardUnique(Imgs, Unique, Scores);
  for (size_t I : Unique)
    Cache->insert(Imgs[I], Imgs[I].contentHash(), std::move(Scores[I]));
  prefetchCounter().inc(Unique.size());

  if (telemetry::traceEnabled())
    telemetry::traceEvent(
        "engine_batch",
        {{"kind", "prefetch"},
         {"images", static_cast<uint64_t>(Imgs.size())},
         {"forwards", static_cast<uint64_t>(Unique.size())}});
}

bool QueryEngine::ensureWorkers() {
  if (Config.Threads <= 1 || WorkersUnavailable)
    return Pool != nullptr;
  if (Pool)
    return true;
  std::vector<std::unique_ptr<Classifier>> Clones;
  for (size_t T = 1; T != Config.Threads; ++T) {
    auto C = Inner.clone();
    if (!C) {
      WorkersUnavailable = true;
      return false;
    }
    Clones.push_back(std::move(C));
  }
  WorkerClones = std::move(Clones);
  Pool = std::make_unique<ThreadPool>(Config.Threads);
  return true;
}

void QueryEngine::forwardUnique(std::span<const Image> Imgs,
                                const std::vector<size_t> &Unique,
                                std::vector<std::vector<float>> &Out) {
  if (Unique.empty())
    return;
  telemetry::ProfileScope Span("engine.forward");
  Physical += Unique.size();
  forwardCounter().inc(Unique.size());

  // Chunk boundaries: [K*BatchSize, (K+1)*BatchSize) over Unique.
  const size_t B = Config.BatchSize;
  const size_t NumChunks = (Unique.size() + B - 1) / B;
  for (size_t K = 0; K != NumChunks; ++K)
    batchSizeHist().observe(static_cast<double>(
        std::min(B, Unique.size() - K * B)));

  auto RunChunk = [&](Classifier &C, size_t K) {
    const size_t Begin = K * B;
    const size_t End = std::min(Begin + B, Unique.size());
    std::vector<Image> Chunk;
    {
      telemetry::ProfileScope AssembleSpan("engine.assemble");
      Chunk.reserve(End - Begin);
      for (size_t I = Begin; I != End; ++I)
        Chunk.push_back(Imgs[Unique[I]]);
    }
    std::vector<std::vector<float>> S =
        C.scoresBatch(std::span<const Image>(Chunk));
    for (size_t I = Begin; I != End; ++I)
      Out[Unique[I]] = std::move(S[I - Begin]);
  };

  if (NumChunks > 1 && ensureWorkers()) {
    // Worker T owns clone T-1 (worker 0 reuses the inner classifier);
    // chunks are assigned round-robin so each classifier instance is used
    // by exactly one task chain at a time. Chunk-level parallelism is the
    // better use of the thread budget here, so each worker pins its GEMM
    // column fan-out to one thread (results are identical either way —
    // the kernels are deterministic at any split).
    const size_t W = Config.Threads;
    // Engine pool threads outlive any one job: hand each task the
    // submitting thread's ambient profile root and trace id so forward
    // spans and trace events attribute to the right job.
    const char *ProfRoot = telemetry::ambientProfileRoot();
    const std::string TraceId = telemetry::traceContextId();
    std::vector<std::future<void>> Futures;
    for (size_t T = 0; T != std::min(W, NumChunks); ++T) {
      Classifier *C = T == 0 ? &Inner : WorkerClones[T - 1].get();
      Futures.push_back(Pool->submit([&, C, T] {
        telemetry::ProfileTaskScope Task(ProfRoot);
        telemetry::TraceContextScope Trace(TraceId);
        kernels::ScopedColumnThreads Pin(1);
        for (size_t K = T; K < NumChunks; K += W)
          RunChunk(*C, K);
      }));
    }
    for (auto &F : Futures)
      F.get();
    return;
  }

  // Single chunk (or no workers): donate the engine's thread budget to
  // the GEMM column dimension instead.
  kernels::ScopedColumnThreads Donate(Config.Threads);
  for (size_t K = 0; K != NumChunks; ++K)
    RunChunk(Inner, K);
}

std::unique_ptr<Classifier> QueryEngine::clone() const {
  auto InnerClone = Inner.clone();
  if (!InnerClone)
    return nullptr;
  auto Out = std::make_unique<QueryEngine>(*InnerClone, Config);
  Out->OwnedInner = std::move(InnerClone);
  if (Config.ShareCacheOnClone)
    Out->Cache = Cache; // thread-safe, byte-verified: results unchanged
  return Out;
}

std::string oppsla::engineMetricsSummary() {
  const uint64_t Queries = logicalCounter().value();
  if (Queries == 0)
    return "";
  const uint64_t Forwards = forwardCounter().value();
  const uint64_t Hits = hitCounter().value();
  const uint64_t Misses = missCounter().value();
  std::ostringstream S;
  S << "engine: " << Queries << " logical queries, " << Forwards
    << " physical forwards";
  if (Hits + Misses != 0) {
    S.precision(1);
    S << ", cache hit rate " << std::fixed
      << 100.0 * static_cast<double>(Hits) /
             static_cast<double>(Hits + Misses)
      << "%";
  }
  const telemetry::Histogram &H = batchSizeHist();
  if (H.count() != 0) {
    S.precision(1);
    S << ", avg physical batch " << std::fixed << H.mean();
  }
  return S.str();
}

std::map<std::string, double> oppsla::engineLedgerMetrics() {
  std::map<std::string, double> M;
  const uint64_t Queries = logicalCounter().value();
  if (Queries == 0)
    return M;
  const uint64_t Forwards = forwardCounter().value();
  const uint64_t Hits = hitCounter().value();
  const uint64_t Misses = missCounter().value();
  M["engine.queries.logical"] = static_cast<double>(Queries);
  M["engine.forwards.physical"] = static_cast<double>(Forwards);
  M["engine.forwards_per_query"] =
      static_cast<double>(Forwards) / static_cast<double>(Queries);
  M["engine.cache.hits"] = static_cast<double>(Hits);
  M["engine.cache.misses"] = static_cast<double>(Misses);
  if (Hits + Misses != 0)
    M["engine.cache.hit_rate"] = static_cast<double>(Hits) /
                                 static_cast<double>(Hits + Misses);
  M["engine.prefetch.images"] =
      static_cast<double>(prefetchCounter().value());
  const telemetry::Histogram &H = batchSizeHist();
  if (H.count() != 0)
    M["engine.batch.mean"] = H.mean();
  return M;
}
