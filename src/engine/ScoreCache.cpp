//===- engine/ScoreCache.cpp - Memoizing score cache -------------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/ScoreCache.h"

#include <cstring>

using namespace oppsla;

bool ScoreCache::sameImage(const Entry &E, const Image &Img) {
  if (E.H != Img.height() || E.W != Img.width())
    return false;
  const std::vector<float> &Raw = Img.raw();
  if (E.Pixels.size() != Raw.size())
    return false;
  // Byte comparison, not float ==: the hash is over bit patterns, and
  // -0.0f / NaN payloads must verify the same way they hashed.
  return std::memcmp(E.Pixels.data(), Raw.data(),
                     Raw.size() * sizeof(float)) == 0;
}

bool ScoreCache::lookup(const Image &Img, uint64_t Hash,
                        std::vector<float> &ScoresOut) {
  std::lock_guard<std::mutex> Lock(Mu);
  const auto It = Map.find(Hash);
  if (It == Map.end()) {
    ++Misses;
    return false;
  }
  if (!sameImage(*It->second, Img)) {
    ++Collisions;
    ++Misses;
    return false;
  }
  Lru.splice(Lru.begin(), Lru, It->second);
  ScoresOut = It->second->Scores;
  ++Hits;
  return true;
}

void ScoreCache::insert(const Image &Img, uint64_t Hash,
                        std::vector<float> Scores) {
  if (Capacity == 0)
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  const auto It = Map.find(Hash);
  if (It != Map.end()) {
    // Refresh (or, on collision, replace) the resident entry in place.
    Entry &E = *It->second;
    E.H = Img.height();
    E.W = Img.width();
    E.Pixels = Img.raw();
    E.Scores = std::move(Scores);
    Lru.splice(Lru.begin(), Lru, It->second);
    return;
  }
  if (Lru.size() >= Capacity) {
    Map.erase(Lru.back().Hash);
    Lru.pop_back();
  }
  Lru.push_front(Entry{Hash, Img.height(), Img.width(), Img.raw(),
                       std::move(Scores)});
  Map[Hash] = Lru.begin();
}

bool ScoreCache::contains(const Image &Img, uint64_t Hash) const {
  std::lock_guard<std::mutex> Lock(Mu);
  const auto It = Map.find(Hash);
  return It != Map.end() && sameImage(*It->second, Img);
}

size_t ScoreCache::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Lru.size();
}

void ScoreCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Map.clear();
  Lru.clear();
}
