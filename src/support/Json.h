//===- support/Json.h - Minimal JSON document model ------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small JSON value model plus a recursive-descent parser, for the tools
/// that *read* JSON: the bench ledger ingests `BENCH_<name>.json` artifacts
/// and `--metrics-out` snapshots, and `oppsla_bench gate` reads baselines
/// and its rule manifest. Writers across the codebase keep hand-rendering
/// their documents (they control the shape exactly); this is the reading
/// side only. Deliberately minimal: no comments, no trailing commas,
/// objects keep key order of first appearance.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_SUPPORT_JSON_H
#define OPPSLA_SUPPORT_JSON_H

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace oppsla {
namespace json {

/// One parsed JSON value. Containers own their children via Value handles;
/// a default-constructed Value is null.
class Value {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool boolean() const { return B; }
  double number() const { return Num; }
  const std::string &str() const { return Str; }
  const std::vector<Value> &array() const { return Arr; }
  /// Object members in first-appearance order.
  const std::vector<std::pair<std::string, Value>> &members() const {
    return Obj;
  }

  /// Member lookup; nullptr when absent or not an object.
  const Value *find(const std::string &Key) const;
  /// String member of \p Key, or \p Default when absent/not a string.
  std::string getString(const std::string &Key,
                        const std::string &Default = "") const;
  /// Numeric member of \p Key, or \p Default when absent/not a number.
  double getNumber(const std::string &Key, double Default = 0.0) const;

  static Value makeNull() { return Value(); }
  static Value makeBool(bool X);
  static Value makeNumber(double X);
  static Value makeString(std::string X);
  static Value makeArray(std::vector<Value> X);
  static Value makeObject(std::vector<std::pair<std::string, Value>> X);

private:
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<Value> Arr;
  std::vector<std::pair<std::string, Value>> Obj;
};

/// Parses \p Text as exactly one JSON document. On success returns true
/// and fills \p Out; on failure returns false and \p Error describes the
/// first problem with its byte offset.
bool parse(const std::string &Text, Value &Out, std::string &Error);

/// parse() from the contents of \p Path. Read failures land in \p Error.
bool parseFile(const std::string &Path, Value &Out, std::string &Error);

/// Appends \p S to \p Out with JSON string escaping (quotes not added).
void escape(std::string &Out, const std::string &S);

/// Appends a finite double with "%.9g" (matching the writers across the
/// repo); non-finite values render as null.
void appendNumber(std::string &Out, double V);

} // namespace json
} // namespace oppsla

#endif // OPPSLA_SUPPORT_JSON_H
