//===- support/Rng.h - Deterministic random number generation --*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seedable random number generators used everywhere in the
/// project. We deliberately avoid std::mt19937 + std::uniform_*_distribution
/// because their exact output is implementation-defined across standard
/// libraries; experiments must be reproducible bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_SUPPORT_RNG_H
#define OPPSLA_SUPPORT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace oppsla {

/// SplitMix64 generator, primarily used to seed Xoshiro and for cheap
/// one-off hashing of seeds.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64 random bits.
  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State;
};

/// Xoshiro256** — fast, high-quality, deterministic PRNG.
///
/// All randomized components (data generation, weight init, MH proposals,
/// baseline attacks) take an Rng by reference so that experiments can be
/// replayed exactly from a single seed.
class Rng {
public:
  /// Seeds the four words of state via SplitMix64 as recommended by the
  /// xoshiro authors.
  explicit Rng(uint64_t Seed = 0x5eedULL) { reseed(Seed); }

  /// Re-initializes the state from \p Seed.
  void reseed(uint64_t Seed) {
    SplitMix64 SM(Seed);
    for (uint64_t &Word : State)
      Word = SM.next();
  }

  /// Returns the next 64 random bits.
  uint64_t nextU64() {
    const uint64_t Result = rotl(State[1] * 5, 7) * 9;
    const uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Returns a uniform double in [0, 1).
  double uniform() {
    // 53 high bits -> [0,1) with full double precision.
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
  }

  /// Returns a uniform float in [0, 1).
  float uniformF() { return static_cast<float>(uniform()); }

  /// Returns a uniform double in [\p Lo, \p Hi).
  double uniform(double Lo, double Hi) {
    assert(Lo <= Hi && "empty uniform range");
    return Lo + (Hi - Lo) * uniform();
  }

  /// Returns a uniform integer in [0, \p N). \p N must be positive.
  /// Uses Lemire's nearly-divisionless bounded sampling.
  uint64_t bounded(uint64_t N) {
    assert(N > 0 && "bounded(0) is meaningless");
    __uint128_t M = static_cast<__uint128_t>(nextU64()) * N;
    auto Lo = static_cast<uint64_t>(M);
    if (Lo < N) {
      uint64_t Threshold = (0 - N) % N;
      while (Lo < Threshold) {
        M = static_cast<__uint128_t>(nextU64()) * N;
        Lo = static_cast<uint64_t>(M);
      }
    }
    return static_cast<uint64_t>(M >> 64);
  }

  /// Returns a uniform index in [0, \p N) as size_t.
  size_t index(size_t N) { return static_cast<size_t>(bounded(N)); }

  /// Returns a uniform int in [\p Lo, \p Hi] inclusive.
  int intIn(int Lo, int Hi) {
    assert(Lo <= Hi && "empty int range");
    return Lo + static_cast<int>(bounded(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// Returns true with probability \p P.
  bool chance(double P) { return uniform() < P; }

  /// Returns a sample from the standard normal distribution
  /// (Marsaglia polar method; one cached value).
  double normal() {
    if (HasCachedNormal) {
      HasCachedNormal = false;
      return CachedNormal;
    }
    double U, V, S;
    do {
      U = uniform(-1.0, 1.0);
      V = uniform(-1.0, 1.0);
      S = U * U + V * V;
    } while (S >= 1.0 || S == 0.0);
    const double Mul = sqrtMinusTwoLogOverS(S);
    CachedNormal = V * Mul;
    HasCachedNormal = true;
    return U * Mul;
  }

  /// Returns a normal sample with mean \p Mean and stddev \p Sigma.
  double normal(double Mean, double Sigma) { return Mean + Sigma * normal(); }

  /// Fisher-Yates shuffles \p Values in place.
  template <typename T> void shuffle(std::vector<T> &Values) {
    if (Values.empty())
      return;
    for (size_t I = Values.size() - 1; I > 0; --I) {
      size_t J = index(I + 1);
      std::swap(Values[I], Values[J]);
    }
  }

  /// Picks a uniformly random element of \p Values.
  template <typename T> const T &pick(const std::vector<T> &Values) {
    assert(!Values.empty() && "pick() from empty vector");
    return Values[index(Values.size())];
  }

  /// Derives an independent child generator; useful for giving each
  /// parallel-ish subtask its own stream.
  Rng fork() { return Rng(nextU64() ^ 0xa5a5a5a5a5a5a5a5ULL); }

  /// Derives the seed for one run of a randomized component from the
  /// component's configured \p Seed and a stable per-run \p StreamId (for
  /// attacks: the attacked image's content hash). Two SplitMix64 scrambles
  /// decorrelate the streams: the first turns the configured seed into a
  /// stream root (so nearby seeds do not yield nearby streams), the second
  /// mixes in the stream id. The result is a pure function of
  /// (Seed, StreamId) — independent of any prior runs — which is what makes
  /// sweep results invariant to dataset order and subset.
  static uint64_t deriveRunSeed(uint64_t Seed, uint64_t StreamId) {
    SplitMix64 Root(Seed);
    SplitMix64 Run(Root.next() ^ StreamId);
    return Run.next();
  }

  /// Convenience: a generator seeded with deriveRunSeed(Seed, StreamId).
  static Rng forRun(uint64_t Seed, uint64_t StreamId) {
    return Rng(deriveRunSeed(Seed, StreamId));
  }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }
  static double sqrtMinusTwoLogOverS(double S);

  uint64_t State[4] = {};
  double CachedNormal = 0.0;
  bool HasCachedNormal = false;
};

} // namespace oppsla

#endif // OPPSLA_SUPPORT_RNG_H
