//===- support/StatsServer.cpp - Embedded HTTP stats endpoint ----------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StatsServer.h"

#include "support/Http.h"
#include "support/HwCounters.h"
#include "support/Ledger.h"
#include "support/Logging.h"
#include "support/Metrics.h"
#include "support/Profiler.h"
#include "support/Progress.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

using namespace oppsla;
using namespace oppsla::telemetry;

namespace {

void sendResponse(int Fd, int Status, const char *ContentType,
                  const std::string &Body) {
  http::sendResponse(Fd, Status, ContentType, Body);
}

/// The `GET /ledger` payload: the tail of the registered bench ledger
/// (see `--ledger`) plus the hardware-counter state and the per-span
/// profile snapshot carrying IPC/miss-rate attribution when --hw-counters
/// recorded samples.
std::string ledgerEndpointJson() {
  std::string Out = "{\"ledger\":";
  Out += oppsla::ledger::tailJson(oppsla::ledger::servedPath(),
                                  /*MaxEntries=*/32);
  Out += ",\"hw_counters\":{\"enabled\":";
  Out += hwCountersEnabled() ? "true" : "false";
  Out += ",\"available\":";
  Out += (hwCountersEnabled() && hwCountersAvailable()) ? "true" : "false";
  Out += "},\"profile\":";
  Out += profileJson();
  Out += "}";
  return Out;
}

} // namespace

StatsServer::~StatsServer() { stop(); }

bool StatsServer::start(uint16_t Port) {
  if (ListenFd >= 0) {
    logError() << "stats server already running on port " << BoundPort;
    return false;
  }

  const int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    logError() << "stats server: socket() failed: " << std::strerror(errno);
    return false;
  }
  const int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(Fd, reinterpret_cast<const sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    logError() << "stats server: bind(127.0.0.1:" << Port
               << ") failed: " << std::strerror(errno);
    ::close(Fd);
    return false;
  }
  if (::listen(Fd, 16) < 0) {
    logError() << "stats server: listen() failed: " << std::strerror(errno);
    ::close(Fd);
    return false;
  }

  sockaddr_in Bound = {};
  socklen_t BoundLen = sizeof(Bound);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Bound), &BoundLen) <
      0) {
    logError() << "stats server: getsockname() failed: "
               << std::strerror(errno);
    ::close(Fd);
    return false;
  }
  BoundPort = ntohs(Bound.sin_port);

  ListenFd = Fd;
  Stopping.store(false, std::memory_order_relaxed);
  Quit.store(false, std::memory_order_relaxed);
  Thread = std::thread([this] { serveLoop(); });
  return true;
}

void StatsServer::serveLoop() {
  for (;;) {
    const int Client = ::accept(ListenFd, nullptr, nullptr);
    if (Client < 0) {
      if (errno == EINTR)
        continue;
      // stop() shut the listening socket down; any other failure also
      // ends the serve loop (the server is best-effort observability).
      return;
    }
    if (Stopping.load(std::memory_order_relaxed)) {
      ::close(Client);
      return;
    }

    // One accept thread serves everyone, so a stalled or malicious client
    // must never wedge the loop: bound both directions of every exchange.
    timeval Timeout = {};
    Timeout.tv_sec = 5;
    ::setsockopt(Client, SOL_SOCKET, SO_RCVTIMEO, &Timeout, sizeof(Timeout));
    ::setsockopt(Client, SOL_SOCKET, SO_SNDTIMEO, &Timeout, sizeof(Timeout));

    // The shared reader tolerates requests split across packets and
    // drains any Content-Length body, so a scraper that POSTs (or a slow
    // proxy that trickles the head) gets a proper answer instead of a
    // misparse.
    http::Request Req;
    std::string ReqError;
    if (!http::readRequest(Client, Req, ReqError)) {
      ::close(Client);
      continue;
    }
    const std::string &Target = Req.Target;
    if (Req.Method != "GET") {
      sendResponse(Client, 405, "text/plain; charset=utf-8",
                   "only GET is served here\n");
    } else if (Target == "/metrics") {
      sendResponse(Client, 200, "text/plain; version=0.0.4; charset=utf-8",
                   prometheusTextExposition());
    } else if (Target == "/profile") {
      sendResponse(Client, 200, "text/plain; charset=utf-8",
                   profileFoldedReport());
    } else if (Target == "/healthz") {
      sendResponse(Client, 200, "application/json", healthzJson());
    } else if (Target == "/ledger") {
      sendResponse(Client, 200, "application/json", ledgerEndpointJson());
    } else if (Target == "/logz" ||
               Target.compare(0, 6, "/logz?") == 0) {
      size_t N = 100;
      const std::string NStr = http::queryParam(Target, "n");
      if (!NStr.empty())
        N = static_cast<size_t>(std::strtoull(NStr.c_str(), nullptr, 10));
      LogLevel Level = LogLevel::Debug;
      const std::string LevelStr = http::queryParam(Target, "level");
      if (!LevelStr.empty() && !parseLogLevel(LevelStr, Level)) {
        sendResponse(Client, 400, "text/plain; charset=utf-8",
                     "unknown level (want error|warn|info|debug)\n");
      } else {
        sendResponse(Client, 200, "application/x-ndjson",
                     logRingJsonl(std::min<size_t>(N, 1024), Level));
      }
    } else if (Target == "/quitquitquit") {
      Quit.store(true, std::memory_order_relaxed);
      sendResponse(Client, 200, "text/plain; charset=utf-8", "quitting\n");
    } else {
      sendResponse(Client, 404, "text/plain; charset=utf-8",
                   "not found\n");
    }
    ::close(Client);
  }
}

bool StatsServer::waitQuit(double TimeoutSeconds) {
  const auto Deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(TimeoutSeconds);
  while (!quitRequested() &&
         std::chrono::steady_clock::now() < Deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  return quitRequested();
}

void StatsServer::stop() {
  if (ListenFd < 0)
    return;
  Stopping.store(true, std::memory_order_relaxed);
  // shutdown() wakes the blocking accept(); close() releases the port.
  ::shutdown(ListenFd, SHUT_RDWR);
  ::close(ListenFd);
  if (Thread.joinable())
    Thread.join();
  ListenFd = -1;
}
