//===- support/StatsServer.cpp - Embedded HTTP stats endpoint ----------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StatsServer.h"

#include "support/HwCounters.h"
#include "support/Ledger.h"
#include "support/Logging.h"
#include "support/Metrics.h"
#include "support/Profiler.h"
#include "support/Progress.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

using namespace oppsla;
using namespace oppsla::telemetry;

namespace {

#ifdef MSG_NOSIGNAL
constexpr int SendFlags = MSG_NOSIGNAL;
#else
constexpr int SendFlags = 0;
#endif

void sendAll(int Fd, const char *Data, size_t Len) {
  size_t Off = 0;
  while (Off < Len) {
    const ssize_t N = ::send(Fd, Data + Off, Len - Off, SendFlags);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      return;
    }
    Off += static_cast<size_t>(N);
  }
}

void sendResponse(int Fd, const char *Status, const char *ContentType,
                  const std::string &Body) {
  char Header[256];
  const int N = std::snprintf(Header, sizeof(Header),
                              "HTTP/1.1 %s\r\n"
                              "Content-Type: %s\r\n"
                              "Content-Length: %zu\r\n"
                              "Connection: close\r\n"
                              "\r\n",
                              Status, ContentType, Body.size());
  sendAll(Fd, Header, static_cast<size_t>(N));
  sendAll(Fd, Body.data(), Body.size());
}

/// Reads until the end of the request headers (or the buffer fills) and
/// returns the request target of `GET <target> ...`, empty on anything
/// else. The server only serves GETs, so the body is never read.
std::string readRequestTarget(int Fd) {
  char Buf[2048];
  size_t Len = 0;
  while (Len < sizeof(Buf) - 1) {
    const ssize_t N = ::recv(Fd, Buf + Len, sizeof(Buf) - 1 - Len, 0);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      break;
    }
    Len += static_cast<size_t>(N);
    Buf[Len] = '\0';
    if (std::strstr(Buf, "\r\n\r\n") || std::strstr(Buf, "\n\n"))
      break;
    if (std::memchr(Buf, '\n', Len)) // request line is complete
      break;
  }
  Buf[Len] = '\0';
  if (std::strncmp(Buf, "GET ", 4) != 0)
    return "";
  const char *Start = Buf + 4;
  const char *End = Start;
  while (*End && *End != ' ' && *End != '\r' && *End != '\n')
    ++End;
  return std::string(Start, End);
}

/// The `GET /ledger` payload: the tail of the registered bench ledger
/// (see `--ledger`) plus the hardware-counter state and the per-span
/// profile snapshot carrying IPC/miss-rate attribution when --hw-counters
/// recorded samples.
std::string ledgerEndpointJson() {
  std::string Out = "{\"ledger\":";
  Out += oppsla::ledger::tailJson(oppsla::ledger::servedPath(),
                                  /*MaxEntries=*/32);
  Out += ",\"hw_counters\":{\"enabled\":";
  Out += hwCountersEnabled() ? "true" : "false";
  Out += ",\"available\":";
  Out += (hwCountersEnabled() && hwCountersAvailable()) ? "true" : "false";
  Out += "},\"profile\":";
  Out += profileJson();
  Out += "}";
  return Out;
}

} // namespace

StatsServer::~StatsServer() { stop(); }

bool StatsServer::start(uint16_t Port) {
  if (ListenFd >= 0) {
    logError() << "stats server already running on port " << BoundPort;
    return false;
  }

  const int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    logError() << "stats server: socket() failed: " << std::strerror(errno);
    return false;
  }
  const int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(Fd, reinterpret_cast<const sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    logError() << "stats server: bind(127.0.0.1:" << Port
               << ") failed: " << std::strerror(errno);
    ::close(Fd);
    return false;
  }
  if (::listen(Fd, 16) < 0) {
    logError() << "stats server: listen() failed: " << std::strerror(errno);
    ::close(Fd);
    return false;
  }

  sockaddr_in Bound = {};
  socklen_t BoundLen = sizeof(Bound);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Bound), &BoundLen) <
      0) {
    logError() << "stats server: getsockname() failed: "
               << std::strerror(errno);
    ::close(Fd);
    return false;
  }
  BoundPort = ntohs(Bound.sin_port);

  ListenFd = Fd;
  Stopping.store(false, std::memory_order_relaxed);
  Quit.store(false, std::memory_order_relaxed);
  Thread = std::thread([this] { serveLoop(); });
  return true;
}

void StatsServer::serveLoop() {
  for (;;) {
    const int Client = ::accept(ListenFd, nullptr, nullptr);
    if (Client < 0) {
      if (errno == EINTR)
        continue;
      // stop() shut the listening socket down; any other failure also
      // ends the serve loop (the server is best-effort observability).
      return;
    }
    if (Stopping.load(std::memory_order_relaxed)) {
      ::close(Client);
      return;
    }

    // One accept thread serves everyone, so a stalled or malicious client
    // must never wedge the loop: bound both directions of every exchange.
    timeval Timeout = {};
    Timeout.tv_sec = 5;
    ::setsockopt(Client, SOL_SOCKET, SO_RCVTIMEO, &Timeout, sizeof(Timeout));
    ::setsockopt(Client, SOL_SOCKET, SO_SNDTIMEO, &Timeout, sizeof(Timeout));

    const std::string Target = readRequestTarget(Client);
    if (Target == "/metrics") {
      sendResponse(Client, "200 OK",
                   "text/plain; version=0.0.4; charset=utf-8",
                   prometheusTextExposition());
    } else if (Target == "/profile") {
      sendResponse(Client, "200 OK", "text/plain; charset=utf-8",
                   profileFoldedReport());
    } else if (Target == "/healthz") {
      sendResponse(Client, "200 OK", "application/json", healthzJson());
    } else if (Target == "/ledger") {
      sendResponse(Client, "200 OK", "application/json",
                   ledgerEndpointJson());
    } else if (Target == "/quitquitquit") {
      Quit.store(true, std::memory_order_relaxed);
      sendResponse(Client, "200 OK", "text/plain; charset=utf-8",
                   "quitting\n");
    } else {
      sendResponse(Client, "404 Not Found", "text/plain; charset=utf-8",
                   "not found\n");
    }
    ::close(Client);
  }
}

bool StatsServer::waitQuit(double TimeoutSeconds) {
  const auto Deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(TimeoutSeconds);
  while (!quitRequested() &&
         std::chrono::steady_clock::now() < Deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  return quitRequested();
}

void StatsServer::stop() {
  if (ListenFd < 0)
    return;
  Stopping.store(true, std::memory_order_relaxed);
  // shutdown() wakes the blocking accept(); close() releases the port.
  ::shutdown(ListenFd, SHUT_RDWR);
  ::close(ListenFd);
  if (Thread.joinable())
    Thread.join();
  ListenFd = -1;
}
