//===- support/BenchScale.h - Experiment sizing knobs ----------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Central sizing knobs for the paper-reproduction benchmarks. Every bench
/// binary honours the OPPSLA_BENCH_SCALE environment variable:
///
///   - "smoke": tiny sizes, seconds per bench (CI sanity only)
///   - "small": default; preserves the paper's qualitative shape while the
///     full bench suite finishes in minutes on one core
///   - "paper": matches the paper's set sizes (50 train images/class, large
///     test sets, 210 synthesis iterations); hours of compute
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_SUPPORT_BENCHSCALE_H
#define OPPSLA_SUPPORT_BENCHSCALE_H

#include <cstddef>
#include <string>

namespace oppsla {

/// Sizing preset for a reproduction run.
struct BenchScale {
  std::string Name;          ///< preset name for logging
  size_t TrainPerClass;      ///< synthesis training images per class
  size_t TestPerClass;       ///< evaluation images per class
  size_t NumClasses;         ///< classes evaluated per classifier
  size_t SynthIters;         ///< MH iterations (paper: 210)
  size_t SynthQueryCap;      ///< per-image query cap during synthesis
  size_t EvalQueryCap;       ///< per-image query cap during evaluation
  size_t TrainEpochs;        ///< classifier training epochs
  size_t ClassifierTrainSet; ///< images used to train each classifier
  size_t CifarSide;          ///< CIFAR-like image side (paper: 32)
  size_t ImageNetSide;       ///< ImageNet-like image side (paper analogue)

  /// Looks up OPPSLA_BENCH_SCALE (smoke|small|paper) with fallback to
  /// \p Fallback when unset or unknown.
  static BenchScale fromEnv(const std::string &Fallback = "small");

  /// Returns the named preset; unknown names map to "small".
  static BenchScale preset(const std::string &Name);
};

} // namespace oppsla

#endif // OPPSLA_SUPPORT_BENCHSCALE_H
