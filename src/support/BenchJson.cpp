//===- support/BenchJson.cpp - Standard bench result artifact ----------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/BenchJson.h"

#include "support/ArgParse.h"
#include "support/Ledger.h"
#include "support/Logging.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <cmath>
#include <cstdio>

using namespace oppsla;

BenchJson::BenchJson(std::string Name, std::string Scale,
                     const ArgParse &Args)
    : Name(std::move(Name)), Scale(std::move(Scale)),
      Repeat(static_cast<int>(Args.getInt("repeat", 0))) {}

void BenchJson::addTelemetryCounters() {
  const std::string Skip = "nn.forward.";
  for (const auto &[Name, Value] :
       telemetry::MetricsRegistry::instance().counterValues()) {
    if (Name.compare(0, Skip.size(), Skip) == 0)
      continue;
    Metrics[Name] = static_cast<double>(Value);
  }
}

std::string BenchJson::render() const {
  char Head[64];
  std::snprintf(Head, sizeof(Head), "{\"schema\":%d,\"name\":\"",
                kBenchSchemaVersion);
  std::string Out = Head;
  telemetry::appendJsonEscaped(Out, Name);
  Out += "\",\"scale\":\"";
  telemetry::appendJsonEscaped(Out, Scale);
  std::snprintf(Head, sizeof(Head), "\",\"repeat\":%d,\"metrics\":{",
                Repeat);
  Out += Head;
  bool First = true;
  char Buf[40];
  for (const auto &[Key, Value] : Metrics) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    telemetry::appendJsonEscaped(Out, Key);
    Out += "\":";
    if (std::isfinite(Value)) {
      std::snprintf(Buf, sizeof(Buf), "%.9g", Value);
      Out += Buf;
    } else {
      Out += "null";
    }
  }
  Out += "}}\n";
  return Out;
}

bool BenchJson::write(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  const std::string Json = render();
  const size_t Written = std::fwrite(Json.data(), 1, Json.size(), F);
  return Written == Json.size() && std::fclose(F) == 0;
}

bool BenchJson::writeFromArgs(const ArgParse &Args) const {
  const std::string Path = Args.get("json-out", "");
  if (Path.empty())
    return true;
  if (!write(Path)) {
    logError() << "cannot write --json-out " << Path;
    return false;
  }
  return true;
}
