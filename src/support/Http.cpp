//===- support/Http.cpp - Minimal HTTP/1.1 plumbing --------------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Http.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

using namespace oppsla;
using namespace oppsla::http;

namespace {

#ifdef MSG_NOSIGNAL
constexpr int SendFlags = MSG_NOSIGNAL;
#else
constexpr int SendFlags = 0;
#endif

bool sendAll(int Fd, const char *Data, size_t Len) {
  size_t Off = 0;
  while (Off < Len) {
    const ssize_t N = ::send(Fd, Data + Off, Len - Off, SendFlags);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

std::string lower(std::string S) {
  std::transform(S.begin(), S.end(), S.begin(),
                 [](unsigned char C) { return std::tolower(C); });
  return S;
}

std::string strip(const std::string &S) {
  size_t B = 0, E = S.size();
  while (B < E && std::isspace(static_cast<unsigned char>(S[B])))
    ++B;
  while (E > B && std::isspace(static_cast<unsigned char>(S[E - 1])))
    --E;
  return S.substr(B, E - B);
}

/// Parses the request line + header block (everything before the blank
/// line) into \p Out.
bool parseHead(const std::string &Head, Request &Out, std::string &Error) {
  size_t LineEnd = Head.find("\r\n");
  if (LineEnd == std::string::npos)
    LineEnd = Head.size();
  const std::string RequestLine = Head.substr(0, LineEnd);

  const size_t M = RequestLine.find(' ');
  if (M == std::string::npos) {
    Error = "http: malformed request line";
    return false;
  }
  const size_t T = RequestLine.find(' ', M + 1);
  Out.Method = RequestLine.substr(0, M);
  Out.Target = T == std::string::npos
                   ? RequestLine.substr(M + 1)
                   : RequestLine.substr(M + 1, T - M - 1);
  if (Out.Method.empty() || Out.Target.empty() || Out.Target[0] != '/') {
    Error = "http: malformed request line '" + RequestLine + "'";
    return false;
  }

  size_t Pos = LineEnd;
  while (Pos < Head.size()) {
    // Skip the terminator of the previous line.
    if (Head.compare(Pos, 2, "\r\n") == 0)
      Pos += 2;
    else if (Head[Pos] == '\n')
      Pos += 1;
    if (Pos >= Head.size())
      break;
    size_t End = Head.find("\r\n", Pos);
    if (End == std::string::npos)
      End = Head.size();
    const std::string Line = Head.substr(Pos, End - Pos);
    Pos = End;
    const size_t Colon = Line.find(':');
    if (Colon == std::string::npos)
      continue; // tolerate junk header lines
    Out.Headers[lower(strip(Line.substr(0, Colon)))] =
        strip(Line.substr(Colon + 1));
  }
  return true;
}

/// Reads from \p Fd until \p Buf contains at least \p Want bytes. \returns
/// false on EOF/error before that.
bool recvUntil(int Fd, std::string &Buf, size_t Want) {
  char Chunk[4096];
  while (Buf.size() < Want) {
    const ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      return false;
    }
    Buf.append(Chunk, static_cast<size_t>(N));
  }
  return true;
}

} // namespace

std::string Request::header(const std::string &Name) const {
  const auto It = Headers.find(lower(Name));
  return It == Headers.end() ? "" : It->second;
}

bool http::readRequest(int Fd, Request &Out, std::string &Error) {
  // Phase 1: accumulate until the header terminator. A request line alone
  // is not a complete request — clients may legitimately deliver the head
  // in several packets.
  std::string Buf;
  size_t HeadEnd = std::string::npos;
  size_t TermLen = 4;
  char Chunk[4096];
  for (;;) {
    HeadEnd = Buf.find("\r\n\r\n");
    if (HeadEnd != std::string::npos)
      break;
    // Tolerate bare-LF clients.
    HeadEnd = Buf.find("\n\n");
    if (HeadEnd != std::string::npos) {
      TermLen = 2;
      break;
    }
    if (Buf.size() > MaxHeaderBytes) {
      Error = "http: request head exceeds " +
              std::to_string(MaxHeaderBytes) + " bytes";
      return false;
    }
    const ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = std::string("http: recv failed: ") + std::strerror(errno);
      return false;
    }
    if (N == 0) {
      Error = Buf.empty() ? "http: peer closed before sending a request"
                          : "http: peer closed mid-request head";
      return false;
    }
    Buf.append(Chunk, static_cast<size_t>(N));
  }

  Request R;
  if (!parseHead(Buf.substr(0, HeadEnd), R, Error))
    return false;

  // Phase 2: the body, exactly Content-Length bytes (anything already
  // received past the head counts toward it).
  const std::string LenStr = R.header("content-length");
  size_t BodyLen = 0;
  if (!LenStr.empty()) {
    char *End = nullptr;
    const unsigned long long V = std::strtoull(LenStr.c_str(), &End, 10);
    if (End == LenStr.c_str() || *End != '\0') {
      Error = "http: unparseable Content-Length '" + LenStr + "'";
      return false;
    }
    if (V > MaxBodyBytes) {
      Error = "http: body of " + LenStr + " bytes exceeds the " +
              std::to_string(MaxBodyBytes) + " byte limit";
      return false;
    }
    BodyLen = static_cast<size_t>(V);
  }
  std::string Body = Buf.substr(HeadEnd + TermLen);
  if (Body.size() < BodyLen && !recvUntil(Fd, Body, BodyLen)) {
    Error = "http: peer closed mid-body (got " +
            std::to_string(Body.size()) + " of " + std::to_string(BodyLen) +
            " bytes)";
    return false;
  }
  Body.resize(BodyLen);
  R.Body = std::move(Body);
  Out = std::move(R);
  return true;
}

const char *http::statusText(int Status) {
  switch (Status) {
  case 200:
    return "OK";
  case 202:
    return "Accepted";
  case 400:
    return "Bad Request";
  case 404:
    return "Not Found";
  case 405:
    return "Method Not Allowed";
  case 409:
    return "Conflict";
  case 429:
    return "Too Many Requests";
  case 500:
    return "Internal Server Error";
  default:
    return "Unknown";
  }
}

void http::sendResponse(
    int Fd, int Status, const std::string &ContentType,
    std::string_view Body,
    const std::vector<std::pair<std::string, std::string>> &ExtraHeaders) {
  std::string Header = "HTTP/1.1 " + std::to_string(Status) + " " +
                       statusText(Status) +
                       "\r\nContent-Type: " + ContentType +
                       "\r\nContent-Length: " + std::to_string(Body.size()) +
                       "\r\nConnection: close\r\n";
  for (const auto &[K, V] : ExtraHeaders)
    Header += K + ": " + V + "\r\n";
  Header += "\r\n";
  if (sendAll(Fd, Header.data(), Header.size()))
    sendAll(Fd, Body.data(), Body.size());
}

std::string http::queryParam(const std::string &Target,
                             const std::string &Key) {
  const size_t Q = Target.find('?');
  if (Q == std::string::npos)
    return "";
  size_t Pos = Q + 1;
  while (Pos < Target.size()) {
    size_t End = Target.find('&', Pos);
    if (End == std::string::npos)
      End = Target.size();
    const size_t Eq = Target.find('=', Pos);
    if (Eq != std::string::npos && Eq < End &&
        Target.compare(Pos, Eq - Pos, Key) == 0)
      return Target.substr(Eq + 1, End - Eq - 1);
    Pos = End + 1;
  }
  return "";
}

bool http::request(uint16_t Port, const std::string &Method,
                   const std::string &Target, const std::string &Body,
                   Response &Out, std::string &Error, double TimeoutSeconds,
                   const std::vector<std::pair<std::string, std::string>>
                       &ExtraHeaders) {
  const int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = std::string("http: socket() failed: ") + std::strerror(errno);
    return false;
  }
  timeval Timeout = {};
  Timeout.tv_sec = static_cast<time_t>(TimeoutSeconds);
  Timeout.tv_usec = static_cast<suseconds_t>(
      (TimeoutSeconds - static_cast<double>(Timeout.tv_sec)) * 1e6);
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Timeout, sizeof(Timeout));
  ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Timeout, sizeof(Timeout));

  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::connect(Fd, reinterpret_cast<const sockaddr *>(&Addr),
                sizeof(Addr)) != 0) {
    Error = "http: connect(127.0.0.1:" + std::to_string(Port) +
            ") failed: " + std::strerror(errno);
    ::close(Fd);
    return false;
  }

  std::string Req = Method + " " + Target +
                    " HTTP/1.1\r\nHost: 127.0.0.1\r\n";
  for (const auto &[K, V] : ExtraHeaders)
    Req += K + ": " + V + "\r\n";
  if (!Body.empty())
    Req += "Content-Type: application/json\r\nContent-Length: " +
           std::to_string(Body.size()) + "\r\n";
  Req += "Connection: close\r\n\r\n" + Body;
  if (!sendAll(Fd, Req.data(), Req.size())) {
    Error = std::string("http: send failed: ") + std::strerror(errno);
    ::close(Fd);
    return false;
  }

  std::string Raw;
  char Chunk[4096];
  for (;;) {
    const ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = std::string("http: recv failed: ") + std::strerror(errno);
      ::close(Fd);
      return false;
    }
    if (N == 0)
      break;
    Raw.append(Chunk, static_cast<size_t>(N));
  }
  ::close(Fd);

  // "HTTP/1.1 <code> <reason>\r\n...\r\n\r\n<body>"
  const size_t SP = Raw.find(' ');
  if (SP == std::string::npos || Raw.compare(0, 5, "HTTP/") != 0) {
    Error = "http: malformed response";
    return false;
  }
  Out.Status = std::atoi(Raw.c_str() + SP + 1);
  const size_t HeadEnd = Raw.find("\r\n\r\n");
  Out.Body = HeadEnd == std::string::npos ? "" : Raw.substr(HeadEnd + 4);
  return true;
}
