//===- support/Logging.h - Lightweight leveled logging ---------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny leveled logger. Long-running benches use it to narrate progress
/// (synthesis iterations, per-classifier sweeps) on stderr without polluting
/// the table output on stdout. The level is settable programmatically or via
/// the OPPSLA_LOG environment variable (error|warn|info|debug).
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_SUPPORT_LOGGING_H
#define OPPSLA_SUPPORT_LOGGING_H

#include <sstream>
#include <string>

namespace oppsla {

enum class LogLevel { Error = 0, Warn = 1, Info = 2, Debug = 3 };

/// Returns the process-wide log level (initialized from OPPSLA_LOG on first
/// use; defaults to Info).
LogLevel logLevel();

/// Overrides the process-wide log level.
void setLogLevel(LogLevel Level);

/// Emits one log line at \p Level to stderr if enabled.
void logLine(LogLevel Level, const std::string &Message);

namespace detail {
/// Stream-style log statement builder; flushes one line on destruction.
class LogStream {
public:
  explicit LogStream(LogLevel Level) : Level(Level) {}
  ~LogStream() { logLine(Level, Buffer.str()); }
  LogStream(const LogStream &) = delete;
  LogStream &operator=(const LogStream &) = delete;

  template <typename T> LogStream &operator<<(const T &Value) {
    Buffer << Value;
    return *this;
  }

private:
  LogLevel Level;
  std::ostringstream Buffer;
};
} // namespace detail

/// Usage: `logInfo() << "trained " << Name << " acc=" << Acc;`
inline detail::LogStream logError() {
  return detail::LogStream(LogLevel::Error);
}
inline detail::LogStream logWarn() { return detail::LogStream(LogLevel::Warn); }
inline detail::LogStream logInfo() { return detail::LogStream(LogLevel::Info); }
inline detail::LogStream logDebug() {
  return detail::LogStream(LogLevel::Debug);
}

} // namespace oppsla

#endif // OPPSLA_SUPPORT_LOGGING_H
