//===- support/Logging.h - Lightweight leveled logging ---------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny leveled logger. Long-running benches use it to narrate progress
/// (synthesis iterations, per-classifier sweeps) on stderr without polluting
/// the table output on stdout. The level is settable programmatically or via
/// the OPPSLA_LOG environment variable (error|warn|info|debug).
///
/// Every line — at every level, regardless of the stderr threshold — is also
/// recorded into a fixed-size lock-free ring (LogRecord) together with its
/// level and the calling thread's ambient trace id, so a running server can
/// expose its recent history live at `GET /logz?n=..&level=..` without any
/// writer-side locking or allocation.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_SUPPORT_LOGGING_H
#define OPPSLA_SUPPORT_LOGGING_H

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace oppsla {

enum class LogLevel { Error = 0, Warn = 1, Info = 2, Debug = 3 };

/// Returns the process-wide log level (initialized from OPPSLA_LOG on first
/// use; defaults to Info).
LogLevel logLevel();

/// Overrides the process-wide log level.
void setLogLevel(LogLevel Level);

/// Human-readable level name: "error"|"warn"|"info"|"debug".
const char *logLevelName(LogLevel Level);

/// Parses a level name (same vocabulary as OPPSLA_LOG). \returns false on
/// unknown input, leaving \p Out untouched.
bool parseLogLevel(const std::string &Name, LogLevel &Out);

/// Emits one log line at \p Level: to stderr if at or above the process
/// threshold, and into the in-memory log ring unconditionally (the ring is
/// the live-debugging view, so it keeps debug lines even when stderr is
/// quiet).
void logLine(LogLevel Level, const std::string &Message);

/// One record captured from the log ring.
struct LogRecord {
  uint64_t Seq = 0;  ///< global sequence number (monotone across the run)
  uint64_t TsUs = 0; ///< microseconds since the first log line (steady clock)
  LogLevel Level = LogLevel::Info;
  std::string Trace;   ///< ambient trace id at emit time; "" when unset
  std::string Message; ///< possibly truncated to the ring's slot size
};

/// Copies the newest ring records, oldest first: at most \p MaxEntries
/// records whose level is at or above \p MaxLevel in severity (i.e.
/// numerically <= MaxLevel — MaxLevel=Debug returns everything). Lock-free
/// on both sides; records overwritten mid-copy are skipped, never torn.
std::vector<LogRecord> logRingSnapshot(size_t MaxEntries, LogLevel MaxLevel);

/// Renders logRingSnapshot() as JSONL, one
/// `{"seq":..,"ts_us":..,"level":"..","trace":"..","msg":".."}` per line
/// (the "trace" key is omitted for records without one).
std::string logRingJsonl(size_t MaxEntries, LogLevel MaxLevel);

namespace detail {
/// Stream-style log statement builder; flushes one line on destruction.
class LogStream {
public:
  explicit LogStream(LogLevel Level) : Level(Level) {}
  ~LogStream() { logLine(Level, Buffer.str()); }
  LogStream(const LogStream &) = delete;
  LogStream &operator=(const LogStream &) = delete;

  template <typename T> LogStream &operator<<(const T &Value) {
    Buffer << Value;
    return *this;
  }

private:
  LogLevel Level;
  std::ostringstream Buffer;
};
} // namespace detail

/// Usage: `logInfo() << "trained " << Name << " acc=" << Acc;`
inline detail::LogStream logError() {
  return detail::LogStream(LogLevel::Error);
}
inline detail::LogStream logWarn() { return detail::LogStream(LogLevel::Warn); }
inline detail::LogStream logInfo() { return detail::LogStream(LogLevel::Info); }
inline detail::LogStream logDebug() {
  return detail::LogStream(LogLevel::Debug);
}

} // namespace oppsla

#endif // OPPSLA_SUPPORT_LOGGING_H
