//===- support/BenchScale.cpp - Experiment sizing knobs -------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/BenchScale.h"

#include <cstdlib>

using namespace oppsla;

BenchScale BenchScale::preset(const std::string &Name) {
  if (Name == "smoke")
    return BenchScale{/*Name=*/"smoke",
                      /*TrainPerClass=*/4,
                      /*TestPerClass=*/6,
                      /*NumClasses=*/2,
                      /*SynthIters=*/4,
                      /*SynthQueryCap=*/512,
                      /*EvalQueryCap=*/2048,
                      /*TrainEpochs=*/2,
                      /*ClassifierTrainSet=*/400,
                      /*CifarSide=*/16,
                      /*ImageNetSide=*/24};
  if (Name == "paper")
    return BenchScale{/*Name=*/"paper",
                      /*TrainPerClass=*/50,
                      /*TestPerClass=*/1000,
                      /*NumClasses=*/10,
                      /*SynthIters=*/210,
                      /*SynthQueryCap=*/8192,
                      /*EvalQueryCap=*/10000,
                      /*TrainEpochs=*/8,
                      /*ClassifierTrainSet=*/4000,
                      /*CifarSide=*/32,
                      /*ImageNetSide=*/64};
  // Default: "small" — shape-preserving but minutes, not hours.
  return BenchScale{/*Name=*/"small",
                    /*TrainPerClass=*/8,
                    /*TestPerClass=*/16,
                    /*NumClasses=*/4,
                    /*SynthIters=*/20,
                    /*SynthQueryCap=*/1024,
                    /*EvalQueryCap=*/4096,
                    /*TrainEpochs=*/8,
                    /*ClassifierTrainSet=*/2000,
                    /*CifarSide=*/32,
                    /*ImageNetSide=*/40};
}

BenchScale BenchScale::fromEnv(const std::string &Fallback) {
  const char *Env = std::getenv("OPPSLA_BENCH_SCALE");
  return preset(Env ? std::string(Env) : Fallback);
}
