//===- support/Metrics.cpp - Process-wide metrics registry -------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include "support/ArgParse.h"
#include "support/HwCounters.h"
#include "support/Ledger.h"
#include "support/Logging.h"
#include "support/Profiler.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <sstream>

using namespace oppsla;
using namespace oppsla::telemetry;

namespace {

/// fetch_add for atomic<double> via CAS (atomic<double>::fetch_add is
/// C++20 but not universally lock-free-optimized; this is portable).
void atomicAdd(std::atomic<double> &A, double Delta) {
  double Cur = A.load(std::memory_order_relaxed);
  while (!A.compare_exchange_weak(Cur, Cur + Delta,
                                  std::memory_order_relaxed))
    ;
}

void appendDouble(std::string &Out, double V) {
  if (!std::isfinite(V)) {
    Out += "null";
    return;
  }
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.9g", V);
  Out += Buf;
}

void appendUInt(std::string &Out, uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, V);
  Out += Buf;
}

std::atomic<bool> LayerTimingFlag{false};

/// Path for the deferred --metrics-out snapshot (finalizeTelemetry()).
std::string &pendingMetricsPath() {
  static std::string Path;
  return Path;
}

/// Path for the deferred --profile-out folded stacks.
std::string &pendingProfilePath() {
  static std::string Path;
  return Path;
}

/// Labels for the oppsla_run_info exposition metric.
struct RunInfoMap {
  std::mutex Mu;
  std::map<std::string, std::string> KV;
};

RunInfoMap &runInfo() {
  static RunInfoMap M;
  return M;
}

/// Maps a dotted instrument name onto the Prometheus charset
/// ([a-zA-Z0-9_]) under the oppsla_ namespace prefix.
std::string sanitizeMetricName(const std::string &Name) {
  std::string Out = "oppsla_";
  for (char C : Name) {
    const bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                    (C >= '0' && C <= '9') || C == '_';
    Out += Ok ? C : '_';
  }
  return Out;
}

std::string sanitizeLabelName(const std::string &Name) {
  std::string Out;
  for (char C : Name) {
    const bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                    (C >= '0' && C <= '9') || C == '_';
    Out += Ok ? C : '_';
  }
  if (Out.empty() || (Out[0] >= '0' && Out[0] <= '9'))
    Out.insert(Out.begin(), '_');
  return Out;
}

/// Prometheus label values escape backslash, double quote and newline.
void appendPromLabelEscaped(std::string &Out, const std::string &V) {
  for (char C : V) {
    if (C == '\\')
      Out += "\\\\";
    else if (C == '"')
      Out += "\\\"";
    else if (C == '\n')
      Out += "\\n";
    else
      Out += C;
  }
}

/// Sample values in the exposition format: non-finite spells NaN/+Inf/-Inf
/// (JSON's null is not valid there).
void appendPromDouble(std::string &Out, double V) {
  if (std::isnan(V)) {
    Out += "NaN";
    return;
  }
  if (std::isinf(V)) {
    Out += V > 0 ? "+Inf" : "-Inf";
    return;
  }
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.9g", V);
  Out += Buf;
}

} // namespace

Histogram::Histogram(std::vector<double> UpperBounds)
    : Bounds(std::move(UpperBounds)),
      Buckets(new std::atomic<uint64_t>[Bounds.size() + 1]) {
  assert(!Bounds.empty() && "histogram needs at least one bound");
  assert(std::is_sorted(Bounds.begin(), Bounds.end()) &&
         std::adjacent_find(Bounds.begin(), Bounds.end()) == Bounds.end() &&
         "bounds must be strictly increasing");
  for (size_t I = 0; I != Bounds.size() + 1; ++I)
    Buckets[I].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double X) {
  const auto It = std::lower_bound(Bounds.begin(), Bounds.end(), X);
  const size_t Idx = static_cast<size_t>(It - Bounds.begin());
  Buckets[Idx].fetch_add(1, std::memory_order_relaxed);
  N.fetch_add(1, std::memory_order_relaxed);
  atomicAdd(Sum, X);
}

double Histogram::mean() const {
  const uint64_t C = count();
  return C == 0 ? 0.0 : sum() / static_cast<double>(C);
}

uint64_t Histogram::bucketCount(size_t I) const {
  assert(I < numBuckets() && "bucket index out of range");
  return Buckets[I].load(std::memory_order_relaxed);
}

double Histogram::quantile(double Q) const {
  const uint64_t C = count();
  if (C == 0)
    return 0.0;
  Q = std::min(1.0, std::max(0.0, Q));
  const double Rank = Q * static_cast<double>(C);
  double Cum = 0.0;
  for (size_t I = 0; I != Bounds.size(); ++I) {
    const double InBucket =
        static_cast<double>(Buckets[I].load(std::memory_order_relaxed));
    if (InBucket > 0.0 && Cum + InBucket >= Rank) {
      // Linear interpolation between the bucket's edges; the first
      // bucket's lower edge is 0 (all recorded quantities are
      // non-negative: queries, seconds, batch sizes).
      const double Lower = I == 0 ? 0.0 : Bounds[I - 1];
      return Lower + (Bounds[I] - Lower) * (Rank - Cum) / InBucket;
    }
    Cum += InBucket;
  }
  // The rank falls in the overflow bucket, whose extent is unknown.
  return Bounds.back();
}

std::vector<double> oppsla::telemetry::exponentialBuckets(double Start,
                                                          double Factor,
                                                          size_t Count) {
  assert(Start > 0.0 && Factor > 1.0 && Count > 0 && "degenerate buckets");
  std::vector<double> Bounds;
  Bounds.reserve(Count);
  double B = Start;
  for (size_t I = 0; I != Count; ++I, B *= Factor)
    Bounds.push_back(B);
  return Bounds;
}

MetricsRegistry &MetricsRegistry::instance() {
  static MetricsRegistry R;
  return R;
}

Counter &MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Histogram &MetricsRegistry::histogram(const std::string &Name,
                                      std::vector<double> UpperBounds) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>(std::move(UpperBounds));
  return *Slot;
}

std::vector<std::pair<std::string, uint64_t>>
MetricsRegistry::counterValues() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::pair<std::string, uint64_t>> Out;
  Out.reserve(Counters.size());
  for (const auto &[Name, C] : Counters)
    Out.emplace_back(Name, C->value());
  return Out;
}

std::string MetricsRegistry::snapshotJson() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string Out;
  Out += "{\"counters\":{";
  bool First = true;
  for (const auto &[Name, C] : Counters) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    appendJsonEscaped(Out, Name);
    Out += "\":";
    appendUInt(Out, C->value());
  }
  Out += "},\"gauges\":{";
  First = true;
  for (const auto &[Name, G] : Gauges) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    appendJsonEscaped(Out, Name);
    Out += "\":";
    appendDouble(Out, G->value());
  }
  Out += "},\"histograms\":{";
  First = true;
  for (const auto &[Name, H] : Histograms) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    appendJsonEscaped(Out, Name);
    Out += "\":{\"count\":";
    appendUInt(Out, H->count());
    Out += ",\"sum\":";
    appendDouble(Out, H->sum());
    Out += ",\"mean\":";
    appendDouble(Out, H->mean());
    Out += ",\"p50\":";
    appendDouble(Out, H->quantile(0.5));
    Out += ",\"p90\":";
    appendDouble(Out, H->quantile(0.9));
    Out += ",\"p99\":";
    appendDouble(Out, H->quantile(0.99));
    Out += ",\"buckets\":[";
    for (size_t I = 0; I != H->numBuckets(); ++I) {
      if (I)
        Out += ',';
      Out += "{\"le\":";
      if (I < H->upperBounds().size())
        appendDouble(Out, H->upperBounds()[I]);
      else
        Out += "\"inf\"";
      Out += ",\"count\":";
      appendUInt(Out, H->bucketCount(I));
      Out += '}';
    }
    Out += "]}";
  }
  Out += '}';
  if (profileThreadCount() != 0) {
    Out += ",\"profile\":";
    Out += profileJson();
  }
  Out += '}';
  return Out;
}

std::string MetricsRegistry::textReport() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::ostringstream Out;
  for (const auto &[Name, C] : Counters)
    Out << Name << " = " << C->value() << "\n";
  for (const auto &[Name, G] : Gauges)
    Out << Name << " = " << G->value() << "\n";
  for (const auto &[Name, H] : Histograms) {
    Out << Name << ": count=" << H->count() << " mean=" << H->mean()
        << " p50=" << H->quantile(0.5) << " p90=" << H->quantile(0.9)
        << " p99=" << H->quantile(0.99) << " buckets[";
    for (size_t I = 0; I != H->numBuckets(); ++I) {
      if (I)
        Out << ' ';
      if (I < H->upperBounds().size())
        Out << "le" << H->upperBounds()[I];
      else
        Out << "inf";
      Out << ':' << H->bucketCount(I);
    }
    Out << "]\n";
  }
  return Out.str();
}

std::string MetricsRegistry::prometheusText() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string Out;
  char Buf[32];

  for (const auto &[Name, C] : Counters) {
    const std::string M = sanitizeMetricName(Name) + "_total";
    Out += "# HELP " + M + " OPPSLA counter " + Name + "\n";
    Out += "# TYPE " + M + " counter\n";
    Out += M + ' ';
    appendUInt(Out, C->value());
    Out += '\n';
  }
  for (const auto &[Name, G] : Gauges) {
    const std::string M = sanitizeMetricName(Name);
    Out += "# HELP " + M + " OPPSLA gauge " + Name + "\n";
    Out += "# TYPE " + M + " gauge\n";
    Out += M + ' ';
    appendPromDouble(Out, G->value());
    Out += '\n';
  }
  for (const auto &[Name, H] : Histograms) {
    const std::string M = sanitizeMetricName(Name);
    Out += "# HELP " + M + " OPPSLA histogram " + Name + "\n";
    Out += "# TYPE " + M + " histogram\n";
    uint64_t Cum = 0;
    for (size_t I = 0; I != H->upperBounds().size(); ++I) {
      Cum += H->bucketCount(I);
      Out += M + "_bucket{le=\"";
      std::snprintf(Buf, sizeof(Buf), "%.9g", H->upperBounds()[I]);
      Out += Buf;
      Out += "\"} ";
      appendUInt(Out, Cum);
      Out += '\n';
    }
    // The +Inf bucket is the running total: finite cumulative count plus
    // the overflow bucket, which by construction equals count().
    Out += M + "_bucket{le=\"+Inf\"} ";
    appendUInt(Out, Cum + H->bucketCount(H->numBuckets() - 1));
    Out += '\n';
    Out += M + "_sum ";
    appendPromDouble(Out, H->sum());
    Out += '\n';
    Out += M + "_count ";
    appendUInt(Out, Cum + H->bucketCount(H->numBuckets() - 1));
    Out += '\n';
  }
  {
    std::lock_guard<std::mutex> InfoLock(runInfo().Mu);
    if (!runInfo().KV.empty()) {
      Out += "# HELP oppsla_run_info Run metadata carried as labels.\n";
      Out += "# TYPE oppsla_run_info gauge\n";
      Out += "oppsla_run_info{";
      bool First = true;
      for (const auto &[K, V] : runInfo().KV) {
        if (!First)
          Out += ',';
        First = false;
        Out += sanitizeLabelName(K) + "=\"";
        appendPromLabelEscaped(Out, V);
        Out += '"';
      }
      Out += "} 1\n";
    }
  }
  return Out;
}

bool MetricsRegistry::empty() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counters.empty() && Gauges.empty() && Histograms.empty();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  Counters.clear();
  Gauges.clear();
  Histograms.clear();
}

Counter &oppsla::telemetry::counter(const std::string &Name) {
  return MetricsRegistry::instance().counter(Name);
}

Gauge &oppsla::telemetry::gauge(const std::string &Name) {
  return MetricsRegistry::instance().gauge(Name);
}

Histogram &oppsla::telemetry::histogram(const std::string &Name,
                                        std::vector<double> UpperBounds) {
  return MetricsRegistry::instance().histogram(Name, std::move(UpperBounds));
}

std::string oppsla::telemetry::snapshotMetricsJson() {
  return MetricsRegistry::instance().snapshotJson();
}

std::string oppsla::telemetry::metricsTextReport() {
  return MetricsRegistry::instance().textReport();
}

std::string oppsla::telemetry::prometheusTextExposition() {
  return MetricsRegistry::instance().prometheusText();
}

void oppsla::telemetry::setRunInfo(const std::string &Key,
                                   const std::string &Value) {
  std::lock_guard<std::mutex> Lock(runInfo().Mu);
  runInfo().KV[Key] = Value;
}

bool oppsla::telemetry::writeMetricsJson(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  const std::string Json = snapshotMetricsJson();
  const size_t Written = std::fwrite(Json.data(), 1, Json.size(), F);
  std::fputc('\n', F);
  const bool Ok = Written == Json.size() && std::fclose(F) == 0;
  return Ok;
}

void oppsla::telemetry::setLayerTimingEnabled(bool Enabled) {
  LayerTimingFlag.store(Enabled, std::memory_order_relaxed);
}

bool oppsla::telemetry::layerTimingEnabled() {
  return LayerTimingFlag.load(std::memory_order_relaxed);
}

std::string oppsla::telemetry::layerTimingReport() {
  // Collect the nn.forward.<i>.<layer>.{us,calls} counter pairs out of the
  // snapshot-ordered map; report in layer order with share of total.
  struct Row {
    std::string Layer;
    uint64_t Us = 0;
    uint64_t Calls = 0;
  };
  std::map<std::string, Row> Rows;
  const std::string Prefix = "nn.forward.";
  for (const auto &[Name, Value] :
       MetricsRegistry::instance().counterValues()) {
    if (Name.compare(0, Prefix.size(), Prefix) != 0)
      continue;
    const bool IsUs = Name.ends_with(".us");
    const bool IsCalls = Name.ends_with(".calls");
    if (!IsUs && !IsCalls)
      continue;
    const std::string Base = Name.substr(
        Prefix.size(), Name.size() - Prefix.size() - (IsUs ? 3 : 6));
    Row &R = Rows[Base];
    R.Layer = Base;
    if (IsUs)
      R.Us = Value;
    else
      R.Calls = Value;
  }
  if (Rows.empty())
    return "";
  uint64_t TotalUs = 0;
  for (const auto &[_, R] : Rows)
    TotalUs += R.Us;
  std::ostringstream Out;
  Out << "per-layer forward time:\n";
  for (const auto &[_, R] : Rows) {
    const double AvgUs =
        R.Calls ? static_cast<double>(R.Us) / static_cast<double>(R.Calls)
                : 0.0;
    const double Share =
        TotalUs ? 100.0 * static_cast<double>(R.Us) /
                      static_cast<double>(TotalUs)
                : 0.0;
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf),
                  "  %-28s calls=%-8" PRIu64 " total=%8.3f ms  avg=%9.1f us"
                  "  %5.1f%%\n",
                  R.Layer.c_str(), R.Calls,
                  static_cast<double>(R.Us) / 1000.0, AvgUs, Share);
    Out << Buf;
  }
  return Out.str();
}

namespace {

std::atomic<bool> ExitHandlersInstalled{false};
std::atomic<bool> FlushInProgress{false};

struct FlushHookRegistry {
  std::mutex Mu;
  uint64_t NextToken = 1;
  std::map<uint64_t, std::function<void()>> Hooks;
};

FlushHookRegistry &flushHooks() {
  static FlushHookRegistry R;
  return R;
}

/// Best-effort flush of every configured file sink. Runs from atexit and
/// from the SIGINT/SIGTERM handler; the exchange guard makes a signal
/// that lands during a flush a no-op instead of a reentrant corruption.
/// (File I/O is not async-signal-safe in general — for an interrupted
/// run, partially flushed telemetry beats none.)
void flushTelemetrySinks() {
  if (FlushInProgress.exchange(true))
    return;
  // Registered hooks first: they may still be emitting into the sinks
  // (e.g. serve mode draining per-job trace timelines to files). Copy
  // under the lock, run outside it — a hook may call back into telemetry.
  std::vector<std::function<void()>> Hooks;
  {
    FlushHookRegistry &R = flushHooks();
    std::lock_guard<std::mutex> Lock(R.Mu);
    Hooks.reserve(R.Hooks.size());
    for (const auto &[Token, Hook] : R.Hooks)
      Hooks.push_back(Hook);
  }
  for (const auto &Hook : Hooks)
    Hook();
  TraceWriter::instance().close();
  const std::string MetricsPath = pendingMetricsPath();
  if (!MetricsPath.empty())
    writeMetricsJson(MetricsPath);
  const std::string ProfilePath = pendingProfilePath();
  if (!ProfilePath.empty())
    writeProfileFolded(ProfilePath);
  FlushInProgress.store(false);
}

void telemetrySignalHandler(int Sig) {
  flushTelemetrySinks();
  std::signal(Sig, SIG_DFL);
  std::raise(Sig);
}

} // namespace

void oppsla::telemetry::installTelemetryExitHandlers() {
  if (ExitHandlersInstalled.exchange(true))
    return;
  std::atexit([] { flushTelemetrySinks(); });
  std::signal(SIGINT, telemetrySignalHandler);
  std::signal(SIGTERM, telemetrySignalHandler);
}

uint64_t
oppsla::telemetry::addTelemetryFlushHook(std::function<void()> Hook) {
  FlushHookRegistry &R = flushHooks();
  std::lock_guard<std::mutex> Lock(R.Mu);
  const uint64_t Token = R.NextToken++;
  R.Hooks.emplace(Token, std::move(Hook));
  return Token;
}

void oppsla::telemetry::removeTelemetryFlushHook(uint64_t Token) {
  FlushHookRegistry &R = flushHooks();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Hooks.erase(Token);
}

void oppsla::telemetry::flushTelemetryNow() { flushTelemetrySinks(); }

bool oppsla::telemetry::configureFromArgs(const ArgParse &Args) {
  const std::string TraceOut = Args.get("trace-out", "");
  if (!TraceOut.empty() && !TraceWriter::instance().open(TraceOut)) {
    logError() << "cannot open --trace-out " << TraceOut;
    return false;
  }
  const std::string MetricsOut = Args.get("metrics-out", "");
  pendingMetricsPath() = MetricsOut;
  if (!MetricsOut.empty() || Args.getFlag("layer-timing"))
    setLayerTimingEnabled(true);
  const std::string ProfileOut = Args.get("profile-out", "");
  pendingProfilePath() = ProfileOut;
  if (!ProfileOut.empty() || Args.getFlag("profile"))
    setProfilingEnabled(true);
  if (Args.getFlag("hw-counters")) {
    // Hardware counters only surface through profiler spans, so the flag
    // implies profiling. Unavailability (container seccomp, paranoid
    // sysctl) degrades to a no-op after one logged notice.
    setProfilingEnabled(true);
    setHwCountersEnabled(true);
    (void)hwCountersAvailable();
  }
  ledger::setServedPath(Args.get("ledger", ""));
  if (!TraceOut.empty() || !MetricsOut.empty() || !ProfileOut.empty())
    installTelemetryExitHandlers();
  return true;
}

bool oppsla::telemetry::finalizeTelemetry() {
  TraceWriter::instance().close();
  bool Ok = true;
  const std::string MetricsPath = pendingMetricsPath();
  pendingMetricsPath().clear();
  if (!MetricsPath.empty() && !writeMetricsJson(MetricsPath)) {
    logError() << "cannot write --metrics-out " << MetricsPath;
    Ok = false;
  }
  const std::string ProfilePath = pendingProfilePath();
  pendingProfilePath().clear();
  if (!ProfilePath.empty() && !writeProfileFolded(ProfilePath)) {
    logError() << "cannot write --profile-out " << ProfilePath;
    Ok = false;
  }
  return Ok;
}
