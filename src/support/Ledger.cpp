//===- support/Ledger.cpp - Longitudinal bench-result ledger -----------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Ledger.h"

#include "support/Json.h"

#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

using namespace oppsla;

#ifndef OPPSLA_BUILD_FLAGS
#define OPPSLA_BUILD_FLAGS "unknown"
#endif

namespace {

std::string readCpuModel() {
  std::ifstream In("/proc/cpuinfo");
  std::string Line;
  while (std::getline(In, Line)) {
    const size_t Colon = Line.find(':');
    if (Colon == std::string::npos)
      continue;
    if (Line.compare(0, 10, "model name") == 0) {
      size_t Start = Colon + 1;
      while (Start < Line.size() && Line[Start] == ' ')
        ++Start;
      return Line.substr(Start);
    }
  }
  return "unknown";
}

} // namespace

const HostFingerprint &oppsla::hostFingerprint() {
  static const HostFingerprint FP = [] {
    HostFingerprint F;
    F.CpuModel = readCpuModel();
    F.Cores = std::thread::hardware_concurrency();
    F.BuildFlags = OPPSLA_BUILD_FLAGS;
    return F;
  }();
  return FP;
}

std::string LedgerEntry::renderLine() const {
  std::string Out = "{\"schema\":";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%d", Schema);
  Out += Buf;
  Out += ",\"bench\":\"";
  json::escape(Out, Bench);
  Out += "\",\"scale\":\"";
  json::escape(Out, Scale);
  Out += "\",\"repeat\":";
  std::snprintf(Buf, sizeof(Buf), "%d", Repeat);
  Out += Buf;
  Out += ",\"git\":\"";
  json::escape(Out, GitDescribe);
  Out += "\",\"timestamp\":\"";
  json::escape(Out, Timestamp);
  Out += "\",\"host\":{\"cpu\":\"";
  json::escape(Out, Host.CpuModel);
  Out += "\",\"cores\":";
  std::snprintf(Buf, sizeof(Buf), "%u", Host.Cores);
  Out += Buf;
  Out += ",\"build_flags\":\"";
  json::escape(Out, Host.BuildFlags);
  Out += "\"},\"metrics\":{";
  bool First = true;
  for (const auto &[Key, Value] : Metrics) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    json::escape(Out, Key);
    Out += "\":";
    json::appendNumber(Out, Value);
  }
  Out += "}}\n";
  return Out;
}

bool LedgerEntry::parseLine(const std::string &Line, std::string &Error) {
  json::Value Doc;
  if (!json::parse(Line, Doc, Error))
    return false;
  if (!Doc.isObject()) {
    Error = "ledger row is not an object";
    return false;
  }
  Schema = static_cast<int>(Doc.getNumber("schema", 0));
  Bench = Doc.getString("bench");
  Scale = Doc.getString("scale");
  Repeat = static_cast<int>(Doc.getNumber("repeat", 0));
  GitDescribe = Doc.getString("git");
  Timestamp = Doc.getString("timestamp");
  if (const json::Value *H = Doc.find("host"); H && H->isObject()) {
    Host.CpuModel = H->getString("cpu");
    Host.Cores = static_cast<unsigned>(H->getNumber("cores", 0));
    Host.BuildFlags = H->getString("build_flags");
  }
  Metrics.clear();
  const json::Value *M = Doc.find("metrics");
  if (Bench.empty() || !M || !M->isObject()) {
    Error = "ledger row missing bench name or metrics map";
    return false;
  }
  for (const auto &[Key, V] : M->members()) {
    if (!V.isNumber() && !V.isNull()) {
      Error = "ledger metric '" + Key + "' is not numeric";
      return false;
    }
    if (V.isNumber())
      Metrics[Key] = V.number();
  }
  return true;
}

bool LedgerEntry::fromBenchArtifact(const json::Value &Doc,
                                    std::string &Error) {
  if (!Doc.isObject()) {
    Error = "bench artifact is not an object";
    return false;
  }
  // Schema 1 artifacts predate the "schema"/"repeat" fields.
  Schema = static_cast<int>(Doc.getNumber("schema", 1));
  Bench = Doc.getString("name");
  Scale = Doc.getString("scale");
  Repeat = static_cast<int>(Doc.getNumber("repeat", 0));
  Host = hostFingerprint();
  Metrics.clear();
  const json::Value *M = Doc.find("metrics");
  if (Bench.empty() || !M || !M->isObject()) {
    Error = "bench artifact missing name or metrics map";
    return false;
  }
  for (const auto &[Key, V] : M->members()) {
    if (!V.isNumber() && !V.isNull()) {
      Error = "bench metric '" + Key + "' is not numeric";
      return false;
    }
    if (V.isNumber())
      Metrics[Key] = V.number();
  }
  return true;
}

void oppsla::foldMetricsSnapshot(const json::Value &Snapshot,
                                 std::map<std::string, double> &Metrics) {
  if (const json::Value *C = Snapshot.find("counters"); C && C->isObject())
    for (const auto &[Key, V] : C->members())
      if (V.isNumber())
        Metrics[Key] = V.number();
  if (const json::Value *G = Snapshot.find("gauges"); G && G->isObject())
    for (const auto &[Key, V] : G->members())
      if (V.isNumber())
        Metrics["gauge." + Key] = V.number();
  if (const json::Value *H = Snapshot.find("histograms"); H && H->isObject())
    for (const auto &[Name, Hist] : H->members())
      for (const char *Field : {"count", "mean", "p50", "p90", "p99"})
        if (const json::Value *V = Hist.find(Field); V && V->isNumber())
          Metrics[Name + "." + Field] = V->number();
  if (const json::Value *P = Snapshot.find("profile"); P && P->isObject())
    if (const json::Value *Spans = P->find("spans"); Spans && Spans->isArray())
      for (const json::Value &Span : Spans->array()) {
        const std::string Path = Span.getString("path");
        if (Path.empty())
          continue;
        if (const json::Value *V = Span.find("self_us"); V && V->isNumber())
          Metrics["profile." + Path + ".self_us"] = V->number();
      }
}

bool oppsla::ledger::append(const std::string &Path, const LedgerEntry &Entry,
                            std::string &Error) {
  std::FILE *F = std::fopen(Path.c_str(), "a");
  if (!F) {
    Error = "cannot open " + Path + " for append";
    return false;
  }
  const std::string Line = Entry.renderLine();
  const size_t Written = std::fwrite(Line.data(), 1, Line.size(), F);
  const bool Ok = Written == Line.size() && std::fclose(F) == 0;
  if (!Ok)
    Error = "short write to " + Path;
  return Ok;
}

bool oppsla::ledger::readAll(const std::string &Path,
                             std::vector<LedgerEntry> &Out,
                             std::string &Error) {
  std::ifstream In(Path);
  if (!In) {
    Error = "cannot open " + Path;
    return false;
  }
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    LedgerEntry E;
    std::string RowError;
    if (!E.parseLine(Line, RowError)) {
      std::ostringstream O;
      O << Path << ":" << LineNo << ": " << RowError;
      Error = O.str();
      return false;
    }
    Out.push_back(std::move(E));
  }
  return true;
}

std::string oppsla::ledger::tailJson(const std::string &Path,
                                     size_t MaxEntries) {
  std::string Out = "{\"path\":\"";
  json::escape(Out, Path);
  Out += "\",";
  std::vector<LedgerEntry> Entries;
  std::string Error;
  if (Path.empty() || !readAll(Path, Entries, Error)) {
    Out += "\"rows\":0,\"entries\":[]}";
    return Out;
  }
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%zu", Entries.size());
  Out += "\"rows\":";
  Out += Buf;
  Out += ",\"entries\":[";
  const size_t Start =
      Entries.size() > MaxEntries ? Entries.size() - MaxEntries : 0;
  for (size_t I = Start; I != Entries.size(); ++I) {
    if (I != Start)
      Out += ',';
    std::string Line = Entries[I].renderLine();
    if (!Line.empty() && Line.back() == '\n')
      Line.pop_back();
    Out += Line;
  }
  Out += "]}";
  return Out;
}

namespace {
std::mutex ServedPathMu;
std::string ServedPathValue;
} // namespace

void oppsla::ledger::setServedPath(const std::string &Path) {
  std::lock_guard<std::mutex> Lock(ServedPathMu);
  ServedPathValue = Path;
}

std::string oppsla::ledger::servedPath() {
  std::lock_guard<std::mutex> Lock(ServedPathMu);
  return ServedPathValue;
}
