//===- support/StatsServer.h - Embedded HTTP stats endpoint ----*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal embedded HTTP server for live introspection of long sweeps
/// and synthesis runs (`--stats-port N`). Raw POSIX sockets, one blocking
/// accept thread, no dependencies. Endpoints:
///
///   GET /metrics       the metrics registry in Prometheus text
///                      exposition format (counters, gauges, histogram
///                      _bucket/_sum/_count series);
///   GET /profile       the profiler's current folded stacks (text);
///   GET /healthz       run progress JSON (done/total, success rate,
///                      avg queries, elapsed, ETA);
///   GET /ledger        the tail of the registered bench ledger
///                      (`--ledger`) plus hardware-counter state and the
///                      per-span profile snapshot with IPC/miss rates;
///   GET /quitquitquit  asks the server's owner to stop lingering (used
///                      by tests scraping a finished run).
///
/// The server binds 127.0.0.1 only. Port 0 binds an ephemeral port;
/// port() reports the actual one.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_SUPPORT_STATSSERVER_H
#define OPPSLA_SUPPORT_STATSSERVER_H

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace oppsla {
namespace telemetry {

class StatsServer {
public:
  StatsServer() = default;
  ~StatsServer();

  /// Binds 127.0.0.1:\p Port (0 = ephemeral) and starts the accept
  /// thread. \returns false (after logging) when the socket cannot be set
  /// up. start() on a running server is an error and returns false.
  bool start(uint16_t Port);

  /// The actually bound port (valid after a successful start()).
  uint16_t port() const { return BoundPort; }

  bool running() const { return ListenFd >= 0; }

  /// True once a client requested /quitquitquit.
  bool quitRequested() const {
    return Quit.load(std::memory_order_relaxed);
  }

  /// Blocks until quitRequested() or \p TimeoutSeconds elapsed. \returns
  /// quitRequested(). Used by `--stats-linger` so a test client can
  /// scrape a finished run before the process exits.
  bool waitQuit(double TimeoutSeconds);

  /// Stops accepting, closes the socket, joins the thread. Idempotent.
  void stop();

  StatsServer(const StatsServer &) = delete;
  StatsServer &operator=(const StatsServer &) = delete;

private:
  void serveLoop();

  int ListenFd = -1;
  uint16_t BoundPort = 0;
  std::thread Thread;
  std::atomic<bool> Quit{false};
  std::atomic<bool> Stopping{false};
};

} // namespace telemetry
} // namespace oppsla

#endif // OPPSLA_SUPPORT_STATSSERVER_H
