//===- support/HwCounters.h - perf_event hardware counters -----*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-thread hardware performance counters via `perf_event_open(2)`:
/// instructions, cycles, cache references/misses, and branch misses, read
/// as one counter group so a single `read(2)` snapshots all five. The
/// profiler attaches a snapshot pair to every `ProfileScope` when
/// `--hw-counters` is on, giving each span IPC and miss rates next to its
/// wall time — the hardware baseline the SIMD kernel work is judged by.
///
/// Containers routinely deny the syscall (seccomp EPERM, ENOSYS, or
/// `perf_event_paranoid` EACCES). The first failed probe latches the
/// subsystem unavailable process-wide and every subsequent read degrades
/// to an invalid (ignored) sample: enabling --hw-counters where perf is
/// unavailable costs one relaxed load per span and changes no output
/// except a one-line notice. Counter values are scaled by
/// time_enabled/time_running when the kernel multiplexes the group.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_SUPPORT_HWCOUNTERS_H
#define OPPSLA_SUPPORT_HWCOUNTERS_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace oppsla {
namespace telemetry {

/// Slot order of the counter group (and of every per-span accumulator).
enum HwCounterIndex : size_t {
  HwInstructions = 0,
  HwCycles,
  HwCacheRefs,
  HwCacheMisses,
  HwBranchMisses,
  HwNumCounters
};

/// Short stable name of slot \p I ("instructions", "cycles", ...).
const char *hwCounterName(size_t I);

/// Process-wide gate, mirrored by the `--hw-counters` flag. Off by
/// default; reading costs one relaxed load.
void setHwCountersEnabled(bool Enabled);
bool hwCountersEnabled();

/// True when perf_event_open worked at least once in this process. The
/// first call probes (opening this thread's group); a denied syscall
/// latches false for the process lifetime.
bool hwCountersAvailable();

/// One snapshot of this thread's counter group. Valid is false when the
/// subsystem is disabled or unavailable; Values are cumulative since the
/// thread's group was opened, multiplex-scaled.
struct HwSample {
  uint64_t Values[HwNumCounters] = {0, 0, 0, 0, 0};
  bool Valid = false;
};

/// Reads this thread's group (opened lazily on first use). Returns an
/// invalid sample when disabled or unavailable — never blocks or throws.
HwSample hwSample();

/// RAII convenience for code outside the profiler: samples at construction
/// and destruction and adds the per-slot deltas into \p Accum (an array of
/// HwNumCounters elements; untouched when sampling is unavailable).
class HwCountersScope {
public:
  explicit HwCountersScope(uint64_t *Accum) : Accum(Accum) {
    if (Accum)
      Start = hwSample();
  }
  ~HwCountersScope();
  HwCountersScope(const HwCountersScope &) = delete;
  HwCountersScope &operator=(const HwCountersScope &) = delete;

private:
  uint64_t *Accum;
  HwSample Start;
};

/// One-line human summary of a delta array: "ipc=1.82 cache-miss=3.1%
/// branch-miss/ki=4.2" (empty when instructions is 0).
std::string hwDeltaSummary(const uint64_t *Delta);

} // namespace telemetry
} // namespace oppsla

#endif // OPPSLA_SUPPORT_HWCOUNTERS_H
