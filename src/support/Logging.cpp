//===- support/Logging.cpp - Lightweight leveled logging -----------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Logging.h"

#include "support/Trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

using namespace oppsla;

namespace {

LogLevel parseEnvLevel() {
  const char *Env = std::getenv("OPPSLA_LOG");
  if (!Env)
    return LogLevel::Info;
  if (!std::strcmp(Env, "error"))
    return LogLevel::Error;
  if (!std::strcmp(Env, "warn"))
    return LogLevel::Warn;
  if (!std::strcmp(Env, "info"))
    return LogLevel::Info;
  if (!std::strcmp(Env, "debug"))
    return LogLevel::Debug;
  // Unrecognized values used to be silently treated as Info; warn once so
  // typos like OPPSLA_LOG=Debug don't go unnoticed.
  std::fprintf(stderr,
               "[oppsla:warn] unrecognized OPPSLA_LOG value '%s' "
               "(expected error|warn|info|debug); using info\n",
               Env);
  return LogLevel::Info;
}

LogLevel &currentLevel() {
  static LogLevel Level = parseEnvLevel();
  return Level;
}

const char *levelTag(LogLevel Level) {
  switch (Level) {
  case LogLevel::Error:
    return "error";
  case LogLevel::Warn:
    return "warn";
  case LogLevel::Info:
    return "info";
  case LogLevel::Debug:
    return "debug";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// The log ring: per-slot seqlock over a fixed array
//===----------------------------------------------------------------------===//
//
// Writers claim a global ticket with one fetch_add, then publish through the
// slot's sequence word: 2*ticket+1 while the payload is being written,
// 2*ticket+2 once published. Readers copy the payload and re-check the
// sequence word — if a writer lapped them the word changed and the copy is
// discarded. No locks, no allocation on the write path, and a stalled
// reader can never block logging.

constexpr size_t RingSlots = 1024; // power of two
constexpr size_t RingMsgBytes = 240;

struct RingSlot {
  std::atomic<uint64_t> Seq{0}; // 0 = never written
  uint64_t TsUs = 0;
  uint8_t Level = 0;
  uint8_t TraceLen = 0;
  uint16_t MsgLen = 0;
  char Trace[32];
  char Msg[RingMsgBytes];
};

RingSlot Ring[RingSlots];
std::atomic<uint64_t> RingCursor{0};

/// Microseconds since the first log line of the process (steady clock, so
/// ring timestamps are comparable to trace-span timestamps).
uint64_t ringNowUs() {
  static const std::chrono::steady_clock::time_point Start =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
}

void ringRecord(LogLevel Level, const std::string &Message) {
  const uint64_t TsUs = ringNowUs();
  const std::string &Trace = telemetry::traceContextId();
  const uint64_t Ticket =
      RingCursor.fetch_add(1, std::memory_order_relaxed);
  RingSlot &S = Ring[Ticket & (RingSlots - 1)];
  S.Seq.store(2 * Ticket + 1, std::memory_order_release);
  S.TsUs = TsUs;
  S.Level = static_cast<uint8_t>(Level);
  S.TraceLen =
      static_cast<uint8_t>(std::min(Trace.size(), sizeof(S.Trace)));
  std::memcpy(S.Trace, Trace.data(), S.TraceLen);
  S.MsgLen = static_cast<uint16_t>(std::min(Message.size(), RingMsgBytes));
  std::memcpy(S.Msg, Message.data(), S.MsgLen);
  S.Seq.store(2 * Ticket + 2, std::memory_order_release);
}

} // namespace

LogLevel oppsla::logLevel() { return currentLevel(); }

void oppsla::setLogLevel(LogLevel Level) { currentLevel() = Level; }

const char *oppsla::logLevelName(LogLevel Level) { return levelTag(Level); }

bool oppsla::parseLogLevel(const std::string &Name, LogLevel &Out) {
  for (LogLevel L : {LogLevel::Error, LogLevel::Warn, LogLevel::Info,
                     LogLevel::Debug}) {
    if (Name == levelTag(L)) {
      Out = L;
      return true;
    }
  }
  return false;
}

std::vector<LogRecord> oppsla::logRingSnapshot(size_t MaxEntries,
                                               LogLevel MaxLevel) {
  std::vector<LogRecord> Out;
  if (MaxEntries == 0)
    return Out;
  const uint64_t Cursor = RingCursor.load(std::memory_order_acquire);
  const uint64_t Floor = Cursor > RingSlots ? Cursor - RingSlots : 0;
  // Newest first, so the MaxEntries cap keeps the most recent lines;
  // reversed before returning.
  for (uint64_t T = Cursor; T-- > Floor;) {
    RingSlot &S = Ring[T & (RingSlots - 1)];
    const uint64_t Seq1 = S.Seq.load(std::memory_order_acquire);
    if (Seq1 != 2 * T + 2)
      continue; // never written, mid-write, or already lapped
    LogRecord R;
    R.Seq = T;
    R.TsUs = S.TsUs;
    R.Level = static_cast<LogLevel>(S.Level);
    R.Trace.assign(S.Trace, S.TraceLen);
    R.Message.assign(S.Msg, S.MsgLen);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (S.Seq.load(std::memory_order_relaxed) != Seq1)
      continue; // a writer lapped us mid-copy; the copy may be torn
    if (static_cast<int>(R.Level) > static_cast<int>(MaxLevel))
      continue;
    Out.push_back(std::move(R));
    if (Out.size() == MaxEntries)
      break;
  }
  std::reverse(Out.begin(), Out.end());
  return Out;
}

std::string oppsla::logRingJsonl(size_t MaxEntries, LogLevel MaxLevel) {
  std::string Out;
  for (const LogRecord &R : logRingSnapshot(MaxEntries, MaxLevel)) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "{\"seq\":%" PRIu64 ",\"ts_us\":%" PRIu64,
                  R.Seq, R.TsUs);
    Out += Buf;
    Out += ",\"level\":\"";
    Out += levelTag(R.Level);
    Out += '"';
    if (!R.Trace.empty()) {
      Out += ",\"trace\":\"";
      telemetry::appendJsonEscaped(Out, R.Trace);
      Out += '"';
    }
    Out += ",\"msg\":\"";
    telemetry::appendJsonEscaped(Out, R.Message);
    Out += "\"}\n";
  }
  return Out;
}

void oppsla::logLine(LogLevel Level, const std::string &Message) {
  // The ring sees every line (it is the live-debugging view); the stderr
  // threshold only gates the terminal.
  ringRecord(Level, Message);
  if (static_cast<int>(Level) > static_cast<int>(currentLevel()))
    return;
  // Compose the full line, then emit it with a single fwrite under a
  // mutex so concurrent callers never interleave fragments.
  std::string Line;
  Line.reserve(Message.size() + 16);
  Line += "[oppsla:";
  Line += levelTag(Level);
  Line += "] ";
  Line += Message;
  Line += '\n';
  static std::mutex Mu;
  std::lock_guard<std::mutex> Lock(Mu);
  std::fwrite(Line.data(), 1, Line.size(), stderr);
}
