//===- support/Logging.cpp - Lightweight leveled logging -----------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Logging.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace oppsla;

namespace {

LogLevel parseEnvLevel() {
  const char *Env = std::getenv("OPPSLA_LOG");
  if (!Env)
    return LogLevel::Info;
  if (!std::strcmp(Env, "error"))
    return LogLevel::Error;
  if (!std::strcmp(Env, "warn"))
    return LogLevel::Warn;
  if (!std::strcmp(Env, "debug"))
    return LogLevel::Debug;
  return LogLevel::Info;
}

LogLevel &currentLevel() {
  static LogLevel Level = parseEnvLevel();
  return Level;
}

const char *levelTag(LogLevel Level) {
  switch (Level) {
  case LogLevel::Error:
    return "error";
  case LogLevel::Warn:
    return "warn";
  case LogLevel::Info:
    return "info";
  case LogLevel::Debug:
    return "debug";
  }
  return "?";
}

} // namespace

LogLevel oppsla::logLevel() { return currentLevel(); }

void oppsla::setLogLevel(LogLevel Level) { currentLevel() = Level; }

void oppsla::logLine(LogLevel Level, const std::string &Message) {
  if (static_cast<int>(Level) > static_cast<int>(currentLevel()))
    return;
  std::fprintf(stderr, "[oppsla:%s] %s\n", levelTag(Level), Message.c_str());
}
