//===- support/Logging.cpp - Lightweight leveled logging -----------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Logging.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

using namespace oppsla;

namespace {

LogLevel parseEnvLevel() {
  const char *Env = std::getenv("OPPSLA_LOG");
  if (!Env)
    return LogLevel::Info;
  if (!std::strcmp(Env, "error"))
    return LogLevel::Error;
  if (!std::strcmp(Env, "warn"))
    return LogLevel::Warn;
  if (!std::strcmp(Env, "info"))
    return LogLevel::Info;
  if (!std::strcmp(Env, "debug"))
    return LogLevel::Debug;
  // Unrecognized values used to be silently treated as Info; warn once so
  // typos like OPPSLA_LOG=Debug don't go unnoticed.
  std::fprintf(stderr,
               "[oppsla:warn] unrecognized OPPSLA_LOG value '%s' "
               "(expected error|warn|info|debug); using info\n",
               Env);
  return LogLevel::Info;
}

LogLevel &currentLevel() {
  static LogLevel Level = parseEnvLevel();
  return Level;
}

const char *levelTag(LogLevel Level) {
  switch (Level) {
  case LogLevel::Error:
    return "error";
  case LogLevel::Warn:
    return "warn";
  case LogLevel::Info:
    return "info";
  case LogLevel::Debug:
    return "debug";
  }
  return "?";
}

} // namespace

LogLevel oppsla::logLevel() { return currentLevel(); }

void oppsla::setLogLevel(LogLevel Level) { currentLevel() = Level; }

void oppsla::logLine(LogLevel Level, const std::string &Message) {
  if (static_cast<int>(Level) > static_cast<int>(currentLevel()))
    return;
  // Compose the full line, then emit it with a single fwrite under a
  // mutex so concurrent callers never interleave fragments.
  std::string Line;
  Line.reserve(Message.size() + 16);
  Line += "[oppsla:";
  Line += levelTag(Level);
  Line += "] ";
  Line += Message;
  Line += '\n';
  static std::mutex Mu;
  std::lock_guard<std::mutex> Lock(Mu);
  std::fwrite(Line.data(), 1, Line.size(), stderr);
}
