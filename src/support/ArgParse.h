//===- support/ArgParse.h - Minimal command line parsing -------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal `--flag value` / `--flag` command line parsing for the example
/// and benchmark executables. Unknown flags are collected so callers can
/// report them; values are parsed on demand with defaults.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_SUPPORT_ARGPARSE_H
#define OPPSLA_SUPPORT_ARGPARSE_H

#include <map>
#include <string>
#include <vector>

namespace oppsla {

/// Parses `--key value` and bare `--switch` arguments.
///
/// A token starting with `--` consumes the following token as its value,
/// unless that token also starts with `--` (then it is a boolean switch).
/// Positional arguments are kept in order.
class ArgParse {
public:
  ArgParse(int Argc, const char *const *Argv);

  /// True if `--name` appeared at all (switch or key-value).
  bool has(const std::string &Name) const;

  /// Returns the string value of `--name`, or \p Default if absent.
  std::string get(const std::string &Name, const std::string &Default) const;

  /// Returns the integer value of `--name`, or \p Default if absent or
  /// unparseable.
  long long getInt(const std::string &Name, long long Default) const;

  /// Returns the double value of `--name`, or \p Default if absent or
  /// unparseable.
  double getDouble(const std::string &Name, double Default) const;

  /// Returns the boolean state of `--name` (present => true).
  bool getFlag(const std::string &Name) const { return has(Name); }

  const std::vector<std::string> &positional() const { return Positional; }

  /// Name of the executable (argv[0]).
  const std::string &program() const { return Program; }

private:
  std::string Program;
  std::map<std::string, std::string> Values;
  std::vector<std::string> Positional;
};

} // namespace oppsla

#endif // OPPSLA_SUPPORT_ARGPARSE_H
