//===- support/ThreadPool.h - Fixed-size worker pool -----------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed pool of worker threads draining one shared FIFO queue — no work
/// stealing, no priorities. The evaluation sweeps are embarrassingly
/// parallel across images once every attack run owns its RNG
/// (support/Rng.h: Rng::deriveRunSeed), so a plain queue is all the
/// scheduling the project needs; determinism comes from writing results
/// into pre-sized output slots, never from task ordering.
///
/// submit() returns a std::future<void> whose get() rethrows any exception
/// the task threw on the worker. forEach() is the common fan-out shape:
/// run Fn(I) for every I in [0, N) across the pool, block until done, and
/// rethrow the failing call with the lowest index (a deterministic choice
/// even though workers race).
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_SUPPORT_THREADPOOL_H
#define OPPSLA_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace oppsla {

class ArgParse;

/// Fixed-size FIFO thread pool.
class ThreadPool {
public:
  /// Spawns \p NumThreads workers; 0 is clamped to 1.
  explicit ThreadPool(size_t NumThreads);

  /// Drains outstanding tasks, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  size_t numThreads() const { return Workers.size(); }

  /// Enqueues \p Task. The future's get() blocks until the task ran and
  /// rethrows anything it threw.
  std::future<void> submit(std::function<void()> Task);

  /// Runs Fn(I) for every I in [0, N) on the pool and blocks until all
  /// calls finished. If any calls throw, the exception of the lowest
  /// failing index is rethrown (the rest still run to completion).
  void forEach(size_t N, const std::function<void(size_t)> &Fn);

  /// std::thread::hardware_concurrency with a floor of 1.
  static size_t hardwareThreads();

private:
  void workerLoop();

  std::mutex Mu;
  std::condition_variable HasWork;
  std::deque<std::packaged_task<void()>> Queue;
  std::vector<std::thread> Workers;
  bool Stopping = false;
};

/// Shared `--threads N` wiring for the CLI and bench binaries: N >= 1 is a
/// worker count, 0 means "all hardware threads", absent defaults to
/// \p Default (serial unless the caller says otherwise).
size_t threadCountFromArgs(const ArgParse &Args, size_t Default = 1);

} // namespace oppsla

#endif // OPPSLA_SUPPORT_THREADPOOL_H
