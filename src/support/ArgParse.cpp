//===- support/ArgParse.cpp - Minimal command line parsing ---------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ArgParse.h"

#include <cstdlib>

using namespace oppsla;

ArgParse::ArgParse(int Argc, const char *const *Argv) {
  if (Argc > 0)
    Program = Argv[0];
  for (int I = 1; I < Argc; ++I) {
    std::string Tok = Argv[I];
    if (Tok.rfind("--", 0) != 0) {
      Positional.push_back(Tok);
      continue;
    }
    std::string Key = Tok.substr(2);
    // `--key=value` form.
    if (auto Eq = Key.find('='); Eq != std::string::npos) {
      Values[Key.substr(0, Eq)] = Key.substr(Eq + 1);
      continue;
    }
    // `--key value` form, unless the next token is another flag.
    if (I + 1 < Argc && std::string(Argv[I + 1]).rfind("--", 0) != 0) {
      Values[Key] = Argv[++I];
      continue;
    }
    Values[Key] = "";
  }
}

bool ArgParse::has(const std::string &Name) const {
  return Values.count(Name) != 0;
}

std::string ArgParse::get(const std::string &Name,
                          const std::string &Default) const {
  auto It = Values.find(Name);
  return It == Values.end() ? Default : It->second;
}

long long ArgParse::getInt(const std::string &Name, long long Default) const {
  auto It = Values.find(Name);
  if (It == Values.end() || It->second.empty())
    return Default;
  char *End = nullptr;
  long long V = std::strtoll(It->second.c_str(), &End, 10);
  return (End && *End == '\0') ? V : Default;
}

double ArgParse::getDouble(const std::string &Name, double Default) const {
  auto It = Values.find(Name);
  if (It == Values.end() || It->second.empty())
    return Default;
  char *End = nullptr;
  double V = std::strtod(It->second.c_str(), &End);
  return (End && *End == '\0') ? V : Default;
}
