//===- support/Ledger.h - Longitudinal bench-result ledger -----*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The append-only JSONL ledger behind the perf-regression sentinel. Every
/// `BENCH_<name>.json` artifact a bench writes (plus, optionally, the
/// counters/quantiles/profile spans of a `--metrics-out` snapshot) can be
/// ingested as one ledger row, keyed by:
///
///   - the artifact schema version, bench name, scale, and repeat index;
///   - a git describe string and timestamp passed in via flags (the ledger
///     never shells out — provenance is the caller's statement);
///   - a host fingerprint: cpu model, core count, and the build flags the
///     binary was compiled with (so a -O0 run can never masquerade as a
///     regression of a -O3 baseline).
///
/// Rows are one JSON object per line, newest last; `oppsla_bench` renders
/// trajectories (`list`), deltas between runs (`diff`), and the noise-aware
/// regression gate (`gate`) on top of this file. The stats server's
/// `GET /ledger` endpoint serves the tail of the registered ledger for live
/// inspection.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_SUPPORT_LEDGER_H
#define OPPSLA_SUPPORT_LEDGER_H

#include <map>
#include <string>
#include <vector>

namespace oppsla {

namespace json {
class Value;
} // namespace json

/// Current version of both the BENCH_<name>.json artifact schema and the
/// ledger row schema (they evolve together; a row records the version it
/// was ingested at).
inline constexpr int kBenchSchemaVersion = 2;

/// What identifies the machine and build a ledger row was measured on.
struct HostFingerprint {
  std::string CpuModel;   ///< /proc/cpuinfo "model name" (or "unknown")
  unsigned Cores = 0;     ///< std::thread::hardware_concurrency()
  std::string BuildFlags; ///< compiler flags baked in at build time
};

/// The fingerprint of the running process (cpu model read once, cached).
const HostFingerprint &hostFingerprint();

/// One ledger row.
struct LedgerEntry {
  int Schema = kBenchSchemaVersion;
  std::string Bench;
  std::string Scale;
  int Repeat = 0;
  std::string GitDescribe; ///< from --git-describe (may be empty)
  std::string Timestamp;   ///< from --timestamp (may be empty)
  HostFingerprint Host;
  std::map<std::string, double> Metrics; ///< name-sorted, flat numeric

  /// Renders the row as one JSONL line (trailing newline included).
  std::string renderLine() const;

  /// Parses one JSONL line. \returns false with \p Error set on malformed
  /// rows (missing bench name, non-numeric metrics, ...).
  bool parseLine(const std::string &Line, std::string &Error);

  /// Fills Bench/Scale/Repeat/Schema/Metrics from a parsed BENCH_<name>
  /// artifact document. Accepts schema 1 artifacts (no "schema"/"repeat"
  /// fields) for old files; \returns false with \p Error otherwise.
  bool fromBenchArtifact(const json::Value &Doc, std::string &Error);
};

/// Folds a `--metrics-out` snapshot document into \p Metrics: every
/// counter as-is, every gauge under `gauge.<name>`, histogram count/mean/
/// p50/p90/p99 under `<name>.count` etc., and each profile span's self
/// time under `profile.<path>.self_us`. Non-numeric entries are skipped.
void foldMetricsSnapshot(const json::Value &Snapshot,
                         std::map<std::string, double> &Metrics);

/// File operations over the append-only JSONL ledger.
namespace ledger {

/// Appends one row. \returns false with \p Error when the file cannot be
/// opened or written.
bool append(const std::string &Path, const LedgerEntry &Entry,
            std::string &Error);

/// Reads every row, oldest first. Blank lines are skipped; a malformed
/// line fails the read (an append-only ledger should never be hand-edited
/// into a half-parsable state). \returns false with \p Error then.
bool readAll(const std::string &Path, std::vector<LedgerEntry> &Out,
             std::string &Error);

/// JSON document for the stats server's `GET /ledger`: the registered
/// path, total row count, and the newest \p MaxEntries rows (raw row
/// objects, oldest of the tail first). A missing/empty/unregistered ledger
/// yields a document with `"rows":0`.
std::string tailJson(const std::string &Path, size_t MaxEntries);

/// Registers the ledger path served by `GET /ledger` (the CLI's
/// `--ledger` flag). Thread-safe; empty string unregisters.
void setServedPath(const std::string &Path);
std::string servedPath();

} // namespace ledger
} // namespace oppsla

#endif // OPPSLA_SUPPORT_LEDGER_H
