//===- support/Metrics.h - Process-wide metrics registry -------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide metrics registry with three instrument kinds:
///
///   - Counter:   monotonically increasing uint64 (relaxed atomic);
///   - Gauge:     last-written double;
///   - Histogram: fixed upper-bound buckets plus an overflow bucket, with
///                running count/sum — enough to report queries-per-attack
///                distributions and span durations without per-sample
///                allocation.
///
/// Instruments are created on first use and live for the process lifetime,
/// so hot paths cache the returned reference (`static Counter &C = ...`)
/// and pay only a relaxed atomic op per update. snapshotMetricsJson()
/// serializes everything for `--metrics-out`; metricsTextReport() renders
/// the same data for humans (the CLI's `metrics:` section).
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_SUPPORT_METRICS_H
#define OPPSLA_SUPPORT_METRICS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace oppsla {

class ArgParse;

namespace telemetry {

/// Monotonic event counter.
class Counter {
public:
  void inc(uint64_t Delta = 1) {
    V.fetch_add(Delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Last-value instrument.
class Gauge {
public:
  void set(double X) { V.store(X, std::memory_order_relaxed); }
  void add(double Delta) {
    double Cur = V.load(std::memory_order_relaxed);
    while (!V.compare_exchange_weak(Cur, Cur + Delta,
                                    std::memory_order_relaxed))
      ;
  }
  double value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<double> V{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations X <= UpperBounds[i]
/// (first matching bucket); observations above the last bound land in the
/// overflow bucket. Thread-safe; concurrent observes never lose samples.
class Histogram {
public:
  /// \p UpperBounds must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> UpperBounds);

  void observe(double X);

  uint64_t count() const { return N.load(std::memory_order_relaxed); }
  double sum() const { return Sum.load(std::memory_order_relaxed); }
  double mean() const;
  /// Estimates the \p Q quantile (0 < Q < 1) by linear interpolation
  /// within the bucket the target rank falls into. Observations in the
  /// overflow bucket clamp to the last finite bound (the histogram does
  /// not know how far above it they landed). Returns 0 when empty.
  double quantile(double Q) const;

  const std::vector<double> &upperBounds() const { return Bounds; }
  /// Number of buckets including overflow: upperBounds().size() + 1.
  size_t numBuckets() const { return Bounds.size() + 1; }
  uint64_t bucketCount(size_t I) const;

private:
  std::vector<double> Bounds;
  std::unique_ptr<std::atomic<uint64_t>[]> Buckets;
  std::atomic<uint64_t> N{0};
  std::atomic<double> Sum{0.0};
};

/// `Count` upper bounds starting at \p Start, each \p Factor times the
/// previous: the standard shape for query/duration distributions.
std::vector<double> exponentialBuckets(double Start, double Factor,
                                      size_t Count);

/// Name-keyed singleton owning every instrument. References returned are
/// stable for the process lifetime (instruments are never destroyed until
/// exit, and reset() only zeroes the map for tests).
class MetricsRegistry {
public:
  static MetricsRegistry &instance();

  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  /// Returns the existing histogram for \p Name if already registered
  /// (its bounds win); otherwise creates one with \p UpperBounds.
  Histogram &histogram(const std::string &Name,
                       std::vector<double> UpperBounds);

  /// Name-sorted snapshot of all counters.
  std::vector<std::pair<std::string, uint64_t>> counterValues() const;

  /// Full JSON snapshot: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{"count","sum","mean","p50","p90","p99",
  /// "buckets":[{"le","count"}]}},"profile":{...}} — the profile block is
  /// present only when the span profiler recorded something.
  std::string snapshotJson() const;
  /// Human-readable dump of the same data, one instrument per line.
  std::string textReport() const;
  /// Prometheus text exposition (version 0.0.4) of every instrument:
  /// `# HELP`/`# TYPE` headers, `oppsla_`-prefixed sanitized names,
  /// `_total`-suffixed counters, cumulative `_bucket{le="..."}` series
  /// plus `_sum`/`_count` per histogram, and an `oppsla_run_info{...} 1`
  /// info metric carrying the labels set via setRunInfo().
  std::string prometheusText() const;

  bool empty() const;
  /// Drops every instrument. Only for tests — invalidates cached refs.
  void reset();

  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

private:
  MetricsRegistry() = default;

  mutable std::mutex Mu;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

/// Registry conveniences.
Counter &counter(const std::string &Name);
Gauge &gauge(const std::string &Name);
Histogram &histogram(const std::string &Name,
                     std::vector<double> UpperBounds);
std::string snapshotMetricsJson();
std::string metricsTextReport();
/// MetricsRegistry::prometheusText() of the singleton (the `/metrics`
/// endpoint payload).
std::string prometheusTextExposition();
/// Writes snapshotMetricsJson() to \p Path. \returns true on success.
bool writeMetricsJson(const std::string &Path);

/// Attaches a key/value label to the `oppsla_run_info` metric of the
/// Prometheus exposition (command name, attack kind, model arch, ...).
/// Setting an existing key overwrites it.
void setRunInfo(const std::string &Key, const std::string &Value);

/// RAII wall-clock span. Records elapsed seconds into \p H (when non-null)
/// on destruction; seconds() reads the running value early.
class ScopedTimer {
public:
  explicit ScopedTimer(Histogram *H = nullptr)
      : H(H), Start(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    if (H)
      H->observe(seconds());
  }
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Start)
        .count();
  }
  /// Detaches the timer from its histogram (nothing recorded).
  void cancel() { H = nullptr; }

private:
  Histogram *H;
  std::chrono::steady_clock::time_point Start;
};

/// Per-layer forward timing gate for Sequential (off by default; guarded so
/// the disabled path costs one relaxed load).
void setLayerTimingEnabled(bool Enabled);
bool layerTimingEnabled();

/// Formats the `nn.forward.<i>.<layer>` counters recorded under layer
/// timing as a per-layer table (calls, total ms, avg us, share). Empty
/// string when no layer timings were recorded.
std::string layerTimingReport();

/// Applies the standard telemetry flags of \p Args:
///   --trace-out <path>    open the JSONL trace sink
///   --metrics-out <path>  write a metrics JSON snapshot at finalize
///                         (also enables per-layer forward timing)
///   --layer-timing        enable per-layer forward timing only
///   --profile             enable the hierarchical span profiler
///   --profile-out <path>  write folded stacks at finalize (implies
///                         --profile)
///   --hw-counters         attach perf_event hardware counters to every
///                         profiler span (implies --profile; no-op with a
///                         logged notice when perf_event_open is denied)
///   --ledger <path>       register the bench ledger served by the stats
///                         server's GET /ledger endpoint
/// When any file sink is configured, installs best-effort flush handlers
/// (atexit + SIGINT/SIGTERM) so the sinks survive an interrupted run.
/// \returns false (after logging) if the trace sink cannot be opened.
bool configureFromArgs(const ArgParse &Args);

/// Closes the trace sink and writes the pending --metrics-out snapshot
/// and --profile-out folded stacks. \returns false if a sink could not be
/// written.
bool finalizeTelemetry();

/// Installs the atexit + SIGINT/SIGTERM flush handlers directly (done
/// automatically by configureFromArgs when a file sink is requested).
/// Idempotent.
void installTelemetryExitHandlers();

/// Registers \p Hook to run at telemetry flush time — atexit, fatal
/// signal, or an explicit flushTelemetryNow() — *before* the file sinks
/// close, so subsystems with their own buffered state (e.g. per-job trace
/// timelines in serve mode) can drain into files. \returns a token for
/// removeTelemetryFlushHook(). Hooks must be idempotent: a signal can
/// arrive after an explicit drain already ran them.
uint64_t addTelemetryFlushHook(std::function<void()> Hook);
void removeTelemetryFlushHook(uint64_t Token);

/// Runs the flush hooks and file-sink flush immediately (same body the
/// exit handlers run). Used by orderly shutdown paths (/quitquitquit)
/// that exit via _exit() and would otherwise skip atexit.
void flushTelemetryNow();

} // namespace telemetry
} // namespace oppsla

#endif // OPPSLA_SUPPORT_METRICS_H
