//===- support/Table.cpp - Text table / CSV rendering --------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <cassert>
#include <iomanip>
#include <sstream>

using namespace oppsla;

Table::Table(std::vector<std::string> Header) : Header(std::move(Header)) {
  assert(!this->Header.empty() && "table must have at least one column");
}

void Table::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Header.size() && "row width must match header");
  Rows.push_back(std::move(Row));
}

void Table::addRow(const std::string &Label, const std::vector<double> &Values,
                   int Precision) {
  std::vector<std::string> Row;
  Row.reserve(Values.size() + 1);
  Row.push_back(Label);
  for (double V : Values)
    Row.push_back(fmt(V, Precision));
  addRow(std::move(Row));
}

std::string Table::fmt(double Value, int Precision) {
  std::ostringstream OS;
  OS << std::fixed << std::setprecision(Precision) << Value;
  return OS.str();
}

void Table::print(std::ostream &OS) const {
  std::vector<size_t> Widths(Header.size(), 0);
  for (size_t C = 0; C != Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto PrintRow = [&](const std::vector<std::string> &Row) {
    OS << "| ";
    for (size_t C = 0; C != Row.size(); ++C) {
      OS << std::left << std::setw(static_cast<int>(Widths[C])) << Row[C];
      OS << " | ";
    }
    OS << "\n";
  };

  PrintRow(Header);
  OS << "|";
  for (size_t C = 0; C != Header.size(); ++C)
    OS << std::string(Widths[C] + 2, '-') << "|";
  OS << "\n";
  for (const auto &Row : Rows)
    PrintRow(Row);
}

void Table::printCsv(std::ostream &OS) const {
  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C != Row.size(); ++C) {
      if (C)
        OS << ",";
      OS << Row[C];
    }
    OS << "\n";
  };
  PrintRow(Header);
  for (const auto &Row : Rows)
    PrintRow(Row);
}
