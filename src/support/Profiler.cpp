//===- support/Profiler.cpp - Hierarchical span profiler ---------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Profiler.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>

using namespace oppsla;
using namespace oppsla::telemetry;

namespace oppsla::telemetry::profdetail {

/// One span call site within one thread's tree. Structure is written only
/// by the owning thread; Count/TotalNs and the child links are atomic so a
/// snapshot thread can read a consistent (if slightly stale) tree while
/// spans are still being recorded.
struct ProfNode {
  const char *Name = nullptr;
  ProfNode *Parent = nullptr;
  std::atomic<ProfNode *> FirstChild{nullptr};
  std::atomic<ProfNode *> NextSibling{nullptr};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> TotalNs{0};
  /// Inclusive hardware counter totals (HwCounterIndex order) and how many
  /// completed spans contributed valid samples. Zero unless --hw-counters.
  std::atomic<uint64_t> Hw[HwNumCounters] = {};
  std::atomic<uint64_t> HwCount{0};
};

/// Per-thread arena: a node tree plus the enter/exit cursor. Nodes live in
/// a deque so appending never moves existing nodes (the snapshot thread
/// holds raw pointers into it).
struct ProfArena {
  ProfNode Root;
  ProfNode *Current = &Root;
  std::deque<ProfNode> Nodes;
};

} // namespace oppsla::telemetry::profdetail

namespace {

using profdetail::ProfArena;
using profdetail::ProfNode;

std::atomic<bool> ProfilingFlag{false};

/// Registry of every arena ever created. Arenas outlive their threads (a
/// sweep's worker pool is torn down before the report is rendered), so the
/// registry shares ownership with each thread's TLS slot. Epoch bumps on
/// resetProfiler() so stale TLS arenas re-register fresh ones.
struct ProfRegistry {
  std::mutex Mu;
  std::vector<std::shared_ptr<ProfArena>> Arenas;
  std::atomic<uint64_t> Epoch{1};
};

ProfRegistry &registry() {
  static ProfRegistry R;
  return R;
}

struct TlsArena {
  std::shared_ptr<ProfArena> Arena;
  uint64_t Epoch = 0;
};

/// Aggregated node of the cross-thread merge, keyed by span-name content.
struct MergedNode {
  uint64_t Count = 0;
  uint64_t TotalNs = 0;
  uint64_t Hw[HwNumCounters] = {0, 0, 0, 0, 0};
  uint64_t HwCount = 0;
  std::map<std::string, MergedNode> Children;
};

void mergeInto(MergedNode &Dst, const ProfNode &Src) {
  Dst.Count += Src.Count.load(std::memory_order_relaxed);
  Dst.TotalNs += Src.TotalNs.load(std::memory_order_relaxed);
  for (size_t I = 0; I != HwNumCounters; ++I)
    Dst.Hw[I] += Src.Hw[I].load(std::memory_order_relaxed);
  Dst.HwCount += Src.HwCount.load(std::memory_order_relaxed);
  for (const ProfNode *C = Src.FirstChild.load(std::memory_order_acquire); C;
       C = C->NextSibling.load(std::memory_order_relaxed))
    mergeInto(Dst.Children[C->Name], *C);
}

/// Builds the merged forest over all arenas. \p Threads (optional) gets
/// the number of arenas with at least one recorded span.
MergedNode mergedForest(size_t *Threads = nullptr) {
  std::vector<std::shared_ptr<ProfArena>> Arenas;
  {
    std::lock_guard<std::mutex> Lock(registry().Mu);
    Arenas = registry().Arenas;
  }
  MergedNode Root;
  size_t Active = 0;
  for (const auto &A : Arenas) {
    if (!A->Root.FirstChild.load(std::memory_order_acquire))
      continue;
    ++Active;
    for (const ProfNode *C = A->Root.FirstChild.load(std::memory_order_acquire);
         C; C = C->NextSibling.load(std::memory_order_relaxed))
      mergeInto(Root.Children[C->Name], *C);
  }
  if (Threads)
    *Threads = Active;
  return Root;
}

void flatten(const MergedNode &N, const std::string &Path,
             const std::string &Name, size_t Depth,
             std::vector<ProfileEntry> &Out) {
  // Siblings by descending total time, then name for determinism.
  std::vector<const std::pair<const std::string, MergedNode> *> Order;
  Order.reserve(N.Children.size());
  for (const auto &KV : N.Children)
    Order.push_back(&KV);
  std::sort(Order.begin(), Order.end(), [](const auto *A, const auto *B) {
    if (A->second.TotalNs != B->second.TotalNs)
      return A->second.TotalNs > B->second.TotalNs;
    return A->first < B->first;
  });

  // An in-flight span (entered, never exited) has Count == 0: it gets no
  // entry of its own — it contributes only after it exits — but completed
  // descendants underneath it are still emitted with their full path, so
  // a mid-run /profile scrape sees finished work under the open root.
  if (!Name.empty() && N.Count != 0) {
    uint64_t ChildTotal = 0;
    for (const auto &[_, C] : N.Children)
      ChildTotal += C.TotalNs;
    ProfileEntry E;
    E.Path = Path;
    E.Name = Name;
    E.Depth = Depth;
    E.Count = N.Count;
    E.TotalNs = N.TotalNs;
    E.SelfNs = N.TotalNs > ChildTotal ? N.TotalNs - ChildTotal : 0;
    for (size_t I = 0; I != HwNumCounters; ++I)
      E.Hw[I] = N.Hw[I];
    E.HwCount = N.HwCount;
    Out.push_back(std::move(E));
  }
  for (const auto *KV : Order) {
    const std::string ChildPath =
        Path.empty() ? KV->first : Path + ";" + KV->first;
    flatten(KV->second, ChildPath, KV->first,
            Name.empty() ? Depth : Depth + 1, Out);
  }
}

} // namespace

ProfArena &oppsla::telemetry::profdetail::arena() {
  thread_local TlsArena Tls;
  const uint64_t Epoch = registry().Epoch.load(std::memory_order_relaxed);
  if (!Tls.Arena || Tls.Epoch != Epoch) {
    Tls.Arena = std::make_shared<ProfArena>();
    Tls.Epoch = Epoch;
    std::lock_guard<std::mutex> Lock(registry().Mu);
    registry().Arenas.push_back(Tls.Arena);
  }
  return *Tls.Arena;
}

ProfNode *oppsla::telemetry::profdetail::enter(ProfArena &A,
                                               const char *Name) {
  ProfNode *Cur = A.Current;
  for (ProfNode *C = Cur->FirstChild.load(std::memory_order_relaxed); C;
       C = C->NextSibling.load(std::memory_order_relaxed)) {
    // Pointer comparison is the fast path (one call site, one literal);
    // content comparison catches equal literals from different TUs.
    if (C->Name == Name || std::strcmp(C->Name, Name) == 0) {
      A.Current = C;
      return C;
    }
  }
  ProfNode &N = A.Nodes.emplace_back();
  N.Name = Name;
  N.Parent = Cur;
  // Publish at the list head with release so a concurrent snapshot sees
  // the node fully initialized. Only the owner thread ever inserts.
  N.NextSibling.store(Cur->FirstChild.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  Cur->FirstChild.store(&N, std::memory_order_release);
  A.Current = &N;
  return &N;
}

void oppsla::telemetry::profdetail::exit(ProfArena &A, ProfNode *N,
                                         uint64_t Ns,
                                         const HwSample *HwStart) {
  N->Count.fetch_add(1, std::memory_order_relaxed);
  N->TotalNs.fetch_add(Ns, std::memory_order_relaxed);
  if (HwStart && HwStart->Valid) {
    const HwSample End = hwSample();
    if (End.Valid) {
      for (size_t I = 0; I != HwNumCounters; ++I)
        if (End.Values[I] > HwStart->Values[I])
          N->Hw[I].fetch_add(End.Values[I] - HwStart->Values[I],
                             std::memory_order_relaxed);
      N->HwCount.fetch_add(1, std::memory_order_relaxed);
    }
  }
  A.Current = N->Parent;
}

void oppsla::telemetry::setProfilingEnabled(bool Enabled) {
  ProfilingFlag.store(Enabled, std::memory_order_relaxed);
}

bool oppsla::telemetry::profilingEnabled() {
  return ProfilingFlag.load(std::memory_order_relaxed);
}

const char *oppsla::telemetry::internProfileName(const std::string &Name) {
  static std::mutex Mu;
  static std::set<std::string> Interned;
  std::lock_guard<std::mutex> Lock(Mu);
  return Interned.insert(Name).first->c_str();
}

namespace {
/// See ambientProfileRoot(): the task-level span name pool workers should
/// nest their spans under. Plain thread-local pointer to an interned (or
/// literal) name.
thread_local const char *AmbientRoot = nullptr;
} // namespace

void oppsla::telemetry::setAmbientProfileRoot(const char *Name) {
  AmbientRoot = Name;
}

const char *oppsla::telemetry::ambientProfileRoot() { return AmbientRoot; }

std::vector<ProfileEntry> oppsla::telemetry::profileSnapshot() {
  const MergedNode Root = mergedForest();
  std::vector<ProfileEntry> Out;
  flatten(Root, "", "", 0, Out);
  return Out;
}

size_t oppsla::telemetry::profileThreadCount() {
  size_t Threads = 0;
  (void)mergedForest(&Threads);
  return Threads;
}

std::string oppsla::telemetry::profileTextReport() {
  size_t Threads = 0;
  const MergedNode Root = mergedForest(&Threads);
  std::vector<ProfileEntry> Entries;
  flatten(Root, "", "", 0, Entries);
  if (Entries.empty())
    return "";

  uint64_t GrandTotalNs = 0;
  for (const auto &[_, C] : Root.Children)
    GrandTotalNs += C.TotalNs;
  // Hardware columns only when at least one span carried a valid sample,
  // so runs without --hw-counters render byte-identically to before.
  bool HaveHw = false;
  for (const ProfileEntry &E : Entries)
    HaveHw = HaveHw || E.HwCount > 0;

  std::string Out;
  char Buf[320];
  std::snprintf(Buf, sizeof(Buf),
                "profile: %zu thread%s, %zu span path%s\n", Threads,
                Threads == 1 ? "" : "s", Entries.size(),
                Entries.size() == 1 ? "" : "s");
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf), "  %-40s %10s %14s %12s %7s", "span",
                "count", "total ms", "self ms", "%");
  Out += Buf;
  if (HaveHw) {
    std::snprintf(Buf, sizeof(Buf), " %6s %8s %7s", "ipc", "c-miss%",
                  "bm/ki");
    Out += Buf;
  }
  Out += '\n';
  for (const ProfileEntry &E : Entries) {
    std::string Label(E.Depth * 2, ' ');
    Label += E.Name;
    if (Label.size() > 40)
      Label = Label.substr(0, 37) + "...";
    const double Pct =
        GrandTotalNs
            ? 100.0 * static_cast<double>(E.TotalNs) /
                  static_cast<double>(GrandTotalNs)
            : 0.0;
    std::snprintf(Buf, sizeof(Buf),
                  "  %-40s %10" PRIu64 " %14.3f %12.3f %6.1f%%",
                  Label.c_str(), E.Count,
                  static_cast<double>(E.TotalNs) / 1e6,
                  static_cast<double>(E.SelfNs) / 1e6, Pct);
    Out += Buf;
    if (HaveHw) {
      if (E.Hw[HwCycles] > 0 && E.Hw[HwInstructions] > 0) {
        const double Ipc = static_cast<double>(E.Hw[HwInstructions]) /
                           static_cast<double>(E.Hw[HwCycles]);
        const double CacheMiss =
            E.Hw[HwCacheRefs] > 0
                ? 100.0 * static_cast<double>(E.Hw[HwCacheMisses]) /
                      static_cast<double>(E.Hw[HwCacheRefs])
                : 0.0;
        const double BranchMissPerKi =
            1000.0 * static_cast<double>(E.Hw[HwBranchMisses]) /
            static_cast<double>(E.Hw[HwInstructions]);
        std::snprintf(Buf, sizeof(Buf), " %6.2f %7.1f%% %7.2f", Ipc,
                      CacheMiss, BranchMissPerKi);
      } else {
        std::snprintf(Buf, sizeof(Buf), " %6s %8s %7s", "-", "-", "-");
      }
      Out += Buf;
    }
    Out += '\n';
  }
  return Out;
}

std::string oppsla::telemetry::profileFoldedReport() {
  std::string Out;
  char Buf[64];
  for (const ProfileEntry &E : profileSnapshot()) {
    const uint64_t SelfUs = E.SelfNs / 1000;
    if (SelfUs == 0)
      continue;
    Out += E.Path;
    std::snprintf(Buf, sizeof(Buf), " %" PRIu64 "\n", SelfUs);
    Out += Buf;
  }
  return Out;
}

std::string oppsla::telemetry::profileJson() {
  size_t Threads = 0;
  const MergedNode Root = mergedForest(&Threads);
  std::vector<ProfileEntry> Entries;
  flatten(Root, "", "", 0, Entries);

  std::string Out = "{\"threads\":";
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "%zu", Threads);
  Out += Buf;
  Out += ",\"spans\":[";
  bool First = true;
  for (const ProfileEntry &E : Entries) {
    if (!First)
      Out += ',';
    First = false;
    Out += "{\"path\":\"";
    // Span names are identifier-like literals; still escape the JSON
    // specials so a hostile interned name cannot corrupt the document.
    for (char C : E.Path) {
      if (C == '"' || C == '\\')
        Out += '\\';
      Out += C;
    }
    std::snprintf(Buf, sizeof(Buf),
                  "\",\"count\":%" PRIu64 ",\"total_us\":%" PRIu64
                  ",\"self_us\":%" PRIu64,
                  E.Count, E.TotalNs / 1000, E.SelfNs / 1000);
    Out += Buf;
    if (E.HwCount > 0) {
      std::snprintf(Buf, sizeof(Buf), ",\"hw\":{\"sampled\":%" PRIu64,
                    E.HwCount);
      Out += Buf;
      for (size_t I = 0; I != HwNumCounters; ++I) {
        std::snprintf(Buf, sizeof(Buf), ",\"%s\":%" PRIu64,
                      hwCounterName(I), E.Hw[I]);
        Out += Buf;
      }
      if (E.Hw[HwCycles] > 0) {
        std::snprintf(Buf, sizeof(Buf), ",\"ipc\":%.4f",
                      static_cast<double>(E.Hw[HwInstructions]) /
                          static_cast<double>(E.Hw[HwCycles]));
        Out += Buf;
      }
      Out += '}';
    }
    Out += '}';
  }
  Out += "]}";
  return Out;
}

bool oppsla::telemetry::writeProfileFolded(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  const std::string Folded = profileFoldedReport();
  const size_t Written = std::fwrite(Folded.data(), 1, Folded.size(), F);
  return Written == Folded.size() && std::fclose(F) == 0;
}

void oppsla::telemetry::resetProfiler() {
  std::lock_guard<std::mutex> Lock(registry().Mu);
  registry().Arenas.clear();
  registry().Epoch.fetch_add(1, std::memory_order_relaxed);
}
