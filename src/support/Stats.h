//===- support/Stats.h - Summary statistics helpers ------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Summary statistics used by the evaluation harness: mean, median,
/// quantiles, a Welford running accumulator, and success-rate helpers.
/// The paper reports average and median query counts (Tables 1 and 2) and
/// success rates at query budgets (Figure 3); these helpers are the single
/// source of truth for how those numbers are computed.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_SUPPORT_STATS_H
#define OPPSLA_SUPPORT_STATS_H

#include <cstddef>
#include <vector>

namespace oppsla {

/// Returns the arithmetic mean of \p Values; 0 for an empty vector.
double mean(const std::vector<double> &Values);

/// Returns the population standard deviation of \p Values; 0 if size < 2.
double stddev(const std::vector<double> &Values);

/// Returns the median of \p Values (average of middle two for even sizes);
/// 0 for an empty vector. Does not modify the input.
double median(std::vector<double> Values);

/// Returns the \p Q quantile using linear interpolation between closest
/// ranks. Total: never NaN. NaN samples are dropped; an empty (or all-NaN)
/// vector yields 0; a single sample is returned for every Q; out-of-range
/// or NaN Q clamps into [0, 1].
double quantile(std::vector<double> Values, double Q);

/// Welford online mean/variance accumulator.
class RunningStat {
public:
  /// Adds one observation.
  void add(double X) {
    ++N;
    double Delta = X - Mean;
    Mean += Delta / static_cast<double>(N);
    M2 += Delta * (X - Mean);
  }

  size_t count() const { return N; }
  double mean() const { return Mean; }
  /// Population variance; 0 if fewer than two observations.
  double variance() const {
    return N < 2 ? 0.0 : M2 / static_cast<double>(N);
  }
  double stddev() const;
  double min() const { return MinSeen; }
  double max() const { return MaxSeen; }

  /// Adds one observation and tracks min/max.
  void addTracked(double X) {
    if (N == 0 || X < MinSeen)
      MinSeen = X;
    if (N == 0 || X > MaxSeen)
      MaxSeen = X;
    add(X);
  }

private:
  size_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double MinSeen = 0.0;
  double MaxSeen = 0.0;
};

/// Per-image query counts from an attack run over a test set, split into
/// successes and failures. Mirrors the paper's accounting: averages and
/// medians are over *successful* attacks only, success rate is
/// |successes| / (|successes| + |failures|).
struct QuerySample {
  std::vector<double> SuccessQueries; ///< queries for successful attacks
  size_t NumFailures = 0;             ///< attacks that never succeeded

  size_t numAttacks() const { return SuccessQueries.size() + NumFailures; }
  double successRate() const;
  double avgQueries() const { return mean(SuccessQueries); }
  double medianQueries() const { return median(SuccessQueries); }

  /// Success rate counting only successes that used at most \p Budget
  /// queries (Figure 3's success-rate-at-budget).
  double successRateAtBudget(double Budget) const;

  /// Merges another sample into this one.
  void merge(const QuerySample &Other);
};

} // namespace oppsla

#endif // OPPSLA_SUPPORT_STATS_H
