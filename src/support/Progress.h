//===- support/Progress.h - Live run progress tracking ---------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Run-progress accounting shared by the `--progress` stderr line and the
/// stats server's `/healthz` endpoint. Sweeps and the synthesizer publish
/// done/total/successes/queries into `run.*` gauges of the metrics
/// registry; progressSnapshot() derives success rate, average queries,
/// elapsed and ETA from those gauges, so every consumer (stderr line,
/// /healthz, /metrics) reads the same numbers.
///
/// The gauges are always maintained (they are a handful of relaxed atomic
/// ops per attacked image); only the stderr rendering is gated behind
/// setProgressEnabled().
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_SUPPORT_PROGRESS_H
#define OPPSLA_SUPPORT_PROGRESS_H

#include <cstdint>
#include <string>

namespace oppsla {
namespace telemetry {

/// Gates the single updating stderr line (`--progress`). The gauges are
/// updated regardless.
void setProgressEnabled(bool Enabled);
bool progressEnabled();

/// Starts a new run phase of \p Total work items (attacked images, MH
/// iterations, ...). Resets the `run.*` gauges and stamps the start time.
void progressBegin(const char *Mode, uint64_t Total);

/// Records one finished work item. \p Counted is false for discarded
/// (already-misclassified) images, \p Success marks a counted success,
/// \p Queries the logical queries the item spent.
void progressItem(bool Counted, bool Success, uint64_t Queries);

/// Absolute update for phases that track aggregate statistics themselves
/// (the MH synthesizer): \p Done items finished, with the phase's current
/// success rate and average query count.
void progressSet(uint64_t Done, double SuccessRate, double AvgQueries);

/// Terminates the updating stderr line (prints the newline) if one was
/// started. Safe to call when --progress is off.
void progressFinish();

/// Derived view over the `run.*` gauges.
struct RunProgress {
  bool Active = false; ///< progressBegin() was called
  std::string Mode;
  uint64_t Done = 0;
  uint64_t Total = 0;
  double SuccessRate = 0.0;    ///< successes / counted items so far
  double AvgQueries = 0.0;     ///< mean queries per counted item so far
  double ElapsedSeconds = 0.0; ///< since progressBegin()
  double EtaSeconds = 0.0;     ///< elapsed/done * remaining (0 if unknown)
};
RunProgress progressSnapshot();

/// The `/healthz` payload: run progress as a one-line JSON object.
std::string healthzJson();

} // namespace telemetry
} // namespace oppsla

#endif // OPPSLA_SUPPORT_PROGRESS_H
