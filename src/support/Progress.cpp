//===- support/Progress.cpp - Live run progress tracking ---------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Progress.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <mutex>

using namespace oppsla;
using namespace oppsla::telemetry;

namespace {

std::atomic<bool> ProgressFlag{false};

/// Mode label + start time + render throttling. The gauges carry the
/// counts; this is the part that is not a plain number.
struct ProgressState {
  std::mutex Mu;
  std::string Mode;
  bool Active = false;
  bool LinePending = false; ///< an unterminated \r line is on stderr
  std::chrono::steady_clock::time_point Start;
  std::chrono::steady_clock::time_point LastRender;
};

ProgressState &state() {
  static ProgressState S;
  return S;
}

Gauge &doneGauge() {
  static Gauge &G = gauge("run.done");
  return G;
}
Gauge &totalGauge() {
  static Gauge &G = gauge("run.total");
  return G;
}
Gauge &countedGauge() {
  static Gauge &G = gauge("run.counted");
  return G;
}
Gauge &successGauge() {
  static Gauge &G = gauge("run.successes");
  return G;
}
Gauge &queriesGauge() {
  static Gauge &G = gauge("run.queries");
  return G;
}
Gauge &etaGauge() {
  static Gauge &G = gauge("run.eta.seconds");
  return G;
}
Gauge &elapsedGauge() {
  static Gauge &G = gauge("run.elapsed.seconds");
  return G;
}

/// Renders the single updating line, rate-limited to ~10 Hz so parallel
/// sweeps do not spend their time writing to stderr. Caller holds no lock.
void maybeRender(bool Force) {
  if (!progressEnabled())
    return;
  const RunProgress P = progressSnapshot();
  if (!P.Active)
    return;
  ProgressState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  const auto Now = std::chrono::steady_clock::now();
  if (!Force && S.LinePending &&
      std::chrono::duration<double>(Now - S.LastRender).count() < 0.1)
    return;
  S.LastRender = Now;
  S.LinePending = true;
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "\r[%s] %" PRIu64 "/%" PRIu64
                "  success %5.1f%%  avgQ %8.1f  ETA %6.0fs ",
                P.Mode.c_str(), P.Done, P.Total, 100.0 * P.SuccessRate,
                P.AvgQueries, P.EtaSeconds);
  std::fputs(Buf, stderr);
  std::fflush(stderr);
}

} // namespace

void oppsla::telemetry::setProgressEnabled(bool Enabled) {
  ProgressFlag.store(Enabled, std::memory_order_relaxed);
}

bool oppsla::telemetry::progressEnabled() {
  return ProgressFlag.load(std::memory_order_relaxed);
}

void oppsla::telemetry::progressBegin(const char *Mode, uint64_t Total) {
  {
    ProgressState &S = state();
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.Mode = Mode;
    S.Active = true;
    S.Start = std::chrono::steady_clock::now();
    S.LastRender = S.Start - std::chrono::seconds(1);
  }
  doneGauge().set(0.0);
  totalGauge().set(static_cast<double>(Total));
  countedGauge().set(0.0);
  successGauge().set(0.0);
  queriesGauge().set(0.0);
  etaGauge().set(0.0);
  elapsedGauge().set(0.0);
  maybeRender(/*Force=*/true);
}

void oppsla::telemetry::progressItem(bool Counted, bool Success,
                                     uint64_t Queries) {
  doneGauge().add(1.0);
  if (Counted) {
    countedGauge().add(1.0);
    queriesGauge().add(static_cast<double>(Queries));
    if (Success)
      successGauge().add(1.0);
  }
  const RunProgress P = progressSnapshot();
  elapsedGauge().set(P.ElapsedSeconds);
  etaGauge().set(P.EtaSeconds);
  maybeRender(/*Force=*/false);
}

void oppsla::telemetry::progressSet(uint64_t Done, double SuccessRate,
                                    double AvgQueries) {
  doneGauge().set(static_cast<double>(Done));
  // Encode the aggregate rates through the same counted/successes/queries
  // gauges progressSnapshot() divides, scaled to the done count.
  countedGauge().set(static_cast<double>(Done));
  successGauge().set(SuccessRate * static_cast<double>(Done));
  queriesGauge().set(AvgQueries * static_cast<double>(Done));
  const RunProgress P = progressSnapshot();
  elapsedGauge().set(P.ElapsedSeconds);
  etaGauge().set(P.EtaSeconds);
  maybeRender(/*Force=*/false);
}

void oppsla::telemetry::progressFinish() {
  maybeRender(/*Force=*/true);
  ProgressState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  if (S.LinePending) {
    std::fputc('\n', stderr);
    std::fflush(stderr);
    S.LinePending = false;
  }
}

RunProgress oppsla::telemetry::progressSnapshot() {
  RunProgress P;
  std::chrono::steady_clock::time_point Start;
  {
    ProgressState &S = state();
    std::lock_guard<std::mutex> Lock(S.Mu);
    P.Active = S.Active;
    P.Mode = S.Mode;
    Start = S.Start;
  }
  P.Done = static_cast<uint64_t>(doneGauge().value());
  P.Total = static_cast<uint64_t>(totalGauge().value());
  const double Counted = countedGauge().value();
  if (Counted > 0.0) {
    P.SuccessRate = successGauge().value() / Counted;
    P.AvgQueries = queriesGauge().value() / Counted;
  }
  if (P.Active) {
    P.ElapsedSeconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - Start)
                           .count();
    if (P.Done > 0 && P.Total > P.Done)
      P.EtaSeconds = P.ElapsedSeconds / static_cast<double>(P.Done) *
                     static_cast<double>(P.Total - P.Done);
  }
  return P;
}

std::string oppsla::telemetry::healthzJson() {
  const RunProgress P = progressSnapshot();
  char Buf[320];
  std::snprintf(Buf, sizeof(Buf),
                "{\"status\":\"ok\",\"active\":%s,\"mode\":\"%s\","
                "\"done\":%" PRIu64 ",\"total\":%" PRIu64
                ",\"success_rate\":%.6g,\"avg_queries\":%.6g,"
                "\"elapsed_seconds\":%.3f,\"eta_seconds\":%.3f}",
                P.Active ? "true" : "false", P.Mode.c_str(), P.Done,
                P.Total, P.SuccessRate, P.AvgQueries, P.ElapsedSeconds,
                P.EtaSeconds);
  return std::string(Buf);
}
