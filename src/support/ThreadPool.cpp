//===- support/ThreadPool.cpp - Fixed-size worker pool ------------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/ArgParse.h"

#include <algorithm>
#include <atomic>
#include <cassert>

using namespace oppsla;

ThreadPool::ThreadPool(size_t NumThreads) {
  const size_t N = std::max<size_t>(1, NumThreads);
  Workers.reserve(N);
  for (size_t I = 0; I != N; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stopping = true;
  }
  HasWork.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

std::future<void> ThreadPool::submit(std::function<void()> Task) {
  std::packaged_task<void()> Packaged(std::move(Task));
  std::future<void> Result = Packaged.get_future();
  {
    std::lock_guard<std::mutex> Lock(Mu);
    assert(!Stopping && "submit() after shutdown began");
    Queue.push_back(std::move(Packaged));
  }
  HasWork.notify_one();
  return Result;
}

void ThreadPool::forEach(size_t N, const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  // One long-lived task per worker pulling indices from a shared counter:
  // cheap dynamic load balancing without per-index task overhead. Each
  // index's work is independent, so which worker runs it never affects
  // results — only the failure bookkeeping below needs care.
  std::atomic<size_t> Next{0};
  std::mutex FailMu;
  size_t FailIndex = N;
  std::exception_ptr FailEptr;

  auto Drain = [&] {
    for (size_t I = Next.fetch_add(1, std::memory_order_relaxed); I < N;
         I = Next.fetch_add(1, std::memory_order_relaxed)) {
      try {
        Fn(I);
      } catch (...) {
        std::lock_guard<std::mutex> Lock(FailMu);
        if (I < FailIndex) {
          FailIndex = I;
          FailEptr = std::current_exception();
        }
      }
    }
  };

  const size_t Tasks = std::min(numThreads(), N);
  std::vector<std::future<void>> Futures;
  Futures.reserve(Tasks);
  for (size_t T = 0; T != Tasks; ++T)
    Futures.push_back(submit(Drain));
  for (std::future<void> &F : Futures)
    F.get();
  if (FailEptr)
    std::rethrow_exception(FailEptr);
}

size_t ThreadPool::hardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::packaged_task<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      HasWork.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task(); // exceptions land in the task's future
  }
}

size_t oppsla::threadCountFromArgs(const ArgParse &Args, size_t Default) {
  const long long N = Args.getInt("threads", static_cast<long long>(Default));
  if (N <= 0)
    return ThreadPool::hardwareThreads();
  return static_cast<size_t>(N);
}
