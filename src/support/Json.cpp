//===- support/Json.cpp - Minimal JSON document model ------------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace oppsla;
using namespace oppsla::json;

const Value *Value::find(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, V] : Obj)
    if (Name == Key)
      return &V;
  return nullptr;
}

std::string Value::getString(const std::string &Key,
                             const std::string &Default) const {
  const Value *V = find(Key);
  return V && V->isString() ? V->str() : Default;
}

double Value::getNumber(const std::string &Key, double Default) const {
  const Value *V = find(Key);
  return V && V->isNumber() ? V->number() : Default;
}

Value Value::makeBool(bool X) {
  Value V;
  V.K = Kind::Bool;
  V.B = X;
  return V;
}

Value Value::makeNumber(double X) {
  Value V;
  V.K = Kind::Number;
  V.Num = X;
  return V;
}

Value Value::makeString(std::string X) {
  Value V;
  V.K = Kind::String;
  V.Str = std::move(X);
  return V;
}

Value Value::makeArray(std::vector<Value> X) {
  Value V;
  V.K = Kind::Array;
  V.Arr = std::move(X);
  return V;
}

Value Value::makeObject(std::vector<std::pair<std::string, Value>> X) {
  Value V;
  V.K = Kind::Object;
  V.Obj = std::move(X);
  return V;
}

namespace {

class Parser {
public:
  Parser(const std::string &S, std::string &Error) : S(S), Error(Error) {}

  bool run(Value &Out) {
    skipWs();
    if (!value(Out))
      return false;
    skipWs();
    if (Pos != S.size())
      return fail("trailing content after document");
    return true;
  }

private:
  bool fail(const std::string &Msg) {
    if (Error.empty()) {
      std::ostringstream O;
      O << Msg << " at offset " << Pos;
      Error = O.str();
    }
    return false;
  }

  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Lit) {
    size_t N = 0;
    while (Lit[N])
      ++N;
    if (S.compare(Pos, N, Lit) != 0)
      return fail(std::string("expected '") + Lit + "'");
    Pos += N;
    return true;
  }

  bool value(Value &Out) {
    if (++Depth > 64) {
      --Depth;
      return fail("nesting too deep");
    }
    const bool Ok = valueInner(Out);
    --Depth;
    return Ok;
  }

  bool valueInner(Value &Out) {
    if (Pos >= S.size())
      return fail("unexpected end of input");
    switch (S[Pos]) {
    case 'n':
      return literal("null") && (Out = Value::makeNull(), true);
    case 't':
      return literal("true") && (Out = Value::makeBool(true), true);
    case 'f':
      return literal("false") && (Out = Value::makeBool(false), true);
    case '"': {
      std::string Str;
      if (!string(Str))
        return false;
      Out = Value::makeString(std::move(Str));
      return true;
    }
    case '[':
      return array(Out);
    case '{':
      return object(Out);
    default:
      return number(Out);
    }
  }

  bool string(std::string &Out) {
    if (Pos >= S.size() || S[Pos] != '"')
      return fail("expected string");
    ++Pos;
    while (Pos < S.size()) {
      const char C = S[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C == '\\') {
        if (Pos + 1 >= S.size())
          return fail("bad escape");
        const char E = S[Pos + 1];
        Pos += 2;
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'u': {
          if (Pos + 4 > S.size())
            return fail("bad \\u escape");
          unsigned Code = 0;
          for (int I = 0; I != 4; ++I) {
            const char H = S[Pos + static_cast<size_t>(I)];
            Code <<= 4;
            if (H >= '0' && H <= '9')
              Code |= static_cast<unsigned>(H - '0');
            else if (H >= 'a' && H <= 'f')
              Code |= static_cast<unsigned>(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              Code |= static_cast<unsigned>(H - 'A' + 10);
            else
              return fail("bad \\u escape");
          }
          Pos += 4;
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two separate 3-byte sequences — good enough for the
          // identifier-ish strings these documents carry).
          if (Code < 0x80) {
            Out += static_cast<char>(Code);
          } else if (Code < 0x800) {
            Out += static_cast<char>(0xC0 | (Code >> 6));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          } else {
            Out += static_cast<char>(0xE0 | (Code >> 12));
            Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          }
          break;
        }
        default:
          return fail("bad escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("control character in string");
      Out += C;
      ++Pos;
    }
    return fail("unterminated string");
  }

  bool number(Value &Out) {
    const size_t Start = Pos;
    if (Pos < S.size() && S[Pos] == '-')
      ++Pos;
    while (Pos < S.size() && std::isdigit(static_cast<unsigned char>(S[Pos])))
      ++Pos;
    if (Pos < S.size() && S[Pos] == '.') {
      ++Pos;
      while (Pos < S.size() &&
             std::isdigit(static_cast<unsigned char>(S[Pos])))
        ++Pos;
    }
    if (Pos < S.size() && (S[Pos] == 'e' || S[Pos] == 'E')) {
      ++Pos;
      if (Pos < S.size() && (S[Pos] == '+' || S[Pos] == '-'))
        ++Pos;
      while (Pos < S.size() &&
             std::isdigit(static_cast<unsigned char>(S[Pos])))
        ++Pos;
    }
    if (Pos == Start)
      return fail("expected value");
    const std::string Text = S.substr(Start, Pos - Start);
    char *End = nullptr;
    const double V = std::strtod(Text.c_str(), &End);
    if (!End || *End != '\0')
      return fail("malformed number");
    Out = Value::makeNumber(V);
    return true;
  }

  bool array(Value &Out) {
    ++Pos; // '['
    std::vector<Value> Items;
    skipWs();
    if (Pos < S.size() && S[Pos] == ']') {
      ++Pos;
      Out = Value::makeArray(std::move(Items));
      return true;
    }
    for (;;) {
      Value Item;
      skipWs();
      if (!value(Item))
        return false;
      Items.push_back(std::move(Item));
      skipWs();
      if (Pos >= S.size())
        return fail("unterminated array");
      if (S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (S[Pos] == ']') {
        ++Pos;
        Out = Value::makeArray(std::move(Items));
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool object(Value &Out) {
    ++Pos; // '{'
    std::vector<std::pair<std::string, Value>> Members;
    skipWs();
    if (Pos < S.size() && S[Pos] == '}') {
      ++Pos;
      Out = Value::makeObject(std::move(Members));
      return true;
    }
    for (;;) {
      skipWs();
      std::string Key;
      if (!string(Key))
        return false;
      skipWs();
      if (Pos >= S.size() || S[Pos] != ':')
        return fail("expected ':'");
      ++Pos;
      skipWs();
      Value Member;
      if (!value(Member))
        return false;
      Members.emplace_back(std::move(Key), std::move(Member));
      skipWs();
      if (Pos >= S.size())
        return fail("unterminated object");
      if (S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (S[Pos] == '}') {
        ++Pos;
        Out = Value::makeObject(std::move(Members));
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  const std::string &S;
  std::string &Error;
  size_t Pos = 0;
  int Depth = 0;
};

} // namespace

bool oppsla::json::parse(const std::string &Text, Value &Out,
                         std::string &Error) {
  Error.clear();
  return Parser(Text, Error).run(Out);
}

bool oppsla::json::parseFile(const std::string &Path, Value &Out,
                             std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot open " + Path;
    return false;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  if (!parse(Buf.str(), Out, Error)) {
    Error = Path + ": " + Error;
    return false;
  }
  return true;
}

void oppsla::json::escape(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

void oppsla::json::appendNumber(std::string &Out, double V) {
  if (!std::isfinite(V)) {
    Out += "null";
    return;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.9g", V);
  Out += Buf;
}
