//===- support/Table.h - Text table / CSV rendering ------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small text-table builder used by the benchmark harness to print the
/// paper's tables (Table 1, Table 2) and figure series (Figure 3, Figure 4)
/// in aligned plain-text and CSV forms.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_SUPPORT_TABLE_H
#define OPPSLA_SUPPORT_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace oppsla {

/// Column-aligned text table with optional CSV emission.
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Appends a row; it must have exactly as many cells as the header.
  void addRow(std::vector<std::string> Row);

  /// Convenience: formats each double with \p Precision digits.
  void addRow(const std::string &Label, const std::vector<double> &Values,
              int Precision = 2);

  size_t numRows() const { return Rows.size(); }

  /// Renders the table with aligned columns.
  void print(std::ostream &OS) const;

  /// Renders the table as CSV (no quoting of commas; labels in this project
  /// never contain them).
  void printCsv(std::ostream &OS) const;

  /// Formats a double with fixed precision.
  static std::string fmt(double Value, int Precision = 2);

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace oppsla

#endif // OPPSLA_SUPPORT_TABLE_H
