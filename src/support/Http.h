//===- support/Http.h - Minimal HTTP/1.1 plumbing --------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The HTTP/1.1 plumbing shared by the stats server (`--stats-port`) and
/// the serve-mode job server (`oppsla serve`): a request reader that is
/// robust against requests split across packets, a response writer, and a
/// small blocking client used by `oppsla client` and the tests.
///
/// readRequest() loops on recv() until the header terminator arrives (a
/// request line alone is *not* a complete request) and then reads exactly
/// Content-Length body bytes, so POSTs — and GETs whose headers straddle a
/// packet boundary — are parsed correctly. Both sides always close the
/// connection after one exchange (`Connection: close`); there is no
/// keep-alive, chunked encoding, or TLS.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_SUPPORT_HTTP_H
#define OPPSLA_SUPPORT_HTTP_H

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace oppsla {
namespace http {

/// One parsed request. Header names are lower-cased; values are stripped
/// of surrounding whitespace.
struct Request {
  std::string Method; ///< "GET", "POST", "DELETE", ...
  std::string Target; ///< request target as sent ("/v1/jobs/3")
  std::map<std::string, std::string> Headers;
  std::string Body; ///< exactly Content-Length bytes (empty without one)

  /// Header lookup by lower-case name; empty string when absent.
  std::string header(const std::string &Name) const;
};

/// Hard limits on what readRequest() accepts; a request exceeding them is
/// an error, not a truncation.
constexpr size_t MaxHeaderBytes = 16 * 1024;
constexpr size_t MaxBodyBytes = 64 * 1024 * 1024;

/// Reads one request from \p Fd: loops on recv() until "\r\n\r\n", parses
/// the request line and headers, then reads the Content-Length body.
/// \returns false (with \p Error set) on malformed input, a peer that
/// closed mid-request, or a receive timeout set on the socket.
bool readRequest(int Fd, Request &Out, std::string &Error);

/// Standard reason phrase for \p Status ("OK", "Not Found", ...).
const char *statusText(int Status);

/// Writes one `HTTP/1.1 <status>` response with Content-Length and
/// `Connection: close`. \p ExtraHeaders are emitted verbatim after the
/// standard ones (e.g. {"Retry-After", "1"}).
void sendResponse(
    int Fd, int Status, const std::string &ContentType,
    std::string_view Body,
    const std::vector<std::pair<std::string, std::string>> &ExtraHeaders =
        {});

/// A client-side response: status code plus body.
struct Response {
  int Status = 0;
  std::string Body;
};

/// One blocking request against 127.0.0.1:\p Port: connects, sends
/// \p Method \p Target with \p Body (Content-Length added when non-empty),
/// reads the response until EOF. \p ExtraHeaders are emitted verbatim into
/// the request head (e.g. {"traceparent", "00-..."}). \returns false (with
/// \p Error set) when the connection or the exchange fails; HTTP error
/// statuses are returned in \p Out, not treated as failures.
bool request(uint16_t Port, const std::string &Method,
             const std::string &Target, const std::string &Body,
             Response &Out, std::string &Error,
             double TimeoutSeconds = 30.0,
             const std::vector<std::pair<std::string, std::string>>
                 &ExtraHeaders = {});

/// Extracts the value of \p Key from the query string of \p Target
/// ("/logz?n=20&level=debug"), or "" when absent. No %-decoding — the
/// serve endpoints only take numbers and identifiers.
std::string queryParam(const std::string &Target, const std::string &Key);

} // namespace http
} // namespace oppsla

#endif // OPPSLA_SUPPORT_HTTP_H
