//===- support/Rng.cpp - Deterministic random number generation ----------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

#include <cmath>

using namespace oppsla;

double Rng::sqrtMinusTwoLogOverS(double S) {
  return std::sqrt(-2.0 * std::log(S) / S);
}
