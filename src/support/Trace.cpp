//===- support/Trace.cpp - Structured JSONL event traces ---------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <random>

using namespace oppsla;
using namespace oppsla::telemetry;

namespace {

uint64_t monotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Appends a double as JSON: finite values as shortest-ish decimal, non-
/// finite (not representable in JSON) as null.
void appendJsonDouble(std::string &Out, double V) {
  if (!std::isfinite(V)) {
    Out += "null";
    return;
  }
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.9g", V);
  Out += Buf;
}

/// Thread-local so parallel sweep workers tag their events with their own
/// image id (see Trace.h).
thread_local int64_t CurrentImage = -1;

/// Thread-local ambient trace id (see TraceContextScope). A plain string:
/// set/read only by the owning thread.
thread_local std::string CurrentTraceId;

bool isHex(char C) {
  return (C >= '0' && C <= '9') || (C >= 'a' && C <= 'f') ||
         (C >= 'A' && C <= 'F');
}

char toLowerHex(char C) {
  return C >= 'A' && C <= 'F' ? static_cast<char>(C - 'A' + 'a') : C;
}

/// Copies \p N hex digits from \p S into \p Out (lower-cased). \returns
/// false on a non-hex digit or an all-zero field.
bool copyHexField(const std::string &S, size_t Pos, size_t N,
                  std::string &Out) {
  Out.clear();
  bool AllZero = true;
  for (size_t I = 0; I != N; ++I) {
    const char C = S[Pos + I];
    if (!isHex(C))
      return false;
    AllZero = AllZero && C == '0';
    Out += toLowerHex(C);
  }
  return !AllZero;
}

} // namespace

void oppsla::telemetry::appendJsonEscaped(std::string &Out,
                                          std::string_view S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

void TraceField::appendTo(std::string &Out) const {
  Out += '"';
  appendJsonEscaped(Out, Key);
  Out += "\":";
  char Buf[32];
  switch (K) {
  case Kind::Str:
    Out += '"';
    appendJsonEscaped(Out, Str);
    Out += '"';
    break;
  case Kind::Bool:
    Out += B ? "true" : "false";
    break;
  case Kind::Double:
    appendJsonDouble(Out, D);
    break;
  case Kind::UInt:
    std::snprintf(Buf, sizeof(Buf), "%" PRIu64, U);
    Out += Buf;
    break;
  case Kind::Int:
    std::snprintf(Buf, sizeof(Buf), "%" PRId64, I);
    Out += Buf;
    break;
  }
}

std::atomic<bool> TraceWriter::EnabledFlag{false};

TraceWriter &TraceWriter::instance() {
  static TraceWriter W;
  return W;
}

TraceWriter::~TraceWriter() { close(); }

bool TraceWriter::open(const std::string &Path) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (File) {
    std::fclose(File);
    File = nullptr;
    EnabledFlag.store(false, std::memory_order_relaxed);
  }
  File = std::fopen(Path.c_str(), "w");
  if (!File)
    return false;
  StartNs = monotonicNowNs();
  Events.store(0, std::memory_order_relaxed);
  EnabledFlag.store(true, std::memory_order_relaxed);
  return true;
}

void TraceWriter::close() {
  std::lock_guard<std::mutex> Lock(Mu);
  EnabledFlag.store(false, std::memory_order_relaxed);
  if (File) {
    std::fflush(File);
    std::fclose(File);
    File = nullptr;
  }
}

void TraceWriter::event(const char *Type,
                        std::initializer_list<TraceField> Fields) {
  if (!enabled())
    return;
  // Compose the whole line outside the lock; one fwrite under it so
  // concurrent events never interleave.
  const uint64_t TsUs = (monotonicNowNs() - StartNs) / 1000;
  std::string Line;
  Line.reserve(96);
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, TsUs);
  Line += "{\"ts_us\":";
  Line += Buf;
  Line += ",\"type\":\"";
  appendJsonEscaped(Line, Type);
  Line += '"';
  // Stamp the ambient trace id (when a TraceContextScope is open on this
  // thread) so offline tooling can group a job's events across workers.
  if (!CurrentTraceId.empty()) {
    Line += ",\"trace\":\"";
    appendJsonEscaped(Line, CurrentTraceId);
    Line += '"';
  }
  for (const TraceField &F : Fields) {
    Line += ',';
    F.appendTo(Line);
  }
  Line += "}\n";

  std::lock_guard<std::mutex> Lock(Mu);
  if (!File)
    return; // closed between the check and the lock
  std::fwrite(Line.data(), 1, Line.size(), File);
  Events.fetch_add(1, std::memory_order_relaxed);
}

void oppsla::telemetry::traceEvent(const char *Type,
                                   std::initializer_list<TraceField> Fields) {
  TraceWriter::instance().event(Type, Fields);
}

void oppsla::telemetry::setTraceImage(int64_t ImageId) {
  CurrentImage = ImageId;
}

int64_t oppsla::telemetry::traceImage() { return CurrentImage; }

std::string TraceContext::traceparent() const {
  return "00-" + TraceId + "-" + SpanId + "-01";
}

TraceContext oppsla::telemetry::mintTraceContext() {
  // std::random_device per call: minting happens once per submission, so
  // the construction cost is irrelevant, and no attack RNG stream is
  // touched (results stay pure functions of (seed, image)).
  std::random_device Rd;
  auto HexField = [&Rd](size_t Digits) {
    static const char Hex[] = "0123456789abcdef";
    std::string Out;
    Out.reserve(Digits);
    uint32_t Bits = 0;
    size_t Have = 0;
    bool AllZero = true;
    for (size_t I = 0; I != Digits; ++I) {
      if (Have == 0) {
        Bits = Rd();
        Have = 8;
      }
      const unsigned Nibble = Bits & 0xF;
      Bits >>= 4;
      --Have;
      AllZero = AllZero && Nibble == 0;
      Out += Hex[Nibble];
    }
    // The all-zero id is reserved as "absent" by the W3C format.
    if (AllZero)
      Out.back() = '1';
    return Out;
  };
  TraceContext Ctx;
  Ctx.TraceId = HexField(32);
  Ctx.SpanId = HexField(16);
  return Ctx;
}

bool oppsla::telemetry::parseTraceparent(const std::string &Header,
                                         TraceContext &Out) {
  // 00-<32 hex>-<16 hex>-<2 hex> = 55 characters.
  if (Header.size() != 55 || Header[2] != '-' || Header[35] != '-' ||
      Header[52] != '-')
    return false;
  if (!isHex(Header[0]) || !isHex(Header[1]) || !isHex(Header[53]) ||
      !isHex(Header[54]))
    return false;
  // Version ff is forbidden by the spec.
  if (toLowerHex(Header[0]) == 'f' && toLowerHex(Header[1]) == 'f')
    return false;
  TraceContext Ctx;
  if (!copyHexField(Header, 3, 32, Ctx.TraceId) ||
      !copyHexField(Header, 36, 16, Ctx.SpanId))
    return false;
  Out = std::move(Ctx);
  return true;
}

void oppsla::telemetry::setTraceContextId(const std::string &TraceId) {
  CurrentTraceId = TraceId;
}

const std::string &oppsla::telemetry::traceContextId() {
  return CurrentTraceId;
}
