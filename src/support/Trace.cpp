//===- support/Trace.cpp - Structured JSONL event traces ---------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>

using namespace oppsla;
using namespace oppsla::telemetry;

namespace {

uint64_t monotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Appends a double as JSON: finite values as shortest-ish decimal, non-
/// finite (not representable in JSON) as null.
void appendJsonDouble(std::string &Out, double V) {
  if (!std::isfinite(V)) {
    Out += "null";
    return;
  }
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.9g", V);
  Out += Buf;
}

/// Thread-local so parallel sweep workers tag their events with their own
/// image id (see Trace.h).
thread_local int64_t CurrentImage = -1;

} // namespace

void oppsla::telemetry::appendJsonEscaped(std::string &Out,
                                          std::string_view S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

void TraceField::appendTo(std::string &Out) const {
  Out += '"';
  appendJsonEscaped(Out, Key);
  Out += "\":";
  char Buf[32];
  switch (K) {
  case Kind::Str:
    Out += '"';
    appendJsonEscaped(Out, Str);
    Out += '"';
    break;
  case Kind::Bool:
    Out += B ? "true" : "false";
    break;
  case Kind::Double:
    appendJsonDouble(Out, D);
    break;
  case Kind::UInt:
    std::snprintf(Buf, sizeof(Buf), "%" PRIu64, U);
    Out += Buf;
    break;
  case Kind::Int:
    std::snprintf(Buf, sizeof(Buf), "%" PRId64, I);
    Out += Buf;
    break;
  }
}

std::atomic<bool> TraceWriter::EnabledFlag{false};

TraceWriter &TraceWriter::instance() {
  static TraceWriter W;
  return W;
}

TraceWriter::~TraceWriter() { close(); }

bool TraceWriter::open(const std::string &Path) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (File) {
    std::fclose(File);
    File = nullptr;
    EnabledFlag.store(false, std::memory_order_relaxed);
  }
  File = std::fopen(Path.c_str(), "w");
  if (!File)
    return false;
  StartNs = monotonicNowNs();
  Events.store(0, std::memory_order_relaxed);
  EnabledFlag.store(true, std::memory_order_relaxed);
  return true;
}

void TraceWriter::close() {
  std::lock_guard<std::mutex> Lock(Mu);
  EnabledFlag.store(false, std::memory_order_relaxed);
  if (File) {
    std::fflush(File);
    std::fclose(File);
    File = nullptr;
  }
}

void TraceWriter::event(const char *Type,
                        std::initializer_list<TraceField> Fields) {
  if (!enabled())
    return;
  // Compose the whole line outside the lock; one fwrite under it so
  // concurrent events never interleave.
  const uint64_t TsUs = (monotonicNowNs() - StartNs) / 1000;
  std::string Line;
  Line.reserve(96);
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, TsUs);
  Line += "{\"ts_us\":";
  Line += Buf;
  Line += ",\"type\":\"";
  appendJsonEscaped(Line, Type);
  Line += '"';
  for (const TraceField &F : Fields) {
    Line += ',';
    F.appendTo(Line);
  }
  Line += "}\n";

  std::lock_guard<std::mutex> Lock(Mu);
  if (!File)
    return; // closed between the check and the lock
  std::fwrite(Line.data(), 1, Line.size(), File);
  Events.fetch_add(1, std::memory_order_relaxed);
}

void oppsla::telemetry::traceEvent(const char *Type,
                                   std::initializer_list<TraceField> Fields) {
  TraceWriter::instance().event(Type, Fields);
}

void oppsla::telemetry::setTraceImage(int64_t ImageId) {
  CurrentImage = ImageId;
}

int64_t oppsla::telemetry::traceImage() { return CurrentImage; }
