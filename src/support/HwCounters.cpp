//===- support/HwCounters.cpp - perf_event hardware counters -----------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/HwCounters.h"

#include "support/Logging.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#define OPPSLA_HAVE_PERF_EVENT 1
#endif

using namespace oppsla;
using namespace oppsla::telemetry;

namespace {

std::atomic<bool> HwEnabled{false};

// Tri-state availability latch: 0 unprobed, 1 available, -1 unavailable.
std::atomic<int> HwAvailability{0};

const char *const HwNames[HwNumCounters] = {
    "instructions", "cycles", "cache_refs", "cache_misses", "branch_misses"};

#ifdef OPPSLA_HAVE_PERF_EVENT

const uint64_t HwConfigs[HwNumCounters] = {
    PERF_COUNT_HW_INSTRUCTIONS, PERF_COUNT_HW_CPU_CYCLES,
    PERF_COUNT_HW_CACHE_REFERENCES, PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_MISSES};

int perfEventOpen(perf_event_attr *Attr, int GroupFd) {
  return static_cast<int>(::syscall(SYS_perf_event_open, Attr, /*pid=*/0,
                                    /*cpu=*/-1, GroupFd, /*flags=*/0UL));
}

/// This thread's counter group. Members that the PMU cannot host (too few
/// programmable counters, virtualized PMU without cache events) are
/// dropped individually; the group is usable as long as the leader opened.
struct ThreadGroup {
  int LeaderFd = -1;
  bool Tried = false;
  /// Group read position of each slot, or -1 when the member was dropped.
  int Slot[HwNumCounters] = {-1, -1, -1, -1, -1};
  int Members = 0;
  int Fds[HwNumCounters] = {-1, -1, -1, -1, -1};

  ~ThreadGroup() { close(); }

  void close() {
    for (int &Fd : Fds) {
      if (Fd >= 0)
        ::close(Fd);
      Fd = -1;
    }
    LeaderFd = -1;
  }

  bool open() {
    Tried = true;
    for (size_t I = 0; I != HwNumCounters; ++I) {
      perf_event_attr Attr = {};
      Attr.type = PERF_TYPE_HARDWARE;
      Attr.size = sizeof(Attr);
      Attr.config = HwConfigs[I];
      // Counting user-space only keeps the group usable under
      // perf_event_paranoid=2 (the common unprivileged default).
      Attr.exclude_kernel = 1;
      Attr.exclude_hv = 1;
      Attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                         PERF_FORMAT_TOTAL_TIME_RUNNING;
      Attr.disabled = LeaderFd < 0 ? 1 : 0;
      const int Fd = perfEventOpen(&Attr, LeaderFd);
      if (Fd < 0) {
        if (LeaderFd < 0) {
          // Leader failed: the whole subsystem is off for this thread —
          // and for EACCES/EPERM/ENOSYS-class errors, the whole process.
          return false;
        }
        continue; // drop this member, keep the rest of the group
      }
      if (LeaderFd < 0)
        LeaderFd = Fd;
      Fds[I] = Fd;
      Slot[I] = Members++;
    }
    ::ioctl(LeaderFd, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    return true;
  }
};

thread_local ThreadGroup TlsGroup;

/// Opens the calling thread's group if not yet tried, updating the
/// process-wide availability latch on the first definitive outcome.
bool ensureThreadGroup() {
  if (TlsGroup.Tried)
    return TlsGroup.LeaderFd >= 0;
  if (HwAvailability.load(std::memory_order_relaxed) < 0) {
    TlsGroup.Tried = true;
    return false;
  }
  errno = 0;
  const bool Ok = TlsGroup.open();
  if (Ok) {
    HwAvailability.store(1, std::memory_order_relaxed);
    return true;
  }
  const int E = errno;
  int Expected = 0;
  if (HwAvailability.compare_exchange_strong(Expected, -1,
                                             std::memory_order_relaxed)) {
    logWarn() << "hardware counters unavailable (perf_event_open: "
              << std::strerror(E) << "); span hw attribution disabled";
  }
  return false;
}

#endif // OPPSLA_HAVE_PERF_EVENT

} // namespace

const char *oppsla::telemetry::hwCounterName(size_t I) {
  return I < HwNumCounters ? HwNames[I] : "";
}

void oppsla::telemetry::setHwCountersEnabled(bool Enabled) {
  HwEnabled.store(Enabled, std::memory_order_relaxed);
}

bool oppsla::telemetry::hwCountersEnabled() {
  return HwEnabled.load(std::memory_order_relaxed);
}

bool oppsla::telemetry::hwCountersAvailable() {
#ifdef OPPSLA_HAVE_PERF_EVENT
  const int State = HwAvailability.load(std::memory_order_relaxed);
  if (State != 0)
    return State > 0;
  return ensureThreadGroup();
#else
  return false;
#endif
}

HwSample oppsla::telemetry::hwSample() {
  HwSample S;
#ifdef OPPSLA_HAVE_PERF_EVENT
  if (!hwCountersEnabled() || !ensureThreadGroup())
    return S;
  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, values[nr].
  uint64_t Buf[3 + HwNumCounters] = {};
  const ssize_t N = ::read(TlsGroup.LeaderFd, Buf, sizeof(Buf));
  if (N < static_cast<ssize_t>(3 * sizeof(uint64_t)))
    return S;
  const uint64_t Nr = Buf[0];
  const uint64_t Enabled = Buf[1];
  const uint64_t Running = Buf[2];
  // Scale for kernel multiplexing; Running == 0 means the group never ran.
  const double Scale =
      Running > 0 ? static_cast<double>(Enabled) / static_cast<double>(Running)
                  : 0.0;
  if (Scale == 0.0)
    return S;
  for (size_t I = 0; I != HwNumCounters; ++I) {
    const int Slot = TlsGroup.Slot[I];
    if (Slot < 0 || static_cast<uint64_t>(Slot) >= Nr)
      continue;
    S.Values[I] = static_cast<uint64_t>(
        static_cast<double>(Buf[3 + static_cast<size_t>(Slot)]) * Scale);
  }
  S.Valid = true;
#endif
  return S;
}

HwCountersScope::~HwCountersScope() {
  if (!Accum || !Start.Valid)
    return;
  const HwSample End = hwSample();
  if (!End.Valid)
    return;
  for (size_t I = 0; I != HwNumCounters; ++I)
    if (End.Values[I] > Start.Values[I])
      Accum[I] += End.Values[I] - Start.Values[I];
}

std::string oppsla::telemetry::hwDeltaSummary(const uint64_t *Delta) {
  if (!Delta || Delta[HwInstructions] == 0)
    return "";
  char Buf[128];
  std::string Out;
  if (Delta[HwCycles] > 0) {
    std::snprintf(Buf, sizeof(Buf), "ipc=%.2f",
                  static_cast<double>(Delta[HwInstructions]) /
                      static_cast<double>(Delta[HwCycles]));
    Out += Buf;
  }
  if (Delta[HwCacheRefs] > 0) {
    std::snprintf(Buf, sizeof(Buf), "%scache-miss=%.1f%%",
                  Out.empty() ? "" : " ",
                  100.0 * static_cast<double>(Delta[HwCacheMisses]) /
                      static_cast<double>(Delta[HwCacheRefs]));
    Out += Buf;
  }
  std::snprintf(Buf, sizeof(Buf), "%sbranch-miss/ki=%.2f",
                Out.empty() ? "" : " ",
                1000.0 * static_cast<double>(Delta[HwBranchMisses]) /
                    static_cast<double>(Delta[HwInstructions]));
  Out += Buf;
  return Out;
}
