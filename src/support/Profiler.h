//===- support/Profiler.h - Hierarchical span profiler ---------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An always-available, low-overhead hierarchical span profiler.
///
/// RAII `ProfileScope`s record into per-thread arenas: each thread owns a
/// tree of `ProfNode`s keyed by span name, with a `Current` cursor that
/// enter/exit moves up and down. The hot path takes no locks — entering a
/// span walks the current node's (short) child list, exiting adds two
/// relaxed atomic increments. When profiling is disabled the entire cost
/// is one relaxed atomic load per scope.
///
/// A process-wide registry keeps every arena alive past thread exit and
/// merges identical call paths (compared by span-name *content*, so equal
/// paths recorded on different threads, or from string literals in
/// different TUs, aggregate) into one call-tree with count / total /
/// self time. Three sinks render the merged tree:
///
///   - profileTextReport():   indented top-down tree for the CLI
///                            `metrics:` section (`--profile`);
///   - profileFoldedReport(): folded stacks, one `a;b;c <usec>` line per
///                            path (self time), consumable by
///                            flamegraph.pl / speedscope (`--profile-out`);
///   - profileJson():         a summary block embedded in `--metrics-out`
///                            snapshots and served by the stats server.
///
/// Span timings never feed back into attack results or RNG streams: with
/// profiling disabled, instrumented code is byte-identical in behavior.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_SUPPORT_PROFILER_H
#define OPPSLA_SUPPORT_PROFILER_H

#include "support/HwCounters.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace oppsla {
namespace telemetry {

/// Process-wide profiling gate. Off by default; the disabled ProfileScope
/// costs one relaxed load.
void setProfilingEnabled(bool Enabled);
bool profilingEnabled();

namespace profdetail {

struct ProfNode;
struct ProfArena;

/// This thread's arena (created and registered on first use).
ProfArena &arena();
/// Descends into the child of the current node named \p Name (creating it
/// if needed) and returns it.
ProfNode *enter(ProfArena &A, const char *Name);
/// Records one completed span of \p Ns nanoseconds on \p N and moves the
/// cursor back to its parent. \p HwStart (optional) is the hardware
/// counter snapshot taken at span entry; the exit snapshot is read here
/// and the deltas accumulate on the node (inclusive, like TotalNs).
void exit(ProfArena &A, ProfNode *N, uint64_t Ns,
          const HwSample *HwStart = nullptr);

inline uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace profdetail

/// RAII span. \p Name must outlive the process (string literals, or
/// pointers from internProfileName()); a null name records nothing, which
/// lets call sites gate dynamic names on profilingEnabled() themselves.
class ProfileScope {
public:
  explicit ProfileScope(const char *Name) {
    if (!Name || !profilingEnabled())
      return;
    A = &profdetail::arena();
    Node = profdetail::enter(*A, Name);
    if (hwCountersEnabled())
      HwStart = hwSample();
    StartNs = profdetail::nowNs();
  }
  ~ProfileScope() {
    if (Node)
      profdetail::exit(*A, Node, profdetail::nowNs() - StartNs,
                       HwStart.Valid ? &HwStart : nullptr);
  }
  ProfileScope(const ProfileScope &) = delete;
  ProfileScope &operator=(const ProfileScope &) = delete;

private:
  profdetail::ProfArena *A = nullptr;
  profdetail::ProfNode *Node = nullptr;
  uint64_t StartNs = 0;
  HwSample HwStart;
};

/// Returns a stable `const char *` for a dynamic span name (e.g. an attack
/// name composed at runtime). Interned strings live for the process
/// lifetime; repeated calls with equal content return the same pointer.
const char *internProfileName(const std::string &Name);

/// The calling thread's ambient profile root: the task-level span name
/// (e.g. an interned "job.17") every span recorded by this thread should
/// nest under. Thread-pool workers adopt the submitting task's root so a
/// job's engine/attack spans aggregate under the job, not process-global.
/// Null = no ambient root.
void setAmbientProfileRoot(const char *Name);
const char *ambientProfileRoot();

/// RAII task-level span: opens a ProfileScope for \p Name and publishes it
/// as the calling thread's ambient root; restores the previous root (and
/// closes the span) on destruction. Used both where a task is rooted (the
/// job runner) and where a pool worker adopts the submitting task's root —
/// equal names merge by content, so worker spans nest under the same node.
/// A null name is a no-op, matching ProfileScope; callers gate dynamic
/// names on profilingEnabled().
class ProfileTaskScope {
public:
  explicit ProfileTaskScope(const char *Name)
      : Saved(ambientProfileRoot()), Scope(Name) {
    if (Name)
      setAmbientProfileRoot(Name);
  }
  ~ProfileTaskScope() { setAmbientProfileRoot(Saved); }
  ProfileTaskScope(const ProfileTaskScope &) = delete;
  ProfileTaskScope &operator=(const ProfileTaskScope &) = delete;

private:
  const char *Saved;
  ProfileScope Scope;
};

/// One merged call path in depth-first order.
struct ProfileEntry {
  std::string Path;     ///< `a;b;c` — span names root to leaf
  std::string Name;     ///< leaf span name (last path component)
  size_t Depth = 0;     ///< 0 for top-level spans
  uint64_t Count = 0;   ///< completed spans on this path
  uint64_t TotalNs = 0; ///< inclusive time
  uint64_t SelfNs = 0;  ///< TotalNs minus children's TotalNs
  /// Inclusive hardware counter totals (slot order of HwCounterIndex) over
  /// the HwCount spans that carried valid samples; all zero when
  /// --hw-counters was off or perf_event_open is unavailable.
  uint64_t Hw[HwNumCounters] = {0, 0, 0, 0, 0};
  uint64_t HwCount = 0; ///< completed spans with valid hw samples
};

/// Merges all thread arenas by call-path content. Entries are emitted
/// depth-first, siblings ordered by descending total time. Only completed
/// spans are counted — an in-flight span contributes after it exits.
std::vector<ProfileEntry> profileSnapshot();

/// Number of thread arenas that recorded at least one span.
size_t profileThreadCount();

/// Human-readable top-down call tree (empty string when nothing was
/// recorded).
std::string profileTextReport();

/// Folded-stack rendering of the merged tree: one `a;b;c <usec>` line per
/// path with non-zero self time, flamegraph.pl/speedscope compatible.
std::string profileFoldedReport();

/// JSON summary block (an object, not a document):
/// {"threads":N,"spans":[{"path","count","total_us","self_us"},...]}.
std::string profileJson();

/// Writes profileFoldedReport() to \p Path. \returns true on success.
bool writeProfileFolded(const std::string &Path);

/// Discards every recorded span and detaches live thread arenas. Only for
/// tests; must not race in-flight ProfileScopes on other threads.
void resetProfiler();

} // namespace telemetry
} // namespace oppsla

#endif // OPPSLA_SUPPORT_PROFILER_H
