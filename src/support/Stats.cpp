//===- support/Stats.cpp - Summary statistics helpers --------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace oppsla;

double oppsla::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double oppsla::stddev(const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0.0;
  double M = mean(Values);
  double Sum = 0.0;
  for (double V : Values)
    Sum += (V - M) * (V - M);
  return std::sqrt(Sum / static_cast<double>(Values.size()));
}

double oppsla::median(std::vector<double> Values) {
  return quantile(std::move(Values), 0.5);
}

double oppsla::quantile(std::vector<double> Values, double Q) {
  // NaN samples must not poison every percentile of the histogram report
  // (and sorting a range containing NaN is unordered); drop them.
  Values.erase(std::remove_if(Values.begin(), Values.end(),
                              [](double V) { return std::isnan(V); }),
               Values.end());
  if (Values.empty())
    return 0.0;
  if (Values.size() == 1)
    return Values.front();
  // Clamp out-of-range (or NaN) Q: the old assert compiled away in
  // release builds, where Q > 1 interpolated off the end of the array.
  if (!(Q > 0.0))
    Q = 0.0;
  if (Q > 1.0)
    Q = 1.0;
  std::sort(Values.begin(), Values.end());
  double Rank = Q * static_cast<double>(Values.size() - 1);
  auto Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, Values.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return Values[Lo] * (1.0 - Frac) + Values[Hi] * Frac;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double QuerySample::successRate() const {
  size_t Total = numAttacks();
  if (Total == 0)
    return 0.0;
  return static_cast<double>(SuccessQueries.size()) /
         static_cast<double>(Total);
}

double QuerySample::successRateAtBudget(double Budget) const {
  size_t Total = numAttacks();
  if (Total == 0)
    return 0.0;
  size_t Within = 0;
  for (double Q : SuccessQueries)
    if (Q <= Budget)
      ++Within;
  return static_cast<double>(Within) / static_cast<double>(Total);
}

void QuerySample::merge(const QuerySample &Other) {
  SuccessQueries.insert(SuccessQueries.end(), Other.SuccessQueries.begin(),
                        Other.SuccessQueries.end());
  NumFailures += Other.NumFailures;
}
