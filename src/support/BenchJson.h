//===- support/BenchJson.h - Standard bench result artifact ----*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standard machine-readable artifact every bench binary writes at its
/// `--json-out` path (schema version kBenchSchemaVersion):
///
///   {"schema": 2, "name": "<bench>", "scale": "<smoke|small|paper>",
///    "repeat": <i>, "metrics": {"<key>": <number>, ...}}
///
/// One flat numeric map keeps the driver-side diffing trivial; benches
/// with richer tables (batch_throughput's per-spec results) keep their own
/// detailed artifact and emit the standard one alongside it. The artifact
/// is ledger-ready: `oppsla_bench ingest` turns it into one JSONL ledger
/// row, and `oppsla_bench gate` medians repeated runs of the same bench
/// (distinguished by the `--repeat i` flag) before comparing against a
/// baseline.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_SUPPORT_BENCHJSON_H
#define OPPSLA_SUPPORT_BENCHJSON_H

#include <map>
#include <string>

namespace oppsla {

class ArgParse;

/// Builder for the BENCH_<name>.json artifact.
struct BenchJson {
  BenchJson(std::string Name, std::string Scale)
      : Name(std::move(Name)), Scale(std::move(Scale)) {}

  /// Standard construction for a bench main: picks up the `--repeat i`
  /// index from \p Args (0 when absent).
  BenchJson(std::string Name, std::string Scale, const ArgParse &Args);

  std::string Name;
  std::string Scale;
  int Repeat = 0; ///< which of N repeated runs this artifact records
  std::map<std::string, double> Metrics; ///< name-sorted for determinism

  void set(const std::string &Key, double Value) { Metrics[Key] = Value; }

  /// Copies every telemetry counter of the process into Metrics, skipping
  /// the high-cardinality per-layer `nn.forward.*` timing counters.
  void addTelemetryCounters();

  /// Renders the artifact as a JSON document (trailing newline included).
  std::string render() const;

  /// Writes render() to \p Path. \returns true on success.
  bool write(const std::string &Path) const;

  /// Writes to \p Args's `--json-out` path when given. \returns false
  /// (after logging) only when the path was given but writing failed.
  bool writeFromArgs(const ArgParse &Args) const;
};

} // namespace oppsla

#endif // OPPSLA_SUPPORT_BENCHJSON_H
