//===- support/Trace.h - Structured JSONL event traces ---------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A low-overhead structured event trace: one JSON object per line
/// (JSONL), written through a process-wide TraceWriter. Events carry a
/// monotonic timestamp (microseconds since the trace was opened), a type
/// tag, and arbitrary typed fields.
///
/// Query-level attack telemetry is the paper's raw data (queries to the
/// classifier are the central metric), so the hot-path cost when tracing
/// is *disabled* must be a single relaxed atomic load. Callers on hot
/// paths therefore guard field construction:
///
///   if (telemetry::traceEnabled())
///     telemetry::traceEvent("query", {{"idx", Count}, {"margin", M}});
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_SUPPORT_TRACE_H
#define OPPSLA_SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>

namespace oppsla {
namespace telemetry {

/// Appends \p S to \p Out with JSON string escaping (quotes, backslashes,
/// control characters); does not add surrounding quotes.
void appendJsonEscaped(std::string &Out, std::string_view S);

/// One typed key/value field of a trace event.
class TraceField {
public:
  TraceField(const char *Key, const char *V)
      : Key(Key), K(Kind::Str), Str(V) {}
  TraceField(const char *Key, const std::string &V)
      : Key(Key), K(Kind::Str), Str(V) {}
  TraceField(const char *Key, bool V) : Key(Key), K(Kind::Bool), B(V) {}
  TraceField(const char *Key, double V) : Key(Key), K(Kind::Double), D(V) {}
  TraceField(const char *Key, uint64_t V) : Key(Key), K(Kind::UInt), U(V) {}
  TraceField(const char *Key, int64_t V) : Key(Key), K(Kind::Int), I(V) {}
  TraceField(const char *Key, int V)
      : Key(Key), K(Kind::Int), I(static_cast<int64_t>(V)) {}

  /// Appends `"key":value` to \p Out.
  void appendTo(std::string &Out) const;

private:
  enum class Kind { Str, Bool, Double, UInt, Int };
  const char *Key;
  Kind K;
  std::string Str;
  bool B = false;
  double D = 0.0;
  uint64_t U = 0;
  int64_t I = 0;
};

/// Process-wide JSONL event sink. Disabled (no-op) until open() succeeds.
class TraceWriter {
public:
  static TraceWriter &instance();

  /// Opens (truncates) \p Path and enables tracing. \returns false and
  /// leaves tracing disabled if the file cannot be created.
  bool open(const std::string &Path);

  /// Flushes and closes the sink; tracing becomes disabled again.
  void close();

  /// The no-op fast path: one relaxed atomic load.
  static bool enabled() {
    return EnabledFlag.load(std::memory_order_relaxed);
  }

  /// Emits one event line `{"ts_us":...,"type":...,<fields>}`. No-op when
  /// disabled. Safe for concurrent callers (one line per call, never
  /// interleaved).
  void event(const char *Type, std::initializer_list<TraceField> Fields);

  /// Number of events written since the last open().
  uint64_t eventsWritten() const {
    return Events.load(std::memory_order_relaxed);
  }

  TraceWriter(const TraceWriter &) = delete;
  TraceWriter &operator=(const TraceWriter &) = delete;

private:
  TraceWriter() = default;
  ~TraceWriter();

  static std::atomic<bool> EnabledFlag;
  std::mutex Mu;
  std::FILE *File = nullptr;
  std::atomic<uint64_t> Events{0};
  uint64_t StartNs = 0;
};

/// True when the process-wide trace sink is open.
inline bool traceEnabled() { return TraceWriter::enabled(); }

/// Convenience forwarder to TraceWriter::instance().event().
void traceEvent(const char *Type, std::initializer_list<TraceField> Fields);

//===----------------------------------------------------------------------===//
// Trace context: W3C-style traceparent propagation
//===----------------------------------------------------------------------===//

/// A W3C-style trace context: a 32-hex-digit trace id naming the causal
/// chain end to end, and a 16-hex-digit span id naming the hop that minted
/// or forwarded it. `oppsla client` mints one per submission and sends it
/// as a `traceparent` HTTP header; the serve subsystem adopts it and stamps
/// it on every phase span, log record, and JSONL trace event the job emits.
struct TraceContext {
  std::string TraceId; ///< 32 lower-case hex digits, not all zero
  std::string SpanId;  ///< 16 lower-case hex digits, not all zero

  bool valid() const { return TraceId.size() == 32 && SpanId.size() == 16; }

  /// Renders `00-<trace-id>-<span-id>-01` (version 00, sampled flag set).
  std::string traceparent() const;
};

/// Mints a fresh random context. Randomness comes from std::random_device,
/// never from an attack RNG stream — minting a trace id cannot perturb any
/// result byte.
TraceContext mintTraceContext();

/// Parses a `traceparent` header value (`00-<32 hex>-<16 hex>-<2 hex>`,
/// case-insensitive input, normalized to lower case). \returns false on
/// malformed input or the all-zero trace/span ids the spec forbids.
bool parseTraceparent(const std::string &Header, TraceContext &Out);

/// Ambient trace id for the calling thread: stamped as a `"trace"` field
/// onto every JSONL trace event and log-ring record the thread emits while
/// set. Empty string = unset.
void setTraceContextId(const std::string &TraceId);
const std::string &traceContextId();

/// RAII ambient trace id (same save/restore discipline as
/// TraceImageScope): workers adopt the submitting job's id for the span of
/// a sweep and restore on exit, exceptions included.
class TraceContextScope {
public:
  TraceContextScope() : Saved(traceContextId()) {}
  explicit TraceContextScope(const std::string &TraceId)
      : TraceContextScope() {
    setTraceContextId(TraceId);
  }
  ~TraceContextScope() { setTraceContextId(Saved); }

  TraceContextScope(const TraceContextScope &) = delete;
  TraceContextScope &operator=(const TraceContextScope &) = delete;

private:
  std::string Saved;
};

/// Ambient trace context: the index of the image currently under attack,
/// stamped onto query and attack-span events by the emitters so individual
/// attacks/queries can be grouped offline. -1 when unset.
///
/// The value is thread-local: parallel sweep workers each publish their own
/// image id, so events emitted concurrently are tagged with the image their
/// thread is actually attacking (a process-global id would interleave).
void setTraceImage(int64_t ImageId);
int64_t traceImage();

/// RAII ambient image id: saves the calling thread's current id on
/// construction and restores it on destruction, so nested sweeps (e.g.
/// synthesis inside eval) and early exits — including exceptions — never
/// leak an id into the enclosing scope.
class TraceImageScope {
public:
  TraceImageScope() : Saved(traceImage()) {}
  explicit TraceImageScope(int64_t ImageId) : TraceImageScope() {
    setTraceImage(ImageId);
  }
  ~TraceImageScope() { setTraceImage(Saved); }

  TraceImageScope(const TraceImageScope &) = delete;
  TraceImageScope &operator=(const TraceImageScope &) = delete;

  /// Publishes \p I as the current thread's image id.
  void set(size_t I) { setTraceImage(static_cast<int64_t>(I)); }

private:
  int64_t Saved;
};

} // namespace telemetry
} // namespace oppsla

#endif // OPPSLA_SUPPORT_TRACE_H
