//===- core/Synthesizer.cpp - OPPSLA's MH search (Algorithm 2) ---------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Synthesizer.h"

#include "support/Logging.h"
#include "support/Metrics.h"
#include "support/Rng.h"
#include "support/Trace.h"

#include <cmath>

using namespace oppsla;

double ProgramEval::score(double Beta) const {
  if (Successes == 0)
    return 0.0;
  return std::exp(-Beta * AvgQueries);
}

ProgramEval oppsla::evaluateProgram(const Program &P, Classifier &N,
                                    const Dataset &TrainSet,
                                    uint64_t PerImageCap) {
  assert(TrainSet.size() > 0 && "empty training set");
  Sketch Sk(P);
  ProgramEval Eval;
  double QuerySum = 0.0;
  for (size_t I = 0; I != TrainSet.size(); ++I) {
    const SketchResult R =
        Sk.run(N, TrainSet.Images[I], TrainSet.Labels[I], PerImageCap);
    Eval.TotalQueries += R.Queries;
    ++Eval.Attacks;
    if (!R.Success || R.AlreadyMisclassified)
      continue; // the paper averages over successful attacks only
    ++Eval.Successes;
    QuerySum += static_cast<double>(R.Queries);
  }
  if (Eval.Successes > 0)
    Eval.AvgQueries = QuerySum / static_cast<double>(Eval.Successes);
  return Eval;
}

Program oppsla::synthesizeProgram(Classifier &N, const Dataset &TrainSet,
                                  const SynthesisConfig &Config,
                                  std::vector<SynthesisStep> *Trace) {
  Rng R(Config.Seed);
  MutationContext Ctx;
  Ctx.ImageSide =
      TrainSet.size() > 0 ? TrainSet.Images.front().height() : 32;

  Program P = randomProgram(Ctx, R);
  ProgramEval Eval = evaluateProgram(P, N, TrainSet, Config.PerImageQueryCap);
  double Score = Eval.score(Config.Beta);
  uint64_t Cumulative = Eval.TotalQueries;
  Program Best = P;
  double BestScore = Score;
  if (Trace)
    Trace->push_back(
        SynthesisStep{0, true, P, Eval.AvgQueries, Cumulative});
  if (telemetry::traceEnabled())
    telemetry::traceEvent("synth_begin",
                          {{"max_iter", Config.MaxIter},
                           {"beta", Config.Beta},
                           {"train_images", TrainSet.size()},
                           {"init_avg_queries", Eval.AvgQueries},
                           {"init_queries", Eval.TotalQueries}});
  logDebug() << "synthesis init: avgQ=" << Eval.AvgQueries
             << " successes=" << Eval.Successes << "/" << Eval.Attacks;

  // Per-run MH accounting for the metrics snapshot.
  static telemetry::Counter &IterCounter =
      telemetry::counter("synth.iterations");
  static telemetry::Counter &AcceptCounter =
      telemetry::counter("synth.accepts");
  static telemetry::Counter &SynthQueries =
      telemetry::counter("synth.queries");
  SynthQueries.inc(Eval.TotalQueries);

  for (size_t Iter = 1; Iter <= Config.MaxIter; ++Iter) {
    MutationKind Kind = MutationKind::Root;
    const Program Candidate = mutateProgram(P, Ctx, R, &Kind);
    const ProgramEval CandEval =
        evaluateProgram(Candidate, N, TrainSet, Config.PerImageQueryCap);
    const double CandScore = CandEval.score(Config.Beta);
    Cumulative += CandEval.TotalQueries;

    // MH acceptance: u < S(P')/S(P). A zero-score incumbent accepts any
    // scoring candidate.
    bool Accept;
    if (Score <= 0.0)
      Accept = CandScore > 0.0;
    else
      Accept = R.uniform() < CandScore / Score;
    if (Accept) {
      P = Candidate;
      Eval = CandEval;
      Score = CandScore;
    }
    if (CandScore > BestScore) {
      Best = Candidate;
      BestScore = CandScore;
    }
    if (Trace)
      Trace->push_back(
          SynthesisStep{Iter, Accept, P, Eval.AvgQueries, Cumulative});
    IterCounter.inc();
    if (Accept)
      AcceptCounter.inc();
    SynthQueries.inc(CandEval.TotalQueries);
    if (telemetry::traceEnabled())
      telemetry::traceEvent("synth_iter",
                            {{"iter", Iter},
                             {"proposal", mutationKindName(Kind)},
                             {"accepted", Accept},
                             {"cand_score", CandScore},
                             {"cand_avg_queries", CandEval.AvgQueries},
                             {"cand_successes", CandEval.Successes},
                             {"cur_avg_queries", Eval.AvgQueries},
                             {"cum_queries", Cumulative}});
    logDebug() << "synthesis iter " << Iter << ": candAvgQ="
               << CandEval.AvgQueries << (Accept ? " accepted" : " rejected")
               << " curAvgQ=" << Eval.AvgQueries;
  }
  if (telemetry::traceEnabled())
    telemetry::traceEvent("synth_end",
                          {{"avg_queries", Eval.AvgQueries},
                           {"successes", Eval.Successes},
                           {"attacks", Eval.Attacks},
                           {"cum_queries", Cumulative}});
  logInfo() << "synthesis done: avgQ=" << Eval.AvgQueries << " over "
            << Eval.Successes << "/" << Eval.Attacks
            << " train images, total synthesis queries=" << Cumulative;
  if (Config.ReturnBestSeen && BestScore <= 0.0) {
    // No candidate ever succeeded on the training set (e.g. a robust
    // class under a tight cap): the scores carry no signal, so prefer the
    // deterministic fixed prioritization over an arbitrary random program.
    logWarn() << "synthesis saw no successful training attack; returning "
                 "the fixed-prioritization program";
    return allFalseProgram();
  }
  return Config.ReturnBestSeen ? Best : P;
}

Program oppsla::randomSearchProgram(Classifier &N, const Dataset &TrainSet,
                                    size_t NumSamples, uint64_t PerImageCap,
                                    uint64_t Seed) {
  assert(NumSamples > 0 && "need at least one sample");
  Rng R(Seed);
  MutationContext Ctx;
  Ctx.ImageSide =
      TrainSet.size() > 0 ? TrainSet.Images.front().height() : 32;

  Program Best;
  double BestAvg = 0.0;
  bool HaveBest = false;
  for (size_t I = 0; I != NumSamples; ++I) {
    const Program P = randomProgram(Ctx, R);
    const ProgramEval Eval = evaluateProgram(P, N, TrainSet, PerImageCap);
    if (Eval.Successes == 0)
      continue;
    if (!HaveBest || Eval.AvgQueries < BestAvg) {
      Best = P;
      BestAvg = Eval.AvgQueries;
      HaveBest = true;
    }
  }
  if (!HaveBest) {
    logWarn() << "random search found no succeeding program; returning "
                 "the fixed-prioritization program";
    return allFalseProgram();
  }
  return Best;
}
