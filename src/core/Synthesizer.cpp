//===- core/Synthesizer.cpp - OPPSLA's MH search (Algorithm 2) ---------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Synthesizer.h"

#include "support/Logging.h"
#include "support/Metrics.h"
#include "support/Profiler.h"
#include "support/Progress.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <future>
#include <memory>

using namespace oppsla;

double ProgramEval::score(double Beta) const {
  if (Successes == 0)
    return 0.0;
  return std::exp(-Beta * AvgQueries);
}

namespace {

/// Outcome of one sketch run, recorded per image so the aggregate can be
/// reduced in a fixed order regardless of which worker produced it.
struct ImageOutcome {
  uint64_t Queries = 0;
  bool Counted = false; ///< successful and not already misclassified
};

/// Per-worker evaluation state reused across many evaluateProgram calls:
/// the MH loop scores MaxIter+1 candidates, so the pool and the classifier
/// clones are built once per synthesis, not once per candidate. An empty
/// Workers list (or a 1-element one) means serial evaluation.
struct EvalWorkers {
  std::unique_ptr<ThreadPool> Pool;
  std::vector<Classifier *> Classifiers; ///< [0] is the caller's own
  std::vector<std::unique_ptr<Classifier>> Owned;

  /// Builds workers for \p Threads threads; degrades to serial (empty)
  /// when the classifier is not cloneable or Threads < 2.
  static EvalWorkers make(Classifier &N, size_t Threads, size_t NumImages) {
    EvalWorkers W;
    const size_t Count = std::min(Threads, NumImages);
    if (Count < 2)
      return W;
    std::vector<std::unique_ptr<Classifier>> Owned;
    for (size_t T = 1; T != Count; ++T) {
      auto C = N.clone();
      if (!C)
        return W; // not cloneable: keep W empty, run serial
      Owned.push_back(std::move(C));
    }
    W.Owned = std::move(Owned);
    W.Classifiers.push_back(&N);
    for (auto &C : W.Owned)
      W.Classifiers.push_back(C.get());
    W.Pool = std::make_unique<ThreadPool>(Count);
    return W;
  }

  bool parallel() const { return Pool != nullptr; }
};

/// The shared core of serial and parallel evaluation: fills one outcome
/// slot per training image, then reduces them in index order (the average
/// is a floating-point sum, so reduction order is part of the contract).
ProgramEval evaluateProgramWith(const Program &P, Classifier &N,
                                const Dataset &TrainSet, uint64_t PerImageCap,
                                EvalWorkers *Workers) {
  assert(TrainSet.size() > 0 && "empty training set");
  telemetry::ProfileScope Span("synth.score");
  std::vector<ImageOutcome> Out(TrainSet.size());

  auto RunOne = [&](Sketch &Sk, Classifier &NN, size_t I) {
    const SketchResult R =
        Sk.run(NN, TrainSet.Images[I], TrainSet.Labels[I], PerImageCap);
    Out[I].Queries = R.Queries;
    Out[I].Counted = R.Success && !R.AlreadyMisclassified;
  };

  if (Workers && Workers->parallel()) {
    std::atomic<size_t> Next{0};
    std::vector<std::future<void>> Futures;
    Futures.reserve(Workers->Classifiers.size());
    // Adopt the submitting thread's job context (profile root + trace
    // id) on each pool worker — synthesis inside a served job should
    // attribute to that job.
    const char *ProfRoot = telemetry::ambientProfileRoot();
    const std::string TraceId = telemetry::traceContextId();
    for (Classifier *NT : Workers->Classifiers)
      Futures.push_back(Workers->Pool->submit([&, NT] {
        telemetry::ProfileTaskScope Task(ProfRoot);
        telemetry::TraceContextScope Trace(TraceId);
        Sketch Sk(P);
        for (size_t I = Next.fetch_add(1); I < TrainSet.size();
             I = Next.fetch_add(1))
          RunOne(Sk, *NT, I);
      }));
    for (auto &F : Futures)
      F.get();
  } else {
    Sketch Sk(P);
    for (size_t I = 0; I != TrainSet.size(); ++I)
      RunOne(Sk, N, I);
  }

  ProgramEval Eval;
  double QuerySum = 0.0;
  for (const ImageOutcome &O : Out) {
    Eval.TotalQueries += O.Queries;
    ++Eval.Attacks;
    if (!O.Counted)
      continue; // the paper averages over successful attacks only
    ++Eval.Successes;
    QuerySum += static_cast<double>(O.Queries);
  }
  if (Eval.Successes > 0)
    Eval.AvgQueries = QuerySum / static_cast<double>(Eval.Successes);
  return Eval;
}

/// Stream-id tag for island Rng derivation: island i of a synthesis seeded
/// S draws from SplitMix64 stream (S, IslandStreamTag + i), so the streams
/// are decorrelated from each other and from every other derived stream
/// (serve shard seeds, dataset seeds) without any shared draw order.
constexpr uint64_t IslandStreamTag = 0x49534c44; // "ISLD"

/// One MH chain of the island model. Everything an island touches is
/// island-private (Rng, classifier, chain state), so rounds can run on any
/// thread — or all on one — with bit-identical results.
struct IslandState {
  size_t Index = 0;
  Rng R{1};
  Classifier *Cls = nullptr;
  Program P;               ///< current chain state
  ProgramEval Eval;
  double Score = 0.0;
  Program Best;            ///< best-seen elite (incl. adopted migrants)
  ProgramEval BestEval;
  double BestScore = 0.0;
  uint64_t Cumulative = 0; ///< queries posed by this island
};

/// Runs \p Iters MH iterations on island \p S (serial candidate scoring;
/// the parallelism budget is spent across islands, not within one).
void runIslandRound(IslandState &S, const MutationContext &Ctx,
                    const SynthesisConfig &Config, size_t StartIter,
                    size_t Iters, const Dataset &TrainSet,
                    telemetry::Counter &IterCounter,
                    telemetry::Counter &AcceptCounter,
                    telemetry::Counter &SynthQueries) {
  telemetry::ProfileScope Span("synth.island");
  for (size_t K = 0; K != Iters; ++K) {
    const size_t Iter = StartIter + K;
    MutationKind Kind = MutationKind::Root;
    Program Candidate;
    {
      telemetry::ProfileScope ProposeSpan("synth.propose");
      Candidate = mutateProgram(S.P, Ctx, S.R, &Kind);
    }
    const ProgramEval CandEval = evaluateProgramWith(
        Candidate, *S.Cls, TrainSet, Config.PerImageQueryCap, nullptr);
    const double CandScore = CandEval.score(Config.Beta);
    S.Cumulative += CandEval.TotalQueries;
    bool Accept;
    if (S.Score <= 0.0)
      Accept = CandScore > 0.0;
    else
      Accept = S.R.uniform() < CandScore / S.Score;
    if (Accept) {
      S.P = Candidate;
      S.Eval = CandEval;
      S.Score = CandScore;
    }
    if (CandScore > S.BestScore) {
      S.Best = Candidate;
      S.BestEval = CandEval;
      S.BestScore = CandScore;
    }
    IterCounter.inc();
    if (Accept)
      AcceptCounter.inc();
    SynthQueries.inc(CandEval.TotalQueries);
    if (telemetry::traceEnabled())
      telemetry::traceEvent("synth_iter",
                            {{"island", S.Index},
                             {"iter", Iter},
                             {"proposal", mutationKindName(Kind)},
                             {"accepted", Accept},
                             {"cand_score", CandScore},
                             {"cand_avg_queries", CandEval.AvgQueries},
                             {"cand_successes", CandEval.Successes},
                             {"cur_avg_queries", S.Eval.AvgQueries},
                             {"cum_queries", S.Cumulative}});
  }
}

/// The island-model synthesizer (Islands > 1): N independent MH chains,
/// each on its own Rng stream and classifier clone, with deterministic
/// ring migration of elites every ExchangeInterval iterations. The result
/// is a pure function of (Seed, Islands, ExchangeInterval) — the thread
/// count only changes wall-clock time, never a byte of the program.
Program synthesizeIslands(Classifier &N, const Dataset &TrainSet,
                          const SynthesisConfig &Config,
                          std::vector<SynthesisStep> *Trace,
                          std::vector<IslandElite> *Elites) {
  const size_t NumIslands = Config.Islands;
  const size_t Interval = std::max<size_t>(1, Config.ExchangeInterval);
  MutationContext Ctx;
  Ctx.ImageSide =
      TrainSet.size() > 0 ? TrainSet.Images.front().height() : 32;

  static telemetry::Counter &IterCounter =
      telemetry::counter("synth.iterations");
  static telemetry::Counter &AcceptCounter =
      telemetry::counter("synth.accepts");
  static telemetry::Counter &SynthQueries =
      telemetry::counter("synth.queries");
  static telemetry::Counter &IslandCounter =
      telemetry::counter("synth.islands");
  static telemetry::Counter &ExchangeCounter =
      telemetry::counter("synth.exchanges");
  IslandCounter.inc(NumIslands);

  // Island 0 runs on the caller's classifier, the rest on clones. A
  // non-cloneable classifier degrades to all islands sharing N serially —
  // same chains, same result, no parallelism.
  std::vector<std::unique_ptr<Classifier>> Owned;
  bool Cloneable = true;
  for (size_t I = 1; I < NumIslands && Cloneable; ++I) {
    auto C = N.clone();
    if (!C)
      Cloneable = false;
    else
      Owned.push_back(std::move(C));
  }
  if (!Cloneable)
    Owned.clear();

  std::vector<IslandState> Islands(NumIslands);
  for (size_t I = 0; I != NumIslands; ++I) {
    IslandState &S = Islands[I];
    S.Index = I;
    S.R = Rng(Rng::deriveRunSeed(Config.Seed, IslandStreamTag + I));
    S.Cls = (I == 0 || !Cloneable) ? &N : Owned[I - 1].get();
  }

  const size_t PoolThreads =
      Cloneable ? std::min(Config.Threads, NumIslands) : 1;
  std::unique_ptr<ThreadPool> Pool;
  if (PoolThreads >= 2)
    Pool = std::make_unique<ThreadPool>(PoolThreads);

  // Runs Fn over every island, on the pool when available. Pool workers
  // adopt the submitting thread's job context so island spans and trace
  // events attribute to the surrounding job.
  auto RunAll = [&](const std::function<void(IslandState &)> &Fn) {
    if (!Pool) {
      for (IslandState &S : Islands)
        Fn(S);
      return;
    }
    const char *ProfRoot = telemetry::ambientProfileRoot();
    const std::string TraceId = telemetry::traceContextId();
    std::vector<std::future<void>> Futures;
    Futures.reserve(NumIslands);
    for (size_t I = 0; I != NumIslands; ++I)
      Futures.push_back(Pool->submit([&, I] {
        telemetry::ProfileTaskScope Task(ProfRoot);
        telemetry::TraceContextScope TraceScope(TraceId);
        Fn(Islands[I]);
      }));
    for (auto &F : Futures)
      F.get();
  };

  // Round 0: every island draws and scores its own initial program.
  RunAll([&](IslandState &S) {
    telemetry::ProfileScope Span("synth.island");
    S.P = randomProgram(Ctx, S.R);
    S.Eval = evaluateProgramWith(S.P, *S.Cls, TrainSet,
                                 Config.PerImageQueryCap, nullptr);
    S.Score = S.Eval.score(Config.Beta);
    S.Cumulative = S.Eval.TotalQueries;
    S.Best = S.P;
    S.BestEval = S.Eval;
    S.BestScore = S.Score;
    SynthQueries.inc(S.Eval.TotalQueries);
  });

  // First-wins argmax in island-index order: ties go to the lower index,
  // so "the global best" is itself deterministic.
  auto GlobalBest = [&]() -> const IslandState & {
    const IslandState *B = &Islands.front();
    for (const IslandState &S : Islands)
      if (S.BestScore > B->BestScore)
        B = &S;
    return *B;
  };
  auto TotalQueries = [&]() {
    uint64_t Sum = 0;
    for (const IslandState &S : Islands)
      Sum += S.Cumulative;
    return Sum;
  };

  if (Trace)
    Trace->push_back(SynthesisStep{0, true, GlobalBest().Best,
                                   GlobalBest().BestEval.AvgQueries,
                                   TotalQueries()});
  if (telemetry::traceEnabled())
    telemetry::traceEvent("synth_begin",
                          {{"max_iter", Config.MaxIter},
                           {"beta", Config.Beta},
                           {"train_images", TrainSet.size()},
                           {"islands", NumIslands},
                           {"exchange_interval", Interval},
                           {"init_avg_queries", GlobalBest().BestEval.AvgQueries},
                           {"init_queries", TotalQueries()}});
  logDebug() << "island synthesis init: islands=" << NumIslands
             << " interval=" << Interval
             << " bestAvgQ=" << GlobalBest().BestEval.AvgQueries;

  telemetry::progressBegin("synth", Config.MaxIter);
  size_t Done = 0;
  while (Done < Config.MaxIter) {
    const size_t Iters = std::min(Interval, Config.MaxIter - Done);
    const double PrevBest = GlobalBest().BestScore;
    RunAll([&](IslandState &S) {
      runIslandRound(S, Ctx, Config, Done + 1, Iters, TrainSet, IterCounter,
                     AcceptCounter, SynthQueries);
    });
    Done += Iters;

    // Ring migration, in island-index order from a pre-round snapshot:
    // island i receives island (i-1)'s elite and adopts it as its chain
    // state iff it strictly beats the current score. No Rng is consumed,
    // so exchanges never perturb the chains' random streams.
    if (Done < Config.MaxIter && NumIslands > 1) {
      struct EliteSnap {
        Program P;
        ProgramEval Eval;
        double Score;
      };
      std::vector<EliteSnap> Snap;
      Snap.reserve(NumIslands);
      for (const IslandState &S : Islands)
        Snap.push_back(EliteSnap{S.Best, S.BestEval, S.BestScore});
      for (size_t I = 0; I != NumIslands; ++I) {
        const EliteSnap &In = Snap[(I + NumIslands - 1) % NumIslands];
        IslandState &S = Islands[I];
        if (In.Score > S.Score) {
          S.P = In.P;
          S.Eval = In.Eval;
          S.Score = In.Score;
        }
        if (In.Score > S.BestScore) {
          S.Best = In.P;
          S.BestEval = In.Eval;
          S.BestScore = In.Score;
        }
      }
      ExchangeCounter.inc();
      if (telemetry::traceEnabled())
        telemetry::traceEvent("synth_exchange",
                              {{"iter", Done},
                               {"islands", NumIslands},
                               {"best_score", GlobalBest().BestScore}});
    }

    const IslandState &B = GlobalBest();
    if (Trace)
      Trace->push_back(SynthesisStep{Done, B.BestScore > PrevBest, B.Best,
                                     B.BestEval.AvgQueries, TotalQueries()});
    telemetry::progressSet(
        Done,
        B.BestEval.Attacks ? static_cast<double>(B.BestEval.Successes) /
                                 static_cast<double>(B.BestEval.Attacks)
                           : 0.0,
        B.BestEval.AvgQueries);
  }
  telemetry::progressFinish();

  if (Elites) {
    Elites->clear();
    for (const IslandState &S : Islands)
      Elites->push_back(IslandElite{S.Best, S.BestEval, S.BestScore});
  }

  const IslandState &B = GlobalBest();
  if (telemetry::traceEnabled())
    telemetry::traceEvent("synth_end",
                          {{"avg_queries", B.BestEval.AvgQueries},
                           {"successes", B.BestEval.Successes},
                           {"attacks", B.BestEval.Attacks},
                           {"islands", NumIslands},
                           {"cum_queries", TotalQueries()}});
  logInfo() << "island synthesis done: islands=" << NumIslands
            << " bestAvgQ=" << B.BestEval.AvgQueries << " over "
            << B.BestEval.Successes << "/" << B.BestEval.Attacks
            << " train images, total synthesis queries=" << TotalQueries();
  if (B.BestScore <= 0.0) {
    logWarn() << "island synthesis saw no successful training attack; "
                 "returning the fixed-prioritization program";
    return allFalseProgram();
  }
  return B.Best;
}

} // namespace

ProgramEval oppsla::evaluateProgram(const Program &P, Classifier &N,
                                    const Dataset &TrainSet,
                                    uint64_t PerImageCap, size_t Threads) {
  if (Threads < 2)
    return evaluateProgramWith(P, N, TrainSet, PerImageCap, nullptr);
  EvalWorkers Workers = EvalWorkers::make(N, Threads, TrainSet.size());
  return evaluateProgramWith(P, N, TrainSet, PerImageCap, &Workers);
}

Program oppsla::synthesizeProgram(Classifier &N, const Dataset &TrainSet,
                                  const SynthesisConfig &Config,
                                  std::vector<SynthesisStep> *Trace,
                                  std::vector<IslandElite> *Elites) {
  if (Config.Islands > 1)
    return synthesizeIslands(N, TrainSet, Config, Trace, Elites);
  Rng R(Config.Seed);
  MutationContext Ctx;
  Ctx.ImageSide =
      TrainSet.size() > 0 ? TrainSet.Images.front().height() : 32;

  // One pool + one set of classifier clones for the whole MH chain.
  EvalWorkers Workers = EvalWorkers::make(N, Config.Threads, TrainSet.size());

  Program P = randomProgram(Ctx, R);
  ProgramEval Eval = evaluateProgramWith(P, N, TrainSet,
                                         Config.PerImageQueryCap, &Workers);
  double Score = Eval.score(Config.Beta);
  uint64_t Cumulative = Eval.TotalQueries;
  Program Best = P;
  ProgramEval BestEval = Eval;
  double BestScore = Score;
  if (Trace)
    Trace->push_back(
        SynthesisStep{0, true, P, Eval.AvgQueries, Cumulative});
  if (telemetry::traceEnabled())
    telemetry::traceEvent("synth_begin",
                          {{"max_iter", Config.MaxIter},
                           {"beta", Config.Beta},
                           {"train_images", TrainSet.size()},
                           {"init_avg_queries", Eval.AvgQueries},
                           {"init_queries", Eval.TotalQueries}});
  logDebug() << "synthesis init: avgQ=" << Eval.AvgQueries
             << " successes=" << Eval.Successes << "/" << Eval.Attacks;

  // Per-run MH accounting for the metrics snapshot.
  static telemetry::Counter &IterCounter =
      telemetry::counter("synth.iterations");
  static telemetry::Counter &AcceptCounter =
      telemetry::counter("synth.accepts");
  static telemetry::Counter &SynthQueries =
      telemetry::counter("synth.queries");
  SynthQueries.inc(Eval.TotalQueries);

  telemetry::progressBegin("synth", Config.MaxIter);
  for (size_t Iter = 1; Iter <= Config.MaxIter; ++Iter) {
    MutationKind Kind = MutationKind::Root;
    Program Candidate;
    {
      telemetry::ProfileScope ProposeSpan("synth.propose");
      Candidate = mutateProgram(P, Ctx, R, &Kind);
    }
    const ProgramEval CandEval = evaluateProgramWith(
        Candidate, N, TrainSet, Config.PerImageQueryCap, &Workers);
    const double CandScore = CandEval.score(Config.Beta);
    Cumulative += CandEval.TotalQueries;

    // MH acceptance: u < S(P')/S(P). A zero-score incumbent accepts any
    // scoring candidate.
    telemetry::ProfileScope AcceptSpan("synth.accept");
    bool Accept;
    if (Score <= 0.0)
      Accept = CandScore > 0.0;
    else
      Accept = R.uniform() < CandScore / Score;
    if (Accept) {
      P = Candidate;
      Eval = CandEval;
      Score = CandScore;
    }
    if (CandScore > BestScore) {
      Best = Candidate;
      BestEval = CandEval;
      BestScore = CandScore;
    }
    if (Trace)
      Trace->push_back(
          SynthesisStep{Iter, Accept, P, Eval.AvgQueries, Cumulative});
    IterCounter.inc();
    if (Accept)
      AcceptCounter.inc();
    SynthQueries.inc(CandEval.TotalQueries);
    if (telemetry::traceEnabled())
      telemetry::traceEvent("synth_iter",
                            {{"iter", Iter},
                             {"proposal", mutationKindName(Kind)},
                             {"accepted", Accept},
                             {"cand_score", CandScore},
                             {"cand_avg_queries", CandEval.AvgQueries},
                             {"cand_successes", CandEval.Successes},
                             {"cur_avg_queries", Eval.AvgQueries},
                             {"cum_queries", Cumulative}});
    logDebug() << "synthesis iter " << Iter << ": candAvgQ="
               << CandEval.AvgQueries << (Accept ? " accepted" : " rejected")
               << " curAvgQ=" << Eval.AvgQueries;
    telemetry::progressSet(Iter,
                Eval.Attacks ? static_cast<double>(Eval.Successes) /
                                   static_cast<double>(Eval.Attacks)
                             : 0.0,
                Eval.AvgQueries);
  }
  telemetry::progressFinish();
  if (telemetry::traceEnabled())
    telemetry::traceEvent("synth_end",
                          {{"avg_queries", Eval.AvgQueries},
                           {"successes", Eval.Successes},
                           {"attacks", Eval.Attacks},
                           {"cum_queries", Cumulative}});
  logInfo() << "synthesis done: avgQ=" << Eval.AvgQueries << " over "
            << Eval.Successes << "/" << Eval.Attacks
            << " train images, total synthesis queries=" << Cumulative;
  if (Elites) {
    Elites->clear();
    Elites->push_back(IslandElite{Best, BestEval, BestScore});
  }
  if (Config.ReturnBestSeen && BestScore <= 0.0) {
    // No candidate ever succeeded on the training set (e.g. a robust
    // class under a tight cap): the scores carry no signal, so prefer the
    // deterministic fixed prioritization over an arbitrary random program.
    logWarn() << "synthesis saw no successful training attack; returning "
                 "the fixed-prioritization program";
    return allFalseProgram();
  }
  return Config.ReturnBestSeen ? Best : P;
}

Program oppsla::randomSearchProgram(Classifier &N, const Dataset &TrainSet,
                                    size_t NumSamples, uint64_t PerImageCap,
                                    uint64_t Seed, size_t Threads) {
  assert(NumSamples > 0 && "need at least one sample");
  Rng R(Seed);
  MutationContext Ctx;
  Ctx.ImageSide =
      TrainSet.size() > 0 ? TrainSet.Images.front().height() : 32;

  EvalWorkers Workers = EvalWorkers::make(N, Threads, TrainSet.size());

  Program Best;
  double BestAvg = 0.0;
  bool HaveBest = false;
  for (size_t I = 0; I != NumSamples; ++I) {
    const Program P = randomProgram(Ctx, R);
    const ProgramEval Eval =
        evaluateProgramWith(P, N, TrainSet, PerImageCap, &Workers);
    if (Eval.Successes == 0)
      continue;
    if (!HaveBest || Eval.AvgQueries < BestAvg) {
      Best = P;
      BestAvg = Eval.AvgQueries;
      HaveBest = true;
    }
  }
  if (!HaveBest) {
    logWarn() << "random search found no succeeding program; returning "
                 "the fixed-prioritization program";
    return allFalseProgram();
  }
  return Best;
}
