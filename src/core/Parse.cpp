//===- core/Parse.cpp - Textual syntax for the condition DSL -----------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Parse.h"

#include <cctype>
#include <cstdlib>

using namespace oppsla;

namespace {

/// Minimal cursor-based lexer/parser over the condition syntax.
class Parser {
public:
  explicit Parser(const std::string &Text) : Text(Text) {}

  /// Parses exactly \p Count conditions and verifies trailing content is
  /// only whitespace.
  ParseResult parseConditions(Condition *Out, size_t Count) {
    for (size_t I = 0; I != Count; ++I) {
      if (auto R = parseOne(Out[I], I); !R.Ok)
        return R;
    }
    skipSpace();
    if (!atEnd())
      return fail("unexpected trailing input after the last condition");
    return ParseResult::success();
  }

private:
  ParseResult parseOne(Condition &C, size_t Index) {
    skipSpace();
    if (atEnd())
      return fail("expected a condition, found end of input");

    // Optional "[Bk]" label; when present, k must match the position.
    if (peek() == '[') {
      ++Pos;
      if (!consumeWord("B"))
        return fail("expected 'B' after '[' in condition label");
      const size_t Digit = Pos;
      while (!atEnd() && std::isdigit(peek()))
        ++Pos;
      if (Digit == Pos)
        return fail("expected a condition number after '[B'");
      const unsigned long K =
          std::strtoul(Text.substr(Digit, Pos - Digit).c_str(), nullptr, 10);
      if (K != Index + 1)
        return fail("condition label out of order: expected [B" +
                    std::to_string(Index + 1) + "]");
      if (atEnd() || peek() != ']')
        return fail("expected ']' to close the condition label");
      ++Pos;
      skipSpace();
    }

    // Function symbol.
    const std::string Name = lexWord();
    if (Name.empty())
      return fail("expected a function name (max/min/avg/score_diff/"
                  "center)");
    if (Name == "max" || Name == "min" || Name == "avg") {
      C.Func = Name == "max"   ? FuncKind::MaxPixel
               : Name == "min" ? FuncKind::MinPixel
                               : FuncKind::AvgPixel;
      if (!consume('('))
        return fail("expected '(' after '" + Name + "'");
      skipSpace();
      const std::string Arg = lexWord();
      if (Arg == "x_l")
        C.Source = PixelSource::Original;
      else if (Arg == "p")
        C.Source = PixelSource::Perturbation;
      else
        return fail("pixel argument must be 'x_l' or 'p', got '" + Arg +
                    "'");
      skipSpace();
      if (!consume(')'))
        return fail("expected ')' after the pixel argument");
    } else if (Name == "score_diff") {
      C.Func = FuncKind::ScoreDiff;
      C.Source = PixelSource::Original;
      // Fixed argument list: (N(x),N(x[l<-p]),cx).
      if (!consumeLiteral("(N(x),N(x[l<-p]),cx)"))
        return fail("score_diff arguments must be (N(x),N(x[l<-p]),cx)");
    } else if (Name == "center") {
      C.Func = FuncKind::Center;
      C.Source = PixelSource::Original;
      if (!consumeLiteral("(l)"))
        return fail("center argument must be (l)");
    } else {
      return fail("unknown function '" + Name + "'");
    }

    // Comparison.
    skipSpace();
    if (atEnd() || (peek() != '<' && peek() != '>'))
      return fail("expected '<' or '>' after the function");
    C.Cmp = peek() == '<' ? CmpKind::Less : CmpKind::Greater;
    ++Pos;

    // Threshold constant.
    skipSpace();
    const size_t Start = Pos;
    if (!atEnd() && (peek() == '-' || peek() == '+'))
      ++Pos;
    bool SawDigit = false;
    while (!atEnd() && (std::isdigit(peek()) || peek() == '.' ||
                        peek() == 'e' || peek() == 'E' ||
                        ((peek() == '-' || peek() == '+') && Pos > Start &&
                         (Text[Pos - 1] == 'e' || Text[Pos - 1] == 'E')))) {
      SawDigit |= std::isdigit(peek()) != 0;
      ++Pos;
    }
    if (!SawDigit)
      return fail("expected a numeric threshold");
    char *End = nullptr;
    C.Threshold = std::strtod(Text.substr(Start, Pos - Start).c_str(), &End);
    return ParseResult::success();
  }

  bool atEnd() const { return Pos >= Text.size(); }
  char peek() const { return Text[Pos]; }

  void skipSpace() {
    while (!atEnd() && std::isspace(peek()))
      ++Pos;
  }

  bool consume(char C) {
    skipSpace();
    if (atEnd() || peek() != C)
      return false;
    ++Pos;
    return true;
  }

  /// Consumes an exact literal with interior whitespace ignored.
  bool consumeLiteral(const char *Lit) {
    for (const char *P = Lit; *P; ++P) {
      skipSpace();
      if (atEnd() || peek() != *P)
        return false;
      ++Pos;
    }
    return true;
  }

  bool consumeWord(const char *Word) {
    for (const char *P = Word; *P; ++P) {
      if (atEnd() || peek() != *P)
        return false;
      ++Pos;
    }
    return true;
  }

  std::string lexWord() {
    skipSpace();
    const size_t Start = Pos;
    while (!atEnd() && (std::isalnum(peek()) || peek() == '_'))
      ++Pos;
    return Text.substr(Start, Pos - Start);
  }

  ParseResult fail(std::string Msg) const {
    size_t Line = 1, Col = 1;
    for (size_t I = 0; I < Pos && I < Text.size(); ++I) {
      if (Text[I] == '\n') {
        ++Line;
        Col = 1;
      } else {
        ++Col;
      }
    }
    return ParseResult::error(std::move(Msg), Line, Col);
  }

  const std::string &Text;
  size_t Pos = 0;
};

} // namespace

ParseResult oppsla::parseCondition(const std::string &Text, Condition &Out) {
  Condition C;
  Parser P(Text);
  ParseResult R = P.parseConditions(&C, 1);
  if (R.Ok)
    Out = C;
  return R;
}

ParseResult oppsla::parseProgram(const std::string &Text, Program &Out) {
  Program Prog;
  Parser P(Text);
  ParseResult R = P.parseConditions(Prog.Conds.data(), Prog.Conds.size());
  if (R.Ok)
    Out = Prog;
  return R;
}
