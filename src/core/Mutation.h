//===- core/Mutation.h - Typed program mutation (Section 4) -----*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stochastic search's proposal distribution: programs are ASTs (root,
/// four condition nodes, and per condition a function node and a constant
/// node — Figure 2). A mutation uniformly selects one node and re-samples
/// its entire subtree from the grammar, so every proposal is well-typed by
/// construction.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_CORE_MUTATION_H
#define OPPSLA_CORE_MUTATION_H

#include "core/Condition.h"

namespace oppsla {

class Rng;

/// Context needed to sample sensible constants: the threshold range of
/// center(l) depends on the image side.
struct MutationContext {
  size_t ImageSide = 32;

  /// Largest meaningful center-distance threshold.
  double maxCenterDist() const {
    return static_cast<double>(ImageSide) / 2.0;
  }
};

/// Samples a fresh threshold appropriate for \p Func.
double sampleThreshold(FuncKind Func, const MutationContext &Ctx, Rng &R);

/// Samples a complete random condition.
Condition randomCondition(const MutationContext &Ctx, Rng &R);

/// Samples a complete random program (the synthesizer's starting point).
Program randomProgram(const MutationContext &Ctx, Rng &R);

/// Which AST node class a mutation re-sampled (Figure 2's node universe);
/// reported so synthesis telemetry can attribute proposals.
enum class MutationKind { Root, Condition, Function, Constant };

/// Short stable name of \p K ("root", "condition", "function", "constant").
const char *mutationKindName(MutationKind K);

/// Returns a mutated copy of \p P: one uniformly chosen AST node's subtree
/// is re-sampled (root => all four conditions; condition => its function
/// and constant; function => the function symbol only; constant => the
/// threshold only, re-sampled for the current function's range). When
/// \p KindOut is non-null it receives the mutated node class.
Program mutateProgram(const Program &P, const MutationContext &Ctx, Rng &R,
                      MutationKind *KindOut = nullptr);

} // namespace oppsla

#endif // OPPSLA_CORE_MUTATION_H
