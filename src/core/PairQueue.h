//===- core/PairQueue.h - The sketch's reorderable queue --------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The priority queue L of Algorithm 1. Supports exactly the operations the
/// sketch needs, all O(1): pop the front pair, test membership, remove an
/// arbitrary pair (for eager checking), and push an in-queue pair to the
/// back. Monotone sequence numbers give "position in queue order" so the
/// sketch can find the *next* pair at a given location (closest_pert) by
/// scanning that location's eight corners for the live pair with minimal
/// sequence number.
///
/// Implementation: an intrusive doubly-linked list threaded through a dense
/// node array indexed by PairId.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_CORE_PAIRQUEUE_H
#define OPPSLA_CORE_PAIRQUEUE_H

#include "core/Pair.h"

#include <vector>

namespace oppsla {

/// Doubly-linked queue over a dense PairId universe.
class PairQueue {
public:
  /// Builds the queue containing exactly \p Order (front first); ids must
  /// be unique and < \p UniverseSize.
  PairQueue(const std::vector<PairId> &Order, size_t UniverseSize);

  bool empty() const { return Count == 0; }
  size_t size() const { return Count; }

  /// True if \p Id is still enqueued.
  bool contains(PairId Id) const {
    assert(Id < Nodes.size() && "pair id out of range");
    return Nodes[Id].Live;
  }

  /// Position stamp: smaller means closer to the front *among pairs that
  /// were (re)inserted earlier*. Only meaningful for live pairs.
  uint64_t seq(PairId Id) const {
    assert(contains(Id) && "seq of non-live pair");
    return Nodes[Id].Seq;
  }

  /// Removes and returns the front pair; queue must be non-empty.
  PairId popFront();

  /// Unlinks \p Id from the queue; it must be live.
  void remove(PairId Id);

  /// Moves the live pair \p Id to the back of the queue (fresh sequence
  /// number).
  void pushBack(PairId Id);

  /// Front pair id without removing it; queue must be non-empty.
  PairId front() const {
    assert(!empty() && "front of empty queue");
    return Head;
  }

  /// Appends up to \p K front-most pair ids to \p Out without removing
  /// them (a walk of the list head — used by the sketch to prefetch the
  /// upcoming candidates as one engine batch).
  void peekFront(size_t K, std::vector<PairId> &Out) const {
    for (PairId Id = Head; Id != InvalidPair && K != 0;
         Id = Nodes[Id].Next, --K)
      Out.push_back(Id);
  }

private:
  struct Node {
    PairId Prev = InvalidPair;
    PairId Next = InvalidPair;
    uint64_t Seq = 0;
    bool Live = false;
  };

  void link(PairId Id); ///< appends to tail, stamps a fresh Seq
  void unlink(PairId Id);

  std::vector<Node> Nodes;
  PairId Head = InvalidPair;
  PairId Tail = InvalidPair;
  size_t Count = 0;
  uint64_t NextSeq = 0;
};

} // namespace oppsla

#endif // OPPSLA_CORE_PAIRQUEUE_H
