//===- core/Pair.h - Location-perturbation pairs ----------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The candidate space of one pixel attacks: location-perturbation pairs
/// (Section 3.1). Perturbations are restricted to the eight corners of the
/// RGB cube following Sparse-RS, so the space has exactly 8 * d1 * d2
/// elements, dense-indexed as PairId = corner * numLocations + location.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_CORE_PAIR_H
#define OPPSLA_CORE_PAIR_H

#include "data/Image.h"

#include <array>
#include <cstdint>

namespace oppsla {

/// A pixel location (row, column).
struct PixelLoc {
  uint16_t Row = 0;
  uint16_t Col = 0;

  bool operator==(const PixelLoc &Other) const {
    return Row == Other.Row && Col == Other.Col;
  }

  /// The paper's location metric: L-infinity distance.
  unsigned linfDistance(const PixelLoc &Other) const {
    const unsigned DR = Row > Other.Row ? Row - Other.Row : Other.Row - Row;
    const unsigned DC = Col > Other.Col ? Col - Other.Col : Other.Col - Col;
    return DR > DC ? DR : DC;
  }
};

/// Index of an RGB-cube corner: bit 2 = R, bit 1 = G, bit 0 = B.
using CornerIdx = uint8_t;
constexpr size_t NumCorners = 8;

/// The pixel value of corner \p C.
inline Pixel cornerPixel(CornerIdx C) {
  assert(C < NumCorners && "corner index out of range");
  return Pixel{(C & 4) ? 1.0f : 0.0f, (C & 2) ? 1.0f : 0.0f,
               (C & 1) ? 1.0f : 0.0f};
}

/// Dense pair identifier; see PairSpace for the encoding.
using PairId = uint32_t;
constexpr PairId InvalidPair = ~static_cast<PairId>(0);

/// A concrete location-perturbation pair.
struct LocPert {
  PixelLoc Loc;
  CornerIdx Corner = 0;

  Pixel perturbation() const { return cornerPixel(Corner); }

  bool operator==(const LocPert &Other) const {
    return Loc == Other.Loc && Corner == Other.Corner;
  }
};

/// Geometry and indexing of the full pair space for one image shape.
///
/// Also precomputes, per location, the ordering of the eight corners by
/// decreasing L1 distance from the image's pixel there (the sketch's
/// primary initialization key) and each location's L-infinity distance to
/// the image center (the secondary key).
class PairSpace {
public:
  /// Builds the space for image \p X (its pixel values determine the
  /// per-location corner ranking).
  explicit PairSpace(const Image &X);

  size_t height() const { return H; }
  size_t width() const { return W; }
  size_t numLocations() const { return H * W; }
  size_t size() const { return NumCorners * numLocations(); }

  PairId idOf(const LocPert &P) const {
    assert(P.Loc.Row < H && P.Loc.Col < W && "location out of range");
    return static_cast<PairId>(P.Corner) * static_cast<PairId>(H * W) +
           locIndex(P.Loc);
  }

  LocPert pairOf(PairId Id) const {
    assert(Id < size() && "pair id out of range");
    const auto Locs = static_cast<PairId>(H * W);
    LocPert P;
    P.Corner = static_cast<CornerIdx>(Id / Locs);
    const PairId L = Id % Locs;
    P.Loc.Row = static_cast<uint16_t>(L / W);
    P.Loc.Col = static_cast<uint16_t>(L % W);
    return P;
  }

  uint32_t locIndex(const PixelLoc &L) const {
    return static_cast<uint32_t>(L.Row) * static_cast<uint32_t>(W) + L.Col;
  }

  /// L-infinity distance of \p L from the image center (continuous center
  /// for even dimensions, so a 32x32 image has center (15.5, 15.5)).
  double centerDistance(const PixelLoc &L) const;

  /// The corner that is \p Rank-th farthest (0 = farthest) from the
  /// image's pixel at \p L, by L1 pixel distance. Ties are broken by
  /// corner index for determinism.
  CornerIdx cornerByRank(const PixelLoc &L, size_t Rank) const {
    assert(Rank < NumCorners && "rank out of range");
    return CornerRank[locIndex(L) * NumCorners + Rank];
  }

  /// Initial queue order per Appendix A: primary key = corner rank
  /// (farthest first), secondary key = center distance (closest to the
  /// center first). Returns all pair ids in that order.
  std::vector<PairId> initialOrder() const;

  /// All locations at L-infinity distance exactly 1 from \p L (up to 8).
  /// Appended to \p Out.
  void neighbors(const PixelLoc &L, std::vector<PixelLoc> &Out) const;

private:
  size_t H, W;
  std::vector<CornerIdx> CornerRank; ///< numLocations x NumCorners
};

} // namespace oppsla

#endif // OPPSLA_CORE_PAIR_H
