//===- core/Sketch.h - The one pixel attack sketch (Algorithm 1) -*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executor for the paper's program sketch (Appendix A, Algorithm 1).
///
/// The sketch maintains the queue L of all location-perturbation pairs in
/// the initialization order (farthest corner first, then center-closest
/// location first). It repeatedly pops a pair, queries the classifier on
/// the corresponding one pixel perturbation, and returns on success. On
/// failure the four synthesized conditions reorder L:
///
///   - B1 true  => push the location-closest pairs (same perturbation,
///                 L-inf distance 1) to the back of L;
///   - B2 true  => push the perturbation-closest pair (next pair in L at
///                 the same location) to the back of L;
///   - B3 true  => eagerly check the location-closest pairs now
///                 (conceptual push-front), transitively via a BFS that
///                 also re-applies B3/B4 to each failed eager pair;
///   - B4 true  => eagerly check the perturbation-closest pair, same BFS.
///
/// Every instantiation is *exhaustive*: each pair is queried at most once,
/// and if any one pixel adversarial example exists in the corner space the
/// sketch finds it (given enough budget). Programs only change the order,
/// i.e. the query count.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_CORE_SKETCH_H
#define OPPSLA_CORE_SKETCH_H

#include "classify/Classifier.h"
#include "core/Condition.h"
#include "core/PairQueue.h"

#include <cstdint>
#include <limits>

namespace oppsla {

/// Outcome of one sketch run on one image.
struct SketchResult {
  bool Success = false;
  /// The successful pair (valid only when Success).
  LocPert Adversarial;
  /// Queries posed to the classifier during this run, including the one
  /// initial query of the unperturbed image.
  uint64_t Queries = 0;
  /// True if the run stopped because the query budget ran out.
  bool BudgetExhausted = false;
  /// True if the unperturbed image was already misclassified (the run
  /// reports Success with an all-zero pair in that case).
  bool AlreadyMisclassified = false;
};

/// Runs the sketch instantiated with program \p P.
class Sketch {
public:
  static constexpr uint64_t Unlimited =
      std::numeric_limits<uint64_t>::max();

  explicit Sketch(Program P) : Prog(std::move(P)) {}

  const Program &program() const { return Prog; }

  /// Attacks image \p X whose true class is \p TrueClass, querying \p N at
  /// most \p QueryBudget times.
  SketchResult run(Classifier &N, const Image &X, size_t TrueClass,
                   uint64_t QueryBudget = Unlimited) const;

private:
  Program Prog;
};

} // namespace oppsla

#endif // OPPSLA_CORE_SKETCH_H
