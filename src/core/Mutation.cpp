//===- core/Mutation.cpp - Typed program mutation (Section 4) ----------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Mutation.h"

#include "support/Rng.h"

using namespace oppsla;

double oppsla::sampleThreshold(FuncKind Func, const MutationContext &Ctx,
                               Rng &R) {
  switch (Func) {
  case FuncKind::MaxPixel:
  case FuncKind::MinPixel:
  case FuncKind::AvgPixel:
    // Pixel channels live in [0,1].
    return R.uniform(0.0, 1.0);
  case FuncKind::ScoreDiff:
    // Softmax-confidence differences; almost all mass is well inside
    // [-0.5, 0.5], and the paper's examples use thresholds near 0.2.
    return R.uniform(-0.5, 0.5);
  case FuncKind::Center:
    return R.uniform(0.0, Ctx.maxCenterDist());
  }
  return 0.0;
}

namespace {

FuncKind sampleFunc(Rng &R) {
  return static_cast<FuncKind>(R.index(NumFuncKinds));
}

PixelSource sampleSource(Rng &R) {
  return R.chance(0.5) ? PixelSource::Original : PixelSource::Perturbation;
}

CmpKind sampleCmp(Rng &R) {
  return R.chance(0.5) ? CmpKind::Less : CmpKind::Greater;
}

/// Re-samples the function symbol (and its pixel source) while keeping the
/// threshold — the "mutate only the F node" case.
void mutateFuncNode(Condition &C, Rng &R) {
  C.Func = sampleFunc(R);
  C.Source = sampleSource(R);
  C.Cmp = sampleCmp(R);
}

} // namespace

Condition oppsla::randomCondition(const MutationContext &Ctx, Rng &R) {
  Condition C;
  C.Func = sampleFunc(R);
  C.Source = sampleSource(R);
  C.Cmp = sampleCmp(R);
  C.Threshold = sampleThreshold(C.Func, Ctx, R);
  return C;
}

Program oppsla::randomProgram(const MutationContext &Ctx, Rng &R) {
  Program P;
  for (Condition &C : P.Conds)
    C = randomCondition(Ctx, R);
  return P;
}

const char *oppsla::mutationKindName(MutationKind K) {
  switch (K) {
  case MutationKind::Root:
    return "root";
  case MutationKind::Condition:
    return "condition";
  case MutationKind::Function:
    return "function";
  case MutationKind::Constant:
    return "constant";
  }
  return "?";
}

Program oppsla::mutateProgram(const Program &P, const MutationContext &Ctx,
                              Rng &R, MutationKind *KindOut) {
  Program Out = P;
  // Node universe (Figure 2): 1 root + 4 conditions + 4 function nodes +
  // 4 constant nodes = 13.
  const size_t Node = R.index(13);
  if (Node == 0) {
    // Root: re-sample the entire program.
    if (KindOut)
      *KindOut = MutationKind::Root;
    return randomProgram(Ctx, R);
  }
  if (Node <= 4) {
    // Condition node: re-sample that condition's whole subtree.
    if (KindOut)
      *KindOut = MutationKind::Condition;
    Out.Conds[Node - 1] = randomCondition(Ctx, R);
    return Out;
  }
  if (Node <= 8) {
    // Function node: new function symbol, threshold kept.
    if (KindOut)
      *KindOut = MutationKind::Function;
    mutateFuncNode(Out.Conds[Node - 5], R);
    return Out;
  }
  // Constant node: fresh threshold for the current function.
  if (KindOut)
    *KindOut = MutationKind::Constant;
  Condition &C = Out.Conds[Node - 9];
  C.Threshold = sampleThreshold(C.Func, Ctx, R);
  return Out;
}
