//===- core/Condition.cpp - The condition DSL (Figure 1) ---------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Condition.h"

#include <sstream>

using namespace oppsla;

namespace {

const char *funcName(FuncKind F) {
  switch (F) {
  case FuncKind::MaxPixel:
    return "max";
  case FuncKind::MinPixel:
    return "min";
  case FuncKind::AvgPixel:
    return "avg";
  case FuncKind::ScoreDiff:
    return "score_diff";
  case FuncKind::Center:
    return "center";
  }
  return "?";
}

bool usesPixel(FuncKind F) {
  return F == FuncKind::MaxPixel || F == FuncKind::MinPixel ||
         F == FuncKind::AvgPixel;
}

} // namespace

std::string Condition::str() const {
  std::ostringstream OS;
  OS << funcName(Func);
  if (usesPixel(Func))
    OS << "(" << (Source == PixelSource::Original ? "x_l" : "p") << ")";
  else if (Func == FuncKind::ScoreDiff)
    OS << "(N(x),N(x[l<-p]),cx)";
  else
    OS << "(l)";
  OS << (Cmp == CmpKind::Less ? " < " : " > ") << Threshold;
  return OS.str();
}

std::string Program::str() const {
  std::ostringstream OS;
  for (size_t I = 0; I != Conds.size(); ++I)
    OS << "[B" << (I + 1) << "] " << Conds[I].str() << "\n";
  return OS.str();
}

double oppsla::evalFunc(const Condition &C, const CondEnv &Env) {
  const Pixel &P = C.Source == PixelSource::Original ? Env.OriginalPixel
                                                     : Env.PerturbPixel;
  switch (C.Func) {
  case FuncKind::MaxPixel:
    return P.maxChannel();
  case FuncKind::MinPixel:
    return P.minChannel();
  case FuncKind::AvgPixel:
    return P.avgChannel();
  case FuncKind::ScoreDiff:
    return Env.ScoreDiff;
  case FuncKind::Center:
    return Env.CenterDist;
  }
  return 0.0;
}

bool oppsla::evalCondition(const Condition &C, const CondEnv &Env) {
  const double V = evalFunc(C, Env);
  return C.Cmp == CmpKind::Less ? V < C.Threshold : V > C.Threshold;
}

Program oppsla::allFalseProgram() {
  // max(p) > 2 can never hold for pixels in [0,1].
  Condition False;
  False.Func = FuncKind::MaxPixel;
  False.Source = PixelSource::Original;
  False.Cmp = CmpKind::Greater;
  False.Threshold = 2.0;
  return Program{{False, False, False, False}};
}

Program oppsla::allTrueProgram() {
  Condition True;
  True.Func = FuncKind::MaxPixel;
  True.Source = PixelSource::Original;
  True.Cmp = CmpKind::Greater;
  True.Threshold = -1.0;
  return Program{{True, True, True, True}};
}

Program oppsla::paperExampleProgram() {
  Program P;
  // [B1] score_diff(N(x), N(x[l<-p]), cx) < 0.21
  P.Conds[0] = {FuncKind::ScoreDiff, PixelSource::Original, CmpKind::Less,
                0.21};
  // [B2] max(x_l) > 0.19
  P.Conds[1] = {FuncKind::MaxPixel, PixelSource::Original, CmpKind::Greater,
                0.19};
  // [B3] score_diff(N(x), N(x[l<-p]), cx) > 0.25
  P.Conds[2] = {FuncKind::ScoreDiff, PixelSource::Original, CmpKind::Greater,
                0.25};
  // [B4] center(l) < 8
  P.Conds[3] = {FuncKind::Center, PixelSource::Original, CmpKind::Less, 8.0};
  return P;
}
