//===- core/PairQueue.cpp - The sketch's reorderable queue -------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/PairQueue.h"

using namespace oppsla;

PairQueue::PairQueue(const std::vector<PairId> &Order, size_t UniverseSize)
    : Nodes(UniverseSize) {
  for (PairId Id : Order) {
    assert(Id < UniverseSize && "pair id outside universe");
    assert(!Nodes[Id].Live && "duplicate pair in initial order");
    link(Id);
  }
}

PairId PairQueue::popFront() {
  assert(!empty() && "pop from empty queue");
  const PairId Id = Head;
  unlink(Id);
  return Id;
}

void PairQueue::remove(PairId Id) {
  assert(contains(Id) && "removing non-live pair");
  unlink(Id);
}

void PairQueue::pushBack(PairId Id) {
  assert(contains(Id) && "pushBack of non-live pair");
  if (Tail == Id)
    return; // already at the back
  unlink(Id);
  link(Id);
}

void PairQueue::link(PairId Id) {
  Node &N = Nodes[Id];
  N.Prev = Tail;
  N.Next = InvalidPair;
  N.Seq = NextSeq++;
  N.Live = true;
  if (Tail != InvalidPair)
    Nodes[Tail].Next = Id;
  else
    Head = Id;
  Tail = Id;
  ++Count;
}

void PairQueue::unlink(PairId Id) {
  Node &N = Nodes[Id];
  assert(N.Live && "unlink of non-live pair");
  if (N.Prev != InvalidPair)
    Nodes[N.Prev].Next = N.Next;
  else
    Head = N.Next;
  if (N.Next != InvalidPair)
    Nodes[N.Next].Prev = N.Prev;
  else
    Tail = N.Prev;
  N.Live = false;
  N.Prev = N.Next = InvalidPair;
  --Count;
}
