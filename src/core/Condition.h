//===- core/Condition.h - The condition DSL (Figure 1) ---------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's condition language (Figure 1):
///
///   P ::= (B1, B2, B3, B4)
///   B ::= F > r | F < r
///   F ::= max(p) | min(p) | avg(p) | score_diff(N(x1), N(x2), c') |
///         center(l)
///
/// The pixel argument p can refer either to the original pixel x_l (as in
/// the paper's example program) or to the perturbation value p itself; the
/// AST carries that choice explicitly (DESIGN.md §5.2).
///
/// A program is the 4-condition instantiation of the sketch: B1/B2 gate the
/// push-back reordering, B3/B4 gate the eager (push-front) checking.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_CORE_CONDITION_H
#define OPPSLA_CORE_CONDITION_H

#include "core/Pair.h"

#include <array>
#include <string>

namespace oppsla {

/// Version of the condition DSL itself. Bump whenever the language gains a
/// function symbol, a source, a comparison, or changes the sketch arity —
/// anything that alters what a serialized program means. Persisted program
/// artifacts (the content-addressed program store) embed this in their key,
/// so a DSL change invalidates every stored program instead of silently
/// reinterpreting it.
constexpr uint32_t DslVersion = 1;

/// The function symbol F of a condition.
enum class FuncKind : uint8_t {
  MaxPixel,  ///< max over the RGB channels of the pixel argument
  MinPixel,  ///< min over the RGB channels
  AvgPixel,  ///< mean over the RGB channels
  ScoreDiff, ///< N(x)_{c_x} - N(x[l<-p])_{c_x}
  Center,    ///< L-infinity distance of l from the image center
};
constexpr size_t NumFuncKinds = 5;

/// Which pixel a pixel-valued function reads.
enum class PixelSource : uint8_t {
  Original,     ///< x_l, the attacked image's pixel at the failed location
  Perturbation, ///< p, the attempted perturbation value
};

/// Comparison direction of a condition.
enum class CmpKind : uint8_t { Less, Greater };

/// One condition B ::= F(cmp) r.
struct Condition {
  FuncKind Func = FuncKind::MaxPixel;
  PixelSource Source = PixelSource::Original; ///< used by pixel functions
  CmpKind Cmp = CmpKind::Greater;
  double Threshold = 2.0; ///< default makes the condition always false

  /// Renders e.g. "score_diff(N(x),N(x[l<-p]),cx) < 0.21".
  std::string str() const;
};

/// A complete instantiation of the sketch: four conditions.
struct Program {
  std::array<Condition, 4> Conds;

  const Condition &b1() const { return Conds[0]; }
  const Condition &b2() const { return Conds[1]; }
  const Condition &b3() const { return Conds[2]; }
  const Condition &b4() const { return Conds[3]; }

  /// Multi-line rendering "[B1] ... \n[B2] ...".
  std::string str() const;
};

/// Everything a condition may inspect about a failed pair, all available
/// in the black-box setting with no extra queries.
struct CondEnv {
  Pixel OriginalPixel;   ///< x_l
  Pixel PerturbPixel;    ///< p
  double ScoreDiff = 0;  ///< N(x)_{c_x} - N(x[l<-p])_{c_x}
  double CenterDist = 0; ///< L-infinity distance of l from the center
};

/// Evaluates the function symbol of \p C in \p Env.
double evalFunc(const Condition &C, const CondEnv &Env);

/// Evaluates the full condition in \p Env.
bool evalCondition(const Condition &C, const CondEnv &Env);

/// The canned program whose four conditions are all False — the paper's
/// "Sketch+False" fixed-prioritization baseline (Appendix C).
Program allFalseProgram();

/// All four conditions always true; exercises the eager path maximally.
Program allTrueProgram();

/// The example program from Section 3.2 of the paper.
Program paperExampleProgram();

} // namespace oppsla

#endif // OPPSLA_CORE_CONDITION_H
