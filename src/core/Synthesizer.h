//===- core/Synthesizer.h - OPPSLA's MH search (Algorithm 2) ----*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// OPPSLA's synthesizer (Appendix B, Algorithm 2): Metropolis-Hastings-
/// style stochastic search over sketch instantiations. Each candidate
/// program is scored by running it on every training image and measuring
/// the average number of queries over *successful* attacks:
///
///   S(P) = exp(-beta * avgQueries(P))
///
/// A mutated candidate P' replaces P with probability min(1, S(P')/S(P)).
/// The synthesizer optionally records a trace of accepted programs with
/// cumulative query counts — the raw series behind the paper's Figure 4.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_CORE_SYNTHESIZER_H
#define OPPSLA_CORE_SYNTHESIZER_H

#include "core/Mutation.h"
#include "core/Sketch.h"

#include <vector>

namespace oppsla {

/// Hyper-parameters of Algorithm 2.
struct SynthesisConfig {
  size_t MaxIter = 210;    ///< MH iterations (paper Appendix C uses 210)
  double Beta = 0.02;      ///< score sharpness in exp(-beta * avgQ)
  uint64_t PerImageQueryCap = 4096; ///< cap per training image (DESIGN §5.3)
  uint64_t Seed = 1;       ///< RNG seed for init + proposals + acceptance
  /// Return the best-scoring program seen rather than the last accepted
  /// one (the Metropolis chain is an explorer, not an estimator; stochastic
  /// superoptimizers such as STOKE make the same choice). Disable to match
  /// Algorithm 2 verbatim.
  bool ReturnBestSeen = true;
  /// Worker threads for scoring each candidate over the training set.
  /// Candidate scoring dominates synthesis cost (MaxIter evaluations of
  /// the full training set); the MH chain itself stays serial, and the
  /// per-image results are reduced in index order, so any thread count
  /// produces bit-identical programs. Requires a cloneable classifier;
  /// falls back to serial otherwise.
  ///
  /// With Islands > 1 the same budget buys island-parallelism instead:
  /// up to min(Threads, Islands) chains run concurrently, each scoring
  /// its candidates serially on its own classifier clone.
  size_t Threads = 1;
  /// Number of independent MH chains ("islands") run for this synthesis.
  /// Each island derives its own Rng stream from (Seed, island) via
  /// SplitMix64 splitting, runs MaxIter iterations, and every
  /// ExchangeInterval iterations the islands exchange elites on a ring in
  /// deterministic index order — so the result is a pure function of
  /// (Seed, Islands, ExchangeInterval) at ANY thread count. Islands == 1
  /// is the paper's single chain, bit-identical to every earlier release.
  /// Islands > 1 always returns the best elite seen across islands
  /// (ReturnBestSeen semantics; the migration topology has no single
  /// "last accepted" state).
  size_t Islands = 1;
  /// Island iterations between elite exchanges (ignored for Islands <= 1).
  size_t ExchangeInterval = 25;
};

/// Aggregate result of running one program over a training set.
struct ProgramEval {
  double AvgQueries = 0.0;   ///< over successful attacks only
  size_t Successes = 0;      ///< images successfully attacked
  size_t Attacks = 0;        ///< images attempted
  uint64_t TotalQueries = 0; ///< all queries posed, successes and failures

  /// The paper's score S(P) = exp(-beta * avgQ); programs with zero
  /// successes score 0 so they are (almost) never accepted.
  double score(double Beta) const;
};

/// One entry of the synthesis trace: the state after an iteration. With
/// Islands > 1 the trace is the *elite trajectory* instead: entry 0 is the
/// best initial program across islands, then one entry per exchange round
/// holding the global best elite, with Iteration counting per-island
/// iterations and CumulativeQueries summed over all islands.
struct SynthesisStep {
  size_t Iteration = 0;            ///< 0 = the initial random program
  bool Accepted = false;           ///< proposal accepted this iteration
  Program Current;                 ///< program held after the iteration
  double AvgQueries = 0.0;         ///< its training-set average queries
  uint64_t CumulativeQueries = 0;  ///< synthesis queries posed so far
};

/// The best program one island (or the single legacy chain) ever scored,
/// with the training-set statistics behind its score — what the program
/// store persists for attack-time portfolio selection.
struct IslandElite {
  Program P;
  ProgramEval Eval;   ///< training-set stats of P
  double Score = 0.0; ///< Eval.score(Beta), 0 when nothing succeeded
};

/// Runs program \p P over every (image, label) pair of \p TrainSet with a
/// per-image budget of \p PerImageCap queries. With \p Threads > 1 the
/// images are scored by a worker pool over classifier clones; the
/// per-image outcomes are reduced in index order, so the result is
/// bit-identical to the serial evaluation.
ProgramEval evaluateProgram(const Program &P, Classifier &N,
                            const Dataset &TrainSet, uint64_t PerImageCap,
                            size_t Threads = 1);

/// OPPSLA: synthesizes a program for classifier \p N and training set
/// \p TrainSet. If \p Trace is non-null every iteration is recorded
/// (every exchange round for Islands > 1). If \p Elites is non-null it
/// receives each island's best-seen program and stats (a single entry for
/// Islands <= 1) — the raw material the program store persists.
Program synthesizeProgram(Classifier &N, const Dataset &TrainSet,
                          const SynthesisConfig &Config,
                          std::vector<SynthesisStep> *Trace = nullptr,
                          std::vector<IslandElite> *Elites = nullptr);

/// The Sketch+Random baseline (Appendix C): samples \p NumSamples random
/// programs, evaluates each on the training set, and returns the one with
/// the lowest average query count. \p Threads parallelizes each
/// evaluation as in evaluateProgram.
Program randomSearchProgram(Classifier &N, const Dataset &TrainSet,
                            size_t NumSamples, uint64_t PerImageCap,
                            uint64_t Seed, size_t Threads = 1);

} // namespace oppsla

#endif // OPPSLA_CORE_SYNTHESIZER_H
