//===- core/Parse.h - Textual syntax for the condition DSL ------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A parser for the human-readable program syntax produced by
/// Program::str() / Condition::str(), so synthesized programs can be
/// written, versioned, and edited as text:
///
///   [B1] score_diff(N(x),N(x[l<-p]),cx) < 0.21
///   [B2] max(x_l) > 0.19
///   [B3] score_diff(N(x),N(x[l<-p]),cx) > 0.25
///   [B4] center(l) < 8
///
/// Grammar (whitespace-insensitive; the [Bk] labels are optional but must
/// be in order when present):
///
///   program   ::= cond cond cond cond
///   cond      ::= label? func cmp number
///   label     ::= '[' 'B' digit ']'
///   func      ::= ('max'|'min'|'avg') '(' pixel ')'
///               | 'score_diff' '(' 'N(x)' ',' 'N(x[l<-p])' ',' 'cx' ')'
///               | 'center' '(' 'l' ')'
///   pixel     ::= 'x_l' | 'p'
///   cmp       ::= '<' | '>'
///
/// Parsing never throws; errors are reported with a line/column position
/// and a message.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_CORE_PARSE_H
#define OPPSLA_CORE_PARSE_H

#include "core/Condition.h"

#include <string>

namespace oppsla {

/// Outcome of a parse; on failure Message/Line/Column describe the first
/// error (1-based line and column).
struct ParseResult {
  bool Ok = false;
  std::string Message;
  size_t Line = 0;
  size_t Column = 0;

  static ParseResult success() { return ParseResult{true, "", 0, 0}; }
  static ParseResult error(std::string Msg, size_t Line, size_t Column) {
    return ParseResult{false, std::move(Msg), Line, Column};
  }
};

/// Parses a single condition from \p Text (which must contain nothing else
/// but whitespace and an optional label).
ParseResult parseCondition(const std::string &Text, Condition &Out);

/// Parses a full four-condition program.
ParseResult parseProgram(const std::string &Text, Program &Out);

} // namespace oppsla

#endif // OPPSLA_CORE_PARSE_H
