//===- core/Analysis.h - Static analysis of condition programs --*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interval-based static analysis over the condition DSL. Because every
/// function symbol has a known value range in the sketch's environments
/// (pixels in [0,1], softmax score differences in [-1,1], center distance
/// in [0, side/2]), many synthesized conditions are decidable without
/// running anything:
///
///   max(x_l) > 2        -- always false (the canonical False)
///   center(l) < 100     -- always true on a 32x32 image
///   score_diff(...) < 0.21 -- contingent
///
/// The synthesizer's mutation keeps thresholds when only the function node
/// changes (grammar-faithful), which routinely produces such trivial
/// conditions; normalizeProgram canonicalizes them so programs can be
/// compared, cached, and read by humans.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_CORE_ANALYSIS_H
#define OPPSLA_CORE_ANALYSIS_H

#include "core/Condition.h"

#include <string>

namespace oppsla {

/// Verdict of the triviality analysis for one condition.
enum class Triviality {
  AlwaysFalse, ///< no environment satisfies the condition
  AlwaysTrue,  ///< every environment satisfies the condition
  Contingent,  ///< depends on the environment
};

/// Inclusive value interval.
struct Interval {
  double Lo = 0.0;
  double Hi = 0.0;
};

/// The value range of condition \p C's function symbol over all sketch
/// environments for images of side \p ImageSide. Perturbation-sourced
/// pixel functions use the tighter RGB-corner range (channels in {0,1}).
Interval funcRange(const Condition &C, size_t ImageSide);

/// Decides whether \p C is always/never satisfiable on images of side
/// \p ImageSide.
Triviality analyzeCondition(const Condition &C, size_t ImageSide);

/// Canonicalizes \p P: every always-false condition becomes the canonical
/// False (`max(x_l) > 2`), every always-true one the canonical True
/// (`max(x_l) > -1`); contingent conditions are unchanged.
Program normalizeProgram(const Program &P, size_t ImageSide);

/// True if \p A and \p B normalize to syntactically identical programs.
/// (Sound for trivial conditions; syntactic for contingent ones.)
bool equivalentPrograms(const Program &A, const Program &B,
                        size_t ImageSide);

/// Multi-line human-readable report: each condition with its role in the
/// sketch (push-back vs eager-check) and its triviality verdict.
std::string explainProgram(const Program &P, size_t ImageSide);

} // namespace oppsla

#endif // OPPSLA_CORE_ANALYSIS_H
