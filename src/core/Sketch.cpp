//===- core/Sketch.cpp - The one pixel attack sketch (Algorithm 1) -----------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Sketch.h"

#include "classify/QueryCounter.h"
#include "support/Profiler.h"

#include <deque>

using namespace oppsla;

namespace {

/// A failed pair queued for eager expansion, with the environment its
/// conditions are evaluated in.
struct EagerItem {
  LocPert LP;
  CondEnv Env;
};

/// Shared state of one sketch run.
struct RunState {
  const Image &X;
  size_t TrueClass;
  QueryCounter Queries;
  PairSpace Space;
  PairQueue L;
  Image Scratch; ///< X with one pixel temporarily replaced per query
  double BaseTrueScore = 0.0;

  RunState(Classifier &N, const Image &Img, size_t TrueClass,
           uint64_t Budget)
      : X(Img), TrueClass(TrueClass), Queries(N, Budget), Space(Img),
        L(Space.initialOrder(), Space.size()), Scratch(Img) {
    Queries.setTraceTrueClass(TrueClass);
  }

  /// Status of a single candidate query.
  enum class QueryStatus { Failed, Success, Exhausted };

  /// Queries x[l <- p] for pair \p Id. On failure fills \p Env for the
  /// condition evaluation.
  QueryStatus queryPair(PairId Id, CondEnv &Env) {
    const LocPert LP = Space.pairOf(Id);
    const Pixel Orig = X.pixel(LP.Loc.Row, LP.Loc.Col);
    const Pixel Pert = LP.perturbation();
    Scratch.setPixel(LP.Loc.Row, LP.Loc.Col, Pert);
    const std::vector<float> Scores = Queries.scores(Scratch);
    Scratch.setPixel(LP.Loc.Row, LP.Loc.Col, Orig);
    if (Scores.empty())
      return QueryStatus::Exhausted;
    if (argmaxScore(Scores) != TrueClass)
      return QueryStatus::Success;
    Env.OriginalPixel = Orig;
    Env.PerturbPixel = Pert;
    Env.ScoreDiff = BaseTrueScore - Scores[TrueClass];
    Env.CenterDist = Space.centerDistance(LP.Loc);
    return QueryStatus::Failed;
  }

  /// Warms the query engine's cache with the candidate images of \p Ids as
  /// one batched submission. No-op without a prefetchable classifier (the
  /// engine advertises one only when its cache is on); never counts
  /// against the query budget. Every pair is queried at most once per run,
  /// so even when the consumption order is reordered under the batch, a
  /// prefetched pair's entry stays useful until eviction.
  void prefetchPairs(const std::vector<PairId> &Ids) {
    if (Ids.size() < 2 || !Queries.prefetchable())
      return;
    telemetry::ProfileScope Span("sketch.prefetch");
    PrefetchBatch.clear();
    PrefetchBatch.reserve(Ids.size());
    for (PairId Id : Ids) {
      const LocPert LP = Space.pairOf(Id);
      Image Cand = X;
      Cand.setPixel(LP.Loc.Row, LP.Loc.Col, LP.perturbation());
      PrefetchBatch.push_back(std::move(Cand));
    }
    Queries.prefetch(PrefetchBatch);
  }

  /// closest_loc(l, p): all live pairs at L-infinity distance 1 with the
  /// same perturbation.
  void closestLoc(const LocPert &LP, std::vector<PairId> &Out) {
    Out.clear();
    NeighborScratch.clear();
    Space.neighbors(LP.Loc, NeighborScratch);
    for (const PixelLoc &NL : NeighborScratch) {
      const PairId Id = Space.idOf(LocPert{NL, LP.Corner});
      if (L.contains(Id))
        Out.push_back(Id);
    }
  }

  /// closest_pert(L, l): the next (earliest-queued) live pair at location
  /// \p Loc, or InvalidPair.
  PairId closestPert(const PixelLoc &Loc) {
    PairId Best = InvalidPair;
    uint64_t BestSeq = 0;
    for (CornerIdx C = 0; C != NumCorners; ++C) {
      const PairId Id = Space.idOf(LocPert{Loc, C});
      if (!L.contains(Id))
        continue;
      const uint64_t S = L.seq(Id);
      if (Best == InvalidPair || S < BestSeq) {
        Best = Id;
        BestSeq = S;
      }
    }
    return Best;
  }

  std::vector<PixelLoc> NeighborScratch;
  std::vector<Image> PrefetchBatch;
};

/// Queue-front pairs prefetched per batch in the sketch's main loop.
constexpr size_t FrontPrefetchWindow = 16;

} // namespace

SketchResult Sketch::run(Classifier &N, const Image &X, size_t TrueClass,
                         uint64_t QueryBudget) const {
  assert(TrueClass < N.numClasses() && "true class out of range");
  RunState S(N, X, TrueClass, QueryBudget);
  SketchResult Result;

  auto Finish = [&](bool Success, LocPert Adv) {
    Result.Success = Success;
    Result.Adversarial = Adv;
    Result.Queries = S.Queries.count();
    Result.BudgetExhausted = S.Queries.exhausted();
    return Result;
  };

  // One initial query of the unperturbed image: the conditions need
  // N(x)_{c_x} for score_diff.
  {
    const std::vector<float> Base = S.Queries.scores(X);
    if (Base.empty())
      return Finish(false, LocPert{});
    if (argmaxScore(Base) != TrueClass) {
      Result.AlreadyMisclassified = true;
      return Finish(true, LocPert{});
    }
    S.BaseTrueScore = Base[TrueClass];
  }

  std::vector<PairId> Neigh;
  std::vector<PairId> Upcoming;
  uint64_t PopsUntilPrefetch = 0;
  while (!S.L.empty()) {
    // Batch the next window of queue-front candidates through the engine.
    // Eager checks below may reorder or steal some of them, but a stolen
    // pair is queried (and so hits) anyway — only pairs never reached
    // before the run ends cost a wasted forward.
    if (PopsUntilPrefetch == 0 && S.Queries.prefetchable()) {
      Upcoming.clear();
      S.L.peekFront(FrontPrefetchWindow, Upcoming);
      S.prefetchPairs(Upcoming);
      PopsUntilPrefetch = Upcoming.size();
    }
    if (PopsUntilPrefetch != 0)
      --PopsUntilPrefetch;

    const PairId Id = S.L.popFront();
    const LocPert LP = S.Space.pairOf(Id);
    CondEnv Env;
    switch (S.queryPair(Id, Env)) {
    case RunState::QueryStatus::Success:
      return Finish(true, LP);
    case RunState::QueryStatus::Exhausted:
      return Finish(false, LP);
    case RunState::QueryStatus::Failed:
      break;
    }

    // Push-back reordering (lines 5-6).
    {
      telemetry::ProfileScope ReorderSpan("sketch.reorder");
      if (evalCondition(Prog.b1(), Env)) {
        S.closestLoc(LP, Neigh);
        for (PairId NId : Neigh)
          S.L.pushBack(NId);
      }
      if (evalCondition(Prog.b2(), Env)) {
        const PairId NId = S.closestPert(LP.Loc);
        if (NId != InvalidPair)
          S.L.pushBack(NId);
      }
    }

    // Eager (conceptual push-front) BFS (lines 7-24).
    telemetry::ProfileScope EagerSpan(
        telemetry::profilingEnabled() ? "sketch.eager" : nullptr);
    std::deque<EagerItem> LocQ, PertQ;
    LocQ.push_back(EagerItem{LP, Env});
    PertQ.push_back(EagerItem{LP, Env});
    while (!LocQ.empty() || !PertQ.empty()) {
      while (!LocQ.empty()) {
        const EagerItem It = LocQ.front();
        LocQ.pop_front();
        if (!evalCondition(Prog.b3(), It.Env))
          continue;
        S.closestLoc(It.LP, Neigh);
        // Every live neighbor below is queried (barring early success), so
        // this batch is an exact prediction, not speculation.
        S.prefetchPairs(Neigh);
        for (PairId NId : Neigh) {
          if (!S.L.contains(NId))
            continue; // an earlier eager check in this batch removed it
          S.L.remove(NId);
          const LocPert NLP = S.Space.pairOf(NId);
          CondEnv NEnv;
          switch (S.queryPair(NId, NEnv)) {
          case RunState::QueryStatus::Success:
            return Finish(true, NLP);
          case RunState::QueryStatus::Exhausted:
            return Finish(false, NLP);
          case RunState::QueryStatus::Failed:
            LocQ.push_back(EagerItem{NLP, NEnv});
            PertQ.push_back(EagerItem{NLP, NEnv});
            break;
          }
        }
      }
      while (!PertQ.empty()) {
        const EagerItem It = PertQ.front();
        PertQ.pop_front();
        if (!evalCondition(Prog.b4(), It.Env))
          continue;
        const PairId NId = S.closestPert(It.LP.Loc);
        if (NId == InvalidPair)
          continue;
        S.L.remove(NId);
        const LocPert NLP = S.Space.pairOf(NId);
        CondEnv NEnv;
        switch (S.queryPair(NId, NEnv)) {
        case RunState::QueryStatus::Success:
          return Finish(true, NLP);
        case RunState::QueryStatus::Exhausted:
          return Finish(false, NLP);
        case RunState::QueryStatus::Failed:
          LocQ.push_back(EagerItem{NLP, NEnv});
          PertQ.push_back(EagerItem{NLP, NEnv});
          break;
        }
      }
    }
  }
  // The whole corner space holds no one pixel adversarial example.
  return Finish(false, LocPert{});
}
