//===- core/Pair.cpp - Location-perturbation pairs ---------------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Pair.h"

#include <algorithm>
#include <cmath>
#include <numeric>

using namespace oppsla;

PairSpace::PairSpace(const Image &X) : H(X.height()), W(X.width()) {
  assert(H > 0 && W > 0 && "empty image");
  CornerRank.resize(numLocations() * NumCorners);
  for (size_t Row = 0; Row != H; ++Row) {
    for (size_t Col = 0; Col != W; ++Col) {
      const Pixel P = X.pixel(Row, Col);
      // Sort the eight corners by decreasing L1 distance from P; ties by
      // corner index so the order is deterministic.
      std::array<CornerIdx, NumCorners> Order;
      std::iota(Order.begin(), Order.end(), static_cast<CornerIdx>(0));
      std::array<float, NumCorners> Dist;
      for (CornerIdx C = 0; C != NumCorners; ++C)
        Dist[C] = P.l1Distance(cornerPixel(C));
      std::sort(Order.begin(), Order.end(), [&](CornerIdx A, CornerIdx B) {
        if (Dist[A] != Dist[B])
          return Dist[A] > Dist[B];
        return A < B;
      });
      const size_t Base =
          (Row * W + Col) * NumCorners;
      for (size_t R = 0; R != NumCorners; ++R)
        CornerRank[Base + R] = Order[R];
    }
  }
}

double PairSpace::centerDistance(const PixelLoc &L) const {
  const double CenterRow = (static_cast<double>(H) - 1.0) / 2.0;
  const double CenterCol = (static_cast<double>(W) - 1.0) / 2.0;
  return std::max(std::fabs(static_cast<double>(L.Row) - CenterRow),
                  std::fabs(static_cast<double>(L.Col) - CenterCol));
}

std::vector<PairId> PairSpace::initialOrder() const {
  // Secondary key: locations sorted by center distance ascending (stable
  // tie-break by row-major index).
  std::vector<uint32_t> LocOrder(numLocations());
  std::iota(LocOrder.begin(), LocOrder.end(), 0u);
  std::vector<double> CDist(numLocations());
  for (size_t Row = 0; Row != H; ++Row)
    for (size_t Col = 0; Col != W; ++Col)
      CDist[Row * W + Col] = centerDistance(
          PixelLoc{static_cast<uint16_t>(Row), static_cast<uint16_t>(Col)});
  std::stable_sort(LocOrder.begin(), LocOrder.end(),
                   [&](uint32_t A, uint32_t B) { return CDist[A] < CDist[B]; });

  // Primary key: corner rank groups, farthest first. Within group k, each
  // location contributes its k-th farthest corner, ordered by LocOrder.
  std::vector<PairId> Order;
  Order.reserve(size());
  const auto Locs = static_cast<PairId>(numLocations());
  for (size_t Rank = 0; Rank != NumCorners; ++Rank)
    for (uint32_t LIdx : LocOrder) {
      const CornerIdx C = CornerRank[LIdx * NumCorners + Rank];
      Order.push_back(static_cast<PairId>(C) * Locs + LIdx);
    }
  return Order;
}

void PairSpace::neighbors(const PixelLoc &L, std::vector<PixelLoc> &Out) const {
  for (int DR = -1; DR <= 1; ++DR) {
    for (int DC = -1; DC <= 1; ++DC) {
      if (DR == 0 && DC == 0)
        continue;
      const long Row = static_cast<long>(L.Row) + DR;
      const long Col = static_cast<long>(L.Col) + DC;
      if (Row < 0 || Col < 0 || Row >= static_cast<long>(H) ||
          Col >= static_cast<long>(W))
        continue;
      Out.push_back(PixelLoc{static_cast<uint16_t>(Row),
                             static_cast<uint16_t>(Col)});
    }
  }
}
