//===- core/Analysis.cpp - Static analysis of condition programs -------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Analysis.h"

#include <sstream>

using namespace oppsla;

Interval oppsla::funcRange(const Condition &C, size_t ImageSide) {
  switch (C.Func) {
  case FuncKind::MaxPixel:
  case FuncKind::MinPixel:
  case FuncKind::AvgPixel:
    // Corner pixels have channels in {0,1}; the aggregate range is the
    // same closed interval either way, but keep the branch explicit for
    // future refinement (e.g. avg(p) takes only {0, 1/3, 2/3, 1}).
    return Interval{0.0, 1.0};
  case FuncKind::ScoreDiff:
    // Difference of two softmax entries for the same class.
    return Interval{-1.0, 1.0};
  case FuncKind::Center: {
    // L-infinity distance from the (continuous) center.
    const double MaxDist = (static_cast<double>(ImageSide) - 1.0) / 2.0;
    return Interval{0.0, MaxDist};
  }
  }
  return Interval{};
}

Triviality oppsla::analyzeCondition(const Condition &C, size_t ImageSide) {
  const Interval R = funcRange(C, ImageSide);
  if (C.Cmp == CmpKind::Less) {
    if (R.Hi < C.Threshold)
      return Triviality::AlwaysTrue;
    if (R.Lo >= C.Threshold)
      return Triviality::AlwaysFalse;
    return Triviality::Contingent;
  }
  // Greater.
  if (R.Lo > C.Threshold)
    return Triviality::AlwaysTrue;
  if (R.Hi <= C.Threshold)
    return Triviality::AlwaysFalse;
  return Triviality::Contingent;
}

Program oppsla::normalizeProgram(const Program &P, size_t ImageSide) {
  Program Out = P;
  const Program False = allFalseProgram();
  const Program True = allTrueProgram();
  for (size_t I = 0; I != Out.Conds.size(); ++I) {
    switch (analyzeCondition(Out.Conds[I], ImageSide)) {
    case Triviality::AlwaysFalse:
      Out.Conds[I] = False.Conds[I];
      break;
    case Triviality::AlwaysTrue:
      Out.Conds[I] = True.Conds[I];
      break;
    case Triviality::Contingent:
      break;
    }
  }
  return Out;
}

namespace {

bool sameCondition(const Condition &A, const Condition &B) {
  return A.Func == B.Func && A.Source == B.Source && A.Cmp == B.Cmp &&
         A.Threshold == B.Threshold;
}

const char *roleOf(size_t Index) {
  switch (Index) {
  case 0:
    return "push back the location-closest pairs";
  case 1:
    return "push back the perturbation-closest pair";
  case 2:
    return "eagerly check the location-closest pairs";
  default:
    return "eagerly check the perturbation-closest pair";
  }
}

const char *verdictOf(Triviality T) {
  switch (T) {
  case Triviality::AlwaysFalse:
    return "always false (reordering disabled)";
  case Triviality::AlwaysTrue:
    return "always true (fires on every failed pair)";
  case Triviality::Contingent:
    return "contingent";
  }
  return "?";
}

} // namespace

bool oppsla::equivalentPrograms(const Program &A, const Program &B,
                                size_t ImageSide) {
  const Program NA = normalizeProgram(A, ImageSide);
  const Program NB = normalizeProgram(B, ImageSide);
  for (size_t I = 0; I != NA.Conds.size(); ++I)
    if (!sameCondition(NA.Conds[I], NB.Conds[I]))
      return false;
  return true;
}

std::string oppsla::explainProgram(const Program &P, size_t ImageSide) {
  std::ostringstream OS;
  for (size_t I = 0; I != P.Conds.size(); ++I) {
    const Triviality T = analyzeCondition(P.Conds[I], ImageSide);
    OS << "[B" << (I + 1) << "] " << P.Conds[I].str() << "\n"
       << "     role: " << roleOf(I) << "; " << verdictOf(T) << "\n";
  }
  return OS.str();
}
