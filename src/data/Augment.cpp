//===- data/Augment.cpp - Training-time data augmentation --------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "data/Augment.h"

#include "data/Draw.h"
#include "support/Rng.h"

#include <algorithm>

using namespace oppsla;

Image oppsla::flipHorizontal(const Image &Img) {
  const size_t H = Img.height(), W = Img.width();
  Image Out(H, W);
  for (size_t I = 0; I != H; ++I)
    for (size_t J = 0; J != W; ++J)
      Out.setPixel(I, J, Img.pixel(I, W - 1 - J));
  return Out;
}

Image oppsla::translate(const Image &Img, int DRow, int DCol) {
  const size_t H = Img.height(), W = Img.width();
  Image Out(H, W);
  for (size_t I = 0; I != H; ++I) {
    const long SrcRow = std::clamp<long>(static_cast<long>(I) - DRow, 0,
                                         static_cast<long>(H) - 1);
    for (size_t J = 0; J != W; ++J) {
      const long SrcCol = std::clamp<long>(static_cast<long>(J) - DCol, 0,
                                           static_cast<long>(W) - 1);
      Out.setPixel(I, J,
                   Img.pixel(static_cast<size_t>(SrcRow),
                             static_cast<size_t>(SrcCol)));
    }
  }
  return Out;
}

void oppsla::cutout(Image &Img, size_t Patch, Rng &R) {
  if (Patch == 0)
    return;
  const size_t H = Img.height(), W = Img.width();
  const size_t Row = R.index(H);
  const size_t Col = R.index(W);
  const size_t Row1 = std::min(H, Row + Patch);
  const size_t Col1 = std::min(W, Col + Patch);
  for (size_t I = Row; I != Row1; ++I)
    for (size_t J = Col; J != Col1; ++J)
      Img.setPixel(I, J, Pixel{0.0f, 0.0f, 0.0f});
}

Image oppsla::augment(const Image &Img, const AugmentConfig &Config,
                      Rng &R) {
  Image Out = Img;
  if (Config.HorizontalFlip && R.chance(0.5))
    Out = flipHorizontal(Out);
  if (Config.MaxTranslate > 0) {
    const int DRow = R.intIn(-Config.MaxTranslate, Config.MaxTranslate);
    const int DCol = R.intIn(-Config.MaxTranslate, Config.MaxTranslate);
    if (DRow != 0 || DCol != 0)
      Out = translate(Out, DRow, DCol);
  }
  const float Gain = 1.0f + static_cast<float>(R.uniform(
                               -Config.ContrastJitter,
                               Config.ContrastJitter));
  const float Bias = static_cast<float>(R.uniform(
      -Config.BrightnessJitter, Config.BrightnessJitter));
  adjust(Out, Gain, Bias);
  if (Config.CutoutPatch > 0)
    cutout(Out, Config.CutoutPatch, R);
  Out.clamp();
  return Out;
}
