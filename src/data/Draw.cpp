//===- data/Draw.cpp - Procedural drawing primitives -------------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "data/Draw.h"

#include "support/Rng.h"

#include <algorithm>
#include <cmath>

using namespace oppsla;

namespace {

Pixel lerp(const Pixel &A, const Pixel &B, float T) {
  return Pixel{A.R + (B.R - A.R) * T, A.G + (B.G - A.G) * T,
               A.B + (B.B - A.B) * T};
}

void blendPixel(Image &Img, size_t Row, size_t Col, const Pixel &Color,
                float Alpha) {
  if (Alpha <= 0.0f)
    return;
  Pixel P = Img.pixel(Row, Col);
  Img.setPixel(Row, Col, lerp(P, Color, std::min(Alpha, 1.0f)));
}

} // namespace

void oppsla::fillVGradient(Image &Img, const Pixel &Top, const Pixel &Bottom) {
  const size_t H = Img.height(), W = Img.width();
  for (size_t I = 0; I != H; ++I) {
    const float T = H > 1 ? static_cast<float>(I) / static_cast<float>(H - 1)
                          : 0.0f;
    const Pixel Row = lerp(Top, Bottom, T);
    for (size_t J = 0; J != W; ++J)
      Img.setPixel(I, J, Row);
  }
}

void oppsla::fillDiagGradient(Image &Img, const Pixel &A, const Pixel &B) {
  const size_t H = Img.height(), W = Img.width();
  const float Denom = static_cast<float>(H + W - 2);
  for (size_t I = 0; I != H; ++I)
    for (size_t J = 0; J != W; ++J) {
      const float T = Denom > 0.0f ? static_cast<float>(I + J) / Denom : 0.0f;
      Img.setPixel(I, J, lerp(A, B, T));
    }
}

void oppsla::fillSolid(Image &Img, const Pixel &Color) {
  const size_t H = Img.height(), W = Img.width();
  for (size_t I = 0; I != H; ++I)
    for (size_t J = 0; J != W; ++J)
      Img.setPixel(I, J, Color);
}

void oppsla::drawDisc(Image &Img, double CenterRow, double CenterCol,
                      double Radius, const Pixel &Color) {
  const size_t H = Img.height(), W = Img.width();
  const long R0 = std::max(0L, static_cast<long>(CenterRow - Radius - 1));
  const long R1 = std::min(static_cast<long>(H) - 1,
                           static_cast<long>(CenterRow + Radius + 1));
  const long C0 = std::max(0L, static_cast<long>(CenterCol - Radius - 1));
  const long C1 = std::min(static_cast<long>(W) - 1,
                           static_cast<long>(CenterCol + Radius + 1));
  for (long I = R0; I <= R1; ++I)
    for (long J = C0; J <= C1; ++J) {
      const double D = std::hypot(static_cast<double>(I) - CenterRow,
                                  static_cast<double>(J) - CenterCol);
      // Soft edge across one pixel.
      const float Alpha = static_cast<float>(std::clamp(Radius - D + 0.5,
                                                        0.0, 1.0));
      blendPixel(Img, static_cast<size_t>(I), static_cast<size_t>(J), Color,
                 Alpha);
    }
}

void oppsla::drawRect(Image &Img, long Row0, long Col0, long Row1, long Col1,
                      const Pixel &Color) {
  const long H = static_cast<long>(Img.height());
  const long W = static_cast<long>(Img.width());
  for (long I = std::max(0L, Row0); I <= std::min(H - 1, Row1); ++I)
    for (long J = std::max(0L, Col0); J <= std::min(W - 1, Col1); ++J)
      Img.setPixel(static_cast<size_t>(I), static_cast<size_t>(J), Color);
}

void oppsla::drawRing(Image &Img, double CenterRow, double CenterCol,
                      double R0, double R1, const Pixel &Color) {
  const size_t H = Img.height(), W = Img.width();
  for (size_t I = 0; I != H; ++I)
    for (size_t J = 0; J != W; ++J) {
      const double D = std::hypot(static_cast<double>(I) - CenterRow,
                                  static_cast<double>(J) - CenterCol);
      if (D < R0 || D > R1)
        continue;
      const float EdgeIn = static_cast<float>(std::clamp(D - R0 + 0.5, 0.0,
                                                         1.0));
      const float EdgeOut = static_cast<float>(std::clamp(R1 - D + 0.5, 0.0,
                                                          1.0));
      blendPixel(Img, I, J, Color, std::min(EdgeIn, EdgeOut));
    }
}

void oppsla::drawHStripes(Image &Img, size_t Period, const Pixel &A,
                          const Pixel &B) {
  assert(Period >= 2 && "stripe period must be >= 2");
  const size_t H = Img.height(), W = Img.width();
  for (size_t I = 0; I != H; ++I) {
    const Pixel &Color = (I % Period) < Period / 2 ? A : B;
    for (size_t J = 0; J != W; ++J)
      Img.setPixel(I, J, Color);
  }
}

void oppsla::drawChecker(Image &Img, size_t Cell, const Pixel &A,
                         const Pixel &B) {
  assert(Cell >= 1 && "checker cell must be >= 1");
  const size_t H = Img.height(), W = Img.width();
  for (size_t I = 0; I != H; ++I)
    for (size_t J = 0; J != W; ++J) {
      const bool Even = ((I / Cell) + (J / Cell)) % 2 == 0;
      Img.setPixel(I, J, Even ? A : B);
    }
}

void oppsla::addGaussianNoise(Image &Img, double Sigma, Rng &R) {
  for (float &V : Img.raw())
    V += static_cast<float>(R.normal(0.0, Sigma));
}

void oppsla::adjust(Image &Img, float Gain, float Bias) {
  for (float &V : Img.raw())
    V = V * Gain + Bias;
}
