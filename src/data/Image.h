//===- data/Image.h - RGB image value type ---------------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The image type the attacks operate on: float RGB in [0,1], HWC layout.
/// Matches the paper's formalization x in [0,1]^{d1 x d2 x 3}. One-pixel
/// perturbation (`x[l <- p]`) is a single setPixel call on a copy.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_DATA_IMAGE_H
#define OPPSLA_DATA_IMAGE_H

#include "tensor/Tensor.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace oppsla {

/// One RGB pixel with channels in [0,1].
struct Pixel {
  float R = 0.0f, G = 0.0f, B = 0.0f;

  bool operator==(const Pixel &Other) const {
    return R == Other.R && G == Other.G && B == Other.B;
  }

  /// L1 distance between pixel values — the paper's pixel metric.
  float l1Distance(const Pixel &Other) const;

  /// Largest channel value.
  float maxChannel() const;
  /// Smallest channel value.
  float minChannel() const;
  /// Mean channel value.
  float avgChannel() const { return (R + G + B) / 3.0f; }
};

/// Dense float RGB image, HWC layout, values in [0,1].
class Image {
public:
  Image() = default;
  Image(size_t Height, size_t Width)
      : H(Height), W(Width), Data(Height * Width * 3, 0.0f) {}

  size_t height() const { return H; }
  size_t width() const { return W; }
  size_t numPixels() const { return H * W; }
  bool empty() const { return Data.empty(); }

  Pixel pixel(size_t Row, size_t Col) const {
    const float *P = at(Row, Col);
    return Pixel{P[0], P[1], P[2]};
  }

  void setPixel(size_t Row, size_t Col, const Pixel &Value) {
    float *P = at(Row, Col);
    P[0] = Value.R;
    P[1] = Value.G;
    P[2] = Value.B;
  }

  /// Returns a copy with pixel (\p Row, \p Col) replaced by \p Value —
  /// the paper's x[l <- p].
  Image withPixel(size_t Row, size_t Col, const Pixel &Value) const {
    Image Out = *this;
    Out.setPixel(Row, Col, Value);
    return Out;
  }

  /// Clamps every channel into [0,1].
  void clamp();

  /// Converts to a {1, 3, H, W} NCHW tensor for the nn substrate.
  Tensor toTensor() const;

  /// Writes this image's channels into an existing {1,3,H,W} tensor
  /// without allocation; shapes must match.
  void writeToTensor(Tensor &Out) const;

  /// Writes this image into slot \p Index of an existing {N,3,H,W} batch
  /// tensor (the assembly step of Classifier::scoresBatch).
  void writeToTensorBatch(Tensor &Out, size_t Index) const;

  /// Builds an image from a {1, 3, H, W} or {3, H, W} tensor.
  static Image fromTensor(const Tensor &T);

  const std::vector<float> &raw() const { return Data; }
  std::vector<float> &raw() { return Data; }

  /// Stable 64-bit hash of the image's shape and pixel bytes (FNV-1a).
  /// Randomized attacks derive their per-run RNG stream from this (see
  /// support/Rng.h: Rng::deriveRunSeed), making every attack run a pure
  /// function of (attack seed, image) — independent of how the image is
  /// ordered or subset within a sweep.
  uint64_t contentHash() const;

private:
  const float *at(size_t Row, size_t Col) const {
    assert(Row < H && Col < W && "pixel out of range");
    return Data.data() + (Row * W + Col) * 3;
  }
  float *at(size_t Row, size_t Col) {
    assert(Row < H && Col < W && "pixel out of range");
    return Data.data() + (Row * W + Col) * 3;
  }

  size_t H = 0, W = 0;
  std::vector<float> Data;
};

/// A labeled image classification dataset.
struct Dataset {
  std::vector<Image> Images;
  std::vector<size_t> Labels;
  size_t NumClasses = 0;

  size_t size() const { return Images.size(); }

  /// Returns the subset with the given label (copies).
  Dataset filterByClass(size_t Label) const;

  /// Appends all items of \p Other (class counts must agree).
  void append(const Dataset &Other);
};

} // namespace oppsla

#endif // OPPSLA_DATA_IMAGE_H
