//===- data/Augment.h - Training-time data augmentation ---------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Standard light augmentations for victim training: horizontal flips,
/// integer translations with edge clamping, brightness/contrast jitter,
/// and cutout. Augmentation is a robustness lever: flips/translations make
/// classifiers generalize better, while cutout in particular teaches them
/// to tolerate local occlusion — which *reduces* one pixel vulnerability.
/// The victim trainer therefore exposes it as an opt-in knob (see
/// TrainConfig::Augment), and the ablation bench can quantify the effect.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_DATA_AUGMENT_H
#define OPPSLA_DATA_AUGMENT_H

#include "data/Image.h"

namespace oppsla {

class Rng;

/// Mirrors the image left-right.
Image flipHorizontal(const Image &Img);

/// Shifts by (\p DRow, \p DCol) pixels; vacated areas replicate the
/// nearest edge pixel.
Image translate(const Image &Img, int DRow, int DCol);

/// Zeroes a random square patch of side \p Patch (clipped to the image).
void cutout(Image &Img, size_t Patch, Rng &R);

/// Augmentation policy applied per sample during training.
struct AugmentConfig {
  bool HorizontalFlip = true;  ///< with probability 1/2
  int MaxTranslate = 2;        ///< uniform in [-MaxTranslate, MaxTranslate]
  float BrightnessJitter = 0.05f; ///< additive, uniform
  float ContrastJitter = 0.1f;    ///< multiplicative, uniform around 1
  size_t CutoutPatch = 0;         ///< 0 disables cutout
};

/// Applies one random augmentation draw to a copy of \p Img.
Image augment(const Image &Img, const AugmentConfig &Config, Rng &R);

} // namespace oppsla

#endif // OPPSLA_DATA_AUGMENT_H
