//===- data/Synthetic.cpp - Procedural classification datasets --------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "data/Synthetic.h"

#include "data/Draw.h"
#include "support/Rng.h"

#include <cmath>

using namespace oppsla;

namespace {

/// Per-instance jitter shared by all recipes.
struct Jitter {
  float Gain;    ///< brightness gain
  float Bias;    ///< brightness bias
  double Noise;  ///< gaussian pixel noise sigma
};

Jitter sampleJitter(Rng &R, double BaseNoise) {
  return Jitter{static_cast<float>(R.uniform(0.85, 1.1)),
                static_cast<float>(R.uniform(-0.05, 0.05)),
                BaseNoise * R.uniform(0.7, 1.3)};
}

Pixel jitterColor(const Pixel &Base, Rng &R, float Spread) {
  auto J = [&](float V) {
    return static_cast<float>(V + R.uniform(-Spread, Spread));
  };
  return Pixel{J(Base.R), J(Base.G), J(Base.B)};
}

double frac(Rng &R, double Lo, double Hi) { return R.uniform(Lo, Hi); }

/// Draws \p Count pixel-scale dots of colour \p Color at random positions.
/// These micro-features are deliberately one-pixel sized: several classes
/// are partly identified by them, so trained victims learn local detectors
/// that a single corner-coloured pixel can excite — the mechanism one
/// pixel attacks exploit on real CNNs (cf. Vargas & Su's locality
/// analysis).
void drawMicroDots(Image &Img, size_t Count, const Pixel &Color, Rng &R) {
  const auto S = static_cast<double>(Img.height());
  for (size_t K = 0; K != Count; ++K)
    drawDisc(Img, frac(R, 0.1, 0.9) * S, frac(R, 0.1, 0.9) * S,
             R.uniform(0.5, 0.9), Color);
}

//===----------------------------------------------------------------------===//
// CIFAR-like recipes: ten coarse, visually distinct classes.
//===----------------------------------------------------------------------===//

void cifarClass(Image &Img, size_t Label, Rng &R) {
  const auto S = static_cast<double>(Img.height());
  switch (Label) {
  case 0: { // "airplane": sky gradient + light disc
    fillVGradient(Img, jitterColor({0.55f, 0.7f, 0.95f}, R, 0.08f),
                  jitterColor({0.75f, 0.85f, 1.0f}, R, 0.08f));
    drawDisc(Img, frac(R, 0.25, 0.75) * S, frac(R, 0.25, 0.75) * S,
             frac(R, 0.12, 0.2) * S, jitterColor({0.95f, 0.95f, 0.97f}, R,
                                                 0.05f));
    break;
  }
  case 1: { // "automobile": dark asphalt + saturated box
    fillSolid(Img, jitterColor({0.25f, 0.25f, 0.28f}, R, 0.06f));
    const long R0 = static_cast<long>(frac(R, 0.35, 0.55) * S);
    const long C0 = static_cast<long>(frac(R, 0.1, 0.35) * S);
    drawRect(Img, R0, C0, R0 + static_cast<long>(0.3 * S),
             C0 + static_cast<long>(0.5 * S),
             jitterColor({0.85f, 0.15f, 0.12f}, R, 0.1f));
    drawMicroDots(Img, 2, {1.0f, 0.95f, 0.05f}, R); // yellow headlights
    break;
  }
  case 2: { // "bird": greenish field + two thin vertical bars
    fillVGradient(Img, jitterColor({0.35f, 0.6f, 0.3f}, R, 0.08f),
                  jitterColor({0.5f, 0.75f, 0.4f}, R, 0.08f));
    for (int K = 0; K != 2; ++K) {
      const long C = static_cast<long>(frac(R, 0.15, 0.8) * S);
      drawRect(Img, static_cast<long>(0.1 * S), C,
               static_cast<long>(0.9 * S), C + std::max(1L, (long)(S / 16)),
               jitterColor({0.4f, 0.25f, 0.12f}, R, 0.06f));
    }
    break;
  }
  case 3: { // "cat": warm coarse checkerboard
    drawChecker(Img, std::max<size_t>(2, Img.height() / 8),
                jitterColor({0.75f, 0.55f, 0.35f}, R, 0.08f),
                jitterColor({0.5f, 0.3f, 0.2f}, R, 0.08f));
    break;
  }
  case 4: { // "deer": muted background + ring
    fillSolid(Img, jitterColor({0.55f, 0.55f, 0.45f}, R, 0.07f));
    const double Cr = frac(R, 0.35, 0.65) * S, Cc = frac(R, 0.35, 0.65) * S;
    drawRing(Img, Cr, Cc, 0.15 * S, 0.28 * S,
             jitterColor({0.75f, 0.65f, 0.5f}, R, 0.07f));
    drawMicroDots(Img, 1 + R.index(2), {1.0f, 0.05f, 1.0f}, R); // ear tags
    break;
  }
  case 5: { // "dog": horizontal stripes
    drawHStripes(Img, std::max<size_t>(4, Img.height() / 5),
                 jitterColor({0.7f, 0.6f, 0.5f}, R, 0.08f),
                 jitterColor({0.45f, 0.35f, 0.3f}, R, 0.08f));
    break;
  }
  case 6: { // "frog": dark scene with darker blob (the paper's dark-spot
            // observation feeds the min/avg conditions)
    fillSolid(Img, jitterColor({0.18f, 0.25f, 0.15f}, R, 0.05f));
    drawDisc(Img, frac(R, 0.3, 0.7) * S, frac(R, 0.3, 0.7) * S,
             frac(R, 0.18, 0.3) * S, jitterColor({0.05f, 0.1f, 0.05f}, R,
                                                 0.03f));
    drawMicroDots(Img, 1 + R.index(2), {0.05f, 1.0f, 0.1f}, R); // green eyes
    break;
  }
  case 7: { // "horse": diagonal gradient + bright horizontal bar
    fillDiagGradient(Img, jitterColor({0.6f, 0.45f, 0.3f}, R, 0.08f),
                     jitterColor({0.35f, 0.25f, 0.2f}, R, 0.08f));
    const long Row = static_cast<long>(frac(R, 0.3, 0.6) * S);
    drawRect(Img, Row, 0, Row + std::max(1L, (long)(S / 10)),
             static_cast<long>(S) - 1,
             jitterColor({0.9f, 0.85f, 0.7f}, R, 0.06f));
    drawMicroDots(Img, 1 + R.index(2), {0.05f, 1.0f, 1.0f}, R); // bridle studs
    break;
  }
  case 8: { // "ship": sea/sky split + white superstructure
    fillVGradient(Img, jitterColor({0.7f, 0.8f, 0.95f}, R, 0.06f),
                  jitterColor({0.1f, 0.25f, 0.5f}, R, 0.06f));
    const long R0 = static_cast<long>(frac(R, 0.35, 0.55) * S);
    const long C0 = static_cast<long>(frac(R, 0.2, 0.5) * S);
    drawRect(Img, R0, C0, R0 + static_cast<long>(0.18 * S),
             C0 + static_cast<long>(0.35 * S),
             jitterColor({0.92f, 0.92f, 0.95f}, R, 0.04f));
    drawMicroDots(Img, 1 + R.index(2), {1.0f, 0.05f, 0.05f}, R); // red beacons
    break;
  }
  default: { // 9 "truck": noisy background + blue box
    fillSolid(Img, jitterColor({0.5f, 0.5f, 0.5f}, R, 0.1f));
    addGaussianNoise(Img, 0.12, R);
    const long R0 = static_cast<long>(frac(R, 0.25, 0.5) * S);
    const long C0 = static_cast<long>(frac(R, 0.15, 0.4) * S);
    drawRect(Img, R0, C0, R0 + static_cast<long>(0.35 * S),
             C0 + static_cast<long>(0.45 * S),
             jitterColor({0.15f, 0.3f, 0.8f}, R, 0.08f));
    break;
  }
  }
}

//===----------------------------------------------------------------------===//
// ImageNet-like recipes: ten fine-grained classes over a shared marine
// background, mirroring the paper's closely-related class subsets.
//===----------------------------------------------------------------------===//

void imageNetClass(Image &Img, size_t Label, Rng &R) {
  const auto S = static_cast<double>(Img.height());
  // Shared background family: deep-water vertical gradient.
  fillVGradient(Img, jitterColor({0.2f, 0.4f, 0.65f}, R, 0.06f),
                jitterColor({0.05f, 0.15f, 0.35f}, R, 0.06f));
  const Pixel Body = jitterColor({0.75f, 0.75f, 0.8f}, R, 0.06f);
  const Pixel Dark = jitterColor({0.2f, 0.2f, 0.25f}, R, 0.05f);
  const double Cr = frac(R, 0.35, 0.65) * S;
  const double Cc = frac(R, 0.35, 0.65) * S;
  switch (Label) {
  case 0: // small disc with white speckles ("stingray")
    drawDisc(Img, Cr, Cc, 0.1 * S, Body);
    drawMicroDots(Img, 2, {1.0f, 1.0f, 1.0f}, R);
    break;
  case 1: // large disc ("great white shark")
    drawDisc(Img, Cr, Cc, 0.22 * S, Body);
    break;
  case 2: // thin ring ("electric ray")
    drawRing(Img, Cr, Cc, 0.16 * S, 0.2 * S, Body);
    break;
  case 3: // thick ring ("hammerhead")
    drawRing(Img, Cr, Cc, 0.1 * S, 0.22 * S, Body);
    break;
  case 4: // tall rectangle with a red comb dot ("cock")
    drawRect(Img, static_cast<long>(Cr - 0.25 * S),
             static_cast<long>(Cc - 0.08 * S),
             static_cast<long>(Cr + 0.25 * S),
             static_cast<long>(Cc + 0.08 * S), Body);
    drawMicroDots(Img, 1, {1.0f, 0.1f, 0.1f}, R);
    break;
  case 5: // wide rectangle ("hen")
    drawRect(Img, static_cast<long>(Cr - 0.08 * S),
             static_cast<long>(Cc - 0.25 * S),
             static_cast<long>(Cr + 0.08 * S),
             static_cast<long>(Cc + 0.25 * S), Body);
    break;
  case 6: // two small discs plus blue speckles ("house finch")
    drawDisc(Img, Cr, Cc - 0.15 * S, 0.09 * S, Body);
    drawDisc(Img, Cr, Cc + 0.15 * S, 0.09 * S, Body);
    drawMicroDots(Img, 2, {0.15f, 0.3f, 1.0f}, R);
    break;
  case 7: // disc with a dark core ("junco")
    drawDisc(Img, Cr, Cc, 0.18 * S, Body);
    drawDisc(Img, Cr, Cc, 0.08 * S, Dark);
    break;
  case 8: // disc plus off-center dark satellite ("bulbul")
    drawDisc(Img, Cr, Cc, 0.15 * S, Body);
    drawDisc(Img, Cr - 0.18 * S, Cc + 0.12 * S, 0.07 * S, Dark);
    break;
  default: // 9: ring with a bright core ("jay")
    drawRing(Img, Cr, Cc, 0.12 * S, 0.2 * S, Body);
    drawDisc(Img, Cr, Cc, 0.06 * S,
             jitterColor({0.95f, 0.9f, 0.85f}, R, 0.04f));
    break;
  }
}

} // namespace

const char *oppsla::taskName(TaskKind Kind) {
  switch (Kind) {
  case TaskKind::CifarLike:
    return "cifar-like";
  case TaskKind::ImageNetLike:
    return "imagenet-like";
  }
  return "unknown";
}

size_t oppsla::taskDefaultSide(TaskKind Kind) {
  return Kind == TaskKind::CifarLike ? 32 : 48;
}

namespace {

/// Img = (1-Alpha)*Img + Alpha*Other, pixelwise.
void blendImages(Image &Img, const Image &Other, float Alpha) {
  assert(Img.raw().size() == Other.raw().size() && "blend size mismatch");
  float *Dst = Img.raw().data();
  const float *Src = Other.raw().data();
  for (size_t I = 0, E = Img.raw().size(); I != E; ++I)
    Dst[I] = (1.0f - Alpha) * Dst[I] + Alpha * Src[I];
}

} // namespace

Image oppsla::generateSyntheticImage(TaskKind Kind, size_t Label,
                                     uint64_t Seed, size_t Side) {
  assert(Label < 10 && "synthetic tasks have at most 10 classes");
  if (Side == 0)
    Side = taskDefaultSide(Kind);
  Rng R(Seed);
  Image Img(Side, Side);
  const double BaseNoise = Kind == TaskKind::CifarLike ? 0.035 : 0.04;
  const Jitter J = sampleJitter(R, BaseNoise);
  if (Kind == TaskKind::CifarLike)
    cifarClass(Img, Label, R);
  else
    imageNetClass(Img, Label, R);

  // Cross-class distractor: with some probability, blend in a weakened
  // rendering of another class. This creates genuinely ambiguous images
  // near the decision boundary — the population one pixel attacks feed on
  // (real CIFAR/ImageNet have the same property; cleanly separable
  // procedural classes would make every classifier unrealistically
  // over-confident).
  {
    size_t Other = R.index(10);
    if (Other == Label)
      Other = (Other + 1) % 10;
    Image Distract(Side, Side);
    Rng DR(R.nextU64());
    if (Kind == TaskKind::CifarLike)
      cifarClass(Distract, Other, DR);
    else
      imageNetClass(Distract, Other, DR);
    // Continuous difficulty: blend strength spans "clean instance" to
    // "barely the labeled class", so trained victims see a full spectrum
    // of margins instead of a bimodal easy/impossible split.
    blendImages(Img, Distract, static_cast<float>(R.uniform(0.1, 0.72)));
  }

  adjust(Img, J.Gain, J.Bias);
  addGaussianNoise(Img, J.Noise, R);
  Img.clamp();
  return Img;
}

Dataset oppsla::generateSynthetic(TaskKind Kind, size_t PerClass,
                                  uint64_t Seed, size_t Side,
                                  size_t NumClasses) {
  assert(NumClasses >= 2 && NumClasses <= 10 && "2..10 classes supported");
  Dataset DS;
  DS.NumClasses = NumClasses;
  SplitMix64 SeedGen(Seed);
  for (size_t Label = 0; Label != NumClasses; ++Label) {
    for (size_t I = 0; I != PerClass; ++I) {
      DS.Images.push_back(
          generateSyntheticImage(Kind, Label, SeedGen.next(), Side));
      DS.Labels.push_back(Label);
    }
  }
  return DS;
}
