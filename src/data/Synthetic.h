//===- data/Synthetic.h - Procedural classification datasets ----*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Procedural stand-ins for CIFAR-10 and the paper's ImageNet class subsets
/// (no real datasets ship with this environment; see DESIGN.md §2).
///
/// The CIFAR-like generator produces ten visually distinct classes
/// (gradients, discs, boxes, stripes, rings, checkerboards, dark blobs)
/// with per-instance geometry/colour jitter and pixel noise. The
/// ImageNet-like generator produces ten *fine-grained* classes sharing a
/// common background family and differing in subtler shape parameters,
/// mirroring the paper's choice of closely related ImageNet classes
/// (shark species, bird species).
///
/// What matters for the reproduction is that (a) CNNs trained on these
/// reach high-but-not-perfect accuracy with moderate confidence margins,
/// and (b) images retain spatial structure (centered subjects, dark spots)
/// that the paper's condition language exploits.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_DATA_SYNTHETIC_H
#define OPPSLA_DATA_SYNTHETIC_H

#include "data/Image.h"

#include <cstdint>

namespace oppsla {

/// Kinds of synthetic task.
enum class TaskKind {
  CifarLike,    ///< 10 coarse classes, default 32x32
  ImageNetLike, ///< 10 fine-grained classes, default 48x48
};

/// Returns the human-readable name of a task.
const char *taskName(TaskKind Kind);

/// Default image side length for a task (32 for CifarLike, 48 for
/// ImageNetLike).
size_t taskDefaultSide(TaskKind Kind);

/// Generates a balanced dataset with \p PerClass images of each of
/// \p NumClasses classes (max 10), deterministically from \p Seed.
/// \p Side selects the image resolution (features scale with it).
Dataset generateSynthetic(TaskKind Kind, size_t PerClass, uint64_t Seed,
                          size_t Side = 0, size_t NumClasses = 10);

/// Generates a single image of class \p Label (exposed for tests and for
/// streaming generation).
Image generateSyntheticImage(TaskKind Kind, size_t Label, uint64_t Seed,
                             size_t Side = 0);

} // namespace oppsla

#endif // OPPSLA_DATA_SYNTHETIC_H
