//===- data/Image.cpp - RGB image value type ---------------------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "data/Image.h"

#include <algorithm>
#include <cmath>
#include <cstring>

using namespace oppsla;

float Pixel::l1Distance(const Pixel &Other) const {
  return std::fabs(R - Other.R) + std::fabs(G - Other.G) +
         std::fabs(B - Other.B);
}

float Pixel::maxChannel() const { return std::max({R, G, B}); }

float Pixel::minChannel() const { return std::min({R, G, B}); }

void Image::clamp() {
  for (float &V : Data)
    V = std::clamp(V, 0.0f, 1.0f);
}

uint64_t Image::contentHash() const {
  // FNV-1a over the float bit patterns, with the dimensions folded in so
  // differently-shaped images of identical bytes hash apart. Byte-exact on
  // purpose: the hash seeds attack RNG streams, which must be bit-stable.
  constexpr uint64_t Prime = 0x100000001b3ULL;
  uint64_t Hash = 0xcbf29ce484222325ULL;
  auto Mix = [&](uint64_t V) {
    for (int Shift = 0; Shift != 64; Shift += 8) {
      Hash ^= (V >> Shift) & 0xffU;
      Hash *= Prime;
    }
  };
  Mix(H);
  Mix(W);
  for (float F : Data) {
    uint32_t Bits;
    std::memcpy(&Bits, &F, sizeof(Bits));
    Hash = (Hash ^ Bits) * Prime;
  }
  return Hash;
}

Tensor Image::toTensor() const {
  Tensor T({1, 3, H, W});
  writeToTensor(T);
  return T;
}

void Image::writeToTensor(Tensor &Out) const {
  assert(Out.rank() == 4 && Out.dim(0) == 1 && Out.dim(1) == 3 &&
         Out.dim(2) == H && Out.dim(3) == W && "tensor shape mismatch");
  float *Dst = Out.data();
  const size_t Plane = H * W;
  for (size_t I = 0; I != Plane; ++I) {
    Dst[I] = Data[I * 3 + 0];
    Dst[Plane + I] = Data[I * 3 + 1];
    Dst[2 * Plane + I] = Data[I * 3 + 2];
  }
}

void Image::writeToTensorBatch(Tensor &Out, size_t Index) const {
  assert(Out.rank() == 4 && Index < Out.dim(0) && Out.dim(1) == 3 &&
         Out.dim(2) == H && Out.dim(3) == W && "tensor shape mismatch");
  const size_t Plane = H * W;
  float *Dst = Out.data() + Index * 3 * Plane;
  for (size_t I = 0; I != Plane; ++I) {
    Dst[I] = Data[I * 3 + 0];
    Dst[Plane + I] = Data[I * 3 + 1];
    Dst[2 * Plane + I] = Data[I * 3 + 2];
  }
}

Image Image::fromTensor(const Tensor &T) {
  [[maybe_unused]] size_t C;
  size_t H, W;
  const float *Src = T.data();
  if (T.rank() == 4) {
    assert(T.dim(0) == 1 && "fromTensor expects batch size 1");
    C = T.dim(1);
    H = T.dim(2);
    W = T.dim(3);
  } else {
    assert(T.rank() == 3 && "fromTensor expects rank 3 or 4");
    C = T.dim(0);
    H = T.dim(1);
    W = T.dim(2);
  }
  assert(C == 3 && "fromTensor expects 3 channels");
  Image Img(H, W);
  const size_t Plane = H * W;
  for (size_t I = 0; I != Plane; ++I) {
    Img.raw()[I * 3 + 0] = Src[I];
    Img.raw()[I * 3 + 1] = Src[Plane + I];
    Img.raw()[I * 3 + 2] = Src[2 * Plane + I];
  }
  return Img;
}

Dataset Dataset::filterByClass(size_t Label) const {
  Dataset Out;
  Out.NumClasses = NumClasses;
  for (size_t I = 0; I != Images.size(); ++I) {
    if (Labels[I] != Label)
      continue;
    Out.Images.push_back(Images[I]);
    Out.Labels.push_back(Labels[I]);
  }
  return Out;
}

void Dataset::append(const Dataset &Other) {
  assert((NumClasses == 0 || Other.NumClasses == 0 ||
          NumClasses == Other.NumClasses) &&
         "appending datasets with different class counts");
  if (NumClasses == 0)
    NumClasses = Other.NumClasses;
  Images.insert(Images.end(), Other.Images.begin(), Other.Images.end());
  Labels.insert(Labels.end(), Other.Labels.begin(), Other.Labels.end());
}
