//===- data/Draw.h - Procedural drawing primitives -------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drawing primitives used by the synthetic dataset generators: gradients,
/// discs, rectangles, rings, stripes, checkerboards and noise fields. All
/// operations blend in place and leave values unclamped until the generator
/// finishes (a final clamp keeps images in [0,1]).
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_DATA_DRAW_H
#define OPPSLA_DATA_DRAW_H

#include "data/Image.h"

namespace oppsla {

class Rng;

/// Fills with a vertical gradient from \p Top (row 0) to \p Bottom.
void fillVGradient(Image &Img, const Pixel &Top, const Pixel &Bottom);

/// Fills with a diagonal gradient from the top-left \p A to the
/// bottom-right \p B.
void fillDiagGradient(Image &Img, const Pixel &A, const Pixel &B);

/// Fills with a constant colour.
void fillSolid(Image &Img, const Pixel &Color);

/// Draws a filled disc with soft 1px edge.
void drawDisc(Image &Img, double CenterRow, double CenterCol, double Radius,
              const Pixel &Color);

/// Draws an axis-aligned filled rectangle (clipped to the image).
void drawRect(Image &Img, long Row0, long Col0, long Row1, long Col1,
              const Pixel &Color);

/// Draws a ring (annulus) with inner radius \p R0 and outer radius \p R1.
void drawRing(Image &Img, double CenterRow, double CenterCol, double R0,
              double R1, const Pixel &Color);

/// Alternating horizontal stripes of height \p Period/2 in two colours.
void drawHStripes(Image &Img, size_t Period, const Pixel &A, const Pixel &B);

/// Checkerboard with square cells of size \p Cell.
void drawChecker(Image &Img, size_t Cell, const Pixel &A, const Pixel &B);

/// Adds i.i.d. Gaussian noise with stddev \p Sigma to every channel.
void addGaussianNoise(Image &Img, double Sigma, Rng &R);

/// Multiplies every channel by \p Gain and adds \p Bias (brightness/contrast
/// jitter).
void adjust(Image &Img, float Gain, float Bias);

} // namespace oppsla

#endif // OPPSLA_DATA_DRAW_H
