//===- wire/Wire.h - Compact binary artifact format -------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The versioned binary artifact format shared by the serve subsystem
/// (result downloads, checkpoints) and the offline program store. It grew
/// up inside src/serve; it lives in its own low-level library so eval-side
/// code can read and write artifacts without linking the server.
/// Layout (all integers little-endian, encoded byte-by-byte so the format
/// is identical on any host):
///
///   header (20 bytes):
///     magic       "OPWF"        (4 bytes)
///     endian      0x0A0B0C0D    (u32; reads back scrambled on a
///                                wrong-endian decode — rejected loudly)
///     version     1             (u32)
///     records     N             (u32)
///     reserved    0             (u32)
///   N records, each:
///     type        (u32)  1=job spec (JSON text)  2=run  3=program text
///                        4=image
///     length      (u32)  payload bytes
///     payload     (length bytes)
///     crc32       (u32)  over type + length + payload
///
/// Record payloads:
///   run:     index u32, label u32, outcome u8 (0=failure 1=success
///            2=discarded), queries u64 — one attacked image's result;
///   image:   height u32, width u32, then H*W*3 f32 channel values;
///   spec/program: UTF-8 text.
///
/// Readers are all-or-nothing: a truncated file, a flipped CRC byte, a
/// wrong magic/version, or an endianness mismatch fails with a clear
/// error and never yields partial contents. Writers emit runs in index
/// order, so two artifacts over the same results are byte-identical —
/// including an artifact assembled across a checkpoint/resume boundary.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_WIRE_WIRE_H
#define OPPSLA_WIRE_WIRE_H

#include "data/Image.h"

#include <cstdint>
#include <string>
#include <vector>

namespace oppsla {
namespace wire {

/// Format constants, exposed for tests.
constexpr uint32_t WireEndianMarker = 0x0A0B0C0D;
constexpr uint32_t WireVersion = 1;
constexpr size_t WireHeaderBytes = 20;

/// Record type tags.
enum class WireRecordType : uint32_t {
  JobSpec = 1, ///< the submitting job's spec as JSON text (provenance)
  Run = 2,     ///< one per-image attack result
  Program = 3, ///< a synthesized program as DSL text
  Image = 4,   ///< raw image pixels (dataset shipping)
};

/// One attacked image's result. Outcome values mirror the run-log JSONL:
/// 0 = failure, 1 = success, 2 = discarded (clean image misclassified).
struct WireRun {
  uint32_t Index = 0; ///< image index within the job's dataset
  uint32_t Label = 0; ///< true class
  uint8_t Outcome = 0;
  uint64_t Queries = 0;

  bool operator==(const WireRun &O) const {
    return Index == O.Index && Label == O.Label && Outcome == O.Outcome &&
           Queries == O.Queries;
  }
};

const char *wireOutcomeName(uint8_t Outcome);

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) of \p Data.
uint32_t crc32(const void *Data, size_t Len, uint32_t Seed = 0);

/// Accumulates records and renders the final artifact bytes.
class WireBuilder {
public:
  void addJobSpecJson(const std::string &Json);
  void addRun(const WireRun &Run);
  void addProgram(const std::string &Text);
  void addImage(const Image &Img);

  size_t numRecords() const { return Records.size(); }

  /// Renders header + records. The builder stays usable (more records can
  /// be added and finish() called again).
  std::string finish() const;

private:
  struct Record {
    uint32_t Type;
    std::string Payload;
  };
  std::vector<Record> Records;
};

/// Everything a wire artifact can carry, grouped by record type. Record
/// order within each group is preserved.
struct WireContents {
  std::string JobSpecJson;
  std::vector<WireRun> Runs;
  std::vector<std::string> Programs;
  std::vector<Image> Images;
};

/// Parses \p Bytes as one artifact. \returns false (with \p Error naming
/// the problem and, where applicable, the offending record) on any
/// corruption; \p Out is only written on success.
bool parseWire(const std::string &Bytes, WireContents &Out,
               std::string &Error);

/// parseWire() over the contents of \p Path; read failures land in
/// \p Error.
bool readWireFile(const std::string &Path, WireContents &Out,
                  std::string &Error);

/// Writes \p Bytes to \p Path atomically (temp file + rename), so a
/// reader — or a crash — never observes a half-written artifact.
bool writeFileAtomic(const std::string &Path, const std::string &Bytes,
                     std::string &Error);

/// Renders \p Runs (sorted by index) as run-log JSONL with the exact
/// record shape of `oppsla eval --runs-out`:
/// {"image":i,"label":l,"outcome":"...","queries":q} — `image` is the
/// 0-based position in the sorted sequence, matching the offline
/// exporter's positional numbering.
std::string runsToJsonl(std::vector<WireRun> Runs);

} // namespace wire
} // namespace oppsla

#endif // OPPSLA_WIRE_WIRE_H
