//===- wire/Wire.cpp - Compact binary artifact format -------------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "wire/Wire.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace oppsla;
using namespace oppsla::wire;

namespace {

//===----------------------------------------------------------------------===//
// Little-endian primitives. Encoded byte-by-byte so artifact bytes do not
// depend on the host's byte order or struct padding.
//===----------------------------------------------------------------------===//

void putU32(std::string &Out, uint32_t V) {
  Out.push_back(static_cast<char>(V & 0xFF));
  Out.push_back(static_cast<char>((V >> 8) & 0xFF));
  Out.push_back(static_cast<char>((V >> 16) & 0xFF));
  Out.push_back(static_cast<char>((V >> 24) & 0xFF));
}

void putU64(std::string &Out, uint64_t V) {
  putU32(Out, static_cast<uint32_t>(V & 0xFFFFFFFFu));
  putU32(Out, static_cast<uint32_t>(V >> 32));
}

void putF32(std::string &Out, float F) {
  uint32_t Bits;
  std::memcpy(&Bits, &F, sizeof(Bits));
  putU32(Out, Bits);
}

uint32_t getU32(const std::string &In, size_t Off) {
  return static_cast<uint32_t>(static_cast<unsigned char>(In[Off])) |
         static_cast<uint32_t>(static_cast<unsigned char>(In[Off + 1]))
             << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(In[Off + 2]))
             << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(In[Off + 3]))
             << 24;
}

uint64_t getU64(const std::string &In, size_t Off) {
  return static_cast<uint64_t>(getU32(In, Off)) |
         static_cast<uint64_t>(getU32(In, Off + 4)) << 32;
}

float getF32(const std::string &In, size_t Off) {
  const uint32_t Bits = getU32(In, Off);
  float F;
  std::memcpy(&F, &Bits, sizeof(F));
  return F;
}

const std::array<uint32_t, 256> &crcTable() {
  static const std::array<uint32_t, 256> Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I != 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K != 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  return Table;
}

std::string recordError(size_t RecordIdx, const std::string &What) {
  return "wire: record " + std::to_string(RecordIdx) + ": " + What;
}

} // namespace

uint32_t wire::crc32(const void *Data, size_t Len, uint32_t Seed) {
  const auto *P = static_cast<const unsigned char *>(Data);
  uint32_t C = Seed ^ 0xFFFFFFFFu;
  for (size_t I = 0; I != Len; ++I)
    C = crcTable()[(C ^ P[I]) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

const char *wire::wireOutcomeName(uint8_t Outcome) {
  switch (Outcome) {
  case 0:
    return "failure";
  case 1:
    return "success";
  case 2:
    return "discarded";
  default:
    return "unknown";
  }
}

void WireBuilder::addJobSpecJson(const std::string &Json) {
  Records.push_back(
      {static_cast<uint32_t>(WireRecordType::JobSpec), Json});
}

void WireBuilder::addRun(const WireRun &Run) {
  std::string P;
  P.reserve(17);
  putU32(P, Run.Index);
  putU32(P, Run.Label);
  P.push_back(static_cast<char>(Run.Outcome));
  putU64(P, Run.Queries);
  Records.push_back({static_cast<uint32_t>(WireRecordType::Run),
                     std::move(P)});
}

void WireBuilder::addProgram(const std::string &Text) {
  Records.push_back(
      {static_cast<uint32_t>(WireRecordType::Program), Text});
}

void WireBuilder::addImage(const Image &Img) {
  std::string P;
  P.reserve(8 + Img.raw().size() * 4);
  putU32(P, static_cast<uint32_t>(Img.height()));
  putU32(P, static_cast<uint32_t>(Img.width()));
  for (float F : Img.raw())
    putF32(P, F);
  Records.push_back({static_cast<uint32_t>(WireRecordType::Image),
                     std::move(P)});
}

std::string WireBuilder::finish() const {
  std::string Out;
  Out += "OPWF";
  putU32(Out, WireEndianMarker);
  putU32(Out, WireVersion);
  putU32(Out, static_cast<uint32_t>(Records.size()));
  putU32(Out, 0); // reserved
  for (const Record &R : Records) {
    std::string Head;
    putU32(Head, R.Type);
    putU32(Head, static_cast<uint32_t>(R.Payload.size()));
    const uint32_t Crc =
        crc32(R.Payload.data(), R.Payload.size(),
              crc32(Head.data(), Head.size()));
    Out += Head;
    Out += R.Payload;
    putU32(Out, Crc);
  }
  return Out;
}

bool wire::parseWire(const std::string &Bytes, WireContents &Out,
                      std::string &Error) {
  if (Bytes.size() < WireHeaderBytes) {
    Error = "wire: short header — " + std::to_string(Bytes.size()) +
            " bytes, need " + std::to_string(WireHeaderBytes) +
            " (truncated file?)";
    return false;
  }
  if (Bytes.compare(0, 4, "OPWF") != 0) {
    Error = "wire: bad magic (not an OPWF artifact)";
    return false;
  }
  const uint32_t Endian = getU32(Bytes, 4);
  if (Endian != WireEndianMarker) {
    std::ostringstream S;
    S << "wire: endianness marker mismatch (read 0x" << std::hex << Endian
      << ", expected 0x" << WireEndianMarker
      << ") — artifact written with an incompatible byte order";
    Error = S.str();
    return false;
  }
  const uint32_t Version = getU32(Bytes, 8);
  if (Version != WireVersion) {
    Error = "wire: unsupported version " + std::to_string(Version) +
            " (this reader speaks version " + std::to_string(WireVersion) +
            ")";
    return false;
  }
  const uint32_t NumRecords = getU32(Bytes, 12);

  WireContents C;
  size_t Off = WireHeaderBytes;
  for (uint32_t R = 0; R != NumRecords; ++R) {
    if (Bytes.size() - Off < 8) {
      Error = recordError(R, "truncated record header at offset " +
                                 std::to_string(Off));
      return false;
    }
    const uint32_t Type = getU32(Bytes, Off);
    const uint32_t Len = getU32(Bytes, Off + 4);
    if (Bytes.size() - Off - 8 < static_cast<size_t>(Len) + 4) {
      Error = recordError(
          R, "truncated payload (file ends " +
                 std::to_string(Bytes.size() - Off - 8) +
                 " bytes into a " + std::to_string(Len) +
                 "-byte record)");
      return false;
    }
    const uint32_t Stored = getU32(Bytes, Off + 8 + Len);
    const uint32_t Computed = crc32(Bytes.data() + Off, 8 + Len);
    if (Stored != Computed) {
      std::ostringstream S;
      S << "wire: record " << R << ": CRC mismatch (stored 0x" << std::hex
        << Stored << ", computed 0x" << Computed << ")";
      Error = S.str();
      return false;
    }
    const std::string Payload = Bytes.substr(Off + 8, Len);
    switch (static_cast<WireRecordType>(Type)) {
    case WireRecordType::JobSpec:
      C.JobSpecJson = Payload;
      break;
    case WireRecordType::Run: {
      if (Len != 17) {
        Error = recordError(R, "run payload is " + std::to_string(Len) +
                                   " bytes, expected 17");
        return false;
      }
      WireRun Run;
      Run.Index = getU32(Payload, 0);
      Run.Label = getU32(Payload, 4);
      Run.Outcome = static_cast<uint8_t>(Payload[8]);
      Run.Queries = getU64(Payload, 9);
      C.Runs.push_back(Run);
      break;
    }
    case WireRecordType::Program:
      C.Programs.push_back(Payload);
      break;
    case WireRecordType::Image: {
      if (Len < 8) {
        Error = recordError(R, "image payload shorter than its header");
        return false;
      }
      const uint32_t H = getU32(Payload, 0);
      const uint32_t W = getU32(Payload, 4);
      const uint64_t Expect =
          8 + static_cast<uint64_t>(H) * W * 3 * 4;
      if (Len != Expect) {
        Error = recordError(
            R, "image payload is " + std::to_string(Len) +
                   " bytes, expected " + std::to_string(Expect) + " for " +
                   std::to_string(H) + "x" + std::to_string(W));
        return false;
      }
      Image Img(H, W);
      for (size_t I = 0; I != Img.raw().size(); ++I)
        Img.raw()[I] = getF32(Payload, 8 + I * 4);
      C.Images.push_back(std::move(Img));
      break;
    }
    default:
      Error = recordError(R, "unknown record type " + std::to_string(Type));
      return false;
    }
    Off += 8 + static_cast<size_t>(Len) + 4;
  }
  if (Off != Bytes.size()) {
    Error = "wire: " + std::to_string(Bytes.size() - Off) +
            " trailing bytes after the last record";
    return false;
  }
  Out = std::move(C);
  return true;
}

bool wire::readWireFile(const std::string &Path, WireContents &Out,
                         std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "wire: cannot open " + Path;
    return false;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  if (!In.good() && !In.eof()) {
    Error = "wire: read error on " + Path;
    return false;
  }
  if (!parseWire(Buf.str(), Out, Error)) {
    Error += " (" + Path + ")";
    return false;
  }
  return true;
}

bool wire::writeFileAtomic(const std::string &Path,
                            const std::string &Bytes, std::string &Error) {
  const std::string Tmp = Path + ".tmp";
  {
    std::ofstream OutF(Tmp, std::ios::binary | std::ios::trunc);
    if (!OutF) {
      Error = "wire: cannot create " + Tmp;
      return false;
    }
    OutF.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    OutF.flush();
    if (!OutF.good()) {
      Error = "wire: write failed on " + Tmp;
      std::remove(Tmp.c_str());
      return false;
    }
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    Error = "wire: rename " + Tmp + " -> " + Path + " failed";
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

std::string wire::runsToJsonl(std::vector<WireRun> Runs) {
  std::sort(Runs.begin(), Runs.end(),
            [](const WireRun &A, const WireRun &B) {
              return A.Index < B.Index;
            });
  std::string Out;
  char Line[160];
  for (size_t I = 0; I != Runs.size(); ++I) {
    const WireRun &R = Runs[I];
    std::snprintf(Line, sizeof(Line),
                  "{\"image\":%zu,\"label\":%zu,\"outcome\":\"%s\","
                  "\"queries\":%llu}\n",
                  I, static_cast<size_t>(R.Label),
                  wireOutcomeName(R.Outcome),
                  static_cast<unsigned long long>(R.Queries));
    Out += Line;
  }
  return Out;
}
