//===- tensor/TensorOps.h - Structured tensor operations -------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured tensor operations: GEMM, transpose, im2col/col2im (the
/// convolution lowering used by nn::Conv2d), and softmax. These are plain
/// scalar loops tuned only as far as the reproduction needs (the attack
/// workloads run millions of 32x32 forward passes).
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_TENSOR_TENSOROPS_H
#define OPPSLA_TENSOR_TENSOROPS_H

#include "tensor/Tensor.h"

namespace oppsla {

/// C = A(MxK) * B(KxN). \p C must already have shape {M, N}; it is
/// overwritten.
void matmul(const Tensor &A, const Tensor &B, Tensor &C);

/// C = A(MxK) * B(KxN)^T where B has shape {N, K}.
void matmulTransposedB(const Tensor &A, const Tensor &B, Tensor &C);

/// C = A(MxK)^T * B(MxN) where A has shape {M, K}; result is {K, N}.
void matmulTransposedA(const Tensor &A, const Tensor &B, Tensor &C);

/// Returns the row-major transpose of a rank-2 tensor.
Tensor transpose2d(const Tensor &A);

/// Lowers convolution input patches to a matrix.
///
/// Input is {N, C, H, W}; output Cols is a {C*KH*KW, N*OH*OW} matrix where
/// OH/OW are the output spatial dims for the given stride/padding. Zero
/// padding is applied implicitly.
void im2col(const Tensor &Input, size_t KH, size_t KW, size_t Stride,
            size_t Pad, Tensor &Cols);

/// Inverse of im2col: accumulates columns back into an {N, C, H, W} tensor
/// (used for convolution input gradients). \p Output must be pre-shaped and
/// is zeroed before accumulation.
void col2im(const Tensor &Cols, size_t N, size_t C, size_t H, size_t W,
            size_t KH, size_t KW, size_t Stride, size_t Pad, Tensor &Output);

/// Returns the conv output spatial size for one dimension.
inline size_t convOutSize(size_t In, size_t K, size_t Stride, size_t Pad) {
  assert(In + 2 * Pad >= K && "kernel larger than padded input");
  return (In + 2 * Pad - K) / Stride + 1;
}

/// Numerically stable in-place softmax over the last dimension of a rank-1
/// or rank-2 tensor.
void softmaxInPlace(Tensor &Logits);

/// Numerically stable log-softmax of a rank-1 tensor (returns a copy).
Tensor logSoftmax(const Tensor &Logits);

} // namespace oppsla

#endif // OPPSLA_TENSOR_TENSOROPS_H
