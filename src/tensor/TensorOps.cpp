//===- tensor/TensorOps.cpp - Structured tensor operations ----------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tensor/TensorOps.h"

#include <algorithm>
#include <cmath>
#include <cstring>

using namespace oppsla;

void oppsla::matmul(const Tensor &A, const Tensor &B, Tensor &C) {
  assert(A.rank() == 2 && B.rank() == 2 && C.rank() == 2 && "matmul rank");
  const size_t M = A.dim(0), K = A.dim(1), N = B.dim(1);
  assert(B.dim(0) == K && "matmul inner dims");
  assert(C.dim(0) == M && C.dim(1) == N && "matmul output shape");
  const float *AD = A.data();
  const float *BD = B.data();
  float *CD = C.data();
  // ikj loop order keeps the B row hot in cache and vectorizes the inner
  // loop. The explicit std::fma pins each element to the exact chain
  // acc_k = fma(A[i,k], B[k,j], acc_{k-1}), k ascending — the same
  // contract the packed microkernel in Gemm.cpp follows, so the fast and
  // naive kernel paths agree bit for bit (DESIGN.md §12).
  for (size_t I = 0; I != M; ++I) {
    float *CRow = CD + I * N;
    for (size_t J = 0; J != N; ++J)
      CRow[J] = 0.0f;
    for (size_t Kk = 0; Kk != K; ++Kk) {
      const float AV = AD[I * K + Kk];
      const float *BRow = BD + Kk * N;
      for (size_t J = 0; J != N; ++J)
        CRow[J] = std::fma(AV, BRow[J], CRow[J]);
    }
  }
}

void oppsla::matmulTransposedB(const Tensor &A, const Tensor &B, Tensor &C) {
  assert(A.rank() == 2 && B.rank() == 2 && C.rank() == 2 && "matmul rank");
  const size_t M = A.dim(0), K = A.dim(1), N = B.dim(0);
  assert(B.dim(1) == K && "matmulTransposedB inner dims");
  assert(C.dim(0) == M && C.dim(1) == N && "matmulTransposedB output shape");
  const float *AD = A.data();
  const float *BD = B.data();
  float *CD = C.data();
  for (size_t I = 0; I != M; ++I) {
    const float *ARow = AD + I * K;
    for (size_t J = 0; J != N; ++J) {
      const float *BRow = BD + J * K;
      float Acc = 0.0f;
      for (size_t Kk = 0; Kk != K; ++Kk)
        Acc = std::fma(ARow[Kk], BRow[Kk], Acc);
      CD[I * N + J] = Acc;
    }
  }
}

void oppsla::matmulTransposedA(const Tensor &A, const Tensor &B, Tensor &C) {
  assert(A.rank() == 2 && B.rank() == 2 && C.rank() == 2 && "matmul rank");
  const size_t M = A.dim(0), K = A.dim(1), N = B.dim(1);
  assert(B.dim(0) == M && "matmulTransposedA inner dims");
  assert(C.dim(0) == K && C.dim(1) == N && "matmulTransposedA output shape");
  const float *AD = A.data();
  const float *BD = B.data();
  float *CD = C.data();
  C.zero();
  // No skipping of AV == 0.0f rows: the shortcut looked free but changed
  // semantics for non-finite operands (0 * Inf must produce NaN, and the
  // skip silently dropped it), so the sparse-A path could diverge from
  // matmul/the packed GEMM on the same data. Regression-tested with
  // Inf/NaN operands in tests/tensor/TensorOpsTest.cpp.
  for (size_t I = 0; I != M; ++I) {
    const float *ARow = AD + I * K;
    const float *BRow = BD + I * N;
    for (size_t Kk = 0; Kk != K; ++Kk) {
      const float AV = ARow[Kk];
      float *CRow = CD + Kk * N;
      for (size_t J = 0; J != N; ++J)
        CRow[J] = std::fma(AV, BRow[J], CRow[J]);
    }
  }
}

Tensor oppsla::transpose2d(const Tensor &A) {
  assert(A.rank() == 2 && "transpose2d needs rank 2");
  const size_t M = A.dim(0), N = A.dim(1);
  Tensor T({N, M});
  for (size_t I = 0; I != M; ++I)
    for (size_t J = 0; J != N; ++J)
      T.at(J, I) = A.at(I, J);
  return T;
}

void oppsla::im2col(const Tensor &Input, size_t KH, size_t KW, size_t Stride,
                    size_t Pad, Tensor &Cols) {
  assert(Input.rank() == 4 && "im2col needs NCHW input");
  const size_t N = Input.dim(0), C = Input.dim(1);
  const size_t H = Input.dim(2), W = Input.dim(3);
  const size_t OH = convOutSize(H, KH, Stride, Pad);
  const size_t OW = convOutSize(W, KW, Stride, Pad);
  [[maybe_unused]] const size_t Rows = C * KH * KW;
  const size_t ColsN = N * OH * OW;
  assert(Cols.rank() == 2 && Cols.dim(0) == Rows && Cols.dim(1) == ColsN &&
         "im2col output shape");

  const float *In = Input.data();
  float *Out = Cols.data();
  for (size_t Ch = 0; Ch != C; ++Ch) {
    for (size_t Ki = 0; Ki != KH; ++Ki) {
      // Vertical split: Ii = Oi*Stride + Ki - Pad is in [0, H) exactly for
      // Oi in [OiLo, OiHi). Everything outside is zero padding, filled as
      // one block per image instead of row by row.
      const long IOff = static_cast<long>(Ki) - static_cast<long>(Pad);
      size_t OiLo =
          IOff >= 0 ? 0 : (static_cast<size_t>(-IOff) + Stride - 1) / Stride;
      size_t OiHi =
          IOff >= static_cast<long>(H)
              ? 0
              : (static_cast<size_t>(static_cast<long>(H) - IOff) + Stride -
                 1) /
                    Stride;
      OiHi = std::min(OiHi, OH);
      OiLo = std::min(OiLo, OiHi);
      for (size_t Kj = 0; Kj != KW; ++Kj) {
        const size_t Row = (Ch * KH + Ki) * KW + Kj;
        float *OutRow = Out + Row * ColsN;
        // Horizontal split, hoisted out of the per-row loop: the two
        // ceil-divisions here are loop-invariant, and at small output
        // widths they used to dominate the actual copying. Jj = Oj*Stride
        // + Off is in [0, W) exactly for Oj in [Lo, Hi).
        const long Off = static_cast<long>(Kj) - static_cast<long>(Pad);
        size_t Lo =
            Off >= 0 ? 0 : (static_cast<size_t>(-Off) + Stride - 1) / Stride;
        size_t Hi =
            Off >= static_cast<long>(W)
                ? 0
                : (static_cast<size_t>(static_cast<long>(W) - Off) + Stride -
                   1) /
                      Stride;
        Hi = std::min(Hi, OW);
        Lo = std::min(Lo, Hi);
        // When the copy covers the full output row at stride 1 and Off ==
        // 0, consecutive output rows read consecutive input rows with
        // matching pitch (OW == W), so the whole in-bounds block is one
        // contiguous copy per image.
        const bool FullRows =
            Stride == 1 && Off == 0 && Lo == 0 && Hi == OW && OW == W;
        for (size_t B = 0; B != N; ++B) {
          const float *InPlane = In + (B * C + Ch) * H * W;
          float *OutBase = OutRow + B * OH * OW;
          std::fill(OutBase, OutBase + OiLo * OW, 0.0f);
          std::fill(OutBase + OiHi * OW, OutBase + OH * OW, 0.0f);
          if (FullRows) {
            std::memcpy(OutBase + OiLo * OW,
                        InPlane +
                            static_cast<size_t>(
                                static_cast<long>(OiLo * Stride) + IOff) *
                                W,
                        (OiHi - OiLo) * OW * sizeof(float));
            continue;
          }
          for (size_t Oi = OiLo; Oi != OiHi; ++Oi) {
            const float *InRow =
                InPlane + static_cast<size_t>(
                              static_cast<long>(Oi * Stride) + IOff) *
                              W;
            float *OutPos = OutBase + Oi * OW;
            for (size_t Oj = 0; Oj != Lo; ++Oj)
              OutPos[Oj] = 0.0f;
            if (Stride == 1) {
              // Plain loop, not memcpy: segments are a few dozen floats,
              // where the call overhead exceeds the copy; this form
              // auto-vectorizes to unrolled vector moves.
              const float *Src = InRow + (static_cast<long>(Lo) + Off);
              for (size_t Oj = Lo; Oj != Hi; ++Oj)
                OutPos[Oj] = Src[Oj - Lo];
            } else
              for (size_t Oj = Lo; Oj != Hi; ++Oj)
                OutPos[Oj] = InRow[static_cast<size_t>(
                    static_cast<long>(Oj * Stride) + Off)];
            for (size_t Oj = Hi; Oj != OW; ++Oj)
              OutPos[Oj] = 0.0f;
          }
        }
      }
    }
  }
}

void oppsla::col2im(const Tensor &Cols, size_t N, size_t C, size_t H,
                    size_t W, size_t KH, size_t KW, size_t Stride, size_t Pad,
                    Tensor &Output) {
  const size_t OH = convOutSize(H, KH, Stride, Pad);
  const size_t OW = convOutSize(W, KW, Stride, Pad);
  [[maybe_unused]] const size_t Rows = C * KH * KW;
  const size_t ColsN = N * OH * OW;
  assert(Cols.rank() == 2 && Cols.dim(0) == Rows && Cols.dim(1) == ColsN &&
         "col2im input shape");
  assert(Output.rank() == 4 && Output.dim(0) == N && Output.dim(1) == C &&
         Output.dim(2) == H && Output.dim(3) == W && "col2im output shape");

  Output.zero();
  const float *In = Cols.data();
  float *Out = Output.data();
  for (size_t Ch = 0; Ch != C; ++Ch) {
    for (size_t Ki = 0; Ki != KH; ++Ki) {
      for (size_t Kj = 0; Kj != KW; ++Kj) {
        const size_t Row = (Ch * KH + Ki) * KW + Kj;
        const float *InRow = In + Row * ColsN;
        for (size_t B = 0; B != N; ++B) {
          float *OutPlane = Out + (B * C + Ch) * H * W;
          for (size_t Oi = 0; Oi != OH; ++Oi) {
            const long Ii = static_cast<long>(Oi * Stride + Ki) -
                            static_cast<long>(Pad);
            if (Ii < 0 || Ii >= static_cast<long>(H))
              continue;
            const float *InPos = InRow + (B * OH + Oi) * OW;
            float *OutRow = OutPlane + static_cast<size_t>(Ii) * W;
            for (size_t Oj = 0; Oj != OW; ++Oj) {
              const long Jj = static_cast<long>(Oj * Stride + Kj) -
                              static_cast<long>(Pad);
              if (Jj < 0 || Jj >= static_cast<long>(W))
                continue;
              OutRow[static_cast<size_t>(Jj)] += InPos[Oj];
            }
          }
        }
      }
    }
  }
}

void oppsla::softmaxInPlace(Tensor &Logits) {
  assert((Logits.rank() == 1 || Logits.rank() == 2) && "softmax rank");
  const size_t Rows = Logits.rank() == 2 ? Logits.dim(0) : 1;
  const size_t Cols = Logits.rank() == 2 ? Logits.dim(1) : Logits.dim(0);
  float *D = Logits.data();
  for (size_t R = 0; R != Rows; ++R) {
    float *Row = D + R * Cols;
    float Max = Row[0];
    for (size_t J = 1; J != Cols; ++J)
      Max = std::max(Max, Row[J]);
    float Sum = 0.0f;
    for (size_t J = 0; J != Cols; ++J) {
      Row[J] = std::exp(Row[J] - Max);
      Sum += Row[J];
    }
    const float Inv = 1.0f / Sum;
    for (size_t J = 0; J != Cols; ++J)
      Row[J] *= Inv;
  }
}

Tensor oppsla::logSoftmax(const Tensor &Logits) {
  assert(Logits.rank() == 1 && "logSoftmax expects rank 1");
  Tensor Out = Logits;
  float Max = Out.maxElement();
  float Sum = 0.0f;
  for (float V : Out.vec())
    Sum += std::exp(V - Max);
  const float LogSum = Max + std::log(Sum);
  for (float &V : Out.vec())
    V -= LogSum;
  return Out;
}
