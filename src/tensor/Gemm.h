//===- tensor/Gemm.h - Packed, register-blocked SGEMM ----------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hardware-fast inference GEMM behind nn::Conv2d. The scalar loops in
/// TensorOps.h stay as the reference ("naive") path; this file adds:
///
///   - gemmPackA: packs the row-major A operand (conv weights) into
///     MR-row panels so the microkernel streams it contiguously;
///   - gemmPacked / gemmPackedConvOut: a register-blocked {MR=6, NR=16}
///     microkernel over the packed panels with a fused epilogue
///     (per-row bias + batchnorm affine + ReLU) applied as each output
///     tile leaves the registers — the conv hot path writes the output
///     tensor exactly once;
///   - column-range threading over the existing ThreadPool, deterministic
///     at any thread count because output columns partition disjointly;
///   - the process-wide naive-kernels escape hatch behind the CLI's
///     --naive-kernels flag.
///
/// Determinism contract: every output element is the chain
///   acc_k = fma(A[i,k], B[k,j], acc_{k-1}),  k ascending, acc_{-1} = 0
/// followed by `v = acc + bias`, `v = fma(v, scale, shift)`, and
/// `v = v > 0 ? v : 0` for the enabled epilogue stages. The reference
/// matmul and the BatchNorm2d inference loop use the same explicit
/// std::fma chains, so the fast and naive paths agree bit for bit at any
/// shape and thread count (enforced by tests/tensor/GemmTest.cpp,
/// tests/nn/FusedForwardTest.cpp, and the cli_eval_kernels_identical
/// ctest).
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_TENSOR_GEMM_H
#define OPPSLA_TENSOR_GEMM_H

#include <cstddef>
#include <cstdint>

namespace oppsla {

class ArgParse;

namespace kernels {

/// Microkernel register block: MR output rows by NR output columns
/// (NR floats = two 8-lane AVX2 vectors; 12 accumulator registers).
inline constexpr size_t MR = 6;
inline constexpr size_t NR = 16;

/// Columns are handed to worker threads in NC-aligned ranges; NC is also
/// the cache-blocking hint (a K x NC B-panel of the deepest zoo conv is
/// ~330 KB, L2-resident on the targeted hosts).
inline constexpr size_t NC = 144; // multiple of NR

/// When true, every conv/GEMM routes through the scalar reference loops
/// in TensorOps.cpp (the CLI's --naive-kernels). Default false.
bool naive();
void setNaive(bool Enabled);

/// Process-wide default worker-thread budget for column partitioning
/// (1 = no threading). The engine overrides it per physical batch via
/// ScopedColumnThreads.
size_t columnThreads();
void setColumnThreads(size_t Threads);

/// Thread-local column-thread override for the current forward, used by
/// the QueryEngine's batch-size-aware dispatch: chunk-parallel forwards
/// pin their kernels to one thread, single-chunk forwards donate the
/// engine's thread budget to the GEMM column loop.
class ScopedColumnThreads {
public:
  explicit ScopedColumnThreads(size_t Threads);
  ~ScopedColumnThreads();
  ScopedColumnThreads(const ScopedColumnThreads &) = delete;
  ScopedColumnThreads &operator=(const ScopedColumnThreads &) = delete;

private:
  size_t Saved;
};

/// Shared `--naive-kernels` wiring for the CLI and bench binaries.
void configureFromArgs(const ArgParse &Args);

} // namespace kernels

/// Fused epilogue applied to each output tile as it leaves the registers.
/// All pointers are per-output-row (the conv's OutC dimension) and must
/// stay valid for the duration of the gemm call; nullptr disables the
/// stage. Stage order mirrors the unfused reference path exactly:
/// bias add (0.0f when absent), then the batchnorm affine, then ReLU.
struct GemmEpilogue {
  const float *Bias = nullptr;  ///< v = acc + Bias[i] (0.0f when null)
  const float *Scale = nullptr; ///< v = fma(v, Scale[i], Shift[i])
  const float *Shift = nullptr; ///< must be set iff Scale is set
  bool Relu = false;            ///< v = v > 0 ? v : 0
};

/// Floats needed to hold A (M x K) packed into MR-row panels.
size_t gemmPackedSize(size_t M, size_t K);

/// Packs row-major A (M x K) into MR-row panels: panel p holds rows
/// [p*MR, p*MR+MR) interleaved k-major (Pack[p][k][r]); rows past M are
/// zero-filled so the microkernel never reads uninitialized memory.
void gemmPackA(const float *A, size_t M, size_t K, float *Pack);

/// C (M x N, row-major) = A * B with \p Ep fused into the tile store.
/// \p Pack is gemmPackA(A); B is K x N row-major. C is overwritten.
void gemmPacked(const float *Pack, const float *B, float *C, size_t M,
                size_t K, size_t N, const GemmEpilogue &Ep);

/// The conv-forward variant: B is the im2col matrix {K, NB*Plane} whose
/// column (b*Plane + p) is output pixel p of batch item b, and the result
/// is scattered directly into an NCHW tensor {NB, M, Plane} at \p Out —
/// GEMM, bias, batchnorm, ReLU, and the NCHW scatter in one pass.
void gemmPackedConvOut(const float *Pack, const float *B, float *Out,
                       size_t M, size_t K, size_t NB, size_t Plane,
                       const GemmEpilogue &Ep);

} // namespace oppsla

#endif // OPPSLA_TENSOR_GEMM_H
