//===- tensor/Gemm.cpp - Packed, register-blocked SGEMM -------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tensor/Gemm.h"

#include "support/ArgParse.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

using namespace oppsla;
using namespace oppsla::kernels;

//===----------------------------------------------------------------------===//
// Kernel configuration state
//===----------------------------------------------------------------------===//

namespace {

std::atomic<bool> NaiveKernels{false};
std::atomic<size_t> GlobalColumnThreads{1};

// 0 = no override; ScopedColumnThreads installs a per-thread value so the
// engine can re-budget kernels for the forward it is about to run without
// racing other workers.
thread_local size_t TLColumnThreads = 0;

// One process-wide pool for GEMM column fan-out, sized to the hardware and
// created on first threaded call. Shared across layers and forwards; tasks
// are pure column-range computations so FIFO order never matters.
ThreadPool &columnPool() {
  static std::once_flag Once;
  static std::unique_ptr<ThreadPool> Pool;
  std::call_once(Once, [] {
    Pool = std::make_unique<ThreadPool>(ThreadPool::hardwareThreads());
  });
  return *Pool;
}

} // namespace

bool kernels::naive() { return NaiveKernels.load(std::memory_order_relaxed); }

void kernels::setNaive(bool Enabled) {
  NaiveKernels.store(Enabled, std::memory_order_relaxed);
}

size_t kernels::columnThreads() {
  if (TLColumnThreads != 0)
    return TLColumnThreads;
  return GlobalColumnThreads.load(std::memory_order_relaxed);
}

void kernels::setColumnThreads(size_t Threads) {
  GlobalColumnThreads.store(std::max<size_t>(1, Threads),
                            std::memory_order_relaxed);
}

ScopedColumnThreads::ScopedColumnThreads(size_t Threads)
    : Saved(TLColumnThreads) {
  TLColumnThreads = std::max<size_t>(1, Threads);
}

ScopedColumnThreads::~ScopedColumnThreads() { TLColumnThreads = Saved; }

void kernels::configureFromArgs(const ArgParse &Args) {
  setNaive(Args.getFlag("naive-kernels"));
}

//===----------------------------------------------------------------------===//
// A-operand packing
//===----------------------------------------------------------------------===//

size_t oppsla::gemmPackedSize(size_t M, size_t K) {
  const size_t Panels = (M + MR - 1) / MR;
  return Panels * K * MR;
}

void oppsla::gemmPackA(const float *A, size_t M, size_t K, float *Pack) {
  const size_t Panels = (M + MR - 1) / MR;
  for (size_t P = 0; P != Panels; ++P) {
    float *Panel = Pack + P * K * MR;
    const size_t Rows = std::min(MR, M - P * MR);
    for (size_t R = 0; R != Rows; ++R) {
      const float *ARow = A + (P * MR + R) * K;
      for (size_t Kk = 0; Kk != K; ++Kk)
        Panel[Kk * MR + R] = ARow[Kk];
    }
    // Zero-fill the tail rows so the microkernel can always run the full
    // MR accumulators; the padded results are simply never stored.
    for (size_t R = Rows; R != MR; ++R)
      for (size_t Kk = 0; Kk != K; ++Kk)
        Panel[Kk * MR + R] = 0.0f;
  }
}

//===----------------------------------------------------------------------===//
// Microkernel
//===----------------------------------------------------------------------===//

namespace {

// The vectorized tile uses GNU vector extensions (no x86 intrinsics): two
// 8-lane vectors per accumulator row, with `a * b + acc` relying on FP
// contraction (-ffp-contract=fast, forced in src/tensor/CMakeLists.txt)
// to emit one fused multiply-add per lane. A contracted a*b+acc rounds
// once, exactly like std::fma, so the chain stays bit-identical to the
// scalar reference loops — GemmTest and the cli_eval_kernels_identical
// ctest enforce this. Only taken on FMA-capable GNU targets; anything
// else falls back to the scalar std::fma loop below, which keeps the
// contract trivially (and slowly).
#if defined(__GNUC__) && defined(__FMA__)
#define OPPSLA_GEMM_VECTOR_KERNEL 1
typedef float V8 __attribute__((vector_size(32)));
#if defined(__AVX512F__)
// One 16-lane vector covers the whole NR tile row: half the FMA issue
// count of the two-V8 form, same contracted single-rounding per lane.
#define OPPSLA_GEMM_V16 1
typedef float V16 __attribute__((vector_size(64)));
#endif
#endif

/// Full MR x NR tile: each accumulator is the exact fma chain
/// acc_k = fma(a, b, acc_{k-1}) with k ascending — the determinism
/// contract shared with the scalar reference loops.
void microKernelFull(const float *__restrict Panel, const float *__restrict B,
                     size_t Ldb, size_t K, float Acc[MR][NR]) {
#if defined(OPPSLA_GEMM_V16)
  V16 Acc16[MR] = {};
  for (size_t Kk = 0; Kk != K; ++Kk) {
    const float *BRow = B + Kk * Ldb;
    V16 BV;
    std::memcpy(&BV, BRow, sizeof(V16));
    const float *APack = Panel + Kk * MR;
    for (size_t R = 0; R != MR; ++R) {
      const float A = APack[R];
      const V16 AV = {A, A, A, A, A, A, A, A, A, A, A, A, A, A, A, A};
      Acc16[R] = AV * BV + Acc16[R]; // contracts to one fused fma per lane
    }
  }
  for (size_t R = 0; R != MR; ++R)
    std::memcpy(&Acc[R][0], &Acc16[R], sizeof(V16));
#elif defined(OPPSLA_GEMM_VECTOR_KERNEL)
  V8 Lo[MR] = {}, Hi[MR] = {};
  for (size_t Kk = 0; Kk != K; ++Kk) {
    const float *BRow = B + Kk * Ldb;
    V8 B0, B1;
    std::memcpy(&B0, BRow, sizeof(V8));
    std::memcpy(&B1, BRow + 8, sizeof(V8));
    const float *APack = Panel + Kk * MR;
    for (size_t R = 0; R != MR; ++R) {
      const float A = APack[R];
      const V8 AV = {A, A, A, A, A, A, A, A};
      Lo[R] = AV * B0 + Lo[R]; // contracts to one fused fma per lane
      Hi[R] = AV * B1 + Hi[R];
    }
  }
  for (size_t R = 0; R != MR; ++R) {
    std::memcpy(&Acc[R][0], &Lo[R], sizeof(V8));
    std::memcpy(&Acc[R][8], &Hi[R], sizeof(V8));
  }
#else
  for (size_t R = 0; R != MR; ++R)
    for (size_t J = 0; J != NR; ++J)
      Acc[R][J] = 0.0f;
  for (size_t Kk = 0; Kk != K; ++Kk) {
    const float *BRow = B + Kk * Ldb;
    const float *APack = Panel + Kk * MR;
    for (size_t R = 0; R != MR; ++R) {
      const float AV = APack[R];
      for (size_t J = 0; J != NR; ++J)
        Acc[R][J] = std::fma(AV, BRow[J], Acc[R][J]);
    }
  }
#endif
}

/// Column-tail variant (Cols < NR): same chains, shorter j-loop.
void microKernelTail(const float *Panel, const float *B, size_t Ldb, size_t K,
                     size_t Cols, float Acc[MR][NR]) {
  for (size_t R = 0; R != MR; ++R)
    for (size_t J = 0; J != NR; ++J)
      Acc[R][J] = 0.0f;
  for (size_t Kk = 0; Kk != K; ++Kk) {
    const float *BRow = B + Kk * Ldb;
    const float *APack = Panel + Kk * MR;
    for (size_t R = 0; R != MR; ++R) {
      const float AV = APack[R];
      for (size_t J = 0; J != Cols; ++J)
        Acc[R][J] = std::fma(AV, BRow[J], Acc[R][J]);
    }
  }
}

/// Applies the epilogue to one accumulator row and stores it contiguously.
/// Mirrors the reference path op-for-op: conv bias add (0.0f when the
/// layer has none), BatchNorm2d's `fma(v, Scale, Shift)`, ReLU's ternary.
inline void storeRow(const float *AccRow, float *Dst, size_t Cols, size_t I,
                     const GemmEpilogue &Ep) {
  const float Bias = Ep.Bias ? Ep.Bias[I] : 0.0f;
  if (Ep.Scale) {
    const float Scale = Ep.Scale[I];
    const float Shift = Ep.Shift[I];
    if (Ep.Relu) {
      for (size_t J = 0; J != Cols; ++J) {
        float V = std::fma(AccRow[J] + Bias, Scale, Shift);
        Dst[J] = V > 0.0f ? V : 0.0f;
      }
    } else {
      for (size_t J = 0; J != Cols; ++J)
        Dst[J] = std::fma(AccRow[J] + Bias, Scale, Shift);
    }
  } else if (Ep.Relu) {
    for (size_t J = 0; J != Cols; ++J) {
      const float V = AccRow[J] + Bias;
      Dst[J] = V > 0.0f ? V : 0.0f;
    }
  } else {
    for (size_t J = 0; J != Cols; ++J)
      Dst[J] = AccRow[J] + Bias;
  }
}

/// Stores the live part of a tile into the NCHW output. The tile covers
/// output rows [I0, I0+Rows) and flat columns [J0, J0+Cols); flat column
/// (B * Plane + P) is pixel P of batch item B, so the tile is split at
/// batch boundaries into contiguous segments.
void storeTile(const float Acc[MR][NR], float *Out, size_t M, size_t Plane,
               size_t I0, size_t Rows, size_t J0, size_t Cols,
               const GemmEpilogue &Ep) {
  size_t Done = 0;
  while (Done != Cols) {
    const size_t Flat = J0 + Done;
    const size_t Batch = Flat / Plane;
    const size_t Pixel = Flat % Plane;
    const size_t Seg = std::min(Cols - Done, Plane - Pixel);
    float *Base = Out + Batch * M * Plane + Pixel;
    for (size_t R = 0; R != Rows; ++R)
      storeRow(&Acc[R][Done], Base + (I0 + R) * Plane, Seg, I0 + R, Ep);
    Done += Seg;
  }
}

/// Computes output columns [J0, J1) of the whole product: for each K x NC
/// B-block, sweep every packed A panel so the block stays cache-hot.
void runColumns(const float *Pack, const float *B, float *Out, size_t M,
                size_t K, size_t N, size_t Plane, size_t J0, size_t J1,
                const GemmEpilogue &Ep) {
  const size_t Panels = (M + MR - 1) / MR;
  float Acc[MR][NR];
  for (size_t Jc = J0; Jc < J1; Jc += NC) {
    const size_t JcEnd = std::min(Jc + NC, J1);
    for (size_t P = 0; P != Panels; ++P) {
      const float *Panel = Pack + P * K * MR;
      const size_t I0 = P * MR;
      const size_t Rows = std::min(MR, M - I0);
      for (size_t J = Jc; J < JcEnd; J += NR) {
        const size_t Cols = std::min(NR, JcEnd - J);
        if (Cols == NR)
          microKernelFull(Panel, B + J, N, K, Acc);
        else
          microKernelTail(Panel, B + J, N, K, Cols, Acc);
        storeTile(Acc, Out, M, Plane, I0, Rows, J, Cols, Ep);
      }
    }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

void oppsla::gemmPackedConvOut(const float *Pack, const float *B, float *Out,
                               size_t M, size_t K, size_t NB, size_t Plane,
                               const GemmEpilogue &Ep) {
  assert((!Ep.Scale || Ep.Shift) && "Scale requires Shift");
  const size_t N = NB * Plane;
  if (N == 0 || M == 0)
    return;
  const size_t Threads = std::min(kernels::columnThreads(), (N + NC - 1) / NC);
  if (Threads <= 1) {
    runColumns(Pack, B, Out, M, K, N, Plane, 0, N, Ep);
    return;
  }
  // Partition columns into Threads NC-aligned ranges. Each range writes a
  // disjoint column set and every element's fma chain is independent of
  // the partition, so results are identical at any thread count.
  const size_t Blocks = (N + NC - 1) / NC;
  const size_t PerRange = (Blocks + Threads - 1) / Threads;
  std::vector<std::pair<size_t, size_t>> Ranges;
  for (size_t T = 0; T != Threads; ++T) {
    const size_t B0 = T * PerRange * NC;
    const size_t B1 = std::min(N, (T + 1) * PerRange * NC);
    if (B0 >= B1)
      break;
    Ranges.emplace_back(B0, B1);
  }
  columnPool().forEach(Ranges.size(), [&](size_t R) {
    runColumns(Pack, B, Out, M, K, N, Plane, Ranges[R].first, Ranges[R].second,
               Ep);
  });
}

void oppsla::gemmPacked(const float *Pack, const float *B, float *C, size_t M,
                        size_t K, size_t N, const GemmEpilogue &Ep) {
  // A row-major M x N output is the NB == 1 case of the NCHW store.
  gemmPackedConvOut(Pack, B, C, M, K, /*NB=*/1, /*Plane=*/N, Ep);
}
