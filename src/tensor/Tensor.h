//===- tensor/Tensor.h - Dense float tensors -------------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dense float32 tensor with row-major (C-contiguous) layout, used
/// as the storage type of the neural network substrate. Supports ranks 1-4;
/// 4-D tensors follow the NCHW convention used by the nn library.
///
/// The class is intentionally minimal: contiguous storage, shape queries,
/// element access, and a handful of elementwise helpers. Structured
/// operations (matmul, im2col, ...) live in tensor/TensorOps.h.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_TENSOR_TENSOR_H
#define OPPSLA_TENSOR_TENSOR_H

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace oppsla {

class Rng;

/// Tensor shape: up to four dimensions, stored in row-major order.
class Shape {
public:
  Shape() = default;
  Shape(std::initializer_list<size_t> Dims) : Dims(Dims) {
    assert(this->Dims.size() <= 4 && "rank > 4 unsupported");
  }
  explicit Shape(std::vector<size_t> Dims) : Dims(std::move(Dims)) {
    assert(this->Dims.size() <= 4 && "rank > 4 unsupported");
  }

  size_t rank() const { return Dims.size(); }
  size_t operator[](size_t I) const {
    assert(I < Dims.size() && "shape index out of range");
    return Dims[I];
  }
  /// Total number of elements (1 for a rank-0 shape).
  size_t numel() const {
    size_t N = 1;
    for (size_t D : Dims)
      N *= D;
    return N;
  }
  bool operator==(const Shape &Other) const { return Dims == Other.Dims; }
  bool operator!=(const Shape &Other) const { return !(*this == Other); }

  const std::vector<size_t> &dims() const { return Dims; }

  /// Human-readable form, e.g. "[2, 3, 32, 32]".
  std::string str() const;

private:
  std::vector<size_t> Dims;
};

/// Dense float32 tensor with contiguous row-major storage.
class Tensor {
public:
  Tensor() = default;
  /// Allocates a zero-initialized tensor of the given shape.
  explicit Tensor(Shape S) : Dims(std::move(S)), Data(Dims.numel(), 0.0f) {}
  Tensor(std::initializer_list<size_t> Dims) : Tensor(Shape(Dims)) {}

  /// Allocates with explicit contents (size must match the shape).
  Tensor(Shape S, std::vector<float> Values)
      : Dims(std::move(S)), Data(std::move(Values)) {
    assert(Data.size() == Dims.numel() && "data size does not match shape");
  }

  const Shape &shape() const { return Dims; }
  size_t rank() const { return Dims.rank(); }
  size_t numel() const { return Data.size(); }
  bool empty() const { return Data.empty(); }

  size_t dim(size_t I) const { return Dims[I]; }

  float *data() { return Data.data(); }
  const float *data() const { return Data.data(); }
  std::vector<float> &vec() { return Data; }
  const std::vector<float> &vec() const { return Data; }

  /// Flat element access.
  float &operator[](size_t I) {
    assert(I < Data.size() && "flat index out of range");
    return Data[I];
  }
  float operator[](size_t I) const {
    assert(I < Data.size() && "flat index out of range");
    return Data[I];
  }

  /// 2-D access (row, col).
  float &at(size_t I, size_t J) {
    assert(rank() == 2 && "at(i,j) requires rank 2");
    return Data[I * Dims[1] + J];
  }
  float at(size_t I, size_t J) const {
    assert(rank() == 2 && "at(i,j) requires rank 2");
    return Data[I * Dims[1] + J];
  }

  /// 4-D NCHW access.
  float &at(size_t N, size_t C, size_t H, size_t W) {
    assert(rank() == 4 && "at(n,c,h,w) requires rank 4");
    return Data[((N * Dims[1] + C) * Dims[2] + H) * Dims[3] + W];
  }
  float at(size_t N, size_t C, size_t H, size_t W) const {
    assert(rank() == 4 && "at(n,c,h,w) requires rank 4");
    return Data[((N * Dims[1] + C) * Dims[2] + H) * Dims[3] + W];
  }

  /// Reshapes in place for scratch reuse: storage is resized to the new
  /// numel but the underlying capacity is never released, so alternating
  /// between shapes (e.g. engine full batches and tail batches) allocates
  /// at most once per high-water mark. Newly exposed elements are
  /// zero-initialized; surviving elements keep their (stale) values —
  /// callers are expected to overwrite the whole tensor. Returns true when
  /// the call had to grow the allocation.
  bool ensureShape(Shape NewShape);

  /// Sets every element to \p Value.
  void fill(float Value);
  /// Zeroes all elements (keeps the allocation).
  void zero() { fill(0.0f); }

  /// Reinterprets the storage under a new shape with equal numel.
  Tensor reshaped(Shape NewShape) const;

  /// Elementwise in-place operations.
  Tensor &operator+=(const Tensor &Other);
  Tensor &operator-=(const Tensor &Other);
  Tensor &operator*=(float Scalar);
  /// this += Scalar * Other (axpy).
  void addScaled(const Tensor &Other, float Scalar);

  /// Sum of all elements.
  float sum() const;
  /// Maximum element; asserts non-empty.
  float maxElement() const;
  /// Index of the maximum element; asserts non-empty.
  size_t argmax() const;
  /// Mean of all elements; 0 when empty.
  float meanElement() const;

  /// Squared L2 norm of all elements.
  float squaredNorm() const;

  // Factories.
  static Tensor zeros(Shape S) { return Tensor(std::move(S)); }
  static Tensor full(Shape S, float Value);
  /// Gaussian-initialized tensor with the given stddev.
  static Tensor randn(Shape S, Rng &R, float Stddev = 1.0f);
  /// Uniform in [Lo, Hi).
  static Tensor rand(Shape S, Rng &R, float Lo = 0.0f, float Hi = 1.0f);

private:
  Shape Dims;
  std::vector<float> Data;
};

} // namespace oppsla

#endif // OPPSLA_TENSOR_TENSOR_H
