//===- tensor/Tensor.cpp - Dense float tensors ----------------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tensor/Tensor.h"

#include "support/Rng.h"

#include <algorithm>
#include <sstream>

using namespace oppsla;

std::string Shape::str() const {
  std::ostringstream OS;
  OS << "[";
  for (size_t I = 0; I != Dims.size(); ++I) {
    if (I)
      OS << ", ";
    OS << Dims[I];
  }
  OS << "]";
  return OS.str();
}

void Tensor::fill(float Value) {
  std::fill(Data.begin(), Data.end(), Value);
}

bool Tensor::ensureShape(Shape NewShape) {
  const size_t N = NewShape.numel();
  const bool Grew = N > Data.capacity();
  Dims = std::move(NewShape);
  Data.resize(N);
  return Grew;
}

Tensor Tensor::reshaped(Shape NewShape) const {
  assert(NewShape.numel() == numel() && "reshape must preserve numel");
  return Tensor(std::move(NewShape), Data);
}

Tensor &Tensor::operator+=(const Tensor &Other) {
  assert(numel() == Other.numel() && "shape mismatch in +=");
  const float *Src = Other.data();
  float *Dst = data();
  for (size_t I = 0, E = numel(); I != E; ++I)
    Dst[I] += Src[I];
  return *this;
}

Tensor &Tensor::operator-=(const Tensor &Other) {
  assert(numel() == Other.numel() && "shape mismatch in -=");
  const float *Src = Other.data();
  float *Dst = data();
  for (size_t I = 0, E = numel(); I != E; ++I)
    Dst[I] -= Src[I];
  return *this;
}

Tensor &Tensor::operator*=(float Scalar) {
  for (float &V : Data)
    V *= Scalar;
  return *this;
}

void Tensor::addScaled(const Tensor &Other, float Scalar) {
  assert(numel() == Other.numel() && "shape mismatch in addScaled");
  const float *Src = Other.data();
  float *Dst = data();
  for (size_t I = 0, E = numel(); I != E; ++I)
    Dst[I] += Scalar * Src[I];
}

float Tensor::sum() const {
  float Acc = 0.0f;
  for (float V : Data)
    Acc += V;
  return Acc;
}

float Tensor::maxElement() const {
  assert(!Data.empty() && "maxElement of empty tensor");
  return *std::max_element(Data.begin(), Data.end());
}

size_t Tensor::argmax() const {
  assert(!Data.empty() && "argmax of empty tensor");
  return static_cast<size_t>(
      std::max_element(Data.begin(), Data.end()) - Data.begin());
}

float Tensor::meanElement() const {
  if (Data.empty())
    return 0.0f;
  return sum() / static_cast<float>(Data.size());
}

float Tensor::squaredNorm() const {
  float Acc = 0.0f;
  for (float V : Data)
    Acc += V * V;
  return Acc;
}

Tensor Tensor::full(Shape S, float Value) {
  Tensor T(std::move(S));
  T.fill(Value);
  return T;
}

Tensor Tensor::randn(Shape S, Rng &R, float Stddev) {
  Tensor T(std::move(S));
  for (float &V : T.vec())
    V = static_cast<float>(R.normal(0.0, Stddev));
  return T;
}

Tensor Tensor::rand(Shape S, Rng &R, float Lo, float Hi) {
  Tensor T(std::move(S));
  for (float &V : T.vec())
    V = static_cast<float>(R.uniform(Lo, Hi));
  return T;
}
