//===- classify/Training.cpp - Victim classifier training --------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "classify/Training.h"

#include "nn/Loss.h"
#include "nn/Optimizer.h"
#include "nn/Serialize.h"
#include "support/Logging.h"
#include "support/Profiler.h"
#include "support/Rng.h"

#include <cstdlib>
#include <filesystem>
#include <numeric>
#include <sstream>

using namespace oppsla;

TrainResult oppsla::trainClassifier(Sequential &Model, const Dataset &Data,
                                    const TrainConfig &Config, Rng &R) {
  assert(Data.size() > 0 && "empty training set");
  const size_t N = Data.size();
  const size_t H = Data.Images.front().height();
  const size_t W = Data.Images.front().width();

  Sgd Opt(Model.parameters(), Config.Lr, Config.Momentum,
          Config.WeightDecay);
  CrossEntropy Loss(Config.LabelSmoothing);

  std::vector<size_t> Order(N);
  std::iota(Order.begin(), Order.end(), 0);

  TrainResult Result;
  for (size_t Epoch = 0; Epoch != Config.Epochs; ++Epoch) {
    telemetry::ProfileScope EpochSpan("train.epoch");
    R.shuffle(Order);
    double EpochLoss = 0.0;
    size_t EpochCorrect = 0, Batches = 0;
    for (size_t Start = 0; Start < N; Start += Config.BatchSize) {
      const size_t B = std::min(Config.BatchSize, N - Start);
      Tensor Batch({B, 3, H, W});
      std::vector<size_t> Labels(B);
      for (size_t I = 0; I != B; ++I) {
        const Image &Stored = Data.Images[Order[Start + I]];
        assert(Stored.height() == H && Stored.width() == W &&
               "mixed image sizes in one dataset");
        Image AugBuf;
        if (Config.UseAugment)
          AugBuf = augment(Stored, Config.Augment, R);
        const Image &Img = Config.UseAugment ? AugBuf : Stored;
        // Write image I into the batch.
        const size_t Plane = H * W;
        float *Dst = Batch.data() + I * 3 * Plane;
        const std::vector<float> &Raw = Img.raw();
        for (size_t P = 0; P != Plane; ++P) {
          Dst[P] = Raw[P * 3 + 0];
          Dst[Plane + P] = Raw[P * 3 + 1];
          Dst[2 * Plane + P] = Raw[P * 3 + 2];
        }
        Labels[I] = Data.Labels[Order[Start + I]];
      }

      Opt.zeroGrad();
      Tensor Logits = Model.forward(Batch, /*Train=*/true);
      EpochLoss += Loss.forward(Logits, Labels);
      EpochCorrect += Loss.numCorrect();
      Model.backward(Loss.backward());
      Opt.step();
      ++Batches;
    }
    Result.FinalLoss = static_cast<float>(EpochLoss /
                                          static_cast<double>(Batches));
    Result.TrainAccuracy =
        static_cast<float>(EpochCorrect) / static_cast<float>(N);
    Opt.setLr(Opt.lr() * Config.LrDecay);
    logDebug() << "epoch " << (Epoch + 1) << "/" << Config.Epochs
               << " loss=" << Result.FinalLoss
               << " acc=" << Result.TrainAccuracy;
  }
  return Result;
}

float oppsla::evalAccuracy(Sequential &Model, const Dataset &Data) {
  if (Data.size() == 0)
    return 0.0f;
  size_t Correct = 0;
  for (size_t I = 0; I != Data.size(); ++I) {
    Tensor In = Data.Images[I].toTensor();
    Tensor Logits = Model.forward(In, /*Train=*/false);
    if (Logits.argmax() == Data.Labels[I])
      ++Correct;
  }
  return static_cast<float>(Correct) / static_cast<float>(Data.size());
}

std::string VictimSpec::cacheStem() const {
  // v2: bump whenever training numerics change so stale cached victims are
  // invalidated (v2 = unbiased BatchNorm running variance + fma-pinned
  // matmul reduction order, DESIGN.md §12).
  std::ostringstream OS;
  OS << "v2_" << taskName(Task) << "_" << archName(Architecture) << "_s"
     << Seed << "_n" << TrainImagesPerClass << "_c" << NumClasses << "_e"
     << Train.Epochs << "_d" << (Side ? Side : taskDefaultSide(Task));
  if (Train.UseAugment)
    OS << "_aug" << Train.Augment.CutoutPatch;
  return OS.str();
}

namespace {

std::string cacheDir() {
  if (const char *Env = std::getenv("OPPSLA_CACHE_DIR"))
    return Env;
  return ".oppsla-cache";
}

} // namespace

std::unique_ptr<NNClassifier> oppsla::makeVictim(const VictimSpec &Spec,
                                                 bool CacheEnabled) {
  Rng ModelRng(Spec.Seed * 7919 + 13);
  const size_t Side = Spec.Side ? Spec.Side : taskDefaultSide(Spec.Task);
  auto Model = buildModel(Spec.Architecture, Spec.NumClasses, Side, ModelRng);
  assert(Model && "unknown architecture");

  // Lets NNClassifier::clone() rebuild a structurally identical model for
  // per-thread copies; initial weights are overwritten by the clone.
  const auto Arch = Spec.Architecture;
  const size_t Classes = Spec.NumClasses;
  NNClassifier::ModelBuilder Builder = [Arch, Classes, Side]() {
    Rng Throwaway(0);
    return buildModel(Arch, Classes, Side, Throwaway);
  };

  const std::string Name = std::string(archName(Spec.Architecture)) + "/" +
                           taskName(Spec.Task);
  const std::string Path = cacheDir() + "/" + Spec.cacheStem() + ".bin";

  if (CacheEnabled && loadModel(*Model, Path)) {
    logInfo() << "loaded cached victim " << Name << " from " << Path;
    auto C = std::make_unique<NNClassifier>(std::move(Model), Spec.NumClasses,
                                            Name);
    C->setModelBuilder(Builder);
    return C;
  }

  Dataset Train = generateSynthetic(Spec.Task, Spec.TrainImagesPerClass,
                                    /*Seed=*/Spec.Seed * 1000003 + 7,
                                    Spec.Side, Spec.NumClasses);
  Rng TrainRng(Spec.Seed * 104729 + 3);
  TrainResult TR = trainClassifier(*Model, Train, Spec.Train, TrainRng);
  logInfo() << "trained victim " << Name << ": loss=" << TR.FinalLoss
            << " train-acc=" << TR.TrainAccuracy;

  if (CacheEnabled) {
    std::error_code EC;
    std::filesystem::create_directories(cacheDir(), EC);
    if (!saveModel(*Model, Path))
      logWarn() << "failed to cache victim to " << Path;
  }
  auto C = std::make_unique<NNClassifier>(std::move(Model), Spec.NumClasses,
                                          Name);
  C->setModelBuilder(Builder);
  return C;
}
