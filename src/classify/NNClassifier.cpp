//===- classify/NNClassifier.cpp - nn::Sequential adapter --------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "classify/NNClassifier.h"

#include "tensor/TensorOps.h"

using namespace oppsla;

NNClassifier::NNClassifier(std::unique_ptr<Sequential> Model,
                           size_t NumClasses, std::string Name)
    : Model(std::move(Model)), Classes(NumClasses),
      ModelName(std::move(Name)) {
  assert(this->Model && "null model");
}

std::vector<float> NNClassifier::scores(const Image &Img) {
  if (InputScratch.rank() != 4 || InputScratch.dim(2) != Img.height() ||
      InputScratch.dim(3) != Img.width())
    InputScratch = Tensor({1, 3, Img.height(), Img.width()});
  Img.writeToTensor(InputScratch);
  Tensor Logits = Model->forward(InputScratch, /*Train=*/false);
  assert(Logits.numel() == Classes && "model output size mismatch");
  Tensor Probs = Logits.reshaped({Classes});
  softmaxInPlace(Probs);
  return Probs.vec();
}
