//===- classify/NNClassifier.cpp - nn::Sequential adapter --------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "classify/NNClassifier.h"

#include "tensor/TensorOps.h"

using namespace oppsla;

NNClassifier::NNClassifier(std::unique_ptr<Sequential> Model,
                           size_t NumClasses, std::string Name)
    : Model(std::move(Model)), Classes(NumClasses),
      ModelName(std::move(Name)) {
  assert(this->Model && "null model");
}

std::unique_ptr<Classifier> NNClassifier::clone() const {
  if (!Builder)
    return nullptr;
  std::unique_ptr<Sequential> Fresh = Builder();
  assert(Fresh && "model builder returned null");

  // parameters()/buffers() are non-const traversals but do not mutate the
  // model; the source stays logically untouched.
  Sequential &Src = *Model;
  const std::vector<ParamRef> SrcParams = Src.parameters();
  const std::vector<ParamRef> DstParams = Fresh->parameters();
  assert(SrcParams.size() == DstParams.size() &&
         "builder architecture mismatch");
  for (size_t I = 0; I != SrcParams.size(); ++I) {
    assert(SrcParams[I].Name == DstParams[I].Name &&
           "builder architecture mismatch");
    *DstParams[I].Value = *SrcParams[I].Value;
  }
  const auto SrcBufs = Src.buffers();
  const auto DstBufs = Fresh->buffers();
  assert(SrcBufs.size() == DstBufs.size() && "builder buffer mismatch");
  for (size_t I = 0; I != SrcBufs.size(); ++I) {
    assert(SrcBufs[I].first == DstBufs[I].first && "builder buffer mismatch");
    *DstBufs[I].second = *SrcBufs[I].second;
  }

  auto Out =
      std::make_unique<NNClassifier>(std::move(Fresh), Classes, ModelName);
  Out->setModelBuilder(Builder);
  return Out;
}

std::vector<std::vector<float>> NNClassifier::scoresBatch(
    std::span<const Image> Imgs) {
  if (Imgs.empty())
    return {};
  // The batch-1 path keeps its dedicated scratch so interleaved single
  // queries never reshape the batch buffer (and vice versa).
  if (Imgs.size() == 1)
    return {scores(Imgs[0])};

  const size_t N = Imgs.size();
  const size_t H = Imgs[0].height(), W = Imgs[0].width();
  if (BatchInputScratch.rank() != 4 || BatchInputScratch.dim(0) != N ||
      BatchInputScratch.dim(2) != H || BatchInputScratch.dim(3) != W)
    BatchInputScratch = Tensor({N, 3, H, W});
  for (size_t I = 0; I != N; ++I) {
    assert(Imgs[I].height() == H && Imgs[I].width() == W &&
           "mixed image shapes in one batch");
    Imgs[I].writeToTensorBatch(BatchInputScratch, I);
  }

  Tensor Logits = Model->forward(BatchInputScratch, /*Train=*/false);
  assert(Logits.numel() == N * Classes && "model output size mismatch");
  Tensor Probs = Logits.reshaped({N, Classes});
  softmaxInPlace(Probs);

  std::vector<std::vector<float>> Out(N);
  const float *Src = Probs.data();
  for (size_t I = 0; I != N; ++I)
    Out[I].assign(Src + I * Classes, Src + (I + 1) * Classes);
  return Out;
}

std::vector<float> NNClassifier::scores(const Image &Img) {
  if (InputScratch.rank() != 4 || InputScratch.dim(2) != Img.height() ||
      InputScratch.dim(3) != Img.width())
    InputScratch = Tensor({1, 3, Img.height(), Img.width()});
  Img.writeToTensor(InputScratch);
  Tensor Logits = Model->forward(InputScratch, /*Train=*/false);
  assert(Logits.numel() == Classes && "model output size mismatch");
  Tensor Probs = Logits.reshaped({Classes});
  softmaxInPlace(Probs);
  return Probs.vec();
}
