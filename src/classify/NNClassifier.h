//===- classify/NNClassifier.h - nn::Sequential adapter ---------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_CLASSIFY_NNCLASSIFIER_H
#define OPPSLA_CLASSIFY_NNCLASSIFIER_H

#include "classify/Classifier.h"
#include "nn/Sequential.h"

#include <memory>
#include <string>

namespace oppsla {

/// Adapts a trained Sequential CNN to the black-box Classifier interface.
/// Runs inference mode (running batchnorm statistics, no dropout) and
/// returns softmax probabilities, so the DSL's score_diff thresholds live
/// in [0,1] like the paper's example program.
class NNClassifier : public Classifier {
public:
  /// Takes ownership of \p Model. \p Name is used in logs and tables.
  NNClassifier(std::unique_ptr<Sequential> Model, size_t NumClasses,
               std::string Name);

  std::vector<float> scores(const Image &Img) override;
  size_t numClasses() const override { return Classes; }

  const std::string &name() const { return ModelName; }
  Sequential &model() { return *Model; }

private:
  std::unique_ptr<Sequential> Model;
  size_t Classes;
  std::string ModelName;
  Tensor InputScratch; ///< reused {1,3,H,W} buffer
};

} // namespace oppsla

#endif // OPPSLA_CLASSIFY_NNCLASSIFIER_H
