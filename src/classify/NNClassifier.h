//===- classify/NNClassifier.h - nn::Sequential adapter ---------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_CLASSIFY_NNCLASSIFIER_H
#define OPPSLA_CLASSIFY_NNCLASSIFIER_H

#include "classify/Classifier.h"
#include "nn/Sequential.h"

#include <functional>
#include <memory>
#include <string>

namespace oppsla {

/// Adapts a trained Sequential CNN to the black-box Classifier interface.
/// Runs inference mode (running batchnorm statistics, no dropout) and
/// returns softmax probabilities, so the DSL's score_diff thresholds live
/// in [0,1] like the paper's example program.
class NNClassifier : public Classifier {
public:
  /// Builds a structurally identical untrained model; weight contents are
  /// irrelevant (clone() overwrites them from the source model).
  using ModelBuilder = std::function<std::unique_ptr<Sequential>()>;

  /// Takes ownership of \p Model. \p Name is used in logs and tables.
  NNClassifier(std::unique_ptr<Sequential> Model, size_t NumClasses,
               std::string Name);

  std::vector<float> scores(const Image &Img) override;

  /// Batched inference: assembles one {N, 3, H, W} tensor and runs a
  /// single forward through the Sequential. Every layer's inference path
  /// treats batch items independently with identical accumulation order,
  /// so result[i] is bit-identical to scores(Imgs[i]) — verified per
  /// architecture by tests/classify/BatchForwardTest.cpp.
  std::vector<std::vector<float>> scoresBatch(
      std::span<const Image> Imgs) override;

  size_t numClasses() const override { return Classes; }

  /// Installs the architecture rebuilder that makes this classifier
  /// cloneable (layers carry forward-pass scratch state, so clones need a
  /// fresh structural copy, not a pointer share). makeVictim() installs
  /// one automatically.
  void setModelBuilder(ModelBuilder B) { Builder = std::move(B); }

  /// Deep copy: rebuilds the architecture via the installed ModelBuilder
  /// and copies every parameter and persistent buffer. Returns nullptr if
  /// no builder was installed.
  std::unique_ptr<Classifier> clone() const override;

  const std::string &name() const { return ModelName; }
  Sequential &model() { return *Model; }

private:
  std::unique_ptr<Sequential> Model;
  size_t Classes;
  std::string ModelName;
  ModelBuilder Builder;
  Tensor InputScratch;      ///< reused {1,3,H,W} buffer
  Tensor BatchInputScratch; ///< reused {N,3,H,W} buffer for scoresBatch
};

} // namespace oppsla

#endif // OPPSLA_CLASSIFY_NNCLASSIFIER_H
