//===- classify/Training.h - Victim classifier training ---------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Training harness for the victim classifiers: mini-batch SGD over a
/// Dataset with cross-entropy loss, plus a factory that builds, trains and
/// (optionally) disk-caches a classifier for a (task, architecture, seed)
/// triple so benchmark binaries don't retrain on every run.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_CLASSIFY_TRAINING_H
#define OPPSLA_CLASSIFY_TRAINING_H

#include "classify/NNClassifier.h"
#include "data/Augment.h"
#include "data/Synthetic.h"
#include "nn/ModelZoo.h"

#include <memory>
#include <string>

namespace oppsla {

class Rng;

/// Knobs for trainClassifier.
struct TrainConfig {
  size_t Epochs = 4;
  size_t BatchSize = 32;
  float Lr = 0.05f;
  float Momentum = 0.9f;
  float WeightDecay = 0.0f; // overfit like the paper's pretrained victims
  /// Multiply Lr by this factor after each epoch (mild decay).
  float LrDecay = 0.8f;
  /// Label smoothing for the cross-entropy targets; keeps the victims'
  /// confidence margins realistic (never exactly 1.0).
  float LabelSmoothing = 0.2f;
  /// Opt-in training-time augmentation. Off by default: flips/cutout make
  /// victims measurably *harder* to one pixel attack (see the robustness
  /// ablation bench), so the default victims match the paper's
  /// plainly-trained ones.
  bool UseAugment = false;
  AugmentConfig Augment;
};

/// Result of a training run.
struct TrainResult {
  float FinalLoss = 0.0f;
  float TrainAccuracy = 0.0f;
};

/// Trains \p Model on \p Data with shuffled mini-batches.
TrainResult trainClassifier(Sequential &Model, const Dataset &Data,
                            const TrainConfig &Config, Rng &R);

/// Fraction of \p Data classified correctly by \p Model (inference mode).
float evalAccuracy(Sequential &Model, const Dataset &Data);

/// Identifies a victim classifier to build or fetch from cache.
struct VictimSpec {
  TaskKind Task = TaskKind::CifarLike;
  Arch Architecture = Arch::MiniVGG;
  uint64_t Seed = 1;
  size_t TrainImagesPerClass = 150;
  size_t NumClasses = 10;
  size_t Side = 0; ///< 0 = task default
  TrainConfig Train;

  /// Stable cache file stem, e.g. "cifar-like_MiniVGG_s1_n150_e4".
  std::string cacheStem() const;
};

/// Builds and trains (or loads from cache) the victim classifier described
/// by \p Spec. Cache directory is $OPPSLA_CACHE_DIR or ".oppsla-cache";
/// pass CacheEnabled=false to force retraining.
std::unique_ptr<NNClassifier> makeVictim(const VictimSpec &Spec,
                                         bool CacheEnabled = true);

} // namespace oppsla

#endif // OPPSLA_CLASSIFY_TRAINING_H
