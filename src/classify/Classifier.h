//===- classify/Classifier.h - Black-box classifier interface ---*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The black-box classifier interface the attacks query. Matches the
/// paper's threat model: the attacker can only submit images and observe
/// the output score vector N(x) (here: softmax probabilities), never
/// gradients or weights.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_CLASSIFY_CLASSIFIER_H
#define OPPSLA_CLASSIFY_CLASSIFIER_H

#include "data/Image.h"

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

namespace oppsla {

/// Abstract black-box image classifier.
class Classifier {
public:
  virtual ~Classifier();

  /// Returns the score vector N(x); size equals numClasses().
  virtual std::vector<float> scores(const Image &Img) = 0;

  /// Batched query: element i is N(Imgs[i]). The contract every override
  /// must keep is bit-identity with the serial path — result[i] equals
  /// scores(Imgs[i]) byte for byte, for any batch size — so callers may
  /// batch or not batch freely without changing a single result. The
  /// default implementation is that serial loop.
  virtual std::vector<std::vector<float>> scoresBatch(
      std::span<const Image> Imgs);

  /// Hint that the caller expects to query these images soon. Plain
  /// classifiers ignore it; a memoizing engine (engine/QueryEngine.h) runs
  /// the batched forward now and answers the later scores() calls from its
  /// cache. Never counts as a logical query anywhere.
  virtual void prefetch(std::span<const Image> Imgs) { (void)Imgs; }

  /// True when prefetch() actually does something (i.e. a memoizing layer
  /// sits below). Attacks gate candidate speculation on this so plain
  /// classifiers do not pay for image copies that would be thrown away.
  virtual bool prefetchable() const { return false; }

  /// Number of classes in the score vector.
  virtual size_t numClasses() const = 0;

  /// An independent copy answering identically to this classifier, or
  /// nullptr when the classifier cannot be duplicated. scores() is allowed
  /// to mutate internal scratch state, so parallel evaluation gives every
  /// worker thread its own clone; a nullptr makes the sweeps fall back to
  /// serial execution.
  virtual std::unique_ptr<Classifier> clone() const { return nullptr; }

  /// argmax(N(x)).
  size_t predict(const Image &Img);
};

/// Returns the argmax index of \p Scores; asserts non-empty.
size_t argmaxScore(const std::vector<float> &Scores);

} // namespace oppsla

#endif // OPPSLA_CLASSIFY_CLASSIFIER_H
