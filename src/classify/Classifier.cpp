//===- classify/Classifier.cpp - Black-box classifier interface --------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "classify/Classifier.h"

#include <cassert>

using namespace oppsla;

Classifier::~Classifier() = default;

std::vector<std::vector<float>> Classifier::scoresBatch(
    std::span<const Image> Imgs) {
  std::vector<std::vector<float>> Out;
  Out.reserve(Imgs.size());
  for (const Image &Img : Imgs)
    Out.push_back(scores(Img));
  return Out;
}

size_t Classifier::predict(const Image &Img) {
  return argmaxScore(scores(Img));
}

size_t oppsla::argmaxScore(const std::vector<float> &Scores) {
  assert(!Scores.empty() && "argmax of empty score vector");
  size_t Best = 0;
  for (size_t I = 1; I != Scores.size(); ++I)
    if (Scores[I] > Scores[Best])
      Best = I;
  return Best;
}
