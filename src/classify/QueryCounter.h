//===- classify/QueryCounter.h - Query accounting wrapper -------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Query accounting is the paper's central metric: every attack is scored
/// by how many times it submits an image to the classifier. QueryCounter
/// wraps any Classifier, counts every scores() call, and optionally
/// enforces a hard budget. Exceeding the budget makes exhausted() true and
/// subsequent calls return an empty vector, which attack loops treat as
/// "stop, attack failed".
///
/// The counter is shareable across the query engine's batch submissions:
/// the count is a relaxed atomic claimed via CAS, and a batch is granted a
/// *prefix* of its images under the budget (images past the grant get an
/// empty score vector, exactly as serial over-budget calls would). Logical
/// charging is per-image in deterministic index order, so a batch of N
/// costs precisely what N serial queries cost — batching never changes
/// avgQueries.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_CLASSIFY_QUERYCOUNTER_H
#define OPPSLA_CLASSIFY_QUERYCOUNTER_H

#include "classify/Classifier.h"
#include "support/Trace.h"

#include <atomic>
#include <cstdint>
#include <limits>

namespace oppsla {

/// Counting / budget-enforcing classifier decorator.
///
/// When the telemetry trace sink is open, every counted query also emits a
/// `query` event carrying the query index, the predicted class, and the
/// margin (to the true class when set via setTraceTrueClass, else
/// top1 - top2) — the raw per-query series behind the paper's
/// queries-to-the-classifier metric.
class QueryCounter : public Classifier {
public:
  static constexpr uint64_t Unlimited =
      std::numeric_limits<uint64_t>::max();

  /// Wraps \p Inner (not owned) with a per-lifetime \p Budget.
  explicit QueryCounter(Classifier &Inner, uint64_t Budget = Unlimited)
      : Inner(Inner), Budget(Budget) {}

  std::vector<float> scores(const Image &Img) override {
    const Claim C = claim(1);
    if (C.Granted == 0)
      return {};
    std::vector<float> S = Inner.scores(Img);
    if (telemetry::traceEnabled())
      emitQueryEvent(S, C.Base + 1);
    return S;
  }

  /// Charges one logical query per image, in index order. Under a budget
  /// the submission is granted a prefix: the first remaining() images are
  /// queried, the rest come back as empty vectors (and the counter is
  /// exhausted), mirroring what the same images would see serially.
  std::vector<std::vector<float>> scoresBatch(
      std::span<const Image> Imgs) override;

  /// Forwards up to remaining() images to the inner classifier's
  /// speculative prefetch. Prefetching is never charged: it is the engine
  /// warming its cache, not the attack querying the model.
  void prefetch(std::span<const Image> Imgs) override;
  bool prefetchable() const override { return Inner.prefetchable(); }

  size_t numClasses() const override { return Inner.numClasses(); }

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  uint64_t budget() const { return Budget; }
  bool exhausted() const {
    return Exhausted.load(std::memory_order_relaxed);
  }
  /// Queries left under the budget; an Unlimited budget stays Unlimited
  /// rather than shrinking arithmetically (Unlimited is a sentinel, not a
  /// number of queries).
  uint64_t remaining() const {
    return Budget == Unlimited ? Unlimited : Budget - count();
  }

  /// Resets the counter (and exhaustion) for a fresh attack; optionally
  /// installs a new budget. Not safe concurrently with in-flight queries.
  void reset(uint64_t NewBudget) {
    Count.store(0, std::memory_order_relaxed);
    Exhausted.store(false, std::memory_order_relaxed);
    Budget = NewBudget;
  }
  void reset() { reset(Budget); }

  /// Stamps the attacked image's true class onto per-query trace events so
  /// their margin field is the paper's untargeted margin.
  void setTraceTrueClass(size_t TrueClass) {
    HasTrueClass = true;
    this->TrueClass = TrueClass;
  }

private:
  /// Result of atomically claiming budget: queries [Base+1, Base+Granted]
  /// belong to the caller.
  struct Claim {
    uint64_t Base;
    uint64_t Granted;
  };

  /// CAS-claims up to \p N queries. Grants the largest prefix the budget
  /// allows; a partial (or zero) grant marks the counter exhausted.
  Claim claim(uint64_t N);

  /// Cold path: emits the per-query trace event (tracing enabled only).
  /// \p Idx is the 1-based query index the scores belong to.
  void emitQueryEvent(const std::vector<float> &Scores, uint64_t Idx) const;

  Classifier &Inner;
  uint64_t Budget;
  std::atomic<uint64_t> Count{0};
  std::atomic<bool> Exhausted{false};
  bool HasTrueClass = false;
  size_t TrueClass = 0;
};

} // namespace oppsla

#endif // OPPSLA_CLASSIFY_QUERYCOUNTER_H
