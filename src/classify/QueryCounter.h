//===- classify/QueryCounter.h - Query accounting wrapper -------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Query accounting is the paper's central metric: every attack is scored
/// by how many times it submits an image to the classifier. QueryCounter
/// wraps any Classifier, counts every scores() call, and optionally
/// enforces a hard budget. Exceeding the budget makes exhausted() true and
/// subsequent calls return an empty vector, which attack loops treat as
/// "stop, attack failed".
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_CLASSIFY_QUERYCOUNTER_H
#define OPPSLA_CLASSIFY_QUERYCOUNTER_H

#include "classify/Classifier.h"
#include "support/Trace.h"

#include <cstdint>
#include <limits>

namespace oppsla {

/// Counting / budget-enforcing classifier decorator.
///
/// When the telemetry trace sink is open, every counted query also emits a
/// `query` event carrying the query index, the predicted class, and the
/// margin (to the true class when set via setTraceTrueClass, else
/// top1 - top2) — the raw per-query series behind the paper's
/// queries-to-the-classifier metric.
class QueryCounter : public Classifier {
public:
  static constexpr uint64_t Unlimited =
      std::numeric_limits<uint64_t>::max();

  /// Wraps \p Inner (not owned) with a per-lifetime \p Budget.
  explicit QueryCounter(Classifier &Inner, uint64_t Budget = Unlimited)
      : Inner(Inner), Budget(Budget) {}

  std::vector<float> scores(const Image &Img) override {
    if (Count >= Budget) {
      Exhausted = true;
      return {};
    }
    ++Count;
    std::vector<float> S = Inner.scores(Img);
    if (telemetry::traceEnabled())
      emitQueryEvent(S);
    return S;
  }

  size_t numClasses() const override { return Inner.numClasses(); }

  uint64_t count() const { return Count; }
  uint64_t budget() const { return Budget; }
  bool exhausted() const { return Exhausted; }
  /// Queries left under the budget; an Unlimited budget stays Unlimited
  /// rather than shrinking arithmetically (Unlimited is a sentinel, not a
  /// number of queries).
  uint64_t remaining() const {
    return Budget == Unlimited ? Unlimited : Budget - Count;
  }

  /// Resets the counter (and exhaustion) for a fresh attack; optionally
  /// installs a new budget.
  void reset(uint64_t NewBudget) {
    Count = 0;
    Exhausted = false;
    Budget = NewBudget;
  }
  void reset() { reset(Budget); }

  /// Stamps the attacked image's true class onto per-query trace events so
  /// their margin field is the paper's untargeted margin.
  void setTraceTrueClass(size_t TrueClass) {
    HasTrueClass = true;
    this->TrueClass = TrueClass;
  }

private:
  /// Cold path: emits the per-query trace event (tracing enabled only).
  void emitQueryEvent(const std::vector<float> &Scores) const;

  Classifier &Inner;
  uint64_t Budget;
  uint64_t Count = 0;
  bool Exhausted = false;
  bool HasTrueClass = false;
  size_t TrueClass = 0;
};

} // namespace oppsla

#endif // OPPSLA_CLASSIFY_QUERYCOUNTER_H
