//===- classify/QueryCounter.cpp - Query accounting wrapper ------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "classify/QueryCounter.h"

using namespace oppsla;

void QueryCounter::emitQueryEvent(const std::vector<float> &Scores) const {
  if (Scores.empty())
    return;
  // Predicted class and margin. With a true class set this is the paper's
  // untargeted margin f_c(x) - max_{j != c} f_j(x) (negative iff
  // misclassified); otherwise the generic top1 - top2 confidence gap.
  size_t Pred = 0;
  for (size_t I = 1; I != Scores.size(); ++I)
    if (Scores[I] > Scores[Pred])
      Pred = I;
  double Margin;
  if (HasTrueClass && TrueClass < Scores.size()) {
    double BestOther = -1.0;
    for (size_t I = 0; I != Scores.size(); ++I)
      if (I != TrueClass)
        BestOther = std::max(BestOther, static_cast<double>(Scores[I]));
    Margin = static_cast<double>(Scores[TrueClass]) - BestOther;
  } else {
    double Second = -1.0;
    for (size_t I = 0; I != Scores.size(); ++I)
      if (I != Pred)
        Second = std::max(Second, static_cast<double>(Scores[I]));
    Margin = static_cast<double>(Scores[Pred]) - Second;
  }
  telemetry::traceEvent("query", {{"idx", Count},
                                  {"image", telemetry::traceImage()},
                                  {"pred", Pred},
                                  {"margin", Margin}});
}
