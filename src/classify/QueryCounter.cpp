//===- classify/QueryCounter.cpp - Query accounting wrapper ------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "classify/QueryCounter.h"

#include <algorithm>

using namespace oppsla;

QueryCounter::Claim QueryCounter::claim(uint64_t N) {
  if (N == 0)
    return {count(), 0};
  uint64_t Cur = Count.load(std::memory_order_relaxed);
  for (;;) {
    if (Cur >= Budget) {
      Exhausted.store(true, std::memory_order_relaxed);
      return {Cur, 0};
    }
    const uint64_t Grant = std::min(N, Budget - Cur);
    if (Count.compare_exchange_weak(Cur, Cur + Grant,
                                    std::memory_order_relaxed)) {
      if (Grant < N)
        Exhausted.store(true, std::memory_order_relaxed);
      return {Cur, Grant};
    }
  }
}

std::vector<std::vector<float>> QueryCounter::scoresBatch(
    std::span<const Image> Imgs) {
  std::vector<std::vector<float>> Out(Imgs.size());
  if (Imgs.empty())
    return Out;
  const Claim C = claim(Imgs.size());
  if (C.Granted == 0)
    return Out;
  std::vector<std::vector<float>> S =
      Inner.scoresBatch(Imgs.first(C.Granted));
  for (size_t I = 0; I != C.Granted; ++I) {
    if (telemetry::traceEnabled())
      emitQueryEvent(S[I], C.Base + I + 1);
    Out[I] = std::move(S[I]);
  }
  return Out;
}

void QueryCounter::prefetch(std::span<const Image> Imgs) {
  const uint64_t Rem = remaining();
  if (Rem == 0)
    return;
  const size_t N = static_cast<size_t>(
      std::min<uint64_t>(Rem, Imgs.size()));
  Inner.prefetch(Imgs.first(N));
}

void QueryCounter::emitQueryEvent(const std::vector<float> &Scores,
                                  uint64_t Idx) const {
  if (Scores.empty())
    return;
  // Predicted class and margin. With a true class set this is the paper's
  // untargeted margin f_c(x) - max_{j != c} f_j(x) (negative iff
  // misclassified); otherwise the generic top1 - top2 confidence gap.
  size_t Pred = 0;
  for (size_t I = 1; I != Scores.size(); ++I)
    if (Scores[I] > Scores[Pred])
      Pred = I;
  double Margin;
  if (HasTrueClass && TrueClass < Scores.size()) {
    double BestOther = -1.0;
    for (size_t I = 0; I != Scores.size(); ++I)
      if (I != TrueClass)
        BestOther = std::max(BestOther, static_cast<double>(Scores[I]));
    Margin = static_cast<double>(Scores[TrueClass]) - BestOther;
  } else {
    double Second = -1.0;
    for (size_t I = 0; I != Scores.size(); ++I)
      if (I != Pred)
        Second = std::max(Second, static_cast<double>(Scores[I]));
    Margin = static_cast<double>(Scores[Pred]) - Second;
  }
  telemetry::traceEvent("query", {{"idx", Idx},
                                  {"image", telemetry::traceImage()},
                                  {"pred", Pred},
                                  {"margin", Margin}});
}
