//===- eval/Evaluation.h - Attack evaluation harness ------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement harness behind the paper's evaluation: runs attacks
/// over test sets, records per-image query counts, and derives the
/// paper's metrics (success rate at a query budget, average and median
/// queries over successes). Misclassified test images are discarded
/// exactly as in Section 5.
///
/// The success-rate-at-budget curves exploit the prefix property: an
/// attack run with budget B that succeeds after q <= B queries would have
/// succeeded identically with any budget in [q, B], so one run per image
/// yields the whole curve.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_EVAL_EVALUATION_H
#define OPPSLA_EVAL_EVALUATION_H

#include "attacks/Attack.h"
#include "core/Condition.h"
#include "support/Stats.h"

#include <vector>

namespace oppsla {

/// Per-image record of one attack run.
struct AttackRunLog {
  size_t Label = 0;        ///< true class of the image
  bool Discarded = false;  ///< clean image was misclassified
  bool Success = false;
  uint64_t Queries = 0;
};

/// Runs \p A on every image of \p TestSet with \p Budget queries each.
///
/// With \p Threads > 1 the images are attacked by a worker pool; every
/// worker operates on its own Attack::clone() and Classifier::clone(), so
/// the result vector is bit-identical to the serial sweep (each run's
/// outcome is a pure function of the attack seed and the image — see
/// Attack::attack()). Falls back to serial execution when the classifier
/// is not cloneable.
std::vector<AttackRunLog> runAttackOverSet(Attack &A, Classifier &N,
                                           const Dataset &TestSet,
                                           uint64_t Budget,
                                           size_t Threads = 1);

/// Runs the per-class adversarial programs over \p TestSet: the image's
/// label selects the program (the paper synthesizes one program per class
/// training set). \p Programs must have one entry per class in use.
/// \p Threads parallelizes the sweep as in runAttackOverSet.
std::vector<AttackRunLog> runProgramsOverSet(
    const std::vector<Program> &Programs, Classifier &N,
    const Dataset &TestSet, uint64_t Budget, size_t Threads = 1);

/// Collapses run logs into the QuerySample statistics (discarded images
/// are excluded entirely).
QuerySample toQuerySample(const std::vector<AttackRunLog> &Logs);

/// Success rate counting only successes within \p Budget queries, over
/// all non-discarded images.
double successRateAt(const std::vector<AttackRunLog> &Logs, uint64_t Budget);

} // namespace oppsla

#endif // OPPSLA_EVAL_EVALUATION_H
