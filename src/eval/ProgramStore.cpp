//===- eval/ProgramStore.cpp - Content-addressed program store ---------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "eval/ProgramStore.h"

#include "support/Json.h"
#include "support/Logging.h"
#include "support/Metrics.h"
#include "wire/Wire.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>

using namespace oppsla;

//===----------------------------------------------------------------------===//
// Key
//===----------------------------------------------------------------------===//

std::string ProgramStoreKey::canonical() const {
  char Buf[64];
  std::string S = "dsl=";
  S += std::to_string(Dsl);
  S += " victim=";
  S += VictimStem;
  S += " cls=";
  S += std::to_string(Label);
  S += " iters=";
  S += std::to_string(MaxIter);
  std::snprintf(Buf, sizeof(Buf), " beta=%.17g", Beta);
  S += Buf;
  S += " cap=";
  S += std::to_string(QueryCap);
  S += " seed=";
  S += std::to_string(Seed);
  S += " islands=";
  S += std::to_string(Islands);
  S += " exch=";
  // A single chain never exchanges: normalize so islands=1 runs with
  // different ExchangeInterval settings share one entry.
  S += std::to_string(Islands > 1 ? ExchangeInterval : 0);
  S += " train=";
  S += std::to_string(TrainPerClass);
  return S;
}

uint64_t ProgramStoreKey::hash() const {
  // FNV-1a 64.
  uint64_t H = 1469598103934665603ULL;
  for (unsigned char C : canonical()) {
    H ^= C;
    H *= 1099511628211ULL;
  }
  return H;
}

//===----------------------------------------------------------------------===//
// Program text round-trip
//===----------------------------------------------------------------------===//

std::string oppsla::programToStoreText(const Program &P) {
  std::string Out;
  char Line[128];
  for (const Condition &C : P.Conds) {
    std::snprintf(Line, sizeof(Line), "%d %d %d %.17g\n",
                  static_cast<int>(C.Func), static_cast<int>(C.Source),
                  static_cast<int>(C.Cmp), C.Threshold);
    Out += Line;
  }
  return Out;
}

bool oppsla::programFromStoreText(const std::string &Text, Program &P) {
  std::istringstream In(Text);
  Program Out;
  for (Condition &C : Out.Conds) {
    std::string Line;
    if (!std::getline(In, Line))
      return false;
    int Func = 0, Source = 0, Cmp = 0;
    double Threshold = 0.0;
    if (std::sscanf(Line.c_str(), "%d %d %d %lg", &Func, &Source, &Cmp,
                    &Threshold) != 4)
      return false;
    if (Func < 0 || Func >= static_cast<int>(NumFuncKinds) || Source < 0 ||
        Source > 1 || Cmp < 0 || Cmp > 1)
      return false;
    C.Func = static_cast<FuncKind>(Func);
    C.Source = static_cast<PixelSource>(Source);
    C.Cmp = static_cast<CmpKind>(Cmp);
    C.Threshold = Threshold;
  }
  P = Out;
  return true;
}

//===----------------------------------------------------------------------===//
// Portfolio selection
//===----------------------------------------------------------------------===//

const StoredProgram &
oppsla::selectFromPortfolio(const std::vector<StoredProgram> &Portfolio) {
  assert(!Portfolio.empty() && "empty portfolio");
  const StoredProgram *Best = nullptr;
  for (const StoredProgram &S : Portfolio) {
    if (S.Successes == 0)
      continue;
    if (!Best || S.AvgQueries < Best->AvgQueries)
      Best = &S;
  }
  return Best ? *Best : Portfolio.front();
}

//===----------------------------------------------------------------------===//
// Store
//===----------------------------------------------------------------------===//

ProgramStore::ProgramStore(std::string R) : Root(std::move(R)) {
  if (Root.empty())
    Root = defaultRoot();
}

std::string ProgramStore::defaultRoot() {
  std::string Cache = ".oppsla-cache";
  if (const char *Env = std::getenv("OPPSLA_CACHE_DIR"))
    Cache = Env;
  return Cache + "/programs";
}

std::string ProgramStore::entryPath(const ProgramStoreKey &K) const {
  char Hex[32];
  std::snprintf(Hex, sizeof(Hex), "%016llx",
                static_cast<unsigned long long>(K.hash()));
  return Root + "/" + Hex + ".opwf";
}

bool ProgramStore::load(const ProgramStoreKey &K,
                        std::vector<StoredProgram> &Portfolio) const {
  static telemetry::Counter &Hits = telemetry::counter("synth.store.hits");
  static telemetry::Counter &Misses =
      telemetry::counter("synth.store.misses");
  const std::string Path = entryPath(K);

  auto Miss = [&](const char *Why, bool Log) {
    if (Log)
      logWarn() << "program store entry " << Path << " rejected (" << Why
                << "); falling back to synthesis";
    Misses.inc();
    return false;
  };

  wire::WireContents Contents;
  std::string Error;
  {
    std::error_code EC;
    if (!std::filesystem::exists(Path, EC))
      return Miss("absent", /*Log=*/false);
  }
  // The wire reader is all-or-nothing: a truncated file, a bad magic, or
  // any failed record CRC rejects the whole entry.
  if (!wire::readWireFile(Path, Contents, Error))
    return Miss(Error.c_str(), /*Log=*/true);

  json::Value Meta;
  if (!json::parse(Contents.JobSpecJson, Meta, Error))
    return Miss("unparseable metadata", /*Log=*/true);
  // Byte-verify the key: content addressing only picks the file name, the
  // canonical string is the entry's real identity.
  if (Meta.getString("store_key") != K.canonical())
    return Miss("key mismatch", /*Log=*/true);
  const json::Value *Stats = Meta.find("programs");
  if (!Stats || !Stats->isArray())
    return Miss("missing program stats", /*Log=*/true);
  if (Contents.Programs.empty() ||
      Stats->array().size() != Contents.Programs.size())
    return Miss("stats/program count mismatch", /*Log=*/true);

  std::vector<StoredProgram> Out;
  Out.reserve(Contents.Programs.size());
  for (size_t I = 0; I != Contents.Programs.size(); ++I) {
    StoredProgram S;
    if (!programFromStoreText(Contents.Programs[I], S.P))
      return Miss("unparseable program", /*Log=*/true);
    const json::Value &V = Stats->array()[I];
    S.AvgQueries = V.getNumber("avg_queries");
    S.Successes = static_cast<size_t>(V.getNumber("successes"));
    S.Attacks = static_cast<size_t>(V.getNumber("attacks"));
    Out.push_back(std::move(S));
  }
  Portfolio = std::move(Out);
  Hits.inc();
  return true;
}

bool ProgramStore::save(const ProgramStoreKey &K,
                        const std::vector<StoredProgram> &Portfolio) const {
  if (Portfolio.empty())
    return false;
  std::error_code EC;
  std::filesystem::create_directories(Root, EC);

  std::string Meta = "{\"store_key\":\"";
  json::escape(Meta, K.canonical());
  Meta += "\",\"programs\":[";
  char Buf[128];
  for (size_t I = 0; I != Portfolio.size(); ++I) {
    const StoredProgram &S = Portfolio[I];
    if (I)
      Meta += ",";
    // %.17g so AvgQueries round-trips exactly: portfolio selection on a
    // rehydrated entry must match selection on the live elites.
    std::snprintf(Buf, sizeof(Buf),
                  "{\"avg_queries\":%.17g,\"successes\":%zu,\"attacks\":%zu}",
                  S.AvgQueries, S.Successes, S.Attacks);
    Meta += Buf;
  }
  Meta += "]}";

  wire::WireBuilder Builder;
  Builder.addJobSpecJson(Meta);
  for (const StoredProgram &S : Portfolio)
    Builder.addProgram(programToStoreText(S.P));

  std::string Error;
  if (!wire::writeFileAtomic(entryPath(K), Builder.finish(), Error)) {
    logWarn() << "program store write failed: " << Error;
    return false;
  }
  return true;
}
