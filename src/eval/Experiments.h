//===- eval/Experiments.h - Shared experiment setup -------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Common setup shared by the bench binaries and examples: building the
/// scaled victim classifiers (the paper's three CIFAR CNNs and two
/// ImageNet CNNs), generating held-out test sets, and synthesizing — or
/// loading from the disk cache — the per-class adversarial programs.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_EVAL_EXPERIMENTS_H
#define OPPSLA_EVAL_EXPERIMENTS_H

#include "classify/Training.h"
#include "core/Synthesizer.h"
#include "support/BenchScale.h"

#include <memory>
#include <vector>

namespace oppsla {

/// The paper's CIFAR-10 victim families, in table order.
const std::vector<Arch> &cifarArchs();
/// The paper's ImageNet victim families.
const std::vector<Arch> &imageNetArchs();

/// Image side used for \p Task at this scale.
size_t taskSide(TaskKind Task, const BenchScale &Scale);

/// Builds (or loads from cache) the victim classifier for (\p Task,
/// \p Architecture) at this scale.
std::unique_ptr<NNClassifier> makeScaledVictim(TaskKind Task,
                                               Arch Architecture,
                                               const BenchScale &Scale,
                                               uint64_t Seed = 1);

/// The cache stem makeScaledVictim uses for this victim; also the key
/// under which its synthesized programs are cached.
std::string victimStem(TaskKind Task, Arch Architecture,
                       const BenchScale &Scale, uint64_t Seed = 1);

/// A held-out evaluation set: Scale.TestPerClass images for each of
/// Scale.NumClasses classes, generated from a seed disjoint from every
/// training seed.
Dataset makeTestSet(TaskKind Task, const BenchScale &Scale,
                    uint64_t Seed = 1);

/// Per-class synthesis training sets use this seed; disjoint from victim
/// training and test generation.
Dataset makeSynthesisSet(TaskKind Task, size_t Label,
                         const BenchScale &Scale, uint64_t Seed = 1);

/// Synthesizes one adversarial program per class for \p Victim (or loads
/// them from the program cache). Returns Scale.NumClasses programs.
/// The cache key includes \p VictimStem so programs synthesized for one
/// classifier are never reused for another. \p Threads parallelizes
/// candidate scoring (SynthesisConfig::Threads); the synthesized programs
/// are identical for any thread count, so the cache key ignores it.
std::vector<Program> synthesizeClassPrograms(NNClassifier &Victim,
                                             const std::string &VictimStem,
                                             TaskKind Task,
                                             const BenchScale &Scale,
                                             uint64_t Seed = 1,
                                             size_t Threads = 1);

/// Saves a program as a small text file. \returns true on success.
bool saveProgram(const Program &P, const std::string &Path);

/// Loads a program saved with saveProgram.
bool loadProgram(Program &P, const std::string &Path);

} // namespace oppsla

#endif // OPPSLA_EVAL_EXPERIMENTS_H
