//===- eval/Experiments.h - Shared experiment setup -------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Common setup shared by the bench binaries and examples: building the
/// scaled victim classifiers (the paper's three CIFAR CNNs and two
/// ImageNet CNNs), generating held-out test sets, and synthesizing — or
/// loading from the disk cache — the per-class adversarial programs.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_EVAL_EXPERIMENTS_H
#define OPPSLA_EVAL_EXPERIMENTS_H

#include "classify/Training.h"
#include "core/Synthesizer.h"
#include "support/BenchScale.h"

#include <memory>
#include <vector>

namespace oppsla {

/// The paper's CIFAR-10 victim families, in table order.
const std::vector<Arch> &cifarArchs();
/// The paper's ImageNet victim families.
const std::vector<Arch> &imageNetArchs();

/// Image side used for \p Task at this scale.
size_t taskSide(TaskKind Task, const BenchScale &Scale);

/// Builds (or loads from cache) the victim classifier for (\p Task,
/// \p Architecture) at this scale.
std::unique_ptr<NNClassifier> makeScaledVictim(TaskKind Task,
                                               Arch Architecture,
                                               const BenchScale &Scale,
                                               uint64_t Seed = 1);

/// The cache stem makeScaledVictim uses for this victim; also the key
/// under which its synthesized programs are cached.
std::string victimStem(TaskKind Task, Arch Architecture,
                       const BenchScale &Scale, uint64_t Seed = 1);

/// A held-out evaluation set: Scale.TestPerClass images for each of
/// Scale.NumClasses classes, generated from a seed disjoint from every
/// training seed.
Dataset makeTestSet(TaskKind Task, const BenchScale &Scale,
                    uint64_t Seed = 1);

/// Per-class synthesis training sets use this seed; disjoint from victim
/// training and test generation.
Dataset makeSynthesisSet(TaskKind Task, size_t Label,
                         const BenchScale &Scale, uint64_t Seed = 1);

/// How the synthesis phase runs: parallelism shape plus program-store
/// policy. Shared by the CLI commands, the benches, and the serve job
/// runner so they all spell the same knobs the same way.
struct SynthesisRunOptions {
  /// Worker threads (within-candidate scoring for Islands <= 1, across
  /// islands otherwise). Never part of any cache key: the synthesized
  /// programs are bit-identical at any thread count.
  size_t Threads = 1;
  size_t Islands = 1;          ///< SynthesisConfig::Islands
  size_t ExchangeInterval = 25; ///< SynthesisConfig::ExchangeInterval
  /// Rehydrate from / persist to the content-addressed program store.
  bool UseStore = true;
  /// Store directory; empty = ProgramStore::defaultRoot().
  std::string StoreRoot;
};

/// The per-class synthesis configuration every consumer agrees on (and
/// the source of truth for the program-store key): MaxIter/cap from the
/// scale, a per-class seed derived from \p Seed, parallelism and island
/// shape from \p Opts.
SynthesisConfig classSynthesisConfig(const BenchScale &Scale, size_t Label,
                                     uint64_t Seed,
                                     const SynthesisRunOptions &Opts);

/// Synthesizes the adversarial program for one (victim, class) — or
/// rehydrates it from the program store, where the winning elites of a
/// previous run are kept under a key covering everything the result is a
/// function of (DSL version, victim stem, class, synthesis config).
/// Candidate scoring is routed through a batched, cache-sharing
/// QueryEngine around \p Victim; by the engine-invariance contract this
/// never changes a result byte, only the physical forward count.
Program synthesizeClassProgram(NNClassifier &Victim,
                               const std::string &VictimStem, TaskKind Task,
                               const BenchScale &Scale, size_t Label,
                               uint64_t Seed,
                               const SynthesisRunOptions &Opts);

/// synthesizeClassProgram for every class; returns Scale.NumClasses
/// programs. The store key includes \p VictimStem so programs synthesized
/// for one classifier are never reused for another.
std::vector<Program> synthesizeClassPrograms(NNClassifier &Victim,
                                             const std::string &VictimStem,
                                             TaskKind Task,
                                             const BenchScale &Scale,
                                             uint64_t Seed,
                                             const SynthesisRunOptions &Opts);

/// Back-compat shim for the pre-island call sites.
std::vector<Program> synthesizeClassPrograms(NNClassifier &Victim,
                                             const std::string &VictimStem,
                                             TaskKind Task,
                                             const BenchScale &Scale,
                                             uint64_t Seed = 1,
                                             size_t Threads = 1);

/// Saves a program as a small text file. \returns true on success.
bool saveProgram(const Program &P, const std::string &Path);

/// Loads a program saved with saveProgram.
bool loadProgram(Program &P, const std::string &Path);

} // namespace oppsla

#endif // OPPSLA_EVAL_EXPERIMENTS_H
