//===- eval/Evaluation.cpp - Attack evaluation harness -----------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "eval/Evaluation.h"

#include "attacks/SketchAttack.h"
#include "support/Profiler.h"
#include "support/Progress.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <algorithm>
#include <atomic>
#include <future>

using namespace oppsla;

namespace {

/// Attacks image \p I of \p TestSet and records the outcome into a log
/// slot. Shared by the serial and parallel sweep paths so both produce
/// the same records.
AttackRunLog attackOne(Attack &A, Classifier &N, const Dataset &TestSet,
                       size_t I, uint64_t Budget) {
  telemetry::TraceImageScope Scope(static_cast<int64_t>(I));
  const AttackResult R =
      A.attack(N, TestSet.Images[I], TestSet.Labels[I], Budget);
  AttackRunLog Log;
  Log.Label = TestSet.Labels[I];
  Log.Discarded = R.AlreadyMisclassified;
  Log.Success = R.Success && !R.AlreadyMisclassified;
  Log.Queries = R.Queries;
  telemetry::progressItem(!Log.Discarded, Log.Success, Log.Queries);
  return Log;
}

/// Parallel sweep: every worker thread gets its own clone of the attack
/// and the classifier, and images are handed out dynamically. The result
/// slots are pre-sized, so assignment order does not affect the output;
/// per-run RNG isolation makes each slot's content independent of which
/// worker computed it.
///
/// Returns false (without touching \p Logs) when the classifier cannot be
/// cloned, in which case the caller runs the serial path.
bool runAttackOverSetParallel(Attack &A, Classifier &N,
                              const Dataset &TestSet, uint64_t Budget,
                              size_t Threads,
                              std::vector<AttackRunLog> &Logs) {
  const size_t Workers = std::min(Threads, TestSet.size());
  if (Workers < 2)
    return false;

  // Worker 0 reuses the caller's attack/classifier; the rest get clones.
  std::vector<std::unique_ptr<Attack>> AttackClones;
  std::vector<std::unique_ptr<Classifier>> ClassifierClones;
  for (size_t T = 1; T != Workers; ++T) {
    auto AC = A.clone();
    auto NC = N.clone();
    if (!AC || !NC)
      return false;
    AttackClones.push_back(std::move(AC));
    ClassifierClones.push_back(std::move(NC));
  }

  Logs.assign(TestSet.size(), AttackRunLog());
  ThreadPool Pool(Workers);
  std::atomic<size_t> Next{0};
  std::vector<std::future<void>> Futures;
  Futures.reserve(Workers);
  // Capture the submitting thread's ambient job context so worker spans
  // nest under the job's profile root and worker events carry its trace
  // id (pool threads outlive any one job).
  const char *ProfRoot = telemetry::ambientProfileRoot();
  const std::string TraceId = telemetry::traceContextId();
  for (size_t T = 0; T != Workers; ++T) {
    Attack *AT = T == 0 ? &A : AttackClones[T - 1].get();
    Classifier *NT = T == 0 ? &N : ClassifierClones[T - 1].get();
    Futures.push_back(Pool.submit([&, AT, NT] {
      telemetry::ProfileTaskScope Task(ProfRoot);
      telemetry::TraceContextScope Trace(TraceId);
      for (size_t I = Next.fetch_add(1); I < TestSet.size();
           I = Next.fetch_add(1))
        Logs[I] = attackOne(*AT, *NT, TestSet, I, Budget);
    }));
  }
  for (auto &F : Futures)
    F.get();
  return true;
}

} // namespace

std::vector<AttackRunLog> oppsla::runAttackOverSet(Attack &A, Classifier &N,
                                                   const Dataset &TestSet,
                                                   uint64_t Budget,
                                                   size_t Threads) {
  telemetry::ProfileScope Span("eval.sweep");
  telemetry::progressBegin("eval", TestSet.size());
  std::vector<AttackRunLog> Logs;
  if (Threads > 1 &&
      runAttackOverSetParallel(A, N, TestSet, Budget, Threads, Logs)) {
    telemetry::progressFinish();
    return Logs;
  }

  Logs.reserve(TestSet.size());
  for (size_t I = 0; I != TestSet.size(); ++I)
    Logs.push_back(attackOne(A, N, TestSet, I, Budget));
  telemetry::progressFinish();
  return Logs;
}

std::vector<AttackRunLog> oppsla::runProgramsOverSet(
    const std::vector<Program> &Programs, Classifier &N,
    const Dataset &TestSet, uint64_t Budget, size_t Threads) {
  // Per-image construction of the SketchAttack is cheap (programs are a
  // handful of ops), so each run builds the attack for its label locally;
  // that also makes the parallel path trivially race-free.
  auto RunOne = [&Programs, &TestSet, Budget](Classifier &NN,
                                              size_t I) -> AttackRunLog {
    telemetry::TraceImageScope Scope(static_cast<int64_t>(I));
    const size_t Label = TestSet.Labels[I];
    assert(Label < Programs.size() && "no program for this class");
    SketchAttack A(Programs[Label]);
    const AttackResult R = A.attack(NN, TestSet.Images[I], Label, Budget);
    AttackRunLog Log;
    Log.Label = Label;
    Log.Discarded = R.AlreadyMisclassified;
    Log.Success = R.Success && !R.AlreadyMisclassified;
    Log.Queries = R.Queries;
    telemetry::progressItem(!Log.Discarded, Log.Success, Log.Queries);
    return Log;
  };

  telemetry::ProfileScope Span("eval.sweep");
  telemetry::progressBegin("eval", TestSet.size());
  const size_t Workers = std::min(Threads, TestSet.size());
  if (Workers >= 2) {
    std::vector<std::unique_ptr<Classifier>> Clones;
    bool Cloneable = true;
    for (size_t T = 1; T != Workers && Cloneable; ++T) {
      auto NC = N.clone();
      if (!NC)
        Cloneable = false;
      else
        Clones.push_back(std::move(NC));
    }
    if (Cloneable) {
      std::vector<AttackRunLog> Logs(TestSet.size());
      ThreadPool Pool(Workers);
      std::atomic<size_t> Next{0};
      std::vector<std::future<void>> Futures;
      Futures.reserve(Workers);
      // Same ambient-context capture as runAttackOverSetParallel: worker
      // spans/events belong to the submitting job.
      const char *ProfRoot = telemetry::ambientProfileRoot();
      const std::string TraceId = telemetry::traceContextId();
      for (size_t T = 0; T != Workers; ++T) {
        Classifier *NT = T == 0 ? &N : Clones[T - 1].get();
        Futures.push_back(Pool.submit([&, NT] {
          telemetry::ProfileTaskScope Task(ProfRoot);
          telemetry::TraceContextScope Trace(TraceId);
          for (size_t I = Next.fetch_add(1); I < TestSet.size();
               I = Next.fetch_add(1))
            Logs[I] = RunOne(*NT, I);
        }));
      }
      for (auto &F : Futures)
        F.get();
      telemetry::progressFinish();
      return Logs;
    }
  }

  std::vector<AttackRunLog> Logs;
  Logs.reserve(TestSet.size());
  for (size_t I = 0; I != TestSet.size(); ++I)
    Logs.push_back(RunOne(N, I));
  telemetry::progressFinish();
  return Logs;
}

QuerySample oppsla::toQuerySample(const std::vector<AttackRunLog> &Logs) {
  QuerySample Sample;
  for (const AttackRunLog &Log : Logs) {
    if (Log.Discarded)
      continue;
    if (Log.Success)
      Sample.SuccessQueries.push_back(static_cast<double>(Log.Queries));
    else
      ++Sample.NumFailures;
  }
  return Sample;
}

double oppsla::successRateAt(const std::vector<AttackRunLog> &Logs,
                             uint64_t Budget) {
  size_t Within = 0, Total = 0;
  for (const AttackRunLog &Log : Logs) {
    if (Log.Discarded)
      continue;
    ++Total;
    if (Log.Success && Log.Queries <= Budget)
      ++Within;
  }
  if (Total == 0)
    return 0.0;
  return static_cast<double>(Within) / static_cast<double>(Total);
}
