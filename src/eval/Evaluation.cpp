//===- eval/Evaluation.cpp - Attack evaluation harness -----------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "eval/Evaluation.h"

#include "attacks/SketchAttack.h"
#include "support/Trace.h"

using namespace oppsla;

namespace {

/// Publishes the loop index as the ambient trace image id for the
/// duration of a set sweep; restores the previous id on exit so nested
/// sweeps (e.g. synthesis inside eval) stay consistent.
class TraceImageScope {
public:
  TraceImageScope() : Saved(telemetry::traceImage()) {}
  ~TraceImageScope() { telemetry::setTraceImage(Saved); }
  void set(size_t I) {
    telemetry::setTraceImage(static_cast<int64_t>(I));
  }

private:
  int64_t Saved;
};

} // namespace

std::vector<AttackRunLog> oppsla::runAttackOverSet(Attack &A, Classifier &N,
                                                   const Dataset &TestSet,
                                                   uint64_t Budget) {
  std::vector<AttackRunLog> Logs;
  Logs.reserve(TestSet.size());
  TraceImageScope Scope;
  for (size_t I = 0; I != TestSet.size(); ++I) {
    Scope.set(I);
    const AttackResult R =
        A.attack(N, TestSet.Images[I], TestSet.Labels[I], Budget);
    AttackRunLog Log;
    Log.Label = TestSet.Labels[I];
    Log.Discarded = R.AlreadyMisclassified;
    Log.Success = R.Success && !R.AlreadyMisclassified;
    Log.Queries = R.Queries;
    Logs.push_back(Log);
  }
  return Logs;
}

std::vector<AttackRunLog> oppsla::runProgramsOverSet(
    const std::vector<Program> &Programs, Classifier &N,
    const Dataset &TestSet, uint64_t Budget) {
  std::vector<AttackRunLog> Logs;
  Logs.reserve(TestSet.size());
  TraceImageScope Scope;
  for (size_t I = 0; I != TestSet.size(); ++I) {
    Scope.set(I);
    const size_t Label = TestSet.Labels[I];
    assert(Label < Programs.size() && "no program for this class");
    SketchAttack A(Programs[Label]);
    const AttackResult R = A.attack(N, TestSet.Images[I], Label, Budget);
    AttackRunLog Log;
    Log.Label = Label;
    Log.Discarded = R.AlreadyMisclassified;
    Log.Success = R.Success && !R.AlreadyMisclassified;
    Log.Queries = R.Queries;
    Logs.push_back(Log);
  }
  return Logs;
}

QuerySample oppsla::toQuerySample(const std::vector<AttackRunLog> &Logs) {
  QuerySample Sample;
  for (const AttackRunLog &Log : Logs) {
    if (Log.Discarded)
      continue;
    if (Log.Success)
      Sample.SuccessQueries.push_back(static_cast<double>(Log.Queries));
    else
      ++Sample.NumFailures;
  }
  return Sample;
}

double oppsla::successRateAt(const std::vector<AttackRunLog> &Logs,
                             uint64_t Budget) {
  size_t Within = 0, Total = 0;
  for (const AttackRunLog &Log : Logs) {
    if (Log.Discarded)
      continue;
    ++Total;
    if (Log.Success && Log.Queries <= Budget)
      ++Within;
  }
  if (Total == 0)
    return 0.0;
  return static_cast<double>(Within) / static_cast<double>(Total);
}
