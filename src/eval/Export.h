//===- eval/Export.h - CSV export of evaluation results ---------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CSV and JSONL writers for the evaluation artifacts, so the bench
/// output can be re-plotted outside this repository (the paper's figures
/// are line/bar plots over exactly these series). The JSONL writers use
/// the same record shapes as the telemetry trace events, so offline
/// tooling handles live traces and exported artifacts identically.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_EVAL_EXPORT_H
#define OPPSLA_EVAL_EXPORT_H

#include "core/Synthesizer.h"
#include "eval/Evaluation.h"

#include <string>

namespace oppsla {

/// Writes one row per attacked image: label, outcome
/// (success|failure|discarded), queries. \returns true on success.
bool exportRunLogsCsv(const std::vector<AttackRunLog> &Logs,
                      const std::string &Path);

/// Writes the success-rate curve success(q) for q in 1..\p MaxBudget at
/// logarithmically spaced sample points (plus every exact success time),
/// one row per budget. \returns true on success.
bool exportSuccessCurveCsv(const std::vector<AttackRunLog> &Logs,
                           uint64_t MaxBudget, const std::string &Path);

/// Writes one JSON object per attacked image:
/// {"image":i,"label":l,"outcome":"...","queries":q}. \returns true on
/// success.
bool exportRunLogsJsonl(const std::vector<AttackRunLog> &Logs,
                        const std::string &Path);

/// Writes one JSON object per synthesis iteration (the raw series behind
/// Figure 4): {"iter":i,"accepted":b,"avg_queries":a,"cum_queries":q,
/// "program":"..."}. \returns true on success.
bool exportSynthesisTraceJsonl(const std::vector<SynthesisStep> &Steps,
                               const std::string &Path);

} // namespace oppsla

#endif // OPPSLA_EVAL_EXPORT_H
