//===- eval/Export.h - CSV export of evaluation results ---------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CSV writers for the evaluation artifacts, so the bench output can be
/// re-plotted outside this repository (the paper's figures are line/bar
/// plots over exactly these series).
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_EVAL_EXPORT_H
#define OPPSLA_EVAL_EXPORT_H

#include "eval/Evaluation.h"

#include <string>

namespace oppsla {

/// Writes one row per attacked image: label, outcome
/// (success|failure|discarded), queries. \returns true on success.
bool exportRunLogsCsv(const std::vector<AttackRunLog> &Logs,
                      const std::string &Path);

/// Writes the success-rate curve success(q) for q in 1..\p MaxBudget at
/// logarithmically spaced sample points (plus every exact success time),
/// one row per budget. \returns true on success.
bool exportSuccessCurveCsv(const std::vector<AttackRunLog> &Logs,
                           uint64_t MaxBudget, const std::string &Path);

} // namespace oppsla

#endif // OPPSLA_EVAL_EXPORT_H
