//===- eval/Experiments.cpp - Shared experiment setup ------------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "eval/Experiments.h"

#include "engine/QueryEngine.h"
#include "eval/ProgramStore.h"
#include "support/Logging.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>

using namespace oppsla;

const std::vector<Arch> &oppsla::cifarArchs() {
  static const std::vector<Arch> Archs = {Arch::MiniGoogLeNet,
                                          Arch::MiniResNet, Arch::MiniVGG};
  return Archs;
}

const std::vector<Arch> &oppsla::imageNetArchs() {
  static const std::vector<Arch> Archs = {Arch::MiniDenseNet,
                                          Arch::MiniResNet50};
  return Archs;
}

size_t oppsla::taskSide(TaskKind Task, const BenchScale &Scale) {
  return Task == TaskKind::CifarLike ? Scale.CifarSide : Scale.ImageNetSide;
}

namespace {

VictimSpec scaledSpec(TaskKind Task, Arch Architecture,
                      const BenchScale &Scale, uint64_t Seed) {
  VictimSpec Spec;
  Spec.Task = Task;
  Spec.Architecture = Architecture;
  Spec.Seed = Seed;
  // Victims are always full 10-way classifiers like the paper's (a wider
  // softmax keeps margins realistic); Scale.NumClasses only bounds which
  // classes the experiments attack.
  Spec.NumClasses = 10;
  Spec.TrainImagesPerClass =
      std::max<size_t>(1, Scale.ClassifierTrainSet / 10);
  Spec.Side = taskSide(Task, Scale);
  Spec.Train.Epochs = Scale.TrainEpochs;
  return Spec;
}

} // namespace

std::unique_ptr<NNClassifier> oppsla::makeScaledVictim(TaskKind Task,
                                                       Arch Architecture,
                                                       const BenchScale &Scale,
                                                       uint64_t Seed) {
  return makeVictim(scaledSpec(Task, Architecture, Scale, Seed));
}

std::string oppsla::victimStem(TaskKind Task, Arch Architecture,
                               const BenchScale &Scale, uint64_t Seed) {
  return scaledSpec(Task, Architecture, Scale, Seed).cacheStem();
}

Dataset oppsla::makeTestSet(TaskKind Task, const BenchScale &Scale,
                            uint64_t Seed) {
  // 0xteset namespace: disjoint from the victim-training (0x...7) and
  // synthesis (below) seed streams.
  return generateSynthetic(Task, Scale.TestPerClass,
                           /*Seed=*/Seed * 7778777 + 424243,
                           taskSide(Task, Scale), Scale.NumClasses);
}

Dataset oppsla::makeSynthesisSet(TaskKind Task, size_t Label,
                                 const BenchScale &Scale, uint64_t Seed) {
  Dataset All = generateSynthetic(Task, Scale.TrainPerClass,
                                  /*Seed=*/Seed * 31337 + 101 + Label * 977,
                                  taskSide(Task, Scale), Scale.NumClasses);
  return All.filterByClass(Label);
}

//===----------------------------------------------------------------------===//
// Program (de)serialization
//===----------------------------------------------------------------------===//

bool oppsla::saveProgram(const Program &P, const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  for (const Condition &C : P.Conds)
    std::fprintf(F, "%d %d %d %.17g\n", static_cast<int>(C.Func),
                 static_cast<int>(C.Source), static_cast<int>(C.Cmp),
                 C.Threshold);
  std::fclose(F);
  return true;
}

bool oppsla::loadProgram(Program &P, const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F)
    return false;
  Program Out;
  for (Condition &C : Out.Conds) {
    int Func = 0, Source = 0, Cmp = 0;
    double Threshold = 0.0;
    if (std::fscanf(F, "%d %d %d %lg", &Func, &Source, &Cmp, &Threshold) !=
        4) {
      std::fclose(F);
      return false;
    }
    if (Func < 0 || Func >= static_cast<int>(NumFuncKinds) || Source < 0 ||
        Source > 1 || Cmp < 0 || Cmp > 1) {
      std::fclose(F);
      return false;
    }
    C.Func = static_cast<FuncKind>(Func);
    C.Source = static_cast<PixelSource>(Source);
    C.Cmp = static_cast<CmpKind>(Cmp);
    C.Threshold = Threshold;
  }
  std::fclose(F);
  P = Out;
  return true;
}

SynthesisConfig oppsla::classSynthesisConfig(const BenchScale &Scale,
                                             size_t Label, uint64_t Seed,
                                             const SynthesisRunOptions &Opts) {
  SynthesisConfig Config;
  Config.MaxIter = Scale.SynthIters;
  Config.PerImageQueryCap = Scale.SynthQueryCap;
  Config.Seed = Seed * 131071 + Label * 8191 + 5;
  Config.Threads = Opts.Threads;
  Config.Islands = Opts.Islands;
  Config.ExchangeInterval = Opts.ExchangeInterval;
  return Config;
}

Program oppsla::synthesizeClassProgram(NNClassifier &Victim,
                                       const std::string &VictimStem,
                                       TaskKind Task, const BenchScale &Scale,
                                       size_t Label, uint64_t Seed,
                                       const SynthesisRunOptions &Opts) {
  const SynthesisConfig Config =
      classSynthesisConfig(Scale, Label, Seed, Opts);

  ProgramStoreKey Key;
  Key.VictimStem = VictimStem;
  Key.Label = Label;
  Key.MaxIter = Config.MaxIter;
  Key.Beta = Config.Beta;
  Key.QueryCap = Config.PerImageQueryCap;
  Key.Seed = Config.Seed;
  Key.Islands = Config.Islands;
  Key.ExchangeInterval = Config.ExchangeInterval;
  Key.TrainPerClass = Scale.TrainPerClass;

  ProgramStore Store(Opts.StoreRoot);
  if (Opts.UseStore) {
    std::vector<StoredProgram> Portfolio;
    if (Store.load(Key, Portfolio)) {
      logInfo() << "rehydrated program for class " << Label
                << " from store entry " << Store.entryPath(Key);
      return selectFromPortfolio(Portfolio).P;
    }
  }

  const Dataset Train = makeSynthesisSet(Task, Label, Scale, Seed);
  logInfo() << "synthesizing program for " << Victim.name() << " class "
            << Label << " (" << Train.size() << " train images, "
            << Config.MaxIter << " iters, " << Config.Islands
            << " island(s))";
  // Candidate scoring goes through a batching, memoizing engine whose
  // cache is shared across the island clones: re-probes of the same
  // training images across candidates (and islands) hit instead of
  // re-running forwards. The engine-invariance contract keeps the
  // synthesized program byte-identical to the unwrapped run, so the store
  // key need not mention the engine at all.
  QueryEngineConfig EngineConfig;
  EngineConfig.ShareCacheOnClone = true;
  QueryEngine Engine(Victim, EngineConfig);
  std::vector<IslandElite> Elites;
  const Program P =
      synthesizeProgram(Engine, Train, Config, /*Trace=*/nullptr, &Elites);

  if (Opts.UseStore) {
    // Entry 0 is the program this run returned; its stats come from the
    // matching elite (zeros for the no-success fallback program, which
    // keeps portfolio selection landing back on it). Entries 1.. are
    // every island's elite — the attack-time portfolio.
    std::vector<StoredProgram> Portfolio;
    StoredProgram Selected;
    Selected.P = P;
    const std::string PText = programToStoreText(P);
    for (const IslandElite &E : Elites)
      if (programToStoreText(E.P) == PText) {
        Selected.AvgQueries = E.Eval.AvgQueries;
        Selected.Successes = E.Eval.Successes;
        Selected.Attacks = E.Eval.Attacks;
        break;
      }
    Portfolio.push_back(Selected);
    for (const IslandElite &E : Elites)
      Portfolio.push_back(StoredProgram{E.P, E.Eval.AvgQueries,
                                        E.Eval.Successes, E.Eval.Attacks});
    if (!Store.save(Key, Portfolio))
      logWarn() << "failed to persist program to store entry "
                << Store.entryPath(Key);
  }
  return P;
}

std::vector<Program> oppsla::synthesizeClassPrograms(
    NNClassifier &Victim, const std::string &VictimStem, TaskKind Task,
    const BenchScale &Scale, uint64_t Seed, const SynthesisRunOptions &Opts) {
  std::vector<Program> Programs;
  Programs.reserve(Scale.NumClasses);
  for (size_t Label = 0; Label != Scale.NumClasses; ++Label)
    Programs.push_back(
        synthesizeClassProgram(Victim, VictimStem, Task, Scale, Label, Seed,
                               Opts));
  return Programs;
}

std::vector<Program> oppsla::synthesizeClassPrograms(
    NNClassifier &Victim, const std::string &VictimStem, TaskKind Task,
    const BenchScale &Scale, uint64_t Seed, size_t Threads) {
  SynthesisRunOptions Opts;
  Opts.Threads = Threads;
  return synthesizeClassPrograms(Victim, VictimStem, Task, Scale, Seed, Opts);
}
