//===- eval/Experiments.cpp - Shared experiment setup ------------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "eval/Experiments.h"

#include "support/Logging.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>

using namespace oppsla;

const std::vector<Arch> &oppsla::cifarArchs() {
  static const std::vector<Arch> Archs = {Arch::MiniGoogLeNet,
                                          Arch::MiniResNet, Arch::MiniVGG};
  return Archs;
}

const std::vector<Arch> &oppsla::imageNetArchs() {
  static const std::vector<Arch> Archs = {Arch::MiniDenseNet,
                                          Arch::MiniResNet50};
  return Archs;
}

size_t oppsla::taskSide(TaskKind Task, const BenchScale &Scale) {
  return Task == TaskKind::CifarLike ? Scale.CifarSide : Scale.ImageNetSide;
}

namespace {

VictimSpec scaledSpec(TaskKind Task, Arch Architecture,
                      const BenchScale &Scale, uint64_t Seed) {
  VictimSpec Spec;
  Spec.Task = Task;
  Spec.Architecture = Architecture;
  Spec.Seed = Seed;
  // Victims are always full 10-way classifiers like the paper's (a wider
  // softmax keeps margins realistic); Scale.NumClasses only bounds which
  // classes the experiments attack.
  Spec.NumClasses = 10;
  Spec.TrainImagesPerClass =
      std::max<size_t>(1, Scale.ClassifierTrainSet / 10);
  Spec.Side = taskSide(Task, Scale);
  Spec.Train.Epochs = Scale.TrainEpochs;
  return Spec;
}

} // namespace

std::unique_ptr<NNClassifier> oppsla::makeScaledVictim(TaskKind Task,
                                                       Arch Architecture,
                                                       const BenchScale &Scale,
                                                       uint64_t Seed) {
  return makeVictim(scaledSpec(Task, Architecture, Scale, Seed));
}

std::string oppsla::victimStem(TaskKind Task, Arch Architecture,
                               const BenchScale &Scale, uint64_t Seed) {
  return scaledSpec(Task, Architecture, Scale, Seed).cacheStem();
}

Dataset oppsla::makeTestSet(TaskKind Task, const BenchScale &Scale,
                            uint64_t Seed) {
  // 0xteset namespace: disjoint from the victim-training (0x...7) and
  // synthesis (below) seed streams.
  return generateSynthetic(Task, Scale.TestPerClass,
                           /*Seed=*/Seed * 7778777 + 424243,
                           taskSide(Task, Scale), Scale.NumClasses);
}

Dataset oppsla::makeSynthesisSet(TaskKind Task, size_t Label,
                                 const BenchScale &Scale, uint64_t Seed) {
  Dataset All = generateSynthetic(Task, Scale.TrainPerClass,
                                  /*Seed=*/Seed * 31337 + 101 + Label * 977,
                                  taskSide(Task, Scale), Scale.NumClasses);
  return All.filterByClass(Label);
}

//===----------------------------------------------------------------------===//
// Program (de)serialization
//===----------------------------------------------------------------------===//

bool oppsla::saveProgram(const Program &P, const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  for (const Condition &C : P.Conds)
    std::fprintf(F, "%d %d %d %.17g\n", static_cast<int>(C.Func),
                 static_cast<int>(C.Source), static_cast<int>(C.Cmp),
                 C.Threshold);
  std::fclose(F);
  return true;
}

bool oppsla::loadProgram(Program &P, const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F)
    return false;
  Program Out;
  for (Condition &C : Out.Conds) {
    int Func = 0, Source = 0, Cmp = 0;
    double Threshold = 0.0;
    if (std::fscanf(F, "%d %d %d %lg", &Func, &Source, &Cmp, &Threshold) !=
        4) {
      std::fclose(F);
      return false;
    }
    if (Func < 0 || Func >= static_cast<int>(NumFuncKinds) || Source < 0 ||
        Source > 1 || Cmp < 0 || Cmp > 1) {
      std::fclose(F);
      return false;
    }
    C.Func = static_cast<FuncKind>(Func);
    C.Source = static_cast<PixelSource>(Source);
    C.Cmp = static_cast<CmpKind>(Cmp);
    C.Threshold = Threshold;
  }
  std::fclose(F);
  P = Out;
  return true;
}

namespace {

std::string cacheDir() {
  if (const char *Env = std::getenv("OPPSLA_CACHE_DIR"))
    return Env;
  return ".oppsla-cache";
}

} // namespace

std::vector<Program> oppsla::synthesizeClassPrograms(
    NNClassifier &Victim, const std::string &VictimStem, TaskKind Task,
    const BenchScale &Scale, uint64_t Seed, size_t Threads) {
  std::vector<Program> Programs;
  Programs.reserve(Scale.NumClasses);

  std::error_code EC;
  std::filesystem::create_directories(cacheDir(), EC);

  for (size_t Label = 0; Label != Scale.NumClasses; ++Label) {
    std::ostringstream Key;
    Key << cacheDir() << "/prog_" << VictimStem << "_cls" << Label << "_i"
        << Scale.SynthIters << "_t" << Scale.TrainPerClass << "_s" << Seed
        << ".txt";
    Program P;
    if (loadProgram(P, Key.str())) {
      logInfo() << "loaded cached program for class " << Label << " from "
                << Key.str();
      Programs.push_back(P);
      continue;
    }
    const Dataset Train = makeSynthesisSet(Task, Label, Scale, Seed);
    SynthesisConfig Config;
    Config.MaxIter = Scale.SynthIters;
    Config.PerImageQueryCap = Scale.SynthQueryCap;
    Config.Seed = Seed * 131071 + Label * 8191 + 5;
    Config.Threads = Threads;
    logInfo() << "synthesizing program for " << Victim.name() << " class "
              << Label << " (" << Train.size() << " train images, "
              << Config.MaxIter << " iters)";
    P = synthesizeProgram(Victim, Train, Config);
    if (!saveProgram(P, Key.str()))
      logWarn() << "failed to cache program to " << Key.str();
    Programs.push_back(P);
  }
  return Programs;
}
