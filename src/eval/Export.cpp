//===- eval/Export.cpp - CSV export of evaluation results --------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "eval/Export.h"

#include "support/Trace.h"

#include <algorithm>
#include <cstdio>
#include <set>

using namespace oppsla;

namespace {

const char *outcomeName(const AttackRunLog &Log) {
  return Log.Discarded ? "discarded" : Log.Success ? "success" : "failure";
}

} // namespace

bool oppsla::exportRunLogsCsv(const std::vector<AttackRunLog> &Logs,
                              const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::fputs("label,outcome,queries\n", F);
  for (const AttackRunLog &Log : Logs)
    std::fprintf(F, "%zu,%s,%llu\n", Log.Label, outcomeName(Log),
                 static_cast<unsigned long long>(Log.Queries));
  std::fclose(F);
  return true;
}

bool oppsla::exportSuccessCurveCsv(const std::vector<AttackRunLog> &Logs,
                                   uint64_t MaxBudget,
                                   const std::string &Path) {
  // Sample points: every power-of-two-ish step plus each exact success
  // time, so the curve's jumps are all represented.
  std::set<uint64_t> Budgets;
  for (uint64_t B = 1; B <= MaxBudget; B = std::max(B + 1, B + B / 4))
    Budgets.insert(B);
  Budgets.insert(MaxBudget);
  for (const AttackRunLog &Log : Logs)
    if (Log.Success && !Log.Discarded && Log.Queries <= MaxBudget)
      Budgets.insert(Log.Queries);

  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::fputs("budget,success_rate\n", F);
  for (uint64_t B : Budgets)
    std::fprintf(F, "%llu,%.6f\n", static_cast<unsigned long long>(B),
                 successRateAt(Logs, B));
  std::fclose(F);
  return true;
}

bool oppsla::exportRunLogsJsonl(const std::vector<AttackRunLog> &Logs,
                                const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  for (size_t I = 0; I != Logs.size(); ++I) {
    const AttackRunLog &Log = Logs[I];
    std::fprintf(F,
                 "{\"image\":%zu,\"label\":%zu,\"outcome\":\"%s\","
                 "\"queries\":%llu}\n",
                 I, Log.Label, outcomeName(Log),
                 static_cast<unsigned long long>(Log.Queries));
  }
  std::fclose(F);
  return true;
}

bool oppsla::exportSynthesisTraceJsonl(
    const std::vector<SynthesisStep> &Steps, const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  for (const SynthesisStep &Step : Steps) {
    std::string Line = "{\"iter\":";
    Line += std::to_string(Step.Iteration);
    Line += ",\"accepted\":";
    Line += Step.Accepted ? "true" : "false";
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), ",\"avg_queries\":%.9g", Step.AvgQueries);
    Line += Buf;
    Line += ",\"cum_queries\":";
    Line += std::to_string(Step.CumulativeQueries);
    Line += ",\"program\":\"";
    telemetry::appendJsonEscaped(Line, Step.Current.str());
    Line += "\"}\n";
    std::fwrite(Line.data(), 1, Line.size(), F);
  }
  std::fclose(F);
  return true;
}
