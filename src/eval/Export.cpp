//===- eval/Export.cpp - CSV export of evaluation results --------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "eval/Export.h"

#include <algorithm>
#include <cstdio>
#include <set>

using namespace oppsla;

bool oppsla::exportRunLogsCsv(const std::vector<AttackRunLog> &Logs,
                              const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::fputs("label,outcome,queries\n", F);
  for (const AttackRunLog &Log : Logs) {
    const char *Outcome = Log.Discarded  ? "discarded"
                          : Log.Success ? "success"
                                        : "failure";
    std::fprintf(F, "%zu,%s,%llu\n", Log.Label, Outcome,
                 static_cast<unsigned long long>(Log.Queries));
  }
  std::fclose(F);
  return true;
}

bool oppsla::exportSuccessCurveCsv(const std::vector<AttackRunLog> &Logs,
                                   uint64_t MaxBudget,
                                   const std::string &Path) {
  // Sample points: every power-of-two-ish step plus each exact success
  // time, so the curve's jumps are all represented.
  std::set<uint64_t> Budgets;
  for (uint64_t B = 1; B <= MaxBudget; B = std::max(B + 1, B + B / 4))
    Budgets.insert(B);
  Budgets.insert(MaxBudget);
  for (const AttackRunLog &Log : Logs)
    if (Log.Success && !Log.Discarded && Log.Queries <= MaxBudget)
      Budgets.insert(Log.Queries);

  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::fputs("budget,success_rate\n", F);
  for (uint64_t B : Budgets)
    std::fprintf(F, "%llu,%.6f\n", static_cast<unsigned long long>(B),
                 successRateAt(Logs, B));
  std::fclose(F);
  return true;
}
