//===- eval/ProgramStore.h - Content-addressed program store ----*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The content-addressed store for synthesized programs. Synthesis is by
/// far the most expensive phase (MaxIter full training-set evaluations per
/// class), yet its result is a pure function of a small key: the DSL
/// version, the victim (its cache stem already hashes architecture, task,
/// scale and training seed), the attacked class, and the synthesis
/// configuration. The store persists every island's elite under that key
/// so synthesize/eval/serve rehydrate programs instead of re-searching,
/// and attack-time portfolio selection can pick among the elites.
///
/// Layout: one OPWF wire artifact per key at `<root>/<hex64(key)>.opwf`,
/// holding a JobSpec record (the canonical key string plus per-program
/// training stats as JSON) and one Program record per stored program,
/// index-parallel with the stats. Record 0 is always the program the
/// synthesis run returned; records 1.. are the island elites. Writes are
/// atomic (tmp + rename) and every record is CRC'd by the wire layer; a
/// load re-verifies the canonical key byte-for-byte against the request,
/// so a hash collision or a corrupted entry degrades to a miss (the caller
/// falls back to search), never to a wrong program.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_EVAL_PROGRAMSTORE_H
#define OPPSLA_EVAL_PROGRAMSTORE_H

#include "core/Condition.h"

#include <string>
#include <vector>

namespace oppsla {

/// Everything the synthesized programs of one (victim, class) are a pure
/// function of. Fields deliberately mirror SynthesisConfig plus the
/// training-set shape; two keys with equal canonical() strings are
/// guaranteed to describe byte-identical synthesis runs.
struct ProgramStoreKey {
  uint32_t Dsl = DslVersion;  ///< condition-language version
  std::string VictimStem;     ///< victim cache stem (hashes arch/task/scale)
  size_t Label = 0;           ///< attacked class
  size_t MaxIter = 0;         ///< MH iterations per chain
  double Beta = 0.02;         ///< score sharpness
  uint64_t QueryCap = 0;      ///< per-image query cap during synthesis
  uint64_t Seed = 0;          ///< the per-class synthesis seed
  size_t Islands = 1;         ///< island count
  size_t ExchangeInterval = 0; ///< normalized to 0 when Islands <= 1
  size_t TrainPerClass = 0;   ///< synthesis training-set size per class

  /// One-line canonical rendering; the byte-verified identity of an entry.
  std::string canonical() const;
  /// FNV-1a 64-bit hash of canonical(); names the entry file.
  uint64_t hash() const;
};

/// One stored program with the training-set stats behind it.
struct StoredProgram {
  Program P;
  double AvgQueries = 0.0;
  size_t Successes = 0;
  size_t Attacks = 0;
};

/// Exact-round-trip text form of a program (the `%.17g` four-line format
/// shared with saveProgram); what Program wire records carry.
std::string programToStoreText(const Program &P);
bool programFromStoreText(const std::string &Text, Program &P);

/// Attack-time portfolio selection over a store entry: the elite with the
/// lowest average query count among those that succeeded at least once,
/// ties to the earliest index; entry 0 (the synthesis run's own pick) when
/// nothing succeeded. For entries written by this repo's synthesis this
/// re-derives entry 0 — the rule exists so external tools and future
/// multi-entry portfolios agree on the selection.
const StoredProgram &
selectFromPortfolio(const std::vector<StoredProgram> &Portfolio);

/// The store itself: a directory of immutable, content-addressed entries.
class ProgramStore {
public:
  /// \p Root may be empty to use defaultRoot().
  explicit ProgramStore(std::string Root = "");

  /// `$OPPSLA_CACHE_DIR/programs` (or `.oppsla-cache/programs`).
  static std::string defaultRoot();

  const std::string &root() const { return Root; }

  /// The entry file a key addresses.
  std::string entryPath(const ProgramStoreKey &K) const;

  /// Loads and verifies the entry for \p K. Returns true and fills
  /// \p Portfolio (entry 0 first) on a hit; false on a miss, a key
  /// mismatch, or any corruption — callers fall back to synthesis.
  /// Bumps the synth.store.{hits,misses} counters.
  bool load(const ProgramStoreKey &K,
            std::vector<StoredProgram> &Portfolio) const;

  /// Atomically persists \p Portfolio (entry 0 = the selected program)
  /// under \p K, creating the store directory if needed.
  bool save(const ProgramStoreKey &K,
            const std::vector<StoredProgram> &Portfolio) const;

private:
  std::string Root;
};

} // namespace oppsla

#endif // OPPSLA_EVAL_PROGRAMSTORE_H
