//===- attacks/Attack.h - Black-box attack interface ------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Common interface for all one pixel attacks compared in the paper's
/// evaluation: OPPSLA's adversarial programs (SketchAttack), Sparse-RS
/// (query-minimizing random search) and SuOPA (Su et al.'s differential
/// evolution). Attacks are stateful only through their RNG; attack() may be
/// called repeatedly on different images.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_ATTACKS_ATTACK_H
#define OPPSLA_ATTACKS_ATTACK_H

#include "classify/Classifier.h"
#include "core/Pair.h"
#include "support/Rng.h"

#include <cstdint>
#include <limits>
#include <memory>
#include <string>

namespace oppsla {

/// Outcome of one attack on one image.
struct AttackResult {
  bool Success = false;
  /// Queries posed to the classifier (including any initial clean-image
  /// query the attack makes).
  uint64_t Queries = 0;
  /// Perturbed pixel location (valid when Success).
  PixelLoc Loc;
  /// Perturbation value written at Loc (valid when Success). Corner-based
  /// attacks always use an RGB-cube corner; SuOPA may use any value.
  Pixel Perturbation;
  /// The clean image was already misclassified; counted as neither success
  /// nor failure by the evaluation harness.
  bool AlreadyMisclassified = false;
};

/// Abstract black-box one pixel attack.
class Attack {
public:
  static constexpr uint64_t Unlimited =
      std::numeric_limits<uint64_t>::max();

  virtual ~Attack();

  /// Attacks \p X (true class \p TrueClass) against \p N with at most
  /// \p QueryBudget queries.
  ///
  /// Each call owns its randomness: a fresh Rng seeded with
  /// Rng::deriveRunSeed(seed(), X.contentHash()) is handed to runAttack(),
  /// so the outcome is a pure function of (attack seed, image) — rerunning
  /// the same attack object, reordering a sweep, or subsetting a test set
  /// never changes any image's result, and concurrent runs on one attack's
  /// clones are bit-identical to serial ones.
  ///
  /// Every run is a telemetry span: the queries-per-attack and attack-
  /// duration histograms are always recorded, and when the trace sink is
  /// open an attack_begin/attack_end event pair tagged with the attack
  /// name, ambient image id (telemetry::traceImage()), and outcome is
  /// emitted around the run.
  AttackResult attack(Classifier &N, const Image &X, size_t TrueClass,
                      uint64_t QueryBudget = Unlimited);

  /// Display name used in tables ("OPPSLA", "Sparse-RS", "SuOPA", ...).
  virtual std::string name() const = 0;

  /// An independent copy with identical configuration (and therefore
  /// identical per-run RNG streams). Parallel sweep workers clone the
  /// attack they were handed instead of sharing it across threads.
  virtual std::unique_ptr<Attack> clone() const = 0;

protected:
  /// The configured base seed of this attack's randomness; deterministic
  /// attacks keep the default. Mixed per run with the image content hash
  /// (see attack()).
  virtual uint64_t seed() const { return 0; }

  /// The attack implementation; always invoked through attack(), which
  /// supplies \p R freshly derived for this (seed, image) pair.
  virtual AttackResult runAttack(Classifier &N, const Image &X,
                                 size_t TrueClass, uint64_t QueryBudget,
                                 Rng &R) = 0;
};

/// Untargeted margin: f_{cx}(x) - max_{j != cx} f_j(x). Negative iff the
/// image is misclassified; both baselines minimize it.
double untargetedMargin(const std::vector<float> &Scores, size_t TrueClass);

} // namespace oppsla

#endif // OPPSLA_ATTACKS_ATTACK_H
