//===- attacks/SuOPA.h - Su et al. one pixel attack (DE) --------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// From-scratch reimplementation of Su et al.'s One Pixel Attack ("SuOPA"
/// in the paper): differential evolution over candidate solutions
/// (row, col, r, g, b) with real-valued colors anywhere in [0,1]^3 (not
/// just RGB-cube corners) and fitness = the true class's confidence.
/// The population is evaluated once per generation, so the minimum query
/// count equals the population size (400, as the paper notes).
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_ATTACKS_SUOPA_H
#define OPPSLA_ATTACKS_SUOPA_H

#include "attacks/Attack.h"
#include "support/Rng.h"

namespace oppsla {

/// Tunables of the differential evolution.
struct SuOPAConfig {
  uint64_t Seed = 0x50faULL;
  size_t PopulationSize = 400; ///< Su et al.'s default
  double F = 0.5;              ///< DE differential weight
  size_t MaxGenerations = 100; ///< stop even if budget remains
  /// Candidates per speculative prefetch submission when the classifier is
  /// prefetchable (a QueryEngine with its cache on). Initialization windows
  /// are exact; generation windows speculate under a no-acceptance
  /// assumption, so an accepted mutant mid-window costs only the window's
  /// remaining mispredicted forwards. 1 disables prefetching.
  size_t PrefetchWindow = 64;
};

/// Su et al. (2017) one pixel attack.
class SuOPA : public Attack {
public:
  explicit SuOPA(SuOPAConfig Config = SuOPAConfig()) : Config(Config) {}

  std::string name() const override { return "SuOPA"; }

  std::unique_ptr<Attack> clone() const override {
    return std::make_unique<SuOPA>(Config);
  }

protected:
  uint64_t seed() const override { return Config.Seed; }

  AttackResult runAttack(Classifier &N, const Image &X, size_t TrueClass,
                         uint64_t QueryBudget, Rng &R) override;

private:
  SuOPAConfig Config;
};

} // namespace oppsla

#endif // OPPSLA_ATTACKS_SUOPA_H
