//===- attacks/RandomPairSearch.cpp - Naive random baseline ------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "attacks/RandomPairSearch.h"

#include "classify/QueryCounter.h"

#include <numeric>

using namespace oppsla;

AttackResult RandomPairSearch::runAttack(Classifier &N, const Image &X,
                                         size_t TrueClass,
                                         uint64_t QueryBudget, Rng &R) {
  QueryCounter Q(N, QueryBudget);
  Q.setTraceTrueClass(TrueClass);
  AttackResult Out;

  auto Finish = [&]() {
    Out.Queries = Q.count();
    return Out;
  };

  {
    const std::vector<float> S = Q.scores(X);
    if (S.empty())
      return Finish();
    if (argmaxScore(S) != TrueClass) {
      Out.Success = true;
      Out.AlreadyMisclassified = true;
      return Finish();
    }
  }

  const PairSpace Space(X);
  std::vector<PairId> Order(Space.size());
  std::iota(Order.begin(), Order.end(), 0u);
  R.shuffle(Order);

  Image Scratch = X;
  for (PairId Id : Order) {
    const LocPert LP = Space.pairOf(Id);
    const Pixel Orig = X.pixel(LP.Loc.Row, LP.Loc.Col);
    Scratch.setPixel(LP.Loc.Row, LP.Loc.Col, LP.perturbation());
    const std::vector<float> S = Q.scores(Scratch);
    Scratch.setPixel(LP.Loc.Row, LP.Loc.Col, Orig);
    if (S.empty())
      return Finish();
    if (argmaxScore(S) != TrueClass) {
      Out.Success = true;
      Out.Loc = LP.Loc;
      Out.Perturbation = LP.perturbation();
      return Finish();
    }
  }
  return Finish();
}
