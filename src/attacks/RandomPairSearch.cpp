//===- attacks/RandomPairSearch.cpp - Naive random baseline ------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "attacks/RandomPairSearch.h"

#include "classify/QueryCounter.h"
#include "support/Profiler.h"

#include <numeric>

using namespace oppsla;

AttackResult RandomPairSearch::runAttack(Classifier &N, const Image &X,
                                         size_t TrueClass,
                                         uint64_t QueryBudget, Rng &R) {
  QueryCounter Q(N, QueryBudget);
  Q.setTraceTrueClass(TrueClass);
  AttackResult Out;

  auto Finish = [&]() {
    Out.Queries = Q.count();
    return Out;
  };

  {
    const std::vector<float> S = Q.scores(X);
    if (S.empty())
      return Finish();
    if (argmaxScore(S) != TrueClass) {
      Out.Success = true;
      Out.AlreadyMisclassified = true;
      return Finish();
    }
  }

  const PairSpace Space(X);
  std::vector<PairId> Order(Space.size());
  std::iota(Order.begin(), Order.end(), 0u);
  R.shuffle(Order);

  // The full visit order is known upfront, so prefetch windows are exact
  // predictions: every window image is queried unless the run ends first.
  constexpr size_t Window = 32;
  const bool Prefetch = Q.prefetchable();

  Image Scratch = X;
  telemetry::ProfileScope SearchSpan("random_pairs.search");
  for (size_t Pos = 0; Pos != Order.size(); ++Pos) {
    if (Prefetch && Pos % Window == 0) {
      telemetry::ProfileScope PrefetchSpan("random_pairs.prefetch");
      const size_t End = std::min(Pos + Window, Order.size());
      std::vector<Image> Batch;
      Batch.reserve(End - Pos);
      for (size_t J = Pos; J != End; ++J) {
        const LocPert LP = Space.pairOf(Order[J]);
        Image Cand = X;
        Cand.setPixel(LP.Loc.Row, LP.Loc.Col, LP.perturbation());
        Batch.push_back(std::move(Cand));
      }
      Q.prefetch(Batch);
    }

    const PairId Id = Order[Pos];
    const LocPert LP = Space.pairOf(Id);
    const Pixel Orig = X.pixel(LP.Loc.Row, LP.Loc.Col);
    Scratch.setPixel(LP.Loc.Row, LP.Loc.Col, LP.perturbation());
    const std::vector<float> S = Q.scores(Scratch);
    Scratch.setPixel(LP.Loc.Row, LP.Loc.Col, Orig);
    if (S.empty())
      return Finish();
    if (argmaxScore(S) != TrueClass) {
      Out.Success = true;
      Out.Loc = LP.Loc;
      Out.Perturbation = LP.perturbation();
      return Finish();
    }
  }
  return Finish();
}
