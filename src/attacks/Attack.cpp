//===- attacks/Attack.cpp - Black-box attack interface -----------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "attacks/Attack.h"

#include "support/Metrics.h"
#include "support/Profiler.h"
#include "support/Trace.h"

#include <cassert>

using namespace oppsla;

Attack::~Attack() = default;

AttackResult Attack::attack(Classifier &N, const Image &X, size_t TrueClass,
                            uint64_t QueryBudget) {
  const int64_t ImageId = telemetry::traceImage();
  if (telemetry::traceEnabled())
    telemetry::traceEvent(
        "attack_begin",
        {{"attack", name()},
         {"image", ImageId},
         {"true_class", TrueClass},
         {"budget", QueryBudget == Unlimited
                        ? int64_t{-1}
                        : static_cast<int64_t>(QueryBudget)}});

  telemetry::ScopedTimer Timer;
  // Per-run RNG isolation: the stream depends only on the attack's
  // configured seed and the image itself, never on previous runs.
  Rng RunRng = Rng::forRun(seed(), X.contentHash());
  AttackResult R;
  {
    // The root profiler span for one attacked image, named after the
    // concrete attack (interned only when profiling is on).
    telemetry::ProfileScope Span(
        telemetry::profilingEnabled()
            ? telemetry::internProfileName("attack:" + name())
            : nullptr);
    R = runAttack(N, X, TrueClass, QueryBudget, RunRng);
  }
  const double Seconds = Timer.seconds();

  // Queries-per-attack is the paper's central metric; its distribution and
  // the wall-clock span are always recorded (registry updates are cheap).
  static telemetry::Histogram &QueriesHist = telemetry::histogram(
      "attack.queries", telemetry::exponentialBuckets(1.0, 2.0, 16));
  static telemetry::Histogram &SecondsHist = telemetry::histogram(
      "attack.seconds", telemetry::exponentialBuckets(1e-5, 4.0, 12));
  QueriesHist.observe(static_cast<double>(R.Queries));
  SecondsHist.observe(Seconds);
  const char *Outcome = R.AlreadyMisclassified ? "discarded"
                        : R.Success            ? "success"
                                               : "failure";
  telemetry::counter(std::string("attack.outcome.") + Outcome).inc();

  if (telemetry::traceEnabled())
    telemetry::traceEvent(
        "attack_end",
        {{"attack", name()},
         {"image", ImageId},
         {"outcome", Outcome},
         {"queries", R.Queries},
         {"duration_us", static_cast<uint64_t>(Seconds * 1e6)}});
  return R;
}

double oppsla::untargetedMargin(const std::vector<float> &Scores,
                                size_t TrueClass) {
  assert(TrueClass < Scores.size() && "true class out of range");
  double BestOther = -1.0;
  for (size_t I = 0; I != Scores.size(); ++I) {
    if (I == TrueClass)
      continue;
    BestOther = std::max(BestOther, static_cast<double>(Scores[I]));
  }
  return static_cast<double>(Scores[TrueClass]) - BestOther;
}
