//===- attacks/Attack.cpp - Black-box attack interface -----------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "attacks/Attack.h"

#include <cassert>

using namespace oppsla;

Attack::~Attack() = default;

double oppsla::untargetedMargin(const std::vector<float> &Scores,
                                size_t TrueClass) {
  assert(TrueClass < Scores.size() && "true class out of range");
  double BestOther = -1.0;
  for (size_t I = 0; I != Scores.size(); ++I) {
    if (I == TrueClass)
      continue;
    BestOther = std::max(BestOther, static_cast<double>(Scores[I]));
  }
  return static_cast<double>(Scores[TrueClass]) - BestOther;
}
