//===- attacks/SparseRS.cpp - Sparse-RS one pixel baseline -------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "attacks/SparseRS.h"

#include "classify/QueryCounter.h"
#include "support/Profiler.h"

using namespace oppsla;

AttackResult SparseRS::runAttack(Classifier &N, const Image &X,
                                 size_t TrueClass, uint64_t QueryBudget,
                                 Rng &R) {
  QueryCounter Q(N, QueryBudget);
  Q.setTraceTrueClass(TrueClass);
  AttackResult Out;
  const size_t H = X.height(), W = X.width();

  auto Finish = [&]() {
    Out.Queries = Q.count();
    return Out;
  };

  // Clean-image margin (also detects already-misclassified inputs).
  {
    const std::vector<float> S = Q.scores(X);
    if (S.empty())
      return Finish();
    if (argmaxScore(S) != TrueClass) {
      Out.Success = true;
      Out.AlreadyMisclassified = true;
      return Finish();
    }
  }

  // Current state: one (location, corner) candidate and its margin.
  PixelLoc Loc{static_cast<uint16_t>(R.index(H)),
               static_cast<uint16_t>(R.index(W))};
  CornerIdx Corner = static_cast<CornerIdx>(R.index(NumCorners));
  Image Scratch = X;

  auto Evaluate = [&](const PixelLoc &L, CornerIdx C, double &MarginOut) {
    const Pixel Orig = X.pixel(L.Row, L.Col);
    Scratch.setPixel(L.Row, L.Col, cornerPixel(C));
    const std::vector<float> S = Q.scores(Scratch);
    Scratch.setPixel(L.Row, L.Col, Orig);
    if (S.empty())
      return false; // budget exhausted
    MarginOut = untargetedMargin(S, TrueClass);
    return true;
  };

  double Margin = 0.0;
  if (!Evaluate(Loc, Corner, Margin))
    return Finish();
  if (Margin < 0.0) {
    Out.Success = true;
    Out.Loc = Loc;
    Out.Perturbation = cornerPixel(Corner);
    return Finish();
  }

  // One proposal draw, shared verbatim by the real loop and the
  // speculative replay. The schedule depends only on the iteration number
  // and the draw count only on the RNG stream, so a cloned Rng predicts
  // upcoming proposals exactly; only the *current* (location, corner) pair
  // is speculative state.
  //
  // Alpha schedule: early iterations explore new locations aggressively;
  // later ones mostly flip the color at the current location, mirroring
  // Sparse-RS's decreasing resampling fraction.
  auto Propose = [&](Rng &G, uint64_t Iter, const PixelLoc &CurLoc,
                     CornerIdx CurCorner, PixelLoc &CandLoc,
                     CornerIdx &CandCorner) {
    const double Progress =
        std::min(1.0, static_cast<double>(Iter) /
                          static_cast<double>(Config.ScheduleHorizon));
    const double LocProb =
        std::max(Config.MinLocationProb, 1.0 - Progress);
    CandLoc = CurLoc;
    CandCorner = CurCorner;
    if (G.chance(LocProb)) {
      CandLoc = PixelLoc{static_cast<uint16_t>(G.index(H)),
                         static_cast<uint16_t>(G.index(W))};
      CandCorner = static_cast<CornerIdx>(G.index(NumCorners));
    } else {
      // Color move: a different corner at the current location.
      CandCorner = static_cast<CornerIdx>(
          (CurCorner + 1 + G.index(NumCorners - 1)) % NumCorners);
    }
  };

  const size_t Horizon = Config.PrefetchHorizon;
  const bool Speculate = Horizon > 1 && Q.prefetchable();

  telemetry::ProfileScope SearchSpan("sparse_rs.search");
  for (uint64_t Iter = 0; !Q.exhausted(); ++Iter) {
    telemetry::ProfileScope IterSpan("sparse_rs.iteration");
    if (Speculate && Iter % Horizon == 0) {
      // Replay the next Horizon proposals under a no-acceptance
      // assumption and warm the engine cache with the candidate images.
      telemetry::ProfileScope PrefetchSpan("sparse_rs.prefetch");
      Rng Sim = R;
      std::vector<Image> Batch;
      Batch.reserve(Horizon);
      for (size_t J = 0; J != Horizon; ++J) {
        PixelLoc SpecLoc;
        CornerIdx SpecCorner;
        Propose(Sim, Iter + J, Loc, Corner, SpecLoc, SpecCorner);
        Image Cand = X;
        Cand.setPixel(SpecLoc.Row, SpecLoc.Col, cornerPixel(SpecCorner));
        Batch.push_back(std::move(Cand));
      }
      Q.prefetch(Batch);
    }

    PixelLoc CandLoc;
    CornerIdx CandCorner;
    Propose(R, Iter, Loc, Corner, CandLoc, CandCorner);

    double CandMargin = 0.0;
    if (!Evaluate(CandLoc, CandCorner, CandMargin))
      return Finish();
    if (CandMargin < 0.0) {
      Out.Success = true;
      Out.Loc = CandLoc;
      Out.Perturbation = cornerPixel(CandCorner);
      return Finish();
    }
    // Random-search acceptance: keep the candidate if it does not lose.
    if (CandMargin <= Margin) {
      Loc = CandLoc;
      Corner = CandCorner;
      Margin = CandMargin;
    }
  }
  return Finish();
}
