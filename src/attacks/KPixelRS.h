//===- attacks/KPixelRS.h - Few pixel random search extension ---*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The few-pixel generalization of Sparse-RS (the setting Croce et al.
/// actually target: perturb exactly k pixels). Maintains a set of k
/// disjoint (location, corner) pairs and performs random search: each
/// iteration resamples an alpha-schedule-driven subset of the pixels
/// (locations and/or colors) and accepts the candidate if the untargeted
/// margin does not increase. k = 1 recovers the one pixel attack.
///
/// The paper's future-work direction is exactly this space; the OPPSLA
/// sketch itself stays one pixel, so this attack serves as the few-pixel
/// reference point in ablations.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_ATTACKS_KPIXELRS_H
#define OPPSLA_ATTACKS_KPIXELRS_H

#include "attacks/Attack.h"
#include "support/Rng.h"

namespace oppsla {

/// Result extension: the full pixel set of a successful few-pixel attack.
struct KPixelResult {
  AttackResult Base;                ///< Loc/Perturbation = first pixel
  std::vector<LocPert> Pixels;      ///< all k perturbed pixels
};

/// Tunables of the k-pixel random search.
struct KPixelRSConfig {
  size_t K = 2;                  ///< number of perturbed pixels
  uint64_t Seed = 0x2b15ULL;
  uint64_t ScheduleHorizon = 10000;
  double MinResampleFraction = 0.1; ///< late-phase fraction of pixels moved
  /// Iterations speculated per prefetch submission when the classifier is
  /// prefetchable (no-acceptance replay on a cloned Rng; mispredictions
  /// cost wasted forwards only). 1 disables prefetching.
  size_t PrefetchHorizon = 16;
};

/// Few pixel Sparse-RS-style attack.
class KPixelRS : public Attack {
public:
  explicit KPixelRS(KPixelRSConfig Config = KPixelRSConfig())
      : Config(Config) {
    assert(Config.K >= 1 && "need at least one pixel");
  }

  /// Like attack() but also reports every perturbed pixel. (Called
  /// directly, this bypasses the attack() telemetry span.) Uses the same
  /// per-run RNG derivation as attack(), so both entry points replay the
  /// identical query sequence for a given image.
  KPixelResult attackDetailed(Classifier &N, const Image &X,
                              size_t TrueClass, uint64_t QueryBudget);

  std::string name() const override {
    return "Sparse-RS(k=" + std::to_string(Config.K) + ")";
  }

  std::unique_ptr<Attack> clone() const override {
    return std::make_unique<KPixelRS>(Config);
  }

protected:
  uint64_t seed() const override { return Config.Seed; }

  AttackResult runAttack(Classifier &N, const Image &X, size_t TrueClass,
                         uint64_t QueryBudget, Rng &R) override;

private:
  KPixelResult runDetailed(Classifier &N, const Image &X, size_t TrueClass,
                           uint64_t QueryBudget, Rng &R);

  KPixelRSConfig Config;
};

} // namespace oppsla

#endif // OPPSLA_ATTACKS_KPIXELRS_H
