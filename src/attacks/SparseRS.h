//===- attacks/SparseRS.h - Sparse-RS one pixel baseline --------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// From-scratch reimplementation of the one pixel case of Sparse-RS
/// (Croce et al., AAAI 2022), the paper's main baseline: random search
/// over (pixel location, RGB-cube corner) pairs that accepts a candidate
/// whenever it does not increase the untargeted margin, with an
/// alpha-schedule that shifts proposals from global location resampling
/// toward local color refinement as the budget is consumed.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_ATTACKS_SPARSERS_H
#define OPPSLA_ATTACKS_SPARSERS_H

#include "attacks/Attack.h"
#include "support/Rng.h"

namespace oppsla {

/// Tunables of the Sparse-RS one pixel attack.
struct SparseRSConfig {
  uint64_t Seed = 0x5125ULL;
  /// Nominal iteration horizon used by the proposal schedule (the actual
  /// stop is the caller's query budget).
  uint64_t ScheduleHorizon = 10000;
  /// Probability floor for proposing a brand new location.
  double MinLocationProb = 0.1;
  /// Iterations speculated per prefetch submission when the classifier is
  /// prefetchable. The proposal RNG stream is exact (draw counts never
  /// depend on acceptance), so only accepted candidates mid-window cost
  /// mispredicted forwards. 1 disables prefetching.
  size_t PrefetchHorizon = 16;
};

/// One pixel Sparse-RS.
class SparseRS : public Attack {
public:
  explicit SparseRS(SparseRSConfig Config = SparseRSConfig())
      : Config(Config) {}

  std::string name() const override { return "Sparse-RS"; }

  std::unique_ptr<Attack> clone() const override {
    return std::make_unique<SparseRS>(Config);
  }

protected:
  uint64_t seed() const override { return Config.Seed; }

  AttackResult runAttack(Classifier &N, const Image &X, size_t TrueClass,
                         uint64_t QueryBudget, Rng &R) override;

private:
  SparseRSConfig Config;
};

} // namespace oppsla

#endif // OPPSLA_ATTACKS_SPARSERS_H
