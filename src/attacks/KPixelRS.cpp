//===- attacks/KPixelRS.cpp - Few pixel random search extension ---------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "attacks/KPixelRS.h"

#include "classify/QueryCounter.h"

#include <algorithm>

using namespace oppsla;

namespace {

/// Applies a pixel set to a scratch image and undoes it afterwards.
class ScopedApply {
public:
  ScopedApply(Image &Scratch, const Image &Clean,
              const std::vector<LocPert> &Pixels)
      : Scratch(Scratch), Clean(Clean), Pixels(Pixels) {
    for (const LocPert &P : Pixels)
      Scratch.setPixel(P.Loc.Row, P.Loc.Col, P.perturbation());
  }
  ~ScopedApply() {
    for (const LocPert &P : Pixels)
      Scratch.setPixel(P.Loc.Row, P.Loc.Col,
                       Clean.pixel(P.Loc.Row, P.Loc.Col));
  }
  ScopedApply(const ScopedApply &) = delete;
  ScopedApply &operator=(const ScopedApply &) = delete;

private:
  Image &Scratch;
  const Image &Clean;
  const std::vector<LocPert> &Pixels;
};

bool containsLoc(const std::vector<LocPert> &Pixels, const PixelLoc &L,
                 size_t SkipIndex) {
  for (size_t I = 0; I != Pixels.size(); ++I)
    if (I != SkipIndex && Pixels[I].Loc == L)
      return true;
  return false;
}

} // namespace

AttackResult KPixelRS::runAttack(Classifier &N, const Image &X,
                                 size_t TrueClass, uint64_t QueryBudget,
                                 Rng &R) {
  return runDetailed(N, X, TrueClass, QueryBudget, R).Base;
}

KPixelResult KPixelRS::attackDetailed(Classifier &N, const Image &X,
                                      size_t TrueClass,
                                      uint64_t QueryBudget) {
  Rng R = Rng::forRun(Config.Seed, X.contentHash());
  return runDetailed(N, X, TrueClass, QueryBudget, R);
}

KPixelResult KPixelRS::runDetailed(Classifier &N, const Image &X,
                                   size_t TrueClass, uint64_t QueryBudget,
                                   Rng &R) {
  QueryCounter Q(N, QueryBudget);
  Q.setTraceTrueClass(TrueClass);
  KPixelResult Out;
  const size_t H = X.height(), W = X.width();
  const size_t K = std::min(Config.K, H * W);

  auto Finish = [&]() {
    Out.Base.Queries = Q.count();
    return Out;
  };

  {
    const std::vector<float> S = Q.scores(X);
    if (S.empty())
      return Finish();
    if (argmaxScore(S) != TrueClass) {
      Out.Base.Success = true;
      Out.Base.AlreadyMisclassified = true;
      return Finish();
    }
  }

  auto RandomPixel = [&](Rng &G, const std::vector<LocPert> &Existing,
                         size_t SkipIndex) {
    LocPert P;
    do {
      P.Loc = PixelLoc{static_cast<uint16_t>(G.index(H)),
                       static_cast<uint16_t>(G.index(W))};
    } while (containsLoc(Existing, P.Loc, SkipIndex));
    P.Corner = static_cast<CornerIdx>(G.index(NumCorners));
    return P;
  };

  // Initial pixel set: K distinct random locations with random corners.
  std::vector<LocPert> Current;
  Current.reserve(K);
  for (size_t I = 0; I != K; ++I)
    Current.push_back(RandomPixel(R, Current, Current.size()));

  Image Scratch = X;
  auto Evaluate = [&](const std::vector<LocPert> &Pixels,
                      double &MarginOut) {
    ScopedApply Apply(Scratch, X, Pixels);
    const std::vector<float> S = Q.scores(Scratch);
    if (S.empty())
      return false;
    MarginOut = untargetedMargin(S, TrueClass);
    if (MarginOut < 0.0) {
      Out.Base.Success = true;
      Out.Base.Loc = Pixels.front().Loc;
      Out.Base.Perturbation = Pixels.front().perturbation();
      Out.Pixels = Pixels;
    }
    return true;
  };

  double Margin = 0.0;
  if (!Evaluate(Current, Margin) || Out.Base.Success)
    return Finish();

  // One proposal draw, shared by the real loop and the speculative replay.
  // Unlike one-pixel Sparse-RS, the location rejection loop inspects the
  // candidate's contents, so a replay's draw stream stays exact only while
  // no acceptance occurs — after a mid-window acceptance the rest of the
  // window mispredicts (wasted forwards, never wrong answers).
  //
  // Alpha schedule: resample many pixels early, few late.
  auto Propose = [&](Rng &G, uint64_t Iter,
                     const std::vector<LocPert> &Cur) {
    const double Progress =
        std::min(1.0, static_cast<double>(Iter) /
                          static_cast<double>(Config.ScheduleHorizon));
    const double Fraction =
        std::max(Config.MinResampleFraction, 1.0 - Progress);
    const size_t Moves = std::max<size_t>(
        1, static_cast<size_t>(Fraction * static_cast<double>(K)));

    std::vector<LocPert> Candidate = Cur;
    for (size_t M = 0; M != Moves; ++M) {
      const size_t Idx = G.index(K);
      if (G.chance(0.5)) {
        Candidate[Idx] = RandomPixel(G, Candidate, Idx);
      } else {
        // Color-only move.
        Candidate[Idx].Corner = static_cast<CornerIdx>(
            (Candidate[Idx].Corner + 1 + G.index(NumCorners - 1)) %
            NumCorners);
      }
    }
    return Candidate;
  };

  const size_t Horizon = Config.PrefetchHorizon;
  const bool Speculate = Horizon > 1 && Q.prefetchable();

  for (uint64_t Iter = 0; !Q.exhausted(); ++Iter) {
    if (Speculate && Iter % Horizon == 0) {
      Rng Sim = R;
      std::vector<Image> Batch;
      Batch.reserve(Horizon);
      for (size_t J = 0; J != Horizon; ++J) {
        const std::vector<LocPert> Spec = Propose(Sim, Iter + J, Current);
        Image Cand = X;
        for (const LocPert &P : Spec)
          Cand.setPixel(P.Loc.Row, P.Loc.Col, P.perturbation());
        Batch.push_back(std::move(Cand));
      }
      Q.prefetch(Batch);
    }

    std::vector<LocPert> Candidate = Propose(R, Iter, Current);

    double CandMargin = 0.0;
    if (!Evaluate(Candidate, CandMargin))
      return Finish();
    if (Out.Base.Success)
      return Finish();
    if (CandMargin <= Margin) {
      Current = std::move(Candidate);
      Margin = CandMargin;
    }
  }
  return Finish();
}
