//===- attacks/RandomPairSearch.h - Naive random baseline -------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_ATTACKS_RANDOMPAIRSEARCH_H
#define OPPSLA_ATTACKS_RANDOMPAIRSEARCH_H

#include "attacks/Attack.h"
#include "support/Rng.h"

namespace oppsla {

/// The weakest sensible baseline: enumerate the corner pair space in a
/// uniformly random order (without replacement) until a query succeeds.
/// Equivalent to the sketch with a random fixed prioritization and all
/// conditions false; useful as a sanity floor in ablations.
class RandomPairSearch : public Attack {
public:
  explicit RandomPairSearch(uint64_t Seed = 0x9a9dULL) : Seed_(Seed) {}

  std::string name() const override { return "RandomPairs"; }

  std::unique_ptr<Attack> clone() const override {
    return std::make_unique<RandomPairSearch>(Seed_);
  }

protected:
  uint64_t seed() const override { return Seed_; }

  AttackResult runAttack(Classifier &N, const Image &X, size_t TrueClass,
                         uint64_t QueryBudget, Rng &R) override;

private:
  uint64_t Seed_;
};

} // namespace oppsla

#endif // OPPSLA_ATTACKS_RANDOMPAIRSEARCH_H
