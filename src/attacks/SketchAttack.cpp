//===- attacks/SketchAttack.cpp - Program-driven attack ----------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "attacks/SketchAttack.h"

using namespace oppsla;

AttackResult SketchAttack::runAttack(Classifier &N, const Image &X,
                                     size_t TrueClass, uint64_t QueryBudget,
                                     Rng &) {
  // The sketch is deterministic; the per-run Rng is unused.
  const SketchResult R = Sk.run(N, X, TrueClass, QueryBudget);
  AttackResult Out;
  Out.Success = R.Success;
  Out.Queries = R.Queries;
  Out.Loc = R.Adversarial.Loc;
  Out.Perturbation = R.Adversarial.perturbation();
  Out.AlreadyMisclassified = R.AlreadyMisclassified;
  return Out;
}
