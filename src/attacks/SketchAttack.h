//===- attacks/SketchAttack.h - Program-driven attack -----------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_ATTACKS_SKETCHATTACK_H
#define OPPSLA_ATTACKS_SKETCHATTACK_H

#include "attacks/Attack.h"
#include "core/Sketch.h"

namespace oppsla {

/// Adapts an adversarial program (a sketch instantiation) to the Attack
/// interface. This is what "OPPSLA" denotes in the evaluation tables —
/// the program itself was produced offline by the synthesizer.
class SketchAttack : public Attack {
public:
  explicit SketchAttack(Program P, std::string DisplayName = "OPPSLA")
      : Sk(std::move(P)), DisplayName(std::move(DisplayName)) {}

  std::string name() const override { return DisplayName; }
  const Program &program() const { return Sk.program(); }

  std::unique_ptr<Attack> clone() const override {
    return std::make_unique<SketchAttack>(Sk.program(), DisplayName);
  }

protected:
  AttackResult runAttack(Classifier &N, const Image &X, size_t TrueClass,
                         uint64_t QueryBudget, Rng &R) override;

private:
  Sketch Sk;
  std::string DisplayName;
};

} // namespace oppsla

#endif // OPPSLA_ATTACKS_SKETCHATTACK_H
