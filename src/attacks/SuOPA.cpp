//===- attacks/SuOPA.cpp - Su et al. one pixel attack (DE) -------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "attacks/SuOPA.h"

#include "classify/QueryCounter.h"
#include "support/Profiler.h"

#include <algorithm>
#include <cmath>

using namespace oppsla;

namespace {

/// One DE individual: a candidate one pixel perturbation.
struct Individual {
  double Row, Col;    ///< continuous; rounded and clipped on application
  double Rc, Gc, Bc;  ///< color channels
  double Fitness;     ///< true-class confidence (lower is better)
};

} // namespace

AttackResult SuOPA::runAttack(Classifier &N, const Image &X,
                              size_t TrueClass, uint64_t QueryBudget,
                              Rng &R) {
  QueryCounter Q(N, QueryBudget);
  Q.setTraceTrueClass(TrueClass);
  AttackResult Out;
  const size_t H = X.height(), W = X.width();

  auto Finish = [&]() {
    Out.Queries = Q.count();
    return Out;
  };

  {
    const std::vector<float> S = Q.scores(X);
    if (S.empty())
      return Finish();
    if (argmaxScore(S) != TrueClass) {
      Out.Success = true;
      Out.AlreadyMisclassified = true;
      return Finish();
    }
  }

  Image Scratch = X;
  auto Apply = [&](const Individual &Ind, PixelLoc &LocOut, Pixel &PixOut) {
    const auto Row = static_cast<uint16_t>(std::clamp<long>(
        std::lround(Ind.Row), 0, static_cast<long>(H) - 1));
    const auto Col = static_cast<uint16_t>(std::clamp<long>(
        std::lround(Ind.Col), 0, static_cast<long>(W) - 1));
    LocOut = PixelLoc{Row, Col};
    PixOut = Pixel{std::clamp(static_cast<float>(Ind.Rc), 0.0f, 1.0f),
                   std::clamp(static_cast<float>(Ind.Gc), 0.0f, 1.0f),
                   std::clamp(static_cast<float>(Ind.Bc), 0.0f, 1.0f)};
  };

  // Returns false when the budget ran out; sets Success on misclassify.
  auto Evaluate = [&](Individual &Ind) {
    PixelLoc Loc;
    Pixel Pix;
    Apply(Ind, Loc, Pix);
    const Pixel Orig = X.pixel(Loc.Row, Loc.Col);
    Scratch.setPixel(Loc.Row, Loc.Col, Pix);
    const std::vector<float> S = Q.scores(Scratch);
    Scratch.setPixel(Loc.Row, Loc.Col, Orig);
    if (S.empty())
      return false;
    Ind.Fitness = S[TrueClass];
    if (argmaxScore(S) != TrueClass) {
      Out.Success = true;
      Out.Loc = Loc;
      Out.Perturbation = Pix;
    }
    return true;
  };

  // A candidate image materialized the way Evaluate submits it: X with one
  // pixel replaced. Byte-identical to the Scratch image Evaluate queries,
  // so prefetched entries hit.
  auto Materialize = [&](const Individual &Ind) {
    PixelLoc Loc;
    Pixel Pix;
    Apply(Ind, Loc, Pix);
    Image Cand = X;
    Cand.setPixel(Loc.Row, Loc.Col, Pix);
    return Cand;
  };

  const size_t Window = Config.PrefetchWindow;
  const bool Speculate = Window > 1 && Q.prefetchable();

  // Initial population: positions uniform, colors gaussian around mid-gray
  // (Su et al.'s initialization). Positions are drawn over the same closed
  // range [0, side-1] that mutants are clamped to below, so initialization
  // and mutation explore the identical domain (drawing over [0, side) put
  // extra rounding mass on the last row/column).
  //
  // All individuals are drawn before any is evaluated. Evaluate consumes no
  // RNG, so the draw stream is identical to drawing and evaluating
  // interleaved — and the complete population is then known upfront, which
  // lets the engine run exact (not speculative) prefetch windows.
  std::vector<Individual> Pop(Config.PopulationSize);
  for (Individual &Ind : Pop) {
    Ind.Row = R.uniform(0.0, static_cast<double>(H - 1));
    Ind.Col = R.uniform(0.0, static_cast<double>(W - 1));
    Ind.Rc = R.normal(0.5, 0.25);
    Ind.Gc = R.normal(0.5, 0.25);
    Ind.Bc = R.normal(0.5, 0.25);
  }

  const size_t P = Pop.size();
  {
    telemetry::ProfileScope InitSpan("suopa.init");
    for (size_t I = 0; I != P; ++I) {
      if (Speculate && I % Window == 0) {
        telemetry::ProfileScope PrefetchSpan("suopa.prefetch");
        const size_t End = std::min(I + Window, P);
        std::vector<Image> Batch;
        Batch.reserve(End - I);
        for (size_t J = I; J != End; ++J)
          Batch.push_back(Materialize(Pop[J]));
        Q.prefetch(Batch);
      }
      if (!Evaluate(Pop[I]))
        return Finish();
      if (Out.Success)
        return Finish();
    }
  }

  // DE/rand/1 index selection: three distinct members != I. The rejection
  // loops compare draws against indices only, never against Pop values, so
  // a cloned Rng replays the exact index stream of upcoming iterations —
  // only the mutant *values* are speculative (they read Pop, which changes
  // on acceptance).
  auto DrawIndices = [P](Rng &G, size_t I, size_t &A, size_t &B, size_t &C) {
    do
      A = G.index(P);
    while (A == I);
    do
      B = G.index(P);
    while (B == I || B == A);
    do
      C = G.index(P);
    while (C == I || C == A || C == B);
  };

  auto MutantOf = [&](size_t A, size_t B, size_t C) {
    Individual Mut;
    Mut.Row = Pop[A].Row + Config.F * (Pop[B].Row - Pop[C].Row);
    Mut.Col = Pop[A].Col + Config.F * (Pop[B].Col - Pop[C].Col);
    Mut.Rc = Pop[A].Rc + Config.F * (Pop[B].Rc - Pop[C].Rc);
    Mut.Gc = Pop[A].Gc + Config.F * (Pop[B].Gc - Pop[C].Gc);
    Mut.Bc = Pop[A].Bc + Config.F * (Pop[B].Bc - Pop[C].Bc);
    Mut.Row = std::clamp(Mut.Row, 0.0, static_cast<double>(H - 1));
    Mut.Col = std::clamp(Mut.Col, 0.0, static_cast<double>(W - 1));
    return Mut;
  };

  for (size_t Gen = 0; Gen != Config.MaxGenerations; ++Gen) {
    telemetry::ProfileScope GenSpan("suopa.generation");
    for (size_t I = 0; I != P; ++I) {
      if (Speculate && I % Window == 0) {
        // Predict the window's mutants from the current population under a
        // no-acceptance assumption. Mispredictions (an acceptance inside
        // the window) cost wasted forwards, never wrong answers: the cache
        // verifies full image bytes on every hit.
        telemetry::ProfileScope PrefetchSpan("suopa.prefetch");
        Rng Sim = R;
        const size_t End = std::min(I + Window, P);
        std::vector<Image> Batch;
        Batch.reserve(End - I);
        for (size_t J = I; J != End; ++J) {
          size_t A, B, C;
          DrawIndices(Sim, J, A, B, C);
          Batch.push_back(Materialize(MutantOf(A, B, C)));
        }
        Q.prefetch(Batch);
      }

      size_t A, B, C;
      DrawIndices(R, I, A, B, C);
      Individual Mut = MutantOf(A, B, C);

      if (!Evaluate(Mut))
        return Finish();
      if (Out.Success)
        return Finish();
      if (Mut.Fitness <= Pop[I].Fitness)
        Pop[I] = Mut;
    }
  }
  return Finish();
}
