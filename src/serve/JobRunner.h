//===- serve/JobRunner.h - Job execution engine -----------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes admitted jobs: worker threads pop from the JobQueue, split
/// each job's dataset slice into shards, and drive the existing sweep
/// harness (runAttackOverSet / runProgramsOverSet) through per-job
/// QueryEngine instances. Engines cloned for the same victim share one
/// ScoreCache (QueryEngineConfig::ShareCacheOnClone), so concurrent jobs
/// against the same classifier pool their forwards — the cache verifies
/// image bytes on every hit, so results never change.
///
/// After every shard the job's spec + completed runs are checkpointed to
/// disk (atomic write). A killed server restarted with resume() re-admits
/// pending checkpoints and re-runs only the missing image indices; because
/// each run is a pure function of (seed, image), the resumed result
/// artifact is byte-identical to an uninterrupted run's.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_SERVE_JOBRUNNER_H
#define OPPSLA_SERVE_JOBRUNNER_H

#include "engine/QueryEngine.h"
#include "eval/Experiments.h"
#include "serve/JobQueue.h"

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace oppsla {
namespace serve {

struct JobRunnerConfig {
  /// Directory for job-<id>.ckpt / job-<id>.result files.
  std::string CheckpointDir = ".oppsla-serve";
  /// Concurrent jobs (runner worker threads). 0 = runner disabled: jobs
  /// queue up but never execute (admission-control tests use this).
  size_t Workers = 1;
  /// Sweep threads per job (the shard's image-level parallelism).
  size_t Threads = 1;
  /// Images per shard — also the checkpoint cadence.
  size_t CheckpointEvery = 4;
  /// Per-job query engine settings; ShareCacheOnClone is forced on.
  QueryEngineConfig Engine;
  /// Synthesis-phase shape for Synth/Eval jobs: island fan-out, exchange
  /// cadence, and program-store policy. Threads is overridden per job
  /// with the runner's sweep thread budget.
  SynthesisRunOptions Synth;
  /// Crash-injection test hook: after this many images have been attacked
  /// (and their shard checkpointed) in this process, _exit(3) — the
  /// checkpoint/resume ctest uses it to kill the server at a
  /// deterministic point. 0 = off.
  size_t CrashAfterImages = 0;
  /// Test hook: called after shard \p ShardIdx of job \p JobId has been
  /// swept and checkpointed, before the next shard starts. Runs on the
  /// worker thread — the cancel-at-shard-boundary test uses it to cancel
  /// a job at a deterministic point. Null = off.
  std::function<void(uint64_t JobId, size_t ShardIdx)> OnShardDone;
};

/// Pops jobs from a JobQueue and runs them to completion (or checkpointed
/// suspension).
class JobRunner {
public:
  JobRunner(JobQueue &Queue, JobRunnerConfig Config);
  ~JobRunner();

  /// Spawns the worker threads. No-op when Workers == 0.
  void start();

  /// Graceful drain: workers finish their current shard, checkpoint, and
  /// requeue their job (state back to Queued), then exit. Closes the
  /// queue. Idempotent.
  void stop();

  /// Scans the checkpoint directory: finished `.result` artifacts are
  /// re-registered as Done jobs (still downloadable), pending `.ckpt`
  /// files are re-admitted with their completed runs preloaded. Call
  /// before start(). \returns the number of re-admitted pending jobs.
  size_t resume();

  /// Shards currently sweeping across all workers.
  size_t inflightShards() const {
    return Inflight.load(std::memory_order_relaxed);
  }

  /// Records one observed job service time (pop to completion). Called by
  /// runJob for every job that runs to Done; tests inject samples to pin
  /// Retry-After arithmetic.
  void recordServiceSample(double Seconds);

  /// Median of the recorded service samples, or 0.0 when none exist yet.
  /// The HTTP layer derives 429 Retry-After from this.
  double medianServiceSeconds() const;

  const JobRunnerConfig &config() const { return Config; }

  JobRunner(const JobRunner &) = delete;
  JobRunner &operator=(const JobRunner &) = delete;

private:
  /// Per-victim shared state: the trained master classifier, the master
  /// engine whose clones share one ScoreCache, and the synthesized
  /// class programs (Eval/Synth jobs). Keyed by victim stem.
  struct VictimEntry {
    std::mutex Mu; ///< guards construction, synthesis, and master access
    std::unique_ptr<NNClassifier> Victim;
    std::unique_ptr<QueryEngine> Engine;
    /// In-memory program cache, filled class by class (the durable copy
    /// lives in the program store).
    std::map<size_t, Program> ProgramByClass;
  };

  void workerLoop();
  void runJob(const std::shared_ptr<Job> &J);
  VictimEntry &victimEntry(const JobSpec &Spec);
  /// The synthesized program for one class of \p Spec's victim: the
  /// in-memory cache, then the program store, then an island synthesis
  /// run — whichever answers first. Serialized per victim via E.Mu.
  Program classProgram(VictimEntry &E, const JobSpec &Spec, size_t Label);
  bool checkpointJob(Job &J, int64_t Shard = -1);

  JobQueue &Queue;
  JobRunnerConfig Config;
  std::vector<std::thread> Workers;
  std::atomic<bool> Stopping{false};
  std::atomic<size_t> Inflight{0};
  std::atomic<size_t> ImagesCompleted{0}; ///< feeds CrashAfterImages

  std::mutex PoolMu; ///< guards the Victims map (not the entries)
  std::map<std::string, std::unique_ptr<VictimEntry>> Victims;

  mutable std::mutex ServiceMu; ///< guards ServiceSamples
  std::vector<double> ServiceSamples;
};

} // namespace serve
} // namespace oppsla

#endif // OPPSLA_SERVE_JOBRUNNER_H
