//===- serve/ServeServer.h - HTTP job API -----------------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The attack-as-a-service HTTP front end (`oppsla serve`). Built on the
/// same shared plumbing as the stats server (support/Http.h): raw POSIX
/// sockets, one accept thread, 127.0.0.1 only. Endpoints:
///
///   POST   /v1/jobs             submit a job (JSON spec; see
///                               parseJobSpec). 202 + {"id":N} on
///                               admission, 429 + Retry-After when the
///                               queue is full, 400 on a bad spec;
///   GET    /v1/jobs             every known job plus queue state;
///   GET    /v1/jobs/<id>        one job's status;
///   GET    /v1/jobs/<id>/result the finished wire artifact
///                               (application/octet-stream; 409 until
///                               the job is done);
///   GET    /v1/jobs/<id>/trace  the job's phase timeline as Chrome
///                               Trace Event JSON (404 when job tracing
///                               is off; partial for running jobs);
///   DELETE /v1/jobs/<id>        cancel (queued: immediate; running:
///                               honoured at the next shard boundary);
///   GET    /metrics             Prometheus exposition incl. the serve.*
///                               queue/job instruments;
///   GET    /healthz             queue depth, in-flight shards, and
///                               per-job progress as JSON;
///   GET    /logz?n=..&level=..  newest log-ring records as JSONL;
///   GET    /quitquitquit        ask the server loop to exit.
///
/// Submissions honour a W3C `traceparent` request header: the job adopts
/// the client's trace context (echoed as "trace_id" in the 202 body and
/// stamped on every phase span); without one the server mints a context.
/// A full queue's 429 carries Retry-After derived from the observed
/// median job service time scaled by queue depth over worker count
/// (falling back to Config.RetryAfterSeconds before any job completed).
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_SERVE_SERVESERVER_H
#define OPPSLA_SERVE_SERVESERVER_H

#include "serve/JobQueue.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace oppsla {
namespace http {
struct Request;
} // namespace http

namespace serve {

class JobRunner;

struct ServeServerConfig {
  uint16_t Port = 0;        ///< 0 = ephemeral
  int RetryAfterSeconds = 2; ///< 429 Retry-After fallback (no samples yet)
};

class ServeServer {
public:
  ServeServer(JobQueue &Queue, JobRunner &Runner,
              ServeServerConfig Config = ServeServerConfig());
  ~ServeServer();

  /// Binds and starts the accept thread. \returns false after logging on
  /// socket failure.
  bool start();

  uint16_t port() const { return BoundPort; }
  bool running() const { return ListenFd >= 0; }

  /// True once a client requested /quitquitquit.
  bool quitRequested() const {
    return Quit.load(std::memory_order_relaxed);
  }
  /// Blocks until quitRequested() or \p TimeoutSeconds elapsed (0 = no
  /// cap). \returns quitRequested().
  bool waitQuit(double TimeoutSeconds);

  /// Stops accepting and joins the thread. Idempotent. Does not touch the
  /// queue or runner.
  void stop();

  ServeServer(const ServeServer &) = delete;
  ServeServer &operator=(const ServeServer &) = delete;

private:
  void serveLoop();
  void handle(int Client, const http::Request &Req);
  /// Seconds to advertise on a 429: median observed service time scaled
  /// by (queue depth + 1) / workers, clamped to [1, 3600]; the configured
  /// constant until the first job completes.
  int retryAfterSeconds() const;

  JobQueue &Queue;
  JobRunner &Runner;
  ServeServerConfig Config;
  int ListenFd = -1;
  uint16_t BoundPort = 0;
  std::thread Thread;
  std::atomic<bool> Quit{false};
  std::atomic<bool> Stopping{false};
};

/// One job's status document (shared by GET /v1/jobs and /v1/jobs/<id>).
std::string jobStatusJson(Job &J);

} // namespace serve
} // namespace oppsla

#endif // OPPSLA_SERVE_SERVESERVER_H
