//===- serve/JobTrace.h - Per-job phase timelines ---------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-job causal timeline behind `GET /v1/jobs/<id>/trace`. Every
/// admitted job (when job tracing is enabled) owns a JobTrace: the W3C
/// trace context the client minted (or the server minted on its behalf)
/// plus a list of timestamped phase spans recorded as the job crosses
/// subsystem boundaries — queued, setup, shard[i], checkpoint, finalize —
/// and terminal instants (done / cancelled / suspended / failed).
///
/// The timeline exports as Chrome Trace Event JSON (chrome://tracing,
/// Perfetto): one "thread" per job (tid = job id), spans as complete "X"
/// events in microseconds relative to job admission. Open phases render
/// with duration up to now, so a running or cancelled job's partial trace
/// is fetchable at any time.
///
/// Tracing is observability only: phase recording takes a per-job mutex on
/// cold paths (phase boundaries are per-shard, not per-query) and never
/// touches attack RNG streams or result bytes.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_SERVE_JOBTRACE_H
#define OPPSLA_SERVE_JOBTRACE_H

#include "support/Trace.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace oppsla {
namespace serve {

/// Process-wide job-tracing gate. Serve mode enables it by default
/// (`--no-job-trace` opts out); benches toggle it to measure overhead.
void setJobTracingEnabled(bool Enabled);
bool jobTracingEnabled();

/// One job's phase timeline. Thread-safe: the runner worker records
/// phases while the HTTP thread renders snapshots.
class JobTrace {
public:
  JobTrace(uint64_t JobId, telemetry::TraceContext Ctx);

  uint64_t jobId() const { return JobId; }
  const telemetry::TraceContext &context() const { return Ctx; }

  /// Opens a phase span named \p Name (a literal or interned string).
  /// \p Shard >= 0 tags shard-scoped phases with their shard index.
  /// \returns a token for endPhase(); 0 is never a valid token.
  uint64_t beginPhase(const char *Name, int64_t Shard = -1);

  /// Closes the span behind \p Token (token 0 or an already-closed token
  /// is a no-op). \returns the span's duration in nanoseconds (0 for
  /// no-ops) so callers can feed duration histograms from the same clock
  /// reads.
  uint64_t endPhase(uint64_t Token);

  /// Records a zero-duration instant event (terminal markers: done,
  /// cancelled at shard \p Shard, suspended, failed).
  void instant(const char *Name, int64_t Shard = -1);

  /// Renders the timeline as a Chrome Trace Event JSON document
  /// (`{"traceEvents":[...]}`). Open phases get a duration up to now.
  /// Events are ordered by timestamp, metadata first.
  std::string chromeTraceJson() const;

  JobTrace(const JobTrace &) = delete;
  JobTrace &operator=(const JobTrace &) = delete;

private:
  struct Phase {
    const char *Name;
    uint64_t StartNs;
    uint64_t EndNs; ///< 0 while open
    int64_t Shard;  ///< -1 = not shard-scoped
    bool Instant;
  };

  const uint64_t JobId;
  const telemetry::TraceContext Ctx;
  const uint64_t CreatedNs; ///< admission time; the timeline's origin

  mutable std::mutex Mu;
  std::vector<Phase> Phases;
};

} // namespace serve
} // namespace oppsla

#endif // OPPSLA_SERVE_JOBTRACE_H
