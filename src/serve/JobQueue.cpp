//===- serve/JobQueue.cpp - Bounded priority job queue -----------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/JobQueue.h"

#include "support/Json.h"
#include "support/Metrics.h"

#include <algorithm>

using namespace oppsla;
using namespace oppsla::serve;

const char *serve::jobKindName(JobKind K) {
  switch (K) {
  case JobKind::Attack:
    return "attack";
  case JobKind::Eval:
    return "eval";
  case JobKind::Synth:
    return "synth";
  }
  return "unknown";
}

const char *serve::jobStateName(JobState S) {
  switch (S) {
  case JobState::Queued:
    return "queued";
  case JobState::Running:
    return "running";
  case JobState::Done:
    return "done";
  case JobState::Failed:
    return "failed";
  case JobState::Cancelled:
    return "cancelled";
  }
  return "unknown";
}

bool serve::parseJobSpec(const std::string &JsonText, JobSpec &Out,
                         std::string &Error) {
  json::Value Doc;
  if (!json::parse(JsonText, Doc, Error))
    return false;
  if (!Doc.isObject()) {
    Error = "job spec must be a JSON object";
    return false;
  }

  JobSpec S;
  const std::string Kind = Doc.getString("kind", "eval");
  if (Kind == "attack")
    S.Kind = JobKind::Attack;
  else if (Kind == "eval")
    S.Kind = JobKind::Eval;
  else if (Kind == "synth")
    S.Kind = JobKind::Synth;
  else {
    Error = "unknown kind '" + Kind + "' (want attack|eval|synth)";
    return false;
  }

  S.AttackName = Doc.getString("attack", S.AttackName);
  if (S.Kind == JobKind::Attack && S.AttackName != "sparse-rs" &&
      S.AttackName != "suopa" && S.AttackName != "random") {
    Error = "unknown attack '" + S.AttackName +
            "' (want sparse-rs|suopa|random)";
    return false;
  }

  // The victim triple: either a nested {"victim":{...}} object or flat
  // task/arch/scale keys.
  const json::Value *Victim = Doc.find("victim");
  const json::Value &V = Victim && Victim->isObject() ? *Victim : Doc;
  S.TaskName = V.getString("task", S.TaskName);
  if (S.TaskName != "cifar" && S.TaskName != "imagenet") {
    Error = "unknown task '" + S.TaskName + "' (want cifar|imagenet)";
    return false;
  }
  S.ArchName = V.getString("arch", S.ArchName);
  S.ScaleName = V.getString("scale", S.ScaleName);
  if (S.ScaleName != "smoke" && S.ScaleName != "small" &&
      S.ScaleName != "paper") {
    Error = "unknown scale '" + S.ScaleName + "' (want smoke|small|paper)";
    return false;
  }

  S.Seed = static_cast<uint64_t>(
      Doc.getNumber("seed", static_cast<double>(S.Seed)));
  S.Budget = static_cast<uint64_t>(Doc.getNumber("budget", 0.0));
  S.Priority = static_cast<int>(Doc.getNumber("priority", 0.0));

  const json::Value *Slice = Doc.find("slice");
  if (Slice && Slice->isObject()) {
    S.Begin = static_cast<uint64_t>(Slice->getNumber("begin", 0.0));
    S.Count = static_cast<uint64_t>(Slice->getNumber("count", 0.0));
  } else {
    S.Begin = static_cast<uint64_t>(Doc.getNumber("begin", 0.0));
    S.Count = static_cast<uint64_t>(Doc.getNumber("count", 0.0));
  }

  // Optional trace context (checkpoint records round-trip it so a resumed
  // job keeps its client's trace id). Malformed values are dropped, not
  // errors — observability never rejects work.
  const std::string Trace = Doc.getString("trace", "");
  telemetry::TraceContext Ctx;
  if (telemetry::parseTraceparent(Trace, Ctx))
    S.TraceParent = Ctx.traceparent();

  Out = std::move(S);
  return true;
}

std::string serve::jobSpecJson(const JobSpec &Spec) {
  std::string Out = "{\"kind\":\"";
  Out += jobKindName(Spec.Kind);
  Out += "\"";
  if (Spec.Kind == JobKind::Attack) {
    Out += ",\"attack\":\"";
    json::escape(Out, Spec.AttackName);
    Out += "\"";
  }
  Out += ",\"victim\":{\"task\":\"";
  json::escape(Out, Spec.TaskName);
  Out += "\",\"arch\":\"";
  json::escape(Out, Spec.ArchName);
  Out += "\",\"scale\":\"";
  json::escape(Out, Spec.ScaleName);
  Out += "\"},\"seed\":" + std::to_string(Spec.Seed) +
         ",\"budget\":" + std::to_string(Spec.Budget) +
         ",\"priority\":" + std::to_string(Spec.Priority) +
         ",\"slice\":{\"begin\":" + std::to_string(Spec.Begin) +
         ",\"count\":" + std::to_string(Spec.Count) + "}}";
  return Out;
}

std::string serve::jobSpecJsonWithTrace(const JobSpec &Spec) {
  std::string Out = jobSpecJson(Spec);
  if (Spec.TraceParent.empty())
    return Out;
  Out.pop_back(); // reopen the object
  Out += ",\"trace\":\"";
  json::escape(Out, Spec.TraceParent);
  Out += "\"}";
  return Out;
}

namespace {

/// Queue-wait distribution in milliseconds, fed by pop() from the same
/// clock reads that close the "queued" phase span.
telemetry::Histogram &queueWaitHistogram() {
  static telemetry::Histogram &H = telemetry::histogram(
      "serve.queue.wait_ms", {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
                              500.0, 1000.0, 2000.0, 5000.0, 10000.0,
                              30000.0, 60000.0});
  return H;
}

/// Builds the job's timeline when tracing is on: adopt the traceparent the
/// spec carries (client-minted or checkpoint-round-tripped), else mint.
std::shared_ptr<JobTrace> makeJobTrace(uint64_t Id, JobSpec &Spec) {
  if (!jobTracingEnabled())
    return nullptr;
  telemetry::TraceContext Ctx;
  if (!telemetry::parseTraceparent(Spec.TraceParent, Ctx))
    Ctx = telemetry::mintTraceContext();
  Spec.TraceParent = Ctx.traceparent();
  return std::make_shared<JobTrace>(Id, std::move(Ctx));
}

} // namespace

JobQueue::JobQueue(size_t Capacity) : Capacity(std::max<size_t>(1, Capacity)) {
  updateDepthGauge(0);
  // Register the wait histogram up front so /metrics exposes the series
  // (with zero observations) before the first pop, not after.
  queueWaitHistogram();
}

void JobQueue::updateDepthGauge(size_t Depth) const {
  static telemetry::Gauge &G = telemetry::gauge("serve.queue.depth");
  G.set(static_cast<double>(Depth));
}

std::shared_ptr<Job> JobQueue::create(const JobSpec &Spec) {
  auto J = std::make_shared<Job>();
  J->Spec = Spec;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    J->Id = NextId++;
  }
  // Build the timeline before the job becomes findable, so Job::Trace is
  // immutable once any other thread can see the job.
  J->Trace = makeJobTrace(J->Id, J->Spec);
  std::lock_guard<std::mutex> Lock(Mu);
  Registry[J->Id] = J;
  return J;
}

void JobQueue::adopt(const std::shared_ptr<Job> &J) {
  if (!J->Trace)
    J->Trace = makeJobTrace(J->Id, J->Spec);
  std::lock_guard<std::mutex> Lock(Mu);
  Registry[J->Id] = J;
  NextId = std::max(NextId, J->Id + 1);
}

bool JobQueue::enqueue(const std::shared_ptr<Job> &J, bool Force) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (!Force && Queued.size() >= Capacity)
      return false;
    J->State.store(JobState::Queued, std::memory_order_relaxed);
    Queued.push_back(J);
    updateDepthGauge(Queued.size());
  }
  if (J->Trace)
    J->QueuedToken.store(J->Trace->beginPhase("queued"),
                         std::memory_order_release);
  Ready.notify_one();
  return true;
}

void JobQueue::closeQueuedPhase(Job &J, bool ObserveWait) {
  if (!J.Trace)
    return;
  const uint64_t Token =
      J.QueuedToken.exchange(0, std::memory_order_acq_rel);
  if (Token == 0)
    return;
  const uint64_t WaitNs = J.Trace->endPhase(Token);
  if (ObserveWait)
    queueWaitHistogram().observe(static_cast<double>(WaitNs) / 1e6);
}

std::shared_ptr<Job> JobQueue::pop() {
  std::unique_lock<std::mutex> Lock(Mu);
  for (;;) {
    Ready.wait(Lock, [this] { return Closed || !Queued.empty(); });
    if (Closed)
      return nullptr;

    // Drop jobs cancelled while queued, then take the highest-priority
    // survivor (FIFO within a level: the deque keeps submission order, so
    // the first max-priority hit is the oldest).
    Queued.erase(std::remove_if(Queued.begin(), Queued.end(),
                                [](const std::shared_ptr<Job> &J) {
                                  return J->State.load(
                                             std::memory_order_relaxed) ==
                                         JobState::Cancelled;
                                }),
                 Queued.end());
    if (Queued.empty()) {
      updateDepthGauge(0);
      continue;
    }
    auto Best = Queued.begin();
    for (auto It = std::next(Best); It != Queued.end(); ++It)
      if ((*It)->Spec.Priority > (*Best)->Spec.Priority)
        Best = It;
    std::shared_ptr<Job> J = *Best;
    Queued.erase(Best);
    updateDepthGauge(Queued.size());
    J->State.store(JobState::Running, std::memory_order_relaxed);
    Lock.unlock();
    closeQueuedPhase(*J, /*ObserveWait=*/true);
    return J;
  }
}

void JobQueue::close() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Closed = true;
  }
  Ready.notify_all();
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Closed;
}

bool JobQueue::cancel(uint64_t Id) {
  std::shared_ptr<Job> J;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    const auto It = Registry.find(Id);
    if (It == Registry.end())
      return false;
    J = It->second;
  }
  JobState Expected = JobState::Queued;
  if (J->State.compare_exchange_strong(Expected, JobState::Cancelled,
                                       std::memory_order_relaxed)) {
    // pop() lazily removes it from the deque.
    J->CancelRequested.store(true, std::memory_order_relaxed);
    closeQueuedPhase(*J, /*ObserveWait=*/false);
    if (J->Trace)
      J->Trace->instant("cancelled");
    return true;
  }
  if (Expected == JobState::Running) {
    J->CancelRequested.store(true, std::memory_order_relaxed);
    return true;
  }
  return false; // already finished
}

std::shared_ptr<Job> JobQueue::find(uint64_t Id) const {
  std::lock_guard<std::mutex> Lock(Mu);
  const auto It = Registry.find(Id);
  return It == Registry.end() ? nullptr : It->second;
}

std::vector<std::shared_ptr<Job>> JobQueue::all() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::shared_ptr<Job>> Out;
  Out.reserve(Registry.size());
  for (const auto &[Id, J] : Registry)
    Out.push_back(J);
  return Out;
}

size_t JobQueue::depth() const {
  std::lock_guard<std::mutex> Lock(Mu);
  size_t N = 0;
  for (const auto &J : Queued)
    N += J->State.load(std::memory_order_relaxed) == JobState::Queued;
  return N;
}
