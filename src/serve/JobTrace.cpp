//===- serve/JobTrace.cpp - Per-job phase timelines --------------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/JobTrace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>

using namespace oppsla;
using namespace oppsla::serve;

namespace {

std::atomic<bool> JobTracingFlag{true};

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

void serve::setJobTracingEnabled(bool Enabled) {
  JobTracingFlag.store(Enabled, std::memory_order_relaxed);
}

bool serve::jobTracingEnabled() {
  return JobTracingFlag.load(std::memory_order_relaxed);
}

JobTrace::JobTrace(uint64_t JobId, telemetry::TraceContext Ctx)
    : JobId(JobId), Ctx(std::move(Ctx)), CreatedNs(nowNs()) {
  Phases.reserve(16);
}

uint64_t JobTrace::beginPhase(const char *Name, int64_t Shard) {
  const uint64_t StartNs = nowNs();
  std::lock_guard<std::mutex> Lock(Mu);
  Phases.push_back({Name, StartNs, 0, Shard, false});
  return Phases.size(); // index + 1, so 0 stays invalid
}

uint64_t JobTrace::endPhase(uint64_t Token) {
  const uint64_t EndNs = nowNs();
  std::lock_guard<std::mutex> Lock(Mu);
  if (Token == 0 || Token > Phases.size())
    return 0;
  Phase &P = Phases[Token - 1];
  if (P.EndNs != 0 || P.Instant)
    return 0;
  P.EndNs = std::max(EndNs, P.StartNs);
  return P.EndNs - P.StartNs;
}

void JobTrace::instant(const char *Name, int64_t Shard) {
  const uint64_t TsNs = nowNs();
  std::lock_guard<std::mutex> Lock(Mu);
  Phases.push_back({Name, TsNs, TsNs, Shard, true});
}

std::string JobTrace::chromeTraceJson() const {
  const uint64_t Now = nowNs();
  std::vector<Phase> Snapshot;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Snapshot = Phases;
  }
  // Chrome's JSON importer tolerates out-of-order events, but a timeline
  // sorted by start keeps the document diffable and lets the schema
  // checker assert per-thread ts monotonicity.
  std::stable_sort(Snapshot.begin(), Snapshot.end(),
                   [](const Phase &A, const Phase &B) {
                     return A.StartNs < B.StartNs;
                   });

  std::string Out = "{\"traceEvents\":[";
  // Metadata first: name the process and this job's "thread".
  Out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
         std::to_string(JobId) +
         ",\"args\":{\"name\":\"oppsla-serve\"}},";
  Out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
         std::to_string(JobId) + ",\"args\":{\"name\":\"job " +
         std::to_string(JobId) + "\"}}";

  char Buf[64];
  for (const Phase &P : Snapshot) {
    // Clamp to the timeline origin: a phase can begin on another thread
    // nanoseconds before CreatedNs is visible, never meaningfully so.
    const uint64_t StartNs = std::max(P.StartNs, CreatedNs);
    const uint64_t TsUs = (StartNs - CreatedNs) / 1000;
    Out += ",{\"name\":\"";
    telemetry::appendJsonEscaped(Out, P.Name);
    Out += "\",\"cat\":\"job\",\"ph\":\"";
    Out += P.Instant ? "i" : "X";
    Out += "\"";
    std::snprintf(Buf, sizeof(Buf), ",\"ts\":%" PRIu64, TsUs);
    Out += Buf;
    if (!P.Instant) {
      const uint64_t EndNs =
          std::max(P.EndNs == 0 ? Now : P.EndNs, StartNs);
      std::snprintf(Buf, sizeof(Buf), ",\"dur\":%" PRIu64,
                    (EndNs - StartNs) / 1000);
      Out += Buf;
    } else {
      Out += ",\"s\":\"t\"";
    }
    Out += ",\"pid\":1,\"tid\":" + std::to_string(JobId) +
           ",\"args\":{\"trace_id\":\"" + Ctx.TraceId + "\"";
    if (P.Shard >= 0)
      Out += ",\"shard\":" + std::to_string(P.Shard);
    if (P.EndNs == 0 && !P.Instant)
      Out += ",\"open\":true";
    Out += "}}";
  }
  Out += "],\"displayTimeUnit\":\"ms\"}";
  return Out;
}
