//===- serve/Checkpoint.cpp - Job checkpoint files ---------------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Checkpoint.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>

using namespace oppsla;
using namespace oppsla::serve;

namespace fs = std::filesystem;

std::string serve::jobCheckpointPath(const std::string &Dir, uint64_t Id) {
  return Dir + "/job-" + std::to_string(Id) + ".ckpt";
}

std::string serve::jobResultPath(const std::string &Dir, uint64_t Id) {
  return Dir + "/job-" + std::to_string(Id) + ".result";
}

bool serve::ensureDir(const std::string &Dir, std::string &Error) {
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  if (Ec && !fs::is_directory(Dir)) {
    Error = "checkpoint: cannot create " + Dir + ": " + Ec.message();
    return false;
  }
  return true;
}

bool serve::writeCheckpoint(const std::string &Path,
                            const std::string &SpecJson,
                            const std::vector<WireRun> &Runs,
                            std::string &Error) {
  WireBuilder B;
  B.addJobSpecJson(SpecJson);
  // Index order keeps the artifact bytes independent of completion order,
  // which is what makes resumed and uninterrupted runs byte-identical.
  std::vector<WireRun> Sorted = Runs;
  std::sort(Sorted.begin(), Sorted.end(),
            [](const WireRun &A, const WireRun &B) {
              return A.Index < B.Index;
            });
  for (const WireRun &R : Sorted)
    B.addRun(R);
  return writeFileAtomic(Path, B.finish(), Error);
}

bool serve::loadCheckpoint(const std::string &Path, std::string &SpecJson,
                           std::vector<WireRun> &Runs, std::string &Error) {
  WireContents C;
  if (!readWireFile(Path, C, Error))
    return false;
  if (C.JobSpecJson.empty()) {
    Error = "checkpoint: " + Path + " carries no job spec record";
    return false;
  }
  SpecJson = std::move(C.JobSpecJson);
  Runs = std::move(C.Runs);
  return true;
}

std::vector<RecoveredJob> serve::scanCheckpointDir(const std::string &Dir) {
  std::vector<RecoveredJob> Out;
  std::error_code Ec;
  for (const auto &Entry : fs::directory_iterator(Dir, Ec)) {
    const std::string Name = Entry.path().filename().string();
    if (Name.rfind("job-", 0) != 0)
      continue;
    bool Finished;
    size_t Tail;
    if (Name.size() > 7 && Name.compare(Name.size() - 5, 5, ".ckpt") == 0) {
      Finished = false;
      Tail = 5;
    } else if (Name.size() > 9 &&
               Name.compare(Name.size() - 7, 7, ".result") == 0) {
      Finished = true;
      Tail = 7;
    } else {
      continue;
    }
    const std::string IdStr = Name.substr(4, Name.size() - 4 - Tail);
    char *End = nullptr;
    const unsigned long long Id = std::strtoull(IdStr.c_str(), &End, 10);
    if (End == IdStr.c_str() || *End != '\0')
      continue;
    Out.push_back({Id, Entry.path().string(), Finished});
  }
  std::sort(Out.begin(), Out.end(),
            [](const RecoveredJob &A, const RecoveredJob &B) {
              if (A.Id != B.Id)
                return A.Id < B.Id;
              return A.Finished > B.Finished;
            });
  return Out;
}
