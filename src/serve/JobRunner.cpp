//===- serve/JobRunner.cpp - Job execution engine -----------------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/JobRunner.h"

#include "attacks/RandomPairSearch.h"
#include "attacks/SparseRS.h"
#include "attacks/SuOPA.h"
#include "eval/Evaluation.h"
#include "serve/Checkpoint.h"
#include "support/Logging.h"
#include "support/Metrics.h"
#include "support/Profiler.h"
#include "support/Trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <set>
#include <stdexcept>

#include <unistd.h>

using namespace oppsla;
using namespace oppsla::serve;

namespace {

telemetry::Gauge &runningGauge() {
  static telemetry::Gauge &G = telemetry::gauge("serve.jobs.running");
  return G;
}
telemetry::Gauge &inflightGauge() {
  static telemetry::Gauge &G = telemetry::gauge("serve.shards.inflight");
  return G;
}
telemetry::Counter &completedCounter() {
  static telemetry::Counter &C = telemetry::counter("serve.jobs.completed");
  return C;
}
telemetry::Counter &failedCounter() {
  static telemetry::Counter &C = telemetry::counter("serve.jobs.failed");
  return C;
}
telemetry::Counter &cancelledCounter() {
  static telemetry::Counter &C = telemetry::counter("serve.jobs.cancelled");
  return C;
}
telemetry::Counter &checkpointCounter() {
  static telemetry::Counter &C =
      telemetry::counter("serve.checkpoints.written");
  return C;
}
/// Per-shard sweep duration distribution (milliseconds), on /metrics as
/// serve.shard.exec_ms.
telemetry::Histogram &shardExecHistogram() {
  static telemetry::Histogram &H = telemetry::histogram(
      "serve.shard.exec_ms", {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
                              200.0, 500.0, 1000.0, 2000.0, 5000.0,
                              10000.0, 30000.0, 60000.0});
  return H;
}

TaskKind taskOfSpec(const JobSpec &S) {
  return S.TaskName == "imagenet" ? TaskKind::ImageNetLike
                                  : TaskKind::CifarLike;
}

std::unique_ptr<Attack> makeBaselineAttack(const std::string &Name) {
  if (Name == "sparse-rs")
    return std::make_unique<SparseRS>();
  if (Name == "suopa")
    return std::make_unique<SuOPA>();
  if (Name == "random")
    return std::make_unique<RandomPairSearch>();
  return nullptr;
}

/// The per-job progress gauges /metrics exposes
/// (serve.job.<id>.done/.total).
void setJobGauges(const Job &J) {
  const std::string Stem = "serve.job." + std::to_string(J.Id);
  telemetry::gauge(Stem + ".done")
      .set(static_cast<double>(J.Done.load(std::memory_order_relaxed)));
  telemetry::gauge(Stem + ".total")
      .set(static_cast<double>(J.Total.load(std::memory_order_relaxed)));
}

WireRun toWireRun(size_t Index, const AttackRunLog &Log) {
  WireRun R;
  R.Index = static_cast<uint32_t>(Index);
  R.Label = static_cast<uint32_t>(Log.Label);
  R.Outcome = Log.Discarded ? 2 : Log.Success ? 1 : 0;
  R.Queries = Log.Queries;
  return R;
}

} // namespace

JobRunner::JobRunner(JobQueue &Queue, JobRunnerConfig Config)
    : Queue(Queue), Config(std::move(Config)) {
  // Shared-cache clones are the point of pooling jobs per victim; the
  // cache byte-verifies hits, so this is a pure perf setting.
  this->Config.Engine.ShareCacheOnClone = true;
  if (this->Config.CheckpointEvery == 0)
    this->Config.CheckpointEvery = 1;
  // Register the exec histogram up front so /metrics exposes the series
  // before the first shard completes.
  shardExecHistogram();
  std::string Error;
  if (!ensureDir(this->Config.CheckpointDir, Error))
    logError() << "serve: " << Error;
}

JobRunner::~JobRunner() { stop(); }

void JobRunner::start() {
  for (size_t T = 0; T != Config.Workers; ++T)
    Workers.emplace_back([this] { workerLoop(); });
}

void JobRunner::stop() {
  Stopping.store(true, std::memory_order_relaxed);
  Queue.close();
  for (std::thread &W : Workers)
    if (W.joinable())
      W.join();
  Workers.clear();
}

void JobRunner::workerLoop() {
  while (std::shared_ptr<Job> J = Queue.pop())
    runJob(J);
}

JobRunner::VictimEntry &JobRunner::victimEntry(const JobSpec &S) {
  const BenchScale Scale = BenchScale::preset(S.ScaleName);
  const TaskKind Task = taskOfSpec(S);
  const Arch A = archFromName(S.ArchName);
  const std::string Stem = victimStem(Task, A, Scale, S.Seed);

  VictimEntry *E;
  {
    std::lock_guard<std::mutex> Lock(PoolMu);
    std::unique_ptr<VictimEntry> &Slot = Victims[Stem];
    if (!Slot)
      Slot = std::make_unique<VictimEntry>();
    E = Slot.get();
  }
  std::lock_guard<std::mutex> Lock(E->Mu);
  if (!E->Victim) {
    E->Victim = makeScaledVictim(Task, A, Scale, S.Seed);
    QueryEngineConfig EC = Config.Engine;
    EC.ShareCacheOnClone = true;
    E->Engine = std::make_unique<QueryEngine>(*E->Victim, EC);
  }
  return *E;
}

Program JobRunner::classProgram(VictimEntry &E, const JobSpec &S,
                                size_t Label) {
  const BenchScale Scale = BenchScale::preset(S.ScaleName);
  const TaskKind Task = taskOfSpec(S);
  const std::string Stem =
      victimStem(Task, archFromName(S.ArchName), Scale, S.Seed);
  std::lock_guard<std::mutex> Lock(E.Mu);
  auto It = E.ProgramByClass.find(Label);
  if (It != E.ProgramByClass.end())
    return It->second;
  SynthesisRunOptions Opts = Config.Synth;
  Opts.Threads = std::max<size_t>(1, Config.Threads);
  Program P =
      synthesizeClassProgram(*E.Victim, Stem, Task, Scale, Label, S.Seed,
                             Opts);
  E.ProgramByClass.emplace(Label, P);
  return P;
}

bool JobRunner::checkpointJob(Job &J, int64_t Shard) {
  const uint64_t Tok =
      J.Trace ? J.Trace->beginPhase("checkpoint", Shard) : 0;
  std::vector<WireRun> Runs;
  {
    std::lock_guard<std::mutex> Lock(J.Mu);
    Runs = J.Runs;
  }
  std::string Error;
  const std::string Path = jobCheckpointPath(Config.CheckpointDir, J.Id);
  // Checkpoints carry the trace context (so a resumed job keeps its
  // client's trace id); result artifacts embed the canonical trace-free
  // spec and stay byte-identical across trace ids.
  const bool Ok =
      writeCheckpoint(Path, jobSpecJsonWithTrace(J.Spec), Runs, Error);
  if (J.Trace)
    J.Trace->endPhase(Tok);
  if (!Ok) {
    logError() << "serve: " << Error;
    return false;
  }
  checkpointCounter().inc();
  if (telemetry::traceEnabled())
    telemetry::traceEvent("job_checkpoint",
                          {{"job", J.Id},
                           {"done", J.Done.load(std::memory_order_relaxed)},
                           {"total",
                            J.Total.load(std::memory_order_relaxed)}});
  return true;
}

void JobRunner::runJob(const std::shared_ptr<Job> &J) {
  const auto ServiceStart = std::chrono::steady_clock::now();
  JobTrace *T = J->Trace.get();

  // Ambient per-job context for everything this job does on this thread —
  // and, via the sweep harness's context capture, on its pool workers:
  // JSONL trace events and log-ring records carry the trace id, profiler
  // spans re-root under "job.<id>" instead of process-global.
  telemetry::TraceContextScope TraceScope(
      T ? T->context().TraceId : std::string());
  telemetry::ProfileTaskScope TaskScope(
      telemetry::profilingEnabled()
          ? telemetry::internProfileName("job." + std::to_string(J->Id))
          : nullptr);

  // Phase tiling: "setup" runs from pop until the first sweep (victim
  // construction, synthesis, resume bookkeeping); TailTok holds whichever
  // span is open at Finish time (synth or finalize). Finish closes both —
  // endPhase is a no-op on already-closed tokens — so failure paths never
  // leave a span dangling.
  uint64_t SetupTok = T ? T->beginPhase("setup") : 0;
  uint64_t TailTok = 0;

  runningGauge().add(1.0);
  if (telemetry::traceEnabled())
    telemetry::traceEvent("job_begin",
                          {{"job", J->Id},
                           {"kind", jobKindName(J->Spec.Kind)}});

  auto Finish = [&](JobState Final, const std::string &Error,
                    int64_t Shard = -1) {
    if (Final == JobState::Failed) {
      std::lock_guard<std::mutex> Lock(J->Mu);
      J->Error = Error;
    }
    J->State.store(Final, std::memory_order_relaxed);
    switch (Final) {
    case JobState::Done:
      completedCounter().inc();
      recordServiceSample(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        ServiceStart)
              .count());
      break;
    case JobState::Failed:
      failedCounter().inc();
      break;
    case JobState::Cancelled:
      cancelledCounter().inc();
      break;
    default:
      break;
    }
    if (T) {
      T->endPhase(SetupTok);
      T->endPhase(TailTok);
      T->instant(jobStateName(Final), Shard);
    }
    runningGauge().add(-1.0);
    if (telemetry::traceEnabled())
      telemetry::traceEvent("job_end", {{"job", J->Id},
                                        {"state", jobStateName(Final)}});
  };

  try {
    const JobSpec &S = J->Spec;
    const BenchScale Scale = BenchScale::preset(S.ScaleName);
    const TaskKind Task = taskOfSpec(S);
    const uint64_t Budget = S.Budget ? S.Budget : Scale.EvalQueryCap;
    const std::string ResultPath =
        jobResultPath(Config.CheckpointDir, J->Id);
    const std::string CkptPath =
        jobCheckpointPath(Config.CheckpointDir, J->Id);

    VictimEntry &E = victimEntry(S);

    if (S.Kind == JobKind::Synth) {
      // One class at a time: each class either rehydrates from the
      // program store or fans its islands out, and Done ticks per class
      // so /metrics shows live synthesis progress. No mid-job
      // checkpointing — the store itself is the durable state.
      J->Total.store(Scale.NumClasses, std::memory_order_relaxed);
      setJobGauges(*J);
      if (T) {
        T->endPhase(SetupTok);
        TailTok = T->beginPhase("synth");
      }
      std::vector<Program> Programs;
      for (size_t Label = 0; Label != Scale.NumClasses; ++Label) {
        if (J->CancelRequested.load(std::memory_order_relaxed))
          return Finish(JobState::Cancelled, "",
                        static_cast<int64_t>(Label));
        Programs.push_back(classProgram(E, S, Label));
        J->Done.fetch_add(1, std::memory_order_relaxed);
        setJobGauges(*J);
      }
      WireBuilder B;
      B.addJobSpecJson(jobSpecJson(S));
      for (const Program &P : Programs)
        B.addProgram(P.str());
      std::string Error;
      if (!writeFileAtomic(ResultPath, B.finish(), Error))
        return Finish(JobState::Failed, Error);
      J->Done.store(Scale.NumClasses, std::memory_order_relaxed);
      setJobGauges(*J);
      J->ResultPath = ResultPath;
      return Finish(JobState::Done, "");
    }

    // Sweep jobs: materialize the dataset slice.
    const Dataset Test = makeTestSet(Task, Scale, S.Seed);
    const size_t Begin = std::min<size_t>(S.Begin, Test.size());
    const size_t End =
        S.Count ? std::min<size_t>(Begin + S.Count, Test.size())
                : Test.size();
    J->Total.store(End - Begin, std::memory_order_relaxed);

    std::vector<Program> EvalPrograms;
    const std::vector<Program> *Programs = nullptr;
    std::unique_ptr<Attack> BaselineAttack;
    if (S.Kind == JobKind::Eval) {
      for (size_t Label = 0; Label != Scale.NumClasses; ++Label) {
        if (J->CancelRequested.load(std::memory_order_relaxed))
          return Finish(JobState::Cancelled, "",
                        static_cast<int64_t>(Label));
        EvalPrograms.push_back(classProgram(E, S, Label));
      }
      Programs = &EvalPrograms;
    } else {
      BaselineAttack = makeBaselineAttack(S.AttackName);
      if (!BaselineAttack)
        return Finish(JobState::Failed,
                      "unknown attack '" + S.AttackName + "'");
    }

    // The job's engine: a clone of the victim's master engine, sharing
    // its ScoreCache with every other job on this victim. The sweep
    // harness clones it again per worker; those clones share too.
    std::unique_ptr<Classifier> Cls;
    {
      std::lock_guard<std::mutex> Lock(E.Mu);
      Cls = E.Engine->clone();
    }
    if (!Cls)
      return Finish(JobState::Failed, "victim classifier not cloneable");

    // Indices still missing (a resumed job arrives with runs preloaded).
    std::set<uint32_t> Have;
    {
      std::lock_guard<std::mutex> Lock(J->Mu);
      for (const WireRun &R : J->Runs)
        Have.insert(R.Index);
    }
    J->Done.store(Have.size(), std::memory_order_relaxed);
    setJobGauges(*J);
    std::vector<size_t> Pending;
    for (size_t I = Begin; I != End; ++I)
      if (!Have.count(static_cast<uint32_t>(I)))
        Pending.push_back(I);

    if (T)
      T->endPhase(SetupTok);

    bool Suspended = false;
    size_t ShardIdx = 0; ///< next shard to sweep (also the cancel marker)
    for (size_t Off = 0; Off < Pending.size();
         Off += Config.CheckpointEvery, ++ShardIdx) {
      if (J->CancelRequested.load(std::memory_order_relaxed))
        break;
      if (Stopping.load(std::memory_order_relaxed)) {
        Suspended = true;
        break;
      }
      const size_t ShardEnd =
          std::min(Off + Config.CheckpointEvery, Pending.size());

      Dataset Shard;
      Shard.NumClasses = Test.NumClasses;
      for (size_t K = Off; K != ShardEnd; ++K) {
        Shard.Images.push_back(Test.Images[Pending[K]]);
        Shard.Labels.push_back(Test.Labels[Pending[K]]);
      }

      const uint64_t ShardTok =
          T ? T->beginPhase("shard", static_cast<int64_t>(ShardIdx)) : 0;
      telemetry::ScopedTimer ShardTimer; // histogram fed in ms below
      Inflight.fetch_add(1, std::memory_order_relaxed);
      inflightGauge().set(
          static_cast<double>(Inflight.load(std::memory_order_relaxed)));
      std::vector<AttackRunLog> Logs =
          S.Kind == JobKind::Eval
              ? runProgramsOverSet(*Programs, *Cls, Shard, Budget,
                                   Config.Threads)
              : runAttackOverSet(*BaselineAttack, *Cls, Shard, Budget,
                                 Config.Threads);
      Inflight.fetch_sub(1, std::memory_order_relaxed);
      inflightGauge().set(
          static_cast<double>(Inflight.load(std::memory_order_relaxed)));
      shardExecHistogram().observe(ShardTimer.seconds() * 1e3);
      if (T)
        T->endPhase(ShardTok);

      {
        std::lock_guard<std::mutex> Lock(J->Mu);
        for (size_t K = Off; K != ShardEnd; ++K)
          J->Runs.push_back(toWireRun(Pending[K], Logs[K - Off]));
      }
      J->Done.fetch_add(ShardEnd - Off, std::memory_order_relaxed);
      setJobGauges(*J);
      checkpointJob(*J, static_cast<int64_t>(ShardIdx));

      if (Config.OnShardDone)
        Config.OnShardDone(J->Id, ShardIdx);

      const size_t CompletedNow = ImagesCompleted.fetch_add(
                                      ShardEnd - Off,
                                      std::memory_order_relaxed) +
                                  (ShardEnd - Off);
      if (Config.CrashAfterImages &&
          CompletedNow >= Config.CrashAfterImages) {
        // Crash-injection hook: die without unwinding, exactly as a
        // kill -9 would — the checkpoint just written is all that
        // survives. Only reachable under --crash-after-images.
        ::_exit(3);
      }
    }

    if (J->CancelRequested.load(std::memory_order_relaxed)) {
      std::remove(CkptPath.c_str()); // a cancelled job never resumes
      // ShardIdx is the first shard that did NOT run — the cancellation
      // boundary the trace instant reports.
      return Finish(JobState::Cancelled, "",
                    static_cast<int64_t>(ShardIdx));
    }
    if (Suspended) {
      // Checkpoint reflects every finished shard; hand the job back so a
      // restart (or this process, were the queue reopened) resumes it.
      checkpointJob(*J);
      if (T) {
        T->instant("suspended", static_cast<int64_t>(ShardIdx));
      }
      Queue.enqueue(J, /*Force=*/true);
      runningGauge().add(-1.0);
      if (telemetry::traceEnabled())
        telemetry::traceEvent("job_end",
                              {{"job", J->Id}, {"state", "suspended"}});
      return;
    }

    if (T)
      TailTok = T->beginPhase("finalize");

    // Complete: render the result artifact (runs in index order — see
    // writeCheckpoint — so resumed and uninterrupted runs match bytes).
    std::vector<WireRun> Runs;
    {
      std::lock_guard<std::mutex> Lock(J->Mu);
      Runs = J->Runs;
    }
    std::sort(Runs.begin(), Runs.end(),
              [](const WireRun &A, const WireRun &B) {
                return A.Index < B.Index;
              });
    WireBuilder B;
    B.addJobSpecJson(jobSpecJson(S));
    for (const WireRun &R : Runs)
      B.addRun(R);
    std::string Error;
    if (!writeFileAtomic(ResultPath, B.finish(), Error))
      return Finish(JobState::Failed, Error);
    std::remove(CkptPath.c_str());
    J->ResultPath = ResultPath;
    return Finish(JobState::Done, "");
  } catch (const std::exception &Ex) {
    return Finish(JobState::Failed, Ex.what());
  }
}

void JobRunner::recordServiceSample(double Seconds) {
  std::lock_guard<std::mutex> Lock(ServiceMu);
  ServiceSamples.push_back(Seconds);
}

double JobRunner::medianServiceSeconds() const {
  std::lock_guard<std::mutex> Lock(ServiceMu);
  if (ServiceSamples.empty())
    return 0.0;
  std::vector<double> S = ServiceSamples;
  const size_t Mid = S.size() / 2;
  std::nth_element(S.begin(), S.begin() + Mid, S.end());
  if (S.size() % 2 != 0)
    return S[Mid];
  return (S[Mid] + *std::max_element(S.begin(), S.begin() + Mid)) / 2.0;
}

size_t JobRunner::resume() {
  size_t Readmitted = 0;
  for (const RecoveredJob &R : scanCheckpointDir(Config.CheckpointDir)) {
    std::string Error;
    if (R.Finished) {
      WireContents C;
      if (!readWireFile(R.Path, C, Error)) {
        logError() << "serve: skipping " << R.Path << ": " << Error;
        continue;
      }
      JobSpec S;
      if (!parseJobSpec(C.JobSpecJson, S, Error)) {
        logError() << "serve: skipping " << R.Path << ": " << Error;
        continue;
      }
      auto J = std::make_shared<Job>();
      J->Id = R.Id;
      J->Spec = S;
      const size_t N =
          S.Kind == JobKind::Synth ? C.Programs.size() : C.Runs.size();
      J->Done.store(N, std::memory_order_relaxed);
      J->Total.store(N, std::memory_order_relaxed);
      J->ResultPath = R.Path;
      J->State.store(JobState::Done, std::memory_order_relaxed);
      Queue.adopt(J);
      continue;
    }

    std::string SpecJson;
    std::vector<WireRun> Runs;
    if (!loadCheckpoint(R.Path, SpecJson, Runs, Error)) {
      logError() << "serve: skipping " << R.Path << ": " << Error;
      continue;
    }
    JobSpec S;
    if (!parseJobSpec(SpecJson, S, Error)) {
      logError() << "serve: skipping " << R.Path << ": " << Error;
      continue;
    }
    auto J = std::make_shared<Job>();
    J->Id = R.Id;
    J->Spec = S;
    {
      std::lock_guard<std::mutex> Lock(J->Mu);
      J->Runs = std::move(Runs);
      J->Done.store(J->Runs.size(), std::memory_order_relaxed);
    }
    Queue.adopt(J);
    Queue.enqueue(J, /*Force=*/true);
    ++Readmitted;
  }
  return Readmitted;
}
