//===- serve/JobQueue.h - Bounded priority job queue ------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The job model and admission-controlled queue behind `oppsla serve`.
/// Submitted jobs enter a bounded queue (a full queue rejects — the HTTP
/// layer answers 429 with Retry-After); runner workers pop the
/// highest-priority job (FIFO within a priority level). The queue doubles
/// as the job registry: every job ever admitted stays findable by id for
/// status and result queries.
///
/// A job's sweep results are a pure function of (seed, image) — see
/// Image::contentHash — so a job's outcome is independent of queue order,
/// worker count, and interleaving with other jobs.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_SERVE_JOBQUEUE_H
#define OPPSLA_SERVE_JOBQUEUE_H

#include "serve/JobTrace.h"
#include "wire/Wire.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace oppsla {
namespace serve {

using wire::WireRun;

/// What a job computes.
enum class JobKind {
  Attack, ///< baseline attack sweep (sparse-rs | suopa | random)
  Eval,   ///< full OPPSLA evaluation: synthesize class programs, sweep
  Synth,  ///< synthesize the per-class programs only
};

/// Lifecycle states. Queued -> Running -> {Done, Failed, Cancelled};
/// Running -> Queued on a graceful drain (the job is requeued so a
/// restart resumes it from its checkpoint).
enum class JobState { Queued, Running, Done, Failed, Cancelled };

const char *jobKindName(JobKind K);
const char *jobStateName(JobState S);

/// A parsed job submission. The victim triple (task, arch, scale) plus
/// seed fully determine the classifier and test set; Begin/Count select
/// the dataset slice ([Begin, Begin+Count), Count 0 = to the end).
struct JobSpec {
  JobKind Kind = JobKind::Eval;
  std::string AttackName = "sparse-rs"; ///< Attack jobs only
  std::string TaskName = "cifar";
  std::string ArchName = "resnet";
  std::string ScaleName = "smoke";
  uint64_t Seed = 1;
  uint64_t Budget = 0; ///< queries per image; 0 = the scale's EvalQueryCap
  int Priority = 0;    ///< higher pops first
  uint64_t Begin = 0;  ///< dataset slice start
  uint64_t Count = 0;  ///< slice length; 0 = everything from Begin

  /// W3C traceparent from the submitting client ("" = server mints one).
  /// Pure observability: never rendered into jobSpecJson(), so result
  /// artifacts embedding the spec stay byte-identical across trace ids.
  std::string TraceParent;
};

/// Parses the POST /v1/jobs body. Unknown kinds/attacks/archs and
/// malformed JSON fail with a message suitable for a 400 response.
bool parseJobSpec(const std::string &JsonText, JobSpec &Out,
                  std::string &Error);

/// Canonical JSON rendering of \p Spec — stable across submit, checkpoint,
/// and resume, so artifacts embedding it stay byte-identical. Never
/// includes the trace context.
std::string jobSpecJson(const JobSpec &Spec);

/// jobSpecJson() plus a trailing `"trace":"<traceparent>"` key when the
/// spec carries one. Used for checkpoint records only, so a resumed job
/// keeps the trace id its client minted; result artifacts always embed
/// the canonical trace-free form.
std::string jobSpecJsonWithTrace(const JobSpec &Spec);

/// One admitted job. Progress fields are atomics (the HTTP thread reads
/// them while a runner worker writes); Runs/Error take the mutex.
struct Job {
  uint64_t Id = 0;
  JobSpec Spec;
  std::atomic<JobState> State{JobState::Queued};
  std::atomic<bool> CancelRequested{false};
  std::atomic<uint64_t> Done{0};
  std::atomic<uint64_t> Total{0};

  std::mutex Mu;             ///< guards Error and Runs
  std::string Error;         ///< set when State == Failed
  std::vector<WireRun> Runs; ///< completed runs (preloaded on resume)

  std::string ResultPath; ///< set before State becomes Done

  /// Phase timeline + trace context; null when job tracing is disabled.
  /// Created at admission (create/adopt) and immutable afterwards, so
  /// readers need no lock for the pointer itself.
  std::shared_ptr<JobTrace> Trace;
  /// Open "queued" phase token (0 = none); set by enqueue, closed by
  /// pop()/cancel().
  std::atomic<uint64_t> QueuedToken{0};

  std::string errorMessage() {
    std::lock_guard<std::mutex> Lock(Mu);
    return Error;
  }
};

/// Bounded priority queue + registry. All methods are thread-safe.
class JobQueue {
public:
  /// \p Capacity bounds the number of *queued* jobs (running and finished
  /// jobs do not count against it).
  explicit JobQueue(size_t Capacity);

  /// Registers a new job for \p Spec (fresh id, state Queued, not yet in
  /// the queue). Pair with enqueue().
  std::shared_ptr<Job> create(const JobSpec &Spec);

  /// Admits \p J into the queue. \returns false (leaving the job
  /// registered but unqueued) when the queue is full, unless \p Force —
  /// resume and graceful-drain requeues bypass admission control so a
  /// restart never drops accepted work.
  bool enqueue(const std::shared_ptr<Job> &J, bool Force = false);

  /// Registers a recovered job under its original id (resume path); bumps
  /// the id counter past it.
  void adopt(const std::shared_ptr<Job> &J);

  /// Blocks until a queued job is available or the queue is closed.
  /// Returns the highest-priority job (FIFO within a priority, by id) with
  /// its state already flipped to Running, or nullptr when closed and
  /// drained. Jobs cancelled while queued are dropped here.
  std::shared_ptr<Job> pop();

  /// Wakes every blocked pop() and makes every future pop() return
  /// nullptr immediately. Nothing is dropped: still-queued jobs keep
  /// state Queued so a later resume picks them back up.
  void close();

  /// Cancels job \p Id: a queued job goes straight to Cancelled; a running
  /// job gets its CancelRequested flag set (the runner honours it at the
  /// next shard boundary). \returns false for unknown or already-finished
  /// jobs.
  bool cancel(uint64_t Id);

  std::shared_ptr<Job> find(uint64_t Id) const;
  std::vector<std::shared_ptr<Job>> all() const;

  size_t depth() const;
  size_t capacity() const { return Capacity; }
  bool closed() const;

private:
  void updateDepthGauge(size_t Depth) const;
  /// Closes a job's open "queued" phase span (idempotent). \p ObserveWait
  /// feeds the serve.queue.wait_ms histogram — true on the pop() path,
  /// false for cancellations (a cancelled wait is not a service sample).
  static void closeQueuedPhase(Job &J, bool ObserveWait);

  const size_t Capacity;
  mutable std::mutex Mu;
  std::condition_variable Ready;
  bool Closed = false;
  uint64_t NextId = 1;
  std::deque<std::shared_ptr<Job>> Queued;
  std::map<uint64_t, std::shared_ptr<Job>> Registry;
};

} // namespace serve
} // namespace oppsla

#endif // OPPSLA_SERVE_JOBQUEUE_H
