//===- serve/ServeServer.cpp - HTTP job API -----------------------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/ServeServer.h"

#include "serve/JobRunner.h"
#include "support/Http.h"
#include "support/Logging.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

using namespace oppsla;
using namespace oppsla::serve;

namespace {

telemetry::Counter &submittedCounter() {
  static telemetry::Counter &C = telemetry::counter("serve.jobs.submitted");
  return C;
}
telemetry::Counter &rejectedCounter() {
  static telemetry::Counter &C = telemetry::counter("serve.jobs.rejected");
  return C;
}

std::string errorJson(const std::string &Message) {
  std::string Out = "{\"error\":\"";
  telemetry::appendJsonEscaped(Out, Message);
  Out += "\"}";
  return Out;
}

/// Splits "/v1/jobs/17/result" into {"v1","jobs","17","result"}.
std::vector<std::string> pathSegments(const std::string &Target) {
  std::vector<std::string> Out;
  std::string Path = Target.substr(0, Target.find('?'));
  size_t Pos = 0;
  while (Pos < Path.size()) {
    if (Path[Pos] == '/') {
      ++Pos;
      continue;
    }
    size_t End = Path.find('/', Pos);
    if (End == std::string::npos)
      End = Path.size();
    Out.push_back(Path.substr(Pos, End - Pos));
    Pos = End;
  }
  return Out;
}

bool parseId(const std::string &S, uint64_t &Id) {
  char *End = nullptr;
  Id = std::strtoull(S.c_str(), &End, 10);
  return End != S.c_str() && *End == '\0';
}

} // namespace

std::string serve::jobStatusJson(Job &J) {
  std::string Out = "{\"id\":" + std::to_string(J.Id) + ",\"kind\":\"";
  Out += jobKindName(J.Spec.Kind);
  Out += "\",\"state\":\"";
  Out += jobStateName(J.State.load(std::memory_order_relaxed));
  Out += "\",\"done\":" +
         std::to_string(J.Done.load(std::memory_order_relaxed)) +
         ",\"total\":" +
         std::to_string(J.Total.load(std::memory_order_relaxed)) +
         ",\"priority\":" + std::to_string(J.Spec.Priority);
  const std::string Error = J.errorMessage();
  if (!Error.empty()) {
    Out += ",\"error\":\"";
    telemetry::appendJsonEscaped(Out, Error);
    Out += "\"";
  }
  if (J.Trace)
    Out += ",\"trace_id\":\"" + J.Trace->context().TraceId + "\"";
  Out += ",\"spec\":" + jobSpecJson(J.Spec) + "}";
  return Out;
}

ServeServer::ServeServer(JobQueue &Queue, JobRunner &Runner,
                         ServeServerConfig Config)
    : Queue(Queue), Runner(Runner), Config(Config) {}

int ServeServer::retryAfterSeconds() const {
  const double Median = Runner.medianServiceSeconds();
  if (Median <= 0.0)
    return Config.RetryAfterSeconds;
  const double Workers =
      static_cast<double>(std::max<size_t>(1, Runner.config().Workers));
  const double Est =
      Median * static_cast<double>(Queue.depth() + 1) / Workers;
  return static_cast<int>(
      std::min(3600.0, std::max(1.0, std::ceil(Est))));
}

ServeServer::~ServeServer() { stop(); }

bool ServeServer::start() {
  if (ListenFd >= 0) {
    logError() << "serve: server already running on port " << BoundPort;
    return false;
  }
  const int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    logError() << "serve: socket() failed: " << std::strerror(errno);
    return false;
  }
  const int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Config.Port);
  if (::bind(Fd, reinterpret_cast<const sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    logError() << "serve: bind(127.0.0.1:" << Config.Port
               << ") failed: " << std::strerror(errno);
    ::close(Fd);
    return false;
  }
  if (::listen(Fd, 64) < 0) {
    logError() << "serve: listen() failed: " << std::strerror(errno);
    ::close(Fd);
    return false;
  }
  sockaddr_in Bound = {};
  socklen_t BoundLen = sizeof(Bound);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Bound), &BoundLen) <
      0) {
    logError() << "serve: getsockname() failed: " << std::strerror(errno);
    ::close(Fd);
    return false;
  }
  BoundPort = ntohs(Bound.sin_port);
  ListenFd = Fd;
  Stopping.store(false, std::memory_order_relaxed);
  Thread = std::thread([this] { serveLoop(); });
  return true;
}

void ServeServer::serveLoop() {
  for (;;) {
    const int Client = ::accept(ListenFd, nullptr, nullptr);
    if (Client < 0) {
      if (errno == EINTR)
        continue;
      return;
    }
    if (Stopping.load(std::memory_order_relaxed)) {
      ::close(Client);
      return;
    }
    timeval Timeout = {};
    Timeout.tv_sec = 5;
    ::setsockopt(Client, SOL_SOCKET, SO_RCVTIMEO, &Timeout,
                 sizeof(Timeout));
    ::setsockopt(Client, SOL_SOCKET, SO_SNDTIMEO, &Timeout,
                 sizeof(Timeout));

    http::Request Req;
    std::string ReqError;
    if (http::readRequest(Client, Req, ReqError))
      handle(Client, Req);
    ::close(Client);
  }
}

void ServeServer::handle(int Client, const http::Request &Req) {
  const std::vector<std::string> Seg = pathSegments(Req.Target);

  // Observability endpoints shared with the stats server's vocabulary.
  if (Req.Method == "GET" && Seg.size() == 1 && Seg[0] == "metrics") {
    http::sendResponse(Client, 200,
                       "text/plain; version=0.0.4; charset=utf-8",
                       telemetry::prometheusTextExposition());
    return;
  }
  if (Req.Method == "GET" && Seg.size() == 1 && Seg[0] == "healthz") {
    std::string Out = "{\"queue\":{\"depth\":" +
                      std::to_string(Queue.depth()) + ",\"capacity\":" +
                      std::to_string(Queue.capacity()) +
                      "},\"inflight_shards\":" +
                      std::to_string(Runner.inflightShards()) +
                      ",\"jobs\":[";
    bool First = true;
    for (const auto &J : Queue.all()) {
      if (!First)
        Out += ",";
      First = false;
      Out += jobStatusJson(*J);
    }
    Out += "]}";
    http::sendResponse(Client, 200, "application/json", Out);
    return;
  }
  if (Req.Method == "GET" && Seg.size() == 1 && Seg[0] == "logz") {
    size_t N = 100;
    const std::string NStr = http::queryParam(Req.Target, "n");
    if (!NStr.empty())
      N = static_cast<size_t>(std::strtoull(NStr.c_str(), nullptr, 10));
    LogLevel Level = LogLevel::Debug;
    const std::string LevelStr = http::queryParam(Req.Target, "level");
    if (!LevelStr.empty() && !parseLogLevel(LevelStr, Level)) {
      http::sendResponse(Client, 400, "application/json",
                         errorJson("unknown level '" + LevelStr +
                                   "' (want error|warn|info|debug)"));
      return;
    }
    http::sendResponse(Client, 200, "application/x-ndjson",
                       logRingJsonl(std::min<size_t>(N, 1024), Level));
    return;
  }
  if (Req.Method == "GET" && Seg.size() == 1 && Seg[0] == "quitquitquit") {
    Quit.store(true, std::memory_order_relaxed);
    http::sendResponse(Client, 200, "text/plain; charset=utf-8",
                       "quitting\n");
    return;
  }

  // The job API proper: /v1/jobs[...]
  if (Seg.size() < 2 || Seg[0] != "v1" || Seg[1] != "jobs") {
    http::sendResponse(Client, 404, "application/json",
                       errorJson("not found"));
    return;
  }

  if (Seg.size() == 2 && Req.Method == "POST") {
    JobSpec Spec;
    std::string Error;
    if (!parseJobSpec(Req.Body, Spec, Error)) {
      http::sendResponse(Client, 400, "application/json",
                         errorJson(Error));
      return;
    }
    // Adopt the client's trace context when the header parses; the spec
    // body's "trace" key (checkpoint round-trips) loses to the header.
    telemetry::TraceContext Ctx;
    if (telemetry::parseTraceparent(Req.header("traceparent"), Ctx))
      Spec.TraceParent = Ctx.traceparent();
    std::shared_ptr<Job> J = Queue.create(Spec);
    if (!Queue.enqueue(J)) {
      rejectedCounter().inc();
      http::sendResponse(
          Client, 429, "application/json",
          errorJson("queue full (capacity " +
                    std::to_string(Queue.capacity()) + ")"),
          {{"Retry-After", std::to_string(retryAfterSeconds())}});
      return;
    }
    submittedCounter().inc();
    if (telemetry::traceEnabled())
      telemetry::traceEvent("job_submit",
                            {{"job", J->Id},
                             {"kind", jobKindName(Spec.Kind)}});
    std::string Out =
        "{\"id\":" + std::to_string(J->Id) + ",\"state\":\"queued\"";
    if (J->Trace)
      Out += ",\"trace_id\":\"" + J->Trace->context().TraceId + "\"";
    Out += "}";
    http::sendResponse(Client, 202, "application/json", Out);
    return;
  }
  if (Seg.size() == 2 && Req.Method == "GET") {
    std::string Out = "{\"queue\":{\"depth\":" +
                      std::to_string(Queue.depth()) + ",\"capacity\":" +
                      std::to_string(Queue.capacity()) + "},\"jobs\":[";
    bool First = true;
    for (const auto &J : Queue.all()) {
      if (!First)
        Out += ",";
      First = false;
      Out += jobStatusJson(*J);
    }
    Out += "]}";
    http::sendResponse(Client, 200, "application/json", Out);
    return;
  }

  uint64_t Id = 0;
  if (Seg.size() < 3 || !parseId(Seg[2], Id)) {
    http::sendResponse(Client, 404, "application/json",
                       errorJson("not found"));
    return;
  }
  std::shared_ptr<Job> J = Queue.find(Id);
  if (!J) {
    http::sendResponse(Client, 404, "application/json",
                       errorJson("no job " + std::to_string(Id)));
    return;
  }

  if (Seg.size() == 3 && Req.Method == "GET") {
    http::sendResponse(Client, 200, "application/json",
                       jobStatusJson(*J));
    return;
  }
  if (Seg.size() == 3 && Req.Method == "DELETE") {
    if (!Queue.cancel(Id)) {
      http::sendResponse(
          Client, 409, "application/json",
          errorJson("job " + std::to_string(Id) + " already " +
                    jobStateName(
                        J->State.load(std::memory_order_relaxed))));
      return;
    }
    http::sendResponse(Client, 200, "application/json",
                       jobStatusJson(*J));
    return;
  }
  if (Seg.size() == 4 && Seg[3] == "trace" && Req.Method == "GET") {
    if (!J->Trace) {
      http::sendResponse(Client, 404, "application/json",
                         errorJson("job tracing is disabled"));
      return;
    }
    http::sendResponse(Client, 200, "application/json",
                       J->Trace->chromeTraceJson());
    return;
  }
  if (Seg.size() == 4 && Seg[3] == "result" && Req.Method == "GET") {
    if (J->State.load(std::memory_order_relaxed) != JobState::Done) {
      http::sendResponse(
          Client, 409, "application/json",
          errorJson("job " + std::to_string(Id) + " is " +
                    jobStateName(
                        J->State.load(std::memory_order_relaxed)) +
                    ", result not available"));
      return;
    }
    std::ifstream In(J->ResultPath, std::ios::binary);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    if (!In) {
      http::sendResponse(Client, 500, "application/json",
                         errorJson("cannot read " + J->ResultPath));
      return;
    }
    http::sendResponse(Client, 200, "application/octet-stream",
                       Buf.str());
    return;
  }

  http::sendResponse(Client, 405, "application/json",
                     errorJson("method not allowed"));
}

bool ServeServer::waitQuit(double TimeoutSeconds) {
  const auto Start = std::chrono::steady_clock::now();
  while (!quitRequested()) {
    if (TimeoutSeconds > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Start)
                .count() >= TimeoutSeconds)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return quitRequested();
}

void ServeServer::stop() {
  if (ListenFd < 0)
    return;
  Stopping.store(true, std::memory_order_relaxed);
  ::shutdown(ListenFd, SHUT_RDWR);
  ::close(ListenFd);
  if (Thread.joinable())
    Thread.join();
  ListenFd = -1;
}
