//===- serve/Checkpoint.h - Job checkpoint files ----------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Durable per-job state for the serve subsystem. A job's progress lives
/// in `<dir>/job-<id>.ckpt` (a wire artifact holding the job spec plus
/// every completed run) and its finished output in `<dir>/job-<id>.result`
/// (same format, all runs). Both are written atomically, so a crash at any
/// instant leaves either the previous checkpoint or the new one — never a
/// torn file. On restart, scanCheckpointDir() recovers finished results
/// and pending jobs; because each run is a pure function of (seed, image),
/// re-running only the missing indices reproduces the uninterrupted
/// artifact byte-for-byte.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_SERVE_CHECKPOINT_H
#define OPPSLA_SERVE_CHECKPOINT_H

#include "wire/Wire.h"

#include <cstdint>
#include <string>
#include <vector>

namespace oppsla {
namespace serve {

// The OPWF wire format moved to src/wire so the offline program store can
// share it; serve keeps its historical unqualified spellings.
using wire::readWireFile;
using wire::runsToJsonl;
using wire::WireBuilder;
using wire::WireContents;
using wire::wireOutcomeName;
using wire::WireRun;
using wire::writeFileAtomic;

/// `<dir>/job-<id>.ckpt` — in-progress state.
std::string jobCheckpointPath(const std::string &Dir, uint64_t Id);

/// `<dir>/job-<id>.result` — completed artifact, served for download.
std::string jobResultPath(const std::string &Dir, uint64_t Id);

/// Creates \p Dir (and parents) if missing.
bool ensureDir(const std::string &Dir, std::string &Error);

/// Atomically writes a checkpoint carrying \p SpecJson and \p Runs.
bool writeCheckpoint(const std::string &Path, const std::string &SpecJson,
                     const std::vector<WireRun> &Runs, std::string &Error);

/// Loads a checkpoint written by writeCheckpoint(). All-or-nothing, like
/// every wire read.
bool loadCheckpoint(const std::string &Path, std::string &SpecJson,
                    std::vector<WireRun> &Runs, std::string &Error);

/// One recovered file from a checkpoint directory.
struct RecoveredJob {
  uint64_t Id = 0;
  std::string Path;
  bool Finished = false; ///< true for .result files, false for .ckpt
};

/// Lists the job files in \p Dir, sorted by id (results before the
/// checkpoint of the same id, though a job never has both). Unparseable
/// filenames are ignored.
std::vector<RecoveredJob> scanCheckpointDir(const std::string &Dir);

} // namespace serve
} // namespace oppsla

#endif // OPPSLA_SERVE_CHECKPOINT_H
