//===- nn/Conv2d.cpp - 2-D convolution layer -------------------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "nn/Conv2d.h"

#include "nn/BatchNorm2d.h"
#include "nn/Init.h"
#include "support/Metrics.h"
#include "support/Rng.h"
#include "tensor/Gemm.h"
#include "tensor/TensorOps.h"

#include <cmath>

using namespace oppsla;

Conv2d::Conv2d(size_t InC, size_t OutC, size_t Kernel, size_t Stride,
               size_t Pad, Rng &R, bool HasBias)
    : InC(InC), OutC(OutC), Kernel(Kernel), Stride(Stride), Pad(Pad),
      HasBias(HasBias), Weight({OutC, InC * Kernel * Kernel}),
      WeightGrad({OutC, InC * Kernel * Kernel}), Bias({OutC}),
      BiasGrad({OutC}) {
  kaimingNormal(Weight, /*FanIn=*/InC * Kernel * Kernel, R);
}

Tensor Conv2d::prepareForward(const Tensor &In, bool Train, size_t &N,
                              size_t &OH, size_t &OW, Tensor *&Cols) {
  assert(In.rank() == 4 && In.dim(1) == InC && "conv input shape mismatch");
  N = In.dim(0);
  const size_t H = In.dim(2), W = In.dim(3);
  OH = convOutSize(H, Kernel, Stride, Pad);
  OW = convOutSize(W, Kernel, Stride, Pad);
  const size_t Rows = InC * Kernel * Kernel;
  const size_t ColsN = N * OH * OW;

  Cols = Train ? &CachedCols : &ScratchCols;
  noteScratchRealloc(Cols->ensureShape({Rows, ColsN}));
  im2col(In, Kernel, Kernel, Stride, Pad, *Cols);
  if (Train) {
    CachedN = N;
    CachedH = H;
    CachedW = W;
  }
  return Tensor({N, OutC, OH, OW});
}

void Conv2d::packWeight() {
  const size_t K = Weight.dim(1);
  // Repacked every forward: the optimizer writes Weight in place through
  // ParamRef with no invalidation hook, and packing is O(OutC*K) against
  // the GEMM's O(OutC*K*N).
  PackedWeight.resize(gemmPackedSize(OutC, K));
  gemmPackA(Weight.data(), OutC, K, PackedWeight.data());
}

void Conv2d::noteScratchRealloc(bool Grew) {
  if (!Grew)
    return;
  ++ScratchReallocCount;
  telemetry::counter("nn.conv.scratch.reallocs").inc();
}

Tensor Conv2d::forward(const Tensor &In, bool Train) {
  size_t N, OH, OW;
  Tensor *Cols = nullptr;
  Tensor Out = prepareForward(In, Train, N, OH, OW, Cols);
  const size_t Rows = InC * Kernel * Kernel;
  const size_t ColsN = N * OH * OW;

  if (!Train && !kernels::naive()) {
    // Fast inference: packed GEMM scatters straight into NCHW with the
    // bias folded into the tile store.
    packWeight();
    GemmEpilogue Ep;
    Ep.Bias = HasBias ? Bias.data() : nullptr;
    gemmPackedConvOut(PackedWeight.data(), Cols->data(), Out.data(), OutC,
                      Rows, N, OH * OW, Ep);
    return Out;
  }

  // Reference path (training, and inference under --naive-kernels):
  // GEMM {OutC, Rows} x {Rows, N*OH*OW}, then scatter + bias.
  noteScratchRealloc(ScratchOut.ensureShape({OutC, ColsN}));
  matmul(Weight, *Cols, ScratchOut);

  // Scatter {OutC, N*OH*OW} into NCHW (plus bias). Column index encodes
  // (B, Oi, Oj) as (B*OH + Oi)*OW + Oj.
  const size_t Plane = OH * OW;
  for (size_t Oc = 0; Oc != OutC; ++Oc) {
    const float B = HasBias ? Bias[Oc] : 0.0f;
    const float *Src = ScratchOut.data() + Oc * ColsN;
    for (size_t Bn = 0; Bn != N; ++Bn) {
      float *Dst = Out.data() + (Bn * OutC + Oc) * Plane;
      const float *SrcB = Src + Bn * Plane;
      for (size_t I = 0; I != Plane; ++I)
        Dst[I] = SrcB[I] + B;
    }
  }
  return Out;
}

Tensor Conv2d::forwardFused(const Tensor &In, const BatchNorm2d *Bn,
                            bool Relu) {
  assert(!kernels::naive() && "fused forward requires fast kernels");
  assert((!Bn || Bn->channels() == OutC) && "fused batchnorm channel count");
  size_t N, OH, OW;
  Tensor *Cols = nullptr;
  Tensor Out = prepareForward(In, /*Train=*/false, N, OH, OW, Cols);
  packWeight();
  GemmEpilogue Ep;
  Ep.Bias = HasBias ? Bias.data() : nullptr;
  if (Bn) {
    Bn->inferenceAffine(FusedScale, FusedShift);
    Ep.Scale = FusedScale.data();
    Ep.Shift = FusedShift.data();
  }
  Ep.Relu = Relu;
  gemmPackedConvOut(PackedWeight.data(), Cols->data(), Out.data(), OutC,
                    InC * Kernel * Kernel, N, OH * OW, Ep);
  return Out;
}

Tensor Conv2d::backward(const Tensor &GradOut) {
  assert(CachedN != 0 && "backward without cached forward");
  const size_t N = CachedN, H = CachedH, W = CachedW;
  const size_t OH = convOutSize(H, Kernel, Stride, Pad);
  const size_t OW = convOutSize(W, Kernel, Stride, Pad);
  const size_t Rows = InC * Kernel * Kernel;
  const size_t ColsN = N * OH * OW;
  assert(GradOut.rank() == 4 && GradOut.dim(0) == N &&
         GradOut.dim(1) == OutC && GradOut.dim(2) == OH &&
         GradOut.dim(3) == OW && "conv grad shape mismatch");

  // Gather NCHW grad into the {OutC, N*OH*OW} GEMM layout.
  Tensor Grad2d({OutC, ColsN});
  const size_t Plane = OH * OW;
  for (size_t Oc = 0; Oc != OutC; ++Oc) {
    float *Dst = Grad2d.data() + Oc * ColsN;
    for (size_t Bn = 0; Bn != N; ++Bn) {
      const float *Src = GradOut.data() + (Bn * OutC + Oc) * Plane;
      float *DstB = Dst + Bn * Plane;
      for (size_t I = 0; I != Plane; ++I)
        DstB[I] = Src[I];
    }
  }

  // dW += Grad2d * Cols^T; db += row sums of Grad2d.
  Tensor WG({OutC, Rows});
  matmulTransposedB(Grad2d, CachedCols, WG);
  WeightGrad += WG;
  if (HasBias) {
    for (size_t Oc = 0; Oc != OutC; ++Oc) {
      const float *Row = Grad2d.data() + Oc * ColsN;
      float Acc = 0.0f;
      for (size_t I = 0; I != ColsN; ++I)
        Acc += Row[I];
      BiasGrad[Oc] += Acc;
    }
  }

  // dX = col2im(W^T * Grad2d).
  Tensor GradCols({Rows, ColsN});
  matmulTransposedA(Weight, Grad2d, GradCols);
  Tensor GradIn({N, InC, H, W});
  col2im(GradCols, N, InC, H, W, Kernel, Kernel, Stride, Pad, GradIn);
  return GradIn;
}

void Conv2d::collectParams(const std::string &Prefix,
                           std::vector<ParamRef> &Params) {
  Params.push_back({Prefix + ".weight", &Weight, &WeightGrad});
  if (HasBias)
    Params.push_back({Prefix + ".bias", &Bias, &BiasGrad});
}
