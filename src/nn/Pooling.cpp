//===- nn/Pooling.cpp - Spatial pooling layers ------------------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "nn/Pooling.h"

#include <limits>

using namespace oppsla;

Tensor MaxPool2d::forward(const Tensor &In, bool Train) {
  assert(In.rank() == 4 && "maxpool expects NCHW");
  const size_t N = In.dim(0), C = In.dim(1), H = In.dim(2), W = In.dim(3);
  assert(H >= Window && W >= Window && "pool window larger than input");
  const size_t OH = (H - Window) / Stride + 1;
  const size_t OW = (W - Window) / Stride + 1;
  Tensor Out({N, C, OH, OW});
  if (Train) {
    CachedArgmax.assign(Out.numel(), 0);
    CachedInShape = In.shape();
  }

  size_t OutIdx = 0;
  for (size_t B = 0; B != N; ++B) {
    for (size_t Ch = 0; Ch != C; ++Ch) {
      const float *Plane = In.data() + (B * C + Ch) * H * W;
      const size_t PlaneBase = (B * C + Ch) * H * W;
      for (size_t Oi = 0; Oi != OH; ++Oi) {
        for (size_t Oj = 0; Oj != OW; ++Oj, ++OutIdx) {
          float Best = -std::numeric_limits<float>::infinity();
          size_t BestIdx = 0;
          for (size_t Ki = 0; Ki != Window; ++Ki) {
            const size_t Ii = Oi * Stride + Ki;
            for (size_t Kj = 0; Kj != Window; ++Kj) {
              const size_t Jj = Oj * Stride + Kj;
              const float V = Plane[Ii * W + Jj];
              if (V > Best) {
                Best = V;
                BestIdx = PlaneBase + Ii * W + Jj;
              }
            }
          }
          Out[OutIdx] = Best;
          if (Train)
            CachedArgmax[OutIdx] = BestIdx;
        }
      }
    }
  }
  return Out;
}

Tensor MaxPool2d::backward(const Tensor &GradOut) {
  assert(!CachedArgmax.empty() && "backward without cached forward");
  assert(GradOut.numel() == CachedArgmax.size() && "maxpool grad shape");
  Tensor GradIn(CachedInShape);
  const float *Dy = GradOut.data();
  float *Dx = GradIn.data();
  for (size_t I = 0, E = GradOut.numel(); I != E; ++I)
    Dx[CachedArgmax[I]] += Dy[I];
  return GradIn;
}

Tensor AvgPool2d::forward(const Tensor &In, bool Train) {
  assert(In.rank() == 4 && "avgpool expects NCHW");
  const size_t N = In.dim(0), C = In.dim(1), H = In.dim(2), W = In.dim(3);
  assert(H >= Window && W >= Window && "pool window larger than input");
  const size_t OH = (H - Window) / Stride + 1;
  const size_t OW = (W - Window) / Stride + 1;
  if (Train)
    CachedInShape = In.shape();
  Tensor Out({N, C, OH, OW});
  const float Inv = 1.0f / static_cast<float>(Window * Window);

  size_t OutIdx = 0;
  for (size_t B = 0; B != N; ++B) {
    for (size_t Ch = 0; Ch != C; ++Ch) {
      const float *Plane = In.data() + (B * C + Ch) * H * W;
      for (size_t Oi = 0; Oi != OH; ++Oi) {
        for (size_t Oj = 0; Oj != OW; ++Oj, ++OutIdx) {
          float Acc = 0.0f;
          for (size_t Ki = 0; Ki != Window; ++Ki)
            for (size_t Kj = 0; Kj != Window; ++Kj)
              Acc += Plane[(Oi * Stride + Ki) * W + (Oj * Stride + Kj)];
          Out[OutIdx] = Acc * Inv;
        }
      }
    }
  }
  return Out;
}

Tensor AvgPool2d::backward(const Tensor &GradOut) {
  assert(CachedInShape.rank() == 4 && "backward without cached forward");
  const size_t N = CachedInShape[0], C = CachedInShape[1];
  const size_t H = CachedInShape[2], W = CachedInShape[3];
  const size_t OH = (H - Window) / Stride + 1;
  const size_t OW = (W - Window) / Stride + 1;
  assert(GradOut.rank() == 4 && GradOut.dim(2) == OH &&
         GradOut.dim(3) == OW && "avgpool grad shape");
  Tensor GradIn(CachedInShape);
  const float Inv = 1.0f / static_cast<float>(Window * Window);

  size_t OutIdx = 0;
  for (size_t B = 0; B != N; ++B) {
    for (size_t Ch = 0; Ch != C; ++Ch) {
      float *Plane = GradIn.data() + (B * C + Ch) * H * W;
      for (size_t Oi = 0; Oi != OH; ++Oi) {
        for (size_t Oj = 0; Oj != OW; ++Oj, ++OutIdx) {
          const float G = GradOut[OutIdx] * Inv;
          for (size_t Ki = 0; Ki != Window; ++Ki)
            for (size_t Kj = 0; Kj != Window; ++Kj)
              Plane[(Oi * Stride + Ki) * W + (Oj * Stride + Kj)] += G;
        }
      }
    }
  }
  return GradIn;
}

Tensor GlobalAvgPool::forward(const Tensor &In, bool Train) {
  assert(In.rank() == 4 && "global avg pool expects NCHW");
  const size_t N = In.dim(0), C = In.dim(1);
  const size_t Plane = In.dim(2) * In.dim(3);
  if (Train)
    CachedInShape = In.shape();
  Tensor Out({N, C});
  const float Inv = 1.0f / static_cast<float>(Plane);
  for (size_t B = 0; B != N; ++B) {
    for (size_t Ch = 0; Ch != C; ++Ch) {
      const float *Src = In.data() + (B * C + Ch) * Plane;
      float Acc = 0.0f;
      for (size_t I = 0; I != Plane; ++I)
        Acc += Src[I];
      Out.at(B, Ch) = Acc * Inv;
    }
  }
  return Out;
}

Tensor GlobalAvgPool::backward(const Tensor &GradOut) {
  assert(CachedInShape.rank() == 4 && "backward without cached forward");
  const size_t N = CachedInShape[0], C = CachedInShape[1];
  const size_t Plane = CachedInShape[2] * CachedInShape[3];
  assert(GradOut.rank() == 2 && GradOut.dim(0) == N && GradOut.dim(1) == C &&
         "global avg pool grad shape");
  Tensor GradIn(CachedInShape);
  const float Inv = 1.0f / static_cast<float>(Plane);
  for (size_t B = 0; B != N; ++B) {
    for (size_t Ch = 0; Ch != C; ++Ch) {
      const float G = GradOut.at(B, Ch) * Inv;
      float *Dst = GradIn.data() + (B * C + Ch) * Plane;
      for (size_t I = 0; I != Plane; ++I)
        Dst[I] = G;
    }
  }
  return GradIn;
}
