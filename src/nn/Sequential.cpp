//===- nn/Sequential.cpp - Layer composition --------------------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "nn/Sequential.h"

#include "nn/Activations.h"
#include "nn/BatchNorm2d.h"
#include "nn/Conv2d.h"
#include "support/Metrics.h"
#include "support/Profiler.h"
#include "tensor/Gemm.h"

#include <chrono>
#include <cstdio>

using namespace oppsla;

namespace {

/// Blocks nest Sequentials inside Sequentials; only the outermost forward
/// is instrumented so per-layer times partition the total instead of
/// double-counting nested spans.
thread_local int ForwardDepth = 0;

/// `nn.forward.<ii>.<layer>` counter pair (zero-padded index so the
/// registry's lexicographic order is layer order).
void recordLayerTime(size_t Index, const std::string &LayerName,
                     uint64_t Us) {
  char Key[160];
  std::snprintf(Key, sizeof(Key), "nn.forward.%02zu.%s", Index,
                LayerName.c_str());
  telemetry::counter(std::string(Key) + ".us").inc(Us);
  telemetry::counter(std::string(Key) + ".calls").inc();
}

} // namespace

void Sequential::buildFusionPlan() {
  FusionPlan.clear();
  for (size_t I = 0; I != Layers.size();) {
    FusedStep St;
    St.Begin = I;
    if (auto *Conv = dynamic_cast<Conv2d *>(Layers[I].get())) {
      size_t Next = I + 1;
      auto *Bn = Next != Layers.size()
                     ? dynamic_cast<BatchNorm2d *>(Layers[Next].get())
                     : nullptr;
      if (Bn && Bn->channels() != Conv->outChannels())
        Bn = nullptr;
      if (Bn)
        ++Next;
      const bool Relu = Next != Layers.size() &&
                        dynamic_cast<ReLU *>(Layers[Next].get()) != nullptr;
      if (Relu)
        ++Next;
      if (Next != I + 1) {
        St.Conv = Conv;
        St.Bn = Bn;
        St.Relu = Relu;
        St.Count = Next - I;
      }
    }
    I += St.Count;
    FusionPlan.push_back(St);
  }
  FusionPlanLayers = Layers.size();
}

Tensor Sequential::forward(const Tensor &In, bool Train) {
  const bool Fast = !Train && !kernels::naive();
  if (Fast && FusionPlanLayers != Layers.size())
    buildFusionPlan();

  const bool Timing = telemetry::layerTimingEnabled();
  const bool Prof = telemetry::profilingEnabled();
  if ((Timing || Prof) && ForwardDepth == 0) {
    if (Prof && SpanNames.size() != Layers.size()) {
      // Models are cloned per worker thread, so the lazy build races
      // nothing: only the owning thread runs this forward.
      SpanNames.clear();
      SpanNames.reserve(Layers.size());
      char Key[160];
      for (size_t I = 0; I != Layers.size(); ++I) {
        std::snprintf(Key, sizeof(Key), "nn.%02zu.%s", I,
                      Layers[I]->name().c_str());
        SpanNames.push_back(telemetry::internProfileName(Key));
      }
    }
    ++ForwardDepth;
    telemetry::ProfileScope ForwardSpan(Prof ? "nn.forward" : nullptr);
    Tensor X = In;
    size_t Step = 0;
    for (size_t I = 0; I != Layers.size();) {
      // A fused step is attributed to its conv layer's span/counter; the
      // folded BatchNorm/ReLU layers simply do not appear in that run.
      telemetry::ProfileScope LayerSpan(Prof ? SpanNames[I] : nullptr);
      const auto T0 = std::chrono::steady_clock::now();
      size_t Count = 1;
      if (Fast) {
        const FusedStep &St = FusionPlan[Step++];
        Count = St.Count;
        X = St.Conv ? St.Conv->forwardFused(X, St.Bn, St.Relu)
                    : Layers[I]->forward(X, Train);
      } else {
        X = Layers[I]->forward(X, Train);
      }
      if (Timing) {
        const auto Us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - T0)
                .count();
        recordLayerTime(I, Layers[I]->name(), static_cast<uint64_t>(Us));
      }
      I += Count;
    }
    --ForwardDepth;
    return X;
  }
  Tensor X = In;
  if (Fast) {
    for (const FusedStep &St : FusionPlan)
      X = St.Conv ? St.Conv->forwardFused(X, St.Bn, St.Relu)
                  : Layers[St.Begin]->forward(X, Train);
    return X;
  }
  for (LayerPtr &L : Layers)
    X = L->forward(X, Train);
  return X;
}

Tensor Sequential::backward(const Tensor &GradOut) {
  Tensor G = GradOut;
  for (size_t I = Layers.size(); I-- > 0;)
    G = Layers[I]->backward(G);
  return G;
}

void Sequential::collectParams(const std::string &Prefix,
                               std::vector<ParamRef> &Params) {
  for (size_t I = 0; I != Layers.size(); ++I)
    Layers[I]->collectParams(
        Prefix + "." + std::to_string(I) + "." + Layers[I]->name(), Params);
}

void Sequential::collectBuffers(
    const std::string &Prefix,
    std::vector<std::pair<std::string, Tensor *>> &Buffers) {
  for (size_t I = 0; I != Layers.size(); ++I)
    Layers[I]->collectBuffers(
        Prefix + "." + std::to_string(I) + "." + Layers[I]->name(), Buffers);
}

std::vector<ParamRef> Sequential::parameters() {
  std::vector<ParamRef> Params;
  collectParams("net", Params);
  return Params;
}

std::vector<std::pair<std::string, Tensor *>> Sequential::buffers() {
  std::vector<std::pair<std::string, Tensor *>> Buffers;
  collectBuffers("net", Buffers);
  return Buffers;
}
