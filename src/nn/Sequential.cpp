//===- nn/Sequential.cpp - Layer composition --------------------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "nn/Sequential.h"

using namespace oppsla;

Tensor Sequential::forward(const Tensor &In, bool Train) {
  Tensor X = In;
  for (LayerPtr &L : Layers)
    X = L->forward(X, Train);
  return X;
}

Tensor Sequential::backward(const Tensor &GradOut) {
  Tensor G = GradOut;
  for (size_t I = Layers.size(); I-- > 0;)
    G = Layers[I]->backward(G);
  return G;
}

void Sequential::collectParams(const std::string &Prefix,
                               std::vector<ParamRef> &Params) {
  for (size_t I = 0; I != Layers.size(); ++I)
    Layers[I]->collectParams(
        Prefix + "." + std::to_string(I) + "." + Layers[I]->name(), Params);
}

void Sequential::collectBuffers(
    const std::string &Prefix,
    std::vector<std::pair<std::string, Tensor *>> &Buffers) {
  for (size_t I = 0; I != Layers.size(); ++I)
    Layers[I]->collectBuffers(
        Prefix + "." + std::to_string(I) + "." + Layers[I]->name(), Buffers);
}

std::vector<ParamRef> Sequential::parameters() {
  std::vector<ParamRef> Params;
  collectParams("net", Params);
  return Params;
}

std::vector<std::pair<std::string, Tensor *>> Sequential::buffers() {
  std::vector<std::pair<std::string, Tensor *>> Buffers;
  collectBuffers("net", Buffers);
  return Buffers;
}
