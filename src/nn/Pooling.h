//===- nn/Pooling.h - Spatial pooling layers -------------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_NN_POOLING_H
#define OPPSLA_NN_POOLING_H

#include "nn/Layer.h"

namespace oppsla {

/// Max pooling with a square window; stride defaults to the window size.
class MaxPool2d : public Layer {
public:
  explicit MaxPool2d(size_t Window, size_t Stride = 0)
      : Window(Window), Stride(Stride ? Stride : Window) {}

  Tensor forward(const Tensor &In, bool Train) override;
  Tensor backward(const Tensor &GradOut) override;
  std::string name() const override { return "maxpool2d"; }

private:
  size_t Window, Stride;
  std::vector<size_t> CachedArgmax; ///< flat input index of each output max
  Shape CachedInShape;
};

/// Average pooling with a square window; stride defaults to the window size.
class AvgPool2d : public Layer {
public:
  explicit AvgPool2d(size_t Window, size_t Stride = 0)
      : Window(Window), Stride(Stride ? Stride : Window) {}

  Tensor forward(const Tensor &In, bool Train) override;
  Tensor backward(const Tensor &GradOut) override;
  std::string name() const override { return "avgpool2d"; }

private:
  size_t Window, Stride;
  Shape CachedInShape;
};

/// Global average pooling: {N, C, H, W} -> {N, C}.
class GlobalAvgPool : public Layer {
public:
  Tensor forward(const Tensor &In, bool Train) override;
  Tensor backward(const Tensor &GradOut) override;
  std::string name() const override { return "global_avg_pool"; }

private:
  Shape CachedInShape;
};

} // namespace oppsla

#endif // OPPSLA_NN_POOLING_H
