//===- nn/BatchNorm2d.cpp - Batch normalization ----------------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "nn/BatchNorm2d.h"

#include <cmath>

using namespace oppsla;

BatchNorm2d::BatchNorm2d(size_t Channels, float Momentum, float Eps)
    : Channels(Channels), Momentum(Momentum), Eps(Eps), Gamma({Channels}),
      GammaGrad({Channels}), Beta({Channels}), BetaGrad({Channels}),
      RunningMean({Channels}), RunningVar({Channels}) {
  Gamma.fill(1.0f);
  RunningVar.fill(1.0f);
}

Tensor BatchNorm2d::forward(const Tensor &In, bool Train) {
  assert(In.rank() == 4 && In.dim(1) == Channels && "batchnorm input shape");
  const size_t N = In.dim(0), H = In.dim(2), W = In.dim(3);
  const size_t Plane = H * W;
  Tensor Out(In.shape());

  if (!Train) {
    // Inference: normalize with running statistics, folded to the affine
    // form shared with the fused GEMM epilogue. The explicit std::fma is
    // part of the kernel determinism contract (DESIGN.md §12): fused and
    // unfused paths perform the identical rounding per element.
    AffineScale.resize(Channels);
    AffineShift.resize(Channels);
    inferenceAffine(AffineScale, AffineShift);
    for (size_t C = 0; C != Channels; ++C) {
      const float Scale = AffineScale[C];
      const float Shift = AffineShift[C];
      for (size_t B = 0; B != N; ++B) {
        const float *Src = In.data() + (B * Channels + C) * Plane;
        float *Dst = Out.data() + (B * Channels + C) * Plane;
        for (size_t I = 0; I != Plane; ++I)
          Dst[I] = std::fma(Src[I], Scale, Shift);
      }
    }
    return Out;
  }

  // Training: batch statistics per channel.
  const double Count = static_cast<double>(N * Plane);
  CachedXHat = Tensor(In.shape());
  CachedInvStd = Tensor({Channels});
  CachedN = N;
  CachedH = H;
  CachedW = W;
  for (size_t C = 0; C != Channels; ++C) {
    double Sum = 0.0, SqSum = 0.0;
    for (size_t B = 0; B != N; ++B) {
      const float *Src = In.data() + (B * Channels + C) * Plane;
      for (size_t I = 0; I != Plane; ++I) {
        Sum += Src[I];
        SqSum += static_cast<double>(Src[I]) * Src[I];
      }
    }
    const double VarD = SqSum / Count - (Sum / Count) * (Sum / Count);
    const float Mean = static_cast<float>(Sum / Count);
    const float Var = static_cast<float>(VarD);
    const float InvStd = 1.0f / std::sqrt(std::max(Var, 0.0f) + Eps);
    CachedInvStd[C] = InvStd;

    // Normalization uses the biased (population, /Count) variance, but the
    // running buffer tracks the unbiased sample variance (Bessel's
    // Count/(Count-1) correction) — the torch.nn.BatchNorm2d convention
    // the training recipes assume. Count == 1 has no unbiased estimate;
    // fall back to the biased value rather than divide by zero.
    const float VarUnbiased =
        Count > 1.0 ? static_cast<float>(VarD * Count / (Count - 1.0)) : Var;
    RunningMean[C] = (1.0f - Momentum) * RunningMean[C] + Momentum * Mean;
    RunningVar[C] =
        (1.0f - Momentum) * RunningVar[C] + Momentum * VarUnbiased;

    for (size_t B = 0; B != N; ++B) {
      const float *Src = In.data() + (B * Channels + C) * Plane;
      float *XH = CachedXHat.data() + (B * Channels + C) * Plane;
      float *Dst = Out.data() + (B * Channels + C) * Plane;
      for (size_t I = 0; I != Plane; ++I) {
        XH[I] = (Src[I] - Mean) * InvStd;
        Dst[I] = Gamma[C] * XH[I] + Beta[C];
      }
    }
  }
  return Out;
}

Tensor BatchNorm2d::backward(const Tensor &GradOut) {
  assert(!CachedXHat.empty() && "backward without cached forward");
  const size_t N = CachedN, H = CachedH, W = CachedW;
  const size_t Plane = H * W;
  assert(GradOut.shape() == CachedXHat.shape() && "batchnorm grad shape");

  Tensor GradIn(GradOut.shape());
  const double M = static_cast<double>(N * Plane);
  for (size_t C = 0; C != Channels; ++C) {
    // Accumulate dGamma, dBeta, and the two reduction terms the input
    // gradient needs.
    double SumDy = 0.0, SumDyXHat = 0.0;
    for (size_t B = 0; B != N; ++B) {
      const float *Dy = GradOut.data() + (B * Channels + C) * Plane;
      const float *XH = CachedXHat.data() + (B * Channels + C) * Plane;
      for (size_t I = 0; I != Plane; ++I) {
        SumDy += Dy[I];
        SumDyXHat += static_cast<double>(Dy[I]) * XH[I];
      }
    }
    GammaGrad[C] += static_cast<float>(SumDyXHat);
    BetaGrad[C] += static_cast<float>(SumDy);

    const float G = Gamma[C];
    const float InvStd = CachedInvStd[C];
    const float MeanDy = static_cast<float>(SumDy / M);
    const float MeanDyXHat = static_cast<float>(SumDyXHat / M);
    for (size_t B = 0; B != N; ++B) {
      const float *Dy = GradOut.data() + (B * Channels + C) * Plane;
      const float *XH = CachedXHat.data() + (B * Channels + C) * Plane;
      float *Dx = GradIn.data() + (B * Channels + C) * Plane;
      for (size_t I = 0; I != Plane; ++I)
        Dx[I] = G * InvStd * (Dy[I] - MeanDy - XH[I] * MeanDyXHat);
    }
  }
  return GradIn;
}

void BatchNorm2d::inferenceAffine(std::vector<float> &Scale,
                                  std::vector<float> &Shift) const {
  Scale.resize(Channels);
  Shift.resize(Channels);
  for (size_t C = 0; C != Channels; ++C) {
    const float InvStd = 1.0f / std::sqrt(RunningVar[C] + Eps);
    Scale[C] = Gamma[C] * InvStd;
    Shift[C] = Beta[C] - RunningMean[C] * Scale[C];
  }
}

void BatchNorm2d::collectParams(const std::string &Prefix,
                                std::vector<ParamRef> &Params) {
  Params.push_back({Prefix + ".gamma", &Gamma, &GammaGrad});
  Params.push_back({Prefix + ".beta", &Beta, &BetaGrad});
}

void BatchNorm2d::collectBuffers(
    const std::string &Prefix,
    std::vector<std::pair<std::string, Tensor *>> &Buffers) {
  Buffers.push_back({Prefix + ".running_mean", &RunningMean});
  Buffers.push_back({Prefix + ".running_var", &RunningVar});
}
