//===- nn/Sequential.h - Layer composition ---------------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_NN_SEQUENTIAL_H
#define OPPSLA_NN_SEQUENTIAL_H

#include "nn/Layer.h"

#include <utility>

namespace oppsla {

/// A chain of layers; itself a Layer so blocks can nest.
class Sequential : public Layer {
public:
  Sequential() = default;

  /// Appends a layer; returns *this for chaining.
  Sequential &add(LayerPtr L) {
    assert(L && "null layer");
    Layers.push_back(std::move(L));
    return *this;
  }

  /// Constructs a layer of type \p T in place and returns a reference to it.
  template <typename T, typename... Args> T &emplace(Args &&...As) {
    auto L = std::make_unique<T>(std::forward<Args>(As)...);
    T &Ref = *L;
    Layers.push_back(std::move(L));
    return Ref;
  }

  size_t size() const { return Layers.size(); }
  Layer &layer(size_t I) {
    assert(I < Layers.size() && "layer index out of range");
    return *Layers[I];
  }

  Tensor forward(const Tensor &In, bool Train) override;
  Tensor backward(const Tensor &GradOut) override;
  void collectParams(const std::string &Prefix,
                     std::vector<ParamRef> &Params) override;
  void collectBuffers(const std::string &Prefix,
                      std::vector<std::pair<std::string, Tensor *>> &Buffers)
      override;
  std::string name() const override { return "sequential"; }

  /// Convenience: all parameters with a fresh prefix.
  std::vector<ParamRef> parameters();
  /// Convenience: all persistent buffers with a fresh prefix.
  std::vector<std::pair<std::string, Tensor *>> buffers();

private:
  std::vector<LayerPtr> Layers;
  /// Interned `nn.<ii>.<layer>` span names for the profiler, built lazily
  /// on the first profiled forward (index-aligned with Layers).
  std::vector<const char *> SpanNames;
};

} // namespace oppsla

#endif // OPPSLA_NN_SEQUENTIAL_H
