//===- nn/Sequential.h - Layer composition ---------------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_NN_SEQUENTIAL_H
#define OPPSLA_NN_SEQUENTIAL_H

#include "nn/Layer.h"

#include <utility>

namespace oppsla {

class BatchNorm2d;
class Conv2d;

/// A chain of layers; itself a Layer so blocks can nest.
///
/// Inference forwards with fast kernels enabled run through a lazily built
/// fusion plan: every direct Conv2d -> [BatchNorm2d] -> [ReLU] run executes
/// as one Conv2d::forwardFused call (the GEMM epilogue applies the
/// BatchNorm affine and ReLU in registers), bit-identical to running the
/// layers in sequence. Blocks nest Sequentials, so the plan covers every
/// zoo architecture without the blocks knowing about fusion.
class Sequential : public Layer {
public:
  Sequential() = default;

  /// Appends a layer; returns *this for chaining.
  Sequential &add(LayerPtr L) {
    assert(L && "null layer");
    Layers.push_back(std::move(L));
    return *this;
  }

  /// Constructs a layer of type \p T in place and returns a reference to it.
  template <typename T, typename... Args> T &emplace(Args &&...As) {
    auto L = std::make_unique<T>(std::forward<Args>(As)...);
    T &Ref = *L;
    Layers.push_back(std::move(L));
    return Ref;
  }

  size_t size() const { return Layers.size(); }
  Layer &layer(size_t I) {
    assert(I < Layers.size() && "layer index out of range");
    return *Layers[I];
  }

  Tensor forward(const Tensor &In, bool Train) override;
  Tensor backward(const Tensor &GradOut) override;
  void collectParams(const std::string &Prefix,
                     std::vector<ParamRef> &Params) override;
  void collectBuffers(const std::string &Prefix,
                      std::vector<std::pair<std::string, Tensor *>> &Buffers)
      override;
  std::string name() const override { return "sequential"; }

  /// Convenience: all parameters with a fresh prefix.
  std::vector<ParamRef> parameters();
  /// Convenience: all persistent buffers with a fresh prefix.
  std::vector<std::pair<std::string, Tensor *>> buffers();

private:
  /// One execution step of the fusion plan: either a single plain layer
  /// (Conv == nullptr, Count == 1) or a fused conv run consuming Count
  /// layers starting at Begin.
  struct FusedStep {
    size_t Begin = 0;
    size_t Count = 1;
    Conv2d *Conv = nullptr;
    BatchNorm2d *Bn = nullptr;
    bool Relu = false;
  };

  /// Rebuilds FusionPlan to tile [0, Layers.size()). Lazily invoked on the
  /// first fast-kernel inference forward and whenever the layer count
  /// changed; models are cloned per worker thread, so the build races
  /// nothing.
  void buildFusionPlan();

  std::vector<LayerPtr> Layers;
  std::vector<FusedStep> FusionPlan;
  size_t FusionPlanLayers = static_cast<size_t>(-1);
  /// Interned `nn.<ii>.<layer>` span names for the profiler, built lazily
  /// on the first profiled forward (index-aligned with Layers).
  std::vector<const char *> SpanNames;
};

} // namespace oppsla

#endif // OPPSLA_NN_SEQUENTIAL_H
