//===- nn/Misc.cpp - Flatten and Dropout layers -----------------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "nn/Misc.h"

using namespace oppsla;

Tensor Flatten::forward(const Tensor &In, bool Train) {
  assert(In.rank() >= 2 && "flatten expects a batched tensor");
  if (Train)
    CachedInShape = In.shape();
  const size_t N = In.dim(0);
  return In.reshaped({N, In.numel() / N});
}

Tensor Flatten::backward(const Tensor &GradOut) {
  assert(CachedInShape.rank() >= 2 && "backward without cached forward");
  assert(GradOut.numel() == CachedInShape.numel() && "flatten grad numel");
  return GradOut.reshaped(CachedInShape);
}

Tensor Dropout::forward(const Tensor &In, bool Train) {
  if (!Train)
    return In;
  CachedMask = Tensor(In.shape());
  Tensor Out(In.shape());
  const float Scale = 1.0f / (1.0f - Prob);
  const float *Src = In.data();
  float *Mask = CachedMask.data();
  float *Dst = Out.data();
  for (size_t I = 0, E = In.numel(); I != E; ++I) {
    const bool Keep = !MaskRng.chance(Prob);
    Mask[I] = Keep ? Scale : 0.0f;
    Dst[I] = Src[I] * Mask[I];
  }
  return Out;
}

Tensor Dropout::backward(const Tensor &GradOut) {
  assert(GradOut.shape() == CachedMask.shape() && "dropout grad shape");
  Tensor GradIn(GradOut.shape());
  const float *Dy = GradOut.data();
  const float *Mask = CachedMask.data();
  float *Dx = GradIn.data();
  for (size_t I = 0, E = GradOut.numel(); I != E; ++I)
    Dx[I] = Dy[I] * Mask[I];
  return GradIn;
}
