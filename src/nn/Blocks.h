//===- nn/Blocks.h - Composite CNN building blocks -------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Composite blocks mirroring the architecture families the paper attacks:
/// VGG-style conv stacks (plain Sequential), ResNet-style residual blocks,
/// GoogLeNet-style inception blocks (parallel branches concatenated over
/// channels), and DenseNet-style dense blocks (input concatenated with the
/// branch output). Each block is itself a Layer with a full backward pass.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_NN_BLOCKS_H
#define OPPSLA_NN_BLOCKS_H

#include "nn/Sequential.h"

namespace oppsla {

class Rng;

/// Builds the ubiquitous Conv -> BatchNorm -> ReLU unit.
LayerPtr convBnRelu(size_t InC, size_t OutC, size_t Kernel, size_t Stride,
                    size_t Pad, Rng &R);

/// Residual block: Out = ReLU(F(In) + Proj(In)) where F is two
/// conv-bn(-relu) units and Proj is identity or a 1x1 conv when shape or
/// stride changes.
class ResidualBlock : public Layer {
public:
  ResidualBlock(size_t InC, size_t OutC, size_t Stride, Rng &R);

  Tensor forward(const Tensor &In, bool Train) override;
  Tensor backward(const Tensor &GradOut) override;
  void collectParams(const std::string &Prefix,
                     std::vector<ParamRef> &Params) override;
  void collectBuffers(const std::string &Prefix,
                      std::vector<std::pair<std::string, Tensor *>> &Buffers)
      override;
  std::string name() const override { return "residual"; }

private:
  Sequential Body;           ///< conv-bn-relu, conv-bn
  std::unique_ptr<Sequential> Proj; ///< 1x1 conv-bn when shapes differ
  Tensor CachedSum;          ///< pre-activation sum for the final ReLU
};

/// Inception-style block: parallel branches over the same input whose
/// outputs are concatenated along the channel dimension.
class InceptionBlock : public Layer {
public:
  /// Branches: 1x1 conv, 3x3 conv (with 1x1 reduce), 5x5 conv (with 1x1
  /// reduce). Channel counts are per branch output.
  InceptionBlock(size_t InC, size_t C1x1, size_t C3x3, size_t C5x5, Rng &R);

  Tensor forward(const Tensor &In, bool Train) override;
  Tensor backward(const Tensor &GradOut) override;
  void collectParams(const std::string &Prefix,
                     std::vector<ParamRef> &Params) override;
  void collectBuffers(const std::string &Prefix,
                      std::vector<std::pair<std::string, Tensor *>> &Buffers)
      override;
  std::string name() const override { return "inception"; }

  size_t outChannels() const { return OutC; }

private:
  std::vector<std::unique_ptr<Sequential>> Branches;
  std::vector<size_t> BranchChannels;
  size_t OutC;
};

/// DenseNet-style layer: Out = concat(In, G(In)) where G produces
/// \p Growth channels via conv-bn-relu. Stacking these forms a dense block.
class DenseLayer : public Layer {
public:
  DenseLayer(size_t InC, size_t Growth, Rng &R);

  Tensor forward(const Tensor &In, bool Train) override;
  Tensor backward(const Tensor &GradOut) override;
  void collectParams(const std::string &Prefix,
                     std::vector<ParamRef> &Params) override;
  void collectBuffers(const std::string &Prefix,
                      std::vector<std::pair<std::string, Tensor *>> &Buffers)
      override;
  std::string name() const override { return "dense_layer"; }

  size_t outChannels() const { return InC + Growth; }

private:
  size_t InC, Growth;
  Sequential Body;
};

} // namespace oppsla

#endif // OPPSLA_NN_BLOCKS_H
