//===- nn/Activations.h - Elementwise activation layers --------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_NN_ACTIVATIONS_H
#define OPPSLA_NN_ACTIVATIONS_H

#include "nn/Layer.h"

namespace oppsla {

/// Rectified linear unit.
class ReLU : public Layer {
public:
  Tensor forward(const Tensor &In, bool Train) override;
  Tensor backward(const Tensor &GradOut) override;
  std::string name() const override { return "relu"; }

private:
  Tensor CachedMask; ///< 1 where the input was positive
};

/// Leaky rectified linear unit with fixed negative slope.
class LeakyReLU : public Layer {
public:
  explicit LeakyReLU(float Slope = 0.1f) : Slope(Slope) {}

  Tensor forward(const Tensor &In, bool Train) override;
  Tensor backward(const Tensor &GradOut) override;
  std::string name() const override { return "leaky_relu"; }

private:
  float Slope;
  Tensor CachedIn;
};

/// Hyperbolic tangent.
class Tanh : public Layer {
public:
  Tensor forward(const Tensor &In, bool Train) override;
  Tensor backward(const Tensor &GradOut) override;
  std::string name() const override { return "tanh"; }

private:
  Tensor CachedOut;
};

} // namespace oppsla

#endif // OPPSLA_NN_ACTIVATIONS_H
