//===- nn/Serialize.h - Model parameter serialization ----------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Saves and loads the full state (parameters + persistent buffers) of a
/// Sequential model to a simple binary format. The benches use this to
/// cache trained victim classifiers across runs.
///
/// Format: magic "OPSL", u32 version, u32 entry count; then per entry a
/// length-prefixed name, u32 numel, and raw float32 data. Shapes are not
/// stored — loading requires a structurally identical model, and names are
/// verified entry by entry.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_NN_SERIALIZE_H
#define OPPSLA_NN_SERIALIZE_H

#include <string>

namespace oppsla {

class Sequential;

/// Writes all parameters and buffers of \p Model to \p Path.
/// \returns true on success.
bool saveModel(Sequential &Model, const std::string &Path);

/// Loads parameters and buffers into \p Model from \p Path. The model must
/// have the same architecture (same entry names, counts and sizes) as the
/// one that was saved. \returns true on success.
bool loadModel(Sequential &Model, const std::string &Path);

} // namespace oppsla

#endif // OPPSLA_NN_SERIALIZE_H
