//===- nn/BatchNorm2d.h - Batch normalization ------------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_NN_BATCHNORM2D_H
#define OPPSLA_NN_BATCHNORM2D_H

#include "nn/Layer.h"

#include <vector>

namespace oppsla {

/// Per-channel batch normalization over NCHW tensors.
///
/// Training mode normalizes with batch statistics and updates running
/// mean/var with exponential momentum; inference mode uses the running
/// statistics (the mode the attack queries always hit).
class BatchNorm2d : public Layer {
public:
  explicit BatchNorm2d(size_t Channels, float Momentum = 0.1f,
                       float Eps = 1e-5f);

  Tensor forward(const Tensor &In, bool Train) override;
  Tensor backward(const Tensor &GradOut) override;
  void collectParams(const std::string &Prefix,
                     std::vector<ParamRef> &Params) override;
  void collectBuffers(const std::string &Prefix,
                      std::vector<std::pair<std::string, Tensor *>> &Buffers)
      override;
  std::string name() const override { return "batchnorm2d"; }

  /// The per-channel affine form of inference-mode normalization:
  /// out = fma(in, Scale[c], Shift[c]). Both the unfused inference forward
  /// and Conv2d's fused GEMM epilogue take their coefficients from this one
  /// function, so the two paths are bit-identical by construction. Resizes
  /// the outputs to channels().
  void inferenceAffine(std::vector<float> &Scale,
                       std::vector<float> &Shift) const;

  size_t channels() const { return Channels; }
  Tensor &runningMean() { return RunningMean; }
  Tensor &runningVar() { return RunningVar; }

private:
  size_t Channels;
  float Momentum, Eps;
  Tensor Gamma, GammaGrad; ///< scale, {C}
  Tensor Beta, BetaGrad;   ///< shift, {C}
  Tensor RunningMean, RunningVar;
  // Cached training-forward state.
  Tensor CachedXHat;   ///< normalized input, same shape as In
  Tensor CachedInvStd; ///< {C}
  size_t CachedN = 0, CachedH = 0, CachedW = 0;
  // Inference scratch for the folded affine coefficients.
  std::vector<float> AffineScale, AffineShift;
};

} // namespace oppsla

#endif // OPPSLA_NN_BATCHNORM2D_H
