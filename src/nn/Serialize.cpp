//===- nn/Serialize.cpp - Model parameter serialization --------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "nn/Serialize.h"

#include "nn/Sequential.h"
#include "support/Logging.h"

#include <cstdint>
#include <cstdio>
#include <memory>

using namespace oppsla;

namespace {

constexpr uint32_t Magic = 0x4c53504fU; // "OPSL" little-endian
constexpr uint32_t Version = 1;

struct FileCloser {
  void operator()(std::FILE *F) const {
    if (F)
      std::fclose(F);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool writeU32(std::FILE *F, uint32_t V) {
  return std::fwrite(&V, sizeof(V), 1, F) == 1;
}

bool readU32(std::FILE *F, uint32_t &V) {
  return std::fread(&V, sizeof(V), 1, F) == 1;
}

bool writeEntry(std::FILE *F, const std::string &Name, const Tensor &T) {
  if (!writeU32(F, static_cast<uint32_t>(Name.size())))
    return false;
  if (std::fwrite(Name.data(), 1, Name.size(), F) != Name.size())
    return false;
  if (!writeU32(F, static_cast<uint32_t>(T.numel())))
    return false;
  return std::fwrite(T.data(), sizeof(float), T.numel(), F) == T.numel();
}

bool readEntry(std::FILE *F, const std::string &ExpectName, Tensor &T) {
  uint32_t NameLen = 0;
  if (!readU32(F, NameLen) || NameLen > 4096)
    return false;
  std::string Name(NameLen, '\0');
  if (std::fread(Name.data(), 1, NameLen, F) != NameLen)
    return false;
  if (Name != ExpectName) {
    logError() << "model load: expected entry '" << ExpectName
               << "' but file has '" << Name << "'";
    return false;
  }
  uint32_t Numel = 0;
  if (!readU32(F, Numel))
    return false;
  if (Numel != T.numel()) {
    logError() << "model load: entry '" << Name << "' has " << Numel
               << " values, model expects " << T.numel();
    return false;
  }
  return std::fread(T.data(), sizeof(float), Numel, F) == Numel;
}

} // namespace

bool oppsla::saveModel(Sequential &Model, const std::string &Path) {
  FilePtr F(std::fopen(Path.c_str(), "wb"));
  if (!F) {
    logWarn() << "cannot open '" << Path << "' for writing";
    return false;
  }
  auto Params = Model.parameters();
  auto Buffers = Model.buffers();
  const auto Count = static_cast<uint32_t>(Params.size() + Buffers.size());
  if (!writeU32(F.get(), Magic) || !writeU32(F.get(), Version) ||
      !writeU32(F.get(), Count))
    return false;
  for (const ParamRef &P : Params)
    if (!writeEntry(F.get(), P.Name, *P.Value))
      return false;
  for (const auto &[Name, T] : Buffers)
    if (!writeEntry(F.get(), Name, *T))
      return false;
  return true;
}

bool oppsla::loadModel(Sequential &Model, const std::string &Path) {
  FilePtr F(std::fopen(Path.c_str(), "rb"));
  if (!F)
    return false;
  uint32_t M = 0, V = 0, Count = 0;
  if (!readU32(F.get(), M) || M != Magic || !readU32(F.get(), V) ||
      V != Version || !readU32(F.get(), Count)) {
    logWarn() << "'" << Path << "' is not a valid oppsla model file";
    return false;
  }
  auto Params = Model.parameters();
  auto Buffers = Model.buffers();
  if (Count != Params.size() + Buffers.size()) {
    logWarn() << "'" << Path << "' entry count mismatch";
    return false;
  }
  for (const ParamRef &P : Params)
    if (!readEntry(F.get(), P.Name, *P.Value))
      return false;
  for (const auto &[Name, T] : Buffers)
    if (!readEntry(F.get(), Name, *T))
      return false;
  return true;
}
