//===- nn/Misc.h - Flatten and Dropout layers ------------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_NN_MISC_H
#define OPPSLA_NN_MISC_H

#include "nn/Layer.h"
#include "support/Rng.h"

namespace oppsla {

/// Flattens {N, C, H, W} to {N, C*H*W}; remembers the input shape so the
/// gradient can be folded back.
class Flatten : public Layer {
public:
  Tensor forward(const Tensor &In, bool Train) override;
  Tensor backward(const Tensor &GradOut) override;
  std::string name() const override { return "flatten"; }

private:
  Shape CachedInShape;
};

/// Inverted dropout: active only in training mode, identity at inference.
class Dropout : public Layer {
public:
  /// \p Prob is the drop probability; \p Seed makes the masks deterministic.
  explicit Dropout(float Prob, uint64_t Seed = 0xd20ULL)
      : Prob(Prob), MaskRng(Seed) {
    assert(Prob >= 0.0f && Prob < 1.0f && "invalid dropout probability");
  }

  Tensor forward(const Tensor &In, bool Train) override;
  Tensor backward(const Tensor &GradOut) override;
  std::string name() const override { return "dropout"; }

private:
  float Prob;
  Rng MaskRng;
  Tensor CachedMask;
};

} // namespace oppsla

#endif // OPPSLA_NN_MISC_H
