//===- nn/Layer.cpp - Neural network layer interface ----------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "nn/Layer.h"

using namespace oppsla;

Layer::~Layer() = default;

void Layer::collectParams(const std::string &Prefix,
                          std::vector<ParamRef> &Params) {
  // Parameterless layers contribute nothing.
  (void)Prefix;
  (void)Params;
}

void Layer::collectBuffers(
    const std::string &Prefix,
    std::vector<std::pair<std::string, Tensor *>> &Buffers) {
  (void)Prefix;
  (void)Buffers;
}

void oppsla::zeroGrads(const std::vector<ParamRef> &Params) {
  for (const ParamRef &P : Params)
    P.Grad->zero();
}
