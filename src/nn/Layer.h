//===- nn/Layer.h - Neural network layer interface -------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Layer interface of the from-scratch CNN substrate. Layers implement
/// explicit forward/backward passes (no autograd tape): forward caches what
/// backward needs, backward consumes the cached state and produces the input
/// gradient while accumulating parameter gradients.
///
/// This substrate replaces the PyTorch models the paper attacks. It only
/// needs to be fast at batch-1 inference (the attack loop) and correct at
/// small-batch training (building the victim classifiers).
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_NN_LAYER_H
#define OPPSLA_NN_LAYER_H

#include "tensor/Tensor.h"

#include <memory>
#include <string>
#include <vector>

namespace oppsla {

/// A named (value, gradient) parameter pair exposed by a layer.
/// Pointers remain valid for the lifetime of the owning layer.
struct ParamRef {
  std::string Name;
  Tensor *Value;
  Tensor *Grad;
};

/// Abstract base for all layers.
class Layer {
public:
  virtual ~Layer();

  /// Runs the layer on \p In. When \p Train is true the layer caches
  /// whatever backward() needs and uses training behaviour (batch stats,
  /// active dropout, ...).
  virtual Tensor forward(const Tensor &In, bool Train) = 0;

  /// Propagates \p GradOut (d loss / d output) to the input, accumulating
  /// parameter gradients. Must be called after a forward(Train=true) with
  /// matching shapes.
  virtual Tensor backward(const Tensor &GradOut) = 0;

  /// Appends this layer's parameters (if any) to \p Params, prefixing their
  /// names with \p Prefix.
  virtual void collectParams(const std::string &Prefix,
                             std::vector<ParamRef> &Params);

  /// Appends non-learned persistent state (e.g. batchnorm running stats)
  /// that serialization must carry but optimizers must not touch.
  virtual void collectBuffers(const std::string &Prefix,
                              std::vector<std::pair<std::string, Tensor *>>
                                  &Buffers);

  /// Human-readable layer name for debugging and serialization.
  virtual std::string name() const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

/// Zeroes the gradients of all parameters in \p Params.
void zeroGrads(const std::vector<ParamRef> &Params);

} // namespace oppsla

#endif // OPPSLA_NN_LAYER_H
