//===- nn/ModelZoo.h - Victim classifier architectures ---------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Miniature analogues of the architectures the paper attacks. The paper
/// uses pretrained VGG-16-BN / ResNet18 / GoogLeNet (CIFAR-10) and
/// DenseNet121 / ResNet50 (ImageNet); we reproduce the *family traits*
/// (plain conv stacks, residual connections, inception branches, dense
/// connectivity) at a size where a forward pass costs microseconds, because
/// the attack evaluation runs millions of black-box queries.
///
/// Models end in a Flatten + Linear head (like the original VGG/ResNet
/// classifiers) rather than global average pooling: averaging would wash
/// out single-pixel influence and make one pixel attacks unrealistically
/// hard. The head size depends on the input resolution, so builders take
/// the input side explicitly.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_NN_MODELZOO_H
#define OPPSLA_NN_MODELZOO_H

#include "nn/Sequential.h"

#include <memory>
#include <string>

namespace oppsla {

class Rng;

/// Architecture families available for victim classifiers.
enum class Arch {
  MiniVGG,        ///< plain conv-bn-relu stack (VGG-16-BN analogue)
  MiniResNet,     ///< residual blocks (ResNet18 analogue)
  MiniGoogLeNet,  ///< inception blocks (GoogLeNet analogue)
  MiniDenseNet,   ///< dense connectivity (DenseNet121 analogue)
  MiniResNet50,   ///< deeper residual net (ResNet50 analogue)
  Mlp,            ///< tiny fully-connected net (tests/debugging only)
};

/// Human-readable architecture name ("MiniVGG", ...).
const char *archName(Arch A);

/// Parses an architecture name; returns Mlp for unknown strings.
Arch archFromName(const std::string &Name);

/// Builds an untrained model of family \p A with \p NumClasses outputs
/// for square RGB inputs of side \p InputSide (must be a multiple of 8,
/// or 16 for MiniResNet50). Weights are initialized from \p R;
/// construction is deterministic given the RNG state.
std::unique_ptr<Sequential> buildModel(Arch A, size_t NumClasses,
                                       size_t InputSide, Rng &R);

} // namespace oppsla

#endif // OPPSLA_NN_MODELZOO_H
