//===- nn/Init.cpp - Weight initialization schemes -------------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "nn/Init.h"

#include "support/Rng.h"

#include <cmath>

using namespace oppsla;

void oppsla::kaimingNormal(Tensor &W, size_t FanIn, Rng &R) {
  assert(FanIn > 0 && "kaimingNormal needs positive fan-in");
  const double Stddev = std::sqrt(2.0 / static_cast<double>(FanIn));
  for (float &V : W.vec())
    V = static_cast<float>(R.normal(0.0, Stddev));
}

void oppsla::xavierUniform(Tensor &W, size_t FanIn, size_t FanOut, Rng &R) {
  assert(FanIn + FanOut > 0 && "xavierUniform needs positive fans");
  const double A = std::sqrt(6.0 / static_cast<double>(FanIn + FanOut));
  for (float &V : W.vec())
    V = static_cast<float>(R.uniform(-A, A));
}
