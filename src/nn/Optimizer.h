//===- nn/Optimizer.h - Gradient descent optimizers ------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_NN_OPTIMIZER_H
#define OPPSLA_NN_OPTIMIZER_H

#include "nn/Layer.h"

namespace oppsla {

/// Abstract optimizer over a fixed parameter list.
class Optimizer {
public:
  explicit Optimizer(std::vector<ParamRef> Params)
      : Params(std::move(Params)) {}
  virtual ~Optimizer();

  /// Applies one update using the accumulated gradients.
  virtual void step() = 0;

  /// Clears all gradients.
  void zeroGrad() { zeroGrads(Params); }

  const std::vector<ParamRef> &params() const { return Params; }

protected:
  std::vector<ParamRef> Params;
};

/// SGD with classical momentum and decoupled weight decay.
class Sgd : public Optimizer {
public:
  Sgd(std::vector<ParamRef> Params, float Lr, float Momentum = 0.9f,
      float WeightDecay = 0.0f);

  void step() override;
  void setLr(float NewLr) { Lr = NewLr; }
  float lr() const { return Lr; }

private:
  float Lr, Momentum, WeightDecay;
  std::vector<Tensor> Velocity;
};

/// Adam with bias correction.
class Adam : public Optimizer {
public:
  Adam(std::vector<ParamRef> Params, float Lr, float Beta1 = 0.9f,
       float Beta2 = 0.999f, float Eps = 1e-8f, float WeightDecay = 0.0f);

  void step() override;
  void setLr(float NewLr) { Lr = NewLr; }
  float lr() const { return Lr; }

private:
  float Lr, Beta1, Beta2, Eps, WeightDecay;
  size_t T = 0;
  std::vector<Tensor> M, V;
};

} // namespace oppsla

#endif // OPPSLA_NN_OPTIMIZER_H
