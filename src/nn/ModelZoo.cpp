//===- nn/ModelZoo.cpp - Victim classifier architectures --------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "nn/ModelZoo.h"

#include "nn/Activations.h"
#include "nn/BatchNorm2d.h"
#include "nn/Blocks.h"
#include "nn/Conv2d.h"
#include "nn/Linear.h"
#include "nn/Misc.h"
#include "nn/Pooling.h"
#include "support/Rng.h"

using namespace oppsla;

const char *oppsla::archName(Arch A) {
  switch (A) {
  case Arch::MiniVGG:
    return "MiniVGG";
  case Arch::MiniResNet:
    return "MiniResNet";
  case Arch::MiniGoogLeNet:
    return "MiniGoogLeNet";
  case Arch::MiniDenseNet:
    return "MiniDenseNet";
  case Arch::MiniResNet50:
    return "MiniResNet50";
  case Arch::Mlp:
    return "Mlp";
  }
  return "unknown";
}

Arch oppsla::archFromName(const std::string &Name) {
  if (Name == "MiniVGG" || Name == "vgg")
    return Arch::MiniVGG;
  if (Name == "MiniResNet" || Name == "resnet")
    return Arch::MiniResNet;
  if (Name == "MiniGoogLeNet" || Name == "googlenet")
    return Arch::MiniGoogLeNet;
  if (Name == "MiniDenseNet" || Name == "densenet")
    return Arch::MiniDenseNet;
  if (Name == "MiniResNet50" || Name == "resnet50")
    return Arch::MiniResNet50;
  return Arch::Mlp;
}

namespace {

/// Output side of a stride-2, kernel-3, pad-1 conv.
size_t convS2(size_t Side) { return (Side + 2 - 3) / 2 + 1; }
/// Output side of a window-2 pool.
size_t pool2(size_t Side) { return (Side - 2) / 2 + 1; }

std::unique_ptr<Sequential> buildMiniVGG(size_t NumClasses, size_t Side,
                                         Rng &R) {
  auto Net = std::make_unique<Sequential>();
  // VGG trait: homogeneous 3x3 conv-bn-relu stacks between downsamples,
  // finished by a fully connected classifier head. The first conv keeps
  // full resolution (like the original VGG) so a single pixel feeds nine
  // first-layer windows.
  Net->add(convBnRelu(3, 6, 3, 1, 1, R));
  size_t S = Side;
  Net->add(convBnRelu(6, 12, 3, 2, 1, R));
  S = convS2(S);
  Net->emplace<MaxPool2d>(2);
  S = pool2(S);
  Net->add(convBnRelu(12, 24, 3, 1, 1, R));
  Net->emplace<MaxPool2d>(2);
  S = pool2(S);
  Net->add(convBnRelu(24, 32, 3, 1, 1, R));
  Net->emplace<Flatten>();
  Net->emplace<Linear>(32 * S * S, NumClasses, R);
  return Net;
}

std::unique_ptr<Sequential> buildMiniResNet(size_t NumClasses, size_t Side,
                                            Rng &R) {
  auto Net = std::make_unique<Sequential>();
  Net->add(convBnRelu(3, 8, 3, 2, 1, R));
  size_t S = convS2(Side);
  Net->emplace<ResidualBlock>(8, 16, /*Stride=*/2, R);
  S = convS2(S);
  Net->emplace<ResidualBlock>(16, 24, /*Stride=*/2, R);
  S = convS2(S);
  Net->emplace<Flatten>();
  Net->emplace<Linear>(24 * S * S, NumClasses, R);
  return Net;
}

std::unique_ptr<Sequential> buildMiniGoogLeNet(size_t NumClasses, size_t Side,
                                               Rng &R) {
  auto Net = std::make_unique<Sequential>();
  Net->add(convBnRelu(3, 8, 3, 2, 1, R));
  size_t S = convS2(Side);
  Net->emplace<MaxPool2d>(2);
  S = pool2(S);
  Net->emplace<InceptionBlock>(8, /*C1x1=*/4, /*C3x3=*/8, /*C5x5=*/4, R);
  Net->emplace<InceptionBlock>(16, /*C1x1=*/8, /*C3x3=*/12, /*C5x5=*/4, R);
  Net->emplace<MaxPool2d>(2);
  S = pool2(S);
  Net->emplace<InceptionBlock>(24, /*C1x1=*/8, /*C3x3=*/16, /*C5x5=*/8, R);
  Net->emplace<Flatten>();
  Net->emplace<Linear>(32 * S * S, NumClasses, R);
  return Net;
}

std::unique_ptr<Sequential> buildMiniDenseNet(size_t NumClasses, size_t Side,
                                              Rng &R) {
  auto Net = std::make_unique<Sequential>();
  Net->add(convBnRelu(3, 8, 3, 2, 1, R));
  size_t S = convS2(Side);
  Net->emplace<MaxPool2d>(2);
  S = pool2(S);
  Net->emplace<DenseLayer>(8, /*Growth=*/8, R);  // -> 16 channels
  Net->emplace<DenseLayer>(16, /*Growth=*/8, R); // -> 24 channels
  Net->add(convBnRelu(24, 16, 1, 1, 0, R));      // transition
  Net->emplace<AvgPool2d>(2);
  S = pool2(S);
  Net->emplace<DenseLayer>(16, /*Growth=*/8, R); // -> 24 channels
  Net->emplace<Flatten>();
  Net->emplace<Linear>(24 * S * S, NumClasses, R);
  return Net;
}

std::unique_ptr<Sequential> buildMiniResNet50(size_t NumClasses, size_t Side,
                                              Rng &R) {
  auto Net = std::make_unique<Sequential>();
  Net->add(convBnRelu(3, 8, 3, 2, 1, R));
  size_t S = convS2(Side);
  Net->emplace<MaxPool2d>(2);
  S = pool2(S);
  Net->emplace<ResidualBlock>(8, 16, /*Stride=*/2, R);
  S = convS2(S);
  Net->emplace<ResidualBlock>(16, 16, /*Stride=*/1, R);
  Net->emplace<ResidualBlock>(16, 32, /*Stride=*/2, R);
  S = convS2(S);
  Net->emplace<Flatten>();
  Net->emplace<Linear>(32 * S * S, NumClasses, R);
  return Net;
}

std::unique_ptr<Sequential> buildMlp(size_t NumClasses, size_t Side,
                                     Rng &R) {
  auto Net = std::make_unique<Sequential>();
  Net->emplace<Flatten>();
  Net->emplace<Linear>(Side * Side * 3, 32, R);
  Net->emplace<ReLU>();
  Net->emplace<Linear>(32, NumClasses, R);
  return Net;
}

} // namespace

std::unique_ptr<Sequential> oppsla::buildModel(Arch A, size_t NumClasses,
                                               size_t InputSide, Rng &R) {
  assert(InputSide >= 16 && "input side too small for the downsampling");
  switch (A) {
  case Arch::MiniVGG:
    return buildMiniVGG(NumClasses, InputSide, R);
  case Arch::MiniResNet:
    return buildMiniResNet(NumClasses, InputSide, R);
  case Arch::MiniGoogLeNet:
    return buildMiniGoogLeNet(NumClasses, InputSide, R);
  case Arch::MiniDenseNet:
    return buildMiniDenseNet(NumClasses, InputSide, R);
  case Arch::MiniResNet50:
    return buildMiniResNet50(NumClasses, InputSide, R);
  case Arch::Mlp:
    return buildMlp(NumClasses, InputSide, R);
  }
  return nullptr;
}
