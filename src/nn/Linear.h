//===- nn/Linear.h - Fully connected layer ---------------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_NN_LINEAR_H
#define OPPSLA_NN_LINEAR_H

#include "nn/Layer.h"

#include <vector>

namespace oppsla {

class Rng;

/// Fully connected layer: Out = In * W^T + b over a {N, InF} batch.
/// Rank-4 inputs are accepted and flattened per sample.
class Linear : public Layer {
public:
  Linear(size_t InF, size_t OutF, Rng &R);

  Tensor forward(const Tensor &In, bool Train) override;
  Tensor backward(const Tensor &GradOut) override;
  void collectParams(const std::string &Prefix,
                     std::vector<ParamRef> &Params) override;
  std::string name() const override { return "linear"; }

  size_t inFeatures() const { return InF; }
  size_t outFeatures() const { return OutF; }
  Tensor &weight() { return Weight; }
  Tensor &bias() { return Bias; }

private:
  size_t InF, OutF;
  Tensor Weight, WeightGrad; ///< {OutF, InF}
  Tensor Bias, BiasGrad;     ///< {OutF}
  Tensor CachedIn;           ///< {N, InF} from the last training forward
  // Inference scratch for the packed-GEMM path: the tile-major weight
  // pack and the {InF, N} input transpose. Reused across calls.
  std::vector<float> PackedWeight;
  std::vector<float> ScratchInT;
};

} // namespace oppsla

#endif // OPPSLA_NN_LINEAR_H
