//===- nn/Conv2d.h - 2-D convolution layer ---------------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_NN_CONV2D_H
#define OPPSLA_NN_CONV2D_H

#include "nn/Layer.h"

#include <vector>

namespace oppsla {

class BatchNorm2d;
class Rng;

/// 2-D convolution over NCHW tensors, lowered to GEMM via im2col.
///
/// Weight shape is {OutC, InC * KH * KW} (each output channel is one GEMM
/// row); bias is {OutC}. Kaiming-normal initialization.
class Conv2d : public Layer {
public:
  Conv2d(size_t InC, size_t OutC, size_t Kernel, size_t Stride, size_t Pad,
         Rng &R, bool HasBias = true);

  Tensor forward(const Tensor &In, bool Train) override;

  /// Inference-only fused forward: conv + optional BatchNorm affine +
  /// optional ReLU in a single packed-GEMM pass (the epilogue runs while
  /// each output tile is still in registers). Only called by Sequential's
  /// fusion plan when fast kernels are enabled; bit-identical to running
  /// the unfused layers in sequence (DESIGN.md §12).
  Tensor forwardFused(const Tensor &In, const BatchNorm2d *Bn, bool Relu);

  Tensor backward(const Tensor &GradOut) override;
  void collectParams(const std::string &Prefix,
                     std::vector<ParamRef> &Params) override;
  std::string name() const override { return "conv2d"; }

  size_t inChannels() const { return InC; }
  size_t outChannels() const { return OutC; }
  size_t kernel() const { return Kernel; }
  size_t stride() const { return Stride; }
  size_t padding() const { return Pad; }

  Tensor &weight() { return Weight; }
  Tensor &bias() { return Bias; }

  /// How many times the inference scratch buffers had to grow. With
  /// capacity-based reuse this stays at the high-water mark count (engine
  /// full batches + one tail size allocate at most twice), not once per
  /// batch-size change; regression-tested in tests/nn/LayerBehaviorTest.
  size_t scratchReallocs() const { return ScratchReallocCount; }

private:
  /// im2col into \p Cols (capacity-reusing) and return the {N,OutC,OH,OW}
  /// output tensor shell shared by all forward flavors.
  Tensor prepareForward(const Tensor &In, bool Train, size_t &N, size_t &OH,
                        size_t &OW, Tensor *&Cols);
  void packWeight();
  /// Counts a scratch growth event in the layer and in telemetry.
  void noteScratchRealloc(bool Grew);

  size_t InC, OutC, Kernel, Stride, Pad;
  bool HasBias;
  Tensor Weight, WeightGrad;
  Tensor Bias, BiasGrad;
  // Cached forward state for backward.
  Tensor CachedCols; ///< im2col matrix of the last training input
  size_t CachedN = 0, CachedH = 0, CachedW = 0;
  // Scratch reused across inference calls; resized capacity-preserving so
  // alternating batch shapes do not thrash the allocator.
  Tensor ScratchCols, ScratchOut;
  size_t ScratchReallocCount = 0;
  // Fast-kernel scratch: Weight packed into MR-row panels (rebuilt every
  // forward — packing is O(M*K) against the GEMM's O(M*K*N), and the
  // optimizer mutates Weight in place between forwards) and the folded
  // BatchNorm affine coefficients for the fused epilogue.
  std::vector<float> PackedWeight;
  std::vector<float> FusedScale, FusedShift;
};

} // namespace oppsla

#endif // OPPSLA_NN_CONV2D_H
