//===- nn/Conv2d.h - 2-D convolution layer ---------------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_NN_CONV2D_H
#define OPPSLA_NN_CONV2D_H

#include "nn/Layer.h"

namespace oppsla {

class Rng;

/// 2-D convolution over NCHW tensors, lowered to GEMM via im2col.
///
/// Weight shape is {OutC, InC * KH * KW} (each output channel is one GEMM
/// row); bias is {OutC}. Kaiming-normal initialization.
class Conv2d : public Layer {
public:
  Conv2d(size_t InC, size_t OutC, size_t Kernel, size_t Stride, size_t Pad,
         Rng &R, bool HasBias = true);

  Tensor forward(const Tensor &In, bool Train) override;
  Tensor backward(const Tensor &GradOut) override;
  void collectParams(const std::string &Prefix,
                     std::vector<ParamRef> &Params) override;
  std::string name() const override { return "conv2d"; }

  size_t inChannels() const { return InC; }
  size_t outChannels() const { return OutC; }
  size_t kernel() const { return Kernel; }
  size_t stride() const { return Stride; }
  size_t padding() const { return Pad; }

  Tensor &weight() { return Weight; }
  Tensor &bias() { return Bias; }

private:
  size_t InC, OutC, Kernel, Stride, Pad;
  bool HasBias;
  Tensor Weight, WeightGrad;
  Tensor Bias, BiasGrad;
  // Cached forward state for backward.
  Tensor CachedCols; ///< im2col matrix of the last training input
  size_t CachedN = 0, CachedH = 0, CachedW = 0;
  // Scratch reused across batch-1 inference calls to avoid reallocation.
  Tensor ScratchCols, ScratchOut;
};

} // namespace oppsla

#endif // OPPSLA_NN_CONV2D_H
