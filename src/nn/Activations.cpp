//===- nn/Activations.cpp - Elementwise activation layers ------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "nn/Activations.h"

#include <cmath>

using namespace oppsla;

Tensor ReLU::forward(const Tensor &In, bool Train) {
  Tensor Out(In.shape());
  const float *Src = In.data();
  float *Dst = Out.data();
  if (Train) {
    CachedMask = Tensor(In.shape());
    float *Mask = CachedMask.data();
    for (size_t I = 0, E = In.numel(); I != E; ++I) {
      const bool Pos = Src[I] > 0.0f;
      Dst[I] = Pos ? Src[I] : 0.0f;
      Mask[I] = Pos ? 1.0f : 0.0f;
    }
    return Out;
  }
  for (size_t I = 0, E = In.numel(); I != E; ++I)
    Dst[I] = Src[I] > 0.0f ? Src[I] : 0.0f;
  return Out;
}

Tensor ReLU::backward(const Tensor &GradOut) {
  assert(GradOut.shape() == CachedMask.shape() && "relu grad shape");
  Tensor GradIn(GradOut.shape());
  const float *Dy = GradOut.data();
  const float *Mask = CachedMask.data();
  float *Dx = GradIn.data();
  for (size_t I = 0, E = GradOut.numel(); I != E; ++I)
    Dx[I] = Dy[I] * Mask[I];
  return GradIn;
}

Tensor LeakyReLU::forward(const Tensor &In, bool Train) {
  if (Train)
    CachedIn = In;
  Tensor Out(In.shape());
  const float *Src = In.data();
  float *Dst = Out.data();
  for (size_t I = 0, E = In.numel(); I != E; ++I)
    Dst[I] = Src[I] > 0.0f ? Src[I] : Slope * Src[I];
  return Out;
}

Tensor LeakyReLU::backward(const Tensor &GradOut) {
  assert(GradOut.shape() == CachedIn.shape() && "leaky relu grad shape");
  Tensor GradIn(GradOut.shape());
  const float *Dy = GradOut.data();
  const float *X = CachedIn.data();
  float *Dx = GradIn.data();
  for (size_t I = 0, E = GradOut.numel(); I != E; ++I)
    Dx[I] = X[I] > 0.0f ? Dy[I] : Slope * Dy[I];
  return GradIn;
}

Tensor Tanh::forward(const Tensor &In, bool Train) {
  Tensor Out(In.shape());
  const float *Src = In.data();
  float *Dst = Out.data();
  for (size_t I = 0, E = In.numel(); I != E; ++I)
    Dst[I] = std::tanh(Src[I]);
  if (Train)
    CachedOut = Out;
  return Out;
}

Tensor Tanh::backward(const Tensor &GradOut) {
  assert(GradOut.shape() == CachedOut.shape() && "tanh grad shape");
  Tensor GradIn(GradOut.shape());
  const float *Dy = GradOut.data();
  const float *Y = CachedOut.data();
  float *Dx = GradIn.data();
  for (size_t I = 0, E = GradOut.numel(); I != E; ++I)
    Dx[I] = Dy[I] * (1.0f - Y[I] * Y[I]);
  return GradIn;
}
