//===- nn/Loss.cpp - Training loss functions ---------------------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "nn/Loss.h"

#include "tensor/TensorOps.h"

#include <cmath>

using namespace oppsla;

float CrossEntropy::forward(const Tensor &Logits,
                            const std::vector<size_t> &Labels) {
  assert(Logits.rank() == 2 && "cross entropy expects {N, C} logits");
  const size_t N = Logits.dim(0), C = Logits.dim(1);
  assert(Labels.size() == N && "one label per row required");

  Probs = Logits;
  softmaxInPlace(Probs);
  CachedLabels = Labels;
  Correct = 0;

  // Label-smoothed targets: (1-eps) + eps/C on the true class, eps/C on
  // the rest; the loss is the cross entropy against those targets.
  const float Eps = Smoothing;
  const float Off = Eps / static_cast<float>(C);
  const float On = 1.0f - Eps + Off;
  double Loss = 0.0;
  for (size_t I = 0; I != N; ++I) {
    assert(Labels[I] < C && "label out of range");
    const float *Row = Probs.data() + I * C;
    if (Eps == 0.0f) {
      Loss -= std::log(std::max(Row[Labels[I]], 1e-12f));
    } else {
      for (size_t J = 0; J != C; ++J) {
        const float Target = J == Labels[I] ? On : Off;
        Loss -= Target * std::log(std::max(Row[J], 1e-12f));
      }
    }
    size_t Arg = 0;
    for (size_t J = 1; J != C; ++J)
      if (Row[J] > Row[Arg])
        Arg = J;
    if (Arg == Labels[I])
      ++Correct;
  }
  return static_cast<float>(Loss / static_cast<double>(N));
}

Tensor CrossEntropy::backward() const {
  assert(!Probs.empty() && "backward without forward");
  const size_t N = Probs.dim(0), C = Probs.dim(1);
  Tensor Grad = Probs;
  const float Inv = 1.0f / static_cast<float>(N);
  const float Eps = Smoothing;
  const float Off = Eps / static_cast<float>(C);
  const float On = 1.0f - Eps + Off;
  for (size_t I = 0; I != N; ++I) {
    float *Row = Grad.data() + I * C;
    if (Eps == 0.0f) {
      Row[CachedLabels[I]] -= 1.0f;
    } else {
      for (size_t J = 0; J != C; ++J)
        Row[J] -= J == CachedLabels[I] ? On : Off;
    }
    for (size_t J = 0; J != C; ++J)
      Row[J] *= Inv;
  }
  return Grad;
}
