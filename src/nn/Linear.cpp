//===- nn/Linear.cpp - Fully connected layer --------------------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "nn/Linear.h"

#include "nn/Init.h"
#include "support/Rng.h"
#include "tensor/Gemm.h"
#include "tensor/TensorOps.h"

using namespace oppsla;

Linear::Linear(size_t InF, size_t OutF, Rng &R)
    : InF(InF), OutF(OutF), Weight({OutF, InF}), WeightGrad({OutF, InF}),
      Bias({OutF}), BiasGrad({OutF}) {
  kaimingNormal(Weight, InF, R);
}

Tensor Linear::forward(const Tensor &In, bool Train) {
  // Accept {N, InF} or {N, C, H, W} with C*H*W == InF.
  size_t N;
  if (In.rank() == 2) {
    N = In.dim(0);
    assert(In.dim(1) == InF && "linear input feature mismatch");
  } else {
    assert(In.rank() == 4 && "linear expects rank 2 or 4 input");
    N = In.dim(0);
    assert(In.numel() / N == InF && "linear input feature mismatch");
  }
  Tensor In2d = In.reshaped({N, InF});
  if (Train)
    CachedIn = In2d;

  Tensor Out({N, OutF});
  if (!Train && !kernels::naive()) {
    // Fast inference: packed GEMM with the bias folded into the tile
    // store. With Plane == 1 the NCHW scatter degenerates to row-major
    // {N, OutF}, exactly this layer's output layout. Both paths reduce k
    // ascending through the same fma chain (fma is commutative in its
    // first two arguments), so this is bit-identical to the naive path.
    PackedWeight.resize(gemmPackedSize(OutF, InF));
    gemmPackA(Weight.data(), OutF, InF, PackedWeight.data());
    ScratchInT.resize(InF * N);
    const float *InD = In2d.data();
    for (size_t I = 0; I != N; ++I)
      for (size_t K = 0; K != InF; ++K)
        ScratchInT[K * N + I] = InD[I * InF + K];
    GemmEpilogue Ep;
    Ep.Bias = Bias.data();
    gemmPackedConvOut(PackedWeight.data(), ScratchInT.data(), Out.data(),
                      /*M=*/OutF, /*K=*/InF, /*NB=*/N, /*Plane=*/1, Ep);
    return Out;
  }
  matmulTransposedB(In2d, Weight, Out);
  for (size_t I = 0; I != N; ++I) {
    float *Row = Out.data() + I * OutF;
    for (size_t J = 0; J != OutF; ++J)
      Row[J] += Bias[J];
  }
  return Out;
}

Tensor Linear::backward(const Tensor &GradOut) {
  assert(GradOut.rank() == 2 && GradOut.dim(1) == OutF &&
         "linear grad shape mismatch");
  assert(!CachedIn.empty() && "backward without cached forward");
  const size_t N = GradOut.dim(0);
  assert(CachedIn.dim(0) == N && "batch size mismatch in linear backward");

  // dW += GradOut^T * In; shape {OutF, InF}.
  Tensor WG({OutF, InF});
  matmulTransposedA(GradOut, CachedIn, WG);
  WeightGrad += WG;

  // db += column sums of GradOut.
  for (size_t I = 0; I != N; ++I) {
    const float *Row = GradOut.data() + I * OutF;
    for (size_t J = 0; J != OutF; ++J)
      BiasGrad[J] += Row[J];
  }

  // dX = GradOut * W; shape {N, InF}.
  Tensor GradIn({N, InF});
  matmul(GradOut, Weight, GradIn);
  return GradIn;
}

void Linear::collectParams(const std::string &Prefix,
                           std::vector<ParamRef> &Params) {
  Params.push_back({Prefix + ".weight", &Weight, &WeightGrad});
  Params.push_back({Prefix + ".bias", &Bias, &BiasGrad});
}
