//===- nn/Loss.h - Training loss functions ---------------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_NN_LOSS_H
#define OPPSLA_NN_LOSS_H

#include "tensor/Tensor.h"

#include <vector>

namespace oppsla {

/// Softmax cross-entropy over a {N, C} logits batch, with optional label
/// smoothing (targets (1-eps) on the true class, eps/C elsewhere). The
/// victim classifiers train with smoothing so their confidence margins
/// stay realistic rather than saturating at 1.0.
struct CrossEntropy {
  explicit CrossEntropy(float Smoothing = 0.0f) : Smoothing(Smoothing) {}

  /// Mean loss over the batch; also records the probabilities needed by
  /// backward. \p Labels are class indices, one per row.
  float forward(const Tensor &Logits, const std::vector<size_t> &Labels);

  /// Gradient of the mean loss wrt logits, shape {N, C}.
  Tensor backward() const;

  /// Number of rows whose argmax matched the label in the last forward.
  size_t numCorrect() const { return Correct; }

private:
  float Smoothing;
  Tensor Probs;
  std::vector<size_t> CachedLabels;
  size_t Correct = 0;
};

} // namespace oppsla

#endif // OPPSLA_NN_LOSS_H
