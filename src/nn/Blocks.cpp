//===- nn/Blocks.cpp - Composite CNN building blocks ------------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "nn/Blocks.h"

#include "nn/Activations.h"
#include "nn/BatchNorm2d.h"
#include "nn/Conv2d.h"
#include "support/Rng.h"

using namespace oppsla;

LayerPtr oppsla::convBnRelu(size_t InC, size_t OutC, size_t Kernel,
                            size_t Stride, size_t Pad, Rng &R) {
  auto Seq = std::make_unique<Sequential>();
  Seq->emplace<Conv2d>(InC, OutC, Kernel, Stride, Pad, R, /*HasBias=*/false);
  Seq->emplace<BatchNorm2d>(OutC);
  Seq->emplace<ReLU>();
  return Seq;
}

//===----------------------------------------------------------------------===//
// ResidualBlock
//===----------------------------------------------------------------------===//

ResidualBlock::ResidualBlock(size_t InC, size_t OutC, size_t Stride, Rng &R) {
  Body.emplace<Conv2d>(InC, OutC, 3, Stride, 1, R, /*HasBias=*/false);
  Body.emplace<BatchNorm2d>(OutC);
  Body.emplace<ReLU>();
  Body.emplace<Conv2d>(OutC, OutC, 3, 1, 1, R, /*HasBias=*/false);
  Body.emplace<BatchNorm2d>(OutC);
  if (InC != OutC || Stride != 1) {
    Proj = std::make_unique<Sequential>();
    Proj->emplace<Conv2d>(InC, OutC, 1, Stride, 0, R, /*HasBias=*/false);
    Proj->emplace<BatchNorm2d>(OutC);
  }
}

Tensor ResidualBlock::forward(const Tensor &In, bool Train) {
  Tensor F = Body.forward(In, Train);
  Tensor Skip = Proj ? Proj->forward(In, Train) : In;
  assert(F.shape() == Skip.shape() && "residual shape mismatch");
  F += Skip;
  if (Train)
    CachedSum = F;
  // Final ReLU applied in place on the sum.
  float *D = F.data();
  for (size_t I = 0, E = F.numel(); I != E; ++I)
    D[I] = D[I] > 0.0f ? D[I] : 0.0f;
  return F;
}

Tensor ResidualBlock::backward(const Tensor &GradOut) {
  assert(!CachedSum.empty() && "backward without cached forward");
  assert(GradOut.shape() == CachedSum.shape() && "residual grad shape");
  // Grad through the final ReLU on the cached pre-activation sum.
  Tensor G(GradOut.shape());
  const float *Dy = GradOut.data();
  const float *S = CachedSum.data();
  float *Gd = G.data();
  for (size_t I = 0, E = G.numel(); I != E; ++I)
    Gd[I] = S[I] > 0.0f ? Dy[I] : 0.0f;

  Tensor GradIn = Body.backward(G);
  if (Proj) {
    GradIn += Proj->backward(G);
    return GradIn;
  }
  GradIn += G;
  return GradIn;
}

void ResidualBlock::collectParams(const std::string &Prefix,
                                  std::vector<ParamRef> &Params) {
  Body.collectParams(Prefix + ".body", Params);
  if (Proj)
    Proj->collectParams(Prefix + ".proj", Params);
}

void ResidualBlock::collectBuffers(
    const std::string &Prefix,
    std::vector<std::pair<std::string, Tensor *>> &Buffers) {
  Body.collectBuffers(Prefix + ".body", Buffers);
  if (Proj)
    Proj->collectBuffers(Prefix + ".proj", Buffers);
}

//===----------------------------------------------------------------------===//
// InceptionBlock
//===----------------------------------------------------------------------===//

InceptionBlock::InceptionBlock(size_t InC, size_t C1x1, size_t C3x3,
                               size_t C5x5, Rng &R)
    : OutC(C1x1 + C3x3 + C5x5) {
  // Branch 1: 1x1.
  auto B1 = std::make_unique<Sequential>();
  B1->add(convBnRelu(InC, C1x1, 1, 1, 0, R));
  Branches.push_back(std::move(B1));
  BranchChannels.push_back(C1x1);

  // Branch 2: 1x1 reduce then 3x3.
  const size_t Red3 = std::max<size_t>(1, C3x3 / 2);
  auto B2 = std::make_unique<Sequential>();
  B2->add(convBnRelu(InC, Red3, 1, 1, 0, R));
  B2->add(convBnRelu(Red3, C3x3, 3, 1, 1, R));
  Branches.push_back(std::move(B2));
  BranchChannels.push_back(C3x3);

  // Branch 3: 1x1 reduce then 5x5.
  const size_t Red5 = std::max<size_t>(1, C5x5 / 2);
  auto B3 = std::make_unique<Sequential>();
  B3->add(convBnRelu(InC, Red5, 1, 1, 0, R));
  B3->add(convBnRelu(Red5, C5x5, 5, 1, 2, R));
  Branches.push_back(std::move(B3));
  BranchChannels.push_back(C5x5);
}

Tensor InceptionBlock::forward(const Tensor &In, bool Train) {
  assert(In.rank() == 4 && "inception expects NCHW");
  const size_t N = In.dim(0), H = In.dim(2), W = In.dim(3);
  Tensor Out({N, OutC, H, W});
  const size_t Plane = H * W;
  size_t ChanBase = 0;
  for (size_t BIdx = 0; BIdx != Branches.size(); ++BIdx) {
    Tensor BOut = Branches[BIdx]->forward(In, Train);
    const size_t BC = BranchChannels[BIdx];
    assert(BOut.dim(1) == BC && BOut.dim(2) == H && BOut.dim(3) == W &&
           "inception branch output shape");
    for (size_t B = 0; B != N; ++B) {
      const float *Src = BOut.data() + B * BC * Plane;
      float *Dst = Out.data() + (B * OutC + ChanBase) * Plane;
      for (size_t I = 0, E = BC * Plane; I != E; ++I)
        Dst[I] = Src[I];
    }
    ChanBase += BC;
  }
  return Out;
}

Tensor InceptionBlock::backward(const Tensor &GradOut) {
  assert(GradOut.rank() == 4 && GradOut.dim(1) == OutC &&
         "inception grad shape");
  const size_t N = GradOut.dim(0), H = GradOut.dim(2), W = GradOut.dim(3);
  const size_t Plane = H * W;
  Tensor GradIn;
  size_t ChanBase = 0;
  for (size_t BIdx = 0; BIdx != Branches.size(); ++BIdx) {
    const size_t BC = BranchChannels[BIdx];
    Tensor Slice({N, BC, H, W});
    for (size_t B = 0; B != N; ++B) {
      const float *Src = GradOut.data() + (B * OutC + ChanBase) * Plane;
      float *Dst = Slice.data() + B * BC * Plane;
      for (size_t I = 0, E = BC * Plane; I != E; ++I)
        Dst[I] = Src[I];
    }
    Tensor G = Branches[BIdx]->backward(Slice);
    if (GradIn.empty())
      GradIn = std::move(G);
    else
      GradIn += G;
    ChanBase += BC;
  }
  return GradIn;
}

void InceptionBlock::collectParams(const std::string &Prefix,
                                   std::vector<ParamRef> &Params) {
  for (size_t I = 0; I != Branches.size(); ++I)
    Branches[I]->collectParams(Prefix + ".branch" + std::to_string(I),
                               Params);
}

void InceptionBlock::collectBuffers(
    const std::string &Prefix,
    std::vector<std::pair<std::string, Tensor *>> &Buffers) {
  for (size_t I = 0; I != Branches.size(); ++I)
    Branches[I]->collectBuffers(Prefix + ".branch" + std::to_string(I),
                                Buffers);
}

//===----------------------------------------------------------------------===//
// DenseLayer
//===----------------------------------------------------------------------===//

DenseLayer::DenseLayer(size_t InC, size_t Growth, Rng &R)
    : InC(InC), Growth(Growth) {
  Body.add(convBnRelu(InC, Growth, 3, 1, 1, R));
}

Tensor DenseLayer::forward(const Tensor &In, bool Train) {
  assert(In.rank() == 4 && In.dim(1) == InC && "dense layer input shape");
  const size_t N = In.dim(0), H = In.dim(2), W = In.dim(3);
  Tensor G = Body.forward(In, Train);
  Tensor Out({N, InC + Growth, H, W});
  const size_t Plane = H * W;
  for (size_t B = 0; B != N; ++B) {
    const float *SrcIn = In.data() + B * InC * Plane;
    float *DstIn = Out.data() + B * (InC + Growth) * Plane;
    for (size_t I = 0, E = InC * Plane; I != E; ++I)
      DstIn[I] = SrcIn[I];
    const float *SrcG = G.data() + B * Growth * Plane;
    float *DstG = Out.data() + (B * (InC + Growth) + InC) * Plane;
    for (size_t I = 0, E = Growth * Plane; I != E; ++I)
      DstG[I] = SrcG[I];
  }
  return Out;
}

Tensor DenseLayer::backward(const Tensor &GradOut) {
  assert(GradOut.rank() == 4 && GradOut.dim(1) == InC + Growth &&
         "dense layer grad shape");
  const size_t N = GradOut.dim(0), H = GradOut.dim(2), W = GradOut.dim(3);
  const size_t Plane = H * W;
  // Split grad into the passthrough part and the branch part.
  Tensor GradPass({N, InC, H, W});
  Tensor GradBranch({N, Growth, H, W});
  for (size_t B = 0; B != N; ++B) {
    const float *Src = GradOut.data() + B * (InC + Growth) * Plane;
    float *DstP = GradPass.data() + B * InC * Plane;
    for (size_t I = 0, E = InC * Plane; I != E; ++I)
      DstP[I] = Src[I];
    const float *SrcG = GradOut.data() + (B * (InC + Growth) + InC) * Plane;
    float *DstG = GradBranch.data() + B * Growth * Plane;
    for (size_t I = 0, E = Growth * Plane; I != E; ++I)
      DstG[I] = SrcG[I];
  }
  Tensor GradIn = Body.backward(GradBranch);
  GradIn += GradPass;
  return GradIn;
}

void DenseLayer::collectParams(const std::string &Prefix,
                               std::vector<ParamRef> &Params) {
  Body.collectParams(Prefix + ".body", Params);
}

void DenseLayer::collectBuffers(
    const std::string &Prefix,
    std::vector<std::pair<std::string, Tensor *>> &Buffers) {
  Body.collectBuffers(Prefix + ".body", Buffers);
}
