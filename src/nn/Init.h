//===- nn/Init.h - Weight initialization schemes ---------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_NN_INIT_H
#define OPPSLA_NN_INIT_H

#include "tensor/Tensor.h"

namespace oppsla {

class Rng;

/// He/Kaiming normal init: N(0, sqrt(2 / FanIn)); the default for layers
/// followed by ReLU.
void kaimingNormal(Tensor &W, size_t FanIn, Rng &R);

/// Glorot/Xavier uniform init: U(-a, a) with a = sqrt(6 / (FanIn+FanOut)).
void xavierUniform(Tensor &W, size_t FanIn, size_t FanOut, Rng &R);

} // namespace oppsla

#endif // OPPSLA_NN_INIT_H
