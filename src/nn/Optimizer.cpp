//===- nn/Optimizer.cpp - Gradient descent optimizers ----------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "nn/Optimizer.h"

#include <cmath>

using namespace oppsla;

Optimizer::~Optimizer() = default;

Sgd::Sgd(std::vector<ParamRef> Params, float Lr, float Momentum,
         float WeightDecay)
    : Optimizer(std::move(Params)), Lr(Lr), Momentum(Momentum),
      WeightDecay(WeightDecay) {
  Velocity.reserve(this->Params.size());
  for (const ParamRef &P : this->Params)
    Velocity.emplace_back(P.Value->shape());
}

void Sgd::step() {
  for (size_t I = 0; I != Params.size(); ++I) {
    Tensor &W = *Params[I].Value;
    const Tensor &G = *Params[I].Grad;
    Tensor &Vel = Velocity[I];
    float *Wd = W.data();
    const float *Gd = G.data();
    float *Vd = Vel.data();
    for (size_t J = 0, E = W.numel(); J != E; ++J) {
      const float Grad = Gd[J] + WeightDecay * Wd[J];
      Vd[J] = Momentum * Vd[J] + Grad;
      Wd[J] -= Lr * Vd[J];
    }
  }
}

Adam::Adam(std::vector<ParamRef> Params, float Lr, float Beta1, float Beta2,
           float Eps, float WeightDecay)
    : Optimizer(std::move(Params)), Lr(Lr), Beta1(Beta1), Beta2(Beta2),
      Eps(Eps), WeightDecay(WeightDecay) {
  M.reserve(this->Params.size());
  V.reserve(this->Params.size());
  for (const ParamRef &P : this->Params) {
    M.emplace_back(P.Value->shape());
    V.emplace_back(P.Value->shape());
  }
}

void Adam::step() {
  ++T;
  const float Bc1 = 1.0f - std::pow(Beta1, static_cast<float>(T));
  const float Bc2 = 1.0f - std::pow(Beta2, static_cast<float>(T));
  for (size_t I = 0; I != Params.size(); ++I) {
    Tensor &W = *Params[I].Value;
    const Tensor &G = *Params[I].Grad;
    float *Wd = W.data();
    const float *Gd = G.data();
    float *Md = M[I].data();
    float *Vd = V[I].data();
    for (size_t J = 0, E = W.numel(); J != E; ++J) {
      const float Grad = Gd[J] + WeightDecay * Wd[J];
      Md[J] = Beta1 * Md[J] + (1.0f - Beta1) * Grad;
      Vd[J] = Beta2 * Vd[J] + (1.0f - Beta2) * Grad * Grad;
      const float MHat = Md[J] / Bc1;
      const float VHat = Vd[J] / Bc2;
      Wd[J] -= Lr * MHat / (std::sqrt(VHat) + Eps);
    }
  }
}
