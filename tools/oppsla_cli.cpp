//===- tools/oppsla_cli.cpp - Command line driver for the library -------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Umbrella command line tool exposing the library's workflow:
//
//   oppsla train      --arch vgg --task cifar [--scale small]
//   oppsla synthesize --arch vgg --class 0 [--iters 20] [--out prog.txt]
//   oppsla explain    --program prog.txt [--side 32]
//   oppsla attack     --arch vgg --class 0 --program prog.txt
//                     [--budget 4096] [--images 16]
//   oppsla eval       --arch vgg --attack oppsla|sparse-rs|suopa|random
//                     [--class 0] [--budget 4096] [--seed 1]
//   oppsla serve      --port 0 [--capacity 16] [--workers 1]
//                     [--checkpoint-dir D] [--checkpoint-every 4]
//                     [--resume] [--max-seconds 0] [--no-job-trace]
//   oppsla client     submit|list|status|result|cancel|wait|trace|shutdown
//                     --port N | --port-file f [--id N] [--out f] ...
//   oppsla wire       --in artifact [--runs-out runs.jsonl]
//
// Victims are cached under .oppsla-cache (or $OPPSLA_CACHE_DIR), so the
// train step is implicit in the other subcommands.
//
//===----------------------------------------------------------------------===//

#include "attacks/RandomPairSearch.h"
#include "attacks/SketchAttack.h"
#include "attacks/SparseRS.h"
#include "attacks/SuOPA.h"
#include "core/Analysis.h"
#include "core/Parse.h"
#include "engine/QueryEngine.h"
#include "eval/Evaluation.h"
#include "eval/Experiments.h"
#include "eval/Export.h"
#include "serve/Checkpoint.h"
#include "serve/JobQueue.h"
#include "serve/JobRunner.h"
#include "serve/ServeServer.h"
#include "wire/Wire.h"
#include "support/ArgParse.h"
#include "support/Http.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Profiler.h"
#include "support/Progress.h"
#include "support/StatsServer.h"
#include "support/Table.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"
#include "tensor/Gemm.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

using namespace oppsla;

namespace {

int usage() {
  std::cerr
      << "usage: oppsla "
         "<train|synthesize|explain|attack|eval|serve|client|wire> "
         "[options]\n"
         "  common options: --arch vgg|resnet|googlenet|densenet|resnet50\n"
         "                  --task cifar|imagenet  --scale smoke|small|paper\n"
         "                  --threads N (parallel sweeps; 0 = all cores;\n"
         "                  results are identical for any thread count)\n"
         "  telemetry:      --trace-out t.jsonl  --metrics-out m.json\n"
         "                  --layer-timing (per-layer forward timings)\n"
         "                  --profile (span profiler call-tree report)\n"
         "                  --profile-out p.folded (folded stacks for\n"
         "                  flamegraph.pl/speedscope; implies --profile)\n"
         "                  --progress (single updating stderr line)\n"
         "                  --hw-counters (perf_event IPC/miss rates per\n"
         "                  span; no-op where perf is unavailable)\n"
         "  stats server:   --stats-port N (HTTP /metrics /profile\n"
         "                  /healthz /ledger on 127.0.0.1; 0 = ephemeral)\n"
         "                  --ledger runs.jsonl (bench ledger served by\n"
         "                  GET /ledger; see tools/oppsla_bench)\n"
         "                  --stats-port-file f (write the bound port)\n"
         "                  --stats-linger (serve after the run until\n"
         "                  GET /quitquitquit, 30s cap)\n"
         "  query engine:   --batch-size N (images per physical forward,\n"
         "                  default 8)  --cache-capacity N (memoized\n"
         "                  scores, default 4096)  --no-cache\n"
         "                  --engine-threads N (parallel forward chunks)\n"
         "                  results and avgQueries are identical for any\n"
         "                  engine setting, including --batch-size 1\n"
         "  kernels:        --naive-kernels (route conv/GEMM through the\n"
         "                  scalar reference loops; bit-identical to the\n"
         "                  default packed SGEMM, see DESIGN.md §12)\n"
         "  synthesis:      --synth-islands N (parallel MH chains with\n"
         "                  elite exchange; programs are identical for\n"
         "                  any --threads)  --exchange-interval N\n"
         "                  --program-store DIR (content-addressed cache\n"
         "                  of synthesized programs; default\n"
         "                  .oppsla-cache/programs)  --no-program-store\n"
         "  tracing:        --traceparent 00-..-..-01 (adopt a W3C trace\n"
         "                  context for this run; minted when absent)\n"
         "run with a subcommand for its specific options (see tool header)\n";
  return 2;
}

TaskKind taskOf(const ArgParse &Args) {
  return Args.get("task", "cifar") == "imagenet" ? TaskKind::ImageNetLike
                                                 : TaskKind::CifarLike;
}

Arch archOf(const ArgParse &Args) {
  return archFromName(Args.get("arch", "resnet"));
}

/// Shared `--batch-size` / `--cache-capacity` / `--no-cache` /
/// `--engine-threads` wiring. The engine is always interposed; the
/// degenerate config (batch 1, cache off) makes it a pure pass-through, so
/// these flags tune performance only — never results.
QueryEngineConfig engineConfigFromArgs(const ArgParse &Args) {
  QueryEngineConfig Config;
  Config.BatchSize = static_cast<size_t>(std::max(
      1LL, Args.getInt("batch-size", static_cast<long long>(Config.BatchSize))));
  Config.CacheCapacity =
      Args.getFlag("no-cache")
          ? 0
          : static_cast<size_t>(std::max(
                0LL, Args.getInt("cache-capacity",
                                 static_cast<long long>(Config.CacheCapacity))));
  Config.Threads = static_cast<size_t>(
      std::max(1LL, Args.getInt("engine-threads", 1)));
  return Config;
}

/// Shared `--synth-islands` / `--exchange-interval` / `--program-store` /
/// `--no-program-store` wiring for every command that synthesizes.
/// Islands and the exchange cadence are part of the result (and of the
/// store key); threads and the store are not — any thread count and a warm
/// or cold store yield byte-identical programs.
SynthesisRunOptions synthesisOptionsFromArgs(const ArgParse &Args) {
  SynthesisRunOptions Opts;
  Opts.Threads = threadCountFromArgs(Args);
  Opts.Islands = static_cast<size_t>(
      std::max(1LL, Args.getInt("synth-islands", 1)));
  Opts.ExchangeInterval = static_cast<size_t>(
      std::max(1LL, Args.getInt("exchange-interval", 25)));
  Opts.UseStore = !Args.getFlag("no-program-store");
  Opts.StoreRoot = Args.get("program-store", "");
  return Opts;
}

/// Prints the span profiler's call-tree (indented under \p Indent) when
/// profiling was on and recorded anything.
void printProfileReport(const char *Indent) {
  const std::string Report = telemetry::profileTextReport();
  if (Report.empty())
    return;
  std::istringstream In(Report);
  std::string Line;
  while (std::getline(In, Line))
    std::cout << Indent << Line << "\n";
}

int cmdTrain(const ArgParse &Args) {
  const BenchScale Scale = BenchScale::preset(Args.get("scale", "small"));
  std::unique_ptr<NNClassifier> Victim;
  const Dataset Test = makeTestSet(taskOf(Args), Scale);
  size_t Correct = 0;
  {
    telemetry::ProfileScope Root("cli.train");
    Victim = makeScaledVictim(taskOf(Args), archOf(Args), Scale);
    for (size_t I = 0; I != Test.size(); ++I)
      Correct += Victim->predict(Test.Images[I]) == Test.Labels[I];
  }
  std::cout << "victim " << Victim->name() << " ready; test accuracy "
            << Table::fmt(100.0 * static_cast<double>(Correct) /
                              static_cast<double>(Test.size()),
                          1)
            << "% over " << Test.size() << " images\n";
  printProfileReport("");
  return 0;
}

int cmdSynthesize(const ArgParse &Args) {
  BenchScale Scale = BenchScale::preset(Args.get("scale", "small"));
  // --iters overrides the scale's iteration budget; it feeds the store key
  // through Scale, so custom-budget programs never alias preset ones.
  Scale.SynthIters = static_cast<size_t>(std::max(
      0LL,
      Args.getInt("iters", static_cast<long long>(Scale.SynthIters))));
  const TaskKind Task = taskOf(Args);
  const auto Label = static_cast<size_t>(Args.getInt("class", 0));
  const auto Seed =
      static_cast<uint64_t>(std::max(0LL, Args.getInt("seed", 1)));
  auto Victim = makeScaledVictim(Task, archOf(Args), Scale, Seed);
  const SynthesisRunOptions Opts = synthesisOptionsFromArgs(Args);

  std::vector<SynthesisStep> Trace;
  const std::string TraceJsonl = Args.get("synth-trace-out", "");
  Program P;
  {
    telemetry::ProfileScope Root("cli.synth");
    if (TraceJsonl.empty()) {
      // The store-backed path `eval` and `serve` use: a warm store
      // rehydrates instead of re-searching.
      P = synthesizeClassProgram(*Victim,
                                 victimStem(Task, archOf(Args), Scale, Seed),
                                 Task, Scale, Label, Seed, Opts);
    } else {
      // A trace records a live search, so this path always runs the MH
      // chains (same config and per-class seed as the store-backed path).
      const SynthesisConfig Config =
          classSynthesisConfig(Scale, Label, Seed, Opts);
      const Dataset Train = makeSynthesisSet(Task, Label, Scale, Seed);
      P = synthesizeProgram(*Victim, Train, Config, &Trace);
    }
  }
  std::cout << P.str();
  printProfileReport("");
  if (!TraceJsonl.empty()) {
    if (!exportSynthesisTraceJsonl(Trace, TraceJsonl)) {
      std::cerr << "error: cannot write " << TraceJsonl << "\n";
      return 1;
    }
    std::cout << "synthesis trace saved to " << TraceJsonl << "\n";
  }

  const std::string Out = Args.get("out", "");
  if (!Out.empty()) {
    if (!saveProgram(P, Out)) {
      std::cerr << "error: cannot write " << Out << "\n";
      return 1;
    }
    std::cout << "saved to " << Out << "\n";
  }
  return 0;
}

int cmdExplain(const ArgParse &Args) {
  const std::string Path = Args.get("program", "");
  if (Path.empty()) {
    std::cerr << "error: --program <file> is required\n";
    return 2;
  }
  std::ifstream In(Path);
  if (!In) {
    std::cerr << "error: cannot open " << Path << "\n";
    return 1;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();

  // Accept both the save-file format and the textual DSL.
  Program P;
  if (!loadProgram(P, Path)) {
    const ParseResult R = parseProgram(Buffer.str(), P);
    if (!R.Ok) {
      std::cerr << "parse error at " << R.Line << ":" << R.Column << ": "
                << R.Message << "\n";
      return 1;
    }
  }
  const auto Side = static_cast<size_t>(Args.getInt("side", 32));
  std::cout << explainProgram(P, Side);
  const Program Normalized = normalizeProgram(P, Side);
  if (!equivalentPrograms(P, allFalseProgram(), Side) &&
      equivalentPrograms(Normalized, allFalseProgram(), Side))
    std::cout << "note: normalizes to the fixed prioritization\n";
  return 0;
}

int cmdAttack(const ArgParse &Args) {
  const BenchScale Scale = BenchScale::preset(Args.get("scale", "small"));
  const TaskKind Task = taskOf(Args);
  const auto Label = static_cast<size_t>(Args.getInt("class", 0));
  const auto Budget = static_cast<uint64_t>(
      Args.getInt("budget", static_cast<long long>(Scale.EvalQueryCap)));
  auto Victim = makeScaledVictim(Task, archOf(Args), Scale);

  Program P = allFalseProgram();
  const std::string Path = Args.get("program", "");
  if (!Path.empty() && !loadProgram(P, Path)) {
    std::cerr << "error: cannot load program from " << Path << "\n";
    return 1;
  }

  Dataset Test = makeTestSet(Task, Scale).filterByClass(Label);
  const auto MaxImages = static_cast<size_t>(Args.getInt("images", 16));
  if (Test.size() > MaxImages) {
    Test.Images.resize(MaxImages);
    Test.Labels.resize(MaxImages);
  }

  QueryEngine Engine(*Victim, engineConfigFromArgs(Args));
  SketchAttack A(P, Path.empty() ? "Sketch+False" : "program");
  Table T({"image", "outcome", "#queries", "pixel", "perturbation"});
  {
    telemetry::ProfileScope Root("cli.attack");
    telemetry::progressBegin("attack", Test.size());
    for (size_t I = 0; I != Test.size(); ++I) {
      telemetry::TraceImageScope Scope(static_cast<int64_t>(I));
      const AttackResult R =
          A.attack(Engine, Test.Images[I], Label, Budget);
      telemetry::progressItem(!R.AlreadyMisclassified,
                              R.Success && !R.AlreadyMisclassified,
                              R.Queries);
      std::ostringstream Loc, Pert;
      if (R.Success && !R.AlreadyMisclassified) {
        Loc << "(" << R.Loc.Row << "," << R.Loc.Col << ")";
        Pert << "(" << R.Perturbation.R << "," << R.Perturbation.G << ","
             << R.Perturbation.B << ")";
      }
      T.addRow({std::to_string(I),
                R.AlreadyMisclassified ? "discarded"
                : R.Success            ? "success"
                                       : "failure",
                std::to_string(R.Queries), Loc.str(), Pert.str()});
    }
    telemetry::progressFinish();
  }
  T.print(std::cout);
  printProfileReport("");
  return 0;
}

int cmdEval(const ArgParse &Args) {
  const BenchScale Scale = BenchScale::preset(Args.get("scale", "small"));
  const TaskKind Task = taskOf(Args);
  const Arch A = archOf(Args);
  const auto Budget = static_cast<uint64_t>(
      Args.getInt("budget", static_cast<long long>(Scale.EvalQueryCap)));
  // --seed reseeds the victim, its test set, and program synthesis as one
  // coherent experiment (the default 1 matches every earlier run).
  const auto Seed =
      static_cast<uint64_t>(std::max(0LL, Args.getInt("seed", 1)));
  auto Victim = makeScaledVictim(Task, A, Scale, Seed);
  const Dataset Test = makeTestSet(Task, Scale, Seed);

  // The attack sweeps query through the engine (synthesis drives the raw
  // victim: it needs the concrete NNClassifier). The parallel sweep clones
  // the engine per worker, so each worker gets its own cache.
  QueryEngine Engine(*Victim, engineConfigFromArgs(Args));

  const std::string Kind = Args.get("attack", "oppsla");
  const size_t Threads = threadCountFromArgs(Args);
  telemetry::setRunInfo("attack", Kind);
  telemetry::setRunInfo("victim", Victim->name());
  std::vector<AttackRunLog> Logs;
  {
    // The root span closes here, before the metrics section renders:
    // the profiler counts a span only once it exits, so the report's
    // `cli.eval` total covers the whole sweep (≈ the run's wall time).
    telemetry::ProfileScope Root("cli.eval");
    if (Kind == "oppsla") {
      SynthesisRunOptions SynthOpts = synthesisOptionsFromArgs(Args);
      SynthOpts.Threads = Threads;
      const std::vector<Program> Programs = synthesizeClassPrograms(
          *Victim, victimStem(Task, A, Scale, Seed), Task, Scale, Seed,
          SynthOpts);
      Logs = runProgramsOverSet(Programs, Engine, Test, Budget, Threads);
    } else if (Kind == "sparse-rs") {
      SparseRS Attack;
      Logs = runAttackOverSet(Attack, Engine, Test, Budget, Threads);
    } else if (Kind == "suopa") {
      SuOPA Attack;
      Logs = runAttackOverSet(Attack, Engine, Test, Budget, Threads);
    } else if (Kind == "random") {
      RandomPairSearch Attack;
      Logs = runAttackOverSet(Attack, Engine, Test, Budget, Threads);
    } else {
      std::cerr << "error: unknown --attack '" << Kind << "'\n";
      return 2;
    }
  }

  const std::string RunsOut = Args.get("runs-out", "");
  if (!RunsOut.empty() && !exportRunLogsJsonl(Logs, RunsOut)) {
    std::cerr << "error: cannot write " << RunsOut << "\n";
    return 1;
  }

  const QuerySample S = toQuerySample(Logs);
  std::cout << "attack=" << Kind << " victim=" << Victim->name()
            << " budget=" << Budget << "\n"
            << "  success rate : "
            << Table::fmt(100.0 * S.successRate(), 1) << "%\n"
            << "  avg #queries : " << Table::fmt(S.avgQueries(), 1) << "\n"
            << "  med #queries : " << Table::fmt(S.medianQueries(), 1)
            << "\n";

  // Telemetry summary: queries-per-attack distribution, attack outcome
  // counters, and (with --metrics-out/--layer-timing) per-layer forward
  // times collected during this run.
  std::cout << "metrics:\n";
  const std::string EngineSummary = engineMetricsSummary();
  if (!EngineSummary.empty())
    std::cout << "  " << EngineSummary << "\n";
  std::istringstream Report(telemetry::metricsTextReport());
  std::string Line;
  while (std::getline(Report, Line))
    std::cout << "  " << Line << "\n";
  const std::string LayerReport = telemetry::layerTimingReport();
  if (!LayerReport.empty())
    std::cout << LayerReport;
  printProfileReport("  ");
  return 0;
}

/// `oppsla serve`: the attack-as-a-service job server. See DESIGN.md §13.
int cmdServe(const ArgParse &Args) {
  serve::JobRunnerConfig RunnerConfig;
  RunnerConfig.CheckpointDir = Args.get("checkpoint-dir", ".oppsla-serve");
  RunnerConfig.Workers =
      static_cast<size_t>(std::max(0LL, Args.getInt("workers", 1)));
  RunnerConfig.Threads = threadCountFromArgs(Args);
  RunnerConfig.CheckpointEvery =
      static_cast<size_t>(std::max(1LL, Args.getInt("checkpoint-every", 4)));
  RunnerConfig.Engine = engineConfigFromArgs(Args);
  RunnerConfig.Synth = synthesisOptionsFromArgs(Args);
  RunnerConfig.CrashAfterImages = static_cast<size_t>(
      std::max(0LL, Args.getInt("crash-after-images", 0)));

  std::string Error;
  if (!serve::ensureDir(RunnerConfig.CheckpointDir, Error)) {
    std::cerr << "error: " << Error << "\n";
    return 1;
  }

  // Job tracing is on by default (it is the observability layer the serve
  // endpoints expose); --no-job-trace turns it off for overhead A/Bs.
  serve::setJobTracingEnabled(!Args.getFlag("no-job-trace"));

  serve::JobQueue Queue(
      static_cast<size_t>(std::max(1LL, Args.getInt("capacity", 16))));
  serve::JobRunner Runner(Queue, RunnerConfig);
  if (Args.getFlag("resume"))
    std::cerr << "serve: resumed " << Runner.resume()
              << " pending job(s) from " << RunnerConfig.CheckpointDir
              << "\n";

  // Drain per-job trace timelines to <checkpoint-dir>/job-<id>.trace.json
  // at telemetry flush time, so SIGTERM and /quitquitquit both persist
  // them before the process dies (the flush-on-shutdown regression test
  // reads these files). The hook is removed before Queue goes out of
  // scope.
  const std::string TraceDir = RunnerConfig.CheckpointDir;
  const uint64_t FlushHook = telemetry::addTelemetryFlushHook(
      [&Queue, TraceDir] {
        for (const auto &J : Queue.all()) {
          if (!J->Trace)
            continue;
          std::string E;
          wire::writeFileAtomic(TraceDir + "/job-" +
                                     std::to_string(J->Id) + ".trace.json",
                                 J->Trace->chromeTraceJson(), E);
        }
      });
  telemetry::installTelemetryExitHandlers();

  serve::ServeServerConfig ServerConfig;
  ServerConfig.Port =
      static_cast<uint16_t>(Args.getInt("port", 0));
  serve::ServeServer Server(Queue, Runner, ServerConfig);
  if (!Server.start())
    return 1;
  std::cerr << "serve: listening on 127.0.0.1:" << Server.port() << "\n";
  const std::string PortFile = Args.get("port-file", "");
  if (!PortFile.empty()) {
    std::ofstream OS(PortFile);
    OS << Server.port() << "\n";
  }
  Runner.start();

  // Serve until GET /quitquitquit — or the --max-seconds safety cap, so a
  // test-launched server can never outlive its harness.
  Server.waitQuit(Args.getDouble("max-seconds", 0.0));
  Server.stop();
  Runner.stop(); // drains the current shard, checkpoints, requeues
  // Orderly shutdown drains trace buffers explicitly — the atexit path
  // would too, but doing it here keeps the guarantee independent of how
  // main() unwinds.
  telemetry::flushTelemetryNow();
  telemetry::removeTelemetryFlushHook(FlushHook);
  std::cerr << "serve: shut down\n";
  return 0;
}

/// Resolves the server port from --port or --port-file.
bool clientPort(const ArgParse &Args, uint16_t &Port, std::string &Error) {
  if (Args.has("port")) {
    Port = static_cast<uint16_t>(Args.getInt("port", 0));
    return true;
  }
  const std::string PortFile = Args.get("port-file", "");
  if (PortFile.empty()) {
    Error = "--port or --port-file is required";
    return false;
  }
  std::ifstream In(PortFile);
  long long V = 0;
  if (!(In >> V) || V <= 0 || V > 65535) {
    Error = "cannot read a port from " + PortFile;
    return false;
  }
  Port = static_cast<uint16_t>(V);
  return true;
}

/// Exit codes shared by the client verbs, so scripts can branch:
/// 0 ok, 1 job failed/cancelled, 2 usage, 3 queue full (429),
/// 4 HTTP-level rejection, 6 wait timeout, 7 server unreachable.
constexpr int RcJobFailed = 1;
constexpr int RcQueueFull = 3;
constexpr int RcRejected = 4;
constexpr int RcTimeout = 6;
constexpr int RcUnreachable = 7;

/// Polls GET /v1/jobs/<id> until the job leaves queued/running.
int clientWait(uint16_t Port, uint64_t Id, double TimeoutSeconds) {
  const auto Deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(TimeoutSeconds);
  while (std::chrono::steady_clock::now() < Deadline) {
    http::Response Resp;
    std::string Error;
    if (!http::request(Port, "GET", "/v1/jobs/" + std::to_string(Id), "",
                       Resp, Error)) {
      std::cerr << "error: " << Error << "\n";
      return RcUnreachable;
    }
    json::Value Doc;
    if (Resp.Status == 200 && json::parse(Resp.Body, Doc, Error)) {
      const std::string State = Doc.getString("state", "");
      if (State == "done") {
        std::cout << Resp.Body << "\n";
        return 0;
      }
      if (State == "failed" || State == "cancelled") {
        std::cout << Resp.Body << "\n";
        return RcJobFailed;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::cerr << "error: timed out waiting for job " << Id << "\n";
  return RcTimeout;
}

/// Downloads /v1/jobs/<id>/result into \p OutPath.
int clientResult(uint16_t Port, uint64_t Id, const std::string &OutPath) {
  http::Response Resp;
  std::string Error;
  if (!http::request(Port, "GET",
                     "/v1/jobs/" + std::to_string(Id) + "/result", "",
                     Resp, Error)) {
    std::cerr << "error: " << Error << "\n";
    return RcUnreachable;
  }
  if (Resp.Status != 200) {
    std::cerr << "error: " << Resp.Body << "\n";
    return RcRejected;
  }
  if (OutPath.empty() || OutPath == "-") {
    std::cout << Resp.Body;
    return 0;
  }
  if (!wire::writeFileAtomic(OutPath, Resp.Body, Error)) {
    std::cerr << "error: " << Error << "\n";
    return 1;
  }
  std::cout << "result (" << Resp.Body.size() << " bytes) saved to "
            << OutPath << "\n";
  return 0;
}

/// `oppsla client`: talk to a running `oppsla serve`.
int cmdClient(const ArgParse &Args) {
  if (Args.positional().empty()) {
    std::cerr << "usage: oppsla client "
                 "<submit|list|status|result|cancel|wait|trace|shutdown> "
                 "(--port N | --port-file f) [--id N] [--out f]\n"
                 "  submit: --spec '<json>' or --kind attack|eval|synth "
                 "[--attack sparse-rs|suopa|random]\n"
                 "          [--task cifar|imagenet] [--arch resnet|...] "
                 "[--scale smoke|small|paper]\n"
                 "          [--seed N] [--budget N] [--priority N] "
                 "[--begin N] [--count N] [--wait] [--out f]\n"
                 "          [--traceparent 00-..-..-01] [--no-trace]\n"
                 "  trace:  --id N [--out f] (Chrome Trace Event JSON;\n"
                 "          open in chrome://tracing or Perfetto)\n";
    return 2;
  }
  uint16_t Port = 0;
  std::string Error;
  if (!clientPort(Args, Port, Error)) {
    std::cerr << "error: " << Error << "\n";
    return 2;
  }
  const std::string Verb = Args.positional()[0];
  const double Timeout = Args.getDouble("timeout", 600.0);
  const auto Id = static_cast<uint64_t>(std::max(0LL, Args.getInt("id", 0)));

  if (Verb == "submit") {
    std::string Body = Args.get("spec", "");
    if (Body.empty()) {
      Body = "{\"kind\":\"" + Args.get("kind", "eval") + "\"";
      if (Args.has("attack"))
        Body += ",\"attack\":\"" + Args.get("attack", "") + "\"";
      Body += ",\"victim\":{\"task\":\"" + Args.get("task", "cifar") +
              "\",\"arch\":\"" + Args.get("arch", "resnet") +
              "\",\"scale\":\"" + Args.get("scale", "smoke") +
              "\"},\"seed\":" + std::to_string(Args.getInt("seed", 1)) +
              ",\"budget\":" + std::to_string(Args.getInt("budget", 0)) +
              ",\"priority\":" +
              std::to_string(Args.getInt("priority", 0)) +
              ",\"slice\":{\"begin\":" +
              std::to_string(Args.getInt("begin", 0)) +
              ",\"count\":" + std::to_string(Args.getInt("count", 0)) +
              "}}";
    }
    // Mint (or adopt via --traceparent) a trace context and send it as a
    // W3C traceparent header, so the server's job timeline carries an id
    // the submitter chose and can correlate across systems. --no-trace
    // leaves minting to the server.
    std::vector<std::pair<std::string, std::string>> Headers;
    if (!Args.getFlag("no-trace")) {
      telemetry::TraceContext Ctx;
      const std::string Given = Args.get("traceparent", "");
      if (!Given.empty()) {
        if (!telemetry::parseTraceparent(Given, Ctx)) {
          std::cerr << "error: malformed --traceparent '" << Given << "'\n";
          return 2;
        }
      } else {
        Ctx = telemetry::mintTraceContext();
      }
      Headers.emplace_back("traceparent", Ctx.traceparent());
      std::cerr << "trace-id: " << Ctx.TraceId << "\n";
    }
    http::Response Resp;
    if (!http::request(Port, "POST", "/v1/jobs", Body, Resp, Error, 30.0,
                       Headers)) {
      std::cerr << "error: " << Error << "\n";
      return RcUnreachable;
    }
    std::cout << Resp.Body << "\n";
    if (Resp.Status == 429)
      return RcQueueFull;
    if (Resp.Status != 202)
      return RcRejected;
    if (!Args.getFlag("wait"))
      return 0;
    json::Value Doc;
    if (!json::parse(Resp.Body, Doc, Error))
      return RcRejected;
    const auto NewId = static_cast<uint64_t>(Doc.getNumber("id", 0.0));
    const int RC = clientWait(Port, NewId, Timeout);
    if (RC != 0)
      return RC;
    const std::string Out = Args.get("out", "");
    return Out.empty() ? 0 : clientResult(Port, NewId, Out);
  }
  if (Verb == "list") {
    http::Response Resp;
    if (!http::request(Port, "GET", "/v1/jobs", "", Resp, Error)) {
      std::cerr << "error: " << Error << "\n";
      return RcUnreachable;
    }
    std::cout << Resp.Body << "\n";
    return Resp.Status == 200 ? 0 : RcRejected;
  }
  if (Verb == "status") {
    http::Response Resp;
    if (!http::request(Port, "GET", "/v1/jobs/" + std::to_string(Id), "",
                       Resp, Error)) {
      std::cerr << "error: " << Error << "\n";
      return RcUnreachable;
    }
    std::cout << Resp.Body << "\n";
    return Resp.Status == 200 ? 0 : RcRejected;
  }
  if (Verb == "result")
    return clientResult(Port, Id, Args.get("out", ""));
  if (Verb == "cancel") {
    http::Response Resp;
    if (!http::request(Port, "DELETE", "/v1/jobs/" + std::to_string(Id),
                       "", Resp, Error)) {
      std::cerr << "error: " << Error << "\n";
      return RcUnreachable;
    }
    std::cout << Resp.Body << "\n";
    return Resp.Status == 200 ? 0 : RcRejected;
  }
  if (Verb == "wait")
    return clientWait(Port, Id, Timeout);
  if (Verb == "trace") {
    http::Response Resp;
    if (!http::request(Port, "GET",
                       "/v1/jobs/" + std::to_string(Id) + "/trace", "",
                       Resp, Error)) {
      std::cerr << "error: " << Error << "\n";
      return RcUnreachable;
    }
    if (Resp.Status != 200) {
      std::cerr << "error: " << Resp.Body << "\n";
      return RcRejected;
    }
    const std::string Out = Args.get("out", "");
    if (Out.empty() || Out == "-") {
      std::cout << Resp.Body << "\n";
      return 0;
    }
    if (!wire::writeFileAtomic(Out, Resp.Body, Error)) {
      std::cerr << "error: " << Error << "\n";
      return 1;
    }
    std::cout << "trace (" << Resp.Body.size() << " bytes) saved to " << Out
              << "\n";
    return 0;
  }
  if (Verb == "shutdown") {
    http::Response Resp;
    if (!http::request(Port, "GET", "/quitquitquit", "", Resp, Error)) {
      std::cerr << "error: " << Error << "\n";
      return RcUnreachable;
    }
    return Resp.Status == 200 ? 0 : RcRejected;
  }
  std::cerr << "error: unknown client verb '" << Verb << "'\n";
  return 2;
}

/// `oppsla wire`: inspect a wire artifact / convert its runs to the
/// run-log JSONL shape of `eval --runs-out`.
int cmdWire(const ArgParse &Args) {
  const std::string In = Args.get("in", "");
  if (In.empty()) {
    std::cerr << "usage: oppsla wire --in artifact [--runs-out runs.jsonl]"
                 " [--dump-programs]\n";
    return 2;
  }
  wire::WireContents C;
  std::string Error;
  if (!wire::readWireFile(In, C, Error)) {
    std::cerr << "error: " << Error << "\n";
    return 1;
  }
  std::cout << "wire artifact: " << C.Runs.size() << " runs, "
            << C.Programs.size() << " programs, " << C.Images.size()
            << " images\n";
  if (!C.JobSpecJson.empty())
    std::cout << "spec: " << C.JobSpecJson << "\n";
  if (Args.getFlag("dump-programs"))
    for (const std::string &P : C.Programs)
      std::cout << P << "\n";
  const std::string RunsOut = Args.get("runs-out", "");
  if (!RunsOut.empty()) {
    std::ofstream OS(RunsOut, std::ios::binary | std::ios::trunc);
    OS << wire::runsToJsonl(C.Runs);
    if (!OS.good()) {
      std::cerr << "error: cannot write " << RunsOut << "\n";
      return 1;
    }
    std::cout << "runs saved to " << RunsOut << "\n";
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage();
  const std::string Cmd = argv[1];
  ArgParse Args(argc - 1, argv + 1);

  // Telemetry flags are shared by every subcommand, as is the
  // --naive-kernels escape hatch back to the scalar reference kernels.
  kernels::configureFromArgs(Args);
  if (!telemetry::configureFromArgs(Args))
    return 1;
  telemetry::setProgressEnabled(Args.getFlag("progress"));
  telemetry::setRunInfo("command", Cmd);

  // Ambient run-level trace context: adopt --traceparent or mint one, so
  // log-ring records and JSONL trace events carry a trace id on *offline*
  // runs too — the stats server's /logz is correlatable without `oppsla
  // serve` in the loop. Served jobs still open their own per-job scopes on
  // top of this one.
  const std::string GivenTraceparent = Args.get("traceparent", "");
  telemetry::TraceContext RunCtx;
  if (!GivenTraceparent.empty()) {
    if (!telemetry::parseTraceparent(GivenTraceparent, RunCtx)) {
      std::cerr << "error: malformed --traceparent '" << GivenTraceparent
                << "'\n";
      return 2;
    }
  } else {
    RunCtx = telemetry::mintTraceContext();
  }
  telemetry::TraceContextScope RunTraceScope(RunCtx.TraceId);
  telemetry::setRunInfo("trace_id", RunCtx.TraceId);
  if (Args.has("stats-port") || !GivenTraceparent.empty())
    std::cerr << "trace-id: " << RunCtx.TraceId << "\n";

  // Live introspection: --stats-port 0 picks a free port; the bound port
  // can be written to a file so scrapers do not have to guess.
  telemetry::StatsServer Server;
  if (Args.has("stats-port")) {
    const auto Port =
        static_cast<uint16_t>(Args.getInt("stats-port", 0));
    if (!Server.start(Port))
      return 1;
    std::cerr << "stats server listening on 127.0.0.1:" << Server.port()
              << "\n";
    const std::string PortFile = Args.get("stats-port-file", "");
    if (!PortFile.empty()) {
      std::ofstream OS(PortFile);
      OS << Server.port() << "\n";
    }
  }

  int RC;
  if (Cmd == "train")
    RC = cmdTrain(Args);
  else if (Cmd == "synthesize")
    RC = cmdSynthesize(Args);
  else if (Cmd == "explain")
    RC = cmdExplain(Args);
  else if (Cmd == "attack")
    RC = cmdAttack(Args);
  else if (Cmd == "eval")
    RC = cmdEval(Args);
  else if (Cmd == "serve")
    RC = cmdServe(Args);
  else if (Cmd == "client")
    RC = cmdClient(Args);
  else if (Cmd == "wire")
    RC = cmdWire(Args);
  else
    return usage();

  // --stats-linger keeps the server up briefly after the run so a scraper
  // launched in parallel can still read the final state; GET /quitquitquit
  // releases the wait early.
  if (Server.running() && Args.getFlag("stats-linger"))
    Server.waitQuit(30.0);
  Server.stop();

  if (!telemetry::finalizeTelemetry() && RC == 0)
    RC = 1;
  return RC;
}
