//===- tools/oppsla_tracecheck.cpp - Chrome Trace Event JSON validator --------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Validates a Chrome Trace Event JSON file (the payload of
// `GET /v1/jobs/<id>/trace` / `oppsla client trace`):
//
//   oppsla_tracecheck <trace.json> [--expect-trace-id HEX32]
//                     [--min-coverage-pct P]
//
// Checks, in order:
//   - the document is `{"traceEvents":[...], ...}`
//   - every event is an object with string "ph" and numeric "pid"/"tid"
//     (metadata "M" events are exempt from ts checks)
//   - "X" events carry numeric ts >= 0 and dur >= 0; per-(pid,tid) start
//     timestamps are monotonically non-decreasing (the exporter sorts)
//   - "i" instants carry numeric ts and scope "s"
//   - with --expect-trace-id, at least one event's args.trace_id matches
//   - with --min-coverage-pct, the union of "X" span extents must cover at
//     least P percent of [0, max span end] — the acceptance bar for "the
//     timeline explains the job's wall clock".
//
// Exit codes: 0 ok, 1 validation failure, 2 usage/IO error. Failures print
// one line per problem so ctest logs pinpoint the offending event.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <algorithm>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

using namespace oppsla;

namespace {

struct Extent {
  double Begin = 0.0, End = 0.0;
};

int fail(size_t Index, const std::string &What) {
  std::cerr << "tracecheck: event[" << Index << "]: " << What << "\n";
  return 1;
}

} // namespace

int main(int argc, char **argv) {
  std::string Path, ExpectTraceId;
  double MinCoveragePct = -1.0;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--expect-trace-id") == 0 && I + 1 < argc)
      ExpectTraceId = argv[++I];
    else if (std::strcmp(argv[I], "--min-coverage-pct") == 0 && I + 1 < argc)
      MinCoveragePct = std::stod(argv[++I]);
    else if (Path.empty())
      Path = argv[I];
    else {
      std::cerr << "usage: oppsla_tracecheck <trace.json> "
                   "[--expect-trace-id HEX32] [--min-coverage-pct P]\n";
      return 2;
    }
  }
  if (Path.empty()) {
    std::cerr << "usage: oppsla_tracecheck <trace.json> "
                 "[--expect-trace-id HEX32] [--min-coverage-pct P]\n";
    return 2;
  }

  json::Value Doc;
  std::string Error;
  if (!json::parseFile(Path, Doc, Error)) {
    std::cerr << "tracecheck: " << Path << ": " << Error << "\n";
    return 2;
  }
  const json::Value *Events = Doc.find("traceEvents");
  if (!Events || !Events->isArray()) {
    std::cerr << "tracecheck: missing traceEvents array\n";
    return 1;
  }

  int RC = 0;
  bool SawExpectedId = ExpectTraceId.empty();
  // Last start ts per (pid,tid) lane, for the monotonicity check.
  std::map<std::pair<double, double>, double> LastTs;
  std::vector<Extent> Spans;
  size_t NumComplete = 0;

  const auto &Arr = Events->array();
  for (size_t I = 0; I != Arr.size(); ++I) {
    const json::Value &E = Arr[I];
    if (!E.isObject()) {
      RC |= fail(I, "not an object");
      continue;
    }
    const std::string Ph = E.getString("ph", "");
    if (Ph.empty()) {
      RC |= fail(I, "missing ph");
      continue;
    }
    const json::Value *Pid = E.find("pid"), *Tid = E.find("tid");
    if (!Pid || !Pid->isNumber())
      RC |= fail(I, "missing numeric pid");
    if (!Tid || !Tid->isNumber())
      RC |= fail(I, "missing numeric tid");
    if (const json::Value *A = E.find("args"))
      if (A->getString("trace_id", "") == ExpectTraceId)
        SawExpectedId = true;
    if (Ph == "M")
      continue; // metadata events carry no timestamps

    const json::Value *Ts = E.find("ts");
    if (!Ts || !Ts->isNumber()) {
      RC |= fail(I, "missing numeric ts");
      continue;
    }
    if (Ts->number() < 0.0)
      RC |= fail(I, "negative ts");
    if (Pid && Pid->isNumber() && Tid && Tid->isNumber()) {
      const auto Lane = std::make_pair(Pid->number(), Tid->number());
      const auto It = LastTs.find(Lane);
      if (It != LastTs.end() && Ts->number() < It->second)
        RC |= fail(I, "ts not monotonically non-decreasing within lane");
      LastTs[Lane] = std::max(It == LastTs.end() ? Ts->number() : It->second,
                              Ts->number());
    }

    if (Ph == "X") {
      ++NumComplete;
      const json::Value *Dur = E.find("dur");
      if (!Dur || !Dur->isNumber() || Dur->number() < 0.0) {
        RC |= fail(I, "X event without non-negative numeric dur");
        continue;
      }
      Spans.push_back({Ts->number(), Ts->number() + Dur->number()});
    } else if (Ph == "i") {
      if (E.getString("s", "").empty())
        RC |= fail(I, "instant without scope \"s\"");
    } else {
      RC |= fail(I, "unexpected ph \"" + Ph + "\"");
    }
  }

  if (!SawExpectedId) {
    std::cerr << "tracecheck: no event carries args.trace_id="
              << ExpectTraceId << "\n";
    RC = 1;
  }
  if (NumComplete == 0) {
    std::cerr << "tracecheck: no complete (\"X\") spans\n";
    RC = 1;
  }

  if (MinCoveragePct >= 0.0 && !Spans.empty()) {
    // Union length of the span extents over [0, latest end]: phases may
    // nest (shard inside setup would be a bug, but checkpoint overlaps
    // nothing), so merge before measuring.
    std::sort(Spans.begin(), Spans.end(),
              [](const Extent &A, const Extent &B) { return A.Begin < B.Begin; });
    double Covered = 0.0, CurBegin = Spans[0].Begin, CurEnd = Spans[0].End;
    double Latest = 0.0;
    for (const Extent &S : Spans) {
      Latest = std::max(Latest, S.End);
      if (S.Begin > CurEnd) {
        Covered += CurEnd - CurBegin;
        CurBegin = S.Begin;
        CurEnd = S.End;
      } else {
        CurEnd = std::max(CurEnd, S.End);
      }
    }
    Covered += CurEnd - CurBegin;
    const double Pct = Latest > 0.0 ? 100.0 * Covered / Latest : 100.0;
    if (Pct + 1e-9 < MinCoveragePct) {
      std::cerr << "tracecheck: span coverage " << Pct << "% < required "
                << MinCoveragePct << "%\n";
      RC = 1;
    } else {
      std::cout << "coverage: " << Pct << "%\n";
    }
  }

  if (RC == 0)
    std::cout << "ok: " << Arr.size() << " events, " << NumComplete
              << " spans\n";
  return RC;
}
