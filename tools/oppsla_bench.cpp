//===- tools/oppsla_bench.cpp - Bench ledger & regression gate ---------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The perf-regression sentinel's driver. Four subcommands over the
// append-only JSONL bench ledger and the checked-in baselines:
//
//   oppsla_bench ingest --ledger runs.jsonl [--git-describe S]
//                [--timestamp S] [--metrics-json m.json] BENCH_x.json...
//       records each artifact (plus, optionally, the counters/profile of a
//       --metrics-out snapshot) as one ledger row stamped with the host
//       fingerprint.
//
//   oppsla_bench list --ledger runs.jsonl [--bench B] [--metric K]
//       renders the run trajectory, newest last.
//
//   oppsla_bench diff --ledger runs.jsonl --bench B [--scale S]
//       per-metric delta table between the two newest rows of a bench.
//
//   oppsla_bench gate --baselines DIR [--manifest M] BENCH_x.json...
//       the noise-aware regression gate: artifacts of the same bench are
//       median-reduced across repeats, then compared against
//       DIR/BENCH_<bench>.json under the manifest's per-metric rules
//       (exact | ratio with direction+rel_tol | info). Exits 1 with a
//       delta report naming every offending metric; 2 on structural
//       problems (unreadable artifact, missing baseline, scale mismatch).
//
//===----------------------------------------------------------------------===//

#include "support/ArgParse.h"
#include "support/Json.h"
#include "support/Ledger.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

using namespace oppsla;

namespace {

int usage() {
  std::cerr
      << "usage: oppsla_bench <ingest|list|diff|gate> [options] [files]\n"
         "  ingest --ledger L.jsonl [--git-describe S] [--timestamp S]\n"
         "         [--metrics-json m.json] BENCH_<name>.json...\n"
         "  list   --ledger L.jsonl [--bench B] [--metric K]\n"
         "  diff   --ledger L.jsonl --bench B [--scale S]\n"
         "  gate   --baselines DIR [--manifest M.json] BENCH_<name>.json...\n";
  return 2;
}

/// Loads one BENCH_<name>.json artifact into a ledger entry (host
/// fingerprint stamped, provenance left empty).
bool loadArtifact(const std::string &Path, LedgerEntry &Out) {
  json::Value Doc;
  std::string Error;
  if (!json::parseFile(Path, Doc, Error) || !Out.fromBenchArtifact(Doc, Error)) {
    std::cerr << "error: " << Path << ": " << Error << "\n";
    return false;
  }
  return true;
}

std::string fmtMetric(double V) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

// --- ingest -----------------------------------------------------------------

int cmdIngest(const ArgParse &Args,
              const std::vector<std::string> &Artifacts) {
  const std::string LedgerPath = Args.get("ledger", "");
  if (LedgerPath.empty() || Artifacts.empty()) {
    std::cerr << "error: ingest needs --ledger and at least one artifact\n";
    return 2;
  }

  // An optional --metrics-out snapshot folds into every ingested row
  // (counters as-is, histogram quantiles, per-span profile self times).
  std::map<std::string, double> Folded;
  const std::string MetricsJson = Args.get("metrics-json", "");
  if (!MetricsJson.empty()) {
    json::Value Snapshot;
    std::string Error;
    if (!json::parseFile(MetricsJson, Snapshot, Error)) {
      std::cerr << "error: " << Error << "\n";
      return 2;
    }
    foldMetricsSnapshot(Snapshot, Folded);
  }

  size_t Rows = 0;
  for (const std::string &Path : Artifacts) {
    LedgerEntry E;
    if (!loadArtifact(Path, E))
      return 2;
    E.GitDescribe = Args.get("git-describe", "");
    E.Timestamp = Args.get("timestamp", "");
    for (const auto &[Key, Value] : Folded)
      E.Metrics.emplace(Key, Value); // artifact's own metrics win
    std::string Error;
    if (!ledger::append(LedgerPath, E, Error)) {
      std::cerr << "error: " << Error << "\n";
      return 2;
    }
    ++Rows;
  }
  std::cout << "ingested " << Rows << " row" << (Rows == 1 ? "" : "s")
            << " into " << LedgerPath << "\n";
  return 0;
}

// --- list -------------------------------------------------------------------

int cmdList(const ArgParse &Args) {
  const std::string LedgerPath = Args.get("ledger", "");
  if (LedgerPath.empty()) {
    std::cerr << "error: list needs --ledger\n";
    return 2;
  }
  std::vector<LedgerEntry> Entries;
  std::string Error;
  if (!ledger::readAll(LedgerPath, Entries, Error)) {
    std::cerr << "error: " << Error << "\n";
    return 2;
  }
  const std::string BenchFilter = Args.get("bench", "");
  const std::string Metric = Args.get("metric", "");

  std::vector<std::string> Header = {"#",     "bench",     "scale",
                                     "rep",   "git",       "timestamp",
                                     "cores", "metrics"};
  if (!Metric.empty())
    Header.push_back(Metric);
  Table T(std::move(Header));
  size_t Shown = 0;
  for (size_t I = 0; I != Entries.size(); ++I) {
    const LedgerEntry &E = Entries[I];
    if (!BenchFilter.empty() && E.Bench != BenchFilter)
      continue;
    ++Shown;
    std::vector<std::string> Row = {
        std::to_string(I),
        E.Bench,
        E.Scale,
        std::to_string(E.Repeat),
        E.GitDescribe.empty() ? "-" : E.GitDescribe,
        E.Timestamp.empty() ? "-" : E.Timestamp,
        std::to_string(E.Host.Cores),
        std::to_string(E.Metrics.size())};
    if (!Metric.empty()) {
      const auto It = E.Metrics.find(Metric);
      Row.push_back(It == E.Metrics.end() ? "-" : fmtMetric(It->second));
    }
    T.addRow(std::move(Row));
  }
  std::cout << "ledger " << LedgerPath << ": " << Entries.size() << " row"
            << (Entries.size() == 1 ? "" : "s");
  if (!BenchFilter.empty())
    std::cout << ", " << Shown << " matching bench '" << BenchFilter << "'";
  std::cout << "\n\n";
  T.print(std::cout);
  return 0;
}

// --- diff -------------------------------------------------------------------

int cmdDiff(const ArgParse &Args) {
  const std::string LedgerPath = Args.get("ledger", "");
  const std::string Bench = Args.get("bench", "");
  if (LedgerPath.empty() || Bench.empty()) {
    std::cerr << "error: diff needs --ledger and --bench\n";
    return 2;
  }
  std::vector<LedgerEntry> Entries;
  std::string Error;
  if (!ledger::readAll(LedgerPath, Entries, Error)) {
    std::cerr << "error: " << Error << "\n";
    return 2;
  }
  const std::string Scale = Args.get("scale", "");
  std::vector<const LedgerEntry *> Matching;
  for (const LedgerEntry &E : Entries)
    if (E.Bench == Bench && (Scale.empty() || E.Scale == Scale))
      Matching.push_back(&E);
  if (Matching.size() < 2) {
    std::cerr << "error: need at least two ledger rows for bench '" << Bench
              << "'" << (Scale.empty() ? "" : " at scale '" + Scale + "'")
              << ", have " << Matching.size() << "\n";
    return 2;
  }
  const LedgerEntry &Old = *Matching[Matching.size() - 2];
  const LedgerEntry &New = *Matching.back();
  std::cout << "diff of bench '" << Bench << "': "
            << (Old.GitDescribe.empty() ? "(old)" : Old.GitDescribe) << " -> "
            << (New.GitDescribe.empty() ? "(new)" : New.GitDescribe) << "\n\n";

  Table T({"metric", "old", "new", "delta", "delta %"});
  std::vector<std::string> Keys;
  for (const auto &[Key, _] : Old.Metrics)
    Keys.push_back(Key);
  for (const auto &[Key, _] : New.Metrics)
    if (!Old.Metrics.count(Key))
      Keys.push_back(Key);
  std::sort(Keys.begin(), Keys.end());
  for (const std::string &Key : Keys) {
    const auto OldIt = Old.Metrics.find(Key);
    const auto NewIt = New.Metrics.find(Key);
    if (OldIt == Old.Metrics.end()) {
      T.addRow({Key, "-", fmtMetric(NewIt->second), "(new)", "-"});
      continue;
    }
    if (NewIt == New.Metrics.end()) {
      T.addRow({Key, fmtMetric(OldIt->second), "-", "(gone)", "-"});
      continue;
    }
    const double Delta = NewIt->second - OldIt->second;
    const std::string Pct =
        OldIt->second != 0.0
            ? Table::fmt(100.0 * Delta / OldIt->second, 2) + "%"
            : "-";
    T.addRow({Key, fmtMetric(OldIt->second), fmtMetric(NewIt->second),
              fmtMetric(Delta), Pct});
  }
  T.print(std::cout);
  return 0;
}

// --- gate -------------------------------------------------------------------

/// One manifest rule. Kind semantics:
///   exact  current must equal the baseline bit-for-bit (runs are pure
///          functions of (seed, image), so correctness metrics like
///          avgQueries have no legitimate noise);
///   ratio  relative comparison with a direction: "higher" means bigger is
///          better (throughput) and a drop below (1 - rel_tol) x baseline
///          fails; "lower" means smaller is better (latency, queries) and
///          a rise above (1 + rel_tol) x baseline fails;
///   max    current must stay at or below an absolute cap (the baseline
///          value is reported but does not set the bar) — for bounded
///          overheads like trace_overhead_pct;
///   info   tracked in the report, never gates (wall-clock noise).
struct GateRule {
  enum class Kind { Exact, Ratio, Max, Info } K = Kind::Info;
  bool HigherIsBetter = true;
  double RelTol = 0.1;
  double MaxValue = 0.0;
};

struct GateManifest {
  GateRule Default;
  std::map<std::string, GateRule> BenchDefault;
  std::map<std::string, std::map<std::string, GateRule>> PerMetric;

  const GateRule &ruleFor(const std::string &Bench,
                          const std::string &Metric) const {
    if (const auto B = PerMetric.find(Bench); B != PerMetric.end())
      if (const auto M = B->second.find(Metric); M != B->second.end())
        return M->second;
    if (const auto B = BenchDefault.find(Bench); B != BenchDefault.end())
      return B->second;
    return Default;
  }
};

bool parseRule(const json::Value &Doc, GateRule &Out, std::string &Error) {
  const std::string Kind = Doc.getString("kind");
  if (Kind == "exact") {
    Out.K = GateRule::Kind::Exact;
  } else if (Kind == "info") {
    Out.K = GateRule::Kind::Info;
  } else if (Kind == "ratio") {
    Out.K = GateRule::Kind::Ratio;
    const std::string Dir = Doc.getString("direction");
    if (Dir != "higher" && Dir != "lower") {
      Error = "ratio rule needs direction 'higher' or 'lower'";
      return false;
    }
    Out.HigherIsBetter = Dir == "higher";
    Out.RelTol = Doc.getNumber("rel_tol", 0.1);
    if (!(Out.RelTol >= 0.0)) {
      Error = "ratio rule rel_tol must be >= 0";
      return false;
    }
  } else if (Kind == "max") {
    Out.K = GateRule::Kind::Max;
    const json::Value *Cap = Doc.find("max");
    if (!Cap || !Cap->isNumber()) {
      Error = "max rule needs a numeric 'max' cap";
      return false;
    }
    Out.MaxValue = Cap->number();
  } else {
    Error = "unknown rule kind '" + Kind + "'";
    return false;
  }
  return true;
}

bool parseManifest(const std::string &Path, GateManifest &Out,
                   std::string &Error) {
  json::Value Doc;
  if (!json::parseFile(Path, Doc, Error))
    return false;
  if (const json::Value *D = Doc.find("default"))
    if (!parseRule(*D, Out.Default, Error))
      return false;
  const json::Value *Benches = Doc.find("benches");
  if (!Benches)
    return true;
  if (!Benches->isObject()) {
    Error = Path + ": 'benches' must be an object";
    return false;
  }
  for (const auto &[Bench, Spec] : Benches->members()) {
    if (const json::Value *D = Spec.find("default")) {
      GateRule R;
      if (!parseRule(*D, R, Error))
        return false;
      Out.BenchDefault[Bench] = R;
    }
    if (const json::Value *Metrics = Spec.find("metrics")) {
      if (!Metrics->isObject()) {
        Error = Path + ": metrics of '" + Bench + "' must be an object";
        return false;
      }
      for (const auto &[Metric, RuleDoc] : Metrics->members()) {
        GateRule R;
        if (!parseRule(RuleDoc, R, Error)) {
          Error += " (bench '" + Bench + "', metric '" + Metric + "')";
          return false;
        }
        Out.PerMetric[Bench][Metric] = R;
      }
    }
  }
  return true;
}

const char *ruleLabel(const GateRule &R) {
  switch (R.K) {
  case GateRule::Kind::Exact:
    return "exact";
  case GateRule::Kind::Info:
    return "info";
  case GateRule::Kind::Ratio:
    return R.HigherIsBetter ? "higher" : "lower";
  case GateRule::Kind::Max:
    return "max";
  }
  return "?";
}

int cmdGate(const ArgParse &Args,
            const std::vector<std::string> &Artifacts) {
  const std::string BaselineDir = Args.get("baselines", "");
  if (BaselineDir.empty() || Artifacts.empty()) {
    std::cerr << "error: gate needs --baselines and at least one artifact\n";
    return 2;
  }
  GateManifest Manifest;
  std::string Error;
  const std::string ManifestPath =
      Args.get("manifest", BaselineDir + "/gate_manifest.json");
  if (!parseManifest(ManifestPath, Manifest, Error)) {
    std::cerr << "error: " << Error << "\n";
    return 2;
  }

  // Group artifacts by bench: N files of the same bench are N repeats and
  // median-reduce per metric, so one noisy run cannot fail (or pass) the
  // throughput gate by itself.
  std::map<std::string, std::vector<LedgerEntry>> Groups;
  for (const std::string &Path : Artifacts) {
    LedgerEntry E;
    if (!loadArtifact(Path, E))
      return 2;
    Groups[E.Bench].push_back(std::move(E));
  }

  std::vector<std::string> Failures;
  for (const auto &[Bench, Repeats] : Groups) {
    const std::string BaselinePath = BaselineDir + "/BENCH_" + Bench + ".json";
    LedgerEntry Baseline;
    if (!loadArtifact(BaselinePath, Baseline)) {
      std::cerr << "error: no baseline for bench '" << Bench << "' at "
                << BaselinePath << "\n";
      return 2;
    }
    for (const LedgerEntry &R : Repeats)
      if (R.Scale != Baseline.Scale) {
        std::cerr << "error: bench '" << Bench << "' ran at scale '"
                  << R.Scale << "' but the baseline is scale '"
                  << Baseline.Scale << "'\n";
        return 2;
      }

    std::map<std::string, double> Current;
    {
      std::map<std::string, std::vector<double>> Samples;
      for (const LedgerEntry &R : Repeats)
        for (const auto &[Key, Value] : R.Metrics)
          Samples[Key].push_back(Value);
      for (auto &[Key, Values] : Samples)
        Current[Key] = median(std::move(Values));
    }

    std::cout << "== gate: " << Bench << " (scale " << Baseline.Scale << ", "
              << Repeats.size() << " repeat"
              << (Repeats.size() == 1 ? "" : "s") << " vs " << BaselinePath
              << ") ==\n";
    Table T({"metric", "baseline", "current", "delta %", "rule", "verdict"});
    for (const auto &[Metric, Base] : Baseline.Metrics) {
      const GateRule &Rule = Manifest.ruleFor(Bench, Metric);
      const auto CurIt = Current.find(Metric);
      std::string Verdict = "ok";
      bool Failed = false;
      std::string CurText = "-", PctText = "-";
      if (CurIt == Current.end()) {
        Failed = Rule.K != GateRule::Kind::Info;
        Verdict = Failed ? "FAIL (missing)" : "missing";
      } else {
        const double Cur = CurIt->second;
        CurText = fmtMetric(Cur);
        if (Base != 0.0)
          PctText = Table::fmt(100.0 * (Cur - Base) / Base, 2) + "%";
        switch (Rule.K) {
        case GateRule::Kind::Exact:
          if (Cur != Base) {
            Failed = true;
            Verdict = "FAIL (drift)";
          }
          break;
        case GateRule::Kind::Ratio: {
          const double Floor = Base * (1.0 - Rule.RelTol);
          const double Ceil = Base * (1.0 + Rule.RelTol);
          if (Rule.HigherIsBetter ? Cur < Floor : Cur > Ceil) {
            Failed = true;
            char Buf[64];
            std::snprintf(Buf, sizeof(Buf), "FAIL (>%.0f%% %s)",
                          100.0 * Rule.RelTol,
                          Rule.HigherIsBetter ? "slower" : "higher");
            Verdict = Buf;
          }
          break;
        }
        case GateRule::Kind::Max:
          if (Cur > Rule.MaxValue) {
            Failed = true;
            char Buf[64];
            std::snprintf(Buf, sizeof(Buf), "FAIL (> cap %g)",
                          Rule.MaxValue);
            Verdict = Buf;
          }
          break;
        case GateRule::Kind::Info:
          Verdict = "info";
          break;
        }
      }
      if (Failed)
        Failures.push_back(Bench + "." + Metric);
      T.addRow({Metric, fmtMetric(Base), CurText, PctText, ruleLabel(Rule),
                Verdict});
    }
    // Metrics the baseline has never seen are reported, never gated.
    for (const auto &[Metric, Cur] : Current)
      if (!Baseline.Metrics.count(Metric))
        T.addRow({Metric, "-", fmtMetric(Cur), "-", "-", "new"});
    T.print(std::cout);
    std::cout << "\n";
  }

  if (!Failures.empty()) {
    std::cout << "gate: FAIL —";
    for (const std::string &F : Failures)
      std::cout << " " << F;
    std::cout << "\n";
    return 1;
  }
  std::cout << "gate: PASS (" << Groups.size() << " bench"
            << (Groups.size() == 1 ? "" : "es") << ")\n";
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  const ArgParse Args(argc, argv);
  if (Args.positional().empty())
    return usage();
  const std::string Cmd = Args.positional().front();
  const std::vector<std::string> Files(Args.positional().begin() + 1,
                                       Args.positional().end());
  if (Cmd == "ingest")
    return cmdIngest(Args, Files);
  if (Cmd == "list")
    return cmdList(Args);
  if (Cmd == "diff")
    return cmdDiff(Args);
  if (Cmd == "gate")
    return cmdGate(Args, Files);
  std::cerr << "error: unknown subcommand '" << Cmd << "'\n";
  return usage();
}
