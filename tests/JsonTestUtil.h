//===- tests/JsonTestUtil.h - Minimal JSON validation for tests -*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny recursive-descent JSON parser used by the tests to validate that
/// telemetry/export output (JSONL traces, metrics snapshots) really is
/// well-formed JSON, and to pull top-level fields out of one-line event
/// objects. Deliberately minimal — validation plus flat field extraction,
/// not a DOM.
///
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_TESTS_JSONTESTUTIL_H
#define OPPSLA_TESTS_JSONTESTUTIL_H

#include <cctype>
#include <map>
#include <string>
#include <string_view>

namespace oppsla::test {

/// Validates a complete JSON value; optionally captures the top-level
/// object's fields (string values decoded, everything else as raw text).
class JsonParser {
public:
  explicit JsonParser(std::string_view S) : S(S) {}

  /// True iff the whole input is exactly one valid JSON value.
  bool valid() {
    Pos = 0;
    skipWs();
    if (!value(nullptr))
      return false;
    skipWs();
    return Pos == S.size();
  }

  /// Parses the input as a JSON object and fills \p Fields with its
  /// top-level key/value pairs. String values are unescaped; numbers,
  /// booleans, null, and nested containers keep their raw JSON text.
  bool topLevelFields(std::map<std::string, std::string> &Fields) {
    Pos = 0;
    skipWs();
    if (!object(&Fields))
      return false;
    skipWs();
    return Pos == S.size();
  }

private:
  void skipWs() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view Word) {
    if (S.substr(Pos, Word.size()) != Word)
      return false;
    Pos += Word.size();
    return true;
  }

  bool string(std::string *Out) {
    if (!consume('"'))
      return false;
    while (Pos < S.size()) {
      const char C = S[Pos++];
      if (C == '"')
        return true;
      if (static_cast<unsigned char>(C) < 0x20)
        return false; // control characters must be escaped
      if (C != '\\') {
        if (Out)
          Out->push_back(C);
        continue;
      }
      if (Pos == S.size())
        return false;
      const char E = S[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        if (Out)
          Out->push_back(E);
        break;
      case 'n':
        if (Out)
          Out->push_back('\n');
        break;
      case 't':
        if (Out)
          Out->push_back('\t');
        break;
      case 'r':
        if (Out)
          Out->push_back('\r');
        break;
      case 'b':
        if (Out)
          Out->push_back('\b');
        break;
      case 'f':
        if (Out)
          Out->push_back('\f');
        break;
      case 'u': {
        unsigned V = 0;
        for (int I = 0; I != 4; ++I) {
          if (Pos == S.size() ||
              !std::isxdigit(static_cast<unsigned char>(S[Pos])))
            return false;
          const char H = S[Pos++];
          V = V * 16 + static_cast<unsigned>(
                           H <= '9' ? H - '0' : (H | 0x20) - 'a' + 10);
        }
        // The telemetry writer only emits \u00XX for control chars; a
        // byte-wise append suffices for validation purposes.
        if (Out)
          Out->push_back(static_cast<char>(V & 0xFF));
        break;
      }
      default:
        return false;
      }
    }
    return false; // unterminated
  }

  bool number() {
    const size_t Start = Pos;
    (void)consume('-');
    if (literal("Infinity") || literal("NaN"))
      return false; // not JSON
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
            S[Pos] == '.' || S[Pos] == 'e' || S[Pos] == 'E' ||
            S[Pos] == '+' || S[Pos] == '-'))
      ++Pos;
    return Pos > Start && S[Start] != '.' &&
           std::isdigit(static_cast<unsigned char>(
               S[Pos - 1])); // must end in a digit
  }

  bool array() {
    if (!consume('['))
      return false;
    skipWs();
    if (consume(']'))
      return true;
    do {
      skipWs();
      if (!value(nullptr))
        return false;
      skipWs();
    } while (consume(','));
    return consume(']');
  }

  bool object(std::map<std::string, std::string> *Fields) {
    if (!consume('{'))
      return false;
    skipWs();
    if (consume('}'))
      return true;
    do {
      skipWs();
      std::string Key;
      if (!string(&Key))
        return false;
      skipWs();
      if (!consume(':'))
        return false;
      skipWs();
      std::string Val;
      if (!value(Fields ? &Val : nullptr))
        return false;
      if (Fields)
        (*Fields)[Key] = Val;
      skipWs();
    } while (consume(','));
    return consume('}');
  }

  /// Parses any value; when \p Raw is non-null, string values are decoded
  /// into it and all other kinds copy their source text verbatim.
  bool value(std::string *Raw) {
    const size_t Start = Pos;
    bool Ok;
    if (Pos < S.size() && S[Pos] == '"')
      return string(Raw);
    if (Pos < S.size() && S[Pos] == '{')
      Ok = object(nullptr);
    else if (Pos < S.size() && S[Pos] == '[')
      Ok = array();
    else if (literal("true") || literal("false") || literal("null"))
      Ok = true;
    else
      Ok = number();
    if (Ok && Raw)
      *Raw = std::string(S.substr(Start, Pos - Start));
    return Ok;
  }

  std::string_view S;
  size_t Pos = 0;
};

/// One-shot helpers.
inline bool isValidJson(std::string_view S) { return JsonParser(S).valid(); }

inline bool parseJsonObject(std::string_view S,
                            std::map<std::string, std::string> &Fields) {
  return JsonParser(S).topLevelFields(Fields);
}

} // namespace oppsla::test

#endif // OPPSLA_TESTS_JSONTESTUTIL_H
