//===- tests/nn/LossOptimTest.cpp - Loss and optimizer tests ------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "nn/Linear.h"
#include "nn/Loss.h"
#include "nn/Optimizer.h"
#include "support/Rng.h"
#include "tensor/TensorOps.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace oppsla;

//===----------------------------------------------------------------------===//
// CrossEntropy
//===----------------------------------------------------------------------===//

TEST(CrossEntropy, MatchesHandComputedValue) {
  CrossEntropy CE;
  const Tensor Logits({1, 3}, {1.0f, 2.0f, 3.0f});
  const float Loss = CE.forward(Logits, {2});
  // -log softmax(3 | {1,2,3})
  const float Expect = -std::log(std::exp(3.0f) /
                                 (std::exp(1.0f) + std::exp(2.0f) +
                                  std::exp(3.0f)));
  EXPECT_NEAR(Loss, Expect, 1e-5f);
}

TEST(CrossEntropy, UniformLogitsGiveLogC) {
  CrossEntropy CE;
  Tensor Logits({2, 4});
  const float Loss = CE.forward(Logits, {0, 3});
  EXPECT_NEAR(Loss, std::log(4.0f), 1e-5f);
}

TEST(CrossEntropy, CountsCorrectPredictions) {
  CrossEntropy CE;
  const Tensor Logits({2, 2}, {5.0f, 0.0f, 0.0f, 5.0f});
  CE.forward(Logits, {0, 0});
  EXPECT_EQ(CE.numCorrect(), 1u);
}

TEST(CrossEntropy, GradientIsProbsMinusOneHotOverN) {
  CrossEntropy CE;
  const Tensor Logits({1, 2}, {0.0f, 0.0f});
  CE.forward(Logits, {1});
  const Tensor G = CE.backward();
  EXPECT_NEAR(G[0], 0.5f, 1e-6f);
  EXPECT_NEAR(G[1], -0.5f, 1e-6f);
}

TEST(CrossEntropy, GradientMatchesFiniteDifferences) {
  Rng R(1);
  Tensor Logits = Tensor::randn({3, 5}, R);
  const std::vector<size_t> Labels = {0, 4, 2};
  CrossEntropy CE(0.1f);
  CE.forward(Logits, Labels);
  const Tensor G = CE.backward();
  const double Eps = 1e-3;
  for (size_t I = 0; I != Logits.numel(); ++I) {
    const float Orig = Logits[I];
    Logits[I] = Orig + static_cast<float>(Eps);
    CrossEntropy Plus(0.1f);
    const double Lp = Plus.forward(Logits, Labels);
    Logits[I] = Orig - static_cast<float>(Eps);
    CrossEntropy Minus(0.1f);
    const double Lm = Minus.forward(Logits, Labels);
    Logits[I] = Orig;
    EXPECT_NEAR(G[I], (Lp - Lm) / (2 * Eps), 2e-4) << "logit " << I;
  }
}

TEST(CrossEntropy, SmoothingRaisesLossOfConfidentCorrect) {
  const Tensor Logits({1, 3}, {10.0f, 0.0f, 0.0f});
  CrossEntropy Sharp(0.0f), Smooth(0.2f);
  const float L0 = Sharp.forward(Logits, {0});
  const float L1 = Smooth.forward(Logits, {0});
  EXPECT_GT(L1, L0) << "smoothed targets penalize over-confidence";
}

//===----------------------------------------------------------------------===//
// Optimizers
//===----------------------------------------------------------------------===//

namespace {

/// One trivially-differentiable "layer": a bare parameter vector.
struct ParamHolder {
  Tensor W{Shape({4})};
  Tensor G{Shape({4})};
  std::vector<ParamRef> refs() { return {{"w", &W, &G}}; }
};

} // namespace

TEST(Sgd, PlainStepIsLrTimesGrad) {
  ParamHolder P;
  P.W.fill(1.0f);
  P.G.fill(2.0f);
  Sgd Opt(P.refs(), /*Lr=*/0.1f, /*Momentum=*/0.0f);
  Opt.step();
  for (size_t I = 0; I != 4; ++I)
    EXPECT_NEAR(P.W[I], 0.8f, 1e-6f);
}

TEST(Sgd, MomentumAccumulates) {
  ParamHolder P;
  P.G.fill(1.0f);
  Sgd Opt(P.refs(), 0.1f, 0.9f);
  Opt.step(); // v=1, w=-0.1
  Opt.step(); // v=1.9, w=-0.29
  EXPECT_NEAR(P.W[0], -0.29f, 1e-6f);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  ParamHolder P;
  P.W.fill(10.0f);
  // No loss gradient; decay alone must shrink the weights.
  Sgd Opt(P.refs(), 0.1f, 0.0f, /*WeightDecay=*/0.5f);
  Opt.step();
  EXPECT_NEAR(P.W[0], 9.5f, 1e-5f);
}

TEST(Sgd, ZeroGradClears) {
  ParamHolder P;
  P.G.fill(3.0f);
  Sgd Opt(P.refs(), 0.1f);
  Opt.zeroGrad();
  EXPECT_EQ(P.G.sum(), 0.0f);
}

TEST(Adam, FirstStepIsLrSigned) {
  ParamHolder P;
  P.G.fill(0.5f);
  Adam Opt(P.refs(), 0.01f);
  Opt.step();
  // With bias correction, the first Adam step is ~ -lr * sign(g).
  EXPECT_NEAR(P.W[0], -0.01f, 1e-4f);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 elementwise.
  ParamHolder P;
  Adam Opt(P.refs(), 0.05f);
  for (int Iter = 0; Iter != 500; ++Iter) {
    for (size_t I = 0; I != 4; ++I)
      P.G[I] = 2.0f * (P.W[I] - 3.0f);
    Opt.step();
  }
  for (size_t I = 0; I != 4; ++I)
    EXPECT_NEAR(P.W[I], 3.0f, 1e-2f);
}

TEST(Sgd, LinearRegressionConverges) {
  // Fit y = 2x + 1 with a 1-in 1-out Linear layer.
  Rng R(3);
  Linear L(1, 1, R);
  std::vector<ParamRef> Params;
  L.collectParams("lin", Params);
  Sgd Opt(Params, 0.05f, 0.9f);
  Rng DataRng(4);
  for (int Iter = 0; Iter != 400; ++Iter) {
    Tensor X({8, 1});
    for (size_t I = 0; I != 8; ++I)
      X[I] = static_cast<float>(DataRng.uniform(-1.0, 1.0));
    Opt.zeroGrad();
    const Tensor Pred = L.forward(X, true);
    Tensor Grad({8, 1});
    for (size_t I = 0; I != 8; ++I) {
      const float Y = 2.0f * X[I] + 1.0f;
      Grad[I] = 2.0f * (Pred[I] - Y) / 8.0f;
    }
    L.backward(Grad);
    Opt.step();
  }
  EXPECT_NEAR(L.weight()[0], 2.0f, 5e-2f);
  EXPECT_NEAR(L.bias()[0], 1.0f, 5e-2f);
}
