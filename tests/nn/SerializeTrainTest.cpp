//===- tests/nn/SerializeTrainTest.cpp - Serialization & training -------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "classify/Training.h"
#include "nn/ModelZoo.h"
#include "nn/Serialize.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

using namespace oppsla;

namespace {

std::string tempPath(const char *Name) {
  return (std::filesystem::temp_directory_path() / Name).string();
}

/// Returns the inference output of \p Net on a fixed input.
Tensor probe(Sequential &Net, size_t Side) {
  Rng R(77);
  const Tensor In = Tensor::rand({1, 3, Side, Side}, R);
  return Net.forward(In, false);
}

} // namespace

TEST(Serialize, RoundTripPreservesBehavior) {
  Rng R1(1), R2(2);
  auto A = buildModel(Arch::MiniVGG, 10, 16, R1);
  auto B = buildModel(Arch::MiniVGG, 10, 16, R2); // different init
  const std::string Path = tempPath("oppsla_roundtrip.bin");
  ASSERT_TRUE(saveModel(*A, Path));
  ASSERT_TRUE(loadModel(*B, Path));
  const Tensor OutA = probe(*A, 16);
  const Tensor OutB = probe(*B, 16);
  for (size_t I = 0; I != OutA.numel(); ++I)
    EXPECT_EQ(OutA[I], OutB[I]);
  std::remove(Path.c_str());
}

TEST(Serialize, RejectsArchitectureMismatch) {
  Rng R1(1), R2(2);
  auto A = buildModel(Arch::MiniVGG, 10, 16, R1);
  auto B = buildModel(Arch::MiniResNet, 10, 16, R2);
  const std::string Path = tempPath("oppsla_mismatch.bin");
  ASSERT_TRUE(saveModel(*A, Path));
  EXPECT_FALSE(loadModel(*B, Path));
  std::remove(Path.c_str());
}

TEST(Serialize, MissingFileFailsGracefully) {
  Rng R(1);
  auto A = buildModel(Arch::Mlp, 4, 8, R);
  EXPECT_FALSE(loadModel(*A, tempPath("oppsla_definitely_absent.bin")));
}

TEST(Serialize, RejectsTruncatedFile) {
  Rng R(1);
  auto A = buildModel(Arch::Mlp, 4, 8, R);
  const std::string Path = tempPath("oppsla_truncated.bin");
  ASSERT_TRUE(saveModel(*A, Path));
  std::filesystem::resize_file(Path, 10);
  EXPECT_FALSE(loadModel(*A, Path));
  std::remove(Path.c_str());
}

TEST(Training, LearnsSeparableToyTask) {
  // Two classes: bright images vs dark images, trivially separable.
  Dataset Data;
  Data.NumClasses = 2;
  Rng R(5);
  for (int I = 0; I != 60; ++I) {
    const bool Bright = I % 2 == 0;
    Image Img(8, 8);
    for (float &V : Img.raw())
      V = static_cast<float>(
          (Bright ? 0.7 : 0.2) + R.uniform(-0.1, 0.1));
    Data.Images.push_back(Img);
    Data.Labels.push_back(Bright ? 1 : 0);
  }
  Rng MR(6);
  auto Net = buildModel(Arch::Mlp, 2, 8, MR);
  TrainConfig Config;
  Config.Epochs = 30;
  Config.Lr = 0.05f;
  Config.LabelSmoothing = 0.0f;
  Rng TR(7);
  const TrainResult Res = trainClassifier(*Net, Data, Config, TR);
  EXPECT_GT(Res.TrainAccuracy, 0.95f);
  EXPECT_LT(Res.FinalLoss, 0.4f);
  EXPECT_GT(evalAccuracy(*Net, Data), 0.95f);
}

TEST(Training, VictimSpecCacheStemIsDescriptive) {
  VictimSpec Spec;
  Spec.Task = TaskKind::CifarLike;
  Spec.Architecture = Arch::MiniResNet;
  Spec.Seed = 9;
  Spec.TrainImagesPerClass = 42;
  Spec.NumClasses = 10;
  Spec.Train.Epochs = 3;
  const std::string Stem = Spec.cacheStem();
  EXPECT_NE(Stem.find("MiniResNet"), std::string::npos);
  EXPECT_NE(Stem.find("cifar-like"), std::string::npos);
  EXPECT_NE(Stem.find("s9"), std::string::npos);
  EXPECT_NE(Stem.find("n42"), std::string::npos);
}

TEST(Training, MakeVictimUsesDiskCache) {
  // Point the cache at a temp dir; second call must load, not retrain.
  const std::string Dir = tempPath("oppsla_victim_cache");
  std::filesystem::remove_all(Dir);
  ASSERT_EQ(setenv("OPPSLA_CACHE_DIR", Dir.c_str(), 1), 0);

  VictimSpec Spec;
  Spec.Task = TaskKind::CifarLike;
  Spec.Architecture = Arch::Mlp;
  Spec.Side = 16;
  Spec.NumClasses = 4;
  Spec.TrainImagesPerClass = 5;
  Spec.Train.Epochs = 1;

  auto First = makeVictim(Spec);
  ASSERT_NE(First, nullptr);
  auto Second = makeVictim(Spec);
  ASSERT_NE(Second, nullptr);

  // Identical behavior proves the cache was honored.
  const Image Probe = [] {
    Image Img(16, 16);
    for (float &V : Img.raw())
      V = 0.3f;
    return Img;
  }();
  const auto S1 = First->scores(Probe);
  const auto S2 = Second->scores(Probe);
  ASSERT_EQ(S1.size(), S2.size());
  for (size_t I = 0; I != S1.size(); ++I)
    EXPECT_EQ(S1[I], S2[I]);

  unsetenv("OPPSLA_CACHE_DIR");
  std::filesystem::remove_all(Dir);
}
