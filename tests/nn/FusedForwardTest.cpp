//===- tests/nn/FusedForwardTest.cpp - Fused-kernel parity tests --------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Parity between the default fast kernels (packed SGEMM with the fused
// bias/BatchNorm/ReLU epilogue, driven by Sequential's fusion plan) and
// the --naive-kernels scalar reference path. The contract is BIT-identity
// (DESIGN.md §12): both paths run the same fma reduction chain per output
// element and the same epilogue op order, so every comparison below is
// EXPECT_EQ at adversarial shapes — K not a multiple of the row block,
// OW below the vector width, Pad > 0, batch 1 vs 32 — and across every
// zoo architecture.
//
//===----------------------------------------------------------------------===//

#include "nn/Activations.h"
#include "nn/BatchNorm2d.h"
#include "nn/Blocks.h"
#include "nn/Conv2d.h"
#include "nn/ModelZoo.h"
#include "nn/Sequential.h"
#include "support/Rng.h"
#include "tensor/Gemm.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace oppsla;

namespace {

/// Runs \p Model on \p In twice — fast kernels, then --naive-kernels —
/// and asserts the outputs are bit-identical.
void expectKernelParity(Sequential &Model, const Tensor &In) {
  kernels::setNaive(false);
  const Tensor Fast = Model.forward(In, /*Train=*/false);
  kernels::setNaive(true);
  const Tensor Naive = Model.forward(In, /*Train=*/false);
  kernels::setNaive(false);
  ASSERT_EQ(Fast.shape(), Naive.shape());
  for (size_t I = 0; I != Fast.numel(); ++I)
    ASSERT_EQ(Fast[I], Naive[I]) << "at flat index " << I;
}

/// Gives the BatchNorm layers non-trivial running statistics so the fused
/// affine actually scales and shifts (fresh layers have mean 0, var 1).
void perturbRunningStats(Sequential &Model, uint64_t Seed) {
  Rng R(Seed);
  for (auto &[Name, Buf] : Model.buffers())
    for (float &V : Buf->vec())
      V = Name.find("running_var") != std::string::npos
              ? static_cast<float>(R.uniform(0.2, 2.0))
              : static_cast<float>(R.normal(0.0, 0.5));
}

Tensor randomInput(Shape S, uint64_t Seed) {
  Rng R(Seed);
  return Tensor::randn(std::move(S), R);
}

} // namespace

TEST(FusedForward, ConvBnReluAdversarialShapes) {
  struct Case {
    size_t InC, OutC, Kernel, Stride, Pad, Side, Batch;
  };
  // K = InC*Kernel*Kernel not a multiple of MR=6 (27, 25, 8), OW below
  // NR=16 (sides 5 and 7), Pad > 0, batch 1 vs 32.
  const Case Cases[] = {
      {3, 7, 3, 1, 1, 5, 1},   // tiny plane, M tail of 1
      {3, 7, 3, 1, 1, 5, 32},  // same, large batch
      {1, 16, 5, 2, 2, 7, 4},  // 5x5 kernel, stride 2, pad 2
      {2, 6, 2, 1, 0, 9, 3},   // even kernel, no pad
      {3, 13, 3, 2, 1, 16, 2}, // strided, M = 13
  };
  for (const Case &C : Cases) {
    Rng R(100 + C.OutC);
    Sequential Model;
    Model.emplace<Conv2d>(C.InC, C.OutC, C.Kernel, C.Stride, C.Pad, R,
                          /*HasBias=*/false);
    Model.emplace<BatchNorm2d>(C.OutC);
    Model.emplace<ReLU>();
    perturbRunningStats(Model, 200 + C.OutC);
    const Tensor In = randomInput({C.Batch, C.InC, C.Side, C.Side}, 300);
    SCOPED_TRACE(::testing::Message()
                 << "OutC=" << C.OutC << " K=" << C.Kernel << " side="
                 << C.Side << " batch=" << C.Batch);
    expectKernelParity(Model, In);
  }
}

TEST(FusedForward, BiasedConvWithoutBnOrRelu) {
  // A bare biased conv takes the fast GEMM path with only the bias stage
  // of the epilogue enabled.
  Rng R(9);
  Sequential Model;
  Model.emplace<Conv2d>(3, 10, 3, 1, 1, R, /*HasBias=*/true);
  expectKernelParity(Model, randomInput({2, 3, 8, 8}, 10));
}

TEST(FusedForward, ConvReluWithoutBn) {
  Rng R(11);
  Sequential Model;
  Model.emplace<Conv2d>(3, 5, 3, 1, 1, R, /*HasBias=*/true);
  Model.emplace<ReLU>();
  expectKernelParity(Model, randomInput({3, 3, 6, 6}, 12));
}

TEST(FusedForward, ResidualBlockWithProjection) {
  // Exercises the conv-bn-relu + conv-bn body and the 1x1 conv-bn
  // projection (stride 2), all through nested Sequential fusion plans.
  Rng R(13);
  Sequential Model;
  Model.emplace<ResidualBlock>(3, 8, /*Stride=*/2, R);
  perturbRunningStats(Model, 14);
  expectKernelParity(Model, randomInput({2, 3, 8, 8}, 15));
}

TEST(FusedForward, BatchOneMatchesBatch32Rows) {
  // The fused path must stay batch-invariant: image 0's scores are the
  // same whether it is forwarded alone or as row 0 of a batch of 32.
  Rng R(17);
  auto Model = buildModel(Arch::MiniResNet, /*NumClasses=*/4,
                          /*InputSide=*/8, R);
  perturbRunningStats(*Model, 18);
  const Tensor Batch = randomInput({32, 3, 8, 8}, 19);
  Tensor One({1, 3, 8, 8});
  for (size_t I = 0; I != One.numel(); ++I)
    One[I] = Batch[I];
  const Tensor OutBatch = Model->forward(Batch, /*Train=*/false);
  const Tensor OutOne = Model->forward(One, /*Train=*/false);
  ASSERT_EQ(OutBatch.dim(0), 32u);
  ASSERT_EQ(OutOne.dim(0), 1u);
  const size_t Row = OutBatch.numel() / 32;
  for (size_t I = 0; I != Row; ++I)
    ASSERT_EQ(OutOne[I], OutBatch[I]) << "at " << I;
}

TEST(FusedForward, AllZooArchitectures) {
  for (Arch A : {Arch::MiniVGG, Arch::MiniResNet, Arch::MiniGoogLeNet,
                 Arch::MiniDenseNet, Arch::MiniResNet50}) {
    const size_t Side = A == Arch::MiniResNet50 ? 16 : 8;
    Rng R(40 + static_cast<int>(A));
    auto Model = buildModel(A, /*NumClasses=*/10, Side, R);
    perturbRunningStats(*Model, 50 + static_cast<int>(A));
    SCOPED_TRACE(archName(A));
    expectKernelParity(*Model, randomInput({3, 3, Side, Side}, 60));
  }
}

TEST(FusedForward, TrainingForwardIgnoresFusion) {
  // Train-mode forwards must keep the reference path (backward needs the
  // cached im2col matrix), independent of the kernel toggle.
  Rng R(71);
  Sequential Model;
  Model.emplace<Conv2d>(2, 4, 3, 1, 1, R, /*HasBias=*/false);
  Model.emplace<BatchNorm2d>(4);
  Model.emplace<ReLU>();
  const Tensor In = randomInput({2, 2, 6, 6}, 72);
  kernels::setNaive(false);
  const Tensor FastTrain = Model.forward(In, /*Train=*/true);
  Rng R2(71);
  Sequential Model2;
  Model2.emplace<Conv2d>(2, 4, 3, 1, 1, R2, /*HasBias=*/false);
  Model2.emplace<BatchNorm2d>(4);
  Model2.emplace<ReLU>();
  kernels::setNaive(true);
  const Tensor NaiveTrain = Model2.forward(In, /*Train=*/true);
  kernels::setNaive(false);
  for (size_t I = 0; I != FastTrain.numel(); ++I)
    ASSERT_EQ(FastTrain[I], NaiveTrain[I]) << "at " << I;
}
