//===- tests/nn/GradCheckTest.cpp - Numerical gradient checks -----------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Every layer's backward pass is validated against central differences.
// These are the tests that keep the training substrate honest.
//
//===----------------------------------------------------------------------===//

#include "GradCheck.h"

#include "nn/Activations.h"
#include "nn/BatchNorm2d.h"
#include "nn/Blocks.h"
#include "nn/Conv2d.h"
#include "nn/Linear.h"
#include "nn/Misc.h"
#include "nn/Pooling.h"
#include "nn/Sequential.h"

using namespace oppsla;
using namespace oppsla::test;

namespace {

Tensor smallInput(size_t N, size_t C, size_t H, size_t W, uint64_t Seed) {
  Rng R(Seed);
  return Tensor::randn({N, C, H, W}, R);
}

} // namespace

TEST(GradCheck, Linear) {
  Rng R(1);
  Linear L(6, 4, R);
  Rng DataRng(2);
  checkGradients(L, Tensor::randn({3, 6}, DataRng));
}

TEST(GradCheck, LinearSingleRow) {
  Rng R(1);
  Linear L(5, 2, R);
  Rng DataRng(3);
  checkGradients(L, Tensor::randn({1, 5}, DataRng));
}

TEST(GradCheck, Conv2dStride1) {
  Rng R(4);
  Conv2d L(2, 3, 3, 1, 1, R);
  checkGradients(L, smallInput(2, 2, 5, 5, 5));
}

TEST(GradCheck, Conv2dStride2) {
  Rng R(6);
  Conv2d L(3, 4, 3, 2, 1, R);
  checkGradients(L, smallInput(1, 3, 6, 6, 7));
}

TEST(GradCheck, Conv2dNoPadNoBias) {
  Rng R(8);
  Conv2d L(2, 2, 2, 1, 0, R, /*HasBias=*/false);
  checkGradients(L, smallInput(2, 2, 4, 4, 9));
}

TEST(GradCheck, Conv2d1x1) {
  Rng R(10);
  Conv2d L(4, 3, 1, 1, 0, R);
  checkGradients(L, smallInput(1, 4, 3, 3, 11));
}

TEST(GradCheck, BatchNorm2d) {
  BatchNorm2d L(3);
  // Offset the input so batch means are non-trivial.
  Tensor In = smallInput(4, 3, 3, 3, 13);
  for (float &V : In.vec())
    V = V * 2.0f + 0.5f;
  checkGradients(L, In, /*Eps=*/1e-2, /*Tol=*/4e-2);
}

TEST(GradCheck, ReLU) {
  ReLU L;
  // Keep values away from the kink at 0.
  Tensor In = smallInput(2, 2, 4, 4, 15);
  for (float &V : In.vec())
    if (std::fabs(V) < 0.05f)
      V += 0.2f;
  checkGradients(L, In);
}

TEST(GradCheck, LeakyReLU) {
  LeakyReLU L(0.2f);
  Tensor In = smallInput(1, 3, 4, 4, 17);
  for (float &V : In.vec())
    if (std::fabs(V) < 0.05f)
      V -= 0.2f;
  checkGradients(L, In);
}

TEST(GradCheck, Tanh) {
  Tanh L;
  checkGradients(L, smallInput(2, 2, 3, 3, 19));
}

TEST(GradCheck, MaxPool) {
  MaxPool2d L(2);
  // Perturbations must not change the argmax; spread the values.
  Rng R(21);
  Tensor In({1, 2, 4, 4});
  for (size_t I = 0; I != In.numel(); ++I)
    In[I] = static_cast<float>(I % 7) + 0.3f * R.uniformF();
  checkGradients(L, In);
}

TEST(GradCheck, AvgPool) {
  AvgPool2d L(2);
  checkGradients(L, smallInput(2, 3, 4, 4, 23));
}

TEST(GradCheck, AvgPoolStride1) {
  AvgPool2d L(2, 1);
  checkGradients(L, smallInput(1, 2, 4, 4, 25));
}

TEST(GradCheck, GlobalAvgPool) {
  GlobalAvgPool L;
  checkGradients(L, smallInput(2, 3, 4, 5, 27));
}

TEST(GradCheck, Flatten) {
  Flatten L;
  checkGradients(L, smallInput(2, 2, 3, 3, 29));
}

TEST(GradCheck, ResidualBlockIdentitySkip) {
  Rng R(31);
  ResidualBlock L(4, 4, 1, R);
  checkGradients(L, smallInput(2, 4, 4, 4, 33), 2e-3, 5e-2);
}

TEST(GradCheck, ResidualBlockProjectedSkip) {
  Rng R(35);
  ResidualBlock L(3, 5, 2, R);
  checkGradients(L, smallInput(2, 3, 6, 6, 37), 2e-3, 5e-2);
}

TEST(GradCheck, InceptionBlockMatchesManualAssembly) {
  // Finite differences are ill-conditioned for inception's narrow
  // reduce-conv + BatchNorm branches (1/sigma amplifies the ReLU kink
  // window), so instead verify the block's forward AND backward wiring
  // exactly against a manually assembled reference built from the same
  // RNG stream (identical weights by construction). The constituent
  // layers' gradients are covered by the finite-difference tests above.
  constexpr size_t InC = 3, C1 = 2, C3 = 3, C5 = 2;
  Rng RBlock(39), RRef(39);
  InceptionBlock Block(InC, C1, C3, C5, RBlock);

  // Mirror of InceptionBlock's constructor order.
  Sequential B1, B2, B3;
  B1.add(convBnRelu(InC, C1, 1, 1, 0, RRef));
  const size_t Red3 = std::max<size_t>(1, C3 / 2);
  B2.add(convBnRelu(InC, Red3, 1, 1, 0, RRef));
  B2.add(convBnRelu(Red3, C3, 3, 1, 1, RRef));
  const size_t Red5 = std::max<size_t>(1, C5 / 2);
  B3.add(convBnRelu(InC, Red5, 1, 1, 0, RRef));
  B3.add(convBnRelu(Red5, C5, 5, 1, 2, RRef));

  const Tensor In = smallInput(2, InC, 5, 5, 41);
  const Tensor Out = Block.forward(In, /*Train=*/true);
  const Tensor O1 = B1.forward(In, true);
  const Tensor O2 = B2.forward(In, true);
  const Tensor O3 = B3.forward(In, true);

  // Forward: channel-concatenated branch outputs.
  const size_t N = 2, H = 5, W = 5, Plane = H * W;
  ASSERT_EQ(Out.shape(), Shape({N, C1 + C3 + C5, H, W}));
  for (size_t B = 0; B != N; ++B) {
    for (size_t I = 0; I != C1 * Plane; ++I)
      ASSERT_EQ(Out[(B * (C1 + C3 + C5)) * Plane + I],
                O1[B * C1 * Plane + I]);
    for (size_t I = 0; I != C3 * Plane; ++I)
      ASSERT_EQ(Out[(B * (C1 + C3 + C5) + C1) * Plane + I],
                O2[B * C3 * Plane + I]);
    for (size_t I = 0; I != C5 * Plane; ++I)
      ASSERT_EQ(Out[(B * (C1 + C3 + C5) + C1 + C3) * Plane + I],
                O3[B * C5 * Plane + I]);
  }

  // Backward: the block's input gradient equals the sum of the branches'.
  Rng GR(7);
  Tensor GradOut = Tensor::randn(Out.shape(), GR);
  const Tensor GIn = Block.backward(GradOut);
  Tensor G1({N, C1, H, W}), G2({N, C3, H, W}), G3({N, C5, H, W});
  for (size_t B = 0; B != N; ++B) {
    for (size_t I = 0; I != C1 * Plane; ++I)
      G1[B * C1 * Plane + I] = GradOut[(B * (C1 + C3 + C5)) * Plane + I];
    for (size_t I = 0; I != C3 * Plane; ++I)
      G2[B * C3 * Plane + I] =
          GradOut[(B * (C1 + C3 + C5) + C1) * Plane + I];
    for (size_t I = 0; I != C5 * Plane; ++I)
      G3[B * C5 * Plane + I] =
          GradOut[(B * (C1 + C3 + C5) + C1 + C3) * Plane + I];
  }
  Tensor Expect = B1.backward(G1);
  Expect += B2.backward(G2);
  Expect += B3.backward(G3);
  ASSERT_EQ(GIn.numel(), Expect.numel());
  for (size_t I = 0; I != GIn.numel(); ++I)
    ASSERT_NEAR(GIn[I], Expect[I], 1e-5f) << "input grad at " << I;
}

TEST(GradCheck, DenseLayer) {
  Rng R(43);
  DenseLayer L(3, 4, R);
  checkGradients(L, smallInput(2, 3, 4, 4, 45), 2e-3, 5e-2);
}

TEST(GradCheck, SequentialComposition) {
  Rng R(47);
  Sequential Seq;
  Seq.emplace<Conv2d>(2, 3, 3, 1, 1, R);
  Seq.emplace<BatchNorm2d>(3);
  Seq.emplace<ReLU>();
  Seq.emplace<MaxPool2d>(2);
  Seq.emplace<Flatten>();
  Seq.emplace<Linear>(3 * 2 * 2, 4, R);
  checkGradients(Seq, smallInput(3, 2, 4, 4, 49), 1e-2, 6e-2);
}

TEST(GradCheck, ConvBnReluUnit) {
  Rng R(51);
  LayerPtr L = convBnRelu(2, 3, 3, 1, 1, R);
  checkGradients(*L, smallInput(2, 2, 4, 4, 53), 1e-2, 6e-2);
}
