//===- tests/nn/LayerBehaviorTest.cpp - Layer semantics tests -----------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "nn/Activations.h"
#include "nn/BatchNorm2d.h"
#include "nn/Blocks.h"
#include "nn/Conv2d.h"
#include "nn/Linear.h"
#include "nn/Misc.h"
#include "nn/ModelZoo.h"
#include "nn/Pooling.h"
#include "nn/Sequential.h"
#include "support/Rng.h"
#include "tensor/Gemm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using namespace oppsla;

TEST(ReLULayer, ClampsNegatives) {
  ReLU L;
  const Tensor In({1, 1, 1, 4}, {-1.0f, 0.0f, 2.0f, -0.5f});
  const Tensor Out = L.forward(In, false);
  EXPECT_EQ(Out[0], 0.0f);
  EXPECT_EQ(Out[1], 0.0f);
  EXPECT_EQ(Out[2], 2.0f);
  EXPECT_EQ(Out[3], 0.0f);
}

TEST(LeakyReLULayer, ScalesNegatives) {
  LeakyReLU L(0.1f);
  const Tensor In({1, 1, 1, 2}, {-2.0f, 3.0f});
  const Tensor Out = L.forward(In, false);
  EXPECT_FLOAT_EQ(Out[0], -0.2f);
  EXPECT_FLOAT_EQ(Out[1], 3.0f);
}

TEST(TanhLayer, Saturates) {
  Tanh L;
  const Tensor In({1, 1, 1, 2}, {100.0f, -100.0f});
  const Tensor Out = L.forward(In, false);
  EXPECT_NEAR(Out[0], 1.0f, 1e-5f);
  EXPECT_NEAR(Out[1], -1.0f, 1e-5f);
}

TEST(MaxPoolLayer, SelectsWindowMax) {
  MaxPool2d L(2);
  const Tensor In({1, 1, 2, 4}, {1, 5, 2, 0, 3, 4, 8, 7});
  const Tensor Out = L.forward(In, false);
  ASSERT_EQ(Out.numel(), 2u);
  EXPECT_EQ(Out[0], 5.0f);
  EXPECT_EQ(Out[1], 8.0f);
}

TEST(AvgPoolLayer, AveragesWindow) {
  AvgPool2d L(2);
  const Tensor In({1, 1, 2, 2}, {1, 2, 3, 6});
  const Tensor Out = L.forward(In, false);
  ASSERT_EQ(Out.numel(), 1u);
  EXPECT_FLOAT_EQ(Out[0], 3.0f);
}

TEST(GlobalAvgPoolLayer, ReducesToNC) {
  GlobalAvgPool L;
  Tensor In({2, 3, 2, 2});
  In.fill(2.0f);
  const Tensor Out = L.forward(In, false);
  EXPECT_EQ(Out.rank(), 2u);
  EXPECT_EQ(Out.dim(0), 2u);
  EXPECT_EQ(Out.dim(1), 3u);
  for (size_t I = 0; I != Out.numel(); ++I)
    EXPECT_FLOAT_EQ(Out[I], 2.0f);
}

TEST(FlattenLayer, PreservesBatchDim) {
  Flatten L;
  const Tensor In({2, 3, 4, 5});
  const Tensor Out = L.forward(In, false);
  EXPECT_EQ(Out.rank(), 2u);
  EXPECT_EQ(Out.dim(0), 2u);
  EXPECT_EQ(Out.dim(1), 60u);
}

TEST(DropoutLayer, IdentityAtInference) {
  Dropout L(0.5f);
  Rng R(1);
  const Tensor In = Tensor::randn({100}, R);
  const Tensor Out = L.forward(In, false);
  for (size_t I = 0; I != In.numel(); ++I)
    EXPECT_EQ(Out[I], In[I]);
}

TEST(DropoutLayer, TrainModeZeroesAndRescales) {
  Dropout L(0.5f, /*Seed=*/3);
  Tensor In({10000});
  In.fill(1.0f);
  const Tensor Out = L.forward(In, true);
  size_t Zeros = 0;
  double Sum = 0.0;
  for (size_t I = 0; I != Out.numel(); ++I) {
    if (Out[I] == 0.0f)
      ++Zeros;
    else
      EXPECT_FLOAT_EQ(Out[I], 2.0f) << "survivors are scaled by 1/(1-p)";
    Sum += Out[I];
  }
  EXPECT_NEAR(static_cast<double>(Zeros) / Out.numel(), 0.5, 0.05);
  EXPECT_NEAR(Sum / Out.numel(), 1.0, 0.05) << "expectation preserved";
}

TEST(BatchNormLayer, NormalizesBatchStatistics) {
  BatchNorm2d L(1);
  Rng R(5);
  Tensor In({8, 1, 4, 4});
  for (float &V : In.vec())
    V = static_cast<float>(R.normal(5.0, 3.0));
  const Tensor Out = L.forward(In, true);
  double Sum = 0.0, SqSum = 0.0;
  for (size_t I = 0; I != Out.numel(); ++I) {
    Sum += Out[I];
    SqSum += static_cast<double>(Out[I]) * Out[I];
  }
  const double Mean = Sum / Out.numel();
  EXPECT_NEAR(Mean, 0.0, 1e-4);
  EXPECT_NEAR(SqSum / Out.numel() - Mean * Mean, 1.0, 1e-3);
}

TEST(BatchNormLayer, InferenceUsesRunningStats) {
  BatchNorm2d L(1, /*Momentum=*/1.0f); // running stats = last batch stats
  Rng R(6);
  Tensor In({4, 1, 2, 2});
  for (float &V : In.vec())
    V = static_cast<float>(R.normal(2.0, 0.5));
  L.forward(In, true);
  // Inference normalizes with the captured running stats: the batch mean
  // and the unbiased (Count/(Count-1)) batch variance.
  const size_t Count = In.numel();
  double Sum = 0.0, SqSum = 0.0;
  for (size_t I = 0; I != Count; ++I) {
    Sum += In[I];
    SqSum += static_cast<double>(In[I]) * In[I];
  }
  const double Mean = Sum / static_cast<double>(Count);
  const double VarBiased = SqSum / static_cast<double>(Count) - Mean * Mean;
  const double VarUnbiased =
      VarBiased * static_cast<double>(Count) / (Count - 1.0);
  const Tensor EvalOut = L.forward(In, false);
  for (size_t I = 0; I != EvalOut.numel(); ++I)
    EXPECT_NEAR(EvalOut[I], (In[I] - Mean) / std::sqrt(VarUnbiased + 1e-5),
                1e-4f);
}

TEST(BatchNormLayer, RunningVarIsUnbiasedNormalizationIsBiased) {
  // ISSUE 7 satellite regression: training normalizes with the biased
  // (population, /Count) variance, but the running buffer tracks the
  // unbiased sample variance (Bessel's Count/(Count-1) correction) — the
  // torch.nn.BatchNorm2d convention the training recipes assume.
  BatchNorm2d L(1, /*Momentum=*/1.0f);
  const Tensor In({1, 1, 2, 2}, {1.0f, 2.0f, 3.0f, 4.0f}); // Count = 4
  const Tensor Out = L.forward(In, true);
  const double VarBiased = 1.25; // population variance of {1, 2, 3, 4}
  const double VarUnbiased = VarBiased * 4.0 / 3.0;
  EXPECT_NEAR(L.runningMean()[0], 2.5f, 1e-6f);
  EXPECT_NEAR(L.runningVar()[0], static_cast<float>(VarUnbiased), 1e-5f);
  EXPECT_NEAR(Out[0], (1.0 - 2.5) / std::sqrt(VarBiased + 1e-5), 1e-5f)
      << "train-mode normalization must stay biased";
}

TEST(BatchNormLayer, SingleElementBatchGuardsBesselDivision) {
  // Count == 1 has no unbiased variance estimate; the update must fall
  // back to the biased value instead of dividing by zero.
  BatchNorm2d L(1, /*Momentum=*/1.0f);
  const Tensor In({1, 1, 1, 1}, {3.0f});
  L.forward(In, true);
  ASSERT_TRUE(std::isfinite(L.runningVar()[0]));
  EXPECT_NEAR(L.runningVar()[0], 0.0f, 1e-6f);
  EXPECT_NEAR(L.runningMean()[0], 3.0f, 1e-6f);
}

TEST(BatchNormLayer, ExposesRunningBuffers) {
  BatchNorm2d L(2);
  std::vector<std::pair<std::string, Tensor *>> Buffers;
  L.collectBuffers("bn", Buffers);
  ASSERT_EQ(Buffers.size(), 2u);
  EXPECT_EQ(Buffers[0].first, "bn.running_mean");
  EXPECT_EQ(Buffers[1].first, "bn.running_var");
}

TEST(Conv2dLayer, OutputShape) {
  Rng R(7);
  Conv2d L(3, 8, 3, 2, 1, R);
  const Tensor In({2, 3, 32, 32});
  const Tensor Out = L.forward(In, false);
  EXPECT_EQ(Out.shape(), Shape({2, 8, 16, 16}));
}

TEST(Conv2dLayer, AlternatingBatchSizesReuseScratch) {
  // ISSUE 7 satellite regression: the inference scratch buffers used to
  // be reallocated on any exact shape mismatch, so alternating full and
  // tail engine batches (e.g. batch 8 then remainder 3) thrashed the
  // allocator on every submission. Capacity-based reuse allocates only at
  // the high-water mark: with the larger batch first, at most one growth
  // per scratch buffer (Cols + Out = 2) no matter how often the sizes
  // alternate.
  Rng R(23);
  Conv2d L(3, 8, 3, 1, 1, R);
  const Tensor Big = Tensor::randn({8, 3, 8, 8}, R);
  const Tensor Small = Tensor::randn({3, 3, 8, 8}, R);
  kernels::setNaive(true); // exercise both ScratchCols and ScratchOut
  L.forward(Big, /*Train=*/false);
  const size_t AfterFirst = L.scratchReallocs();
  EXPECT_LE(AfterFirst, 2u);
  for (int It = 0; It != 4; ++It) {
    L.forward(Small, /*Train=*/false);
    L.forward(Big, /*Train=*/false);
  }
  kernels::setNaive(false);
  EXPECT_EQ(L.scratchReallocs(), AfterFirst)
      << "alternating batch sizes must not grow scratch again";
}

TEST(Conv2dLayer, KnownConvolution) {
  // 1 input channel, 1 output channel, 2x2 averaging-ish kernel.
  Rng R(8);
  Conv2d L(1, 1, 2, 1, 0, R);
  L.weight().fill(1.0f);
  L.bias().fill(0.5f);
  const Tensor In({1, 1, 2, 2}, {1, 2, 3, 4});
  const Tensor Out = L.forward(In, false);
  ASSERT_EQ(Out.numel(), 1u);
  EXPECT_FLOAT_EQ(Out[0], 10.5f);
}

TEST(Conv2dLayer, TranslatedInputTranslatesOutput) {
  Rng R(9);
  Conv2d L(1, 2, 3, 1, 1, R);
  Tensor A({1, 1, 6, 6});
  A.at(0, 0, 2, 2) = 1.0f;
  Tensor B({1, 1, 6, 6});
  B.at(0, 0, 2, 3) = 1.0f;
  const Tensor OutA = L.forward(A, false);
  const Tensor OutB = L.forward(B, false);
  // Interior responses are shifted copies.
  for (size_t C = 0; C != 2; ++C)
    for (size_t I = 1; I != 5; ++I)
      for (size_t J = 1; J != 4; ++J)
        EXPECT_NEAR(OutA.at(0, C, I, J), OutB.at(0, C, I, J + 1), 1e-5f);
}

TEST(LinearLayer, KnownAffineMap) {
  Rng R(10);
  Linear L(2, 2, R);
  L.weight() = Tensor({2, 2}, {1, 2, 3, 4});
  L.bias() = Tensor({2}, {10, 20});
  const Tensor In({1, 2}, {1, 1});
  const Tensor Out = L.forward(In, false);
  EXPECT_FLOAT_EQ(Out[0], 13.0f);
  EXPECT_FLOAT_EQ(Out[1], 27.0f);
}

TEST(SequentialLayer, ParamNamesAreUnique) {
  Rng R(11);
  auto Net = buildModel(Arch::MiniVGG, 10, 32, R);
  auto Params = Net->parameters();
  std::set<std::string> Names;
  for (const ParamRef &P : Params) {
    EXPECT_TRUE(Names.insert(P.Name).second) << "duplicate " << P.Name;
    EXPECT_EQ(P.Value->numel(), P.Grad->numel());
  }
  EXPECT_GT(Params.size(), 8u);
}

TEST(ResidualBlockLayer, IdentityPathPreservedWhenBodyIsZero) {
  Rng R(12);
  ResidualBlock L(3, 3, 1, R);
  // Zero the body's second conv so F(x) == 0 and Out == ReLU(x).
  std::vector<ParamRef> Params;
  L.collectParams("r", Params);
  for (ParamRef &P : Params)
    if (P.Name.find("body.3") != std::string::npos) // second conv weight
      P.Value->zero();
  Tensor In({1, 3, 4, 4});
  In.fill(0.7f);
  const Tensor Out = L.forward(In, false);
  for (size_t I = 0; I != Out.numel(); ++I)
    EXPECT_NEAR(Out[I], 0.7f, 1e-4f);
}

TEST(InceptionBlockLayer, ChannelCountsAdd) {
  Rng R(13);
  InceptionBlock L(4, 2, 5, 3, R);
  EXPECT_EQ(L.outChannels(), 10u);
  const Tensor In({2, 4, 6, 6});
  const Tensor Out = L.forward(In, false);
  EXPECT_EQ(Out.shape(), Shape({2, 10, 6, 6}));
}

TEST(DenseLayerLayer, ConcatenatesInput) {
  Rng R(14);
  DenseLayer L(3, 2, R);
  EXPECT_EQ(L.outChannels(), 5u);
  Rng DR(15);
  const Tensor In = Tensor::randn({1, 3, 4, 4}, DR);
  const Tensor Out = L.forward(In, false);
  EXPECT_EQ(Out.shape(), Shape({1, 5, 4, 4}));
  // First three channels are the input, verbatim.
  for (size_t I = 0; I != 3 * 16; ++I)
    EXPECT_EQ(Out[I], In[I]);
}

//===----------------------------------------------------------------------===//
// Model zoo shapes across architectures and input sizes
//===----------------------------------------------------------------------===//

class ModelZooSweep
    : public ::testing::TestWithParam<std::tuple<Arch, size_t>> {};

TEST_P(ModelZooSweep, ForwardShapeAndFiniteness) {
  const auto [A, Side] = GetParam();
  Rng R(100);
  auto Net = buildModel(A, 10, Side, R);
  ASSERT_NE(Net, nullptr);
  Rng DR(101);
  const Tensor In = Tensor::rand({1, 3, Side, Side}, DR);
  const Tensor Out = Net->forward(In, false);
  ASSERT_EQ(Out.numel(), 10u);
  for (size_t I = 0; I != Out.numel(); ++I)
    EXPECT_TRUE(std::isfinite(Out[I]));
}

INSTANTIATE_TEST_SUITE_P(
    ArchsAndSizes, ModelZooSweep,
    ::testing::Combine(::testing::Values(Arch::MiniVGG, Arch::MiniResNet,
                                         Arch::MiniGoogLeNet,
                                         Arch::MiniDenseNet,
                                         Arch::MiniResNet50),
                       ::testing::Values(size_t(16), size_t(24), size_t(32),
                                         size_t(40), size_t(48))));

TEST(ModelZoo, NamesRoundTrip) {
  for (Arch A : {Arch::MiniVGG, Arch::MiniResNet, Arch::MiniGoogLeNet,
                 Arch::MiniDenseNet, Arch::MiniResNet50})
    EXPECT_EQ(archFromName(archName(A)), A);
  EXPECT_EQ(archFromName("nonsense"), Arch::Mlp);
  EXPECT_EQ(archFromName("vgg"), Arch::MiniVGG);
}

TEST(ModelZoo, TrainingBatchForwardWorks) {
  Rng R(102);
  auto Net = buildModel(Arch::MiniResNet, 10, 16, R);
  Rng DR(103);
  const Tensor In = Tensor::rand({4, 3, 16, 16}, DR);
  const Tensor Out = Net->forward(In, true);
  EXPECT_EQ(Out.shape(), Shape({4, 10}));
}
