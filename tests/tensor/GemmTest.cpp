//===- tests/tensor/GemmTest.cpp - Packed SGEMM unit tests --------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The packed, register-blocked GEMM's contract is BIT-identity with the
// scalar reference loops in TensorOps.cpp: both compute every output
// element as the chain acc_k = fma(A[i,k], B[k,j], acc_{k-1}) with k
// ascending, so EXPECT_EQ (not NEAR) is the right comparison everywhere
// below, at any shape, epilogue, and thread count (DESIGN.md §12).
//
//===----------------------------------------------------------------------===//

#include "tensor/Gemm.h"

#include "support/Rng.h"
#include "tensor/TensorOps.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace oppsla;

namespace {

Tensor randomTensor(Shape S, uint64_t Seed) {
  Rng R(Seed);
  return Tensor::randn(std::move(S), R);
}

/// Packed GEMM wrapper: C = A * B with epilogue \p Ep.
Tensor fastMatmul(const Tensor &A, const Tensor &B, const GemmEpilogue &Ep) {
  const size_t M = A.dim(0), K = A.dim(1), N = B.dim(1);
  std::vector<float> Pack(gemmPackedSize(M, K));
  gemmPackA(A.data(), M, K, Pack.data());
  Tensor C({M, N});
  gemmPacked(Pack.data(), B.data(), C.data(), M, K, N, Ep);
  return C;
}

void expectBitIdentical(const Tensor &A, const Tensor &B) {
  ASSERT_EQ(A.shape(), B.shape());
  for (size_t I = 0; I != A.numel(); ++I)
    ASSERT_EQ(A[I], B[I]) << "at flat index " << I;
}

} // namespace

TEST(GemmPack, PanelLayoutAndZeroTail) {
  // M = 7 rows pack into two MR=6 panels; panel 1 holds row 6 plus five
  // zero rows. Within a panel the layout is k-major: Pack[k*MR + r].
  const size_t M = 7, K = 3;
  Tensor A({M, K});
  for (size_t I = 0; I != A.numel(); ++I)
    A[I] = static_cast<float>(I + 1);
  std::vector<float> Pack(gemmPackedSize(M, K), -1.0f);
  ASSERT_EQ(Pack.size(), 2 * K * kernels::MR);
  gemmPackA(A.data(), M, K, Pack.data());

  for (size_t R = 0; R != kernels::MR; ++R)
    for (size_t Kk = 0; Kk != K; ++Kk)
      EXPECT_EQ(Pack[Kk * kernels::MR + R], A.at(R, Kk));
  const float *Panel1 = Pack.data() + K * kernels::MR;
  for (size_t R = 0; R != kernels::MR; ++R)
    for (size_t Kk = 0; Kk != K; ++Kk)
      EXPECT_EQ(Panel1[Kk * kernels::MR + R], R == 0 ? A.at(6, Kk) : 0.0f);
}

/// Shape sweep crossing every blocking edge: M not a multiple of MR=6,
/// N below/straddling NR=16 and NC=144, K = 1 and K large.
class GemmShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapeSweep, BitIdenticalToReferenceMatmul) {
  const auto [M, K, N] = GetParam();
  const Tensor A = randomTensor({static_cast<size_t>(M),
                                 static_cast<size_t>(K)}, 7 + M);
  const Tensor B = randomTensor({static_cast<size_t>(K),
                                 static_cast<size_t>(N)}, 13 + N);
  Tensor Ref({static_cast<size_t>(M), static_cast<size_t>(N)});
  matmul(A, B, Ref);
  expectBitIdentical(fastMatmul(A, B, GemmEpilogue{}), Ref);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GemmShapeSweep,
    ::testing::Values(std::make_tuple(1, 1, 1),     // degenerate
                      std::make_tuple(6, 27, 16),   // exact blocks
                      std::make_tuple(7, 27, 16),   // M tail of 1
                      std::make_tuple(5, 5, 5),     // all tails
                      std::make_tuple(16, 27, 7),   // N below NR
                      std::make_tuple(13, 64, 33),  // N tail of 1
                      std::make_tuple(64, 576, 64), // deepest zoo conv
                      std::make_tuple(10, 100, 150) // N straddles NC
                      ));

TEST(GemmEpilogueTest, BiasScaleShiftReluMatchReferenceOps) {
  const size_t M = 9, K = 31, N = 21;
  const Tensor A = randomTensor({M, K}, 3);
  const Tensor B = randomTensor({K, N}, 4);
  const Tensor Bias = randomTensor({M}, 5);
  const Tensor Scale = randomTensor({M}, 6);
  const Tensor Shift = randomTensor({M}, 7);
  Tensor Ref({M, N});
  matmul(A, B, Ref);

  GemmEpilogue Ep;
  Ep.Bias = Bias.data();
  Ep.Scale = Scale.data();
  Ep.Shift = Shift.data();
  Ep.Relu = true;
  const Tensor Fast = fastMatmul(A, B, Ep);

  // The epilogue mirrors the unfused layers op for op: bias add, then
  // fma(v, scale, shift), then the ReLU ternary.
  for (size_t I = 0; I != M; ++I)
    for (size_t J = 0; J != N; ++J) {
      const float V =
          std::fma(Ref.at(I, J) + Bias[I], Scale[I], Shift[I]);
      ASSERT_EQ(Fast.at(I, J), V > 0.0f ? V : 0.0f)
          << "at (" << I << ", " << J << ")";
    }
}

TEST(GemmConvOut, ScattersColumnsIntoNCHW) {
  // Flat column (b*Plane + p) of the product must land at Out[b][m][p],
  // including when tiles straddle batch boundaries (Plane = 5 < NR).
  const size_t M = 8, K = 12, NB = 7, Plane = 5;
  const Tensor A = randomTensor({M, K}, 21);
  const Tensor B = randomTensor({K, NB * Plane}, 22);
  const Tensor RowMajor = fastMatmul(A, B, GemmEpilogue{});

  std::vector<float> Pack(gemmPackedSize(M, K));
  gemmPackA(A.data(), M, K, Pack.data());
  Tensor Out({NB, M, Plane, 1});
  gemmPackedConvOut(Pack.data(), B.data(), Out.data(), M, K, NB, Plane,
                    GemmEpilogue{});

  for (size_t Bn = 0; Bn != NB; ++Bn)
    for (size_t I = 0; I != M; ++I)
      for (size_t P = 0; P != Plane; ++P)
        ASSERT_EQ(Out.at(Bn, I, P, 0), RowMajor.at(I, Bn * Plane + P))
            << "batch " << Bn << " row " << I << " pixel " << P;
}

TEST(GemmThreading, BitIdenticalAtAnyColumnThreadCount) {
  const size_t M = 17, K = 48, N = 800; // several NC blocks
  const Tensor A = randomTensor({M, K}, 31);
  const Tensor B = randomTensor({K, N}, 32);
  const Tensor Serial = fastMatmul(A, B, GemmEpilogue{});
  for (size_t Threads : {2, 3, 7}) {
    kernels::ScopedColumnThreads Scope(Threads);
    expectBitIdentical(fastMatmul(A, B, GemmEpilogue{}), Serial);
  }
}

TEST(GemmThreading, ScopedOverrideRestores) {
  const size_t Before = kernels::columnThreads();
  {
    kernels::ScopedColumnThreads Outer(4);
    EXPECT_EQ(kernels::columnThreads(), 4u);
    {
      kernels::ScopedColumnThreads Inner(2);
      EXPECT_EQ(kernels::columnThreads(), 2u);
    }
    EXPECT_EQ(kernels::columnThreads(), 4u);
  }
  EXPECT_EQ(kernels::columnThreads(), Before);
}

TEST(GemmKernels, NaiveToggle) {
  EXPECT_FALSE(kernels::naive());
  kernels::setNaive(true);
  EXPECT_TRUE(kernels::naive());
  kernels::setNaive(false);
  EXPECT_FALSE(kernels::naive());
}
