//===- tests/tensor/TensorOpsTest.cpp - Tensor op unit tests ------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tensor/TensorOps.h"

#include "support/Rng.h"
#include "tensor/Gemm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace oppsla;

namespace {

/// Naive reference GEMM.
Tensor refMatmul(const Tensor &A, const Tensor &B) {
  const size_t M = A.dim(0), K = A.dim(1), N = B.dim(1);
  Tensor C({M, N});
  for (size_t I = 0; I != M; ++I)
    for (size_t J = 0; J != N; ++J) {
      double Acc = 0.0;
      for (size_t Kk = 0; Kk != K; ++Kk)
        Acc += static_cast<double>(A.at(I, Kk)) * B.at(Kk, J);
      C.at(I, J) = static_cast<float>(Acc);
    }
  return C;
}

void expectNear(const Tensor &A, const Tensor &B, float Tol = 1e-4f) {
  ASSERT_EQ(A.numel(), B.numel());
  for (size_t I = 0; I != A.numel(); ++I)
    ASSERT_NEAR(A[I], B[I], Tol) << "at " << I;
}

} // namespace

TEST(Matmul, KnownSmallCase) {
  const Tensor A({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor B({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor C({2, 2});
  matmul(A, B, C);
  EXPECT_FLOAT_EQ(C.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(C.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(C.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(C.at(1, 1), 154.0f);
}

TEST(Matmul, IdentityLeavesMatrixUnchanged) {
  Tensor I3({3, 3});
  for (size_t I = 0; I != 3; ++I)
    I3.at(I, I) = 1.0f;
  Rng R(1);
  const Tensor B = Tensor::randn({3, 5}, R);
  Tensor C({3, 5});
  matmul(I3, B, C);
  expectNear(C, B);
}

class MatmulSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(MatmulSweep, MatchesReference) {
  const auto [M, K, N] = GetParam();
  Rng R(42 + M * 100 + K * 10 + N);
  const Tensor A = Tensor::randn({static_cast<size_t>(M),
                                  static_cast<size_t>(K)}, R);
  const Tensor B = Tensor::randn({static_cast<size_t>(K),
                                  static_cast<size_t>(N)}, R);
  Tensor C({static_cast<size_t>(M), static_cast<size_t>(N)});
  matmul(A, B, C);
  expectNear(C, refMatmul(A, B), 1e-3f);

  // Transposed-B variant must agree with its definition.
  const Tensor Bt = transpose2d(B);
  Tensor C2({static_cast<size_t>(M), static_cast<size_t>(N)});
  matmulTransposedB(A, Bt, C2);
  expectNear(C2, C, 1e-3f);

  // Transposed-A variant: A^T * A has shape {K, K}.
  Tensor C3({static_cast<size_t>(K), static_cast<size_t>(K)});
  matmulTransposedA(A, A, C3);
  expectNear(C3, refMatmul(transpose2d(A), A), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MatmulSweep,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(5, 7, 3), std::make_tuple(8, 8, 8),
                      std::make_tuple(1, 16, 5), std::make_tuple(13, 1, 9)));

TEST(MatmulTransposedA, PropagatesNonFiniteThroughZeroElements) {
  // ISSUE 7 satellite regression: matmulTransposedA used to skip A
  // elements equal to 0.0f, silently dropping the 0 * Inf = NaN and
  // 0 * NaN = NaN products the dense path produces. The sparse-A loop,
  // the dense matmul on the explicit transpose, and the packed fast GEMM
  // must agree elementwise on non-finite data.
  const float Inf = std::numeric_limits<float>::infinity();
  const float NaN = std::numeric_limits<float>::quiet_NaN();
  const Tensor A({2, 3}, {0.0f, 1.0f, 0.0f, 2.0f, 0.0f, -1.0f});
  const Tensor B({2, 4}, {Inf, 1.0f, NaN, 2.0f, 3.0f, -Inf, 4.0f, NaN});

  // Sparse-A path under test: C = A^T * B.
  Tensor Sparse({3, 4});
  matmulTransposedA(A, B, Sparse);

  // Dense path: the same product via an explicit transpose.
  const Tensor At = transpose2d(A);
  Tensor Dense({3, 4});
  matmul(At, B, Dense);

  // Packed fast-kernel path.
  std::vector<float> Pack(gemmPackedSize(3, 2));
  gemmPackA(At.data(), 3, 2, Pack.data());
  Tensor Fast({3, 4});
  gemmPacked(Pack.data(), B.data(), Fast.data(), 3, 2, 4, GemmEpilogue{});

  bool SawNaN = false;
  for (size_t I = 0; I != Dense.numel(); ++I) {
    if (std::isnan(Dense[I])) {
      SawNaN = true;
      EXPECT_TRUE(std::isnan(Sparse[I])) << "at " << I;
      EXPECT_TRUE(std::isnan(Fast[I])) << "at " << I;
    } else {
      EXPECT_EQ(Sparse[I], Dense[I]) << "at " << I;
      EXPECT_EQ(Fast[I], Dense[I]) << "at " << I;
    }
  }
  EXPECT_TRUE(SawNaN) << "test data must exercise 0 * Inf";
}

TEST(Transpose2d, SwapsIndices) {
  const Tensor A({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor T = transpose2d(A);
  EXPECT_EQ(T.dim(0), 3u);
  EXPECT_EQ(T.dim(1), 2u);
  EXPECT_EQ(T.at(2, 1), 6.0f);
  EXPECT_EQ(T.at(0, 1), 4.0f);
}

TEST(ConvOutSize, StandardCases) {
  EXPECT_EQ(convOutSize(32, 3, 1, 1), 32u);
  EXPECT_EQ(convOutSize(32, 3, 2, 1), 16u);
  EXPECT_EQ(convOutSize(5, 3, 2, 1), 3u);
  EXPECT_EQ(convOutSize(4, 2, 2, 0), 2u);
  EXPECT_EQ(convOutSize(7, 7, 1, 0), 1u);
}

TEST(Im2Col, IdentityKernelExtractsPixels) {
  // 1x1 kernel, stride 1, no pad: im2col is just a reshape.
  const Tensor In({1, 2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor Cols({2, 4});
  im2col(In, 1, 1, 1, 0, Cols);
  for (size_t C = 0; C != 2; ++C)
    for (size_t P = 0; P != 4; ++P)
      EXPECT_EQ(Cols.at(C, P), In[C * 4 + P]);
}

TEST(Im2Col, ZeroPaddingProducesZeros) {
  // 3x3 kernel on a 1x1 image with pad 1: only the center tap is nonzero.
  const Tensor In({1, 1, 1, 1}, {5});
  Tensor Cols({9, 1});
  im2col(In, 3, 3, 1, 1, Cols);
  for (size_t RIdx = 0; RIdx != 9; ++RIdx)
    EXPECT_EQ(Cols.at(RIdx, 0), RIdx == 4 ? 5.0f : 0.0f);
}

TEST(Im2Col, StrideSkipsPositions) {
  // 4-wide row, kernel 2, stride 2: two output positions per row tap.
  const Tensor In({1, 1, 1, 4}, {1, 2, 3, 4});
  Tensor Cols({2, 2});
  im2col(In, 1, 2, 2, 0, Cols);
  EXPECT_EQ(Cols.at(0, 0), 1.0f);
  EXPECT_EQ(Cols.at(0, 1), 3.0f);
  EXPECT_EQ(Cols.at(1, 0), 2.0f);
  EXPECT_EQ(Cols.at(1, 1), 4.0f);
}

TEST(Col2Im, IsAdjointOfIm2Col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
  // property that makes conv backward correct.
  Rng R(99);
  const size_t N = 2, C = 3, H = 5, W = 4, K = 3, Stride = 2, Pad = 1;
  const size_t OH = convOutSize(H, K, Stride, Pad);
  const size_t OW = convOutSize(W, K, Stride, Pad);
  const Tensor X = Tensor::randn({N, C, H, W}, R);
  const Tensor Y = Tensor::randn({C * K * K, N * OH * OW}, R);

  Tensor Xc({C * K * K, N * OH * OW});
  im2col(X, K, K, Stride, Pad, Xc);
  double Lhs = 0.0;
  for (size_t I = 0; I != Xc.numel(); ++I)
    Lhs += static_cast<double>(Xc[I]) * Y[I];

  Tensor Yi({N, C, H, W});
  col2im(Y, N, C, H, W, K, K, Stride, Pad, Yi);
  double Rhs = 0.0;
  for (size_t I = 0; I != X.numel(); ++I)
    Rhs += static_cast<double>(X[I]) * Yi[I];

  EXPECT_NEAR(Lhs, Rhs, 1e-2);
}

TEST(Softmax, SumsToOneAndPreservesOrder) {
  Tensor T({4}, {1.0f, 3.0f, 2.0f, -1.0f});
  softmaxInPlace(T);
  float Sum = 0.0f;
  for (size_t I = 0; I != 4; ++I) {
    EXPECT_GT(T[I], 0.0f);
    Sum += T[I];
  }
  EXPECT_NEAR(Sum, 1.0f, 1e-6f);
  EXPECT_GT(T[1], T[2]);
  EXPECT_GT(T[2], T[0]);
  EXPECT_GT(T[0], T[3]);
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  Tensor T({2}, {1000.0f, 1001.0f});
  softmaxInPlace(T);
  EXPECT_FALSE(std::isnan(T[0]));
  EXPECT_NEAR(T[0] + T[1], 1.0f, 1e-6f);
  EXPECT_GT(T[1], T[0]);
}

TEST(Softmax, RowwiseOnRank2) {
  Tensor T({2, 2}, {0.0f, 0.0f, 10.0f, 0.0f});
  softmaxInPlace(T);
  EXPECT_NEAR(T.at(0, 0), 0.5f, 1e-6f);
  EXPECT_GT(T.at(1, 0), 0.99f);
}

TEST(LogSoftmax, MatchesLogOfSoftmax) {
  const Tensor Logits({3}, {0.5f, -1.0f, 2.0f});
  Tensor Probs = Logits;
  softmaxInPlace(Probs);
  const Tensor LogP = logSoftmax(Logits);
  for (size_t I = 0; I != 3; ++I)
    EXPECT_NEAR(LogP[I], std::log(Probs[I]), 1e-5f);
}
