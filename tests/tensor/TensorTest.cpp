//===- tests/tensor/TensorTest.cpp - Tensor unit tests ------------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tensor/Tensor.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace oppsla;

TEST(Shape, RankNumelAndEquality) {
  const Shape S({2, 3, 4});
  EXPECT_EQ(S.rank(), 3u);
  EXPECT_EQ(S.numel(), 24u);
  EXPECT_EQ(S[1], 3u);
  EXPECT_EQ(S, Shape({2, 3, 4}));
  EXPECT_NE(S, Shape({2, 3}));
  EXPECT_NE(S, Shape({2, 3, 5}));
}

TEST(Shape, EmptyShapeIsScalarLike) {
  const Shape S;
  EXPECT_EQ(S.rank(), 0u);
  EXPECT_EQ(S.numel(), 1u);
}

TEST(Shape, StrRendering) {
  EXPECT_EQ(Shape({1, 3, 32, 32}).str(), "[1, 3, 32, 32]");
  EXPECT_EQ(Shape({}).str(), "[]");
}

TEST(Tensor, ZeroInitialized) {
  const Tensor T({2, 2});
  EXPECT_EQ(T.numel(), 4u);
  for (size_t I = 0; I != T.numel(); ++I)
    EXPECT_EQ(T[I], 0.0f);
}

TEST(Tensor, Rank2Access) {
  Tensor T({2, 3});
  T.at(1, 2) = 5.0f;
  T.at(0, 0) = 1.0f;
  EXPECT_EQ(T[5], 5.0f);
  EXPECT_EQ(T[0], 1.0f);
  EXPECT_EQ(T.at(1, 2), 5.0f);
}

TEST(Tensor, Rank4NCHWAccess) {
  Tensor T({2, 3, 4, 5});
  T.at(1, 2, 3, 4) = 7.0f;
  // Flat index: ((1*3+2)*4+3)*5+4 = 119.
  EXPECT_EQ(T[119], 7.0f);
}

TEST(Tensor, FillAndZero) {
  Tensor T({3});
  T.fill(2.5f);
  EXPECT_EQ(T.sum(), 7.5f);
  T.zero();
  EXPECT_EQ(T.sum(), 0.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor T({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor R = T.reshaped({3, 2});
  EXPECT_EQ(R.rank(), 2u);
  EXPECT_EQ(R.dim(0), 3u);
  EXPECT_EQ(R.at(2, 1), 6.0f);
}

TEST(Tensor, ElementwiseInPlaceOps) {
  Tensor A({3}, {1, 2, 3});
  const Tensor B({3}, {10, 20, 30});
  A += B;
  EXPECT_EQ(A[2], 33.0f);
  A -= B;
  EXPECT_EQ(A[0], 1.0f);
  A *= 2.0f;
  EXPECT_EQ(A[1], 4.0f);
  A.addScaled(B, 0.5f);
  EXPECT_EQ(A[0], 7.0f);
}

TEST(Tensor, Reductions) {
  const Tensor T({4}, {3, -1, 7, 2});
  EXPECT_EQ(T.sum(), 11.0f);
  EXPECT_EQ(T.maxElement(), 7.0f);
  EXPECT_EQ(T.argmax(), 2u);
  EXPECT_FLOAT_EQ(T.meanElement(), 2.75f);
  EXPECT_FLOAT_EQ(T.squaredNorm(), 9 + 1 + 49 + 4);
}

TEST(Tensor, ArgmaxTakesFirstOnTies) {
  const Tensor T({3}, {5, 5, 5});
  EXPECT_EQ(T.argmax(), 0u);
}

TEST(Tensor, FullFactory) {
  const Tensor T = Tensor::full({2, 2}, 3.0f);
  EXPECT_EQ(T.sum(), 12.0f);
}

TEST(Tensor, RandnDeterministicGivenRng) {
  Rng A(5), B(5);
  const Tensor X = Tensor::randn({10}, A);
  const Tensor Y = Tensor::randn({10}, B);
  for (size_t I = 0; I != 10; ++I)
    EXPECT_EQ(X[I], Y[I]);
}

TEST(Tensor, RandnRoughMoments) {
  Rng R(6);
  const Tensor T = Tensor::randn({10000}, R, 2.0f);
  EXPECT_NEAR(T.meanElement(), 0.0f, 0.1f);
  EXPECT_NEAR(T.squaredNorm() / 10000.0f, 4.0f, 0.3f);
}

TEST(Tensor, RandRange) {
  Rng R(7);
  const Tensor T = Tensor::rand({1000}, R, -1.0f, 1.0f);
  for (size_t I = 0; I != T.numel(); ++I) {
    EXPECT_GE(T[I], -1.0f);
    EXPECT_LT(T[I], 1.0f);
  }
}

TEST(Tensor, ConstructFromData) {
  const Tensor T({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(T.at(1, 0), 3.0f);
  EXPECT_FALSE(T.empty());
  EXPECT_TRUE(Tensor().empty());
}
