//===- tests/data/ImageDrawTest.cpp - Image & drawing tests -------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "data/Draw.h"
#include "data/Image.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace oppsla;

//===----------------------------------------------------------------------===//
// Pixel & Image
//===----------------------------------------------------------------------===//

TEST(Pixel, L1DistanceAndChannels) {
  const Pixel A{0.1f, 0.5f, 0.9f};
  const Pixel B{0.2f, 0.3f, 0.9f};
  EXPECT_NEAR(A.l1Distance(B), 0.3f, 1e-6f);
  EXPECT_FLOAT_EQ(A.maxChannel(), 0.9f);
  EXPECT_FLOAT_EQ(A.minChannel(), 0.1f);
  EXPECT_FLOAT_EQ(A.avgChannel(), 0.5f);
  EXPECT_EQ(A, A);
  EXPECT_FALSE(A == B);
}

TEST(Image, PixelGetSet) {
  Image Img(4, 6);
  EXPECT_EQ(Img.height(), 4u);
  EXPECT_EQ(Img.width(), 6u);
  EXPECT_EQ(Img.numPixels(), 24u);
  Img.setPixel(2, 5, Pixel{0.1f, 0.2f, 0.3f});
  const Pixel P = Img.pixel(2, 5);
  EXPECT_FLOAT_EQ(P.R, 0.1f);
  EXPECT_FLOAT_EQ(P.G, 0.2f);
  EXPECT_FLOAT_EQ(P.B, 0.3f);
}

TEST(Image, WithPixelIsNonDestructive) {
  Image Img(2, 2);
  const Image Out = Img.withPixel(1, 1, Pixel{1.0f, 1.0f, 1.0f});
  EXPECT_EQ(Img.pixel(1, 1).R, 0.0f);
  EXPECT_EQ(Out.pixel(1, 1).R, 1.0f);
  EXPECT_EQ(Out.pixel(0, 0).R, 0.0f);
}

TEST(Image, ClampBoundsChannels) {
  Image Img(1, 2);
  Img.setPixel(0, 0, Pixel{-0.5f, 0.5f, 1.5f});
  Img.clamp();
  const Pixel P = Img.pixel(0, 0);
  EXPECT_EQ(P.R, 0.0f);
  EXPECT_EQ(P.G, 0.5f);
  EXPECT_EQ(P.B, 1.0f);
}

TEST(Image, TensorRoundTrip) {
  Rng R(1);
  Image Img(3, 5);
  for (float &V : Img.raw())
    V = R.uniformF();
  const Tensor T = Img.toTensor();
  EXPECT_EQ(T.shape(), Shape({1, 3, 3, 5}));
  const Image Back = Image::fromTensor(T);
  ASSERT_EQ(Back.raw().size(), Img.raw().size());
  for (size_t I = 0; I != Img.raw().size(); ++I)
    EXPECT_EQ(Back.raw()[I], Img.raw()[I]);
}

TEST(Image, TensorLayoutIsChannelPlanes) {
  Image Img(1, 2);
  Img.setPixel(0, 0, Pixel{0.1f, 0.2f, 0.3f});
  Img.setPixel(0, 1, Pixel{0.4f, 0.5f, 0.6f});
  const Tensor T = Img.toTensor();
  // NCHW: R plane first.
  EXPECT_FLOAT_EQ(T[0], 0.1f);
  EXPECT_FLOAT_EQ(T[1], 0.4f);
  EXPECT_FLOAT_EQ(T[2], 0.2f);
  EXPECT_FLOAT_EQ(T[5], 0.6f);
}

TEST(Dataset, FilterByClass) {
  Dataset DS;
  DS.NumClasses = 3;
  for (size_t I = 0; I != 9; ++I) {
    DS.Images.emplace_back(2, 2);
    DS.Labels.push_back(I % 3);
  }
  const Dataset OnlyOnes = DS.filterByClass(1);
  EXPECT_EQ(OnlyOnes.size(), 3u);
  for (size_t L : OnlyOnes.Labels)
    EXPECT_EQ(L, 1u);
  EXPECT_EQ(OnlyOnes.NumClasses, 3u);
}

TEST(Dataset, AppendConcatenates) {
  Dataset A, B;
  A.NumClasses = B.NumClasses = 2;
  A.Images.emplace_back(2, 2);
  A.Labels.push_back(0);
  B.Images.emplace_back(2, 2);
  B.Labels.push_back(1);
  A.append(B);
  EXPECT_EQ(A.size(), 2u);
  EXPECT_EQ(A.Labels[1], 1u);
}

//===----------------------------------------------------------------------===//
// Drawing primitives
//===----------------------------------------------------------------------===//

TEST(Draw, VGradientEndpoints) {
  Image Img(5, 3);
  fillVGradient(Img, Pixel{0, 0, 0}, Pixel{1, 1, 1});
  EXPECT_FLOAT_EQ(Img.pixel(0, 1).R, 0.0f);
  EXPECT_FLOAT_EQ(Img.pixel(4, 1).R, 1.0f);
  EXPECT_NEAR(Img.pixel(2, 0).R, 0.5f, 1e-6f);
}

TEST(Draw, SolidFill) {
  Image Img(3, 3);
  fillSolid(Img, Pixel{0.25f, 0.5f, 0.75f});
  for (size_t I = 0; I != 3; ++I)
    for (size_t J = 0; J != 3; ++J)
      EXPECT_FLOAT_EQ(Img.pixel(I, J).G, 0.5f);
}

TEST(Draw, DiagGradientCorners) {
  Image Img(4, 4);
  fillDiagGradient(Img, Pixel{0, 0, 0}, Pixel{1, 1, 1});
  EXPECT_FLOAT_EQ(Img.pixel(0, 0).R, 0.0f);
  EXPECT_FLOAT_EQ(Img.pixel(3, 3).R, 1.0f);
}

TEST(Draw, DiscCoversCenterNotCorners) {
  Image Img(11, 11);
  drawDisc(Img, 5, 5, 3, Pixel{1, 0, 0});
  EXPECT_FLOAT_EQ(Img.pixel(5, 5).R, 1.0f);
  EXPECT_FLOAT_EQ(Img.pixel(0, 0).R, 0.0f);
  EXPECT_FLOAT_EQ(Img.pixel(10, 10).R, 0.0f);
}

TEST(Draw, DiscClipsAtBorders) {
  Image Img(4, 4);
  drawDisc(Img, 0, 0, 10, Pixel{0, 1, 0});
  // Whole image covered; no crash on out-of-range.
  EXPECT_FLOAT_EQ(Img.pixel(3, 3).G, 1.0f);
}

TEST(Draw, RectFillsInclusiveRange) {
  Image Img(5, 5);
  drawRect(Img, 1, 1, 3, 2, Pixel{0, 0, 1});
  EXPECT_FLOAT_EQ(Img.pixel(1, 1).B, 1.0f);
  EXPECT_FLOAT_EQ(Img.pixel(3, 2).B, 1.0f);
  EXPECT_FLOAT_EQ(Img.pixel(0, 0).B, 0.0f);
  EXPECT_FLOAT_EQ(Img.pixel(4, 3).B, 0.0f);
}

TEST(Draw, RectClipsNegativeCoords) {
  Image Img(3, 3);
  drawRect(Img, -5, -5, 1, 1, Pixel{1, 1, 1});
  EXPECT_FLOAT_EQ(Img.pixel(0, 0).R, 1.0f);
  EXPECT_FLOAT_EQ(Img.pixel(2, 2).R, 0.0f);
}

TEST(Draw, RingHasHole) {
  Image Img(21, 21);
  drawRing(Img, 10, 10, 5, 8, Pixel{1, 1, 1});
  EXPECT_FLOAT_EQ(Img.pixel(10, 10).R, 0.0f) << "center is inside the hole";
  EXPECT_GT(Img.pixel(10, 16).R, 0.5f) << "radius ~6 lies on the ring";
  EXPECT_FLOAT_EQ(Img.pixel(0, 0).R, 0.0f);
}

TEST(Draw, HStripesAlternate) {
  Image Img(8, 2);
  drawHStripes(Img, 4, Pixel{1, 0, 0}, Pixel{0, 1, 0});
  EXPECT_FLOAT_EQ(Img.pixel(0, 0).R, 1.0f);
  EXPECT_FLOAT_EQ(Img.pixel(1, 0).R, 1.0f);
  EXPECT_FLOAT_EQ(Img.pixel(2, 0).G, 1.0f);
  EXPECT_FLOAT_EQ(Img.pixel(4, 0).R, 1.0f);
}

TEST(Draw, CheckerAlternates) {
  Image Img(4, 4);
  drawChecker(Img, 2, Pixel{1, 1, 1}, Pixel{0, 0, 0});
  EXPECT_FLOAT_EQ(Img.pixel(0, 0).R, 1.0f);
  EXPECT_FLOAT_EQ(Img.pixel(0, 2).R, 0.0f);
  EXPECT_FLOAT_EQ(Img.pixel(2, 2).R, 1.0f);
}

TEST(Draw, GaussianNoiseHasRequestedSpread) {
  Image Img(32, 32);
  fillSolid(Img, Pixel{0.5f, 0.5f, 0.5f});
  Rng R(9);
  addGaussianNoise(Img, 0.1, R);
  double Sum = 0.0, SqSum = 0.0;
  for (float V : Img.raw()) {
    Sum += V;
    SqSum += static_cast<double>(V) * V;
  }
  const double N = static_cast<double>(Img.raw().size());
  const double Mean = Sum / N;
  EXPECT_NEAR(Mean, 0.5, 0.01);
  EXPECT_NEAR(std::sqrt(SqSum / N - Mean * Mean), 0.1, 0.01);
}

TEST(Draw, AdjustAppliesGainAndBias) {
  Image Img(1, 1);
  Img.setPixel(0, 0, Pixel{0.5f, 0.5f, 0.5f});
  adjust(Img, 2.0f, -0.25f);
  EXPECT_FLOAT_EQ(Img.pixel(0, 0).R, 0.75f);
}
