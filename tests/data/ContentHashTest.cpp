//===- tests/data/ContentHashTest.cpp - Image::contentHash properties --------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Property tests for the hash the engine's ScoreCache (and the per-run RNG
// derivation) keys on: stable across copies, sensitive to every single
// pixel channel, byte-exact, and shape-aware.
//
//===----------------------------------------------------------------------===//

#include "data/Image.h"

#include "TestUtil.h"
#include <gtest/gtest.h>

using namespace oppsla;
using test::gradientImage;
using test::randomImage;

TEST(ContentHash, StableAcrossCopies) {
  const Image A = randomImage(8, 6, 0x11);
  const Image B = A;
  Image C(8, 6);
  C = A;
  EXPECT_EQ(A.contentHash(), B.contentHash());
  EXPECT_EQ(A.contentHash(), C.contentHash());
  // And across repeated evaluation.
  EXPECT_EQ(A.contentHash(), A.contentHash());
}

TEST(ContentHash, EqualContentEqualHash) {
  const Image A = gradientImage(5, 7);
  const Image B = gradientImage(5, 7);
  EXPECT_EQ(A.contentHash(), B.contentHash());
}

TEST(ContentHash, AnySingleChannelChangeAltersHash) {
  const Image Base = gradientImage(4, 4);
  const uint64_t H0 = Base.contentHash();
  for (size_t I = 0; I != Base.raw().size(); ++I) {
    Image Mut = Base;
    Mut.raw()[I] += 0.25f;
    EXPECT_NE(Mut.contentHash(), H0) << "channel index " << I;
  }
}

TEST(ContentHash, AnySinglePixelChangeAltersHash) {
  const Image Base = randomImage(6, 6, 0x77);
  const uint64_t H0 = Base.contentHash();
  for (size_t R = 0; R != 6; ++R)
    for (size_t C = 0; C != 6; ++C) {
      Image Mut = Base;
      Pixel P = Mut.pixel(R, C);
      P.G = P.G < 0.5f ? P.G + 0.3f : P.G - 0.3f;
      Mut.setPixel(R, C, P);
      EXPECT_NE(Mut.contentHash(), H0) << "pixel (" << R << "," << C << ")";
    }
}

TEST(ContentHash, ByteExactDistinguishesSignedZero) {
  Image A(2, 2), B(2, 2);
  for (float &V : A.raw())
    V = 0.0f;
  for (float &V : B.raw())
    V = 0.0f;
  B.raw()[5] = -0.0f; // same float value, different bit pattern
  EXPECT_NE(A.contentHash(), B.contentHash());
}

TEST(ContentHash, DimensionsFoldedIn) {
  // Same 18 floats viewed as 2x3 and 3x2 must hash apart.
  Image A(2, 3), B(3, 2);
  for (size_t I = 0; I != A.raw().size(); ++I) {
    A.raw()[I] = static_cast<float>(I) * 0.05f;
    B.raw()[I] = static_cast<float>(I) * 0.05f;
  }
  EXPECT_NE(A.contentHash(), B.contentHash());
}
