//===- tests/data/SyntheticTest.cpp - Synthetic dataset tests -----------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "data/Synthetic.h"

#include <gtest/gtest.h>

#include <map>

using namespace oppsla;

TEST(Synthetic, TaskMetadata) {
  EXPECT_STREQ(taskName(TaskKind::CifarLike), "cifar-like");
  EXPECT_STREQ(taskName(TaskKind::ImageNetLike), "imagenet-like");
  EXPECT_EQ(taskDefaultSide(TaskKind::CifarLike), 32u);
  EXPECT_EQ(taskDefaultSide(TaskKind::ImageNetLike), 48u);
}

TEST(Synthetic, DeterministicGivenSeed) {
  const Image A = generateSyntheticImage(TaskKind::CifarLike, 3, 123, 16);
  const Image B = generateSyntheticImage(TaskKind::CifarLike, 3, 123, 16);
  ASSERT_EQ(A.raw().size(), B.raw().size());
  for (size_t I = 0; I != A.raw().size(); ++I)
    EXPECT_EQ(A.raw()[I], B.raw()[I]);
}

TEST(Synthetic, DifferentSeedsDiffer) {
  const Image A = generateSyntheticImage(TaskKind::CifarLike, 3, 1, 16);
  const Image B = generateSyntheticImage(TaskKind::CifarLike, 3, 2, 16);
  size_t Diff = 0;
  for (size_t I = 0; I != A.raw().size(); ++I)
    Diff += A.raw()[I] != B.raw()[I];
  EXPECT_GT(Diff, A.raw().size() / 2);
}

TEST(Synthetic, ValuesInUnitInterval) {
  for (size_t Label = 0; Label != 10; ++Label) {
    const Image Img =
        generateSyntheticImage(TaskKind::ImageNetLike, Label, Label * 7, 24);
    for (float V : Img.raw()) {
      ASSERT_GE(V, 0.0f);
      ASSERT_LE(V, 1.0f);
    }
  }
}

TEST(Synthetic, RespectsRequestedSide) {
  const Image Img = generateSyntheticImage(TaskKind::CifarLike, 0, 5, 20);
  EXPECT_EQ(Img.height(), 20u);
  EXPECT_EQ(Img.width(), 20u);
  const Image Def = generateSyntheticImage(TaskKind::CifarLike, 0, 5, 0);
  EXPECT_EQ(Def.height(), 32u);
}

TEST(Synthetic, BalancedDataset) {
  const Dataset DS = generateSynthetic(TaskKind::CifarLike, 5, 99, 16, 4);
  EXPECT_EQ(DS.size(), 20u);
  EXPECT_EQ(DS.NumClasses, 4u);
  std::map<size_t, size_t> Counts;
  for (size_t L : DS.Labels)
    ++Counts[L];
  ASSERT_EQ(Counts.size(), 4u);
  for (const auto &[Label, Count] : Counts) {
    EXPECT_LT(Label, 4u);
    EXPECT_EQ(Count, 5u);
  }
}

TEST(Synthetic, DatasetDeterministicGivenSeed) {
  const Dataset A = generateSynthetic(TaskKind::ImageNetLike, 2, 7, 16, 3);
  const Dataset B = generateSynthetic(TaskKind::ImageNetLike, 2, 7, 16, 3);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I)
    EXPECT_EQ(A.Images[I].raw(), B.Images[I].raw());
}

TEST(Synthetic, ClassesAreStatisticallyDistinct) {
  // Average images of two different classes must differ noticeably more
  // than two halves of the same class.
  auto MeanImage = [](TaskKind Kind, size_t Label, uint64_t Base) {
    std::vector<double> Acc(16 * 16 * 3, 0.0);
    const int N = 24;
    for (int I = 0; I != N; ++I) {
      const Image Img =
          generateSyntheticImage(Kind, Label, Base + I * 31, 16);
      for (size_t J = 0; J != Acc.size(); ++J)
        Acc[J] += Img.raw()[J];
    }
    for (double &V : Acc)
      V /= N;
    return Acc;
  };
  auto L2 = [](const std::vector<double> &A, const std::vector<double> &B) {
    double D = 0.0;
    for (size_t I = 0; I != A.size(); ++I)
      D += (A[I] - B[I]) * (A[I] - B[I]);
    return D;
  };
  const auto Class0a = MeanImage(TaskKind::CifarLike, 0, 1000);
  const auto Class0b = MeanImage(TaskKind::CifarLike, 0, 9000);
  const auto Class6 = MeanImage(TaskKind::CifarLike, 6, 1000);
  EXPECT_GT(L2(Class0a, Class6), 4.0 * L2(Class0a, Class0b))
      << "between-class distance must dominate within-class distance";
}

class SyntheticLabelSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(SyntheticLabelSweep, EveryClassGeneratesBothTasks) {
  const size_t Label = GetParam();
  const Image A =
      generateSyntheticImage(TaskKind::CifarLike, Label, 5 + Label, 16);
  const Image B =
      generateSyntheticImage(TaskKind::ImageNetLike, Label, 5 + Label, 16);
  EXPECT_EQ(A.numPixels(), 256u);
  EXPECT_EQ(B.numPixels(), 256u);
  // Images are non-degenerate (not a constant fill).
  float MinV = 2.0f, MaxV = -1.0f;
  for (float V : A.raw()) {
    MinV = std::min(MinV, V);
    MaxV = std::max(MaxV, V);
  }
  EXPECT_GT(MaxV - MinV, 0.05f);
}

INSTANTIATE_TEST_SUITE_P(AllLabels, SyntheticLabelSweep,
                         ::testing::Range<size_t>(0, 10));
