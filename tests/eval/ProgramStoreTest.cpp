//===- tests/eval/ProgramStoreTest.cpp - Program store tests ------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "eval/ProgramStore.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace oppsla;

namespace {

ProgramStoreKey testKey() {
  ProgramStoreKey K;
  K.VictimStem = "MiniVGG_cifar_s1";
  K.Label = 3;
  K.MaxIter = 210;
  K.QueryCap = 4096;
  K.Seed = 424242;
  K.Islands = 4;
  K.ExchangeInterval = 25;
  K.TrainPerClass = 16;
  return K;
}

Program testProgram(double Base) {
  Program P;
  for (size_t I = 0; I != P.Conds.size(); ++I) {
    P.Conds[I].Func = static_cast<FuncKind>(I % NumFuncKinds);
    P.Conds[I].Source =
        I % 2 ? PixelSource::Perturbation : PixelSource::Original;
    P.Conds[I].Cmp = I % 2 ? CmpKind::Less : CmpKind::Greater;
    // An awkward threshold that only survives a %.17g round trip.
    P.Conds[I].Threshold = Base + 1.0 / 3.0 + I * 0.1234567890123456789;
  }
  return P;
}

std::vector<StoredProgram> testPortfolio() {
  std::vector<StoredProgram> Portfolio;
  Portfolio.push_back({testProgram(0.1), 12.5, 3, 4});
  Portfolio.push_back({testProgram(0.1), 12.5, 3, 4});
  Portfolio.push_back({testProgram(0.4), 30.0, 4, 4});
  return Portfolio;
}

/// A scratch store rooted under the test's working directory.
class ProgramStoreTest : public ::testing::Test {
protected:
  void SetUp() override {
    Root = "program_store_test";
    std::filesystem::remove_all(Root);
  }
  void TearDown() override { std::filesystem::remove_all(Root); }
  std::string Root;
};

} // namespace

TEST(ProgramStoreKey, CanonicalCoversEveryField) {
  const ProgramStoreKey Base = testKey();
  auto Mutate = [](ProgramStoreKey K, int Field) {
    switch (Field) {
    case 0: K.Dsl += 1; break;
    case 1: K.VictimStem += "x"; break;
    case 2: K.Label += 1; break;
    case 3: K.MaxIter += 1; break;
    case 4: K.Beta += 0.5; break;
    case 5: K.QueryCap += 1; break;
    case 6: K.Seed += 1; break;
    case 7: K.Islands += 1; break;
    case 8: K.ExchangeInterval += 1; break;
    default: K.TrainPerClass += 1; break;
    }
    return K;
  };
  for (int Field = 0; Field != 10; ++Field) {
    const ProgramStoreKey M = Mutate(Base, Field);
    EXPECT_NE(M.canonical(), Base.canonical()) << "field " << Field;
    EXPECT_NE(M.hash(), Base.hash()) << "field " << Field;
  }
  // The key is a pure value: equal fields, equal identity.
  EXPECT_EQ(testKey().canonical(), Base.canonical());
  EXPECT_EQ(testKey().hash(), Base.hash());
}

TEST(ProgramStoreKey, ExchangeIntervalIrrelevantWithoutIslands) {
  // Islands <= 1 never exchanges, so the interval must not fragment the
  // key space for the legacy chain.
  ProgramStoreKey A = testKey();
  A.Islands = 1;
  A.ExchangeInterval = 25;
  ProgramStoreKey B = A;
  B.ExchangeInterval = 7;
  EXPECT_EQ(A.canonical(), B.canonical());
  EXPECT_EQ(A.hash(), B.hash());
}

TEST(ProgramStoreText, ExactRoundTrip) {
  const Program P = testProgram(0.7);
  Program Q;
  ASSERT_TRUE(programFromStoreText(programToStoreText(P), Q));
  for (size_t I = 0; I != 4; ++I) {
    EXPECT_EQ(P.Conds[I].Func, Q.Conds[I].Func);
    EXPECT_EQ(P.Conds[I].Source, Q.Conds[I].Source);
    EXPECT_EQ(P.Conds[I].Cmp, Q.Conds[I].Cmp);
    EXPECT_EQ(P.Conds[I].Threshold, Q.Conds[I].Threshold)
        << "thresholds must round-trip bit-exactly";
  }
}

TEST(ProgramStoreText, RejectsMalformed) {
  Program Q;
  EXPECT_FALSE(programFromStoreText("", Q));
  EXPECT_FALSE(programFromStoreText("0 0 0 0.5\n", Q)) << "too few lines";
  EXPECT_FALSE(
      programFromStoreText("99 0 0 0.5\n0 0 0 1\n0 0 0 1\n0 0 0 1\n", Q))
      << "out-of-range function kind";
}

TEST(SelectFromPortfolio, MinAvgQueriesFirstWins) {
  std::vector<StoredProgram> Portfolio;
  Portfolio.push_back({testProgram(0.1), 20.0, 2, 4});
  Portfolio.push_back({testProgram(0.2), 10.0, 1, 4});
  Portfolio.push_back({testProgram(0.3), 10.0, 3, 4});
  Portfolio.push_back({testProgram(0.4), 0.0, 0, 4}); // never succeeded
  EXPECT_EQ(&selectFromPortfolio(Portfolio), &Portfolio[1])
      << "lowest avg queries among successes, ties to the earliest";
  // Nothing succeeded: fall back to entry 0, the run's own pick.
  std::vector<StoredProgram> AllFailed;
  AllFailed.push_back({testProgram(0.5), 0.0, 0, 4});
  AllFailed.push_back({testProgram(0.6), 0.0, 0, 4});
  EXPECT_EQ(&selectFromPortfolio(AllFailed), &AllFailed[0]);
}

TEST_F(ProgramStoreTest, SaveLoadRoundTrip) {
  ProgramStore Store(Root);
  const ProgramStoreKey K = testKey();
  const auto Saved = testPortfolio();
  ASSERT_TRUE(Store.save(K, Saved));

  std::vector<StoredProgram> Loaded;
  ASSERT_TRUE(Store.load(K, Loaded));
  ASSERT_EQ(Loaded.size(), Saved.size());
  for (size_t I = 0; I != Saved.size(); ++I) {
    EXPECT_EQ(programToStoreText(Loaded[I].P), programToStoreText(Saved[I].P));
    EXPECT_EQ(Loaded[I].AvgQueries, Saved[I].AvgQueries)
        << "stats must round-trip bit-exactly for portfolio stability";
    EXPECT_EQ(Loaded[I].Successes, Saved[I].Successes);
    EXPECT_EQ(Loaded[I].Attacks, Saved[I].Attacks);
  }
}

TEST_F(ProgramStoreTest, MissOnAbsentEntry) {
  ProgramStore Store(Root);
  std::vector<StoredProgram> Loaded;
  EXPECT_FALSE(Store.load(testKey(), Loaded));
}

TEST_F(ProgramStoreTest, CorruptedEntryDegradesToMiss) {
  ProgramStore Store(Root);
  const ProgramStoreKey K = testKey();
  ASSERT_TRUE(Store.save(K, testPortfolio()));

  // Flip one payload byte mid-file; the wire layer's record CRC must
  // reject the whole entry and the store must answer "miss", never a
  // wrong program.
  const std::string Path = Store.entryPath(K);
  std::fstream F(Path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(F.good());
  F.seekg(0, std::ios::end);
  const auto Size = static_cast<std::streamoff>(F.tellg());
  ASSERT_GT(Size, 64);
  F.seekg(Size / 2);
  char C = 0;
  F.read(&C, 1);
  F.seekp(Size / 2);
  C = static_cast<char>(C ^ 0x5a);
  F.write(&C, 1);
  F.close();

  std::vector<StoredProgram> Loaded;
  EXPECT_FALSE(Store.load(K, Loaded));
}

TEST_F(ProgramStoreTest, KeyCollisionDegradesToMiss) {
  // Simulate a 64-bit hash collision: an entry sitting at K2's path but
  // written for K1. The byte-verified canonical key must reject it.
  ProgramStore Store(Root);
  const ProgramStoreKey K1 = testKey();
  ProgramStoreKey K2 = testKey();
  K2.Seed += 1;
  ASSERT_TRUE(Store.save(K1, testPortfolio()));
  std::filesystem::copy_file(Store.entryPath(K1), Store.entryPath(K2));
  std::vector<StoredProgram> Loaded;
  EXPECT_FALSE(Store.load(K2, Loaded));
  EXPECT_TRUE(Store.load(K1, Loaded)) << "the honest entry still hits";
}
