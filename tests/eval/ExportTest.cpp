//===- tests/eval/ExportTest.cpp - CSV export tests ---------------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "eval/Export.h"

#include "../JsonTestUtil.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

using namespace oppsla;
using namespace oppsla::test;

namespace {

std::string tempPath(const char *Name) {
  return (std::filesystem::temp_directory_path() / Name).string();
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

std::vector<AttackRunLog> sampleLogs() {
  std::vector<AttackRunLog> Logs(4);
  Logs[0] = {0, false, true, 10};
  Logs[1] = {1, false, false, 4096};
  Logs[2] = {2, true, false, 1};
  Logs[3] = {0, false, true, 300};
  return Logs;
}

} // namespace

TEST(Export, RunLogsCsvContents) {
  const std::string Path = tempPath("oppsla_runlogs.csv");
  ASSERT_TRUE(exportRunLogsCsv(sampleLogs(), Path));
  const std::string Csv = slurp(Path);
  EXPECT_NE(Csv.find("label,outcome,queries\n"), std::string::npos);
  EXPECT_NE(Csv.find("0,success,10\n"), std::string::npos);
  EXPECT_NE(Csv.find("1,failure,4096\n"), std::string::npos);
  EXPECT_NE(Csv.find("2,discarded,1\n"), std::string::npos);
  std::remove(Path.c_str());
}

TEST(Export, RunLogsCsvFailsOnBadPath) {
  EXPECT_FALSE(exportRunLogsCsv(sampleLogs(), "/nonexistent/dir/x.csv"));
}

TEST(Export, SuccessCurveIsMonotoneAndEndsAtFinalRate) {
  const std::string Path = tempPath("oppsla_curve.csv");
  const auto Logs = sampleLogs();
  ASSERT_TRUE(exportSuccessCurveCsv(Logs, 4096, Path));
  std::ifstream In(Path);
  std::string Header;
  std::getline(In, Header);
  EXPECT_EQ(Header, "budget,success_rate");
  double PrevRate = -1.0;
  uint64_t PrevBudget = 0;
  uint64_t Budget = 0;
  double Rate = 0.0;
  char Comma;
  size_t Rows = 0;
  while (In >> Budget >> Comma >> Rate) {
    EXPECT_GT(Budget, PrevBudget);
    EXPECT_GE(Rate, PrevRate) << "success(q) must be non-decreasing";
    PrevBudget = Budget;
    PrevRate = Rate;
    ++Rows;
  }
  EXPECT_GT(Rows, 5u);
  // Final rate: 2 successes of 3 non-discarded attacks.
  EXPECT_NEAR(PrevRate, 2.0 / 3.0, 1e-5); // CSV carries 6 decimals
  std::remove(Path.c_str());
}

TEST(Export, SuccessCurveIncludesExactSuccessTimes) {
  const std::string Path = tempPath("oppsla_curve2.csv");
  ASSERT_TRUE(exportSuccessCurveCsv(sampleLogs(), 4096, Path));
  const std::string Csv = slurp(Path);
  EXPECT_NE(Csv.find("\n10,"), std::string::npos);
  EXPECT_NE(Csv.find("\n300,"), std::string::npos);
  std::remove(Path.c_str());
}

TEST(Export, RunLogsJsonlParsesBack) {
  const std::string Path = tempPath("oppsla_runlogs.jsonl");
  ASSERT_TRUE(exportRunLogsJsonl(sampleLogs(), Path));
  std::ifstream In(Path);
  std::string Line;
  std::vector<std::map<std::string, std::string>> Rows;
  while (std::getline(In, Line)) {
    std::map<std::string, std::string> F;
    ASSERT_TRUE(parseJsonObject(Line, F)) << Line;
    Rows.push_back(std::move(F));
  }
  ASSERT_EQ(Rows.size(), 4u);
  EXPECT_EQ(Rows[0]["image"], "0");
  EXPECT_EQ(Rows[0]["label"], "0");
  EXPECT_EQ(Rows[0]["outcome"], "success");
  EXPECT_EQ(Rows[0]["queries"], "10");
  EXPECT_EQ(Rows[1]["outcome"], "failure");
  EXPECT_EQ(Rows[2]["outcome"], "discarded");
  EXPECT_EQ(Rows[3]["image"], "3");
  EXPECT_FALSE(exportRunLogsJsonl(sampleLogs(), "/nonexistent/dir/x.jsonl"));
  std::remove(Path.c_str());
}

TEST(Export, SynthesisTraceJsonlParsesBack) {
  std::vector<SynthesisStep> Steps(2);
  Steps[0].Iteration = 0;
  Steps[0].Accepted = true;
  Steps[0].Current = paperExampleProgram();
  Steps[0].AvgQueries = 12.5;
  Steps[0].CumulativeQueries = 100;
  Steps[1].Iteration = 1;
  Steps[1].Accepted = false;
  Steps[1].Current = allFalseProgram();
  Steps[1].AvgQueries = 9.75;
  Steps[1].CumulativeQueries = 240;

  const std::string Path = tempPath("oppsla_synth_trace.jsonl");
  ASSERT_TRUE(exportSynthesisTraceJsonl(Steps, Path));
  std::ifstream In(Path);
  std::string Line;
  std::vector<std::map<std::string, std::string>> Rows;
  while (std::getline(In, Line)) {
    std::map<std::string, std::string> F;
    ASSERT_TRUE(parseJsonObject(Line, F)) << Line;
    Rows.push_back(std::move(F));
  }
  ASSERT_EQ(Rows.size(), 2u);
  EXPECT_EQ(Rows[0]["iter"], "0");
  EXPECT_EQ(Rows[0]["accepted"], "true");
  EXPECT_EQ(Rows[0]["avg_queries"], "12.5");
  EXPECT_EQ(Rows[0]["cum_queries"], "100");
  // The program text (it contains newlines) must round-trip through the
  // JSON escaping.
  EXPECT_EQ(Rows[0]["program"], paperExampleProgram().str());
  EXPECT_EQ(Rows[1]["iter"], "1");
  EXPECT_EQ(Rows[1]["accepted"], "false");
  EXPECT_EQ(Rows[1]["program"], allFalseProgram().str());
  std::remove(Path.c_str());
}
