//===- tests/eval/ParallelEvalTest.cpp - Determinism under parallelism --------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Pins the repo's determinism contract after per-run RNG isolation
// (support/Rng.h: Rng::deriveRunSeed):
//
//   1. An attack run is a pure function of (attack seed, image) — never of
//      how many attacks ran before it (the old long-lived member Rng made
//      results depend on dataset order).
//   2. Consequently, sweeping a shuffled test set yields exactly the
//      per-image results of the unshuffled sweep, permuted; sweeping a
//      subset yields the corresponding slice.
//   3. And the parallel sweeps (--threads N) are bit-identical to serial,
//      for attacks, program sweeps, and synthesis candidate scoring.
//
//===----------------------------------------------------------------------===//

#include "attacks/RandomPairSearch.h"
#include "attacks/SparseRS.h"
#include "core/Synthesizer.h"
#include "eval/Evaluation.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

using namespace oppsla;
using namespace oppsla::test;

namespace {

/// Flips to class 1 whenever any pixel is nearly white; success/queries
/// depend on the attack's random choices, making RNG reuse visible.
FakeClassifier whitePixelVulnerable() {
  return FakeClassifier(2, [](const Image &X) {
    for (size_t I = 0; I != X.height(); ++I)
      for (size_t J = 0; J != X.width(); ++J) {
        const Pixel P = X.pixel(I, J);
        if (P.R > 0.95f && P.G > 0.95f && P.B > 0.95f)
          return std::vector<float>{0.1f, 0.9f};
      }
    return std::vector<float>{0.9f, 0.1f};
  });
}

/// A handful of distinct images (distinct content hashes -> distinct
/// per-run RNG streams), all labeled 0.
Dataset distinctImageSet(size_t Count) {
  Dataset DS;
  DS.NumClasses = 2;
  for (size_t I = 0; I != Count; ++I) {
    DS.Images.push_back(randomImage(6, 6, /*Seed=*/1000 + I));
    DS.Labels.push_back(0);
  }
  return DS;
}

bool sameLog(const AttackRunLog &A, const AttackRunLog &B) {
  return A.Label == B.Label && A.Discarded == B.Discarded &&
         A.Success == B.Success && A.Queries == B.Queries;
}

} // namespace

TEST(RngIsolation, AttackIsPureFunctionOfSeedAndImage) {
  FakeClassifier N = whitePixelVulnerable();
  SparseRS A;
  const Image X = randomImage(6, 6, 42);
  const Image Y = randomImage(6, 6, 43);

  const AttackResult First = A.attack(N, X, 0, 3000);
  // Interleave attacks on other images; with a long-lived member RNG these
  // would advance the stream and change the replay below.
  A.attack(N, Y, 0, 3000);
  A.attack(N, randomImage(6, 6, 44), 0, 3000);
  const AttackResult Replay = A.attack(N, X, 0, 3000);

  EXPECT_EQ(Replay.Success, First.Success);
  EXPECT_EQ(Replay.Queries, First.Queries);
  EXPECT_EQ(Replay.Loc.Row, First.Loc.Row);
  EXPECT_EQ(Replay.Loc.Col, First.Loc.Col);
}

TEST(RngIsolation, DistinctImagesGetDistinctStreams) {
  // Same attack, same budget, different images: the runs must not replay
  // one RNG stream (equal query counts on several distinct random images
  // would be a red flag for a shared stream reset per run).
  FakeClassifier N = whitePixelVulnerable();
  RandomPairSearch A(/*Seed=*/5);
  const Dataset DS = distinctImageSet(6);
  std::set<uint64_t> Queries;
  for (size_t I = 0; I != DS.size(); ++I)
    Queries.insert(A.attack(N, DS.Images[I], 0, Attack::Unlimited).Queries);
  EXPECT_GT(Queries.size(), 1u);
}

TEST(RngIsolation, ShuffledSweepIsAPermutationOfUnshuffled) {
  const Dataset DS = distinctImageSet(8);

  // A fixed permutation of the set.
  std::vector<size_t> Perm(DS.size());
  std::iota(Perm.begin(), Perm.end(), 0);
  Rng ShuffleRng(7);
  ShuffleRng.shuffle(Perm);

  Dataset Shuffled;
  Shuffled.NumClasses = DS.NumClasses;
  for (size_t K : Perm) {
    Shuffled.Images.push_back(DS.Images[K]);
    Shuffled.Labels.push_back(DS.Labels[K]);
  }

  FakeClassifier N1 = whitePixelVulnerable();
  SparseRS A1;
  const auto Logs = runAttackOverSet(A1, N1, DS, 3000);

  FakeClassifier N2 = whitePixelVulnerable();
  SparseRS A2;
  const auto ShuffledLogs = runAttackOverSet(A2, N2, Shuffled, 3000);

  ASSERT_EQ(ShuffledLogs.size(), Logs.size());
  for (size_t K = 0; K != Perm.size(); ++K)
    EXPECT_TRUE(sameLog(ShuffledLogs[K], Logs[Perm[K]]))
        << "position " << K << " (image " << Perm[K] << ")";
}

TEST(RngIsolation, SubsetSweepMatchesFullSweepSlice) {
  const Dataset DS = distinctImageSet(8);
  Dataset Subset;
  Subset.NumClasses = DS.NumClasses;
  for (size_t K = 3; K != 6; ++K) {
    Subset.Images.push_back(DS.Images[K]);
    Subset.Labels.push_back(DS.Labels[K]);
  }

  FakeClassifier N1 = whitePixelVulnerable();
  SparseRS A1;
  const auto Full = runAttackOverSet(A1, N1, DS, 3000);

  FakeClassifier N2 = whitePixelVulnerable();
  SparseRS A2;
  const auto Slice = runAttackOverSet(A2, N2, Subset, 3000);

  ASSERT_EQ(Slice.size(), 3u);
  for (size_t K = 0; K != 3; ++K)
    EXPECT_TRUE(sameLog(Slice[K], Full[3 + K])) << "subset position " << K;
}

//===----------------------------------------------------------------------===//
// Parallel sweeps: bit-identical to serial
//===----------------------------------------------------------------------===//

TEST(ParallelEval, AttackSweepMatchesSerialExactly) {
  const Dataset DS = distinctImageSet(10);

  FakeClassifier N1 = whitePixelVulnerable();
  SparseRS A1;
  const auto Serial = runAttackOverSet(A1, N1, DS, 3000, /*Threads=*/1);

  for (size_t Threads : {2, 4, 7}) {
    FakeClassifier N2 = whitePixelVulnerable();
    SparseRS A2;
    const auto Parallel = runAttackOverSet(A2, N2, DS, 3000, Threads);
    ASSERT_EQ(Parallel.size(), Serial.size());
    for (size_t I = 0; I != Serial.size(); ++I)
      EXPECT_TRUE(sameLog(Parallel[I], Serial[I]))
          << "threads=" << Threads << " image=" << I;
  }
}

TEST(ParallelEval, ProgramSweepMatchesSerialExactly) {
  const Dataset DS = distinctImageSet(9);
  const std::vector<Program> Programs = {paperExampleProgram(),
                                         allFalseProgram()};

  FakeClassifier N1 = whitePixelVulnerable();
  const auto Serial = runProgramsOverSet(Programs, N1, DS, 2000,
                                         /*Threads=*/1);
  FakeClassifier N2 = whitePixelVulnerable();
  const auto Parallel = runProgramsOverSet(Programs, N2, DS, 2000,
                                           /*Threads=*/4);
  ASSERT_EQ(Parallel.size(), Serial.size());
  for (size_t I = 0; I != Serial.size(); ++I)
    EXPECT_TRUE(sameLog(Parallel[I], Serial[I])) << "image " << I;
}

TEST(ParallelEval, NonCloneableClassifierFallsBackToSerial) {
  // The base Classifier::clone() returns nullptr; the sweep must still
  // produce the serial answer rather than failing.
  class NoClone : public Classifier {
  public:
    std::vector<float> scores(const Image &X) override {
      const Pixel P = X.pixel(0, 0);
      if (P.R > 0.95f && P.G > 0.95f && P.B > 0.95f)
        return {0.1f, 0.9f};
      return {0.9f, 0.1f};
    }
    size_t numClasses() const override { return 2; }
  };

  const Dataset DS = distinctImageSet(4);
  NoClone N1, N2;
  SparseRS A1, A2;
  const auto Serial = runAttackOverSet(A1, N1, DS, 500, /*Threads=*/1);
  const auto Parallel = runAttackOverSet(A2, N2, DS, 500, /*Threads=*/4);
  ASSERT_EQ(Parallel.size(), Serial.size());
  for (size_t I = 0; I != Serial.size(); ++I)
    EXPECT_TRUE(sameLog(Parallel[I], Serial[I]));
}

TEST(ParallelEval, EvaluateProgramMatchesSerialExactly) {
  const Dataset DS = distinctImageSet(11);
  const Program P = paperExampleProgram();

  FakeClassifier N1 = whitePixelVulnerable();
  const ProgramEval Serial = evaluateProgram(P, N1, DS, 1024, /*Threads=*/1);
  FakeClassifier N2 = whitePixelVulnerable();
  const ProgramEval Parallel =
      evaluateProgram(P, N2, DS, 1024, /*Threads=*/4);

  EXPECT_EQ(Parallel.Successes, Serial.Successes);
  EXPECT_EQ(Parallel.Attacks, Serial.Attacks);
  EXPECT_EQ(Parallel.TotalQueries, Serial.TotalQueries);
  // The average is a floating-point sum reduced in index order on both
  // paths, so even it must match to the last bit.
  EXPECT_EQ(Parallel.AvgQueries, Serial.AvgQueries);
}

TEST(ParallelEval, SynthesisIsThreadCountInvariant) {
  const Dataset DS = distinctImageSet(5);
  SynthesisConfig Config;
  Config.MaxIter = 8;
  Config.PerImageQueryCap = 512;
  Config.Seed = 3;

  FakeClassifier N1 = whitePixelVulnerable();
  const Program Serial = synthesizeProgram(N1, DS, Config);

  Config.Threads = 4;
  FakeClassifier N2 = whitePixelVulnerable();
  const Program Parallel = synthesizeProgram(N2, DS, Config);

  for (size_t I = 0; I != 4; ++I) {
    EXPECT_EQ(Parallel.Conds[I].Func, Serial.Conds[I].Func) << "B" << I + 1;
    EXPECT_EQ(Parallel.Conds[I].Source, Serial.Conds[I].Source);
    EXPECT_EQ(Parallel.Conds[I].Cmp, Serial.Conds[I].Cmp);
    EXPECT_DOUBLE_EQ(Parallel.Conds[I].Threshold, Serial.Conds[I].Threshold);
  }
}
