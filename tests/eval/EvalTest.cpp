//===- tests/eval/EvalTest.cpp - Evaluation harness tests ---------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "attacks/SketchAttack.h"
#include "eval/Evaluation.h"
#include "eval/Experiments.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

using namespace oppsla;
using namespace oppsla::test;

namespace {

/// Class-1 images flip with a white pixel; class-0 images are robust;
/// class-2 images are misclassified outright.
FakeClassifier threeWorldClassifier() {
  return FakeClassifier(3, [](const Image &X) {
    // Class is encoded in the image's top-left pixel red channel.
    const float Tag = X.pixel(0, 0).R;
    if (Tag > 0.85f)
      return std::vector<float>{0.8f, 0.1f, 0.1f}; // class 2 tag -> pred 0
    if (Tag > 0.45f) {
      // Class-1 images flip to class 2 when any non-tag pixel goes white.
      for (size_t I = 0; I != X.height(); ++I)
        for (size_t J = 0; J != X.width(); ++J) {
          const Pixel P = X.pixel(I, J);
          if (P.R > 0.95f && P.G > 0.95f && P.B > 0.95f &&
              !(I == 0 && J == 0))
            return std::vector<float>{0.1f, 0.1f, 0.8f};
        }
      return std::vector<float>{0.1f, 0.8f, 0.1f}; // class 1
    }
    return std::vector<float>{0.8f, 0.1f, 0.1f}; // class 0: robust
  });
}

Dataset threeWorldDataset() {
  Dataset DS;
  DS.NumClasses = 3;
  for (size_t Label = 0; Label != 3; ++Label) {
    for (int I = 0; I != 2; ++I) {
      Image Img(4, 4);
      for (float &V : Img.raw())
        V = 0.3f;
      Img.setPixel(0, 0, Pixel{Label == 0   ? 0.3f
                               : Label == 1 ? 0.6f
                                            : 0.9f,
                               0.3f, 0.3f});
      DS.Images.push_back(Img);
      DS.Labels.push_back(Label);
    }
  }
  return DS;
}

} // namespace

TEST(Evaluation, RunAttackOverSetClassifiesOutcomes) {
  FakeClassifier N = threeWorldClassifier();
  const Dataset Test = threeWorldDataset();
  SketchAttack A(allFalseProgram());
  const auto Logs = runAttackOverSet(A, N, Test, 2000);
  ASSERT_EQ(Logs.size(), 6u);
  // Class 0: robust -> failures. Class 1: vulnerable -> successes.
  // Class 2: discarded (misclassified as 0).
  for (const AttackRunLog &Log : Logs) {
    switch (Log.Label) {
    case 0:
      EXPECT_FALSE(Log.Success);
      EXPECT_FALSE(Log.Discarded);
      break;
    case 1:
      EXPECT_TRUE(Log.Success);
      break;
    default:
      EXPECT_TRUE(Log.Discarded);
      break;
    }
  }
}

TEST(Evaluation, ToQuerySampleExcludesDiscarded) {
  std::vector<AttackRunLog> Logs(4);
  Logs[0] = {0, false, true, 10};
  Logs[1] = {0, false, false, 999};
  Logs[2] = {1, true, false, 1}; // discarded
  Logs[3] = {1, false, true, 30};
  const QuerySample S = toQuerySample(Logs);
  EXPECT_EQ(S.SuccessQueries.size(), 2u);
  EXPECT_EQ(S.NumFailures, 1u);
  EXPECT_EQ(S.numAttacks(), 3u);
  EXPECT_DOUBLE_EQ(S.avgQueries(), 20.0);
}

TEST(Evaluation, SuccessRateAtBudgetCurve) {
  std::vector<AttackRunLog> Logs(3);
  Logs[0] = {0, false, true, 10};
  Logs[1] = {0, false, true, 100};
  Logs[2] = {0, false, false, 8192};
  EXPECT_DOUBLE_EQ(successRateAt(Logs, 5), 0.0);
  EXPECT_DOUBLE_EQ(successRateAt(Logs, 10), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(successRateAt(Logs, 100), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(successRateAt(Logs, 100000), 2.0 / 3.0);
}

TEST(Evaluation, RunProgramsOverSetDispatchesByLabel) {
  FakeClassifier N = threeWorldClassifier();
  const Dataset Test = threeWorldDataset();
  const std::vector<Program> Programs = {allFalseProgram(),
                                         paperExampleProgram(),
                                         allFalseProgram()};
  const auto Logs = runProgramsOverSet(Programs, N, Test, 2000);
  ASSERT_EQ(Logs.size(), 6u);
  size_t Successes = 0;
  for (const AttackRunLog &Log : Logs)
    Successes += Log.Success;
  EXPECT_EQ(Successes, 2u) << "both class-1 images flip";
}

//===----------------------------------------------------------------------===//
// Experiments helpers
//===----------------------------------------------------------------------===//

TEST(Experiments, ArchListsMatchPaper) {
  ASSERT_EQ(cifarArchs().size(), 3u);
  EXPECT_EQ(cifarArchs()[0], Arch::MiniGoogLeNet);
  EXPECT_EQ(cifarArchs()[1], Arch::MiniResNet);
  EXPECT_EQ(cifarArchs()[2], Arch::MiniVGG);
  ASSERT_EQ(imageNetArchs().size(), 2u);
  EXPECT_EQ(imageNetArchs()[0], Arch::MiniDenseNet);
  EXPECT_EQ(imageNetArchs()[1], Arch::MiniResNet50);
}

TEST(Experiments, TaskSideSelectsPreset) {
  const BenchScale Scale = BenchScale::preset("paper");
  EXPECT_EQ(taskSide(TaskKind::CifarLike, Scale), 32u);
  EXPECT_EQ(taskSide(TaskKind::ImageNetLike, Scale), 64u);
}

TEST(Experiments, ProgramSaveLoadRoundTrip) {
  const std::string Path =
      (std::filesystem::temp_directory_path() / "oppsla_prog.txt").string();
  const Program P = paperExampleProgram();
  ASSERT_TRUE(saveProgram(P, Path));
  Program Q;
  ASSERT_TRUE(loadProgram(Q, Path));
  for (size_t I = 0; I != 4; ++I) {
    EXPECT_EQ(Q.Conds[I].Func, P.Conds[I].Func);
    EXPECT_EQ(Q.Conds[I].Source, P.Conds[I].Source);
    EXPECT_EQ(Q.Conds[I].Cmp, P.Conds[I].Cmp);
    EXPECT_DOUBLE_EQ(Q.Conds[I].Threshold, P.Conds[I].Threshold);
  }
  std::remove(Path.c_str());
}

TEST(Experiments, LoadProgramRejectsGarbage) {
  const std::string Path =
      (std::filesystem::temp_directory_path() / "oppsla_bad.txt").string();
  {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    ASSERT_NE(F, nullptr);
    std::fputs("99 99 99 nonsense\n", F);
    std::fclose(F);
  }
  Program P = paperExampleProgram();
  EXPECT_FALSE(loadProgram(P, Path));
  // P must be left untouched on failure.
  EXPECT_EQ(P.b4().Func, FuncKind::Center);
  std::remove(Path.c_str());
}

TEST(Experiments, LoadProgramMissingFile) {
  Program P;
  EXPECT_FALSE(loadProgram(P, "/nonexistent/oppsla_prog.txt"));
}

TEST(Experiments, MakeSynthesisSetIsSingleClass) {
  const BenchScale Scale = BenchScale::preset("smoke");
  const Dataset DS = makeSynthesisSet(TaskKind::CifarLike, 1, Scale);
  EXPECT_EQ(DS.size(), Scale.TrainPerClass);
  for (size_t L : DS.Labels)
    EXPECT_EQ(L, 1u);
}

TEST(Experiments, MakeTestSetShape) {
  const BenchScale Scale = BenchScale::preset("smoke");
  const Dataset DS = makeTestSet(TaskKind::CifarLike, Scale);
  EXPECT_EQ(DS.size(), Scale.TestPerClass * Scale.NumClasses);
  EXPECT_EQ(DS.Images.front().height(), Scale.CifarSide);
}

TEST(Experiments, TestAndSynthesisSetsAreDisjointInContent) {
  const BenchScale Scale = BenchScale::preset("smoke");
  const Dataset Test = makeTestSet(TaskKind::CifarLike, Scale);
  const Dataset Synth = makeSynthesisSet(TaskKind::CifarLike, 0, Scale);
  for (const Image &A : Synth.Images)
    for (const Image &B : Test.Images)
      EXPECT_NE(A.raw(), B.raw());
}
