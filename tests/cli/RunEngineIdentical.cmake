# Runs `oppsla eval` twice against the same cached victim — once with the
# query engine at its defaults (batching, memoizing cache, speculative
# prefetch) and once degenerate (--batch-size 1 --no-cache, i.e. the
# pre-engine serial path) — and compares the per-image --runs-out JSONL
# byte for byte. This is the engine's acceptance contract: batching and
# caching are pure plumbing optimizations; they must not change a single
# logical answer, query count, or chosen perturbation.
file(MAKE_DIRECTORY ${WORK_DIR})
set(RUNS_ENGINE ${WORK_DIR}/runs_engine.jsonl)
set(RUNS_SERIAL ${WORK_DIR}/runs_serial.jsonl)

# Engine on (defaults: batch 8, cache 4096).
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env OPPSLA_CACHE_DIR=${WORK_DIR}/cache
    ${CLI} eval --scale smoke --attack sparse-rs --budget 256
    --runs-out ${RUNS_ENGINE}
  OUTPUT_VARIABLE OUT
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "eval with engine defaults failed with ${RC}: ${OUT}")
endif()

# Engine degenerate: every query is a batch-1 physical forward, no cache.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env OPPSLA_CACHE_DIR=${WORK_DIR}/cache
    ${CLI} eval --scale smoke --attack sparse-rs --budget 256
    --batch-size 1 --no-cache --runs-out ${RUNS_SERIAL}
  OUTPUT_VARIABLE OUT
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "eval --batch-size 1 --no-cache failed with ${RC}: ${OUT}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${RUNS_ENGINE} ${RUNS_SERIAL}
  RESULT_VARIABLE DIFF)
if(NOT DIFF EQUAL 0)
  message(FATAL_ERROR
    "per-image run logs differ between engine defaults and "
    "--batch-size 1 --no-cache; the query engine must be byte-identical "
    "to the serial path (compare ${RUNS_ENGINE} with ${RUNS_SERIAL})")
endif()

file(STRINGS ${RUNS_ENGINE} LINES)
list(LENGTH LINES NUM_LINES)
if(NUM_LINES EQUAL 0)
  message(FATAL_ERROR "runs JSONL is empty — the comparison proved nothing")
endif()
