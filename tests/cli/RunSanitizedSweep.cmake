# Exercises the parallel evaluation sweep end to end; registered only when
# the build was configured with -DOPPSLA_SANITIZE=thread|address, so any
# data race (or memory error) in the worker pool, the classifier clones, or
# the per-run attack state fails the test via the sanitizer runtime.
file(MAKE_DIRECTORY ${WORK_DIR})
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env OPPSLA_CACHE_DIR=${WORK_DIR}/cache
    ${CLI} eval --scale smoke --attack sparse-rs --budget 256 --threads 4
  OUTPUT_VARIABLE OUT
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "sanitized parallel eval failed with ${RC}: ${OUT}")
endif()
if(NOT OUT MATCHES "success rate")
  message(FATAL_ERROR "eval produced no summary: ${OUT}")
endif()
