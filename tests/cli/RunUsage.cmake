# No arguments => usage text and non-zero exit.
execute_process(COMMAND ${CLI} ERROR_VARIABLE ERR RESULT_VARIABLE RC)
if(RC EQUAL 0)
  message(FATAL_ERROR "expected non-zero exit without a subcommand")
endif()
string(FIND "${ERR}" "usage:" POS)
if(POS EQUAL -1)
  message(FATAL_ERROR "missing usage text: ${ERR}")
endif()
