# The checkpoint/resume contract, end to end: a server killed mid-sweep
# (deterministically, via --crash-after-images) and restarted with
# --resume must finish the job and produce a result artifact
# byte-identical to an uninterrupted run's. Three server generations share
# one victim cache:
#   1. uninterrupted reference run -> ref.bin
#   2. crash run: _exit(3) after 4 images, leaving job-1.ckpt behind
#   3. resume run: --resume re-admits the checkpoint, finishes the
#      remaining images only -> resumed.bin
# then `cmake -E compare_files ref.bin resumed.bin`.
file(MAKE_DIRECTORY ${WORK_DIR})
set(CACHE_DIR ${WORK_DIR}/cache)
set(REF_BIN ${WORK_DIR}/ref.bin)
set(RESUMED_BIN ${WORK_DIR}/resumed.bin)
file(REMOVE ${REF_BIN} ${RESUMED_BIN})

# Launches a background server writing PORT_FILE, waits for the port.
function(launch_server PORT_FILE LOG CKPT_DIR EXTRA)
  file(REMOVE ${PORT_FILE})
  execute_process(
    COMMAND sh -c "OPPSLA_CACHE_DIR='${CACHE_DIR}' '${CLI}' serve --port 0 \
      --port-file '${PORT_FILE}' --checkpoint-dir '${CKPT_DIR}' \
      --checkpoint-every 2 --max-seconds 240 ${EXTRA} \
      > '${LOG}' 2>&1 & echo $!"
    RESULT_VARIABLE RC)
  if(NOT RC EQUAL 0)
    message(FATAL_ERROR "cannot launch the server: ${RC}")
  endif()
  set(WAITED 0)
  while(NOT EXISTS ${PORT_FILE})
    if(WAITED GREATER 100)
      file(READ ${LOG} CONTENTS)
      message(FATAL_ERROR "server never published its port: ${CONTENTS}")
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.25)
    math(EXPR WAITED "${WAITED} + 1")
  endwhile()
endfunction()

set(SUBMIT_ARGS --kind eval --scale smoke --seed 5 --budget 64)

# --- 1. Uninterrupted reference run. -----------------------------------
launch_server(${WORK_DIR}/port_ref.txt ${WORK_DIR}/server_ref.log
              ${WORK_DIR}/ckpt_ref "")
execute_process(
  COMMAND ${CLI} client submit --port-file ${WORK_DIR}/port_ref.txt
    ${SUBMIT_ARGS} --wait --timeout 200 --out ${REF_BIN}
  OUTPUT_VARIABLE OUT
  RESULT_VARIABLE RC)
execute_process(
  COMMAND ${CLI} client shutdown --port-file ${WORK_DIR}/port_ref.txt)
if(NOT RC EQUAL 0)
  file(READ ${WORK_DIR}/server_ref.log LOG)
  message(FATAL_ERROR
    "reference run failed with ${RC}: ${OUT}\nserver log: ${LOG}")
endif()

# --- 2. Crash run: the server kills itself after 4 images. -------------
launch_server(${WORK_DIR}/port_crash.txt ${WORK_DIR}/server_crash.log
              ${WORK_DIR}/ckpt_crash "--crash-after-images 4")
execute_process(
  COMMAND ${CLI} client submit --port-file ${WORK_DIR}/port_crash.txt
    ${SUBMIT_ARGS} --wait --timeout 200 --out ${WORK_DIR}/never.bin
  OUTPUT_VARIABLE OUT
  RESULT_VARIABLE RC)
if(RC EQUAL 0)
  message(FATAL_ERROR
    "the crash run completed — --crash-after-images never fired: ${OUT}")
endif()
if(NOT EXISTS ${WORK_DIR}/ckpt_crash/job-1.ckpt)
  file(READ ${WORK_DIR}/server_crash.log LOG)
  message(FATAL_ERROR
    "no checkpoint survived the crash; nothing to resume: ${LOG}")
endif()

# --- 3. Resume run: finish the interrupted job. ------------------------
launch_server(${WORK_DIR}/port_resume.txt ${WORK_DIR}/server_resume.log
              ${WORK_DIR}/ckpt_crash "--resume")
execute_process(
  COMMAND ${CLI} client wait --port-file ${WORK_DIR}/port_resume.txt
    --id 1 --timeout 200
  OUTPUT_VARIABLE OUT
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  file(READ ${WORK_DIR}/server_resume.log LOG)
  execute_process(
    COMMAND ${CLI} client shutdown --port-file ${WORK_DIR}/port_resume.txt)
  message(FATAL_ERROR
    "resumed job never finished (${RC}): ${OUT}\nserver log: ${LOG}")
endif()
execute_process(
  COMMAND ${CLI} client result --port-file ${WORK_DIR}/port_resume.txt
    --id 1 --out ${RESUMED_BIN}
  OUTPUT_VARIABLE OUT
  RESULT_VARIABLE RC)
execute_process(
  COMMAND ${CLI} client shutdown --port-file ${WORK_DIR}/port_resume.txt)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "result download after resume failed: ${OUT}")
endif()

# The payoff: crash + resume must be invisible in the artifact bytes.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${REF_BIN} ${RESUMED_BIN}
  RESULT_VARIABLE DIFF)
if(NOT DIFF EQUAL 0)
  message(FATAL_ERROR
    "resumed artifact differs from the uninterrupted run (compare "
    "${REF_BIN} with ${RESUMED_BIN}); checkpoint/resume broke "
    "byte-identity")
endif()
