# Runs `oppsla attack` with telemetry enabled and validates the outputs:
# the JSONL trace must be one well-formed object per line with exactly one
# attack_end event per attacked image, and the metrics snapshot must carry
# the queries-per-attack histogram.
file(MAKE_DIRECTORY ${WORK_DIR})
set(TRACE ${WORK_DIR}/trace.jsonl)
set(METRICS ${WORK_DIR}/metrics.json)
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env OPPSLA_CACHE_DIR=${WORK_DIR}/cache
    ${CLI} attack --scale smoke --images 2 --budget 256
    --trace-out ${TRACE} --metrics-out ${METRICS}
  OUTPUT_VARIABLE OUT
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "attack failed with ${RC}: ${OUT}")
endif()

if(NOT EXISTS ${TRACE})
  message(FATAL_ERROR "--trace-out produced no file")
endif()
file(STRINGS ${TRACE} LINES)
list(LENGTH LINES NUM_LINES)
if(NUM_LINES EQUAL 0)
  message(FATAL_ERROR "trace is empty")
endif()
set(NUM_ENDS 0)
set(NUM_QUERIES 0)
foreach(LINE IN LISTS LINES)
  if(NOT LINE MATCHES "^{.*}$")
    message(FATAL_ERROR "trace line is not a JSON object: ${LINE}")
  endif()
  if(NOT LINE MATCHES "\"ts_us\":[0-9]+" OR NOT LINE MATCHES "\"type\":\"")
    message(FATAL_ERROR "trace line lacks ts_us/type: ${LINE}")
  endif()
  if(LINE MATCHES "\"type\":\"attack_end\"")
    math(EXPR NUM_ENDS "${NUM_ENDS} + 1")
  elseif(LINE MATCHES "\"type\":\"query\"")
    math(EXPR NUM_QUERIES "${NUM_QUERIES} + 1")
  endif()
endforeach()
if(NOT NUM_ENDS EQUAL 2)
  message(FATAL_ERROR "expected 2 attack_end events (one per image), got ${NUM_ENDS}")
endif()
if(NUM_QUERIES EQUAL 0)
  message(FATAL_ERROR "expected per-query events in the trace")
endif()

if(NOT EXISTS ${METRICS})
  message(FATAL_ERROR "--metrics-out produced no file")
endif()
file(READ ${METRICS} MJSON)
foreach(NEEDLE "\"counters\"" "\"histograms\"" "attack.queries" "attack.seconds")
  string(FIND "${MJSON}" "${NEEDLE}" POS)
  if(POS EQUAL -1)
    message(FATAL_ERROR "missing '${NEEDLE}' in metrics: ${MJSON}")
  endif()
endforeach()
