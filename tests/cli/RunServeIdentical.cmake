# The serving determinism contract, end to end: an eval sweep submitted
# over the wire to `oppsla serve` must produce run logs byte-identical to
# the same-seed offline `oppsla eval --runs-out`. Flow: offline reference
# first, then a background server, `oppsla client submit --wait --out` for
# the binary artifact, `oppsla wire --runs-out` to re-render it as run-log
# JSONL, and a byte compare. Both runs share OPPSLA_CACHE_DIR so they
# attack the identical cached victim.
file(MAKE_DIRECTORY ${WORK_DIR})
set(CACHE_DIR ${WORK_DIR}/cache)
set(RUNS_OFFLINE ${WORK_DIR}/runs_offline.jsonl)
set(RUNS_SERVED ${WORK_DIR}/runs_served.jsonl)
set(RESULT_BIN ${WORK_DIR}/result.bin)
set(PORT_FILE ${WORK_DIR}/port.txt)
set(SERVER_LOG ${WORK_DIR}/server.log)
file(REMOVE ${PORT_FILE} ${RESULT_BIN} ${RUNS_OFFLINE} ${RUNS_SERVED})

# Offline reference sweep.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env OPPSLA_CACHE_DIR=${CACHE_DIR}
    ${CLI} eval --scale smoke --attack oppsla --budget 64 --seed 3
    --runs-out ${RUNS_OFFLINE}
  OUTPUT_VARIABLE OUT
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "offline eval failed with ${RC}: ${OUT}")
endif()

# Background job server on an ephemeral port. --max-seconds caps its
# lifetime so a wedged run can never leak the process past the harness.
execute_process(
  COMMAND sh -c "OPPSLA_CACHE_DIR='${CACHE_DIR}' '${CLI}' serve --port 0 \
    --port-file '${PORT_FILE}' --checkpoint-dir '${WORK_DIR}/ckpt' \
    --checkpoint-every 3 --max-seconds 240 > '${SERVER_LOG}' 2>&1 & \
    echo $!"
  OUTPUT_VARIABLE SERVER_PID
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "cannot launch the server: ${RC}")
endif()

# Wait for the port file — the server's "I am listening" signal.
set(WAITED 0)
while(NOT EXISTS ${PORT_FILE})
  if(WAITED GREATER 100)
    file(READ ${SERVER_LOG} LOG)
    message(FATAL_ERROR "server never published its port: ${LOG}")
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.25)
  math(EXPR WAITED "${WAITED} + 1")
endwhile()

# Submit the same experiment over the wire and download the artifact.
execute_process(
  COMMAND ${CLI} client submit --port-file ${PORT_FILE}
    --kind eval --scale smoke --seed 3 --budget 64
    --wait --timeout 200 --out ${RESULT_BIN}
  OUTPUT_VARIABLE OUT
  RESULT_VARIABLE RC)
execute_process(COMMAND ${CLI} client shutdown --port-file ${PORT_FILE})
if(NOT RC EQUAL 0)
  file(READ ${SERVER_LOG} LOG)
  message(FATAL_ERROR
    "client submit --wait failed with ${RC}: ${OUT}\nserver log: ${LOG}")
endif()

# Re-render the binary artifact as run-log JSONL.
execute_process(
  COMMAND ${CLI} wire --in ${RESULT_BIN} --runs-out ${RUNS_SERVED}
  OUTPUT_VARIABLE OUT
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "wire decode failed with ${RC}: ${OUT}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${RUNS_OFFLINE} ${RUNS_SERVED}
  RESULT_VARIABLE DIFF)
if(NOT DIFF EQUAL 0)
  message(FATAL_ERROR
    "served run logs differ from the same-seed offline eval; serving must "
    "not change a single outcome (compare ${RUNS_OFFLINE} with "
    "${RUNS_SERVED})")
endif()

file(STRINGS ${RUNS_OFFLINE} LINES)
list(LENGTH LINES NUM_LINES)
if(NUM_LINES EQUAL 0)
  message(FATAL_ERROR "runs JSONL is empty — the comparison proved nothing")
endif()
