# Runs `oppsla eval` twice — serial and with 4 worker threads — against the
# same cached victim and compares the per-image --runs-out JSONL byte for
# byte. This is the end-to-end check of the determinism contract: per-run
# RNG isolation makes every attack run a pure function of (seed, image),
# so the thread count must not change a single byte of the results.
file(MAKE_DIRECTORY ${WORK_DIR})
set(RUNS1 ${WORK_DIR}/runs_t1.jsonl)
set(RUNS4 ${WORK_DIR}/runs_t4.jsonl)

foreach(CASE "1;${RUNS1}" "4;${RUNS4}")
  list(GET CASE 0 THREADS)
  list(GET CASE 1 OUT_FILE)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env OPPSLA_CACHE_DIR=${WORK_DIR}/cache
      ${CLI} eval --scale smoke --attack sparse-rs --budget 256
      --threads ${THREADS} --runs-out ${OUT_FILE}
    OUTPUT_VARIABLE OUT
    RESULT_VARIABLE RC)
  if(NOT RC EQUAL 0)
    message(FATAL_ERROR "eval --threads ${THREADS} failed with ${RC}: ${OUT}")
  endif()
  if(NOT EXISTS ${OUT_FILE})
    message(FATAL_ERROR "--runs-out produced no file for --threads ${THREADS}")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${RUNS1} ${RUNS4}
  RESULT_VARIABLE DIFF)
if(NOT DIFF EQUAL 0)
  message(FATAL_ERROR
    "per-image run logs differ between --threads 1 and --threads 4; "
    "parallel evaluation is supposed to be bit-identical to serial "
    "(compare ${RUNS1} with ${RUNS4})")
endif()

file(STRINGS ${RUNS1} LINES)
list(LENGTH LINES NUM_LINES)
if(NUM_LINES EQUAL 0)
  message(FATAL_ERROR "runs JSONL is empty — the comparison proved nothing")
endif()
