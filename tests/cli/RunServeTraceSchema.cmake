# End-to-end job tracing: submit a job with a client-minted traceparent,
# fetch its timeline via `client trace`, and validate the Chrome Trace
# Event JSON with oppsla_tracecheck — pid/tid/ph shape, per-lane ts
# monotonicity, the client's trace id on the spans, and span coverage of
# at least 95% of the job's wall clock (the acceptance bar for "the
# timeline explains where the time went").
file(MAKE_DIRECTORY ${WORK_DIR})
set(CACHE_DIR ${WORK_DIR}/cache)
set(PORT_FILE ${WORK_DIR}/port.txt)
set(SERVER_LOG ${WORK_DIR}/server.log)
set(TRACE_JSON ${WORK_DIR}/job.trace.json)
file(REMOVE ${PORT_FILE} ${TRACE_JSON})

set(TRACE_ID "4bf92f3577b34da6a3ce929d0e0e4736")
set(TRACEPARENT "00-${TRACE_ID}-00f067aa0ba902b7-01")

execute_process(
  COMMAND sh -c "OPPSLA_CACHE_DIR='${CACHE_DIR}' '${CLI}' serve --port 0 \
    --port-file '${PORT_FILE}' --checkpoint-dir '${WORK_DIR}/ckpt' \
    --checkpoint-every 2 --max-seconds 240 > '${SERVER_LOG}' 2>&1 & \
    echo $!"
  OUTPUT_VARIABLE SERVER_PID
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "cannot launch the server: ${RC}")
endif()

set(WAITED 0)
while(NOT EXISTS ${PORT_FILE})
  if(WAITED GREATER 100)
    file(READ ${SERVER_LOG} LOG)
    message(FATAL_ERROR "server never published its port: ${LOG}")
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.25)
  math(EXPR WAITED "${WAITED} + 1")
endwhile()

# Submit with an explicit traceparent so the expected trace id is known,
# and wait for completion (the first job on a fresh server is id 1).
execute_process(
  COMMAND ${CLI} client submit --port-file ${PORT_FILE}
    --kind attack --attack random --scale smoke --seed 1 --budget 32
    --count 6 --traceparent ${TRACEPARENT} --wait --timeout 200
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  file(READ ${SERVER_LOG} LOG)
  message(FATAL_ERROR
    "client submit --wait failed with ${RC}: ${OUT}\n${ERR}\n"
    "server log: ${LOG}")
endif()

# The 202 body must already echo the client's trace id.
string(FIND "${OUT}" "\"trace_id\":\"${TRACE_ID}\"" POS)
if(POS EQUAL -1)
  message(FATAL_ERROR "submit response does not echo the trace id: ${OUT}")
endif()

execute_process(
  COMMAND ${CLI} client trace --port-file ${PORT_FILE} --id 1
    --out ${TRACE_JSON}
  OUTPUT_VARIABLE OUT
  RESULT_VARIABLE RC)
execute_process(COMMAND ${CLI} client shutdown --port-file ${PORT_FILE})
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "client trace failed with ${RC}: ${OUT}")
endif()

execute_process(
  COMMAND ${TRACECHECK} ${TRACE_JSON}
    --expect-trace-id ${TRACE_ID} --min-coverage-pct 95
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  file(READ ${TRACE_JSON} TRACE)
  message(FATAL_ERROR
    "trace schema validation failed with ${RC}: ${OUT}\n${ERR}\n"
    "trace: ${TRACE}")
endif()
message(STATUS "tracecheck: ${OUT}")
