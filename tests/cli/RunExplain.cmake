# Runs `oppsla explain` on the textual example program and checks the
# report mentions roles and verdicts.
execute_process(
  COMMAND ${CLI} explain --program ${SRC_DIR}/cli/example_program.txt
  OUTPUT_VARIABLE OUT
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "explain failed with ${RC}")
endif()
foreach(NEEDLE "[B1]" "push back" "eagerly check" "contingent")
  string(FIND "${OUT}" "${NEEDLE}" POS)
  if(POS EQUAL -1)
    message(FATAL_ERROR "missing '${NEEDLE}' in: ${OUT}")
  endif()
endforeach()
