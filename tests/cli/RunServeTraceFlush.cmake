# The shutdown-drain regression test: per-job trace timelines must reach
# <checkpoint-dir>/job-<id>.trace.json on BOTH shutdown paths — the
# orderly /quitquitquit quit and a SIGTERM (whose handler flushes before
# _exit). A server that loses its trace buffers on either path fails.
file(MAKE_DIRECTORY ${WORK_DIR})
set(CACHE_DIR ${WORK_DIR}/cache)

function(run_one_server TAG STOP_CMD)
  set(PORT_FILE ${WORK_DIR}/port_${TAG}.txt)
  set(SERVER_LOG ${WORK_DIR}/server_${TAG}.log)
  set(CKPT_DIR ${WORK_DIR}/ckpt_${TAG})
  set(TRACE_FILE ${CKPT_DIR}/job-1.trace.json)
  file(REMOVE ${PORT_FILE} ${TRACE_FILE})

  execute_process(
    COMMAND sh -c "OPPSLA_CACHE_DIR='${CACHE_DIR}' '${CLI}' serve --port 0 \
      --port-file '${PORT_FILE}' --checkpoint-dir '${CKPT_DIR}' \
      --max-seconds 240 > '${SERVER_LOG}' 2>&1 & echo $!"
    OUTPUT_VARIABLE SERVER_PID
    RESULT_VARIABLE RC)
  if(NOT RC EQUAL 0)
    message(FATAL_ERROR "${TAG}: cannot launch the server: ${RC}")
  endif()
  string(STRIP "${SERVER_PID}" SERVER_PID)

  set(WAITED 0)
  while(NOT EXISTS ${PORT_FILE})
    if(WAITED GREATER 100)
      file(READ ${SERVER_LOG} LOG)
      message(FATAL_ERROR "${TAG}: server never published its port: ${LOG}")
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.25)
    math(EXPR WAITED "${WAITED} + 1")
  endwhile()

  execute_process(
    COMMAND ${CLI} client submit --port-file ${PORT_FILE}
      --kind attack --attack random --scale smoke --seed 1 --budget 32
      --count 4 --wait --timeout 200
    OUTPUT_VARIABLE OUT
    RESULT_VARIABLE RC)
  if(NOT RC EQUAL 0)
    file(READ ${SERVER_LOG} LOG)
    message(FATAL_ERROR
      "${TAG}: submit failed with ${RC}: ${OUT}\nserver log: ${LOG}")
  endif()

  if(STOP_CMD STREQUAL "quit")
    execute_process(COMMAND ${CLI} client shutdown --port-file ${PORT_FILE})
  else()
    execute_process(COMMAND kill -TERM ${SERVER_PID})
  endif()

  # The trace dump must appear once the process is gone (poll: the flush
  # runs between the stop signal and process exit).
  set(WAITED 0)
  while(NOT EXISTS ${TRACE_FILE})
    if(WAITED GREATER 100)
      file(READ ${SERVER_LOG} LOG)
      message(FATAL_ERROR
        "${TAG}: ${TRACE_FILE} never appeared — the ${STOP_CMD} path "
        "dropped the per-job trace buffers\nserver log: ${LOG}")
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.25)
    math(EXPR WAITED "${WAITED} + 1")
  endwhile()

  # And it must be a valid Chrome trace with spans, not a torn write.
  execute_process(
    COMMAND ${TRACECHECK} ${TRACE_FILE}
    OUTPUT_VARIABLE OUT
    ERROR_VARIABLE ERR
    RESULT_VARIABLE RC)
  if(NOT RC EQUAL 0)
    message(FATAL_ERROR
      "${TAG}: flushed trace is invalid (${RC}): ${OUT}\n${ERR}")
  endif()
  message(STATUS "${TAG}: ${OUT}")
endfunction()

run_one_server(quit quit)
run_one_server(sigterm term)
