# Starts `oppsla eval --stats-port 0 --stats-linger` and a scraper client
# (ScrapeStats.cmake) concurrently; the scraper discovers the bound port
# via --stats-port-file, pulls /metrics and /healthz while the process is
# alive, validates both payloads, and releases the linger via
# /quitquitquit. Both processes must exit cleanly.
file(MAKE_DIRECTORY ${WORK_DIR})
set(PORT_FILE ${WORK_DIR}/port.txt)
file(REMOVE ${PORT_FILE})

# The two COMMANDs run concurrently (execute_process pipelines them). The
# CLI's own output is redirected to a file by the sh wrapper: the scraper
# usually finishes first, and a CLI writing into the then-closed pipe
# would die of SIGPIPE.
execute_process(
  COMMAND sh -c "OPPSLA_CACHE_DIR='${WORK_DIR}/cache' exec '${CLI}' \
eval --scale smoke --stats-port 0 --stats-port-file '${PORT_FILE}' \
--stats-linger > '${WORK_DIR}/eval_out.txt' 2>&1"
  COMMAND ${CMAKE_COMMAND}
    -DPORT_FILE=${PORT_FILE} -DWORK_DIR=${WORK_DIR}
    -P ${SRC_DIR}/cli/ScrapeStats.cmake
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR
  RESULTS_VARIABLE RCS)
list(GET RCS 0 CLI_RC)
list(GET RCS 1 SCRAPE_RC)
if(NOT CLI_RC EQUAL 0)
  message(FATAL_ERROR "eval exited with ${CLI_RC}: ${ERR}")
endif()
if(NOT SCRAPE_RC EQUAL 0)
  message(FATAL_ERROR "scraper exited with ${SCRAPE_RC}: ${OUT}\n${ERR}")
endif()
message(STATUS "live scrape OK")
