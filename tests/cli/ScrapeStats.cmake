# The scraper half of RunStatsServer.cmake: polls for the port file the
# CLI writes, then pulls the live endpoints over HTTP and validates them.
# Inputs: PORT_FILE, WORK_DIR.
set(PORT "")
foreach(I RANGE 300)
  if(EXISTS ${PORT_FILE})
    file(READ ${PORT_FILE} PORT)
    string(STRIP "${PORT}" PORT)
    if(NOT PORT STREQUAL "")
      break()
    endif()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(PORT STREQUAL "")
  message(FATAL_ERROR "no bound port appeared at ${PORT_FILE}")
endif()

# /metrics: Prometheus text exposition. The run-info metric is registered
# before the server starts, so it is present however early we scrape.
set(METRICS_OUT ${WORK_DIR}/scraped_metrics.txt)
file(DOWNLOAD http://127.0.0.1:${PORT}/metrics ${METRICS_OUT}
  STATUS DL_STATUS TIMEOUT 30)
list(GET DL_STATUS 0 DL_RC)
if(NOT DL_RC EQUAL 0)
  message(FATAL_ERROR "GET /metrics failed: ${DL_STATUS}")
endif()
file(READ ${METRICS_OUT} METRICS)
if(NOT METRICS MATCHES "oppsla_run_info{")
  message(FATAL_ERROR "no oppsla_run_info in /metrics: ${METRICS}")
endif()
if(NOT METRICS MATCHES "command=\"eval\"")
  message(FATAL_ERROR "run_info lacks command=\"eval\": ${METRICS}")
endif()

# /healthz: a JSON object with a status field.
set(HEALTH_OUT ${WORK_DIR}/scraped_healthz.json)
file(DOWNLOAD http://127.0.0.1:${PORT}/healthz ${HEALTH_OUT}
  STATUS DL_STATUS TIMEOUT 30)
list(GET DL_STATUS 0 DL_RC)
if(NOT DL_RC EQUAL 0)
  message(FATAL_ERROR "GET /healthz failed: ${DL_STATUS}")
endif()
file(READ ${HEALTH_OUT} HEALTH)
string(JSON STATUS_FIELD GET "${HEALTH}" status)
if(NOT STATUS_FIELD STREQUAL "ok")
  message(FATAL_ERROR "unexpected /healthz status: ${HEALTH}")
endif()
string(JSON DONE GET "${HEALTH}" done)
string(JSON TOTAL GET "${HEALTH}" total)
message(STATUS "scraped /healthz: ${DONE}/${TOTAL} done")

# /logz: the ambient run trace context must stamp the offline eval path's
# log records, so an operator can correlate live logs with the run's
# trace id outside `oppsla serve`. The id is minted at CLI startup and
# registered as the run_info trace_id label — recover it from /metrics and
# require at least one ring record carrying it.
if(NOT METRICS MATCHES "trace_id=\"([0-9a-f]+)\"")
  message(FATAL_ERROR "run_info lacks a trace_id label: ${METRICS}")
endif()
set(TRACE_ID ${CMAKE_MATCH_1})
set(LOGZ_OUT ${WORK_DIR}/scraped_logz.jsonl)
file(DOWNLOAD http://127.0.0.1:${PORT}/logz?n=200 ${LOGZ_OUT}
  STATUS DL_STATUS TIMEOUT 30)
list(GET DL_STATUS 0 DL_RC)
if(NOT DL_RC EQUAL 0)
  message(FATAL_ERROR "GET /logz failed: ${DL_STATUS}")
endif()
file(READ ${LOGZ_OUT} LOGZ)
if(NOT LOGZ MATCHES "\"msg\":")
  message(FATAL_ERROR "/logz returned no log records: ${LOGZ}")
endif()
if(NOT LOGZ MATCHES "\"trace\":\"${TRACE_ID}\"")
  message(FATAL_ERROR
    "no /logz record is stamped with the run trace id ${TRACE_ID}: ${LOGZ}")
endif()
message(STATUS "scraped /logz: records stamped with trace ${TRACE_ID}")

# Release the CLI's --stats-linger wait.
file(DOWNLOAD http://127.0.0.1:${PORT}/quitquitquit ${WORK_DIR}/quit.txt
  STATUS DL_STATUS TIMEOUT 30)
list(GET DL_STATUS 0 DL_RC)
if(NOT DL_RC EQUAL 0)
  message(FATAL_ERROR "GET /quitquitquit failed: ${DL_STATUS}")
endif()
