# The scraper half of RunStatsServer.cmake: polls for the port file the
# CLI writes, then pulls the live endpoints over HTTP and validates them.
# Inputs: PORT_FILE, WORK_DIR.
set(PORT "")
foreach(I RANGE 300)
  if(EXISTS ${PORT_FILE})
    file(READ ${PORT_FILE} PORT)
    string(STRIP "${PORT}" PORT)
    if(NOT PORT STREQUAL "")
      break()
    endif()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(PORT STREQUAL "")
  message(FATAL_ERROR "no bound port appeared at ${PORT_FILE}")
endif()

# /metrics: Prometheus text exposition. The run-info metric is registered
# before the server starts, so it is present however early we scrape.
set(METRICS_OUT ${WORK_DIR}/scraped_metrics.txt)
file(DOWNLOAD http://127.0.0.1:${PORT}/metrics ${METRICS_OUT}
  STATUS DL_STATUS TIMEOUT 30)
list(GET DL_STATUS 0 DL_RC)
if(NOT DL_RC EQUAL 0)
  message(FATAL_ERROR "GET /metrics failed: ${DL_STATUS}")
endif()
file(READ ${METRICS_OUT} METRICS)
if(NOT METRICS MATCHES "oppsla_run_info{")
  message(FATAL_ERROR "no oppsla_run_info in /metrics: ${METRICS}")
endif()
if(NOT METRICS MATCHES "command=\"eval\"")
  message(FATAL_ERROR "run_info lacks command=\"eval\": ${METRICS}")
endif()

# /healthz: a JSON object with a status field.
set(HEALTH_OUT ${WORK_DIR}/scraped_healthz.json)
file(DOWNLOAD http://127.0.0.1:${PORT}/healthz ${HEALTH_OUT}
  STATUS DL_STATUS TIMEOUT 30)
list(GET DL_STATUS 0 DL_RC)
if(NOT DL_RC EQUAL 0)
  message(FATAL_ERROR "GET /healthz failed: ${DL_STATUS}")
endif()
file(READ ${HEALTH_OUT} HEALTH)
string(JSON STATUS_FIELD GET "${HEALTH}" status)
if(NOT STATUS_FIELD STREQUAL "ok")
  message(FATAL_ERROR "unexpected /healthz status: ${HEALTH}")
endif()
string(JSON DONE GET "${HEALTH}" done)
string(JSON TOTAL GET "${HEALTH}" total)
message(STATUS "scraped /healthz: ${DONE}/${TOTAL} done")

# Release the CLI's --stats-linger wait.
file(DOWNLOAD http://127.0.0.1:${PORT}/quitquitquit ${WORK_DIR}/quit.txt
  STATUS DL_STATUS TIMEOUT 30)
list(GET DL_STATUS 0 DL_RC)
if(NOT DL_RC EQUAL 0)
  message(FATAL_ERROR "GET /quitquitquit failed: ${DL_STATUS}")
endif()
