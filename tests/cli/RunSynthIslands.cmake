# Runs `oppsla synthesize --synth-islands 4` twice against the same cached
# victim — once with 4 worker threads and once with 1 — and byte-compares
# the saved programs. This is the island determinism contract of
# DESIGN.md §15: the synthesized program is a pure function of
# (seed, islands, exchange interval), never of the thread count. Both
# searches run live (--no-program-store), then a store-backed pair checks
# that a warm store rehydrates the same bytes the search produced.
# Inputs: CLI, WORK_DIR.
file(MAKE_DIRECTORY ${WORK_DIR})
set(COMMON synthesize --scale smoke --class 0 --synth-islands 4
  --exchange-interval 2)

# Live search at two thread counts.
foreach(T 4 1)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env OPPSLA_CACHE_DIR=${WORK_DIR}/cache
      ${CLI} ${COMMON} --threads ${T} --no-program-store
      --out ${WORK_DIR}/prog_t${T}.txt
    OUTPUT_VARIABLE OUT
    RESULT_VARIABLE RC)
  if(NOT RC EQUAL 0)
    message(FATAL_ERROR
      "synthesize --threads ${T} failed with ${RC}: ${OUT}")
  endif()
endforeach()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
    ${WORK_DIR}/prog_t4.txt ${WORK_DIR}/prog_t1.txt
  RESULT_VARIABLE DIFF)
if(NOT DIFF EQUAL 0)
  message(FATAL_ERROR
    "island synthesis diverged across thread counts; the program must be "
    "a pure function of (seed, islands, exchange interval) (compare "
    "${WORK_DIR}/prog_t4.txt with ${WORK_DIR}/prog_t1.txt)")
endif()

# Store-backed pair: a cold run persists the portfolio, the warm rerun
# must rehydrate (not re-search) and still save identical bytes.
foreach(PASS cold warm)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env OPPSLA_CACHE_DIR=${WORK_DIR}/cache
      ${CLI} ${COMMON} --threads 1
      --program-store ${WORK_DIR}/store
      --out ${WORK_DIR}/prog_${PASS}.txt
    OUTPUT_VARIABLE OUT
    RESULT_VARIABLE RC)
  if(NOT RC EQUAL 0)
    message(FATAL_ERROR "synthesize (${PASS}) failed with ${RC}: ${OUT}")
  endif()
endforeach()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
    ${WORK_DIR}/prog_cold.txt ${WORK_DIR}/prog_warm.txt
  RESULT_VARIABLE DIFF)
if(NOT DIFF EQUAL 0)
  message(FATAL_ERROR
    "warm program-store rehydration differs from the cold search (compare "
    "${WORK_DIR}/prog_cold.txt with ${WORK_DIR}/prog_warm.txt)")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
    ${WORK_DIR}/prog_cold.txt ${WORK_DIR}/prog_t1.txt
  RESULT_VARIABLE DIFF)
if(NOT DIFF EQUAL 0)
  message(FATAL_ERROR
    "store-backed synthesis differs from the live search under the same "
    "config")
endif()

file(GLOB ENTRIES ${WORK_DIR}/store/*.opwf)
list(LENGTH ENTRIES NUM_ENTRIES)
if(NUM_ENTRIES EQUAL 0)
  message(FATAL_ERROR "no .opwf entry appeared in ${WORK_DIR}/store")
endif()
