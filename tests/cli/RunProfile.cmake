# Runs `oppsla eval` with the span profiler enabled and validates the
# three sinks: the call-tree report in the CLI `metrics:` section, the
# folded-stack file (--profile-out) with the attack->engine->nn call path,
# and the `profile` block of the --metrics-out snapshot. Then re-runs the
# same sweep without profiling and asserts the --runs-out JSONL is byte
# identical: profiling must never perturb results.
file(MAKE_DIRECTORY ${WORK_DIR})
set(FOLDED ${WORK_DIR}/prof.folded)
set(METRICS ${WORK_DIR}/metrics.json)

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env OPPSLA_CACHE_DIR=${WORK_DIR}/cache
    ${CLI} eval --scale smoke
    --profile --profile-out ${FOLDED} --metrics-out ${METRICS}
    --runs-out ${WORK_DIR}/runs_profiled.jsonl
  OUTPUT_VARIABLE OUT
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "eval --profile failed with ${RC}: ${OUT}")
endif()

# (a) The call-tree report rendered into the metrics: section.
if(NOT OUT MATCHES "profile: [0-9]+ thread")
  message(FATAL_ERROR "no profile report in eval output: ${OUT}")
endif()
if(NOT OUT MATCHES "cli\\.eval")
  message(FATAL_ERROR "profile report lacks the cli.eval root span: ${OUT}")
endif()

# (b) Folded stacks: non-empty, `path <usec>` lines, and at least one path
# descending attack -> engine -> nn.
if(NOT EXISTS ${FOLDED})
  message(FATAL_ERROR "--profile-out produced no file")
endif()
file(STRINGS ${FOLDED} FOLDED_LINES)
list(LENGTH FOLDED_LINES NUM_FOLDED)
if(NUM_FOLDED EQUAL 0)
  message(FATAL_ERROR "folded-stack file is empty")
endif()
set(SAW_DEEP_PATH FALSE)
foreach(LINE IN LISTS FOLDED_LINES)
  if(NOT LINE MATCHES "^[^ ]+ [0-9]+$")
    message(FATAL_ERROR "malformed folded line: '${LINE}'")
  endif()
  if(LINE MATCHES "attack:" AND LINE MATCHES "engine\\." AND
     LINE MATCHES ";nn\\.")
    set(SAW_DEEP_PATH TRUE)
  endif()
endforeach()
if(NOT SAW_DEEP_PATH)
  message(FATAL_ERROR
    "no attack->engine->nn call path in the folded stacks")
endif()

# (c) The profile summary block inside the metrics snapshot.
file(READ ${METRICS} MJSON)
string(JSON THREADS GET "${MJSON}" profile threads)
if(THREADS LESS 1)
  message(FATAL_ERROR "profile block reports ${THREADS} threads")
endif()
string(JSON NUM_SPANS LENGTH "${MJSON}" profile spans)
if(NUM_SPANS EQUAL 0)
  message(FATAL_ERROR "profile block has no spans")
endif()
string(JSON FIRST_PATH GET "${MJSON}" profile spans 0 path)
if(FIRST_PATH STREQUAL "")
  message(FATAL_ERROR "first profile span has an empty path")
endif()

# Determinism: the identical sweep without profiling writes byte-identical
# run logs.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env OPPSLA_CACHE_DIR=${WORK_DIR}/cache
    ${CLI} eval --scale smoke --runs-out ${WORK_DIR}/runs_plain.jsonl
  OUTPUT_VARIABLE OUT2
  RESULT_VARIABLE RC2)
if(NOT RC2 EQUAL 0)
  message(FATAL_ERROR "plain eval failed with ${RC2}: ${OUT2}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
    ${WORK_DIR}/runs_profiled.jsonl ${WORK_DIR}/runs_plain.jsonl
  RESULT_VARIABLE DIFF)
if(NOT DIFF EQUAL 0)
  message(FATAL_ERROR
    "--profile changed the run results: runs_profiled.jsonl differs "
    "from runs_plain.jsonl")
endif()
message(STATUS "profile sinks OK; results byte-identical with profiling")
