# Runs `oppsla eval` twice against the same cached victim — once with the
# default fast kernels (packed register-blocked SGEMM with the fused
# bias/BatchNorm/ReLU epilogue) and once with --naive-kernels (the scalar
# reference loops) — and compares the per-image --runs-out JSONL byte for
# byte. This is the kernel determinism contract of DESIGN.md §12: both
# paths compute the identical fma reduction chain per output element, so
# swapping kernels must not change a single logical answer, query count,
# or chosen perturbation.
#
# Pass -DEXTRA_ARGS="--threads 4 --engine-threads 2" (etc.) to run both
# sweeps under extra flags — the registered _mt variant uses this to cover
# the threaded GEMM column split with the same byte-identity bar.
file(MAKE_DIRECTORY ${WORK_DIR})
set(RUNS_FAST ${WORK_DIR}/runs_fast.jsonl)
set(RUNS_NAIVE ${WORK_DIR}/runs_naive.jsonl)
if(NOT DEFINED EXTRA_ARGS)
  set(EXTRA_ARGS "")
endif()
separate_arguments(EXTRA_LIST UNIX_COMMAND "${EXTRA_ARGS}")

# Default fast kernels.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env OPPSLA_CACHE_DIR=${WORK_DIR}/cache
    ${CLI} eval --scale smoke --attack sparse-rs --budget 256
    ${EXTRA_LIST} --runs-out ${RUNS_FAST}
  OUTPUT_VARIABLE OUT
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "eval with fast kernels failed with ${RC}: ${OUT}")
endif()

# Scalar reference kernels.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env OPPSLA_CACHE_DIR=${WORK_DIR}/cache
    ${CLI} eval --scale smoke --attack sparse-rs --budget 256
    ${EXTRA_LIST} --naive-kernels --runs-out ${RUNS_NAIVE}
  OUTPUT_VARIABLE OUT
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "eval --naive-kernels failed with ${RC}: ${OUT}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${RUNS_FAST} ${RUNS_NAIVE}
  RESULT_VARIABLE DIFF)
if(NOT DIFF EQUAL 0)
  message(FATAL_ERROR
    "per-image run logs differ between the fast kernels and "
    "--naive-kernels; the packed GEMM must be bit-identical to the scalar "
    "reference path (compare ${RUNS_FAST} with ${RUNS_NAIVE})")
endif()

file(STRINGS ${RUNS_FAST} LINES)
list(LENGTH LINES NUM_LINES)
if(NUM_LINES EQUAL 0)
  message(FATAL_ERROR "runs JSONL is empty — the comparison proved nothing")
endif()
