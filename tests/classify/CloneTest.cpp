//===- tests/classify/CloneTest.cpp - Classifier cloning tests ----------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "classify/NNClassifier.h"
#include "classify/Training.h"
#include "nn/ModelZoo.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace oppsla;
using namespace oppsla::test;

namespace {

/// A small untrained MiniVGG wrapped in an NNClassifier; random weights
/// are as good as trained ones for testing clone fidelity.
std::unique_ptr<NNClassifier> tinyVictim(bool WithBuilder) {
  const size_t Classes = 3, Side = 8;
  Rng R(11);
  auto Model = buildModel(Arch::MiniVGG, Classes, Side, R);
  auto C = std::make_unique<NNClassifier>(std::move(Model), Classes, "tiny");
  if (WithBuilder)
    C->setModelBuilder([Classes, Side] {
      Rng Throwaway(0);
      return buildModel(Arch::MiniVGG, Classes, Side, Throwaway);
    });
  return C;
}

} // namespace

TEST(NNClassifierClone, WithoutBuilderReturnsNull) {
  auto Victim = tinyVictim(/*WithBuilder=*/false);
  EXPECT_EQ(Victim->clone(), nullptr);
}

TEST(NNClassifierClone, CloneScoresBitIdentically) {
  auto Victim = tinyVictim(/*WithBuilder=*/true);
  auto Clone = Victim->clone();
  ASSERT_NE(Clone, nullptr);
  EXPECT_EQ(Clone->numClasses(), Victim->numClasses());
  for (uint64_t Seed = 0; Seed != 5; ++Seed) {
    const Image X = randomImage(8, 8, Seed);
    EXPECT_EQ(Clone->scores(X), Victim->scores(X)) << "image seed " << Seed;
  }
}

TEST(NNClassifierClone, CloneIsIndependentOfTheOriginal) {
  auto Victim = tinyVictim(/*WithBuilder=*/true);
  auto Clone = Victim->clone();
  ASSERT_NE(Clone, nullptr);
  const Image X = randomImage(8, 8, 1);
  const std::vector<float> Expected = Victim->scores(X);
  // Keep querying the original; the clone must not share weights or
  // scratch buffers with it.
  Victim->scores(randomImage(8, 8, 2));
  Victim->scores(randomImage(8, 8, 5));
  EXPECT_EQ(Clone->scores(X), Expected);
}

TEST(NNClassifierClone, ClonesAreThemselvesCloneable) {
  auto Victim = tinyVictim(/*WithBuilder=*/true);
  auto Clone = Victim->clone();
  ASSERT_NE(Clone, nullptr);
  auto Grandclone = Clone->clone();
  ASSERT_NE(Grandclone, nullptr) << "the builder must propagate";
  const Image X = randomImage(8, 8, 3);
  EXPECT_EQ(Grandclone->scores(X), Victim->scores(X));
}

TEST(NNClassifierClone, MakeVictimInstallsABuilder) {
  VictimSpec Spec;
  Spec.Task = TaskKind::CifarLike;
  Spec.Architecture = Arch::MiniVGG;
  Spec.NumClasses = 3;
  Spec.TrainImagesPerClass = 2;
  Spec.Side = 8;
  Spec.Train.Epochs = 1;
  auto Victim = makeVictim(Spec, /*CacheEnabled=*/false);
  auto Clone = Victim->clone();
  ASSERT_NE(Clone, nullptr);
  const Image X = randomImage(8, 8, 4);
  EXPECT_EQ(Clone->scores(X), Victim->scores(X));
}
