//===- tests/classify/BatchForwardTest.cpp - batched == serial, bitwise ------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The engine's correctness rests on NNClassifier::scoresBatch being
// bit-identical to repeated scores() calls. Every inference-mode layer
// treats batch items independently with the same accumulation order, so
// this must hold exactly — for every ModelZoo architecture and for batch
// sizes that exercise one-chunk, odd, and large submissions.
//
//===----------------------------------------------------------------------===//

#include "classify/NNClassifier.h"
#include "nn/ModelZoo.h"
#include "support/Rng.h"

#include "TestUtil.h"
#include <cstring>
#include <gtest/gtest.h>

using namespace oppsla;
using test::randomImage;

namespace {

struct ArchCase {
  Arch A;
  size_t Side;
};

// InputSide must be a multiple of 8 (16 for MiniResNet50).
const ArchCase Cases[] = {
    {Arch::MiniVGG, 8},      {Arch::MiniResNet, 8},
    {Arch::MiniGoogLeNet, 8}, {Arch::MiniDenseNet, 8},
    {Arch::MiniResNet50, 16}, {Arch::Mlp, 8},
};

class BatchForwardTest : public ::testing::TestWithParam<ArchCase> {};

bool bitIdentical(const std::vector<float> &A, const std::vector<float> &B) {
  return A.size() == B.size() &&
         std::memcmp(A.data(), B.data(), A.size() * sizeof(float)) == 0;
}

} // namespace

TEST_P(BatchForwardTest, BitIdenticalToSerial) {
  const ArchCase C = GetParam();
  constexpr size_t Classes = 5;
  Rng R(0xba7c4);
  NNClassifier N(buildModel(C.A, Classes, C.Side, R), Classes,
                 archName(C.A));

  for (const size_t BatchSize : {1u, 2u, 7u, 32u}) {
    std::vector<Image> Imgs;
    Imgs.reserve(BatchSize);
    for (size_t I = 0; I != BatchSize; ++I)
      Imgs.push_back(randomImage(C.Side, C.Side, 0x1000 + I));

    const std::vector<std::vector<float>> Batched =
        N.scoresBatch(std::span<const Image>(Imgs));
    ASSERT_EQ(Batched.size(), BatchSize);
    for (size_t I = 0; I != BatchSize; ++I) {
      const std::vector<float> Serial = N.scores(Imgs[I]);
      ASSERT_EQ(Serial.size(), Classes);
      EXPECT_TRUE(bitIdentical(Batched[I], Serial))
          << archName(C.A) << " batch " << BatchSize << " item " << I;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, BatchForwardTest,
                         ::testing::ValuesIn(Cases),
                         [](const ::testing::TestParamInfo<ArchCase> &Info) {
                           return std::string(archName(Info.param.A));
                         });

TEST(BatchForward, InterleavingBatchAndSerialIsStateless) {
  // Inference forwards must not leak state between submissions: serial,
  // then batched, then serial again all agree.
  constexpr size_t Classes = 4;
  Rng R(0x5eed1);
  NNClassifier N(buildModel(Arch::MiniResNet, Classes, 8, R), Classes,
                 "MiniResNet");
  const Image A = randomImage(8, 8, 1), B = randomImage(8, 8, 2);
  const std::vector<float> SA1 = N.scores(A);
  const std::vector<Image> Both{A, B};
  const auto Batched = N.scoresBatch(std::span<const Image>(Both));
  const std::vector<float> SA2 = N.scores(A);
  EXPECT_TRUE(bitIdentical(SA1, SA2));
  EXPECT_TRUE(bitIdentical(SA1, Batched[0]));
}
