//===- tests/classify/ClassifyTest.cpp - Classifier layer tests ---------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "classify/NNClassifier.h"
#include "classify/QueryCounter.h"
#include "nn/ModelZoo.h"
#include "support/Rng.h"
#include "support/Trace.h"

#include "../JsonTestUtil.h"
#include "../TestUtil.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>

using namespace oppsla;
using namespace oppsla::test;

TEST(ArgmaxScore, PicksLargest) {
  EXPECT_EQ(argmaxScore({0.1f, 0.7f, 0.2f}), 1u);
  EXPECT_EQ(argmaxScore({5.0f}), 0u);
  EXPECT_EQ(argmaxScore({1.0f, 1.0f}), 0u) << "first wins ties";
}

TEST(FakeClassifier, CountsCalls) {
  FakeClassifier C = robustClassifier();
  const Image Img(4, 4);
  EXPECT_EQ(C.calls(), 0u);
  C.scores(Img);
  C.predict(Img);
  EXPECT_EQ(C.calls(), 2u);
  EXPECT_EQ(C.predict(Img), 0u);
}

TEST(NNClassifier, ReturnsProbabilityDistribution) {
  Rng R(1);
  auto Net = buildModel(Arch::MiniVGG, 10, 16, R);
  NNClassifier C(std::move(Net), 10, "test-vgg");
  const Image Img = gradientImage(16, 16);
  const std::vector<float> S = C.scores(Img);
  ASSERT_EQ(S.size(), 10u);
  float Sum = 0.0f;
  for (float V : S) {
    EXPECT_GT(V, 0.0f);
    Sum += V;
  }
  EXPECT_NEAR(Sum, 1.0f, 1e-5f);
  EXPECT_EQ(C.numClasses(), 10u);
  EXPECT_EQ(C.name(), "test-vgg");
}

TEST(NNClassifier, DeterministicScores) {
  Rng R(2);
  auto Net = buildModel(Arch::MiniResNet, 10, 16, R);
  NNClassifier C(std::move(Net), 10, "det");
  const Image Img = randomImage(16, 16, 3);
  const auto S1 = C.scores(Img);
  const auto S2 = C.scores(Img);
  EXPECT_EQ(S1, S2);
}

TEST(NNClassifier, SensitiveToInput) {
  Rng R(4);
  auto Net = buildModel(Arch::MiniVGG, 10, 16, R);
  NNClassifier C(std::move(Net), 10, "sens");
  const Image A = randomImage(16, 16, 5);
  const Image B = randomImage(16, 16, 6);
  EXPECT_NE(C.scores(A), C.scores(B));
}

TEST(QueryCounter, CountsAndDelegates) {
  FakeClassifier Inner = robustClassifier(4);
  QueryCounter Q(Inner);
  const Image Img(2, 2);
  const auto S = Q.scores(Img);
  ASSERT_EQ(S.size(), 4u);
  EXPECT_EQ(Q.count(), 1u);
  EXPECT_EQ(Q.numClasses(), 4u);
  EXPECT_FALSE(Q.exhausted());
  Q.scores(Img);
  EXPECT_EQ(Q.count(), 2u);
}

TEST(QueryCounter, EnforcesBudget) {
  FakeClassifier Inner = robustClassifier();
  QueryCounter Q(Inner, /*Budget=*/2);
  const Image Img(2, 2);
  EXPECT_FALSE(Q.scores(Img).empty());
  EXPECT_FALSE(Q.scores(Img).empty());
  EXPECT_TRUE(Q.scores(Img).empty()) << "third call exceeds budget";
  EXPECT_TRUE(Q.exhausted());
  EXPECT_EQ(Q.count(), 2u) << "rejected calls are not counted";
  EXPECT_EQ(Inner.calls(), 2u) << "rejected calls never reach the network";
}

TEST(QueryCounter, RemainingAndReset) {
  FakeClassifier Inner = robustClassifier();
  QueryCounter Q(Inner, 5);
  const Image Img(2, 2);
  Q.scores(Img);
  EXPECT_EQ(Q.remaining(), 4u);
  Q.reset(3);
  EXPECT_EQ(Q.count(), 0u);
  EXPECT_EQ(Q.budget(), 3u);
  EXPECT_FALSE(Q.exhausted());
}

TEST(QueryCounter, UnlimitedByDefault) {
  FakeClassifier Inner = robustClassifier();
  QueryCounter Q(Inner);
  const Image Img(2, 2);
  for (int I = 0; I != 1000; ++I)
    EXPECT_FALSE(Q.scores(Img).empty());
  EXPECT_EQ(Q.count(), 1000u);
}

TEST(QueryCounter, RemainingStaysUnlimited) {
  FakeClassifier Inner = robustClassifier();
  QueryCounter Q(Inner, QueryCounter::Unlimited);
  const Image Img(2, 2);
  EXPECT_EQ(Q.remaining(), QueryCounter::Unlimited);
  Q.scores(Img);
  Q.scores(Img);
  // Unlimited is a sentinel, not a number: it must not shrink as queries
  // are spent (Unlimited - 2 would be a bogus, near-Unlimited budget).
  EXPECT_EQ(Q.remaining(), QueryCounter::Unlimited);
  EXPECT_FALSE(Q.exhausted());
  Q.reset(3);
  EXPECT_EQ(Q.remaining(), 3u);
  Q.scores(Img);
  EXPECT_EQ(Q.remaining(), 2u);
}

TEST(QueryCounter, EmitsPerQueryTraceEvents) {
  const std::string Path =
      (std::filesystem::temp_directory_path() / "oppsla_query_trace.jsonl")
          .string();
  ASSERT_TRUE(telemetry::TraceWriter::instance().open(Path));

  FakeClassifier Inner(3, [](const Image &) {
    return std::vector<float>{0.2f, 0.7f, 0.1f};
  });
  QueryCounter Q(Inner, 2);
  Q.setTraceTrueClass(0);
  telemetry::setTraceImage(5);
  const Image Img(2, 2);
  Q.scores(Img);
  Q.scores(Img);
  Q.scores(Img); // over budget: no query, no event
  telemetry::setTraceImage(-1);
  telemetry::TraceWriter::instance().close();

  std::ifstream In(Path);
  std::string Line;
  size_t Events = 0;
  while (std::getline(In, Line)) {
    std::map<std::string, std::string> F;
    ASSERT_TRUE(parseJsonObject(Line, F)) << Line;
    EXPECT_EQ(F["type"], "query");
    EXPECT_EQ(F["idx"], std::to_string(++Events));
    EXPECT_EQ(F["image"], "5");
    EXPECT_EQ(F["pred"], "1");
    // Untargeted margin to the declared true class: 0.2 - 0.7.
    EXPECT_NEAR(std::stod(F["margin"]), -0.5, 1e-6);
  }
  EXPECT_EQ(Events, 2u) << "one event per counted query, none over budget";
  std::remove(Path.c_str());
}
