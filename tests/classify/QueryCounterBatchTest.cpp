//===- tests/classify/QueryCounterBatchTest.cpp - shared/batch accounting ----===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The counter must be safe to share across the engine's batch submissions
// and must charge logical queries per image in deterministic index order:
// a batch of N costs exactly what N serial queries cost, and a budget cuts
// a batch to its granted prefix.
//
//===----------------------------------------------------------------------===//

#include "classify/QueryCounter.h"

#include "TestUtil.h"
#include <gtest/gtest.h>
#include <thread>

using namespace oppsla;
using test::FakeClassifier;
using test::randomImage;

namespace {

FakeClassifier constantClassifier() {
  return FakeClassifier(3, [](const Image &) {
    return std::vector<float>{0.7f, 0.2f, 0.1f};
  });
}

std::vector<Image> distinctImages(size_t N) {
  std::vector<Image> Out;
  Out.reserve(N);
  for (size_t I = 0; I != N; ++I)
    Out.push_back(randomImage(4, 4, 0xc0 + I));
  return Out;
}

/// Records what reaches the inner classifier through prefetch.
class PrefetchProbe : public FakeClassifier {
public:
  using FakeClassifier::FakeClassifier;
  void prefetch(std::span<const Image> Imgs) override {
    PrefetchSizes.push_back(Imgs.size());
  }
  bool prefetchable() const override { return true; }
  std::vector<size_t> PrefetchSizes;
};

} // namespace

TEST(QueryCounterBatch, BatchChargesPerImage) {
  FakeClassifier Inner = constantClassifier();
  QueryCounter Q(Inner);
  const std::vector<Image> Imgs = distinctImages(5);
  const auto Out = Q.scoresBatch(std::span<const Image>(Imgs));
  ASSERT_EQ(Out.size(), 5u);
  for (const auto &S : Out)
    EXPECT_EQ(S.size(), 3u);
  EXPECT_EQ(Q.count(), 5u);
  EXPECT_FALSE(Q.exhausted());
}

TEST(QueryCounterBatch, BudgetGrantsPrefixInIndexOrder) {
  FakeClassifier Inner = constantClassifier();
  QueryCounter Q(Inner, /*Budget=*/3);
  const std::vector<Image> Imgs = distinctImages(5);
  const auto Out = Q.scoresBatch(std::span<const Image>(Imgs));
  ASSERT_EQ(Out.size(), 5u);
  // Exactly the first three images were queried; the rest are the same
  // empty vectors serial over-budget calls return.
  for (size_t I = 0; I != 3; ++I)
    EXPECT_FALSE(Out[I].empty()) << "index " << I;
  for (size_t I = 3; I != 5; ++I)
    EXPECT_TRUE(Out[I].empty()) << "index " << I;
  EXPECT_EQ(Q.count(), 3u);
  EXPECT_TRUE(Q.exhausted());
  EXPECT_EQ(Inner.calls(), 3u);
}

TEST(QueryCounterBatch, ExactBudgetConsumptionIsNotExhaustedYet) {
  FakeClassifier Inner = constantClassifier();
  QueryCounter Q(Inner, /*Budget=*/4);
  const std::vector<Image> Imgs = distinctImages(4);
  (void)Q.scoresBatch(std::span<const Image>(Imgs));
  // Matches serial semantics: exhaustion is flagged by the first *denied*
  // query, not by consuming the last unit.
  EXPECT_EQ(Q.count(), 4u);
  EXPECT_FALSE(Q.exhausted());
  EXPECT_TRUE(Q.scores(Imgs[0]).empty());
  EXPECT_TRUE(Q.exhausted());
}

TEST(QueryCounterBatch, BatchOfNCostsSameAsNSerial) {
  const std::vector<Image> Imgs = distinctImages(7);

  FakeClassifier SerialInner = constantClassifier();
  QueryCounter Serial(SerialInner, 100);
  for (const Image &Img : Imgs)
    (void)Serial.scores(Img);

  FakeClassifier BatchInner = constantClassifier();
  QueryCounter Batch(BatchInner, 100);
  (void)Batch.scoresBatch(std::span<const Image>(Imgs));

  EXPECT_EQ(Serial.count(), Batch.count());
  EXPECT_EQ(Serial.remaining(), Batch.remaining());
}

namespace {

/// Stateless, thread-safe inner classifier for the concurrency test
/// (FakeClassifier's call counter is deliberately not atomic).
class StatelessClassifier : public Classifier {
public:
  std::vector<float> scores(const Image &) override {
    return {0.7f, 0.2f, 0.1f};
  }
  size_t numClasses() const override { return 3; }
};

} // namespace

TEST(QueryCounterBatch, ConcurrentClaimsNeverOvershootBudget) {
  StatelessClassifier Inner;
  constexpr uint64_t Budget = 256;
  QueryCounter Q(Inner, Budget);
  const std::vector<Image> Imgs = distinctImages(4);

  // 8 threads submitting batches of 4 until denied: the counter must hand
  // out exactly Budget grants in total, no lost or duplicated units.
  std::vector<std::thread> Threads;
  std::vector<uint64_t> Granted(8, 0);
  for (size_t T = 0; T != 8; ++T)
    Threads.emplace_back([&, T] {
      for (;;) {
        const auto Out = Q.scoresBatch(std::span<const Image>(Imgs));
        uint64_t NonEmpty = 0;
        for (const auto &S : Out)
          NonEmpty += !S.empty();
        Granted[T] += NonEmpty;
        if (NonEmpty < Imgs.size())
          return;
      }
    });
  for (std::thread &T : Threads)
    T.join();

  uint64_t Total = 0;
  for (uint64_t G : Granted)
    Total += G;
  EXPECT_EQ(Total, Budget);
  EXPECT_EQ(Q.count(), Budget);
  EXPECT_TRUE(Q.exhausted());
}

TEST(QueryCounterBatch, PrefetchForwardsOnlyRemainingBudget) {
  PrefetchProbe Inner(3, [](const Image &) {
    return std::vector<float>{0.7f, 0.2f, 0.1f};
  });
  QueryCounter Q(Inner, /*Budget=*/4);
  EXPECT_TRUE(Q.prefetchable());
  const std::vector<Image> Imgs = distinctImages(6);

  Q.prefetch(Imgs);
  ASSERT_EQ(Inner.PrefetchSizes.size(), 1u);
  EXPECT_EQ(Inner.PrefetchSizes[0], 4u); // clipped to remaining()
  EXPECT_EQ(Q.count(), 0u);              // prefetch is never charged

  (void)Q.scores(Imgs[0]);
  (void)Q.scores(Imgs[1]);
  Q.prefetch(Imgs);
  ASSERT_EQ(Inner.PrefetchSizes.size(), 2u);
  EXPECT_EQ(Inner.PrefetchSizes[1], 2u);

  (void)Q.scores(Imgs[2]);
  (void)Q.scores(Imgs[3]);
  Q.prefetch(Imgs); // budget gone: nothing forwarded
  EXPECT_EQ(Inner.PrefetchSizes.size(), 2u);
}

TEST(QueryCounterBatch, UnlimitedBudgetBatch) {
  FakeClassifier Inner = constantClassifier();
  QueryCounter Q(Inner);
  const std::vector<Image> Imgs = distinctImages(9);
  const auto Out = Q.scoresBatch(std::span<const Image>(Imgs));
  for (const auto &S : Out)
    EXPECT_FALSE(S.empty());
  EXPECT_EQ(Q.count(), 9u);
  EXPECT_EQ(Q.remaining(), QueryCounter::Unlimited);
}
