//===- tests/TestUtil.h - Shared test helpers -------------------*- C++ -*-===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef OPPSLA_TESTS_TESTUTIL_H
#define OPPSLA_TESTS_TESTUTIL_H

#include "classify/Classifier.h"
#include "data/Image.h"
#include "support/Rng.h"

#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace oppsla::test {

/// A classifier defined by an arbitrary scoring function; the workhorse of
/// the attack/sketch tests (no neural network needed).
class FakeClassifier : public Classifier {
public:
  using ScoreFn = std::function<std::vector<float>(const Image &)>;

  FakeClassifier(size_t NumClasses, ScoreFn Fn)
      : Classes(NumClasses), Fn(std::move(Fn)) {}

  std::vector<float> scores(const Image &Img) override {
    ++Calls;
    return Fn(Img);
  }
  size_t numClasses() const override { return Classes; }

  /// Clones share the scoring function (which tests keep pure) but count
  /// their queries separately; calls() on the original only reflects its
  /// own queries.
  std::unique_ptr<Classifier> clone() const override {
    return std::make_unique<FakeClassifier>(Classes, Fn);
  }

  size_t calls() const { return Calls; }

private:
  size_t Classes;
  ScoreFn Fn;
  size_t Calls = 0;
};

/// A classifier that always answers class 0 with fixed confidence — no
/// image is adversarially attackable.
inline FakeClassifier robustClassifier(size_t NumClasses = 3) {
  return FakeClassifier(NumClasses, [NumClasses](const Image &) {
    std::vector<float> S(NumClasses, 0.1f);
    S[0] = 0.8f;
    return S;
  });
}

/// Deterministic test image with smoothly varying pixel values in (0,1).
inline Image gradientImage(size_t H, size_t W) {
  Image Img(H, W);
  for (size_t I = 0; I != H; ++I)
    for (size_t J = 0; J != W; ++J) {
      const float T =
          static_cast<float>(I * W + J) / static_cast<float>(H * W);
      Img.setPixel(I, J, Pixel{0.1f + 0.8f * T, 0.9f - 0.8f * T,
                               0.2f + 0.6f * T * T});
    }
  return Img;
}

/// Deterministic pseudo-random image.
inline Image randomImage(size_t H, size_t W, uint64_t Seed) {
  Rng R(Seed);
  Image Img(H, W);
  for (float &V : Img.raw())
    V = R.uniformF();
  return Img;
}

} // namespace oppsla::test

#endif // OPPSLA_TESTS_TESTUTIL_H
