//===- tests/core/SketchTest.cpp - Algorithm 1 tests --------------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Tests of the sketch executor, including its key semantic invariants:
//   (1) exhaustiveness — every instantiation queries every pair at most
//       once and finds an adversarial pair iff one exists;
//   (2) the conditions only affect the *order* of queries, never the set;
//   (3) the initial prioritization matches Appendix A.
//
//===----------------------------------------------------------------------===//

#include "core/Sketch.h"
#include "core/Mutation.h"
#include "support/Rng.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

#include <map>

using namespace oppsla;
using namespace oppsla::test;

namespace {

/// Classifier that flips to class 1 iff pixel (Row, Col) is set to the
/// given corner value; otherwise returns a fixed distribution whose true
/// confidence dips slightly with pixel brightness (so score_diff varies).
FakeClassifier vulnerableAt(uint16_t Row, uint16_t Col, CornerIdx Corner) {
  const Pixel Target = cornerPixel(Corner);
  return FakeClassifier(3, [Row, Col, Target](const Image &X) {
    std::vector<float> S = {0.7f, 0.2f, 0.1f};
    if (X.pixel(Row, Col) == Target) {
      S[0] = 0.1f;
      S[1] = 0.8f;
    }
    return S;
  });
}

/// Records, in order, each queried (location, corner) pair. Never flips.
struct QueryRecorder {
  const Image &Clean;
  std::vector<LocPert> Seen;

  explicit QueryRecorder(const Image &Clean) : Clean(Clean) {}

  FakeClassifier make() {
    return FakeClassifier(2, [this](const Image &X) {
      // Diff the image against the clean one to recover the queried pair.
      for (size_t I = 0; I != Clean.height(); ++I)
        for (size_t J = 0; J != Clean.width(); ++J)
          if (!(X.pixel(I, J) == Clean.pixel(I, J))) {
            const Pixel P = X.pixel(I, J);
            for (CornerIdx C = 0; C != NumCorners; ++C)
              if (P == cornerPixel(C))
                Seen.push_back(LocPert{
                    PixelLoc{static_cast<uint16_t>(I),
                             static_cast<uint16_t>(J)},
                    C});
            return std::vector<float>{0.9f, 0.1f};
          }
      return std::vector<float>{0.9f, 0.1f}; // the clean-image query
    });
  }
};

} // namespace

TEST(Sketch, FindsThePlantedAdversarialPair) {
  const Image X = gradientImage(4, 4);
  FakeClassifier N = vulnerableAt(1, 2, 5);
  Sketch Sk(allFalseProgram());
  const SketchResult R = Sk.run(N, X, /*TrueClass=*/0);
  ASSERT_TRUE(R.Success);
  EXPECT_FALSE(R.AlreadyMisclassified);
  EXPECT_EQ(R.Adversarial.Loc.Row, 1u);
  EXPECT_EQ(R.Adversarial.Loc.Col, 2u);
  EXPECT_EQ(R.Adversarial.Corner, 5);
  EXPECT_GE(R.Queries, 2u); // clean query + at least one pair
  EXPECT_LE(R.Queries, 4u * 4u * 8u + 1u);
}

TEST(Sketch, ReportsFailureWhenNoPairExists) {
  const Image X = gradientImage(3, 3);
  FakeClassifier N = robustClassifier();
  Sketch Sk(allFalseProgram());
  const SketchResult R = Sk.run(N, X, 0);
  EXPECT_FALSE(R.Success);
  EXPECT_FALSE(R.BudgetExhausted);
  // Exhaustiveness: clean query + every pair exactly once.
  EXPECT_EQ(R.Queries, 3u * 3u * 8u + 1u);
}

TEST(Sketch, DetectsAlreadyMisclassified) {
  const Image X = gradientImage(3, 3);
  FakeClassifier N = robustClassifier();
  Sketch Sk(allFalseProgram());
  const SketchResult R = Sk.run(N, X, /*TrueClass=*/2);
  EXPECT_TRUE(R.Success);
  EXPECT_TRUE(R.AlreadyMisclassified);
  EXPECT_EQ(R.Queries, 1u);
}

TEST(Sketch, RespectsQueryBudget) {
  const Image X = gradientImage(4, 4);
  FakeClassifier N = robustClassifier();
  Sketch Sk(allFalseProgram());
  const SketchResult R = Sk.run(N, X, 0, /*QueryBudget=*/10);
  EXPECT_FALSE(R.Success);
  EXPECT_TRUE(R.BudgetExhausted);
  EXPECT_EQ(R.Queries, 10u);
}

TEST(Sketch, BudgetOfOneOnlyQueriesCleanImage) {
  const Image X = gradientImage(4, 4);
  FakeClassifier N = robustClassifier();
  Sketch Sk(allTrueProgram());
  const SketchResult R = Sk.run(N, X, 0, 1);
  EXPECT_FALSE(R.Success);
  EXPECT_TRUE(R.BudgetExhausted);
  EXPECT_EQ(R.Queries, 1u);
}

TEST(Sketch, QueriesFollowInitialOrderUnderAllFalse) {
  const Image X = randomImage(4, 4, 11);
  QueryRecorder Rec(X);
  FakeClassifier N = Rec.make();
  Sketch Sk(allFalseProgram());
  const SketchResult R = Sk.run(N, X, 0);
  EXPECT_FALSE(R.Success);

  const PairSpace Space(X);
  const std::vector<PairId> Expected = Space.initialOrder();
  ASSERT_EQ(Rec.Seen.size(), Expected.size());
  for (size_t I = 0; I != Expected.size(); ++I)
    EXPECT_EQ(Space.idOf(Rec.Seen[I]), Expected[I]) << "position " << I;
}

TEST(Sketch, EveryProgramQueriesEveryPairExactlyOnce) {
  // The exhaustiveness invariant (Section 3): conditions reorder, never
  // drop or duplicate.
  const Image X = randomImage(4, 5, 13);
  const PairSpace Space(X);
  MutationContext Ctx{4};
  Rng R(17);
  std::vector<Program> Programs = {allFalseProgram(), allTrueProgram(),
                                   paperExampleProgram()};
  for (int I = 0; I != 6; ++I)
    Programs.push_back(randomProgram(Ctx, R));

  for (const Program &P : Programs) {
    QueryRecorder Rec(X);
    FakeClassifier N = Rec.make();
    Sketch Sk(P);
    const SketchResult Res = Sk.run(N, X, 0);
    EXPECT_FALSE(Res.Success);
    ASSERT_EQ(Rec.Seen.size(), Space.size()) << P.str();
    std::map<PairId, size_t> Counts;
    for (const LocPert &LP : Rec.Seen)
      ++Counts[Space.idOf(LP)];
    for (const auto &[Id, Count] : Counts)
      ASSERT_EQ(Count, 1u) << "pair " << Id << " queried " << Count
                           << " times under\n"
                           << P.str();
  }
}

TEST(Sketch, EagerLocConditionChecksNeighborsNext) {
  // B3 always true, everything else false: after the first failed pair,
  // its location neighbors (same corner) must be the very next queries.
  Program P = allFalseProgram();
  P.Conds[2] = {FuncKind::MaxPixel, PixelSource::Original, CmpKind::Greater,
                -1.0}; // always true
  const Image X = randomImage(5, 5, 19);
  QueryRecorder Rec(X);
  FakeClassifier N = Rec.make();
  Sketch Sk(P);
  Sk.run(N, X, 0);

  ASSERT_GT(Rec.Seen.size(), 9u);
  const LocPert First = Rec.Seen[0];
  // The next queries must all be L-inf-1 neighbors of the first pair with
  // the same corner until those are exhausted (8 for the center location).
  const size_t NumNeighbors = 8;
  for (size_t I = 1; I <= NumNeighbors; ++I) {
    EXPECT_EQ(Rec.Seen[I].Corner, First.Corner);
    EXPECT_EQ(Rec.Seen[I].Loc.linfDistance(First.Loc), 1u)
        << "query " << I << " should be adjacent to the first pair";
  }
}

TEST(Sketch, EagerPertConditionChecksSameLocationNext) {
  // B4 always true: after the first failed pair, the next query must be
  // at the same location (the next perturbation for it).
  Program P = allFalseProgram();
  P.Conds[3] = {FuncKind::MaxPixel, PixelSource::Original, CmpKind::Greater,
                -1.0};
  const Image X = randomImage(5, 5, 23);
  QueryRecorder Rec(X);
  FakeClassifier N = Rec.make();
  Sketch Sk(P);
  Sk.run(N, X, 0);

  ASSERT_GT(Rec.Seen.size(), 8u);
  // B4 chains through all 8 corners of the first location before moving on.
  for (size_t I = 1; I != 8; ++I)
    EXPECT_EQ(Rec.Seen[I].Loc, Rec.Seen[0].Loc) << "query " << I;
  EXPECT_FALSE(Rec.Seen[8].Loc == Rec.Seen[0].Loc);
}

TEST(Sketch, PushBackConditionsDelayNeighbors) {
  // B1 always true: after the first pair fails, its location-neighbors
  // (same corner) are pushed to the back — the *second* query must NOT be
  // a neighbor with the same corner (under all-False it would be, since
  // the second-closest-to-center location is adjacent to the center).
  const Image X(5, 5); // all-black image: every location ranks corners
                       // identically, so block 0 = one corner everywhere
  {
    Program P = allFalseProgram();
    QueryRecorder Rec(X);
    FakeClassifier N = Rec.make();
    Sketch(P).run(N, X, 0);
    ASSERT_GT(Rec.Seen.size(), 2u);
    EXPECT_EQ(Rec.Seen[1].Loc.linfDistance(Rec.Seen[0].Loc), 1u)
        << "sanity: under all-False the second query is adjacent";
    EXPECT_EQ(Rec.Seen[1].Corner, Rec.Seen[0].Corner);
  }
  {
    Program P = allFalseProgram();
    P.Conds[0] = {FuncKind::MaxPixel, PixelSource::Original,
                  CmpKind::Greater, -1.0}; // B1 true
    QueryRecorder Rec(X);
    FakeClassifier N = Rec.make();
    Sketch(P).run(N, X, 0);
    ASSERT_GT(Rec.Seen.size(), 2u);
    const bool SecondIsSameCornerNeighbor =
        Rec.Seen[1].Corner == Rec.Seen[0].Corner &&
        Rec.Seen[1].Loc.linfDistance(Rec.Seen[0].Loc) == 1u;
    EXPECT_FALSE(SecondIsSameCornerNeighbor)
        << "B1 must have pushed the neighbors back";
  }
}

TEST(Sketch, SuccessInsideEagerPhaseIsReported) {
  // Vulnerable at a neighbor of the first-popped pair; with B3 true the
  // eager check must find it within a handful of queries.
  const Image X(5, 5);
  const PairSpace Space(X);
  const LocPert First = Space.pairOf(Space.initialOrder().front());
  const uint16_t NRow = First.Loc.Row;
  const auto NCol = static_cast<uint16_t>(First.Loc.Col + 1);
  FakeClassifier N = vulnerableAt(NRow, NCol, First.Corner);

  Program P = allFalseProgram();
  P.Conds[2] = {FuncKind::MaxPixel, PixelSource::Original, CmpKind::Greater,
                -1.0};
  const SketchResult R = Sketch(P).run(N, X, 0);
  ASSERT_TRUE(R.Success);
  EXPECT_EQ(R.Adversarial.Loc.Row, NRow);
  EXPECT_EQ(R.Adversarial.Loc.Col, NCol);
  EXPECT_LE(R.Queries, 10u) << "eager neighbor check must find it fast";
}

TEST(Sketch, PaperExampleProgramIsExhaustiveAndTerminates) {
  const Image X = randomImage(6, 6, 29);
  FakeClassifier N = robustClassifier();
  Sketch Sk(paperExampleProgram());
  const SketchResult R = Sk.run(N, X, 0);
  EXPECT_FALSE(R.Success);
  EXPECT_EQ(R.Queries, 6u * 6u * 8u + 1u);
}

class SketchBudgetSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SketchBudgetSweep, QueriesNeverExceedBudget) {
  const Image X = randomImage(4, 4, 31);
  FakeClassifier N = robustClassifier();
  Sketch Sk(paperExampleProgram());
  const uint64_t Budget = GetParam();
  const SketchResult R = Sk.run(N, X, 0, Budget);
  EXPECT_LE(R.Queries, Budget);
  EXPECT_FALSE(R.Success);
  if (Budget <= 4u * 4u * 8u) {
    EXPECT_TRUE(R.BudgetExhausted);
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, SketchBudgetSweep,
                         ::testing::Values(1, 2, 5, 17, 64, 128, 129, 1000));
