//===- tests/core/SynthesizerTest.cpp - Algorithm 2 tests ---------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Synthesizer.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace oppsla;
using namespace oppsla::test;

namespace {

/// A tiny world where synthesis has something to learn: images are
/// vulnerable exactly at their center pixel with the white corner. A good
/// program (center-prioritizing eager conditions) finds it in very few
/// queries; the fixed order still finds it (center-first ordering), so
/// both succeed but with different query counts when the vulnerable spot
/// is *off*-center.
FakeClassifier offCenterVulnerable(uint16_t Row, uint16_t Col) {
  return FakeClassifier(2, [Row, Col](const Image &X) {
    if (X.pixel(Row, Col) == cornerPixel(7))
      return std::vector<float>{0.2f, 0.8f};
    // Confidence depends mildly on the probed pixel's brightness so that
    // score_diff conditions see varied values.
    return std::vector<float>{0.9f, 0.1f};
  });
}

Dataset tinyTrainSet(size_t N, size_t Side) {
  Dataset DS;
  DS.NumClasses = 2;
  for (size_t I = 0; I != N; ++I) {
    DS.Images.push_back(randomImage(Side, Side, 100 + I));
    DS.Labels.push_back(0);
  }
  return DS;
}

} // namespace

TEST(EvaluateProgram, CountsSuccessesAndQueries) {
  FakeClassifier N = offCenterVulnerable(0, 0);
  const Dataset Train = tinyTrainSet(3, 4);
  const ProgramEval Eval =
      evaluateProgram(allFalseProgram(), N, Train, /*PerImageCap=*/1000);
  EXPECT_EQ(Eval.Attacks, 3u);
  EXPECT_EQ(Eval.Successes, 3u);
  EXPECT_GT(Eval.AvgQueries, 1.0);
  EXPECT_GE(Eval.TotalQueries,
            static_cast<uint64_t>(Eval.AvgQueries * 3));
}

TEST(EvaluateProgram, FailuresExcludedFromAverage) {
  FakeClassifier N = robustClassifier(2);
  const Dataset Train = tinyTrainSet(2, 4);
  const ProgramEval Eval =
      evaluateProgram(allFalseProgram(), N, Train, 50);
  EXPECT_EQ(Eval.Successes, 0u);
  EXPECT_DOUBLE_EQ(Eval.AvgQueries, 0.0);
  EXPECT_EQ(Eval.TotalQueries, 100u) << "two capped runs of 50";
}

TEST(EvaluateProgram, RespectsPerImageCap) {
  FakeClassifier N = robustClassifier(2);
  const Dataset Train = tinyTrainSet(1, 4);
  const ProgramEval Eval =
      evaluateProgram(allFalseProgram(), N, Train, 7);
  EXPECT_EQ(Eval.TotalQueries, 7u);
}

TEST(ProgramEvalScore, MonotoneInQueries) {
  ProgramEval A, B;
  A.Successes = B.Successes = 1;
  A.AvgQueries = 10.0;
  B.AvgQueries = 100.0;
  EXPECT_GT(A.score(0.02), B.score(0.02));
  EXPECT_NEAR(A.score(0.02), std::exp(-0.2), 1e-9);
}

TEST(ProgramEvalScore, ZeroSuccessesScoreZero) {
  ProgramEval E;
  E.AvgQueries = 0.0;
  EXPECT_DOUBLE_EQ(E.score(0.02), 0.0);
}

TEST(Synthesizer, TraceShapeAndMonotonicity) {
  FakeClassifier N = offCenterVulnerable(1, 1);
  const Dataset Train = tinyTrainSet(2, 4);
  SynthesisConfig Config;
  Config.MaxIter = 8;
  Config.PerImageQueryCap = 200;
  Config.Seed = 3;
  std::vector<SynthesisStep> Trace;
  synthesizeProgram(N, Train, Config, &Trace);
  ASSERT_EQ(Trace.size(), 9u) << "initial program + MaxIter iterations";
  EXPECT_EQ(Trace.front().Iteration, 0u);
  EXPECT_TRUE(Trace.front().Accepted);
  uint64_t Prev = 0;
  for (const SynthesisStep &Step : Trace) {
    EXPECT_GE(Step.CumulativeQueries, Prev)
        << "cumulative synthesis queries must be non-decreasing";
    Prev = Step.CumulativeQueries;
  }
}

TEST(Synthesizer, DeterministicGivenSeed) {
  const Dataset Train = tinyTrainSet(2, 4);
  SynthesisConfig Config;
  Config.MaxIter = 5;
  Config.PerImageQueryCap = 128;
  Config.Seed = 11;
  FakeClassifier N1 = offCenterVulnerable(2, 3);
  FakeClassifier N2 = offCenterVulnerable(2, 3);
  const Program A = synthesizeProgram(N1, Train, Config);
  const Program B = synthesizeProgram(N2, Train, Config);
  for (size_t I = 0; I != 4; ++I) {
    EXPECT_EQ(A.Conds[I].Func, B.Conds[I].Func);
    EXPECT_EQ(A.Conds[I].Cmp, B.Conds[I].Cmp);
    EXPECT_DOUBLE_EQ(A.Conds[I].Threshold, B.Conds[I].Threshold);
  }
}

TEST(Synthesizer, ImprovesOverInitialProgramOnAverage) {
  // The planted vulnerability is off-center, so the default ordering pays
  // a positional penalty that good conditions can reduce. Check that the
  // final program is no worse than the initial random one.
  FakeClassifier N = offCenterVulnerable(0, 3);
  const Dataset Train = tinyTrainSet(4, 5);
  SynthesisConfig Config;
  Config.MaxIter = 25;
  Config.PerImageQueryCap = 400;
  Config.Seed = 7;
  std::vector<SynthesisStep> Trace;
  const Program Final = synthesizeProgram(N, Train, Config, &Trace);

  FakeClassifier NEval = offCenterVulnerable(0, 3);
  const double FinalAvg =
      evaluateProgram(Final, NEval, Train, 400).AvgQueries;
  EXPECT_LE(FinalAvg, Trace.front().AvgQueries * 1.25 + 1.0)
      << "MH should not drift far above the starting point";
}

namespace {

bool samePrograms(const Program &A, const Program &B) {
  for (size_t I = 0; I != 4; ++I)
    if (A.Conds[I].Func != B.Conds[I].Func ||
        A.Conds[I].Source != B.Conds[I].Source ||
        A.Conds[I].Cmp != B.Conds[I].Cmp ||
        A.Conds[I].Threshold != B.Conds[I].Threshold)
      return false;
  return true;
}

} // namespace

TEST(IslandSynthesis, DeterministicAcrossThreadCounts) {
  // The island result is a pure function of (Seed, Islands,
  // ExchangeInterval): islands evaluate serially on their own clone and
  // exchanges consume no randomness, so the thread count can never leak
  // into a program byte.
  const Dataset Train = tinyTrainSet(3, 4);
  SynthesisConfig Config;
  Config.MaxIter = 10;
  Config.PerImageQueryCap = 128;
  Config.Seed = 17;
  Config.Islands = 4;
  Config.ExchangeInterval = 3;

  FakeClassifier N1 = offCenterVulnerable(2, 1);
  Config.Threads = 4;
  std::vector<IslandElite> E1;
  const Program A = synthesizeProgram(N1, Train, Config, nullptr, &E1);

  FakeClassifier N2 = offCenterVulnerable(2, 1);
  Config.Threads = 1;
  std::vector<IslandElite> E2;
  const Program B = synthesizeProgram(N2, Train, Config, nullptr, &E2);

  EXPECT_TRUE(samePrograms(A, B));
  ASSERT_EQ(E1.size(), 4u);
  ASSERT_EQ(E2.size(), 4u);
  for (size_t I = 0; I != 4; ++I) {
    EXPECT_TRUE(samePrograms(E1[I].P, E2[I].P)) << "island " << I;
    EXPECT_DOUBLE_EQ(E1[I].Score, E2[I].Score) << "island " << I;
    EXPECT_DOUBLE_EQ(E1[I].Eval.AvgQueries, E2[I].Eval.AvgQueries);
  }
}

TEST(IslandSynthesis, EliteExchangeDeterministicAndBestReturned) {
  // Two identical runs agree byte for byte, the elite vector has one
  // entry per island, and the returned program is the first-wins argmax
  // over the island elites (best-seen semantics).
  const Dataset Train = tinyTrainSet(2, 4);
  SynthesisConfig Config;
  Config.MaxIter = 9;
  Config.PerImageQueryCap = 200;
  Config.Seed = 23;
  Config.Islands = 3;
  Config.ExchangeInterval = 2;

  FakeClassifier N1 = offCenterVulnerable(1, 2);
  std::vector<IslandElite> E1;
  const Program A = synthesizeProgram(N1, Train, Config, nullptr, &E1);
  FakeClassifier N2 = offCenterVulnerable(1, 2);
  std::vector<IslandElite> E2;
  const Program B = synthesizeProgram(N2, Train, Config, nullptr, &E2);

  EXPECT_TRUE(samePrograms(A, B));
  ASSERT_EQ(E1.size(), 3u);
  size_t BestIdx = 0;
  for (size_t I = 1; I != E1.size(); ++I)
    if (E1[I].Score > E1[BestIdx].Score)
      BestIdx = I;
  EXPECT_TRUE(samePrograms(A, E1[BestIdx].P))
      << "returned program must be the best island elite";
  for (size_t I = 0; I != E1.size(); ++I)
    EXPECT_LE(E1[I].Score, E1[BestIdx].Score);
}

TEST(IslandSynthesis, TraceRecordsEliteTrajectoryPerRound) {
  // Islands > 1 traces the elite trajectory: step 0 is the best initial
  // program, then one step per exchange round with cumulative queries
  // summed across islands, non-decreasing.
  const Dataset Train = tinyTrainSet(2, 4);
  SynthesisConfig Config;
  Config.MaxIter = 10;
  Config.PerImageQueryCap = 128;
  Config.Seed = 5;
  Config.Islands = 2;
  Config.ExchangeInterval = 4;
  FakeClassifier N = offCenterVulnerable(0, 1);
  std::vector<SynthesisStep> Trace;
  synthesizeProgram(N, Train, Config, &Trace);
  // Rounds: ceil(10 / 4) = 3, plus the initial step.
  ASSERT_EQ(Trace.size(), 4u);
  EXPECT_EQ(Trace.front().Iteration, 0u);
  EXPECT_TRUE(Trace.front().Accepted);
  EXPECT_EQ(Trace.back().Iteration, 10u);
  uint64_t Prev = 0;
  for (const SynthesisStep &Step : Trace) {
    EXPECT_GE(Step.CumulativeQueries, Prev);
    Prev = Step.CumulativeQueries;
  }
}

TEST(IslandSynthesis, SingleIslandKeepsLegacyChain) {
  // Islands == 1 must stay byte-identical to the pre-island synthesizer:
  // same trace shape, same program as a default-config run.
  const Dataset Train = tinyTrainSet(2, 4);
  SynthesisConfig Legacy;
  Legacy.MaxIter = 6;
  Legacy.PerImageQueryCap = 128;
  Legacy.Seed = 29;
  SynthesisConfig OneIsland = Legacy;
  OneIsland.Islands = 1;
  OneIsland.ExchangeInterval = 2; // ignored on the legacy chain

  FakeClassifier N1 = offCenterVulnerable(3, 0);
  std::vector<SynthesisStep> T1;
  const Program A = synthesizeProgram(N1, Train, Legacy, &T1);
  FakeClassifier N2 = offCenterVulnerable(3, 0);
  std::vector<SynthesisStep> T2;
  const Program B = synthesizeProgram(N2, Train, OneIsland, &T2);

  EXPECT_TRUE(samePrograms(A, B));
  ASSERT_EQ(T1.size(), T2.size());
  ASSERT_EQ(T1.size(), 7u) << "initial program + MaxIter iterations";
  for (size_t I = 0; I != T1.size(); ++I) {
    EXPECT_EQ(T1[I].Accepted, T2[I].Accepted);
    EXPECT_EQ(T1[I].CumulativeQueries, T2[I].CumulativeQueries);
  }
}

TEST(RandomSearchProgram, ReturnsBestOfSamples) {
  FakeClassifier N = offCenterVulnerable(1, 2);
  const Dataset Train = tinyTrainSet(3, 4);
  const Program Best =
      randomSearchProgram(N, Train, /*NumSamples=*/12, 300, /*Seed=*/5);
  // The returned program must attack successfully.
  FakeClassifier NEval = offCenterVulnerable(1, 2);
  const ProgramEval Eval = evaluateProgram(Best, NEval, Train, 300);
  EXPECT_EQ(Eval.Successes, 3u);
}

TEST(RandomSearchProgram, FallsBackWhenNothingSucceeds) {
  FakeClassifier N = robustClassifier(2);
  const Dataset Train = tinyTrainSet(1, 4);
  const Program P = randomSearchProgram(N, Train, 3, 20, 9);
  // Falls back to the all-False program; evaluate it to confirm validity.
  FakeClassifier NEval = robustClassifier(2);
  const ProgramEval Eval = evaluateProgram(P, NEval, Train, 20);
  EXPECT_EQ(Eval.Successes, 0u);
}
