//===- tests/core/SynthesizerTest.cpp - Algorithm 2 tests ---------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Synthesizer.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace oppsla;
using namespace oppsla::test;

namespace {

/// A tiny world where synthesis has something to learn: images are
/// vulnerable exactly at their center pixel with the white corner. A good
/// program (center-prioritizing eager conditions) finds it in very few
/// queries; the fixed order still finds it (center-first ordering), so
/// both succeed but with different query counts when the vulnerable spot
/// is *off*-center.
FakeClassifier offCenterVulnerable(uint16_t Row, uint16_t Col) {
  return FakeClassifier(2, [Row, Col](const Image &X) {
    if (X.pixel(Row, Col) == cornerPixel(7))
      return std::vector<float>{0.2f, 0.8f};
    // Confidence depends mildly on the probed pixel's brightness so that
    // score_diff conditions see varied values.
    return std::vector<float>{0.9f, 0.1f};
  });
}

Dataset tinyTrainSet(size_t N, size_t Side) {
  Dataset DS;
  DS.NumClasses = 2;
  for (size_t I = 0; I != N; ++I) {
    DS.Images.push_back(randomImage(Side, Side, 100 + I));
    DS.Labels.push_back(0);
  }
  return DS;
}

} // namespace

TEST(EvaluateProgram, CountsSuccessesAndQueries) {
  FakeClassifier N = offCenterVulnerable(0, 0);
  const Dataset Train = tinyTrainSet(3, 4);
  const ProgramEval Eval =
      evaluateProgram(allFalseProgram(), N, Train, /*PerImageCap=*/1000);
  EXPECT_EQ(Eval.Attacks, 3u);
  EXPECT_EQ(Eval.Successes, 3u);
  EXPECT_GT(Eval.AvgQueries, 1.0);
  EXPECT_GE(Eval.TotalQueries,
            static_cast<uint64_t>(Eval.AvgQueries * 3));
}

TEST(EvaluateProgram, FailuresExcludedFromAverage) {
  FakeClassifier N = robustClassifier(2);
  const Dataset Train = tinyTrainSet(2, 4);
  const ProgramEval Eval =
      evaluateProgram(allFalseProgram(), N, Train, 50);
  EXPECT_EQ(Eval.Successes, 0u);
  EXPECT_DOUBLE_EQ(Eval.AvgQueries, 0.0);
  EXPECT_EQ(Eval.TotalQueries, 100u) << "two capped runs of 50";
}

TEST(EvaluateProgram, RespectsPerImageCap) {
  FakeClassifier N = robustClassifier(2);
  const Dataset Train = tinyTrainSet(1, 4);
  const ProgramEval Eval =
      evaluateProgram(allFalseProgram(), N, Train, 7);
  EXPECT_EQ(Eval.TotalQueries, 7u);
}

TEST(ProgramEvalScore, MonotoneInQueries) {
  ProgramEval A, B;
  A.Successes = B.Successes = 1;
  A.AvgQueries = 10.0;
  B.AvgQueries = 100.0;
  EXPECT_GT(A.score(0.02), B.score(0.02));
  EXPECT_NEAR(A.score(0.02), std::exp(-0.2), 1e-9);
}

TEST(ProgramEvalScore, ZeroSuccessesScoreZero) {
  ProgramEval E;
  E.AvgQueries = 0.0;
  EXPECT_DOUBLE_EQ(E.score(0.02), 0.0);
}

TEST(Synthesizer, TraceShapeAndMonotonicity) {
  FakeClassifier N = offCenterVulnerable(1, 1);
  const Dataset Train = tinyTrainSet(2, 4);
  SynthesisConfig Config;
  Config.MaxIter = 8;
  Config.PerImageQueryCap = 200;
  Config.Seed = 3;
  std::vector<SynthesisStep> Trace;
  synthesizeProgram(N, Train, Config, &Trace);
  ASSERT_EQ(Trace.size(), 9u) << "initial program + MaxIter iterations";
  EXPECT_EQ(Trace.front().Iteration, 0u);
  EXPECT_TRUE(Trace.front().Accepted);
  uint64_t Prev = 0;
  for (const SynthesisStep &Step : Trace) {
    EXPECT_GE(Step.CumulativeQueries, Prev)
        << "cumulative synthesis queries must be non-decreasing";
    Prev = Step.CumulativeQueries;
  }
}

TEST(Synthesizer, DeterministicGivenSeed) {
  const Dataset Train = tinyTrainSet(2, 4);
  SynthesisConfig Config;
  Config.MaxIter = 5;
  Config.PerImageQueryCap = 128;
  Config.Seed = 11;
  FakeClassifier N1 = offCenterVulnerable(2, 3);
  FakeClassifier N2 = offCenterVulnerable(2, 3);
  const Program A = synthesizeProgram(N1, Train, Config);
  const Program B = synthesizeProgram(N2, Train, Config);
  for (size_t I = 0; I != 4; ++I) {
    EXPECT_EQ(A.Conds[I].Func, B.Conds[I].Func);
    EXPECT_EQ(A.Conds[I].Cmp, B.Conds[I].Cmp);
    EXPECT_DOUBLE_EQ(A.Conds[I].Threshold, B.Conds[I].Threshold);
  }
}

TEST(Synthesizer, ImprovesOverInitialProgramOnAverage) {
  // The planted vulnerability is off-center, so the default ordering pays
  // a positional penalty that good conditions can reduce. Check that the
  // final program is no worse than the initial random one.
  FakeClassifier N = offCenterVulnerable(0, 3);
  const Dataset Train = tinyTrainSet(4, 5);
  SynthesisConfig Config;
  Config.MaxIter = 25;
  Config.PerImageQueryCap = 400;
  Config.Seed = 7;
  std::vector<SynthesisStep> Trace;
  const Program Final = synthesizeProgram(N, Train, Config, &Trace);

  FakeClassifier NEval = offCenterVulnerable(0, 3);
  const double FinalAvg =
      evaluateProgram(Final, NEval, Train, 400).AvgQueries;
  EXPECT_LE(FinalAvg, Trace.front().AvgQueries * 1.25 + 1.0)
      << "MH should not drift far above the starting point";
}

TEST(RandomSearchProgram, ReturnsBestOfSamples) {
  FakeClassifier N = offCenterVulnerable(1, 2);
  const Dataset Train = tinyTrainSet(3, 4);
  const Program Best =
      randomSearchProgram(N, Train, /*NumSamples=*/12, 300, /*Seed=*/5);
  // The returned program must attack successfully.
  FakeClassifier NEval = offCenterVulnerable(1, 2);
  const ProgramEval Eval = evaluateProgram(Best, NEval, Train, 300);
  EXPECT_EQ(Eval.Successes, 3u);
}

TEST(RandomSearchProgram, FallsBackWhenNothingSucceeds) {
  FakeClassifier N = robustClassifier(2);
  const Dataset Train = tinyTrainSet(1, 4);
  const Program P = randomSearchProgram(N, Train, 3, 20, 9);
  // Falls back to the all-False program; evaluate it to confirm validity.
  FakeClassifier NEval = robustClassifier(2);
  const ProgramEval Eval = evaluateProgram(P, NEval, Train, 20);
  EXPECT_EQ(Eval.Successes, 0u);
}
