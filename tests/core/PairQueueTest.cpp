//===- tests/core/PairQueueTest.cpp - PairQueue unit tests --------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/PairQueue.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <list>

using namespace oppsla;

namespace {

std::vector<PairId> iota(size_t N) {
  std::vector<PairId> V(N);
  for (size_t I = 0; I != N; ++I)
    V[I] = static_cast<PairId>(I);
  return V;
}

} // namespace

TEST(PairQueue, PopsInInsertionOrder) {
  PairQueue Q({3, 1, 4, 0}, 5);
  EXPECT_EQ(Q.size(), 4u);
  EXPECT_EQ(Q.front(), 3u);
  EXPECT_EQ(Q.popFront(), 3u);
  EXPECT_EQ(Q.popFront(), 1u);
  EXPECT_EQ(Q.popFront(), 4u);
  EXPECT_EQ(Q.popFront(), 0u);
  EXPECT_TRUE(Q.empty());
}

TEST(PairQueue, ContainsTracksMembership) {
  PairQueue Q(iota(4), 4);
  EXPECT_TRUE(Q.contains(2));
  Q.remove(2);
  EXPECT_FALSE(Q.contains(2));
  EXPECT_EQ(Q.size(), 3u);
  EXPECT_EQ(Q.popFront(), 0u);
  EXPECT_EQ(Q.popFront(), 1u);
  EXPECT_EQ(Q.popFront(), 3u);
}

TEST(PairQueue, RemoveHeadAndTail) {
  PairQueue Q(iota(3), 3);
  Q.remove(0);
  Q.remove(2);
  EXPECT_EQ(Q.size(), 1u);
  EXPECT_EQ(Q.popFront(), 1u);
}

TEST(PairQueue, PushBackMovesToTail) {
  PairQueue Q(iota(3), 3);
  Q.pushBack(0);
  EXPECT_EQ(Q.popFront(), 1u);
  EXPECT_EQ(Q.popFront(), 2u);
  EXPECT_EQ(Q.popFront(), 0u);
}

TEST(PairQueue, PushBackOfTailIsNoop) {
  PairQueue Q(iota(3), 3);
  const uint64_t SeqBefore = Q.seq(2);
  Q.pushBack(2);
  EXPECT_EQ(Q.seq(2), SeqBefore) << "tail keeps its stamp";
  EXPECT_EQ(Q.popFront(), 0u);
}

TEST(PairQueue, SeqIncreasesWithReinsertion) {
  PairQueue Q(iota(4), 4);
  EXPECT_LT(Q.seq(0), Q.seq(3));
  const uint64_t Old = Q.seq(1);
  Q.pushBack(1);
  EXPECT_GT(Q.seq(1), Old);
  EXPECT_GT(Q.seq(1), Q.seq(3));
}

TEST(PairQueue, SingleElementQueue) {
  PairQueue Q({7}, 8);
  EXPECT_EQ(Q.size(), 1u);
  Q.pushBack(7);
  EXPECT_EQ(Q.popFront(), 7u);
  EXPECT_TRUE(Q.empty());
}

TEST(PairQueue, EmptyInitialOrder) {
  PairQueue Q({}, 4);
  EXPECT_TRUE(Q.empty());
  EXPECT_EQ(Q.size(), 0u);
  EXPECT_FALSE(Q.contains(0));
}

TEST(PairQueue, InterleavedOperations) {
  PairQueue Q(iota(5), 5);
  Q.remove(1);
  Q.pushBack(0);       // order: 2 3 4 0
  EXPECT_EQ(Q.popFront(), 2u); // 3 4 0
  Q.pushBack(3);       // 4 0 3
  Q.remove(0);         // 4 3
  EXPECT_EQ(Q.popFront(), 4u);
  EXPECT_EQ(Q.popFront(), 3u);
  EXPECT_TRUE(Q.empty());
}

//===----------------------------------------------------------------------===//
// Property test: random operation sequences vs a std::list reference model.
//===----------------------------------------------------------------------===//

class PairQueueModelSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PairQueueModelSweep, AgreesWithReferenceModel) {
  Rng R(GetParam());
  constexpr size_t N = 64;
  PairQueue Q(iota(N), N);
  std::list<PairId> Model(N);
  size_t K = 0;
  for (PairId &Id : Model)
    Id = static_cast<PairId>(K++);

  auto ModelContains = [&](PairId Id) {
    for (PairId V : Model)
      if (V == Id)
        return true;
    return false;
  };

  for (int Step = 0; Step != 2000; ++Step) {
    const int Op = static_cast<int>(R.bounded(3));
    if (Op == 0 && !Model.empty()) {
      // popFront
      ASSERT_EQ(Q.popFront(), Model.front());
      Model.pop_front();
    } else if (Op == 1) {
      // remove a random id if live
      const PairId Id = static_cast<PairId>(R.bounded(N));
      ASSERT_EQ(Q.contains(Id), ModelContains(Id));
      if (Q.contains(Id)) {
        Q.remove(Id);
        Model.remove(Id);
      }
    } else {
      // pushBack a random live id
      const PairId Id = static_cast<PairId>(R.bounded(N));
      if (Q.contains(Id)) {
        Q.pushBack(Id);
        Model.remove(Id);
        Model.push_back(Id);
      }
    }
    ASSERT_EQ(Q.size(), Model.size());
    if (!Model.empty()) {
      ASSERT_EQ(Q.front(), Model.front());
    }
  }
  // Drain and compare the final order.
  while (!Model.empty()) {
    ASSERT_EQ(Q.popFront(), Model.front());
    Model.pop_front();
  }
  EXPECT_TRUE(Q.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairQueueModelSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 99, 1234));
