//===- tests/core/ConditionTest.cpp - DSL & mutation tests --------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Condition.h"
#include "core/Mutation.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace oppsla;

namespace {

CondEnv sampleEnv(Rng &R) {
  CondEnv Env;
  Env.OriginalPixel = Pixel{R.uniformF(), R.uniformF(), R.uniformF()};
  Env.PerturbPixel = cornerPixel(static_cast<CornerIdx>(R.index(8)));
  Env.ScoreDiff = R.uniform(-1.0, 1.0);
  Env.CenterDist = R.uniform(0.0, 16.0);
  return Env;
}

} // namespace

TEST(Condition, EvalFuncPixelKinds) {
  CondEnv Env;
  Env.OriginalPixel = Pixel{0.2f, 0.8f, 0.5f};
  Env.PerturbPixel = Pixel{1.0f, 0.0f, 0.0f};

  Condition C;
  C.Source = PixelSource::Original;
  C.Func = FuncKind::MaxPixel;
  EXPECT_FLOAT_EQ(evalFunc(C, Env), 0.8f);
  C.Func = FuncKind::MinPixel;
  EXPECT_FLOAT_EQ(evalFunc(C, Env), 0.2f);
  C.Func = FuncKind::AvgPixel;
  EXPECT_NEAR(evalFunc(C, Env), 0.5, 1e-6);

  C.Source = PixelSource::Perturbation;
  C.Func = FuncKind::MaxPixel;
  EXPECT_FLOAT_EQ(evalFunc(C, Env), 1.0f);
  C.Func = FuncKind::MinPixel;
  EXPECT_FLOAT_EQ(evalFunc(C, Env), 0.0f);
}

TEST(Condition, EvalFuncScoreDiffAndCenter) {
  CondEnv Env;
  Env.ScoreDiff = 0.37;
  Env.CenterDist = 5.5;
  Condition C;
  C.Func = FuncKind::ScoreDiff;
  EXPECT_DOUBLE_EQ(evalFunc(C, Env), 0.37);
  C.Func = FuncKind::Center;
  EXPECT_DOUBLE_EQ(evalFunc(C, Env), 5.5);
}

TEST(Condition, ComparisonDirections) {
  CondEnv Env;
  Env.CenterDist = 5.0;
  Condition C;
  C.Func = FuncKind::Center;
  C.Threshold = 8.0;
  C.Cmp = CmpKind::Less;
  EXPECT_TRUE(evalCondition(C, Env));
  C.Cmp = CmpKind::Greater;
  EXPECT_FALSE(evalCondition(C, Env));
  C.Threshold = 5.0;
  EXPECT_FALSE(evalCondition(C, Env)) << "strict comparison";
  C.Cmp = CmpKind::Less;
  EXPECT_FALSE(evalCondition(C, Env));
}

TEST(Condition, AllFalseProgramNeverFires) {
  const Program P = allFalseProgram();
  Rng R(1);
  for (int I = 0; I != 500; ++I) {
    const CondEnv Env = sampleEnv(R);
    for (const Condition &C : P.Conds)
      ASSERT_FALSE(evalCondition(C, Env));
  }
}

TEST(Condition, AllTrueProgramAlwaysFires) {
  const Program P = allTrueProgram();
  Rng R(2);
  for (int I = 0; I != 500; ++I) {
    const CondEnv Env = sampleEnv(R);
    for (const Condition &C : P.Conds)
      ASSERT_TRUE(evalCondition(C, Env));
  }
}

TEST(Condition, PaperExampleMatchesSection32) {
  const Program P = paperExampleProgram();
  EXPECT_EQ(P.b1().Func, FuncKind::ScoreDiff);
  EXPECT_EQ(P.b1().Cmp, CmpKind::Less);
  EXPECT_DOUBLE_EQ(P.b1().Threshold, 0.21);
  EXPECT_EQ(P.b2().Func, FuncKind::MaxPixel);
  EXPECT_EQ(P.b2().Source, PixelSource::Original);
  EXPECT_DOUBLE_EQ(P.b2().Threshold, 0.19);
  EXPECT_EQ(P.b3().Cmp, CmpKind::Greater);
  EXPECT_DOUBLE_EQ(P.b3().Threshold, 0.25);
  EXPECT_EQ(P.b4().Func, FuncKind::Center);
  EXPECT_DOUBLE_EQ(P.b4().Threshold, 8.0);
}

TEST(Condition, StrRendering) {
  Condition C;
  C.Func = FuncKind::ScoreDiff;
  C.Cmp = CmpKind::Less;
  C.Threshold = 0.21;
  EXPECT_EQ(C.str(), "score_diff(N(x),N(x[l<-p]),cx) < 0.21");
  C.Func = FuncKind::MaxPixel;
  C.Source = PixelSource::Original;
  C.Cmp = CmpKind::Greater;
  C.Threshold = 0.19;
  EXPECT_EQ(C.str(), "max(x_l) > 0.19");
  C.Source = PixelSource::Perturbation;
  EXPECT_EQ(C.str(), "max(p) > 0.19");
  C.Func = FuncKind::Center;
  C.Cmp = CmpKind::Less;
  C.Threshold = 8.0;
  EXPECT_EQ(C.str(), "center(l) < 8");
}

TEST(Program, StrListsAllFourConditions) {
  const std::string S = paperExampleProgram().str();
  EXPECT_NE(S.find("[B1]"), std::string::npos);
  EXPECT_NE(S.find("[B4]"), std::string::npos);
  EXPECT_NE(S.find("center(l) < 8"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Mutation
//===----------------------------------------------------------------------===//

namespace {

bool thresholdInRange(const Condition &C, const MutationContext &Ctx) {
  switch (C.Func) {
  case FuncKind::MaxPixel:
  case FuncKind::MinPixel:
  case FuncKind::AvgPixel:
    return C.Threshold >= 0.0 && C.Threshold <= 1.0;
  case FuncKind::ScoreDiff:
    return C.Threshold >= -0.5 && C.Threshold <= 0.5;
  case FuncKind::Center:
    return C.Threshold >= 0.0 && C.Threshold <= Ctx.maxCenterDist();
  }
  return false;
}

size_t numDifferingConds(const Program &A, const Program &B) {
  size_t N = 0;
  for (size_t I = 0; I != 4; ++I) {
    const Condition &X = A.Conds[I], &Y = B.Conds[I];
    if (X.Func != Y.Func || X.Source != Y.Source || X.Cmp != Y.Cmp ||
        X.Threshold != Y.Threshold)
      ++N;
  }
  return N;
}

} // namespace

TEST(Mutation, RandomProgramDeterministicGivenSeed) {
  MutationContext Ctx{32};
  Rng A(9), B(9);
  const Program PA = randomProgram(Ctx, A);
  const Program PB = randomProgram(Ctx, B);
  EXPECT_EQ(numDifferingConds(PA, PB), 0u);
}

class MutationSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MutationSweep, RandomProgramsAreWellTyped) {
  MutationContext Ctx{32};
  Rng R(GetParam());
  for (int I = 0; I != 200; ++I) {
    const Program P = randomProgram(Ctx, R);
    for (const Condition &C : P.Conds)
      ASSERT_TRUE(thresholdInRange(C, Ctx)) << C.str();
  }
}

TEST_P(MutationSweep, MutationChangesAtMostAllConditions) {
  MutationContext Ctx{32};
  Rng R(GetParam() + 1000);
  Program P = randomProgram(Ctx, R);
  size_t SingleCondChanges = 0, Mutations = 0;
  for (int I = 0; I != 300; ++I, ++Mutations) {
    const Program Q = mutateProgram(P, Ctx, R);
    const size_t D = numDifferingConds(P, Q);
    ASSERT_LE(D, 4u);
    if (D <= 1)
      ++SingleCondChanges;
    P = Q;
  }
  // Most node choices (12 of 13) touch a single condition.
  EXPECT_GT(SingleCondChanges, Mutations / 2);
}

TEST_P(MutationSweep, ThresholdResampleStaysInCurrentFuncRange) {
  // After many mutations every threshold remains in the range of *some*
  // function; specifically, a condition whose function never changed keeps
  // a valid threshold for it.
  MutationContext Ctx{32};
  Rng R(GetParam() + 2000);
  Program P = randomProgram(Ctx, R);
  for (int I = 0; I != 200; ++I) {
    P = mutateProgram(P, Ctx, R);
    for (const Condition &C : P.Conds) {
      // A kept threshold may be out of the new function's range when only
      // the function node mutated (grammar-faithful), but it must always
      // lie in the union of all ranges.
      const bool InUnion =
          (C.Threshold >= -0.5 && C.Threshold <= Ctx.maxCenterDist());
      ASSERT_TRUE(InUnion) << C.str();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationSweep,
                         ::testing::Values(1, 7, 42, 31337));

TEST(Mutation, SampleThresholdRanges) {
  MutationContext Ctx{32};
  Rng R(5);
  for (int I = 0; I != 200; ++I) {
    const double P = sampleThreshold(FuncKind::AvgPixel, Ctx, R);
    EXPECT_GE(P, 0.0);
    EXPECT_LE(P, 1.0);
    const double S = sampleThreshold(FuncKind::ScoreDiff, Ctx, R);
    EXPECT_GE(S, -0.5);
    EXPECT_LE(S, 0.5);
    const double C = sampleThreshold(FuncKind::Center, Ctx, R);
    EXPECT_GE(C, 0.0);
    EXPECT_LE(C, 16.0);
  }
}

TEST(Mutation, ContextScalesCenterRange) {
  MutationContext Big{64};
  EXPECT_DOUBLE_EQ(Big.maxCenterDist(), 32.0);
  Rng R(6);
  double MaxSeen = 0.0;
  for (int I = 0; I != 500; ++I)
    MaxSeen = std::max(MaxSeen, sampleThreshold(FuncKind::Center, Big, R));
  EXPECT_GT(MaxSeen, 16.0) << "range must extend beyond the 32-side limit";
}
