//===- tests/core/ParseAnalysisTest.cpp - DSL parser & analysis ---------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Analysis.h"
#include "core/Mutation.h"
#include "core/Parse.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace oppsla;

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(Parse, SingleConditionForms) {
  Condition C;
  ASSERT_TRUE(parseCondition("max(x_l) > 0.19", C).Ok);
  EXPECT_EQ(C.Func, FuncKind::MaxPixel);
  EXPECT_EQ(C.Source, PixelSource::Original);
  EXPECT_EQ(C.Cmp, CmpKind::Greater);
  EXPECT_DOUBLE_EQ(C.Threshold, 0.19);

  ASSERT_TRUE(parseCondition("min(p) < 0.5", C).Ok);
  EXPECT_EQ(C.Func, FuncKind::MinPixel);
  EXPECT_EQ(C.Source, PixelSource::Perturbation);
  EXPECT_EQ(C.Cmp, CmpKind::Less);

  ASSERT_TRUE(parseCondition("avg(x_l) > .25", C).Ok);
  EXPECT_EQ(C.Func, FuncKind::AvgPixel);
  EXPECT_DOUBLE_EQ(C.Threshold, 0.25);

  ASSERT_TRUE(
      parseCondition("score_diff(N(x),N(x[l<-p]),cx) < 0.21", C).Ok);
  EXPECT_EQ(C.Func, FuncKind::ScoreDiff);
  EXPECT_DOUBLE_EQ(C.Threshold, 0.21);

  ASSERT_TRUE(parseCondition("center(l) < 8", C).Ok);
  EXPECT_EQ(C.Func, FuncKind::Center);
  EXPECT_DOUBLE_EQ(C.Threshold, 8.0);
}

TEST(Parse, NegativeAndScientificThresholds) {
  Condition C;
  ASSERT_TRUE(
      parseCondition("score_diff(N(x),N(x[l<-p]),cx) > -0.3", C).Ok);
  EXPECT_DOUBLE_EQ(C.Threshold, -0.3);
  ASSERT_TRUE(parseCondition("max(p) < 1e-2", C).Ok);
  EXPECT_DOUBLE_EQ(C.Threshold, 0.01);
  ASSERT_TRUE(parseCondition("max(p) < 2.5E+1", C).Ok);
  EXPECT_DOUBLE_EQ(C.Threshold, 25.0);
}

TEST(Parse, WhitespaceInsensitive) {
  Condition C;
  ASSERT_TRUE(parseCondition("  max ( x_l )   >   0.5 ", C).Ok);
  EXPECT_EQ(C.Func, FuncKind::MaxPixel);
  ASSERT_TRUE(parseCondition("score_diff ( N(x) , N(x[l<-p]) , cx ) < 0",
                             C).Ok);
}

TEST(Parse, OptionalOrderedLabels) {
  Program P;
  ASSERT_TRUE(parseProgram("[B1] max(x_l) > 2\n[B2] max(x_l) > 2\n"
                           "[B3] max(x_l) > 2\n[B4] max(x_l) > 2\n",
                           P).Ok);
  const ParseResult Bad = parseProgram(
      "[B2] max(x_l) > 2\n[B1] max(x_l) > 2\n"
      "[B3] max(x_l) > 2\n[B4] max(x_l) > 2\n",
      P);
  EXPECT_FALSE(Bad.Ok);
  EXPECT_NE(Bad.Message.find("out of order"), std::string::npos);
}

TEST(Parse, ErrorsCarryPositions) {
  Condition C;
  const ParseResult R = parseCondition("max(q) > 0.5", C);
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Line, 1u);
  EXPECT_GT(R.Column, 1u);
  EXPECT_NE(R.Message.find("x_l"), std::string::npos);
}

TEST(Parse, RejectsMalformedInputs) {
  Condition C;
  EXPECT_FALSE(parseCondition("", C).Ok);
  EXPECT_FALSE(parseCondition("bogus(x_l) > 1", C).Ok);
  EXPECT_FALSE(parseCondition("max(x_l) 0.5", C).Ok);
  EXPECT_FALSE(parseCondition("max(x_l) > ", C).Ok);
  EXPECT_FALSE(parseCondition("max(x_l) > abc", C).Ok);
  EXPECT_FALSE(parseCondition("center(x_l) < 3", C).Ok);
  EXPECT_FALSE(parseCondition("score_diff(N(x),N(x),cx) < 0.1", C).Ok);
  EXPECT_FALSE(parseCondition("max(x_l) > 0.5 trailing", C).Ok);
}

TEST(Parse, RejectsPartialPrograms) {
  Program P;
  EXPECT_FALSE(parseProgram("max(x_l) > 2\nmax(x_l) > 2\n", P).Ok);
}

TEST(Parse, FailedParseLeavesOutputUntouched) {
  Program P = paperExampleProgram();
  ASSERT_FALSE(parseProgram("garbage", P).Ok);
  EXPECT_EQ(P.b4().Func, FuncKind::Center);
}

TEST(Parse, RoundTripsPrinterOutput) {
  // str() -> parse -> identical program, for canned and random programs.
  MutationContext Ctx{32};
  Rng R(77);
  std::vector<Program> Programs = {allFalseProgram(), allTrueProgram(),
                                   paperExampleProgram()};
  for (int I = 0; I != 20; ++I)
    Programs.push_back(randomProgram(Ctx, R));
  for (const Program &P : Programs) {
    Program Q;
    const ParseResult Res = parseProgram(P.str(), Q);
    ASSERT_TRUE(Res.Ok) << Res.Message << " in:\n" << P.str();
    for (size_t I = 0; I != 4; ++I) {
      EXPECT_EQ(Q.Conds[I].Func, P.Conds[I].Func);
      EXPECT_EQ(Q.Conds[I].Cmp, P.Conds[I].Cmp);
      if (Q.Conds[I].Func != FuncKind::ScoreDiff &&
          Q.Conds[I].Func != FuncKind::Center) {
        EXPECT_EQ(Q.Conds[I].Source, P.Conds[I].Source);
      }
      // str() prints with default precision; allow rounding.
      EXPECT_NEAR(Q.Conds[I].Threshold, P.Conds[I].Threshold, 1e-4)
          << P.Conds[I].str();
    }
  }
}

//===----------------------------------------------------------------------===//
// Analysis
//===----------------------------------------------------------------------===//

TEST(Analysis, FuncRanges) {
  Condition C;
  C.Func = FuncKind::AvgPixel;
  EXPECT_DOUBLE_EQ(funcRange(C, 32).Lo, 0.0);
  EXPECT_DOUBLE_EQ(funcRange(C, 32).Hi, 1.0);
  C.Func = FuncKind::ScoreDiff;
  EXPECT_DOUBLE_EQ(funcRange(C, 32).Lo, -1.0);
  C.Func = FuncKind::Center;
  EXPECT_DOUBLE_EQ(funcRange(C, 32).Hi, 15.5);
  EXPECT_DOUBLE_EQ(funcRange(C, 5).Hi, 2.0);
}

TEST(Analysis, TrivialityVerdicts) {
  Condition C;
  C.Func = FuncKind::MaxPixel;
  C.Cmp = CmpKind::Greater;
  C.Threshold = 2.0;
  EXPECT_EQ(analyzeCondition(C, 32), Triviality::AlwaysFalse);
  C.Threshold = -1.0;
  EXPECT_EQ(analyzeCondition(C, 32), Triviality::AlwaysTrue);
  C.Threshold = 0.5;
  EXPECT_EQ(analyzeCondition(C, 32), Triviality::Contingent);

  C.Cmp = CmpKind::Less;
  C.Threshold = 2.0;
  EXPECT_EQ(analyzeCondition(C, 32), Triviality::AlwaysTrue);
  C.Threshold = -0.5;
  EXPECT_EQ(analyzeCondition(C, 32), Triviality::AlwaysFalse);

  // Boundary: strict comparisons make range endpoints decidable.
  C.Threshold = 0.0;
  EXPECT_EQ(analyzeCondition(C, 32), Triviality::AlwaysFalse)
      << "max(x) < 0 can never hold for x in [0,1]";
  C.Cmp = CmpKind::Greater;
  C.Threshold = 1.0;
  EXPECT_EQ(analyzeCondition(C, 32), Triviality::AlwaysFalse)
      << "max(x) > 1 can never hold";
}

TEST(Analysis, CenterTrivialityDependsOnImageSide) {
  Condition C;
  C.Func = FuncKind::Center;
  C.Cmp = CmpKind::Less;
  C.Threshold = 20.0;
  EXPECT_EQ(analyzeCondition(C, 32), Triviality::AlwaysTrue)
      << "all 32x32 locations are within L-inf 15.5 of the center";
  EXPECT_EQ(analyzeCondition(C, 64), Triviality::Contingent);
}

TEST(Analysis, CannedProgramsAnalyzeAsExpected) {
  for (const Condition &C : allFalseProgram().Conds)
    EXPECT_EQ(analyzeCondition(C, 32), Triviality::AlwaysFalse);
  for (const Condition &C : allTrueProgram().Conds)
    EXPECT_EQ(analyzeCondition(C, 32), Triviality::AlwaysTrue);
  for (const Condition &C : paperExampleProgram().Conds)
    EXPECT_EQ(analyzeCondition(C, 32), Triviality::Contingent);
}

TEST(Analysis, NormalizeCanonicalizesTrivialConditions) {
  Program P = paperExampleProgram();
  P.Conds[0] = {FuncKind::Center, PixelSource::Original, CmpKind::Less,
                100.0};                        // always true on 32x32
  P.Conds[1] = {FuncKind::ScoreDiff, PixelSource::Original,
                CmpKind::Greater, 1.5};        // always false
  const Program N = normalizeProgram(P, 32);
  EXPECT_EQ(analyzeCondition(N.Conds[0], 32), Triviality::AlwaysTrue);
  EXPECT_DOUBLE_EQ(N.Conds[0].Threshold, -1.0) << "canonical True";
  EXPECT_DOUBLE_EQ(N.Conds[1].Threshold, 2.0) << "canonical False";
  // Contingent conditions untouched.
  EXPECT_DOUBLE_EQ(N.Conds[2].Threshold, 0.25);
}

TEST(Analysis, EquivalenceModuloTriviality) {
  Program A = allFalseProgram();
  Program B = allFalseProgram();
  // Different syntax, same (always-false) semantics.
  B.Conds[2] = {FuncKind::ScoreDiff, PixelSource::Original,
                CmpKind::Greater, 1.5};
  EXPECT_TRUE(equivalentPrograms(A, B, 32));
  B.Conds[2] = paperExampleProgram().Conds[2];
  EXPECT_FALSE(equivalentPrograms(A, B, 32));
}

TEST(Analysis, ExplainMentionsRolesAndVerdicts) {
  const std::string S = explainProgram(allFalseProgram(), 32);
  EXPECT_NE(S.find("[B1]"), std::string::npos);
  EXPECT_NE(S.find("push back"), std::string::npos);
  EXPECT_NE(S.find("eagerly check"), std::string::npos);
  EXPECT_NE(S.find("always false"), std::string::npos);
}

TEST(Analysis, NormalizedRandomProgramsStaySemanticallyIntact) {
  // Normalization must not change what a contingent condition computes.
  MutationContext Ctx{32};
  Rng R(99);
  for (int I = 0; I != 50; ++I) {
    const Program P = randomProgram(Ctx, R);
    const Program N = normalizeProgram(P, 32);
    for (size_t K = 0; K != 4; ++K)
      if (analyzeCondition(P.Conds[K], 32) == Triviality::Contingent) {
        EXPECT_EQ(N.Conds[K].Func, P.Conds[K].Func);
        EXPECT_DOUBLE_EQ(N.Conds[K].Threshold, P.Conds[K].Threshold);
      }
  }
}

//===----------------------------------------------------------------------===//
// Cross-module property: normalization preserves sketch semantics
//===----------------------------------------------------------------------===//

#include "core/Sketch.h"
#include "../TestUtil.h"

namespace {

using oppsla::test::FakeClassifier;

/// Records the order of perturbed-pixel queries (see SketchTest.cpp for
/// the richer variant).
std::vector<oppsla::PairId> querySequence(const Program &P,
                                          const oppsla::Image &X) {
  const oppsla::PairSpace Space(X);
  std::vector<oppsla::PairId> Seen;
  FakeClassifier N(2, [&](const oppsla::Image &Q) {
    for (size_t I = 0; I != X.height(); ++I)
      for (size_t J = 0; J != X.width(); ++J)
        if (!(Q.pixel(I, J) == X.pixel(I, J))) {
          for (oppsla::CornerIdx C = 0; C != oppsla::NumCorners; ++C)
            if (Q.pixel(I, J) == oppsla::cornerPixel(C))
              Seen.push_back(Space.idOf(oppsla::LocPert{
                  oppsla::PixelLoc{static_cast<uint16_t>(I),
                                   static_cast<uint16_t>(J)},
                  C}));
          return std::vector<float>{0.9f, 0.1f};
        }
    return std::vector<float>{0.9f, 0.1f};
  });
  oppsla::Sketch Sk(P);
  Sk.run(N, X, 0);
  return Seen;
}

} // namespace

TEST(Analysis, NormalizationPreservesSketchQueryOrder) {
  // normalizeProgram only rewrites conditions whose truth value is fixed,
  // so the *entire observable behavior* of the sketch — the sequence of
  // queries — must be bit-identical before and after.
  MutationContext Ctx{6};
  Rng R(2024);
  oppsla::Image X(6, 6);
  {
    Rng IR(7);
    for (float &V : X.raw())
      V = IR.uniformF();
  }
  for (int Trial = 0; Trial != 8; ++Trial) {
    const Program P = randomProgram(Ctx, R);
    const Program N = normalizeProgram(P, 6);
    EXPECT_EQ(querySequence(P, X), querySequence(N, X))
        << "program:\n"
        << P.str() << "normalized:\n"
        << N.str();
  }
}
