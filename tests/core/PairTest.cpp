//===- tests/core/PairTest.cpp - PairSpace unit tests -------------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Pair.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

#include <set>

using namespace oppsla;
using namespace oppsla::test;

TEST(CornerPixel, MatchesBitEncoding) {
  EXPECT_EQ(cornerPixel(0), (Pixel{0, 0, 0}));
  EXPECT_EQ(cornerPixel(1), (Pixel{0, 0, 1}));
  EXPECT_EQ(cornerPixel(2), (Pixel{0, 1, 0}));
  EXPECT_EQ(cornerPixel(4), (Pixel{1, 0, 0}));
  EXPECT_EQ(cornerPixel(7), (Pixel{1, 1, 1}));
}

TEST(PixelLoc, LinfDistance) {
  const PixelLoc A{3, 4};
  EXPECT_EQ(A.linfDistance(PixelLoc{3, 4}), 0u);
  EXPECT_EQ(A.linfDistance(PixelLoc{4, 4}), 1u);
  EXPECT_EQ(A.linfDistance(PixelLoc{0, 6}), 3u);
  EXPECT_EQ(A.linfDistance(PixelLoc{10, 5}), 7u);
}

TEST(PairSpace, SizeAndIdRoundTrip) {
  const Image X = gradientImage(5, 7);
  const PairSpace Space(X);
  EXPECT_EQ(Space.numLocations(), 35u);
  EXPECT_EQ(Space.size(), 280u);
  for (PairId Id = 0; Id != Space.size(); ++Id) {
    const LocPert P = Space.pairOf(Id);
    EXPECT_EQ(Space.idOf(P), Id);
    EXPECT_LT(P.Loc.Row, 5u);
    EXPECT_LT(P.Loc.Col, 7u);
    EXPECT_LT(P.Corner, NumCorners);
  }
}

TEST(PairSpace, CenterDistanceEvenDims) {
  // 4x4: continuous center at (1.5, 1.5).
  const Image X(4, 4);
  const PairSpace Space(X);
  EXPECT_DOUBLE_EQ(Space.centerDistance(PixelLoc{1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(Space.centerDistance(PixelLoc{0, 0}), 1.5);
  EXPECT_DOUBLE_EQ(Space.centerDistance(PixelLoc{3, 0}), 1.5);
  EXPECT_DOUBLE_EQ(Space.centerDistance(PixelLoc{0, 3}), 1.5);
}

TEST(PairSpace, CenterDistanceOddDims) {
  const Image X(5, 5);
  const PairSpace Space(X);
  EXPECT_DOUBLE_EQ(Space.centerDistance(PixelLoc{2, 2}), 0.0);
  EXPECT_DOUBLE_EQ(Space.centerDistance(PixelLoc{0, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Space.centerDistance(PixelLoc{4, 4}), 2.0);
}

TEST(PairSpace, CornerRankSortsByDecreasingDistance) {
  Image X(2, 2);
  X.setPixel(0, 0, Pixel{0.1f, 0.1f, 0.1f}); // near black
  const PairSpace Space(X);
  const PixelLoc L{0, 0};
  // Farthest corner from near-black is white (corner 7).
  EXPECT_EQ(Space.cornerByRank(L, 0), 7);
  // Closest corner is black (corner 0).
  EXPECT_EQ(Space.cornerByRank(L, NumCorners - 1), 0);
  // Ranks enumerate all corners exactly once.
  std::set<CornerIdx> Seen;
  for (size_t R = 0; R != NumCorners; ++R)
    Seen.insert(Space.cornerByRank(L, R));
  EXPECT_EQ(Seen.size(), NumCorners);
  // Distances are non-increasing along ranks.
  const Pixel P = X.pixel(0, 0);
  for (size_t R = 0; R + 1 != NumCorners; ++R)
    EXPECT_GE(P.l1Distance(cornerPixel(Space.cornerByRank(L, R))),
              P.l1Distance(cornerPixel(Space.cornerByRank(L, R + 1))));
}

TEST(PairSpace, InitialOrderIsAPermutation) {
  const Image X = randomImage(6, 6, 42);
  const PairSpace Space(X);
  const std::vector<PairId> Order = Space.initialOrder();
  EXPECT_EQ(Order.size(), Space.size());
  std::set<PairId> Seen(Order.begin(), Order.end());
  EXPECT_EQ(Seen.size(), Order.size());
}

TEST(PairSpace, InitialOrderGroupsByRankThenCenter) {
  const Image X = randomImage(4, 4, 7);
  const PairSpace Space(X);
  const std::vector<PairId> Order = Space.initialOrder();
  const size_t Locs = Space.numLocations();
  // Each block of `Locs` pairs covers every location exactly once, with
  // the block-rank corner for that location.
  for (size_t Rank = 0; Rank != NumCorners; ++Rank) {
    std::set<uint32_t> SeenLocs;
    double PrevCenter = -1.0;
    for (size_t I = 0; I != Locs; ++I) {
      const LocPert P = Space.pairOf(Order[Rank * Locs + I]);
      SeenLocs.insert(Space.locIndex(P.Loc));
      EXPECT_EQ(P.Corner, Space.cornerByRank(P.Loc, Rank));
      const double C = Space.centerDistance(P.Loc);
      EXPECT_GE(C, PrevCenter) << "center distance must be non-decreasing";
      PrevCenter = C;
    }
    EXPECT_EQ(SeenLocs.size(), Locs);
  }
}

TEST(PairSpace, FirstPairIsCenterMostFarthestCorner) {
  const Image X = gradientImage(5, 5);
  const PairSpace Space(X);
  const LocPert First = Space.pairOf(Space.initialOrder().front());
  EXPECT_EQ(First.Loc.Row, 2u);
  EXPECT_EQ(First.Loc.Col, 2u);
  EXPECT_EQ(First.Corner, Space.cornerByRank(First.Loc, 0));
}

TEST(PairSpace, NeighborsCounts) {
  const Image X(4, 5);
  const PairSpace Space(X);
  std::vector<PixelLoc> N;
  Space.neighbors(PixelLoc{0, 0}, N);
  EXPECT_EQ(N.size(), 3u) << "corner location";
  N.clear();
  Space.neighbors(PixelLoc{0, 2}, N);
  EXPECT_EQ(N.size(), 5u) << "edge location";
  N.clear();
  Space.neighbors(PixelLoc{2, 2}, N);
  EXPECT_EQ(N.size(), 8u) << "interior location";
  for (const PixelLoc &L : N)
    EXPECT_EQ(L.linfDistance(PixelLoc{2, 2}), 1u);
}

TEST(PairSpace, NeighborsAppendsWithoutClearing) {
  const Image X(3, 3);
  const PairSpace Space(X);
  std::vector<PixelLoc> N = {PixelLoc{9, 9}};
  Space.neighbors(PixelLoc{1, 1}, N);
  EXPECT_EQ(N.size(), 9u);
  EXPECT_EQ(N.front().Row, 9u);
}
