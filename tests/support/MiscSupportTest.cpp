//===- tests/support/MiscSupportTest.cpp - Table/ArgParse/BenchScale ----------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ArgParse.h"
#include "support/BenchScale.h"
#include "support/Logging.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace oppsla;

//===----------------------------------------------------------------------===//
// Table
//===----------------------------------------------------------------------===//

TEST(Table, FormatsFixedPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(3.0, 0), "3");
  EXPECT_EQ(Table::fmt(-1.005, 1), "-1.0");
}

TEST(Table, PrintsAlignedColumns) {
  Table T({"name", "value"});
  T.addRow({"a", "1"});
  T.addRow({"longer", "22"});
  std::ostringstream OS;
  T.print(OS);
  const std::string Out = OS.str();
  EXPECT_NE(Out.find("| name   | value |"), std::string::npos) << Out;
  EXPECT_NE(Out.find("| longer | 22    |"), std::string::npos) << Out;
  EXPECT_EQ(T.numRows(), 2u);
}

TEST(Table, AddRowWithDoubles) {
  Table T({"label", "x", "y"});
  T.addRow("row", {1.234, 5.678}, 1);
  std::ostringstream OS;
  T.printCsv(OS);
  EXPECT_EQ(OS.str(), "label,x,y\nrow,1.2,5.7\n");
}

TEST(Table, CsvRoundTripShape) {
  Table T({"a", "b"});
  T.addRow({"x", "y"});
  T.addRow({"1", "2"});
  std::ostringstream OS;
  T.printCsv(OS);
  EXPECT_EQ(OS.str(), "a,b\nx,y\n1,2\n");
}

//===----------------------------------------------------------------------===//
// ArgParse
//===----------------------------------------------------------------------===//

namespace {
ArgParse parse(std::initializer_list<const char *> Args) {
  std::vector<const char *> V = {"prog"};
  V.insert(V.end(), Args.begin(), Args.end());
  return ArgParse(static_cast<int>(V.size()), V.data());
}
} // namespace

TEST(ArgParse, KeyValuePairs) {
  ArgParse A = parse({"--name", "value", "--n", "42"});
  EXPECT_EQ(A.get("name", ""), "value");
  EXPECT_EQ(A.getInt("n", 0), 42);
  EXPECT_TRUE(A.has("name"));
  EXPECT_FALSE(A.has("missing"));
}

TEST(ArgParse, EqualsSyntax) {
  ArgParse A = parse({"--alpha=0.5", "--beta=hello"});
  EXPECT_DOUBLE_EQ(A.getDouble("alpha", 0.0), 0.5);
  EXPECT_EQ(A.get("beta", ""), "hello");
}

TEST(ArgParse, BooleanSwitchBeforeFlag) {
  ArgParse A = parse({"--verbose", "--out", "file"});
  EXPECT_TRUE(A.getFlag("verbose"));
  EXPECT_EQ(A.get("verbose", "def"), "");
  EXPECT_EQ(A.get("out", ""), "file");
}

TEST(ArgParse, TrailingSwitch) {
  ArgParse A = parse({"--quiet"});
  EXPECT_TRUE(A.has("quiet"));
}

TEST(ArgParse, Positional) {
  ArgParse A = parse({"input.txt", "--k", "v", "more"});
  ASSERT_EQ(A.positional().size(), 2u);
  EXPECT_EQ(A.positional()[0], "input.txt");
  EXPECT_EQ(A.positional()[1], "more");
  EXPECT_EQ(A.program(), "prog");
}

TEST(ArgParse, DefaultsOnMissingOrMalformed) {
  ArgParse A = parse({"--n", "notanumber"});
  EXPECT_EQ(A.getInt("n", -1), -1);
  EXPECT_EQ(A.getInt("absent", 9), 9);
  EXPECT_DOUBLE_EQ(A.getDouble("absent", 2.5), 2.5);
}

//===----------------------------------------------------------------------===//
// BenchScale
//===----------------------------------------------------------------------===//

TEST(BenchScale, PresetsAreOrdered) {
  const BenchScale Smoke = BenchScale::preset("smoke");
  const BenchScale Small = BenchScale::preset("small");
  const BenchScale Paper = BenchScale::preset("paper");
  EXPECT_EQ(Smoke.Name, "smoke");
  EXPECT_EQ(Small.Name, "small");
  EXPECT_EQ(Paper.Name, "paper");
  EXPECT_LT(Smoke.TestPerClass, Small.TestPerClass);
  EXPECT_LT(Small.TestPerClass, Paper.TestPerClass);
  EXPECT_LT(Small.SynthIters, Paper.SynthIters);
  EXPECT_EQ(Paper.SynthIters, 210u) << "paper preset must match Appendix C";
  EXPECT_EQ(Paper.TrainPerClass, 50u);
  EXPECT_EQ(Paper.CifarSide, 32u);
}

TEST(BenchScale, UnknownNameFallsBackToSmall) {
  EXPECT_EQ(BenchScale::preset("bogus").Name, "small");
}

TEST(BenchScale, FromEnvHonorsVariable) {
  ASSERT_EQ(setenv("OPPSLA_BENCH_SCALE", "smoke", 1), 0);
  EXPECT_EQ(BenchScale::fromEnv("paper").Name, "smoke");
  unsetenv("OPPSLA_BENCH_SCALE");
  EXPECT_EQ(BenchScale::fromEnv("paper").Name, "paper");
}

//===----------------------------------------------------------------------===//
// Logging
//===----------------------------------------------------------------------===//

TEST(Logging, LevelIsAdjustable) {
  const LogLevel Orig = logLevel();
  setLogLevel(LogLevel::Error);
  EXPECT_EQ(logLevel(), LogLevel::Error);
  logInfo() << "suppressed at error level";
  setLogLevel(Orig);
}
