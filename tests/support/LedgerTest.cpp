//===- tests/support/LedgerTest.cpp - Bench ledger tests ----------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The perf-regression sentinel's storage layer: ledger row render/parse
// round trips, artifact ingestion (schema 1 and 2), the --metrics-out
// snapshot folding rules, append/readAll over a real file, and the
// /ledger tail document.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "support/Ledger.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

using namespace oppsla;

namespace {

/// A self-deleting temp file path under the test's working directory.
class TempFile {
public:
  explicit TempFile(const std::string &Name)
      : Path(::testing::TempDir() + "/" + Name) {
    std::remove(Path.c_str());
  }
  ~TempFile() { std::remove(Path.c_str()); }
  const std::string &path() const { return Path; }

private:
  std::string Path;
};

json::Value parseDoc(const std::string &Text) {
  json::Value V;
  std::string Error;
  EXPECT_TRUE(json::parse(Text, V, Error)) << Error;
  return V;
}

LedgerEntry sampleEntry() {
  LedgerEntry E;
  E.Bench = "batch_throughput";
  E.Scale = "smoke";
  E.Repeat = 2;
  E.GitDescribe = "v1-4-gabc";
  E.Timestamp = "2026-08-09T12:00:00Z";
  E.Host.CpuModel = "Test CPU \"quoted\"";
  E.Host.Cores = 8;
  E.Host.BuildFlags = "Release: -O3";
  E.Metrics = {{"best_images_per_sec", 123.5}, {"runs", 8.0}};
  return E;
}

} // namespace

TEST(Ledger, RowRoundTrips) {
  const LedgerEntry E = sampleEntry();
  const std::string Line = E.renderLine();
  ASSERT_FALSE(Line.empty());
  EXPECT_EQ(Line.back(), '\n');

  LedgerEntry Back;
  std::string Error;
  ASSERT_TRUE(Back.parseLine(Line, Error)) << Error;
  EXPECT_EQ(Back.Schema, kBenchSchemaVersion);
  EXPECT_EQ(Back.Bench, E.Bench);
  EXPECT_EQ(Back.Scale, E.Scale);
  EXPECT_EQ(Back.Repeat, E.Repeat);
  EXPECT_EQ(Back.GitDescribe, E.GitDescribe);
  EXPECT_EQ(Back.Timestamp, E.Timestamp);
  EXPECT_EQ(Back.Host.CpuModel, E.Host.CpuModel);
  EXPECT_EQ(Back.Host.Cores, E.Host.Cores);
  EXPECT_EQ(Back.Host.BuildFlags, E.Host.BuildFlags);
  EXPECT_EQ(Back.Metrics, E.Metrics);
}

TEST(Ledger, ParseLineRejectsMalformedRows) {
  LedgerEntry E;
  std::string Error;
  EXPECT_FALSE(E.parseLine("not json", Error));
  EXPECT_FALSE(E.parseLine("[1,2]", Error)) << "row must be an object";
  EXPECT_FALSE(E.parseLine(R"({"schema":2,"scale":"smoke"})", Error))
      << "bench name is mandatory";
  EXPECT_FALSE(E.parseLine(
      R"({"schema":2,"bench":"b","scale":"s","metrics":{"m":"oops"}})",
      Error))
      << "metrics must be numeric";
}

TEST(Ledger, FromBenchArtifactReadsSchema2) {
  const json::Value Doc = parseDoc(
      R"({"schema":2,"name":"micro_core","scale":"small","repeat":3,)"
      R"("metrics":{"a_ns":12.5,"b_ns":7}})");
  LedgerEntry E;
  std::string Error;
  ASSERT_TRUE(E.fromBenchArtifact(Doc, Error)) << Error;
  EXPECT_EQ(E.Schema, 2);
  EXPECT_EQ(E.Bench, "micro_core");
  EXPECT_EQ(E.Scale, "small");
  EXPECT_EQ(E.Repeat, 3);
  ASSERT_EQ(E.Metrics.size(), 2u);
  EXPECT_DOUBLE_EQ(E.Metrics.at("a_ns"), 12.5);
  // The host fingerprint is stamped at ingest time, not read from the
  // artifact.
  EXPECT_EQ(E.Host.Cores, hostFingerprint().Cores);
}

TEST(Ledger, FromBenchArtifactAcceptsSchema1) {
  // Pre-sentinel artifacts had no "schema"/"repeat" fields.
  const json::Value Doc =
      parseDoc(R"({"name":"legacy","scale":"smoke","metrics":{"x":1}})");
  LedgerEntry E;
  std::string Error;
  ASSERT_TRUE(E.fromBenchArtifact(Doc, Error)) << Error;
  EXPECT_EQ(E.Schema, 1);
  EXPECT_EQ(E.Repeat, 0);
  EXPECT_EQ(E.Bench, "legacy");
}

TEST(Ledger, FromBenchArtifactRejectsBrokenDocs) {
  LedgerEntry E;
  std::string Error;
  EXPECT_FALSE(
      E.fromBenchArtifact(parseDoc(R"({"scale":"s","metrics":{}})"), Error));
  EXPECT_FALSE(E.fromBenchArtifact(
      parseDoc(R"({"name":"n","scale":"s","metrics":[1]})"), Error))
      << "metrics must be an object";
  EXPECT_FALSE(E.fromBenchArtifact(parseDoc("[]"), Error));
}

TEST(Ledger, FoldsMetricsSnapshot) {
  // The shape --metrics-out writes: counters, gauges, histograms with a
  // quantile block, and the profiler's span array.
  const json::Value Snapshot = parseDoc(R"({
    "counters": {"engine.queries": 240, "weird": "skip-me"},
    "gauges": {"sweep.progress": 0.5},
    "histograms": {
      "engine.batch.size": {"count": 31, "mean": 3.1, "p50": 2, "p90": 8,
                            "p99": 8, "sum": 96.1}
    },
    "profile": {
      "threads": 1,
      "spans": [
        {"path": "eval;engine.query", "self_us": 1200.5, "count": 240},
        {"path": "eval", "self_us": 99.5}
      ]
    }
  })");
  std::map<std::string, double> M;
  foldMetricsSnapshot(Snapshot, M);
  EXPECT_DOUBLE_EQ(M.at("engine.queries"), 240.0);
  EXPECT_EQ(M.count("weird"), 0u) << "non-numeric counters are skipped";
  EXPECT_DOUBLE_EQ(M.at("gauge.sweep.progress"), 0.5);
  EXPECT_DOUBLE_EQ(M.at("engine.batch.size.count"), 31.0);
  EXPECT_DOUBLE_EQ(M.at("engine.batch.size.mean"), 3.1);
  EXPECT_DOUBLE_EQ(M.at("engine.batch.size.p90"), 8.0);
  EXPECT_DOUBLE_EQ(M.at("profile.eval;engine.query.self_us"), 1200.5);
  EXPECT_DOUBLE_EQ(M.at("profile.eval.self_us"), 99.5);
}

TEST(Ledger, AppendAndReadAllRoundTrip) {
  TempFile F("ledger_roundtrip.jsonl");
  std::string Error;
  LedgerEntry A = sampleEntry();
  LedgerEntry B = sampleEntry();
  B.GitDescribe = "v1-5-gdef";
  B.Metrics["best_images_per_sec"] = 150.0;
  ASSERT_TRUE(ledger::append(F.path(), A, Error)) << Error;
  ASSERT_TRUE(ledger::append(F.path(), B, Error)) << Error;

  std::vector<LedgerEntry> Rows;
  ASSERT_TRUE(ledger::readAll(F.path(), Rows, Error)) << Error;
  ASSERT_EQ(Rows.size(), 2u);
  EXPECT_EQ(Rows[0].GitDescribe, "v1-4-gabc");
  EXPECT_EQ(Rows[1].GitDescribe, "v1-5-gdef");
  EXPECT_DOUBLE_EQ(Rows[1].Metrics.at("best_images_per_sec"), 150.0);
}

TEST(Ledger, ReadAllFailsOnCorruptLineWithLocation) {
  TempFile F("ledger_corrupt.jsonl");
  {
    std::ofstream Out(F.path());
    Out << sampleEntry().renderLine() << "\n" // blank line is fine
        << "{\"bench\": \n";                  // line 3 is broken
  }
  std::vector<LedgerEntry> Rows;
  std::string Error;
  EXPECT_FALSE(ledger::readAll(F.path(), Rows, Error));
  EXPECT_NE(Error.find(":3"), std::string::npos)
      << "error should carry the line number: " << Error;
}

TEST(Ledger, TailJsonServesNewestRows) {
  TempFile F("ledger_tail.jsonl");
  std::string Error;
  for (int I = 0; I != 5; ++I) {
    LedgerEntry E = sampleEntry();
    E.Repeat = I;
    ASSERT_TRUE(ledger::append(F.path(), E, Error)) << Error;
  }
  const std::string Doc = ledger::tailJson(F.path(), 2);
  json::Value V;
  ASSERT_TRUE(json::parse(Doc, V, Error)) << Error << "\n" << Doc;
  EXPECT_DOUBLE_EQ(V.getNumber("rows"), 5.0);
  const json::Value *Entries = V.find("entries");
  ASSERT_NE(Entries, nullptr);
  ASSERT_TRUE(Entries->isArray());
  ASSERT_EQ(Entries->array().size(), 2u);
  // Oldest of the tail first: repeats 3 then 4.
  EXPECT_DOUBLE_EQ(Entries->array()[0].getNumber("repeat"), 3.0);
  EXPECT_DOUBLE_EQ(Entries->array()[1].getNumber("repeat"), 4.0);
}

TEST(Ledger, TailJsonOnMissingPathIsEmptyDocument) {
  const std::string Doc = ledger::tailJson("/nonexistent/ledger.jsonl", 8);
  json::Value V;
  std::string Error;
  ASSERT_TRUE(json::parse(Doc, V, Error)) << Error << "\n" << Doc;
  EXPECT_DOUBLE_EQ(V.getNumber("rows"), 0.0);
}

TEST(Ledger, ServedPathIsSticky) {
  ledger::setServedPath("/tmp/some_ledger.jsonl");
  EXPECT_EQ(ledger::servedPath(), "/tmp/some_ledger.jsonl");
  ledger::setServedPath("");
  EXPECT_EQ(ledger::servedPath(), "");
}

TEST(Ledger, HostFingerprintIsPopulated) {
  const HostFingerprint &H = hostFingerprint();
  EXPECT_FALSE(H.CpuModel.empty());
  EXPECT_GT(H.Cores, 0u);
  EXPECT_FALSE(H.BuildFlags.empty());
}
