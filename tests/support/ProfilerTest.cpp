//===- tests/support/ProfilerTest.cpp - Span profiler tests -------------------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Profiler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <thread>

using namespace oppsla;

namespace {

/// Enables profiling for one test and restores a clean profiler state on
/// exit so tests cannot leak spans into each other.
struct ProfGuard {
  ProfGuard() {
    telemetry::resetProfiler();
    telemetry::setProfilingEnabled(true);
  }
  ~ProfGuard() {
    telemetry::setProfilingEnabled(false);
    telemetry::resetProfiler();
  }
};

const telemetry::ProfileEntry *findPath(
    const std::vector<telemetry::ProfileEntry> &Entries,
    const std::string &Path) {
  for (const telemetry::ProfileEntry &E : Entries)
    if (E.Path == Path)
      return &E;
  return nullptr;
}

} // namespace

TEST(Profiler, DisabledRecordsNothing) {
  telemetry::resetProfiler();
  telemetry::setProfilingEnabled(false);
  {
    telemetry::ProfileScope A("off.a");
    telemetry::ProfileScope B("off.b");
  }
  EXPECT_TRUE(telemetry::profileSnapshot().empty());
  EXPECT_EQ(telemetry::profileThreadCount(), 0u);
  EXPECT_TRUE(telemetry::profileTextReport().empty());
  EXPECT_TRUE(telemetry::profileFoldedReport().empty());
}

TEST(Profiler, NullNameIsNoOp) {
  ProfGuard G;
  {
    telemetry::ProfileScope A(nullptr);
  }
  EXPECT_TRUE(telemetry::profileSnapshot().empty());
}

TEST(Profiler, TreeShapeAndCounts) {
  ProfGuard G;
  for (int I = 0; I != 3; ++I) {
    telemetry::ProfileScope Outer("t.outer");
    {
      telemetry::ProfileScope Inner("t.inner");
    }
    {
      telemetry::ProfileScope Inner("t.inner");
    }
  }
  const auto Entries = telemetry::profileSnapshot();
  const auto *Outer = findPath(Entries, "t.outer");
  const auto *Inner = findPath(Entries, "t.outer;t.inner");
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Outer->Count, 3u);
  EXPECT_EQ(Outer->Depth, 0u);
  EXPECT_EQ(Inner->Count, 6u);
  EXPECT_EQ(Inner->Depth, 1u);
  EXPECT_EQ(Inner->Name, "t.inner");
  // Inclusive parent time covers its children; self = total - children.
  EXPECT_GE(Outer->TotalNs, Inner->TotalNs);
  EXPECT_EQ(Outer->SelfNs, Outer->TotalNs - Inner->TotalNs);
  EXPECT_EQ(Inner->SelfNs, Inner->TotalNs);
  // The same name at top level is a *different* path.
  EXPECT_EQ(findPath(Entries, "t.inner"), nullptr);
}

TEST(Profiler, InFlightSpansCountOnlyAtExit) {
  ProfGuard G;
  telemetry::ProfileScope Open("t.open");
  EXPECT_EQ(findPath(telemetry::profileSnapshot(), "t.open"), nullptr)
      << "a span still on the stack must not be reported";
}

TEST(Profiler, MergesIdenticalPathsAcrossThreads) {
  ProfGuard G;
  auto Work = [] {
    // The name reaches this thread as a distinct std::string copy, so the
    // merge must compare content, not pointers.
    const std::string Name("mt.leaf");
    const char *Interned = telemetry::internProfileName(Name);
    telemetry::ProfileScope Outer("mt.root");
    telemetry::ProfileScope Inner(Interned);
  };
  std::thread T1(Work), T2(Work);
  T1.join();
  T2.join();
  Work(); // and once on this thread

  EXPECT_EQ(telemetry::profileThreadCount(), 3u);
  const auto Entries = telemetry::profileSnapshot();
  const auto *Root = findPath(Entries, "mt.root");
  const auto *Leaf = findPath(Entries, "mt.root;mt.leaf");
  ASSERT_NE(Root, nullptr);
  ASSERT_NE(Leaf, nullptr);
  EXPECT_EQ(Root->Count, 3u) << "three threads merged into one path";
  EXPECT_EQ(Leaf->Count, 3u);
}

TEST(Profiler, InternReturnsStablePointer) {
  const char *A = telemetry::internProfileName("intern.same");
  const char *B = telemetry::internProfileName("intern.same");
  EXPECT_EQ(A, B);
  EXPECT_STREQ(A, "intern.same");
}

TEST(Profiler, FoldedReportFormat) {
  ProfGuard G;
  {
    telemetry::ProfileScope Outer("f.outer");
    telemetry::ProfileScope Inner("f.inner");
    // Folded lines are whole microseconds of *self* time and zero-weight
    // lines are dropped, so the leaf must run long enough to register.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const std::string Folded = telemetry::profileFoldedReport();
  ASSERT_FALSE(Folded.empty());
  std::istringstream In(Folded);
  std::string Line;
  bool SawInner = false;
  while (std::getline(In, Line)) {
    // Every line: a semicolon-joined path, one space, integer usec.
    const size_t Space = Line.rfind(' ');
    ASSERT_NE(Space, std::string::npos) << Line;
    const std::string Path = Line.substr(0, Space);
    const std::string Usec = Line.substr(Space + 1);
    EXPECT_FALSE(Path.empty());
    EXPECT_TRUE(std::all_of(Usec.begin(), Usec.end(),
                            [](char C) { return C >= '0' && C <= '9'; }))
        << Line;
    if (Path == "f.outer;f.inner")
      SawInner = true;
  }
  EXPECT_TRUE(SawInner);
}

TEST(Profiler, TextReportMentionsSpans) {
  ProfGuard G;
  {
    telemetry::ProfileScope S("txt.span");
  }
  const std::string Report = telemetry::profileTextReport();
  EXPECT_NE(Report.find("txt.span"), std::string::npos);
  EXPECT_NE(Report.find("profile:"), std::string::npos);
}

TEST(Profiler, ResetDiscardsAndReenables) {
  ProfGuard G;
  {
    telemetry::ProfileScope S("r.before");
  }
  ASSERT_FALSE(telemetry::profileSnapshot().empty());
  telemetry::resetProfiler();
  EXPECT_TRUE(telemetry::profileSnapshot().empty());
  // The same thread can record again after a reset (its detached arena is
  // replaced on the next span).
  telemetry::setProfilingEnabled(true);
  {
    telemetry::ProfileScope S("r.after");
  }
  EXPECT_NE(findPath(telemetry::profileSnapshot(), "r.after"), nullptr);
}

TEST(Profiler, JsonBlockShape) {
  ProfGuard G;
  {
    telemetry::ProfileScope Outer("j.outer");
    telemetry::ProfileScope Inner("j.inner");
  }
  const std::string Json = telemetry::profileJson();
  EXPECT_NE(Json.find("\"threads\":1"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"path\":\"j.outer;j.inner\""), std::string::npos)
      << Json;
  EXPECT_NE(Json.find("\"total_us\""), std::string::npos);
  EXPECT_NE(Json.find("\"self_us\""), std::string::npos);
}
