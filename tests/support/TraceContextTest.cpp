//===- tests/support/TraceContextTest.cpp - W3C trace context tests -----------===//
//
// Part of the OPPSLA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The trace-context layer under end-to-end job tracing: traceparent
// minting and parsing (W3C format), the thread-local ambient trace id,
// and its RAII scope's save/restore across nesting and threads.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <thread>

using namespace oppsla;
using namespace oppsla::telemetry;

namespace {

bool allHex(const std::string &S) {
  for (char C : S)
    if (!std::isxdigit(static_cast<unsigned char>(C)) ||
        (std::isalpha(static_cast<unsigned char>(C)) && !std::islower(C)))
      return false;
  return true;
}

bool allZero(const std::string &S) {
  return S.find_first_not_of('0') == std::string::npos;
}

} // namespace

TEST(TraceContext, MintProducesValidContext) {
  const TraceContext Ctx = mintTraceContext();
  EXPECT_TRUE(Ctx.valid());
  EXPECT_EQ(Ctx.TraceId.size(), 32u);
  EXPECT_EQ(Ctx.SpanId.size(), 16u);
  EXPECT_TRUE(allHex(Ctx.TraceId)) << Ctx.TraceId;
  EXPECT_TRUE(allHex(Ctx.SpanId)) << Ctx.SpanId;
  EXPECT_FALSE(allZero(Ctx.TraceId)) << "all-zero trace id is forbidden";
  EXPECT_FALSE(allZero(Ctx.SpanId));

  // Mints must differ (128-bit collisions would mean a broken generator).
  EXPECT_NE(mintTraceContext().TraceId, Ctx.TraceId);
}

TEST(TraceContext, TraceparentRendersW3CFormat) {
  const TraceContext Ctx = mintTraceContext();
  const std::string TP = Ctx.traceparent();
  ASSERT_EQ(TP.size(), 55u);
  EXPECT_EQ(TP.substr(0, 3), "00-");
  EXPECT_EQ(TP[35], '-');
  EXPECT_EQ(TP[52], '-');
  EXPECT_EQ(TP.substr(53), "01");
  EXPECT_EQ(TP.substr(3, 32), Ctx.TraceId);
  EXPECT_EQ(TP.substr(36, 16), Ctx.SpanId);
}

TEST(TraceContext, ParseRoundTripsAndNormalizesCase) {
  const TraceContext Minted = mintTraceContext();
  TraceContext Parsed;
  ASSERT_TRUE(parseTraceparent(Minted.traceparent(), Parsed));
  EXPECT_EQ(Parsed.TraceId, Minted.TraceId);
  EXPECT_EQ(Parsed.SpanId, Minted.SpanId);

  // Upper-case hex is valid on the wire and normalized to lower-case.
  TraceContext Upper;
  ASSERT_TRUE(parseTraceparent(
      "00-0AF7651916CD43DD8448EB211C80319C-B7AD6B7169203331-01", Upper));
  EXPECT_EQ(Upper.TraceId, "0af7651916cd43dd8448eb211c80319c");
  EXPECT_EQ(Upper.SpanId, "b7ad6b7169203331");
}

TEST(TraceContext, ParseRejectsMalformedHeaders) {
  TraceContext Ctx;
  const char *Bad[] = {
      "",
      "not-a-traceparent",
      // Wrong length (53).
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b71692033-01",
      // All-zero trace id.
      "00-00000000000000000000000000000000-b7ad6b7169203331-01",
      // All-zero span id.
      "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
      // Forbidden version ff.
      "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
      // Non-hex in the trace id.
      "00-0af7651916cd43dd8448eb211c8031zz-b7ad6b7169203331-01",
      // Dashes in the wrong place.
      "000af7651916cd43dd8448eb211c80319c-b7ad6b7169203331--01",
  };
  for (const char *H : Bad)
    EXPECT_FALSE(parseTraceparent(H, Ctx)) << "accepted: " << H;
}

TEST(TraceContext, AmbientIdScopesSaveAndRestore) {
  setTraceContextId("");
  EXPECT_EQ(traceContextId(), "");
  {
    TraceContextScope Outer("aaaa");
    EXPECT_EQ(traceContextId(), "aaaa");
    {
      TraceContextScope Inner("bbbb");
      EXPECT_EQ(traceContextId(), "bbbb");
    }
    EXPECT_EQ(traceContextId(), "aaaa") << "inner scope must restore";
  }
  EXPECT_EQ(traceContextId(), "");
}

TEST(TraceContext, AmbientIdIsPerThread) {
  TraceContextScope Scope("parent-id");
  std::string SeenOnWorker = "unset";
  std::thread([&] { SeenOnWorker = traceContextId(); }).join();
  EXPECT_EQ(SeenOnWorker, "")
      << "a fresh thread must not inherit the parent's ambient id";
  EXPECT_EQ(traceContextId(), "parent-id");
}
